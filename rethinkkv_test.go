package rethinkkv_test

// Tests exercise the package exactly as a downstream importer would: only
// the public rethinkkv API, no internal packages.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rethinkkv"
)

func testPrompt(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i*13 + 5) % 500
	}
	return p
}

func TestPipelineGenerateReinvokable(t *testing.T) {
	p, err := rethinkkv.New(
		rethinkkv.WithMethod("kivi-4"),
		rethinkkv.WithSeed(42),
		rethinkkv.WithMaxNewTokens(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	prompt := testPrompt(64)
	collect := func() []int {
		ch, err := p.Generate(context.Background(), prompt)
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for tok := range ch {
			out = append(out, tok.ID)
			if tok.Pos < len(prompt) {
				t.Fatalf("token pos %d inside prompt", tok.Pos)
			}
		}
		return out
	}
	first := collect()
	second := collect() // two consecutive generations on one pipeline
	if len(first) != 6 || len(second) != 6 {
		t.Fatalf("got %d and %d tokens, want 6 each", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("generations diverge: %v vs %v", first, second)
		}
	}
	// And a blocking Run on the same pipeline still agrees.
	out, rep, err := p.Run(prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != first[i] {
			t.Fatalf("Run %v disagrees with Generate %v", out, first)
		}
	}
	if rep.Method != "kivi-4" || rep.CompressionRatio <= 1 {
		t.Fatalf("bad report %+v", rep)
	}
}

func TestGenerateCancellation(t *testing.T) {
	p, err := rethinkkv.New(
		rethinkkv.WithMethod("fp16"),
		rethinkkv.WithMaxNewTokens(1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := p.Generate(ctx, testPrompt(32))
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for range ch {
		got++
		if got == 3 {
			cancel()
		}
	}
	if got >= 1000 {
		t.Fatalf("cancellation ignored: %d tokens streamed", got)
	}
	// The pipeline survives cancellation and can generate again.
	ch2, err := p.Generate(context.Background(), testPrompt(8))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Minute)
	n := 0
	for {
		select {
		case _, ok := <-ch2:
			if !ok {
				if n != 1000 {
					t.Fatalf("post-cancel generation yielded %d tokens", n)
				}
				return
			}
			n++
		case <-deadline:
			t.Fatal("post-cancel generation hung")
		}
	}
}

func TestGenerateAbandonedStream(t *testing.T) {
	p, err := rethinkkv.New(rethinkkv.WithMethod("fp16"), rethinkkv.WithMaxNewTokens(20))
	if err != nil {
		t.Fatal(err)
	}
	// Read one token, then abandon the channel without cancelling: the
	// buffered channel lets the producer run to completion instead of
	// leaking, and the pipeline stays usable.
	ch, err := p.Generate(context.Background(), testPrompt(16))
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	out, _, err := p.Run(testPrompt(16), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("post-abandon Run yielded %d tokens", len(out))
	}
}

func TestForeignClusterRouterRejected(t *testing.T) {
	a, err := rethinkkv.NewCluster([]string{"fp16", "fp16"}, rethinkkv.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rethinkkv.NewCluster([]string{"fp16", "fp16", "fp16"}, rethinkkv.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Router("baseline")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ServeTrace(rethinkkv.ShareGPTTrace(5, 10, 1), r); err == nil {
		t.Fatal("router from cluster a must be rejected by cluster b")
	}
	if _, err := a.ServeTrace(rethinkkv.ShareGPTTrace(5, 10, 1), r); err != nil {
		t.Fatalf("router on its own cluster: %v", err)
	}
}

// loggingRouter wraps another Router — the delegation pattern the Router
// interface invites.
type loggingRouter struct{ inner rethinkkv.Router }

func (l loggingRouter) Name() string { return "logged-" + l.inner.Name() }
func (l loggingRouter) Route(req rethinkkv.Request, views []rethinkkv.GPUView) int {
	return l.inner.Route(req, views)
}

func TestWrappedNamedRouterOnForeignCluster(t *testing.T) {
	a, err := rethinkkv.NewCluster([]string{"fp16", "fp16"}, rethinkkv.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// Cluster B is larger than A: the wrapper defeats ServeTrace's
	// same-cluster guard, so the named policy must still route safely and
	// in-range from the views alone.
	b, err := rethinkkv.NewCluster([]string{"fp16", "fp16", "fp16", "fp16"}, rethinkkv.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Router("baseline")
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.ServeTrace(rethinkkv.ShareGPTTrace(20, 50, 1), loggingRouter{inner: r})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("served %d of 20", len(out))
	}
	for _, o := range out {
		if o.GPU < 0 || o.GPU >= b.Size() {
			t.Fatalf("routed to GPU %d of %d", o.GPU, b.Size())
		}
	}
}

func TestConcurrentRouterConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor training is slow")
	}
	c, err := rethinkkv.NewCluster([]string{"fp16", "stream-512"}, rethinkkv.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, name := range []string{"w/throughput", "w/length", "w/both"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := c.Router(name); err != nil {
				t.Errorf("Router(%q): %v", name, err)
			}
		}(name)
	}
	wg.Wait()
}

func TestTypedErrors(t *testing.T) {
	if _, err := rethinkkv.New(rethinkkv.WithMethod("zip-9")); !errors.Is(err, rethinkkv.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
	if _, err := rethinkkv.NewSystem(rethinkkv.WithModel("gpt-2")); !errors.Is(err, rethinkkv.ErrUnknownModel) {
		t.Fatalf("want ErrUnknownModel, got %v", err)
	}
	if _, err := rethinkkv.NewSystem(rethinkkv.WithEngine("tgi")); !errors.Is(err, rethinkkv.ErrUnknownEngine) {
		t.Fatalf("want ErrUnknownEngine, got %v", err)
	}
	if _, err := rethinkkv.NewSystem(rethinkkv.WithHardware("tpu")); !errors.Is(err, rethinkkv.ErrUnknownHardware) {
		t.Fatalf("want ErrUnknownHardware, got %v", err)
	}
	if _, err := rethinkkv.NewCluster(nil); !errors.Is(err, rethinkkv.ErrEmptyCluster) {
		t.Fatalf("want ErrEmptyCluster, got %v", err)
	}
	if _, err := rethinkkv.NewCluster([]string{"fp16"}, rethinkkv.WithBatchCap(0)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("want ErrInvalidOption for zero batch cap, got %v", err)
	}
	if _, err := rethinkkv.New(rethinkkv.WithMaxNewTokens(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("want ErrInvalidOption for negative max tokens, got %v", err)
	}
	if _, err := rethinkkv.New(rethinkkv.WithMaxNewTokens(0)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("want ErrInvalidOption for zero max tokens, got %v", err)
	}
	p, err := rethinkkv.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Generate(context.Background(), nil); !errors.Is(err, rethinkkv.ErrEmptyPrompt) {
		t.Fatalf("want ErrEmptyPrompt, got %v", err)
	}
	if _, err := p.Generate(context.Background(), []int{p.Vocab()}); !errors.Is(err, rethinkkv.ErrInvalidToken) {
		t.Fatalf("want ErrInvalidToken for out-of-vocab token, got %v", err)
	}
	if _, _, err := p.Run([]int{-1}, 1); !errors.Is(err, rethinkkv.ErrInvalidToken) {
		t.Fatalf("want ErrInvalidToken for negative token, got %v", err)
	}
	c, err := rethinkkv.NewCluster([]string{"fp16"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Router("round-robin"); !errors.Is(err, rethinkkv.ErrUnknownRouter) {
		t.Fatalf("want ErrUnknownRouter, got %v", err)
	}
}

func TestRegistries(t *testing.T) {
	has := func(list []string, want string) bool {
		for _, s := range list {
			if s == want {
				return true
			}
		}
		return false
	}
	for _, m := range []string{"fp16", "kivi-4", "gear-4", "h2o-512", "stream-512", "snapkv-512"} {
		if !has(rethinkkv.Methods(), m) {
			t.Fatalf("Methods() missing %q", m)
		}
	}
	if pm := rethinkkv.PaperMethods(); len(pm) != 5 || pm[0] != "fp16" {
		t.Fatalf("PaperMethods() = %v", pm)
	}
	for _, e := range []string{"trl", "trl+fa", "lmdeploy", "vllm"} {
		if !has(rethinkkv.Engines(), e) {
			t.Fatalf("Engines() missing %q", e)
		}
	}
	for _, h := range []string{"a6000", "h800"} {
		if !has(rethinkkv.Hardware(), h) {
			t.Fatalf("Hardware() missing %q", h)
		}
	}
	if !has(rethinkkv.Models(), "llama-2-7b") || !has(rethinkkv.Models(), "mistral-7b") {
		t.Fatalf("Models() = %v", rethinkkv.Models())
	}
	want := []string{"baseline", "w/throughput", "w/length", "w/both"}
	got := rethinkkv.Routers()
	if len(got) != len(want) {
		t.Fatalf("Routers() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Routers() = %v, want %v", got, want)
		}
	}
	// Every listed method constructs a working pipeline and system.
	for _, m := range rethinkkv.Methods() {
		if _, err := rethinkkv.New(rethinkkv.WithMethod(m)); err != nil {
			t.Fatalf("New(%q): %v", m, err)
		}
		if _, err := rethinkkv.NewSystem(rethinkkv.WithMethod(m)); err != nil {
			t.Fatalf("NewSystem(%q): %v", m, err)
		}
	}
}

func TestSystemCostModel(t *testing.T) {
	sys, err := rethinkkv.NewSystem(
		rethinkkv.WithModel("llama-2-7b"), rethinkkv.WithHardware("a6000"),
		rethinkkv.WithEngine("lmdeploy"), rethinkkv.WithMethod("kivi-4"),
		rethinkkv.WithTP(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.TP() != 2 || sys.Method() != "kivi-4" || sys.Engine() != "lmdeploy" {
		t.Fatalf("accessors: tp=%d method=%s engine=%s", sys.TP(), sys.Method(), sys.Engine())
	}
	if thr := sys.DecodeThroughput(8, 4096); thr <= 0 {
		t.Fatalf("decode throughput %v", thr)
	}
	if r := sys.CompressionRatio(4096); r <= 1 {
		t.Fatalf("kivi-4 compression ratio %v", r)
	}
	fp, err := rethinkkv.NewSystem(rethinkkv.WithMethod("fp16"))
	if err != nil {
		t.Fatal(err)
	}
	kivi, err := rethinkkv.NewSystem(rethinkkv.WithMethod("kivi-4"))
	if err != nil {
		t.Fatal(err)
	}
	if kivi.MemoryRequired(8, 4096) >= fp.MemoryRequired(8, 4096)*3 {
		t.Fatal("kivi memory should not explode vs fp16")
	}
	if fp.DecodeThroughput(16, 8192) >= kivi.DecodeThroughput(16, 8192) {
		t.Fatal("compression should win decode at large batch × long KV")
	}
}

func TestClusterServeTrace(t *testing.T) {
	c, err := rethinkkv.NewCluster(
		[]string{"fp16", "stream-512"},
		rethinkkv.WithBatchCap(16), rethinkkv.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size() = %d", c.Size())
	}
	if gm := c.GPUMethods(); gm[0] != "fp16" || gm[1] != "stream-512" {
		t.Fatalf("GPUMethods() = %v", gm)
	}
	reqs := rethinkkv.ShareGPTTrace(50, 20, 1)
	r, err := c.Router("baseline")
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.ServeTrace(reqs, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("served %d of %d", len(out), len(reqs))
	}
	for _, o := range out {
		if o.E2E() <= 0 || o.TTFT() <= 0 || o.TTFT() > o.E2E() {
			t.Fatalf("inconsistent outcome %+v", o)
		}
		if o.GPU < 0 || o.GPU >= c.Size() {
			t.Fatalf("outcome on GPU %d", o.GPU)
		}
	}
	if rethinkkv.MeanE2E(out) <= 0 || len(rethinkkv.E2Es(out)) != len(out) {
		t.Fatal("latency summaries broken")
	}
}

func TestClusterPredictorRouters(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor training is slow")
	}
	c, err := rethinkkv.NewCluster(
		[]string{"fp16", "stream-512", "stream-512"},
		rethinkkv.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs := rethinkkv.ShareGPTTrace(120, 10, 2)
	for _, name := range rethinkkv.Routers() {
		r, err := c.Router(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name {
			t.Fatalf("router %q reports name %q", name, r.Name())
		}
		out, err := c.ServeTrace(reqs, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != len(reqs) {
			t.Fatalf("%s served %d of %d", name, len(out), len(reqs))
		}
	}
}

// rogueRouter answers out of range to exercise ServeTrace's guard.
type rogueRouter struct{ answer int }

func (r rogueRouter) Name() string { return "rogue" }
func (r rogueRouter) Route(req rethinkkv.Request, views []rethinkkv.GPUView) int {
	return r.answer
}

func TestServeTraceRejectsOutOfRangeRouter(t *testing.T) {
	c, err := rethinkkv.NewCluster([]string{"fp16", "fp16"}, rethinkkv.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	reqs := rethinkkv.ShareGPTTrace(5, 10, 1)
	for _, bad := range []int{-1, 2, 99} {
		if _, err := c.ServeTrace(reqs, rogueRouter{answer: bad}); err == nil {
			t.Fatalf("router answer %d should be rejected", bad)
		}
	}
	// A custom in-range router is accepted.
	if _, err := c.ServeTrace(reqs, rogueRouter{answer: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatorFacade(t *testing.T) {
	ev, err := rethinkkv.NewEvaluator(rethinkkv.WithSeed(9), rethinkkv.WithContSteps(4))
	if err != nil {
		t.Fatal(err)
	}
	samples := ev.LongBenchSamples(4, 96, 1)
	if len(samples) != 4 {
		t.Fatalf("got %d samples", len(samples))
	}
	ref := ev.Baseline(samples[0])
	base, err := ev.Evaluate(ref, "fp16")
	if err != nil {
		t.Fatal(err)
	}
	if base.Retention != 1 || base.Agreement != 1 {
		t.Fatalf("fp16 self-eval %+v", base)
	}
	if _, err := ev.Evaluate(ref, "zip-9"); !errors.Is(err, rethinkkv.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
	r, err := ev.Evaluate(ref, "stream-256")
	if err != nil {
		t.Fatal(err)
	}
	set := rethinkkv.CollectNegatives(
		[]rethinkkv.EvalResult{base},
		map[string][]rethinkkv.EvalResult{"stream-256": {r}},
		[]string{"stream-256"}, 0.05)
	bd := rethinkkv.TaskBreakdown(set, samples)
	_ = rethinkkv.SortedGroups(bd)
}

func TestGenerateBatchMatchesRun(t *testing.T) {
	seq, err := rethinkkv.New(rethinkkv.WithMethod("stream-512"), rethinkkv.WithSeed(3), rethinkkv.WithMaxNewTokens(8))
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{testPrompt(16), testPrompt(9), testPrompt(32)}
	want := make([][]int, len(prompts))
	for i, p := range prompts {
		out, _, err := seq.Run(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	batch, err := rethinkkv.New(rethinkkv.WithMethod("stream-512"), rethinkkv.WithSeed(3), rethinkkv.WithMaxNewTokens(8))
	if err != nil {
		t.Fatal(err)
	}
	outs, reps, err := batch.GenerateBatch(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(prompts) || len(reps) != len(prompts) {
		t.Fatalf("got %d outputs, %d reports", len(outs), len(reps))
	}
	for i := range prompts {
		if len(outs[i]) != len(want[i]) {
			t.Fatalf("prompt %d: %d tokens != %d", i, len(outs[i]), len(want[i]))
		}
		for j := range want[i] {
			if outs[i][j] != want[i][j] {
				t.Fatalf("prompt %d token %d: %d != %d", i, j, outs[i][j], want[i][j])
			}
		}
		if reps[i].TokensProcessed != len(prompts[i])+8 {
			t.Fatalf("prompt %d report tokens = %d", i, reps[i].TokensProcessed)
		}
	}
}

func TestGenerateBatchValidation(t *testing.T) {
	p, err := rethinkkv.New(rethinkkv.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := p.GenerateBatch(ctx, nil); !errors.Is(err, rethinkkv.ErrEmptyPrompt) {
		t.Fatalf("nil prompts: err = %v", err)
	}
	if _, _, err := p.GenerateBatch(ctx, [][]int{{1}, {}}); !errors.Is(err, rethinkkv.ErrEmptyPrompt) {
		t.Fatalf("empty prompt: err = %v", err)
	}
	if _, _, err := p.GenerateBatch(ctx, [][]int{{1}, {99999}}); !errors.Is(err, rethinkkv.ErrInvalidToken) {
		t.Fatalf("invalid token: err = %v", err)
	}
}

func TestGenerateBatchCancellation(t *testing.T) {
	p, err := rethinkkv.New(rethinkkv.WithSeed(1), rethinkkv.WithMaxNewTokens(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, _, err := p.GenerateBatch(ctx, [][]int{testPrompt(8)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(outs) != 0 {
		t.Fatalf("pre-cancelled batch should do no decode work, got %d streams", len(outs))
	}
}
