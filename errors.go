package rethinkkv

import "errors"

// Typed errors returned by the public constructors and registries. Wraps
// carry the offending name: test with errors.Is.
var (
	// ErrUnknownMethod reports a compression method name absent from
	// Methods().
	ErrUnknownMethod = errors.New("rethinkkv: unknown compression method")
	// ErrUnknownModel reports a model name absent from Models().
	ErrUnknownModel = errors.New("rethinkkv: unknown model")
	// ErrUnknownEngine reports an engine name absent from Engines().
	ErrUnknownEngine = errors.New("rethinkkv: unknown engine")
	// ErrUnknownHardware reports a hardware name absent from Hardware().
	ErrUnknownHardware = errors.New("rethinkkv: unknown hardware")
	// ErrUnknownRouter reports a routing policy absent from Routers().
	ErrUnknownRouter = errors.New("rethinkkv: unknown router policy")
	// ErrEmptyPrompt reports a Generate call with no prompt tokens.
	ErrEmptyPrompt = errors.New("rethinkkv: empty prompt")
	// ErrInvalidToken reports a prompt token outside the model's vocabulary.
	ErrInvalidToken = errors.New("rethinkkv: prompt token out of vocabulary range")
	// ErrInvalidOption reports an option value outside its valid range.
	ErrInvalidOption = errors.New("rethinkkv: invalid option value")
	// ErrEmptyCluster reports a cluster constructed with no GPUs.
	ErrEmptyCluster = errors.New("rethinkkv: cluster needs at least one GPU")
	// ErrUnknownPolicy reports a scheduling policy absent from
	// SchedPolicies().
	ErrUnknownPolicy = errors.New("rethinkkv: unknown scheduling policy")
	// ErrUnknownQuantMethod reports a KV quantization method name absent
	// from KVQuantMethods() (WithKVQuant).
	ErrUnknownQuantMethod = errors.New("rethinkkv: unknown KV quantization method")
	// ErrOutOfPages reports a request that cannot fit the server's KV page
	// budget (WithKVPages) even running alone — the paged engine's
	// out-of-memory condition. The facade translates the internal
	// kvcache sentinel into this one at the boundary.
	ErrOutOfPages = errors.New("rethinkkv: request cannot fit the KV page budget")
	// ErrServerClosed reports a Submit or Drain against a closed Server,
	// or a Drain released because Close aborted in-flight requests.
	ErrServerClosed = errors.New("rethinkkv: server closed")
	// ErrEmptyFleet reports a fleet constructed with no engines.
	ErrEmptyFleet = errors.New("rethinkkv: fleet needs at least one engine")
	// ErrBadRoute reports a routing policy that returned an out-of-range
	// engine index on the real-engine path (Fleet.Submit or
	// Cluster.ServeTrace with WithRealEngine). The simulator's equivalent
	// misroute is reported per-run by ServeTrace itself; this sentinel is
	// the live path's fail-fast form.
	ErrBadRoute = errors.New("rethinkkv: router returned an out-of-range GPU index")
	// ErrOverloaded reports a Submit rejected because the bounded admission
	// queue (WithMaxQueue) is full — fail-fast back-pressure instead of
	// unbounded queue growth. The request was never admitted; retry later
	// or shed upstream.
	ErrOverloaded = errors.New("rethinkkv: server overloaded, admission queue full")
	// ErrEngineFailed reports an engine whose scheduling loop panicked. A
	// standalone Server stays up but rejects new work and terminates live
	// streams with an error token carrying this sentinel; a Fleet
	// quarantines the engine, fails its in-flight requests over to healthy
	// replicas via bit-identical replay, and only surfaces this error when
	// no healthy engine can hold a request (or the whole fleet is down).
	ErrEngineFailed = errors.New("rethinkkv: engine failed")
	// ErrDeadlineExceeded reports a request shed from the admission queue
	// because its TTFT deadline (ServeRequest.Deadline, or the
	// WithAdmissionTimeout default) passed before decode started: the
	// stream's final token carries this sentinel in Token.Err. Requests
	// that already streamed a token are never shed.
	ErrDeadlineExceeded = errors.New("rethinkkv: TTFT deadline exceeded before first token")
)
