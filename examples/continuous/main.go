// Example continuous demonstrates the continuous-batching server: several
// requests sharing a system prompt are submitted together, stream their
// tokens as the scheduler interleaves them, and report the serving metrics
// (TTFT, E2E, preemptions) the paper's production sections discuss.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"rethinkkv"
)

func main() {
	// A shared "system prompt": the server prefills it once and serves
	// every request from a copy-on-write page clone.
	system := make([]int, 64)
	for i := range system {
		system[i] = (i*37 + 11) % 512
	}

	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(42),
		rethinkkv.WithMaxNewTokens(12),
		rethinkkv.WithMaxBatch(4),
		rethinkkv.WithPageTokens(16),
		rethinkkv.WithKVPages(64),      // tight budget: preemption is possible
		rethinkkv.WithPrefillChunk(16), // prompts prefill 16 tokens/iteration, interleaved with decode
		rethinkkv.WithSharedPrefix(system),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	suffixes := [][]int{
		{1, 2, 3},
		{200, 201},
		{50, 60, 70, 80},
		{400},
		{7, 8, 9},
	}

	var wg sync.WaitGroup
	for i, sfx := range suffixes {
		prompt := append(append([]int(nil), system...), sfx...)
		stream, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int, stream <-chan rethinkkv.Token) {
			defer wg.Done()
			var toks []int
			for tok := range stream {
				toks = append(toks, tok.ID)
			}
			fmt.Printf("request %d: %v\n", id, toks)
		}(i, stream)
	}
	wg.Wait()

	if err := srv.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("\nsteps=%d admitted=%d preemptions=%d prefix hits=%d (saved %d prefill tokens)\n",
		st.Steps, st.Admitted, st.Preemptions, st.PrefixHits, st.PrefixTokensSaved)
	for _, o := range srv.Outcomes() {
		fmt.Printf("request %d: ttft=%.1fms tbot=%.2fms e2e=%.1fms\n",
			o.Req.ID, 1000*o.TTFT(), 1000*o.TBOT(), 1000*o.E2E())
	}
}
