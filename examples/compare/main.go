// Compare: run every compression method on the same long-context QA sample
// and watch who keeps the needle — the mechanism behind the paper's
// negative-sample analysis (Section 4.4). Uses the public rethinkkv API.
//
// Run: go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"rethinkkv"
)

func main() {
	ev, err := rethinkkv.NewEvaluator(rethinkkv.WithSeed(7), rethinkkv.WithContSteps(12))
	if err != nil {
		log.Fatal(err)
	}

	// Draw LongBench-like samples and pick a single-document QA task whose
	// needle sits early in the prompt — the adversarial case for
	// recency-keeping eviction.
	samples := ev.LongBenchSamples(200, 320, 3)
	var qa *rethinkkv.Sample
	for i := range samples {
		s := &samples[i]
		if s.Task == rethinkkv.SingleDocQA && s.Critical[0].End < 80 {
			qa = s
			break
		}
	}
	if qa == nil {
		qa = &samples[0]
	}
	fmt.Printf("sample %d: %s, prompt %d tokens, needle at [%d,%d)\n\n",
		qa.ID, qa.Task, qa.PromptLen, qa.Critical[0].Start, qa.Critical[0].End)

	ref := ev.Baseline(*qa)
	fmt.Println("method       retention  fidelity  agreement  score")
	for _, m := range []string{"fp16", "kivi-4", "kivi-2", "gear-4", "h2o-512", "h2o-256", "stream-512", "stream-256", "snapkv-512"} {
		r, err := ev.Evaluate(ref, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.2f %9.3f %10.2f %6.1f\n",
			m, r.Retention, r.Fidelity, r.Agreement, r.Score)
	}
	fmt.Println("\nEviction methods that drop the needle collapse the QA score;")
	fmt.Println("quantisation keeps every token but pays in key fidelity.")
}
