// Compare: run every compression method on the same long-context QA sample
// and watch who keeps the needle — the mechanism behind the paper's
// negative-sample analysis (Section 4.4).
//
// Run: go run ./examples/compare
package main

import (
	"fmt"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/model"
	"rethinkkv/internal/workload"
)

func main() {
	tiny := model.New(model.Tiny(), 7)
	ev := accuracy.NewEvaluator(tiny, accuracy.Config{ContSteps: 12})

	// Draw LongBench-like samples and pick a single-document QA task whose
	// needle sits early in the prompt — the adversarial case for
	// recency-keeping eviction.
	samples := workload.SampleLongBench(workload.DefaultLongBench(200, 320, model.Tiny().Vocab), 3)
	var qa *workload.Sample
	for i := range samples {
		s := &samples[i]
		if s.Task == workload.SingleDocQA && s.Critical[0].End < 80 {
			qa = s
			break
		}
	}
	if qa == nil {
		qa = &samples[0]
	}
	fmt.Printf("sample %d: %s, prompt %d tokens, needle at [%d,%d)\n\n",
		qa.ID, qa.Task, qa.PromptLen, qa.Critical[0].Start, qa.Critical[0].End)

	ref := ev.RunBaseline(*qa)
	fmt.Println("method       retention  fidelity  agreement  score")
	for _, m := range []string{"fp16", "kivi-4", "kivi-2", "gear-4", "h2o-512", "h2o-256", "stream-512", "stream-256", "snapkv-512"} {
		r := ev.Evaluate(ref, m)
		fmt.Printf("%-12s %9.2f %9.3f %10.2f %6.1f\n",
			m, r.Retention, r.Fidelity, r.Agreement, r.Score)
	}
	fmt.Println("\nEviction methods that drop the needle collapse the QA score;")
	fmt.Println("quantisation keeps every token but pays in key fidelity.")
}
