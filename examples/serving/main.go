// Serving: simulate a 4-GPU cluster behind the paper's request router
// (Section 5.4) and compare the four routing policies' mean end-to-end
// latency on a Poisson trace — entirely through the public rethinkkv API.
//
// Run: go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"rethinkkv"
)

func main() {
	const method = "stream-512"

	// 1 FP16 GPU + 3 compressed GPUs (the paper's mixed fleet), and a
	// uniform all-compressed fleet for the baseline policy.
	mixed, err := rethinkkv.NewCluster(
		[]string{"fp16", method, method, method},
		rethinkkv.WithBatchCap(64), rethinkkv.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := rethinkkv.NewCluster(
		[]string{method, method, method, method},
		rethinkkv.WithBatchCap(64), rethinkkv.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}

	reqs := rethinkkv.ShareGPTTrace(600, 10, 5)

	type run struct {
		cluster *rethinkkv.Cluster
		policy  string
	}
	runs := []run{
		{uniform, "baseline"},
		{mixed, "w/throughput"},
		{mixed, "w/length"},
		{mixed, "w/both"},
	}
	fmt.Printf("%d requests @ 10 rps, 4×A6000, method %s\n\n", len(reqs), method)
	fmt.Println("policy         mean-E2E(s)")
	var base float64
	for i, r := range runs {
		router, err := r.cluster.Router(r.policy)
		if err != nil {
			log.Fatal(err)
		}
		out, err := r.cluster.ServeTrace(reqs, router)
		if err != nil {
			log.Fatal(err)
		}
		mean := rethinkkv.MeanE2E(out)
		if i == 0 {
			base = mean
			fmt.Printf("%-14s %8.2f\n", router.Name(), mean)
			continue
		}
		fmt.Printf("%-14s %8.2f   (%.2fx vs baseline)\n", router.Name(), mean, base/mean)
	}
}
