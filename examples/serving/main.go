// Serving: simulate a 4-GPU cluster behind the paper's request router
// (Section 5.4) and compare the four routing policies' mean end-to-end
// latency on a Poisson trace.
//
// Run: go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/router"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

func est(method string) *perf.Estimator {
	return perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet(method), 1)
}

func main() {
	const method = "stream-512"
	lm := gen.Default()

	// Train the predictor suite.
	train := workload.SampleShareGPT(workload.DefaultShareGPT(2000), 1)
	preds := router.Predictors{
		Thr:  map[string]*predictor.ThroughputPredictor{},
		Len:  map[string]*predictor.LengthPredictor{},
		Salt: 9,
	}
	for _, name := range []string{"fp16", method} {
		m := compress.MustGet(name)
		preds.Thr[name] = predictor.TrainThroughput(est(name), predictor.DefaultGrid(), 2)
		preds.Len[name] = predictor.TrainLength(train, lm.Run(train, m, 3), m, 9)
	}

	// 1 FP16 GPU + 3 compressed GPUs (the paper's mixed fleet).
	mixed := &serving.Cluster{BatchCap: 64, LM: lm, Seed: 4}
	mixed.GPUs = append(mixed.GPUs, serving.GPUConfig{ID: 0, Method: compress.MustGet("fp16"), Est: est("fp16")})
	for i := 1; i < 4; i++ {
		mixed.GPUs = append(mixed.GPUs, serving.GPUConfig{ID: i, Method: compress.MustGet(method), Est: est(method)})
	}
	uniform := &serving.Cluster{BatchCap: 64, LM: lm, Seed: 4}
	for i := 0; i < 4; i++ {
		uniform.GPUs = append(uniform.GPUs, serving.GPUConfig{ID: i, Method: compress.MustGet(method), Est: est(method)})
	}

	cfg := workload.DefaultShareGPT(600)
	cfg.RPS = 10
	reqs := workload.SampleShareGPT(cfg, 5)

	type run struct {
		cluster *serving.Cluster
		r       serving.Router
	}
	runs := []run{
		{uniform, router.Baseline{}},
		{mixed, router.WithThroughput{P: preds}},
		{mixed, router.WithLength{P: preds}},
		{mixed, router.WithBoth{P: preds}},
	}
	fmt.Printf("%d requests @ 10 rps, 4×A6000, method %s\n\n", len(reqs), method)
	fmt.Println("policy         mean-E2E(s)")
	var base float64
	for i, r := range runs {
		out, err := r.cluster.Run(reqs, r.r)
		if err != nil {
			log.Fatal(err)
		}
		mean := serving.MeanE2E(out)
		if i == 0 {
			base = mean
			fmt.Printf("%-14s %8.2f\n", r.r.Name(), mean)
			continue
		}
		fmt.Printf("%-14s %8.2f   (%.2fx vs baseline)\n", r.r.Name(), mean, base/mean)
	}
}
