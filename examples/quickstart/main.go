// Quickstart: compress a KV cache during real generation and inspect the
// memory/accuracy trade-off — entirely through the public rethinkkv API.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rethinkkv"
)

func main() {
	// A 200-token prompt for the tiny model (vocabulary ids).
	prompt := make([]int, 200)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % 500
	}

	fmt.Println("method      ratio   cache-bytes  retained  first-tokens")
	for _, method := range []string{"fp16", "kivi-4", "kivi-2", "gear-4", "h2o-512", "stream-512", "snapkv-512"} {
		p, err := rethinkkv.New(rethinkkv.WithMethod(method), rethinkkv.WithSeed(42))
		if err != nil {
			log.Fatal(err)
		}
		out, rep, err := p.Run(prompt, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %5.2fx %12d %9d  %v\n",
			rep.Method, rep.CompressionRatio, rep.CacheBytes, rep.RetainedTokens, out[:4])
	}

	// Pipelines are reusable, and Generate streams token-by-token under a
	// cancellable context.
	p, err := rethinkkv.New(rethinkkv.WithMethod("stream-512"),
		rethinkkv.WithSeed(42), rethinkkv.WithMaxNewTokens(8))
	if err != nil {
		log.Fatal(err)
	}
	stream, err := p.Generate(context.Background(), prompt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed:")
	for tok := range stream {
		fmt.Printf(" %d", tok.ID)
	}
	fmt.Println()

	// The analytical view: what the same choice costs at production scale.
	sys, err := rethinkkv.NewSystem(
		rethinkkv.WithHardware("a6000"), rethinkkv.WithModel("llama-2-7b"),
		rethinkkv.WithEngine("lmdeploy"), rethinkkv.WithMethod("stream-512"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLLaMA-2-7B on A6000 (LMDeploy, Stream-512):\n")
	fmt.Printf("  decode @ batch 8, KV 4096:  %.0f tok/s\n", sys.DecodeThroughput(8, 4096))
	fmt.Printf("  prefill @ batch 1, 4096:    %.0f tok/s\n", sys.PrefillThroughput(1, 4096))
}
