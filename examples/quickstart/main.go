// Quickstart: compress a KV cache during real generation and inspect the
// memory/accuracy trade-off.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rethinkkv/internal/core"
)

func main() {
	// A 200-token prompt for the tiny model (vocabulary ids).
	prompt := make([]int, 200)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % 500
	}

	fmt.Println("method      ratio   cache-bytes  retained  first-tokens")
	for _, method := range []string{"fp16", "kivi-4", "kivi-2", "gear-4", "h2o-512", "stream-512", "snapkv-512"} {
		p, err := core.NewPipeline(method, 42)
		if err != nil {
			log.Fatal(err)
		}
		out, rep, err := p.Run(prompt, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %5.2fx %12d %9d  %v\n",
			rep.Method, rep.CompressionRatio, rep.CacheBytes, rep.RetainedTokens, out[:4])
	}

	// The analytical view: what the same choice costs at production scale.
	sys, err := core.NewSystem("a6000", "llama-2-7b", "lmdeploy", "stream-512", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLLaMA-2-7B on A6000 (LMDeploy, Stream-512):\n")
	fmt.Printf("  decode @ batch 8, KV 4096:  %.0f tok/s\n", sys.Est.DecodeThroughput(8, 4096))
	fmt.Printf("  prefill @ batch 1, 4096:    %.0f tok/s\n", sys.Est.PrefillThroughput(1, 4096))
}
