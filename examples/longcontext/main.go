// Longcontext: hunt for negative samples (Algorithm 1) on a synthetic
// LongBench suite and print the task-type breakdown — a miniature of the
// paper's Figures 6-7 pipeline, driven through the public rethinkkv API.
//
// Run: go run ./examples/longcontext
package main

import (
	"fmt"
	"log"

	"rethinkkv"
)

func main() {
	ev, err := rethinkkv.NewEvaluator(rethinkkv.WithSeed(11), rethinkkv.WithContSteps(8))
	if err != nil {
		log.Fatal(err)
	}
	samples := ev.LongBenchSamples(60, 256, 2)

	methods := []string{"kivi-4", "stream-512"}
	var baseline []rethinkkv.EvalResult
	byMethod := map[string][]rethinkkv.EvalResult{}
	fmt.Printf("evaluating %d samples under %v...\n\n", len(samples), methods)
	for _, s := range samples {
		ref := ev.Baseline(s)
		base, err := ev.Evaluate(ref, "fp16")
		if err != nil {
			log.Fatal(err)
		}
		baseline = append(baseline, base)
		for _, m := range methods {
			r, err := ev.Evaluate(ref, m)
			if err != nil {
				log.Fatal(err)
			}
			byMethod[m] = append(byMethod[m], r)
		}
	}

	fmt.Println("threshold   kivi-4  stream-512  combined")
	for _, theta := range []float64{0.02, 0.08, 0.32} {
		k := len(rethinkkv.CollectNegatives(baseline, byMethod, []string{"kivi-4"}, theta).IDs)
		s := len(rethinkkv.CollectNegatives(baseline, byMethod, []string{"stream-512"}, theta).IDs)
		c := len(rethinkkv.CollectNegatives(baseline, byMethod, methods, theta).IDs)
		fmt.Printf("%8.0f%% %8d %11d %9d\n", theta*100, k, s, c)
	}

	set := rethinkkv.CollectNegatives(baseline, byMethod, []string{"stream-512"}, 0.10)
	bd := rethinkkv.TaskBreakdown(set, samples)
	fmt.Printf("\nstream-512 negatives by task group (θ=10%%, n=%d):\n", len(set.IDs))
	for _, g := range rethinkkv.SortedGroups(bd) {
		fmt.Printf("  %-14s %5.1f%%\n", g, 100*bd[g])
	}
}
