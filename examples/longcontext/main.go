// Longcontext: hunt for negative samples (Algorithm 1) on a synthetic
// LongBench suite and print the task-type breakdown — a miniature of the
// paper's Figures 6-7 pipeline.
//
// Run: go run ./examples/longcontext
package main

import (
	"fmt"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/model"
	"rethinkkv/internal/workload"
)

func main() {
	tiny := model.New(model.Tiny(), 11)
	ev := accuracy.NewEvaluator(tiny, accuracy.Config{ContSteps: 8})
	samples := workload.SampleLongBench(workload.DefaultLongBench(60, 256, model.Tiny().Vocab), 2)

	methods := []string{"kivi-4", "stream-512"}
	var baseline []accuracy.Result
	byMethod := map[string][]accuracy.Result{}
	fmt.Printf("evaluating %d samples under %v...\n\n", len(samples), methods)
	for _, s := range samples {
		ref := ev.RunBaseline(s)
		baseline = append(baseline, ev.Evaluate(ref, "fp16"))
		for _, m := range methods {
			byMethod[m] = append(byMethod[m], ev.Evaluate(ref, m))
		}
	}

	fmt.Println("threshold   kivi-4  stream-512  combined")
	for _, theta := range []float64{0.02, 0.08, 0.32} {
		k := len(accuracy.CollectNegatives(baseline, byMethod, []string{"kivi-4"}, theta).IDs)
		s := len(accuracy.CollectNegatives(baseline, byMethod, []string{"stream-512"}, theta).IDs)
		c := len(accuracy.CollectNegatives(baseline, byMethod, methods, theta).IDs)
		fmt.Printf("%8.0f%% %8d %11d %9d\n", theta*100, k, s, c)
	}

	set := accuracy.CollectNegatives(baseline, byMethod, []string{"stream-512"}, 0.10)
	bd := accuracy.TaskBreakdown(set, samples)
	fmt.Printf("\nstream-512 negatives by task group (θ=10%%, n=%d):\n", len(set.IDs))
	for _, g := range accuracy.SortedGroups(bd) {
		fmt.Printf("  %-14s %5.1f%%\n", g, 100*bd[g])
	}
}
