// Command servebench benchmarks the continuous-batching server against
// sequential serving on the same workload and reports aggregate decode
// throughput (tokens/s) and TTFT percentiles at several arrival rates.
//
// The workload is a system-prompt-style request stream: every request's
// prompt is a shared prefix plus a short private suffix, the dominant
// shape of agent and chat traffic. Sequential serving replays the trace
// one request at a time through Pipeline.Generate (full prefill every
// time); the server runs the same trace through the continuous-batching
// scheduler, which batches decode iterations across requests and serves
// the shared prefix from its copy-on-write page cache. Both paths emit
// identical token streams — the speedup is pure scheduling and reuse.
//
// Usage:
//
//	servebench                     # defaults: 8 requests at rates 0, 25, 100 rps
//	servebench -n 16 -rates 0,50  # custom
//	servebench -out BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rethinkkv"
)

type rateResult struct {
	RPS                float64 `json:"rps"`
	SeqTokensPerSec    float64 `json:"sequential_tokens_per_sec"`
	ContTokensPerSec   float64 `json:"continuous_tokens_per_sec"`
	Speedup            float64 `json:"speedup"`
	SeqTTFTP50Ms       float64 `json:"sequential_ttft_p50_ms"`
	SeqTTFTP99Ms       float64 `json:"sequential_ttft_p99_ms"`
	ContTTFTP50Ms      float64 `json:"continuous_ttft_p50_ms"`
	ContTTFTP99Ms      float64 `json:"continuous_ttft_p99_ms"`
	SeqSLOGoodput      float64 `json:"sequential_slo_goodput"`
	ContSLOGoodput     float64 `json:"continuous_slo_goodput"`
	Preemptions        int     `json:"preemptions"`
	PrefixHits         int     `json:"prefix_hits"`
	PeakRunning        int     `json:"peak_running"`
	GeneratedTokens    int     `json:"generated_tokens"`
	SequentialMakespan float64 `json:"sequential_makespan_s"`
	ContinuousMakespan float64 `json:"continuous_makespan_s"`
}

type report struct {
	Description string              `json:"description"`
	Machine     string              `json:"machine"`
	Workload    workloadDesc        `json:"workload"`
	Rates       []rateResult        `json:"rates,omitempty"`
	LongPrompt  *longPromptScenario `json:"long_prompt_scenario,omitempty"`
	Fleet       *fleetScenario      `json:"fleet_scenario,omitempty"`
	KVQuant     *kvQuantScenario    `json:"kv_quant_scenario,omitempty"`
	Sparse      *sparseScenario     `json:"sparse_scenario,omitempty"`
	Chaos       *chaosScenario      `json:"chaos_scenario,omitempty"`
}

// chaosScenario records the goodput-under-failure curve: the same
// closed-loop page-pressure workload served by an n-engine fleet while a
// seeded fault plan panics 0, 1, 2, ... engines mid-decode. Every request
// must still complete — failover re-admits each dead engine's in-flight
// requests on the survivors with a replay prefix, so the streams stay
// token-identical to the no-fault run — and what degrades is throughput.
// goodput_vs_no_fault compares each kill count's completed-token rate to
// the fault-free run; a healthy fleet stays at or above the surviving
// capacity fraction (the failure lands mid-run, so the early iterations
// still had full capacity, offset by the replayed recompute).
type chaosScenario struct {
	Description      string     `json:"description"`
	Engines          int        `json:"engines"`
	Requests         int        `json:"requests"`
	MaxNew           int        `json:"max_new"`
	PerEngineKVPages int        `json:"per_engine_kv_pages"`
	PageTokens       int        `json:"page_tokens"`
	MaxBatch         int        `json:"max_batch"`
	Router           string     `json:"router"`
	Seed             uint64     `json:"seed"`
	Runs             []chaosRun `json:"runs"`
}

type chaosRun struct {
	Kills              int     `json:"engines_killed"`
	Victims            []int   `json:"victims,omitempty"`
	KillSteps          []int   `json:"kill_steps,omitempty"`
	SurvivingFrac      float64 `json:"surviving_capacity_frac"`
	GoodputTokPerS     float64 `json:"goodput_tokens_per_sec"`
	GoodputVsNoFault   float64 `json:"goodput_vs_no_fault,omitempty"`
	CompletedFrac      float64 `json:"completed_frac"`
	TokensMatchNoFault bool    `json:"tokens_match_no_fault"`
	MakespanS          float64 `json:"makespan_s"`
	TTFTP50Ms          float64 `json:"ttft_p50_ms"`
	TTFTP99Ms          float64 `json:"ttft_p99_ms"`
	EngineFailures     int     `json:"engine_failures"`
	FailedOver         int     `json:"failed_over"`
	Migrations         int     `json:"migrations,omitempty"`
	MigrationFailed    int     `json:"migration_failed,omitempty"`
	Preemptions        int     `json:"preemptions,omitempty"`
	Shed               int     `json:"shed,omitempty"`
}

// sparseScenario A/Bs Quest-style sparse decode (WithSparseAttention) against
// full attention on a long-context request: one long prompt prefilled densely,
// then a decode phase that either reads every resident KV page or only the
// topK most critical pages per (layer, head). Decode tokens/s isolates the
// decode phase (first token to finish), where the page selection pays off;
// the recall and accuracy columns price what skipping pages costs, scored by
// the same evaluator as the compression methods.
type sparseScenario struct {
	Description  string      `json:"description"`
	PromptTokens int         `json:"prompt_tokens"`
	MaxNew       int         `json:"max_new"`
	PageTokens   int         `json:"page_tokens"`
	PromptPages  int         `json:"prompt_pages"`
	Full         sparseRun   `json:"full_attention"`
	TopK         []sparseRun `json:"top_k"`
}

type sparseRun struct {
	TopK           int     `json:"top_k,omitempty"`
	DecodeTokPerS  float64 `json:"decode_tokens_per_sec"`
	SpeedupVsFull  float64 `json:"speedup_vs_full,omitempty"`
	PagesSelected  int64   `json:"pages_selected,omitempty"`
	PagesTotal     int64   `json:"pages_total,omitempty"`
	PagesReadFrac  float64 `json:"pages_read_frac,omitempty"`
	Recall         float64 `json:"recall,omitempty"`
	Agreement      float64 `json:"agreement,omitempty"`
	TaskScore      float64 `json:"task_score,omitempty"`
	TaskScoreDelta float64 `json:"task_score_delta_vs_full,omitempty"`
}

// kvQuantScenario A/Bs the KV page precisions (WithKVQuant) on the fleet
// scenario's page-pressure workload, one single-engine Server per method
// under the SAME byte budget: -fleetpages full-precision pages' worth of
// bytes. Quantized codes shrink each page, so the same bytes hold more
// resident pages, which shows up as fewer preempt-and-recompute events and
// higher tokens/s. The accuracy columns price what the extra capacity
// costs, scored by the same evaluator as the offline compression methods.
type kvQuantScenario struct {
	Description string       `json:"description"`
	Requests    int          `json:"requests"`
	MaxNew      int          `json:"max_new"`
	KVPagesFP32 int          `json:"kv_pages_fp32_budget"`
	PageTokens  int          `json:"page_tokens"`
	MaxBatch    int          `json:"max_batch"`
	SLOTTFTMs   float64      `json:"slo_ttft_ms"`
	SLOTBOTMs   float64      `json:"slo_tbot_ms"`
	Methods     []kvQuantRun `json:"methods"`
}

type kvQuantRun struct {
	Method        string  `json:"method"`
	PageBudget    int     `json:"page_budget"`
	CapacityX     float64 `json:"capacity_x"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	SpeedupVsFP32 float64 `json:"speedup_vs_fp32,omitempty"`
	TTFTP50Ms     float64 `json:"ttft_p50_ms"`
	TTFTP99Ms     float64 `json:"ttft_p99_ms"`
	MakespanS     float64 `json:"makespan_s"`
	Preemptions   int     `json:"preemptions"`
	PeakKVPages   int     `json:"peak_kv_pages"`
	SLOGoodput    float64 `json:"slo_goodput"`
	KeyFidelity   float64 `json:"key_fidelity,omitempty"`
	Agreement     float64 `json:"agreement,omitempty"`
	HiddenSim     float64 `json:"hidden_sim,omitempty"`
}

// fleetScenario A/Bs the multi-engine fleet against one Server holding a
// single engine's KV budget, on a page-pressure workload: enough varied
// concurrent prompts that the single server preempts and recomputes
// constantly while the fleet's aggregate page capacity mostly avoids it.
// Each configured router policy runs the identical workload, so policy
// placement quality shows up directly in the TTFT percentiles.
type fleetScenario struct {
	Description      string     `json:"description"`
	Engines          int        `json:"engines"`
	Requests         int        `json:"requests"`
	MaxNew           int        `json:"max_new"`
	PerEngineKVPages int        `json:"per_engine_kv_pages"`
	PageTokens       int        `json:"page_tokens"`
	MaxBatch         int        `json:"max_batch"`
	SingleServer     fleetRun   `json:"single_server"`
	Policies         []fleetRun `json:"policies"`
}

type fleetRun struct {
	Router          string  `json:"router,omitempty"`
	TokensPerSec    float64 `json:"tokens_per_sec"`
	TTFTP50Ms       float64 `json:"ttft_p50_ms"`
	TTFTP99Ms       float64 `json:"ttft_p99_ms"`
	MakespanS       float64 `json:"makespan_s"`
	Preemptions     int     `json:"preemptions"`
	Migrations      int     `json:"migrations,omitempty"`
	Routed          []int   `json:"routed,omitempty"`
	SpeedupVsSingle float64 `json:"speedup_vs_single,omitempty"`
}

// longPromptScenario measures what chunked prefill exists for: a long
// prompt arriving while a batch of streams decodes. Per chunk setting it
// reports the long prompt's TTFT and the worst inter-token gap any running
// decode stream saw during the prefill window — unchunked (chunk >= prompt)
// the whole prefill lands in one iteration and every stream stalls for it;
// chunked, the gap is bounded by roughly one chunk's step time.
type longPromptScenario struct {
	Description      string             `json:"description"`
	Decoders         int                `json:"decoders"`
	LongPromptTokens int                `json:"long_prompt_tokens"`
	DecoderMaxNew    int                `json:"decoder_max_new"`
	Runs             []longPromptResult `json:"runs"`
	Burst            *burstScenario     `json:"k_prompt_burst,omitempty"`
}

type longPromptResult struct {
	PrefillChunk   int     `json:"prefill_chunk"`
	LongTTFTMs     float64 `json:"long_prompt_ttft_ms"`
	MaxDecodeGapMs float64 `json:"max_decode_gap_ms_during_prefill"`
	PrefillChunks  int     `json:"prefill_chunks"`
	MixedSteps     int     `json:"mixed_steps"`
}

// burstScenario measures what the per-iteration token budget exists for: k
// long prompts arriving at once while a batch decodes. In single-chunk mode
// (budget 0) the prompts prefill one at a time, so the j-th prompt's TTFT
// grows linearly in j; under a budget every iteration packs chunks from all
// k prompts into one weight-stationary pass, so the aggregate TTFT collapses
// toward a single prompt's — without ever stalling the decode streams for
// more than one budgeted pass.
type burstScenario struct {
	Description  string        `json:"description"`
	Prompts      int           `json:"prompts"`
	PromptTokens int           `json:"prompt_tokens"`
	Decoders     int           `json:"decoders"`
	PrefillChunk int           `json:"prefill_chunk"`
	Runs         []burstResult `json:"runs"`
}

type burstResult struct {
	TokenBudget int `json:"token_budget"` // 0 = single-chunk baseline
	// AggregateTTFTMs is the burst's collective TTFT: submit until every
	// prompt in the burst has streamed its first token. MeanTTFTMs averages
	// the individual TTFTs (greedy oldest-first packing front-loads early
	// arrivals, so the mean stays close to sequential's).
	AggregateTTFTMs      float64 `json:"aggregate_ttft_ms"`
	MeanTTFTMs           float64 `json:"mean_ttft_ms"`
	MaxDecodeGapMs       float64 `json:"max_decode_gap_ms_during_prefill"`
	PrefillChunks        int     `json:"prefill_chunks"`
	PackedChunks         int     `json:"packed_chunks"`
	MixedSteps           int     `json:"mixed_steps"`
	AggregateTTFTSpeedup float64 `json:"aggregate_ttft_speedup_vs_single_chunk"`
}

type workloadDesc struct {
	Requests     int    `json:"requests"`
	PrefixTokens int    `json:"prefix_tokens"`
	SuffixTokens string `json:"suffix_tokens"`
	MaxNew       int    `json:"max_new"`
	MaxBatch     int    `json:"max_batch"`
	PageTokens   int    `json:"page_tokens"`
	KVPages      int    `json:"kv_pages"`
	Policy       string `json:"policy"`
}

type request struct {
	prompt  []int
	arrival float64
}

func main() {
	n := flag.Int("n", 8, "concurrent requests per rate")
	prefixLen := flag.Int("prefix", 256, "shared system-prompt length in tokens")
	maxNew := flag.Int("maxnew", 32, "decoded tokens per request")
	batch := flag.Int("batch", 8, "server max batch")
	pages := flag.Int("pages", 0, "server KV page budget (0 = unbounded)")
	pageTokens := flag.Int("pagetokens", 16, "KV page size in tokens")
	policy := flag.String("policy", rethinkkv.SchedFCFS, "scheduling policy")
	rates := flag.String("rates", "0,25,100", "comma-separated arrival rates (rps; 0 = closed loop)")
	longLen := flag.Int("longprompt", 512, "long-prompt scenario prompt length (0 disables the scenario)")
	longChunks := flag.String("longchunks", "whole,64,16", "prefill chunk settings for the long-prompt scenario ('whole' = unchunked)")
	burstPrompts := flag.Int("burstprompts", 4, "k-prompt burst sub-scenario: simultaneous long-prompt arrivals (0 disables)")
	burstBudgets := flag.String("burstbudgets", "0,24,40,72", "comma-separated per-iteration token budgets for the burst sub-scenario (0 = single-chunk baseline)")
	burstChunk := flag.Int("burstchunk", 16, "prefill chunk size for the burst sub-scenario (small chunks bound the decode stall; the budget packs them to win back the pass overhead)")
	burstReps := flag.Int("burstreps", 3, "serving repetitions per burst budget (interleaved; the best aggregate TTFT is reported)")
	fleetN := flag.Int("fleet", 0, "fleet scenario engine count (0 disables the scenario)")
	fleetRouters := flag.String("routers", "baseline,w/both,w/length,kv-pressure", "router policies for the fleet scenario")
	fleetReqs := flag.Int("fleetreqs", 16, "fleet scenario concurrent requests")
	fleetPages := flag.Int("fleetpages", 24, "fleet scenario per-engine KV page budget")
	fleetMaxNew := flag.Int("fleetmaxnew", 96, "fleet scenario decode budget per request (KV growth drives the page pressure)")
	kvQuant := flag.String("kvquant", "", "comma-separated KV quant methods for the page-pressure A/B scenario, e.g. fp32,int8,int4 (empty disables)")
	sparse := flag.String("sparse", "", "comma-separated topK page budgets for the long-context sparse decode scenario, e.g. 8,32 (empty disables)")
	sparseCtx := flag.Int("sparsectx", 3072, "sparse scenario prompt length in tokens (prompt+decode is capped by the tiny model's 4096 max sequence)")
	sparseMaxNew := flag.Int("sparsemaxnew", 64, "sparse scenario decode budget")
	sparsePageTokens := flag.Int("sparsepagetokens", 16, "sparse scenario KV page size in tokens")
	sparseReps := flag.Int("sparsereps", 3, "serving repetitions per sparse setting (interleaved; the best decode rate is reported)")
	kvQuantReps := flag.Int("kvquantreps", 5, "serving repetitions per KV quant method (interleaved; the best-throughput rep is reported)")
	kvQuantReqs := flag.Int("kvquantreqs", 32, "KV quant scenario concurrent requests")
	kvQuantMaxNew := flag.Int("kvquantmaxnew", 24, "KV quant scenario decode budget per request")
	kvQuantPages := flag.Int("kvquantpages", 16, "KV quant scenario byte budget, in full-precision pages")
	kvQuantPageTokens := flag.Int("kvquantpagetokens", 4, "KV quant scenario page size in tokens (fine pages keep contexts short so capacity, not dequant cost, dominates)")
	chaosN := flag.Int("chaos", 0, "chaos scenario fleet engine count (0 disables the scenario)")
	chaosKills := flag.String("chaoskills", "0,1,2", "comma-separated engines-killed counts for the chaos scenario's goodput-under-failure curve")
	chaosRouter := flag.String("chaosrouter", "kv-pressure", "router policy for the chaos scenario")
	chaosReqs := flag.Int("chaosreqs", 16, "chaos scenario concurrent requests")
	chaosMaxNew := flag.Int("chaosmaxnew", 64, "chaos scenario decode budget per request (long enough that the kill lands mid-decode)")
	chaosPages := flag.Int("chaospages", 24, "chaos scenario per-engine KV page budget")
	sloTTFT := flag.Float64("slottft", 100, "TTFT SLO deadline in ms for goodput (0 = unconstrained)")
	sloTBOT := flag.Float64("slotbot", 5, "mean time-between-output-tokens SLO deadline in ms for goodput (0 = unconstrained)")
	seed := flag.Uint64("seed", 7, "workload and weight seed")
	out := flag.String("out", "", "write the JSON report to this file instead of stdout")
	flag.Parse()

	vocab := 512 // tiny model vocabulary; prompts must stay in range
	prefix := make([]int, *prefixLen)
	for i := range prefix {
		prefix[i] = int((uint64(i)*2654435761 + *seed) % uint64(vocab))
	}

	rep := report{
		Description: "Continuous-batching server vs sequential Pipeline.Generate on a shared-system-prompt workload. tokens/s counts generated tokens over the run makespan; TTFT measured against intended arrival times. Streams are token-identical between both paths.",
		Machine:     fmt.Sprintf("GOMAXPROCS=%d (pure Go, tiny-llama)", goMaxProcs()),
		Workload: workloadDesc{
			Requests:     *n,
			PrefixTokens: *prefixLen,
			SuffixTokens: "8..16",
			MaxNew:       *maxNew,
			MaxBatch:     *batch,
			PageTokens:   *pageTokens,
			KVPages:      *pages,
			Policy:       *policy,
		},
	}

	slo := rethinkkv.SLO{TTFT: *sloTTFT / 1000, TBOT: *sloTBOT / 1000}

	rateSpecs := strings.Split(*rates, ",")
	if strings.TrimSpace(*rates) == "" {
		rateSpecs = nil // -rates "" skips the rate sweep (smoke runs)
	}
	for _, rateStr := range rateSpecs {
		rps, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil {
			fatal(fmt.Errorf("bad rate %q: %w", rateStr, err))
		}
		reqs := buildWorkload(*n, prefix, vocab, rps, *seed)
		seq, err := runSequential(reqs, *maxNew, *seed)
		if err != nil {
			fatal(err)
		}
		cont, st, err := runContinuous(reqs, prefix, *maxNew, *batch, *pages, *pageTokens, *policy, *seed)
		if err != nil {
			fatal(err)
		}
		r := rateResult{
			RPS:                rps,
			SeqTokensPerSec:    rethinkkv.TokensPerSec(seq),
			ContTokensPerSec:   rethinkkv.TokensPerSec(cont),
			SeqTTFTP50Ms:       1000 * rethinkkv.Percentile(rethinkkv.TTFTs(seq), 50),
			SeqTTFTP99Ms:       1000 * rethinkkv.Percentile(rethinkkv.TTFTs(seq), 99),
			ContTTFTP50Ms:      1000 * rethinkkv.Percentile(rethinkkv.TTFTs(cont), 50),
			ContTTFTP99Ms:      1000 * rethinkkv.Percentile(rethinkkv.TTFTs(cont), 99),
			SeqSLOGoodput:      rethinkkv.SLOGoodput(seq, slo),
			ContSLOGoodput:     rethinkkv.SLOGoodput(cont, slo),
			Preemptions:        st.Preemptions,
			PrefixHits:         st.PrefixHits,
			PeakRunning:        st.PeakRunning,
			GeneratedTokens:    rethinkkv.TotalTokens(cont),
			SequentialMakespan: rethinkkv.Makespan(seq),
			ContinuousMakespan: rethinkkv.Makespan(cont),
		}
		if r.SeqTokensPerSec > 0 {
			r.Speedup = r.ContTokensPerSec / r.SeqTokensPerSec
		}
		rep.Rates = append(rep.Rates, r)
		fmt.Fprintf(os.Stderr, "rps=%-6.0f seq %7.1f tok/s   cont %7.1f tok/s   speedup %.2fx   ttft p50 %6.1fms -> %6.1fms\n",
			rps, r.SeqTokensPerSec, r.ContTokensPerSec, r.Speedup, r.SeqTTFTP50Ms, r.ContTTFTP50Ms)
	}

	if *longLen > 0 {
		sc, err := runLongPromptScenario(*batch, *longLen, *longChunks, *seed)
		if err != nil {
			fatal(err)
		}
		if *burstPrompts > 0 {
			b, err := runBurstScenario(*burstPrompts, *batch, *longLen, *burstChunk, *burstBudgets, *burstReps, *seed)
			if err != nil {
				fatal(err)
			}
			sc.Burst = b
		}
		rep.LongPrompt = sc
	}

	if *fleetN > 0 {
		sc, err := runFleetScenario(*fleetN, *fleetRouters, *fleetReqs, *fleetMaxNew, *batch, *fleetPages, *pageTokens, *policy, *seed)
		if err != nil {
			fatal(err)
		}
		rep.Fleet = sc
	}

	if *chaosN > 0 {
		sc, err := runChaosScenario(*chaosN, *chaosKills, *chaosRouter, *chaosReqs, *chaosMaxNew, *batch, *chaosPages, *pageTokens, *policy, *seed)
		if err != nil {
			fatal(err)
		}
		rep.Chaos = sc
	}

	if strings.TrimSpace(*kvQuant) != "" {
		sc, err := runKVQuantScenario(*kvQuant, *kvQuantReps, *kvQuantReqs, *kvQuantMaxNew, *batch, *kvQuantPages, *kvQuantPageTokens, *policy, slo, *seed)
		if err != nil {
			fatal(err)
		}
		rep.KVQuant = sc
	}

	if strings.TrimSpace(*sparse) != "" {
		sc, err := runSparseScenario(*sparse, *sparseReps, *sparseCtx, *sparseMaxNew, *sparsePageTokens, *seed)
		if err != nil {
			fatal(err)
		}
		rep.Sparse = sc
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// buildWorkload synthesises n shared-prefix requests with 8..16-token
// private suffixes and Poisson-free deterministic arrivals at rps (evenly
// spaced; 0 = all at once).
func buildWorkload(n int, prefix []int, vocab int, rps float64, seed uint64) []request {
	reqs := make([]request, n)
	for i := range reqs {
		sfx := 8 + int((uint64(i)*7+seed)%9)
		prompt := append([]int(nil), prefix...)
		for j := 0; j < sfx; j++ {
			prompt = append(prompt, int((uint64(i*131+j)*2246822519+seed)%uint64(vocab)))
		}
		arrival := 0.0
		if rps > 0 {
			arrival = float64(i) / rps
		}
		reqs[i] = request{prompt: prompt, arrival: arrival}
	}
	return reqs
}

// runSequential serves the trace one request at a time through the plain
// pipeline, honouring arrivals, and synthesises Outcomes from wall time.
func runSequential(reqs []request, maxNew int, seed uint64) ([]rethinkkv.Outcome, error) {
	p, err := rethinkkv.New(rethinkkv.WithSeed(seed), rethinkkv.WithMaxNewTokens(maxNew))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	outcomes := make([]rethinkkv.Outcome, len(reqs))
	for i, req := range reqs {
		if wait := req.arrival - now(); wait > 0 {
			time.Sleep(time.Duration(wait * float64(time.Second)))
		}
		begin := now()
		stream, err := p.Generate(context.Background(), req.prompt)
		if err != nil {
			return nil, err
		}
		first := -1.0
		count := 0
		for range stream {
			if first < 0 {
				first = now()
			}
			count++
		}
		outcomes[i] = rethinkkv.Outcome{
			Req:        rethinkkv.Request{ID: i, PromptLen: len(req.prompt), ArrivalTime: req.arrival},
			RespLen:    count,
			Start:      begin,
			FirstToken: first,
			Finish:     now(),
		}
	}
	return outcomes, nil
}

// runContinuous serves the trace through the continuous-batching server.
func runContinuous(reqs []request, prefix []int, maxNew, batch, pages, pageTokens int, policy string, seed uint64) ([]rethinkkv.Outcome, rethinkkv.ServerStats, error) {
	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(seed),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(batch),
		rethinkkv.WithKVPages(pages),
		rethinkkv.WithPageTokens(pageTokens),
		rethinkkv.WithSchedPolicy(policy),
		rethinkkv.WithSharedPrefix(prefix),
	)
	if err != nil {
		return nil, rethinkkv.ServerStats{}, err
	}
	defer srv.Close()
	start := time.Now()
	for _, req := range reqs {
		if wait := req.arrival - time.Since(start).Seconds(); wait > 0 {
			time.Sleep(time.Duration(wait * float64(time.Second)))
		}
		if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: req.prompt}); err != nil {
			return nil, rethinkkv.ServerStats{}, err
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		return nil, rethinkkv.ServerStats{}, err
	}
	return srv.Outcomes(), srv.Stats(), nil
}

// runLongPromptScenario starts `decoders` short-prompt streams, lets them
// reach steady-state decode, then submits one long prompt and measures (a)
// its TTFT and (b) the largest inter-token gap any decoder stream saw while
// the long prompt prefilled. It runs once per chunk setting.
func runLongPromptScenario(decoders, longLen int, chunkSpec string, seed uint64) (*longPromptScenario, error) {
	const vocab = 512
	const decoderMaxNew = 160
	sc := &longPromptScenario{
		Description:      "One long prompt arriving while a full batch decodes. max_decode_gap is the worst inter-token gap across the running streams inside the long prompt's prefill window; 'whole' prefills the prompt in a single iteration (the pre-chunking behaviour) and stalls every stream for the full prompt cost, chunked settings bound the gap by one chunk's step time.",
		Decoders:         decoders,
		LongPromptTokens: longLen,
		DecoderMaxNew:    decoderMaxNew,
	}
	longPrompt := make([]int, longLen)
	for i := range longPrompt {
		longPrompt[i] = int((uint64(i)*2654435761 + seed) % vocab)
	}
	for _, spec := range strings.Split(chunkSpec, ",") {
		spec = strings.TrimSpace(spec)
		chunk := longLen // "whole": the prompt lands in one iteration
		if spec != "whole" {
			c, err := strconv.Atoi(spec)
			if err != nil {
				return nil, fmt.Errorf("bad chunk %q: %w", spec, err)
			}
			chunk = c
		}
		srv, err := rethinkkv.NewServer(
			rethinkkv.WithSeed(seed),
			rethinkkv.WithMaxNewTokens(decoderMaxNew),
			rethinkkv.WithMaxBatch(decoders+1),
			rethinkkv.WithPageTokens(16),
			rethinkkv.WithPrefillChunk(chunk),
		)
		if err != nil {
			return nil, err
		}
		// Start the decoders and record every token's arrival time.
		var mu sync.Mutex
		stamps := make([][]time.Time, decoders)
		var started sync.WaitGroup
		var drained sync.WaitGroup
		started.Add(decoders)
		drained.Add(decoders)
		for i := 0; i < decoders; i++ {
			prompt := []int{int((uint64(i)*31 + seed) % vocab), int((uint64(i)*17 + 3) % vocab)}
			ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
			if err != nil {
				srv.Close()
				return nil, err
			}
			go func(i int, ch <-chan rethinkkv.Token) {
				first := true
				for range ch {
					now := time.Now()
					mu.Lock()
					stamps[i] = append(stamps[i], now)
					mu.Unlock()
					if first {
						started.Done()
						first = false
					}
				}
				drained.Done()
			}(i, ch)
		}
		started.Wait() // every decoder is mid-stream before the long prompt lands

		submitAt := time.Now()
		longCh, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: longPrompt, MaxNew: 8})
		if err != nil {
			srv.Close()
			return nil, err
		}
		var firstLong time.Time
		for tok := range longCh {
			if firstLong.IsZero() {
				firstLong = time.Now()
			}
			_ = tok
		}
		drained.Wait()
		st := srv.Stats()
		srv.Close()

		// Worst decoder gap whose span overlaps the prefill window.
		maxGap := time.Duration(0)
		for i := range stamps {
			for j := 1; j < len(stamps[i]); j++ {
				t0, t1 := stamps[i][j-1], stamps[i][j]
				if t1.Before(submitAt) || t0.After(firstLong) {
					continue
				}
				if gap := t1.Sub(t0); gap > maxGap {
					maxGap = gap
				}
			}
		}
		r := longPromptResult{
			PrefillChunk:   chunk,
			LongTTFTMs:     1000 * firstLong.Sub(submitAt).Seconds(),
			MaxDecodeGapMs: 1000 * maxGap.Seconds(),
			PrefillChunks:  st.PrefillChunks,
			MixedSteps:     st.MixedSteps,
		}
		sc.Runs = append(sc.Runs, r)
		fmt.Fprintf(os.Stderr, "longprompt chunk=%-5s ttft %7.1fms   max decode gap %7.1fms   mixed steps %d\n",
			spec, r.LongTTFTMs, r.MaxDecodeGapMs, r.MixedSteps)
	}
	return sc, nil
}

// runBurstScenario is the stall-free-batching acceptance curve: k long
// prompts submitted back-to-back while a full batch decodes, swept over
// per-iteration token budgets. Budget 0 is the single-chunk baseline — the
// pre-budget scheduler, one prompt's chunk per iteration — which spends one
// pass of decode-lane work per chunk across the whole burst, so the burst
// window drags through k*L/chunk passes. A budget packs chunks from every
// burst prompt into each pass, shrinking the window to ~L/chunk passes.
// Settings run interleaved for reps rounds (best aggregate TTFT per budget
// reported) so scheduler noise on a shared box cannot masquerade as a win.
func runBurstScenario(k, decoders, longLen, chunk int, budgetSpec string, reps int, seed uint64) (*burstScenario, error) {
	const vocab = 512
	const decoderMaxNew = 160
	sc := &burstScenario{
		Description:  "k long prompts arriving at once while a full batch decodes, swept over per-iteration token budgets. Budget 0 serves the burst one chunk per iteration (single-chunk mode), so the burst prefill window spans k*L/chunk passes, each also paying the decode lanes. A budget packs chunks from every burst prompt into each weight-stationary pass, collapsing the window toward L/chunk passes — aggregate TTFT (submit until every burst prompt has streamed its first token) improves while the decode gap stays bounded by one budgeted pass. Best of reps interleaved rounds per setting.",
		Prompts:      k,
		PromptTokens: longLen,
		Decoders:     decoders,
		PrefillChunk: chunk,
	}
	prompts := make([][]int, k)
	for i := range prompts {
		p := make([]int, longLen)
		for j := range p {
			p[j] = int((uint64(j)*2654435761 + uint64(i)*97 + seed) % vocab)
		}
		prompts[i] = p
	}
	var budgets []int
	for _, spec := range strings.Split(budgetSpec, ",") {
		budget, err := strconv.Atoi(strings.TrimSpace(spec))
		if err != nil {
			return nil, fmt.Errorf("bad burst budget %q: %w", spec, err)
		}
		budgets = append(budgets, budget)
	}
	runOnce := func(budget int) (burstResult, error) {
		srv, err := rethinkkv.NewServer(
			rethinkkv.WithSeed(seed),
			rethinkkv.WithMaxNewTokens(decoderMaxNew),
			rethinkkv.WithMaxBatch(decoders+k),
			rethinkkv.WithPageTokens(16),
			rethinkkv.WithPrefillChunk(chunk),
			rethinkkv.WithTokenBudget(budget),
		)
		if err != nil {
			return burstResult{}, err
		}
		// Background decoders, every token's arrival stamped.
		var mu sync.Mutex
		stamps := make([][]time.Time, decoders)
		var started sync.WaitGroup
		var drained sync.WaitGroup
		started.Add(decoders)
		drained.Add(decoders)
		for i := 0; i < decoders; i++ {
			prompt := []int{int((uint64(i)*31 + seed) % vocab), int((uint64(i)*17 + 3) % vocab)}
			ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
			if err != nil {
				srv.Close()
				return burstResult{}, err
			}
			go func(i int, ch <-chan rethinkkv.Token) {
				first := true
				for range ch {
					now := time.Now()
					mu.Lock()
					stamps[i] = append(stamps[i], now)
					mu.Unlock()
					if first {
						started.Done()
						first = false
					}
				}
				drained.Done()
			}(i, ch)
		}
		started.Wait() // every decoder mid-stream before the burst lands

		submitAt := time.Now()
		firsts := make([]time.Time, k)
		var burstWG sync.WaitGroup
		burstWG.Add(k)
		for i, prompt := range prompts {
			ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt, MaxNew: 8})
			if err != nil {
				srv.Close()
				return burstResult{}, err
			}
			go func(i int, ch <-chan rethinkkv.Token) {
				defer burstWG.Done()
				for range ch {
					if firsts[i].IsZero() {
						firsts[i] = time.Now()
					}
				}
			}(i, ch)
		}
		burstWG.Wait()
		drained.Wait()
		st := srv.Stats()
		srv.Close()

		var sumTTFT, maxTTFT float64
		lastFirst := submitAt
		for _, ft := range firsts {
			ttft := ft.Sub(submitAt).Seconds()
			sumTTFT += ttft
			if ttft > maxTTFT {
				maxTTFT = ttft
			}
			if ft.After(lastFirst) {
				lastFirst = ft
			}
		}
		// Worst decoder gap whose span overlaps the burst prefill window.
		maxGap := time.Duration(0)
		for i := range stamps {
			for j := 1; j < len(stamps[i]); j++ {
				t0, t1 := stamps[i][j-1], stamps[i][j]
				if t1.Before(submitAt) || t0.After(lastFirst) {
					continue
				}
				if gap := t1.Sub(t0); gap > maxGap {
					maxGap = gap
				}
			}
		}
		return burstResult{
			TokenBudget:     budget,
			AggregateTTFTMs: 1000 * maxTTFT,
			MeanTTFTMs:      1000 * sumTTFT / float64(k),
			MaxDecodeGapMs:  1000 * maxGap.Seconds(),
			PrefillChunks:   st.PrefillChunks,
			PackedChunks:    st.PackedChunks,
			MixedSteps:      st.MixedSteps,
		}, nil
	}

	best := make([]burstResult, len(budgets))
	for rep := 0; rep < reps; rep++ {
		for i, budget := range budgets {
			r, err := runOnce(budget)
			if err != nil {
				return nil, err
			}
			if rep == 0 || r.AggregateTTFTMs < best[i].AggregateTTFTMs {
				best[i] = r
			}
		}
	}
	var baseline float64
	for _, r := range best {
		if r.TokenBudget == 0 {
			baseline = r.AggregateTTFTMs
		} else if baseline > 0 && r.AggregateTTFTMs > 0 {
			r.AggregateTTFTSpeedup = baseline / r.AggregateTTFTMs
		}
		sc.Runs = append(sc.Runs, r)
		fmt.Fprintf(os.Stderr, "burst k=%d budget=%-4d aggregate ttft %7.1fms   mean ttft %7.1fms   max decode gap %6.1fms   packed chunks %d\n",
			k, r.TokenBudget, r.AggregateTTFTMs, r.MeanTTFTMs, r.MaxDecodeGapMs, r.PackedChunks)
	}
	return sc, nil
}

// runFleetScenario serves the same page-pressure workload through one
// Server (one engine's budget) and then through an n-engine Fleet once per
// router policy. Closed loop: every request arrives at t=0, so the
// workload's total KV demand lands at once and the page budget — not the
// arrival process — is the binding constraint.
func runFleetScenario(engines int, routerSpec string, n, maxNew, batch, pages, pageTokens int, schedPolicy string, seed uint64) (*fleetScenario, error) {
	prompts := pressurePrompts(n, seed)
	sc := &fleetScenario{
		Description:      "N-engine fleet vs a single server with one engine's KV budget, same closed-loop varied-prompt workload. The single server's page budget forces constant preempt-and-recompute; the fleet's aggregate capacity (and cross-engine migration of victims) avoids the wasted recompute, which is the tokens/s gap. Policies place on live views: backlog, free KV pages, in-flight prefill. Streams are token-identical everywhere.",
		Engines:          engines,
		Requests:         n,
		MaxNew:           maxNew,
		PerEngineKVPages: pages,
		PageTokens:       pageTokens,
		MaxBatch:         batch,
	}

	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(seed),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(batch),
		rethinkkv.WithKVPages(pages),
		rethinkkv.WithPageTokens(pageTokens),
		rethinkkv.WithSchedPolicy(schedPolicy),
	)
	if err != nil {
		return nil, err
	}
	for _, prompt := range prompts {
		if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt}); err != nil {
			srv.Close()
			return nil, err
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		srv.Close()
		return nil, err
	}
	single := srv.Outcomes()
	sst := srv.Stats()
	srv.Close()
	sc.SingleServer = fleetRun{
		TokensPerSec: rethinkkv.TokensPerSec(single),
		TTFTP50Ms:    1000 * rethinkkv.Percentile(rethinkkv.TTFTs(single), 50),
		TTFTP99Ms:    1000 * rethinkkv.Percentile(rethinkkv.TTFTs(single), 99),
		MakespanS:    rethinkkv.Makespan(single),
		Preemptions:  sst.Preemptions,
	}
	fmt.Fprintf(os.Stderr, "fleet: single server %7.1f tok/s   ttft p50 %6.1fms   preemptions %d\n",
		sc.SingleServer.TokensPerSec, sc.SingleServer.TTFTP50Ms, sc.SingleServer.Preemptions)

	for _, name := range strings.Split(routerSpec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fl, err := rethinkkv.NewFleet(engines,
			rethinkkv.WithSeed(seed),
			rethinkkv.WithMaxNewTokens(maxNew),
			rethinkkv.WithMaxBatch(batch),
			rethinkkv.WithKVPages(pages),
			rethinkkv.WithPageTokens(pageTokens),
			rethinkkv.WithSchedPolicy(schedPolicy),
			rethinkkv.WithRouter(name),
		)
		if err != nil {
			return nil, err
		}
		for _, prompt := range prompts {
			if _, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt}); err != nil {
				fl.Close()
				return nil, err
			}
		}
		if err := fl.Drain(context.Background()); err != nil {
			fl.Close()
			return nil, err
		}
		outs := fl.Outcomes()
		fst := fl.Stats()
		fl.Close()
		run := fleetRun{
			Router:       name,
			TokensPerSec: rethinkkv.TokensPerSec(outs),
			TTFTP50Ms:    1000 * rethinkkv.Percentile(rethinkkv.TTFTs(outs), 50),
			TTFTP99Ms:    1000 * rethinkkv.Percentile(rethinkkv.TTFTs(outs), 99),
			MakespanS:    rethinkkv.Makespan(outs),
			Preemptions:  fst.Preemptions(),
			Migrations:   fst.Migrations,
			Routed:       fst.Routed,
		}
		if sc.SingleServer.TokensPerSec > 0 {
			run.SpeedupVsSingle = run.TokensPerSec / sc.SingleServer.TokensPerSec
		}
		sc.Policies = append(sc.Policies, run)
		fmt.Fprintf(os.Stderr, "fleet: %-13s %7.1f tok/s (%.2fx)   ttft p50 %6.1fms p99 %6.1fms   preempt %d   migrations %d   routed %v\n",
			name, run.TokensPerSec, run.SpeedupVsSingle, run.TTFTP50Ms, run.TTFTP99Ms, run.Preemptions, run.Migrations, run.Routed)
	}
	return sc, nil
}

// runChaosScenario serves the page-pressure workload through an n-engine
// fleet once per engines-killed count. For k > 0 a seeded FaultPlan panics
// k distinct engines at staggered mid-decode iterations; the fleet
// quarantines each dead engine and fails its in-flight requests over to
// the survivors with a replay prefix. The run records completed-token
// goodput relative to the fault-free run, whether every stream stayed
// token-identical to it, and the failover/shed counters.
func runChaosScenario(engines int, killSpec, routerName string, n, maxNew, batch, pages, pageTokens int, schedPolicy string, seed uint64) (*chaosScenario, error) {
	prompts := pressurePrompts(n, seed)
	sc := &chaosScenario{
		Description:      "Goodput under engine failure: the fleet serves the closed-loop page-pressure workload while a seeded fault plan panics k engines at staggered mid-decode iterations. Failover re-admits each dead engine's in-flight requests on the survivors with a replay prefix, so every stream completes token-identical to the no-fault run (tokens_match_no_fault); goodput_vs_no_fault is the completed-token rate relative to k=0 and should hold at or above surviving_capacity_frac, since the kill lands mid-run and only the replayed recompute is lost.",
		Engines:          engines,
		Requests:         n,
		MaxNew:           maxNew,
		PerEngineKVPages: pages,
		PageTokens:       pageTokens,
		MaxBatch:         batch,
		Router:           routerName,
		Seed:             seed,
	}

	var baseline [][]int // token streams of the k=0 run
	var baseGoodput float64
	for _, spec := range strings.Split(killSpec, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		kills, err := strconv.Atoi(spec)
		if err != nil {
			return nil, fmt.Errorf("bad chaos kill count %q: %w", spec, err)
		}
		if kills < 0 || kills >= engines {
			return nil, fmt.Errorf("chaos kill count %d out of range [0, %d)", kills, engines)
		}

		opts := []rethinkkv.Option{
			rethinkkv.WithSeed(seed),
			rethinkkv.WithMaxNewTokens(maxNew),
			rethinkkv.WithMaxBatch(batch),
			rethinkkv.WithKVPages(pages),
			rethinkkv.WithPageTokens(pageTokens),
			rethinkkv.WithSchedPolicy(schedPolicy),
			rethinkkv.WithRouter(routerName),
		}
		run := chaosRun{
			Kills:         kills,
			SurvivingFrac: float64(engines-kills) / float64(engines),
		}
		if kills > 0 {
			plan := rethinkkv.FaultPlan{Seed: seed, StepPanics: make(map[int]int, kills)}
			used := make(map[int]bool, kills)
			for salt := uint64(1); len(run.Victims) < kills; salt++ {
				v := plan.PickVictim(engines, salt)
				if used[v] {
					continue
				}
				used[v] = true
				// Staggered kills: each later victim dies a few batched
				// iterations after the previous one, all mid-decode.
				step := 8 + 6*len(run.Victims)
				plan.StepPanics[v] = step
				run.Victims = append(run.Victims, v)
				run.KillSteps = append(run.KillSteps, step)
			}
			opts = append(opts, rethinkkv.WithFaults(plan))
		}

		fl, err := rethinkkv.NewFleet(engines, opts...)
		if err != nil {
			return nil, err
		}
		streams := make([][]int, len(prompts))
		errs := make([]error, len(prompts))
		var wg sync.WaitGroup
		for i, prompt := range prompts {
			ch, err := fl.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
			if err != nil {
				fl.Close()
				return nil, fmt.Errorf("chaos kills=%d submit %d: %w", kills, i, err)
			}
			wg.Add(1)
			go func(i int, ch <-chan rethinkkv.Token) {
				defer wg.Done()
				for tok := range ch {
					if tok.Err != nil {
						errs[i] = tok.Err
						continue
					}
					streams[i] = append(streams[i], tok.ID)
				}
			}(i, ch)
		}
		wg.Wait()
		if err := fl.Drain(context.Background()); err != nil {
			fl.Close()
			return nil, fmt.Errorf("chaos kills=%d drain: %w", kills, err)
		}
		outs := fl.Outcomes()
		st := fl.Stats()
		fl.Close()

		goodTokens, completed := 0, 0
		for i := range streams {
			if errs[i] == nil && len(streams[i]) == maxNew {
				goodTokens += len(streams[i])
				completed++
			}
		}
		run.MakespanS = rethinkkv.Makespan(outs)
		if run.MakespanS > 0 {
			run.GoodputTokPerS = float64(goodTokens) / run.MakespanS
		}
		run.CompletedFrac = float64(completed) / float64(len(prompts))
		run.TTFTP50Ms = 1000 * rethinkkv.Percentile(rethinkkv.TTFTs(outs), 50)
		run.TTFTP99Ms = 1000 * rethinkkv.Percentile(rethinkkv.TTFTs(outs), 99)
		run.EngineFailures = st.EngineFailures
		run.FailedOver = st.FailedOver
		run.Migrations = st.Migrations
		run.MigrationFailed = st.MigrationFailed
		run.Preemptions = st.Preemptions()
		run.Shed = st.Shed()

		if baseline == nil && kills == 0 {
			baseline = streams
			baseGoodput = run.GoodputTokPerS
		}
		run.TokensMatchNoFault = baseline != nil && tokensEqual(streams, baseline)
		if baseGoodput > 0 {
			run.GoodputVsNoFault = run.GoodputTokPerS / baseGoodput
		}
		sc.Runs = append(sc.Runs, run)
		fmt.Fprintf(os.Stderr, "chaos: kills=%d/%d %7.1f good tok/s (%.2fx of no-fault, surviving capacity %.2f)   failed over %d   identical %v\n",
			kills, engines, run.GoodputTokPerS, run.GoodputVsNoFault, run.SurvivingFrac, run.FailedOver, run.TokensMatchNoFault)
	}
	return sc, nil
}

func tokensEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// pressurePrompts synthesises the page-pressure workload the fleet and
// kv-quant scenarios share: short varied prompts (8..32 tokens) with a long
// decode budget. Every request admits cheaply, then its KV footprint grows
// maxNew tokens during decode, so the running set outgrows the page budget
// mid-flight — preempt-and-recompute churn, not admission, is what the
// extra capacity (more engines, or more pages per byte) relieves.
func pressurePrompts(n int, seed uint64) [][]int {
	const vocab = 512
	prompts := make([][]int, n)
	for i := range prompts {
		plen := 8 + int((uint64(i)*13+seed)%25)
		prompts[i] = make([]int, plen)
		for j := range prompts[i] {
			prompts[i][j] = int((uint64(i*97+j)*2654435761 + seed) % vocab)
		}
	}
	return prompts
}

// runKVQuantScenario serves the page-pressure workload through one Server
// per KV quant method under the same byte budget (`pages` full-precision
// pages' worth). Quantized codes make each page smaller, so the identical
// bytes hold 3-5x more resident pages — the scheduler preempts less and
// throughput and SLO goodput rise. For the quantized methods it also scores
// accuracy deltas against the full-precision reference with the same
// evaluator (and metric vocabulary) as the offline compression methods.
func runKVQuantScenario(methodSpec string, reps, n, maxNew, batch, pages, pageTokens int, schedPolicy string, slo rethinkkv.SLO, seed uint64) (*kvQuantScenario, error) {
	prompts := pressurePrompts(n, seed)
	sc := &kvQuantScenario{
		Description: "KV page precision A/B on the page-pressure workload: one single-engine server per method, all under the SAME byte budget (kv_pages_fp32_budget full-precision pages' worth of bytes). page_budget is how many resident pages those bytes hold per method; smaller codes mean more pages, fewer preempt-and-recomputes, higher tokens/s and SLO goodput. Methods are interleaved across repetitions and each reports its best-throughput rep — scheduling counters are deterministic and identical across reps, only wall time varies, so best-of-N is the noise-robust estimator on a shared single-core box (as with min-of-N wall benchmarking). key_fidelity/agreement/hidden_sim price the capacity: cosine fidelity of dequantized keys, greedy-continuation agreement and hidden-state cosine vs the full-precision run.",
		Requests:    n,
		MaxNew:      maxNew,
		KVPagesFP32: pages,
		PageTokens:  pageTokens,
		MaxBatch:    batch,
		SLOTTFTMs:   1000 * slo.TTFT,
		SLOTBOTMs:   1000 * slo.TBOT,
	}

	var methods []string
	for _, name := range strings.Split(methodSpec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			methods = append(methods, name)
		}
	}
	if reps < 1 {
		reps = 1
	}

	// serveOnce runs the whole workload through one freshly-built server.
	serveOnce := func(method string) (kvQuantRun, error) {
		srv, err := rethinkkv.NewServer(
			rethinkkv.WithSeed(seed),
			rethinkkv.WithMaxNewTokens(maxNew),
			rethinkkv.WithMaxBatch(batch),
			rethinkkv.WithKVPages(pages),
			rethinkkv.WithPageTokens(pageTokens),
			rethinkkv.WithSchedPolicy(schedPolicy),
			rethinkkv.WithKVQuant(method),
		)
		if err != nil {
			return kvQuantRun{}, err
		}
		defer srv.Close()
		budget := srv.PageBudget()
		for _, prompt := range prompts {
			if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt}); err != nil {
				return kvQuantRun{}, err
			}
		}
		if err := srv.Drain(context.Background()); err != nil {
			return kvQuantRun{}, err
		}
		outs := srv.Outcomes()
		st := srv.Stats()
		return kvQuantRun{
			Method:       method,
			PageBudget:   budget,
			CapacityX:    float64(budget) / float64(pages),
			TokensPerSec: rethinkkv.TokensPerSec(outs),
			TTFTP50Ms:    1000 * rethinkkv.Percentile(rethinkkv.TTFTs(outs), 50),
			TTFTP99Ms:    1000 * rethinkkv.Percentile(rethinkkv.TTFTs(outs), 99),
			MakespanS:    rethinkkv.Makespan(outs),
			Preemptions:  st.Preemptions,
			PeakKVPages:  st.PeakKVPages,
			SLOGoodput:   rethinkkv.SLOGoodput(outs, slo),
		}, nil
	}

	// Interleave the methods across repetitions so machine-level noise
	// (CPU steal, frequency drift) lands on every method alike, then keep
	// each method's best-throughput rep. The scheduler is deterministic,
	// so preemptions / peak pages / budget are identical across reps —
	// only the wall-clock metrics vary, and the least-disturbed rep is
	// the faithful estimate of each method's structural cost.
	runs := make(map[string][]kvQuantRun, len(methods))
	for r := 0; r < reps; r++ {
		for _, name := range methods {
			run, err := serveOnce(name)
			if err != nil {
				return nil, err
			}
			runs[name] = append(runs[name], run)
		}
	}

	// Accuracy deltas, once per quantized method (fp32 is the reference
	// itself — its deltas are identically zero, so the evaluator rejects it).
	ev, err := rethinkkv.NewEvaluator(rethinkkv.WithSeed(seed), rethinkkv.WithContSteps(16))
	if err != nil {
		return nil, err
	}
	samples := ev.LongBenchSamples(4, 96, seed)

	baseline := 0.0
	for _, name := range methods {
		reps := runs[name]
		sort.Slice(reps, func(i, j int) bool { return reps[i].TokensPerSec < reps[j].TokensPerSec })
		run := reps[len(reps)-1]
		if name == rethinkkv.KVQuantFP32 {
			baseline = run.TokensPerSec
		} else if baseline > 0 {
			run.SpeedupVsFP32 = run.TokensPerSec / baseline
		}
		if name != rethinkkv.KVQuantFP32 {
			for _, s := range samples {
				r, err := ev.Evaluate(ev.Baseline(s), name)
				if err != nil {
					return nil, err
				}
				run.KeyFidelity += r.Fidelity / float64(len(samples))
				run.Agreement += r.Agreement / float64(len(samples))
				run.HiddenSim += r.HiddenSim / float64(len(samples))
			}
		}
		sc.Methods = append(sc.Methods, run)
		fmt.Fprintf(os.Stderr, "kvquant: %-5s budget %3d pages (%.2fx)   %7.1f tok/s (%.2fx)   ttft p50 %6.1fms   preempt %3d   peak %3d   goodput %.2f\n",
			name, run.PageBudget, run.CapacityX, run.TokensPerSec, run.SpeedupVsFP32, run.TTFTP50Ms, run.Preemptions, run.PeakKVPages, run.SLOGoodput)
	}
	return sc, nil
}

// runSparseScenario serves one long-context request through a full-attention
// server and one sparse server per topK page budget, interleaved across
// repetitions with the best decode rate kept (the scheduler is deterministic;
// only wall time varies — same estimator as the KV quant scenario). Decode
// tokens/s spans first token to finish: prefill is dense and identical under
// every setting, so the decode window is exactly where page selection pays.
// Accuracy runs once per budget on the shared evaluator at 512-token prompts:
// recall is the true attention mass the selected pages carried, and task
// score is priced against a loose-topK run of the same samples (topK at or
// above the resident page count reproduces the dense baseline bit-for-bit).
func runSparseScenario(topKSpec string, reps, ctxLen, maxNew, pageTokens int, seed uint64) (*sparseScenario, error) {
	const vocab = 512
	prompt := make([]int, ctxLen)
	for i := range prompt {
		prompt[i] = int((uint64(i)*2654435761 + seed) % uint64(vocab))
	}
	var topKs []int
	for _, spec := range strings.Split(topKSpec, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		k, err := strconv.Atoi(spec)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bad sparse topK %q", spec)
		}
		topKs = append(topKs, k)
	}
	if reps < 1 {
		reps = 1
	}
	sc := &sparseScenario{
		Description:  "Quest-style sparse decode vs full attention on one long-context request. The prompt prefills densely (chunked, identical under every setting); decode then reads either every resident KV page or only the topK most critical pages per (layer, kv-head), scored from per-page key min/max summaries. decode_tokens_per_sec spans first token to finish; pages_read_frac is the share of resident pages decode actually touched. recall/agreement/task_score come from the shared evaluator at 512-token prompts: recall is the dense attention mass the selected pages carried, task_score_delta_vs_full prices the skipped pages against a loose-topK (bit-identical dense) run.",
		PromptTokens: ctxLen,
		MaxNew:       maxNew,
		PageTokens:   pageTokens,
		PromptPages:  (ctxLen + pageTokens - 1) / pageTokens,
	}

	serveOnce := func(topK int) (sparseRun, error) {
		srv, err := rethinkkv.NewServer(
			rethinkkv.WithSeed(seed),
			rethinkkv.WithMaxNewTokens(maxNew),
			rethinkkv.WithMaxBatch(1),
			rethinkkv.WithPageTokens(pageTokens),
			rethinkkv.WithPrefillChunk(256),
			rethinkkv.WithSparseAttention(topK),
		)
		if err != nil {
			return sparseRun{}, err
		}
		defer srv.Close()
		if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt}); err != nil {
			return sparseRun{}, err
		}
		if err := srv.Drain(context.Background()); err != nil {
			return sparseRun{}, err
		}
		outs := srv.Outcomes()
		st := srv.Stats()
		if len(outs) != 1 {
			return sparseRun{}, fmt.Errorf("sparse scenario: %d outcomes, want 1", len(outs))
		}
		o := outs[0]
		run := sparseRun{TopK: topK, PagesSelected: st.SparsePagesSelected, PagesTotal: st.SparsePagesTotal}
		if o.RespLen > 1 && o.Finish > o.FirstToken {
			run.DecodeTokPerS = float64(o.RespLen-1) / (o.Finish - o.FirstToken)
		}
		if run.PagesTotal > 0 {
			run.PagesReadFrac = float64(run.PagesSelected) / float64(run.PagesTotal)
		}
		return run, nil
	}

	// Interleave full attention (topK 0) with every sparse budget so
	// machine-level noise lands on all settings alike.
	settings := append([]int{0}, topKs...)
	best := make(map[int]sparseRun, len(settings))
	for r := 0; r < reps; r++ {
		for _, k := range settings {
			run, err := serveOnce(k)
			if err != nil {
				return nil, err
			}
			if prev, ok := best[k]; !ok || run.DecodeTokPerS > prev.DecodeTokPerS {
				best[k] = run
			}
		}
	}
	sc.Full = best[0]

	// Accuracy: one loose-topK run per sample is the dense baseline (bit-
	// identical to full attention), then each budget is scored against it.
	ev, err := rethinkkv.NewEvaluator(rethinkkv.WithSeed(seed), rethinkkv.WithContSteps(16))
	if err != nil {
		return nil, err
	}
	samples := ev.LongBenchSamples(4, 512, seed)
	refs := make([]*rethinkkv.Reference, len(samples))
	fullScore := 0.0
	for i, s := range samples {
		refs[i] = ev.Baseline(s)
		r, err := ev.EvaluateSparse(refs[i], 1<<20) // topK >= resident pages: dense
		if err != nil {
			return nil, err
		}
		fullScore += r.Score / float64(len(samples))
	}
	sc.Full.TaskScore = fullScore
	fmt.Fprintf(os.Stderr, "sparse: full  decode %7.1f tok/s   %d prompt pages   score %5.1f\n",
		sc.Full.DecodeTokPerS, sc.PromptPages, fullScore)

	for _, k := range topKs {
		run := best[k]
		if sc.Full.DecodeTokPerS > 0 {
			run.SpeedupVsFull = run.DecodeTokPerS / sc.Full.DecodeTokPerS
		}
		for _, ref := range refs {
			r, err := ev.EvaluateSparse(ref, k)
			if err != nil {
				return nil, err
			}
			run.Recall += r.Recall / float64(len(refs))
			run.Agreement += r.Agreement / float64(len(refs))
			run.TaskScore += r.Score / float64(len(refs))
		}
		run.TaskScoreDelta = run.TaskScore - fullScore
		sc.TopK = append(sc.TopK, run)
		fmt.Fprintf(os.Stderr, "sparse: topK %-4d decode %7.1f tok/s (%.2fx)   pages read %4.1f%%   recall %.3f   agreement %.3f   score %5.1f (delta %+.1f)\n",
			k, run.DecodeTokPerS, run.SpeedupVsFull, 100*run.PagesReadFrac, run.Recall, run.Agreement, run.TaskScore, run.TaskScoreDelta)
	}
	return sc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func goMaxProcs() int { return runtime.GOMAXPROCS(0) }
