// Command kvtools regenerates the paper's tool-suite experiments (Section
// 5): Table 6 (throughput and length predictor accuracy) and Table 8 (the
// request router's average end-to-end latency under four policies). It
// drives the public rethinkkv API only.
package main

import (
	"flag"
	"fmt"
	"os"

	"rethinkkv"
)

func main() {
	table := flag.String("table", "all", "table to run: 6, 8, all")
	n := flag.Int("n", 1000, "request count for the router study")
	rps := flag.Float64("rps", 10, "Poisson arrival rate for the router study")
	seed := flag.Uint64("seed", 1, "experiment seed")
	advantage := flag.String("advantage", "", "print the throughput-analysis advantage map for a method (e.g. stream-512)")
	flag.Parse()

	if *advantage != "" {
		a, err := rethinkkv.ComputeAdvantage(*advantage,
			[]int{1, 2, 4, 8, 16}, []int{256, 512, 1024, 2048, 4096, 8192})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(a.Format())
		dec, pre := a.AdvantageousFraction()
		fmt.Printf("advantageous cells: decode %.0f%%, prefill %.0f%%\n", 100*dec, 100*pre)
		return
	}

	if *table == "6" || *table == "all" {
		fmt.Println(rethinkkv.Table6Predictors(*seed).Format())
	}
	if *table == "8" || *table == "all" {
		t, err := rethinkkv.Table8Router(*n, *rps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
	}
}
