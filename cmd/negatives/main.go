// Command negatives regenerates the paper's negative-sample experiments
// (Section 4.4 and Section 5.3): Figure 6 (threshold vs negative counts),
// Figure 7 (task-type breakdown), and Table 7 (scores on the negative
// benchmark). Every number comes from running the tiny transformer for real
// under each compression method, via the public rethinkkv API.
package main

import (
	"flag"
	"fmt"
	"os"

	"rethinkkv"
)

func main() {
	n := flag.Int("n", 120, "LongBench-like sample count")
	promptLen := flag.Int("prompt", 256, "prompt scale in tokens")
	seed := flag.Uint64("seed", 1, "experiment seed")
	fig := flag.String("fig", "all", "figure to run: 6, 7, all")
	table := flag.String("table", "", "table to run: 7")
	family := flag.String("family", "llama", "model family seed: llama or mistral (Figures 17-18, Table 11)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "evaluating %d samples × 5 methods on the tiny model (%s family)...\n", *n, *family)
	var st *rethinkkv.NegativeStudy
	if *family == "mistral" {
		st = rethinkkv.MistralNegativeStudy(*n, *promptLen, *seed)
	} else {
		st = rethinkkv.RunNegativeStudy(*n, *promptLen, *seed)
	}

	if *fig == "6" || *fig == "all" {
		fmt.Print(rethinkkv.FormatAll(st.Fig6Thresholds()))
	}
	if *fig == "7" || *fig == "all" {
		fmt.Println(st.Fig7TaskBreakdown().Format())
	}
	if *table == "7" || *fig == "all" {
		fmt.Println(st.Table7NegativeBenchmark().Format())
	}
}
