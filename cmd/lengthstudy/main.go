// Command lengthstudy regenerates the paper's response-length experiments:
// Table 4 (semantic score and length increase on verbose requests), Table 5
// (≥50% length-shift ratios), Figure 4 (length-difference distributions),
// and Figure 5 (end-to-end latency CDF). It drives the public rethinkkv API
// only.
package main

import (
	"flag"
	"fmt"
	"os"

	"rethinkkv"
)

func main() {
	table := flag.String("table", "", "table to run: 4, 5, 9")
	fig := flag.String("fig", "", "figure to run: 4, 5, 15, 16, all")
	n := flag.Int("n", 1000, "ShareGPT-like sample count")
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	ran := false
	if *table == "5" || *fig == "all" {
		fmt.Println(rethinkkv.Table5Shift(*n, *seed).Format())
		ran = true
	}
	if *table == "4" || *fig == "all" {
		fmt.Println(rethinkkv.Table4Verbosity(24, *seed).Format())
		ran = true
	}
	if *fig == "4" || *fig == "all" {
		fmt.Print(rethinkkv.FormatAll(rethinkkv.Fig4LengthDistribution(*n, *seed)))
		ran = true
	}
	if *fig == "5" || *fig == "all" {
		fmt.Println(rethinkkv.Fig5E2ECDF(*n, *seed).Format())
		ran = true
	}
	if *table == "9" || *fig == "all" {
		fmt.Println(rethinkkv.Table9MistralShift(*n, *seed).Format())
		ran = true
	}
	if *fig == "15" || *fig == "all" {
		fmt.Print(rethinkkv.FormatAll(rethinkkv.Fig15MistralLengthDistribution(*n, *seed)))
		ran = true
	}
	if *fig == "16" || *fig == "all" {
		fmt.Println(rethinkkv.Fig16MistralE2E(*n, *seed).Format())
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
