// Command kvbench regenerates the paper's throughput experiments:
// Figure 1 (engine comparison, method prefill/decode sweeps), Figure 2
// (LLaMA-70B on H800), Figure 3 (attention-layer time), Table 3 (tensor
// parallelism), and the appendix TP figures (8-14). It drives the public
// rethinkkv API only.
//
// Usage:
//
//	kvbench -fig 1ab          # Figure 1 (a-b)
//	kvbench -fig all          # everything
//	kvbench -table 3          # Table 3
//	kvbench -model mistral-7b # appendix model variants
package main

import (
	"flag"
	"fmt"
	"os"

	"rethinkkv"
)

func main() {
	fig := flag.String("fig", "", "figure to run: 1ab, 1cd, 1eh, 1il, 2, 3, tp, all")
	table := flag.String("table", "", "table to run: 3")
	modelName := flag.String("model", "llama-2-7b", "model shape descriptor")
	hwName := flag.String("hw", "a6000", "hardware: a6000 or h800")
	flag.Parse()

	study, err := rethinkkv.NewThroughputStudy(*modelName, *hwName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	batches := []int{1, 2, 4, 8, 16}
	prompts := []int{512, 1024, 2048, 4096, 6144, 8192}
	kvs := []int{512, 1024, 2048, 4096, 6144, 8192}

	ran := false
	run := func(name string, fn func()) {
		if *fig == name || *fig == "all" {
			fn()
			ran = true
		}
	}
	run("1ab", func() {
		fmt.Println(study.EngineDecode(256, batches).Format())
		fmt.Println(study.EngineDecode(2048, batches).Format())
	})
	run("1cd", func() {
		fmt.Println(study.StreamSpeedup(1024, batches).Format())
		fmt.Println(study.StreamSpeedup(2048, batches).Format())
	})
	run("1eh", func() {
		fmt.Print(rethinkkv.FormatAll(study.PrefillSweep(batches, prompts)))
	})
	run("1il", func() {
		fmt.Print(rethinkkv.FormatAll(study.DecodeSweep(batches, kvs)))
	})
	run("2", func() {
		fmt.Print(rethinkkv.FormatAll(rethinkkv.Fig2H800(prompts, kvs)))
	})
	run("3", func() {
		fmt.Print(rethinkkv.FormatAll(study.AttentionTime([]int{1024, 2048, 3072, 4096})))
	})
	run("tp", func() {
		fmt.Print(rethinkkv.FormatAll(study.TensorParallelFigures(batches)))
	})
	run("8", func() {
		fmt.Print(rethinkkv.FormatAll(rethinkkv.Fig8Mistral(batches, prompts[:4])))
	})
	run("9", func() {
		fmt.Print(rethinkkv.FormatAll(rethinkkv.Fig9SnapKV(batches, kvs[:4])))
	})
	run("10", func() {
		fmt.Print(rethinkkv.FormatAll(rethinkkv.Fig10LLaMA13B(batches, prompts[:4])))
	})
	if *table == "3" || *fig == "all" {
		fmt.Println(study.TensorParallelTable().Format())
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
