// Command kvbench regenerates the paper's throughput experiments:
// Figure 1 (engine comparison, method prefill/decode sweeps), Figure 2
// (LLaMA-70B on H800), Figure 3 (attention-layer time), Table 3 (tensor
// parallelism), and the appendix TP figures (8-14).
//
// Usage:
//
//	kvbench -fig 1ab          # Figure 1 (a-b)
//	kvbench -fig all          # everything
//	kvbench -table 3          # Table 3
//	kvbench -model mistral-7b # appendix model variants
package main

import (
	"flag"
	"fmt"
	"os"

	"rethinkkv/internal/experiments"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
)

func main() {
	fig := flag.String("fig", "", "figure to run: 1ab, 1cd, 1eh, 1il, 2, 3, tp, all")
	table := flag.String("table", "", "table to run: 3")
	modelName := flag.String("model", "llama-2-7b", "model shape descriptor")
	hwName := flag.String("hw", "a6000", "hardware: a6000 or h800")
	flag.Parse()

	cfg, ok := model.ByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(1)
	}
	hw, ok := gpu.ByName(*hwName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown hardware %q\n", *hwName)
		os.Exit(1)
	}
	tc := experiments.ThroughputConfig{HW: hw, Model: cfg}

	batches := []int{1, 2, 4, 8, 16}
	prompts := []int{512, 1024, 2048, 4096, 6144, 8192}
	kvs := []int{512, 1024, 2048, 4096, 6144, 8192}

	ran := false
	run := func(name string, fn func()) {
		if *fig == name || *fig == "all" {
			fn()
			ran = true
		}
	}
	run("1ab", func() {
		fmt.Println(experiments.Fig1EngineDecode(tc, 256, batches).Format())
		fmt.Println(experiments.Fig1EngineDecode(tc, 2048, batches).Format())
	})
	run("1cd", func() {
		fmt.Println(experiments.Fig1StreamSpeedup(tc, 1024, batches).Format())
		fmt.Println(experiments.Fig1StreamSpeedup(tc, 2048, batches).Format())
	})
	run("1eh", func() {
		for _, f := range experiments.Fig1Prefill(tc, batches, prompts) {
			fmt.Println(f.Format())
		}
	})
	run("1il", func() {
		for _, f := range experiments.Fig1Decode(tc, batches, kvs) {
			fmt.Println(f.Format())
		}
	})
	run("2", func() {
		for _, f := range experiments.Fig2H800(prompts, kvs) {
			fmt.Println(f.Format())
		}
	})
	run("3", func() {
		for _, f := range experiments.Fig3AttentionTime(tc, []int{1024, 2048, 3072, 4096}) {
			fmt.Println(f.Format())
		}
	})
	run("tp", func() {
		for _, f := range experiments.AppendixTPFigures(tc, batches) {
			fmt.Println(f.Format())
		}
	})
	run("8", func() {
		fmt.Print(experiments.FormatAll(experiments.Fig8Mistral(batches, prompts[:4])))
	})
	run("9", func() {
		fmt.Print(experiments.FormatAll(experiments.Fig9SnapKV(batches, kvs[:4])))
	})
	run("10", func() {
		fmt.Print(experiments.FormatAll(experiments.Fig10LLaMA13B(batches, prompts[:4])))
	})
	if *table == "3" || *fig == "all" {
		fmt.Println(experiments.Table3TP(tc).Format())
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
