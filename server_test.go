package rethinkkv_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv"
)

// The continuous-batching server must reproduce exactly what the plain
// pipeline decodes for the same prompts — the facade-level equivalence
// acceptance test.
func TestServerMatchesPipelineGenerate(t *testing.T) {
	const maxNew = 14
	prompts := [][]int{
		{1, 2, 3, 4, 5},
		{100, 200, 300},
		{7, 7, 7, 7, 7, 7, 7, 7},
		{42},
		{350, 351, 352, 353, 354, 355},
	}

	p, err := rethinkkv.New(rethinkkv.WithSeed(5), rethinkkv.WithMaxNewTokens(maxNew))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		stream, err := p.Generate(context.Background(), prompt)
		if err != nil {
			t.Fatal(err)
		}
		for tok := range stream {
			want[i] = append(want[i], tok.ID)
		}
	}

	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(5),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(3),
		rethinkkv.WithPageTokens(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	chans := make([]<-chan rethinkkv.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		var got []int
		var positions []int
		for tok := range ch {
			got = append(got, tok.ID)
			positions = append(positions, tok.Pos)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got), len(want[i]))
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("request %d token %d: server %d != pipeline %d", i, j, got[j], want[i][j])
			}
			if positions[j] != len(prompts[i])+j {
				t.Fatalf("request %d token %d: pos %d, want %d", i, j, positions[j], len(prompts[i])+j)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Completed != len(prompts) {
		t.Fatalf("Completed = %d, want %d", st.Completed, len(prompts))
	}
	if out := srv.Outcomes(); len(out) != len(prompts) {
		t.Fatalf("%d outcomes, want %d", len(out), len(prompts))
	}
}

func TestServerPreemptionStaysExact(t *testing.T) {
	const maxNew = 14
	prompts := [][]int{
		{1, 2, 3, 4, 5},
		{100, 200, 300},
		{7, 7, 7, 7, 7, 7, 7, 7},
		{9, 8, 7},
	}
	p, err := rethinkkv.New(rethinkkv.WithSeed(5), rethinkkv.WithMaxNewTokens(maxNew))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		out, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	// A budget of 10 four-token pages holds less than two full requests
	// (8 prompt + 14 new → 6 pages), forcing evict-and-recompute.
	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(5),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(4),
		rethinkkv.WithPageTokens(4),
		rethinkkv.WithKVPages(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	chans := make([]<-chan rethinkkv.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		var got []int
		for tok := range ch {
			got = append(got, tok.ID)
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != %d after preemption", i, j, got[j], want[i][j])
			}
		}
	}
	if st := srv.Stats(); st.Preemptions == 0 {
		t.Fatal("tiny page budget never forced a preemption")
	}
}

// TestServerPrefillChunkBitIdentical pins the facade's chunked prefill: a
// long prompt served under a small WithPrefillChunk must stream exactly
// the tokens Pipeline.Generate produces, and the server must report the
// chunked prefill actually ran.
func TestServerPrefillChunkBitIdentical(t *testing.T) {
	const maxNew = 8
	long := make([]int, 90)
	for i := range long {
		long[i] = (i*19 + 2) % 512
	}
	prompts := [][]int{long, {5, 6, 7}, {400, 401}}

	p, err := rethinkkv.New(rethinkkv.WithSeed(9), rethinkkv.WithMaxNewTokens(maxNew))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		stream, err := p.Generate(context.Background(), prompt)
		if err != nil {
			t.Fatal(err)
		}
		for tok := range stream {
			want[i] = append(want[i], tok.ID)
		}
	}

	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(9),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(3),
		rethinkkv.WithPageTokens(8),
		rethinkkv.WithPrefillChunk(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	chans := make([]<-chan rethinkkv.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		var got []int
		for tok := range ch {
			got = append(got, tok.ID)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got), len(want[i]))
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != pipeline %d", i, j, got[j], want[i][j])
			}
		}
	}
	st := srv.Stats()
	if min := len(long) / 16; st.PrefillChunks < min {
		t.Fatalf("PrefillChunks = %d, want >= %d", st.PrefillChunks, min)
	}

	if _, err := rethinkkv.NewServer(rethinkkv.WithPrefillChunk(-3)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("negative prefill chunk = %v, want ErrInvalidOption", err)
	}
}

func TestServerErrors(t *testing.T) {
	if _, err := rethinkkv.NewServer(rethinkkv.WithSchedPolicy("lifo")); !errors.Is(err, rethinkkv.ErrUnknownPolicy) {
		t.Fatalf("bad policy = %v, want ErrUnknownPolicy", err)
	}
	if _, err := rethinkkv.NewServer(rethinkkv.WithMaxBatch(0)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("zero batch = %v, want ErrInvalidOption", err)
	}

	srv, err := rethinkkv.NewServer(
		rethinkkv.WithKVPages(4),
		rethinkkv.WithPageTokens(4),
		rethinkkv.WithMaxNewTokens(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{}}); !errors.Is(err, rethinkkv.ErrEmptyPrompt) {
		t.Fatalf("empty prompt = %v, want ErrEmptyPrompt", err)
	}
	if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{1, 99999}}); !errors.Is(err, rethinkkv.ErrInvalidToken) {
		t.Fatalf("out-of-vocab = %v, want ErrInvalidToken", err)
	}
	long := make([]int, 32) // 32 prompt + 8 new = 10 pages > 4-page budget
	if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: long}); !errors.Is(err, rethinkkv.ErrOutOfPages) {
		t.Fatalf("oversized = %v, want ErrOutOfPages", err)
	}
	srv.Close()
	if _, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: []int{1}}); !errors.Is(err, rethinkkv.ErrServerClosed) {
		t.Fatalf("submit after close = %v, want ErrServerClosed", err)
	}
}

func TestSchedPoliciesRegistry(t *testing.T) {
	pols := rethinkkv.SchedPolicies()
	if len(pols) != 2 {
		t.Fatalf("SchedPolicies = %v, want 2 entries", pols)
	}
	for _, name := range pols {
		srv, err := rethinkkv.NewServer(rethinkkv.WithSchedPolicy(name))
		if err != nil {
			t.Fatalf("policy %q rejected: %v", name, err)
		}
		srv.Close()
	}
}

func TestNewClusterRejectsBadSchedPolicy(t *testing.T) {
	_, err := rethinkkv.NewCluster([]string{"fp16"}, rethinkkv.WithRealEngine(), rethinkkv.WithSchedPolicy("bogus"))
	if !errors.Is(err, rethinkkv.ErrUnknownPolicy) {
		t.Fatalf("bad policy at cluster construction = %v, want ErrUnknownPolicy", err)
	}
}

// Real-engine trace replay: the same ServeTrace call, backed by actual
// continuous-batching decode instead of the cost-model simulator.
func TestServeTraceRealEngine(t *testing.T) {
	cluster, err := rethinkkv.NewCluster([]string{"fp16", "fp16"},
		rethinkkv.WithRealEngine(),
		rethinkkv.WithSeed(3),
		rethinkkv.WithMaxNewTokens(6),
		rethinkkv.WithMaxBatch(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.Router(rethinkkv.RouterBaseline)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]rethinkkv.Request, 6)
	for i := range reqs {
		reqs[i] = rethinkkv.Request{ID: i, PromptLen: 5 + i, RefLen: 6, ArrivalTime: 0}
	}
	out, err := cluster.ServeTrace(reqs, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("%d outcomes, want %d", len(out), len(reqs))
	}
	gpus := map[int]int{}
	for i, o := range out {
		if o.Req.ID != i {
			t.Fatalf("outcome %d has ID %d", i, o.Req.ID)
		}
		if o.RespLen != 6 {
			t.Fatalf("request %d RespLen %d, want 6", i, o.RespLen)
		}
		if o.TTFT() < 0 || o.E2E() <= 0 {
			t.Fatalf("request %d: bad timing %+v", i, o)
		}
		gpus[o.GPU]++
	}
	if len(gpus) < 2 {
		t.Fatalf("baseline router used %d of 2 engines", len(gpus))
	}
	if tps := rethinkkv.TokensPerSec(out); tps <= 0 {
		t.Fatalf("TokensPerSec = %v", tps)
	}
}

// TestServerTokenBudgetBitIdentical pins the facade's stall-free packing: k
// long prompts arriving together under WithTokenBudget stream exactly what
// Pipeline.Generate produces, and the server must report that chunks from
// distinct prompts actually shared budgeted passes.
func TestServerTokenBudgetBitIdentical(t *testing.T) {
	const maxNew = 8
	prompts := make([][]int, 4)
	for i := range prompts {
		p := make([]int, 40+9*i)
		for j := range p {
			p[j] = (j*13 + i*29 + 3) % 512
		}
		prompts[i] = p
	}

	p, err := rethinkkv.New(rethinkkv.WithSeed(9), rethinkkv.WithMaxNewTokens(maxNew))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		stream, err := p.Generate(context.Background(), prompt)
		if err != nil {
			t.Fatal(err)
		}
		for tok := range stream {
			want[i] = append(want[i], tok.ID)
		}
	}

	srv, err := rethinkkv.NewServer(
		rethinkkv.WithSeed(9),
		rethinkkv.WithMaxNewTokens(maxNew),
		rethinkkv.WithMaxBatch(4),
		rethinkkv.WithPageTokens(8),
		rethinkkv.WithPrefillChunk(16),
		rethinkkv.WithTokenBudget(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	chans := make([]<-chan rethinkkv.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := srv.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		var got []int
		for tok := range ch {
			got = append(got, tok.ID)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got), len(want[i]))
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != pipeline %d", i, j, got[j], want[i][j])
			}
		}
	}
	st := srv.Stats()
	if st.PackedChunks == 0 {
		t.Fatal("four simultaneous long prompts under a generous budget packed no chunks")
	}
	if st.BudgetTokens == 0 {
		t.Fatal("BudgetTokens stayed 0 across a served trace")
	}

	if _, err := rethinkkv.NewServer(rethinkkv.WithTokenBudget(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewServer(WithTokenBudget(-1)): %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithTokenBudget(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewFleet(WithTokenBudget(-1)): %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewCluster([]string{"fp16"}, rethinkkv.WithTokenBudget(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewCluster(WithTokenBudget(-1)): %v, want ErrInvalidOption", err)
	}
}
