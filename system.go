package rethinkkv

import (
	"fmt"

	"rethinkkv/internal/perf"
)

// System is the analytical cost-model view of one full-scale deployment
// choice: (hardware, model, engine, method, tensor-parallel degree). It
// prices prefill and decode from first principles — the substrate of the
// paper's throughput results.
type System struct {
	est *perf.Estimator
}

// NewSystem builds the cost model for one deployment. Options: WithHardware,
// WithModel, WithEngine, WithMethod, WithTP. Unknown names return the
// matching typed error.
func NewSystem(opts ...Option) (*System, error) {
	cfg := buildConfig(opts)
	est, err := newEstimator(cfg, cfg.method)
	if err != nil {
		return nil, err
	}
	return &System{est: est}, nil
}

// newEstimator resolves a config (with an explicit method) to an estimator.
func newEstimator(cfg config, method string) (*perf.Estimator, error) {
	hw, err := resolveHardware(cfg.hardware)
	if err != nil {
		return nil, err
	}
	mc, err := resolveModel(cfg.model)
	if err != nil {
		return nil, err
	}
	eng, err := resolveEngine(cfg.engine)
	if err != nil {
		return nil, err
	}
	m, err := resolveMethod(method)
	if err != nil {
		return nil, err
	}
	est, err := perf.New(hw, mc, eng, m, cfg.tp)
	if err != nil {
		return nil, fmt.Errorf("rethinkkv: %w", err)
	}
	return est, nil
}

// Method returns the system's compression method name.
func (s *System) Method() string { return s.est.Method.Name }

// Model returns the system's model name.
func (s *System) Model() string { return s.est.Model.Name }

// Hardware returns the system's accelerator name.
func (s *System) Hardware() string { return s.est.HW.Name }

// Engine returns the system's serving-engine name.
func (s *System) Engine() string { return s.est.Engine.Name }

// TP returns the tensor-parallel degree.
func (s *System) TP() int { return s.est.TP }

// DecodeThroughput returns decode tokens/second for a batch at kvLen cached
// tokens.
func (s *System) DecodeThroughput(batch, kvLen int) float64 {
	return s.est.DecodeThroughput(batch, kvLen)
}

// PrefillThroughput returns prompt tokens/second processed.
func (s *System) PrefillThroughput(batch, promptLen int) float64 {
	return s.est.PrefillThroughput(batch, promptLen)
}

// DecodeStepLatency returns the wall time of one decode step, seconds.
func (s *System) DecodeStepLatency(batch, kvLen int) float64 {
	return s.est.DecodeStepLatency(batch, kvLen)
}

// PrefillLatency returns the wall time to prefill a batch, seconds.
func (s *System) PrefillLatency(batch, promptLen int) float64 {
	return s.est.PrefillLatency(batch, promptLen)
}

// EndToEndLatency returns prefill plus decode time for one request shape,
// seconds.
func (s *System) EndToEndLatency(batch, promptLen, outputLen int) float64 {
	return s.est.EndToEndLatency(batch, promptLen, outputLen)
}

// AttentionPrefillTime returns the prefill attention-layer time (Figure 3a),
// including any method-forced score materialisation, seconds.
func (s *System) AttentionPrefillTime(batch, promptLen int) float64 {
	return s.est.AttentionPrefillTime(batch, promptLen)
}

// MemoryRequired returns the per-GPU bytes for weights, KV cache,
// activations, and method workspace at a batch and KV length.
func (s *System) MemoryRequired(batch, kvLen int) int64 {
	return s.est.MemoryRequired(batch, kvLen)
}

// Fits reports whether the configuration fits in usable device memory.
func (s *System) Fits(batch, kvLen int) bool { return s.est.Fits(batch, kvLen) }

// CompressionRatio returns FP16 bytes over compressed bytes at seqLen under
// the system's method.
func (s *System) CompressionRatio(seqLen int) float64 {
	return s.est.Method.Cost.CompressionRatio(s.est.Model.Layers, s.est.Model.KVDim(), seqLen)
}
