package rethinkkv

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/fleet"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/model"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/router"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/workload"
)

// Request is one ShareGPT-like serving request (ID, prompt length, reference
// response length, arrival time).
type Request = workload.Request

// Outcome is one served request: its GPU, realised response length, and the
// batch timing from which E2E, TTFT, and TBOT derive.
type Outcome = serving.Outcome

// GPUView is the router-visible state of one GPU at routing time.
//
// The first block of fields is populated by every backend. The live block
// below it is sampled from real continuous-batching engines only (Fleet,
// and ServeTrace under WithRealEngine); the discrete-event simulator has no
// paged cache or chunked prefill and leaves those fields zero, so custom
// routers must treat PageBudget == 0 as "unbounded / unknown".
type GPUView struct {
	// ID is the GPU's position in the cluster.
	ID int
	// Method is the compression method the GPU runs.
	Method string
	// FreeAt is when the GPU finishes all committed work, seconds.
	FreeAt float64
	// QueuedTokens is the backlog in (prompt + expected response) tokens.
	QueuedTokens float64
	// Now is the decision timestamp, seconds.
	Now float64

	// Running is the engine's live running-set size (decoding plus
	// mid-prefill requests).
	Running int
	// FreePages is the engine's unused KV page budget at decision time;
	// -1 when the budget is unbounded. Meaningful only with PageBudget > 0.
	FreePages int
	// PageBudget is the engine's configured KV page budget (0 = unbounded)
	// and PageTokens its page size in tokens.
	PageBudget int
	PageTokens int
	// PrefillTokens counts admitted prompt tokens not yet prefilled — the
	// engine's in-flight chunked-prefill debt ahead of any new arrival.
	PrefillTokens int
}

// Wait returns the expected queueing delay before new work starts.
func (v GPUView) Wait() float64 {
	if w := v.FreeAt - v.Now; w > 0 {
		return w
	}
	return 0
}

// Router assigns each arriving request to a GPU index. Implement it for
// custom policies, or obtain one of the paper's four policies from
// Cluster.Router. Returning an index outside [0, len(views)) makes
// ServeTrace fail with an error.
type Router interface {
	Name() string
	Route(req Request, views []GPUView) int
}

// Cluster is a simulated multi-GPU serving fleet: one compression method per
// GPU, batch service times from the analytical cost model, and per-request
// response lengths from the length model (so compression's verbose-output
// effect degrades its own end-to-end latency, as the paper observes).
type Cluster struct {
	cfg config
	sim *serving.Cluster

	mu    sync.Mutex
	preds *router.Predictors
}

// NewCluster builds a fleet with one GPU per method name. Options:
// WithHardware, WithModel, WithEngine, WithTP, WithBatchCap, WithSeed.
func NewCluster(methods []string, opts ...Option) (*Cluster, error) {
	if len(methods) == 0 {
		return nil, ErrEmptyCluster
	}
	cfg := buildConfig(opts)
	if cfg.batchCap <= 0 {
		return nil, fmt.Errorf("%w: batch cap must be positive, got %d", ErrInvalidOption, cfg.batchCap)
	}
	if cfg.schedPol != SchedFCFS && cfg.schedPol != SchedSJF {
		// Only the WithRealEngine backend schedules, but an unknown policy
		// name is a construction-time mistake either way.
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.schedPol)
	}
	if cfg.prefillChunk <= 0 {
		// Likewise real-engine-only, but fail at construction like
		// NewServer rather than mid-ServeTrace with an untyped error.
		return nil, fmt.Errorf("%w: prefill chunk must be positive, got %d", ErrInvalidOption, cfg.prefillChunk)
	}
	if cfg.tokenBudget < 0 {
		return nil, fmt.Errorf("%w: negative token budget %d", ErrInvalidOption, cfg.tokenBudget)
	}
	if _, err := resolveKVQuant(cfg.kvQuant); err != nil {
		// Real-engine-only as well: the simulator models compression
		// methods, not live page precision, but fail fast here too.
		return nil, err
	}
	if cfg.sparseTopK < 0 {
		return nil, fmt.Errorf("%w: negative sparse attention topK %d", ErrInvalidOption, cfg.sparseTopK)
	}
	sim := &serving.Cluster{BatchCap: cfg.batchCap, LM: gen.Default(), Seed: cfg.seed}
	for i, name := range methods {
		m, err := resolveMethod(name)
		if err != nil {
			return nil, err
		}
		est, err := newEstimator(cfg, name)
		if err != nil {
			return nil, err
		}
		sim.GPUs = append(sim.GPUs, serving.GPUConfig{ID: i, Method: m, Est: est})
	}
	return &Cluster{cfg: cfg, sim: sim}, nil
}

// Size returns the number of GPUs in the cluster.
func (c *Cluster) Size() int { return len(c.sim.GPUs) }

// GPUMethods returns the per-GPU method names in cluster order.
func (c *Cluster) GPUMethods() []string {
	out := make([]string, len(c.sim.GPUs))
	for i, g := range c.sim.GPUs {
		out[i] = g.Method.Name
	}
	return out
}

// ServeTrace serves the request trace behind the router and returns
// per-request outcomes sorted by request ID. By default it runs the
// discrete-event simulation against the analytical cost model in virtual
// time; a cluster built WithRealEngine replays the same trace through real
// continuous-batching engines (tiny-model decode over paged KV, one engine
// per GPU) in wall-clock time — one metrics vocabulary, two backends.
func (c *Cluster) ServeTrace(reqs []Request, r Router) ([]Outcome, error) {
	if c.cfg.realEngine {
		return c.serveTraceReal(reqs, r)
	}
	inner := serving.Router(routerAdapter{r})
	if nr, ok := r.(*namedRouter); ok {
		// A named policy carries its cluster's estimators: reject a router
		// built for a different fleet rather than silently misrouting, and
		// skip the view round-trip for a matching one.
		if nr.c != c {
			return nil, fmt.Errorf("rethinkkv: router %q belongs to a different cluster", r.Name())
		}
		inner = nr.inner
	}
	out, err := c.sim.Run(reqs, inner)
	if err != nil {
		return nil, fmt.Errorf("rethinkkv: %w", err)
	}
	return out, nil
}

// serveTraceReal replays the trace through the fleet subsystem: one
// continuous-batching engine per GPU behind the router, with live views and
// (by default) cross-engine migration of preemption victims — the same pool
// NewFleet serves live traffic with. Arrivals are honoured in wall-clock
// time (the replay sleeps until each request's ArrivalTime); prompts are
// synthesised deterministically from the cluster seed at each request's
// PromptLen, and responses are capped at WithMaxNewTokens so tiny-model
// replay stays tractable. All engines decode the full-precision paged data
// plane; the per-GPU method names still flow to the router. A router that
// returns an out-of-range index fails the replay with ErrBadRoute.
func (c *Cluster) serveTraceReal(reqs []Request, r Router) ([]Outcome, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	m := model.New(model.Tiny(), c.cfg.seed)
	m.SetSparseTopK(c.cfg.sparseTopK)
	vocab := m.Config().Vocab
	maxPrompt := m.Config().MaxSeq - c.cfg.maxNew
	if maxPrompt < 1 {
		return nil, fmt.Errorf("%w: max new tokens %d leave no prompt room within the model's %d-token context",
			ErrInvalidOption, c.cfg.maxNew, m.Config().MaxSeq)
	}
	inner := serving.Router(routerAdapter{r})
	if nr, ok := r.(*namedRouter); ok {
		// As on the simulator path: reject a policy trained for a different
		// cluster, and skip the public-view round-trip for a matching one.
		if nr.c != c {
			return nil, fmt.Errorf("rethinkkv: router %q belongs to a different cluster", r.Name())
		}
		inner = nr.inner
	}
	methods := make([]compress.Method, len(c.sim.GPUs))
	for i, g := range c.sim.GPUs {
		methods[i] = g.Method
	}
	quantBits, err := resolveKVQuant(c.cfg.kvQuant)
	if err != nil {
		return nil, err // unreachable: NewCluster validated the name
	}
	// One shared clock origin for every engine and the replay itself, so
	// arrivals and outcome timestamps are comparable across GPUs.
	epoch := time.Now()
	pool, err := fleet.New(m, fleet.Config{
		Engines: len(c.sim.GPUs),
		Methods: methods,
		Router:  inner,
		Migrate: c.cfg.migrate,
		Engine: sched.Config{
			MaxBatch:     c.cfg.maxBatch,
			PageTokens:   c.cfg.pageTokens,
			KVPages:      c.cfg.kvPages,
			MaxNew:       c.cfg.maxNew,
			PrefillChunk: c.cfg.prefillChunk,
			TokenBudget:  c.cfg.tokenBudget,
			Policy:       c.cfg.schedPol,
			KVQuantBits:  quantBits,
			Epoch:        epoch,
		},
	})
	if err != nil {
		return nil, translateServeErr(err)
	}
	defer pool.Close()

	ordered := append([]Request(nil), reqs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ArrivalTime < ordered[j].ArrivalTime })
	for _, req := range ordered {
		if wait := req.ArrivalTime - time.Since(epoch).Seconds(); wait > 0 {
			time.Sleep(time.Duration(wait * float64(time.Second)))
		}
		maxNew := stats.MinI(stats.MaxI(req.RefLen, 1), c.cfg.maxNew)
		if _, err := pool.Submit(context.Background(), sched.Request{
			ID:        req.ID,
			Prompt:    tracePrompt(req, c.cfg.seed, vocab, maxPrompt),
			MaxNew:    maxNew,
			Predicted: maxNew,
			Arrival:   req.ArrivalTime,
		}); err != nil {
			return nil, fmt.Errorf("request %d: %w", req.ID, translateServeErr(err))
		}
	}
	if err := pool.Drain(context.Background()); err != nil {
		return nil, translateServeErr(err)
	}
	return pool.Outcomes(), nil
}

// tracePrompt synthesises the deterministic token sequence standing in for
// a trace request's prompt (traces carry lengths, not tokens).
func tracePrompt(req Request, seed uint64, vocab, maxLen int) []int {
	n := stats.MinI(stats.MaxI(req.PromptLen, 1), maxLen)
	r := rng.New(seed ^ (uint64(req.ID)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03))
	prompt := make([]int, n)
	for i := range prompt {
		prompt[i] = r.Intn(vocab)
	}
	return prompt
}

// routerAdapter drives a public Router from an internal backend (the
// discrete-event simulator or the live fleet pool).
type routerAdapter struct{ r Router }

func (a routerAdapter) Name() string { return a.r.Name() }

func (a routerAdapter) Route(req workload.Request, views []serving.GPUView) int {
	return a.r.Route(req, publicViews(views))
}

// publicViews converts internal router views to their public form — the one
// conversion point every backend that drives a public Router shares, so the
// simulator's and the fleet's view vocabularies cannot drift.
func publicViews(views []serving.GPUView) []GPUView {
	pub := make([]GPUView, len(views))
	for i, v := range views {
		pub[i] = GPUView{
			ID: v.ID, Method: v.Method.Name,
			FreeAt: v.FreeAt, QueuedTokens: v.QueuedTokens, Now: v.Now,
			Running: v.Running, FreePages: v.FreePages, PageBudget: v.PageBudget,
			PageTokens: v.PageTokens, PrefillTokens: v.PrefillTokens,
		}
	}
	return pub
}

// Router returns one of the paper's four routing policies — or the
// live-only kv-pressure policy — by name (see Routers() and
// FleetRouters()). Predictor-driven policies train a throughput and length
// predictor per distinct cluster method on first use; the trained suite is
// cached on the cluster.
func (c *Cluster) Router(name string) (Router, error) {
	switch name {
	case RouterBaseline:
		return &namedRouter{c: c, inner: router.Baseline{}}, nil
	case RouterWithThroughput:
		return &namedRouter{c: c, inner: router.WithThroughput{P: c.predictors()}}, nil
	case RouterWithLength:
		return &namedRouter{c: c, inner: router.WithLength{P: c.predictors()}}, nil
	case RouterWithBoth:
		return &namedRouter{c: c, inner: router.WithBoth{P: c.predictors()}}, nil
	case RouterKVPressure:
		p := c.predictors()
		return &namedRouter{c: c, inner: router.KVPressure{P: &p}}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownRouter, name)
}

// predictors lazily trains the per-method predictor suite the policies
// consult, mirroring the paper's Section 5 tooling. Safe for concurrent
// Router calls.
func (c *Cluster) predictors() router.Predictors {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.preds != nil {
		return *c.preds
	}
	lm := c.sim.LM
	salt := c.cfg.seed + 7
	p := router.Predictors{
		Thr:  map[string]*predictor.ThroughputPredictor{},
		Len:  map[string]*predictor.LengthPredictor{},
		Salt: salt,
	}
	train := workload.SampleShareGPT(workload.DefaultShareGPT(2000), c.cfg.seed)
	for _, g := range c.sim.GPUs {
		name := g.Method.Name
		if _, done := p.Thr[name]; done {
			continue
		}
		m := compress.MustGet(name)
		p.Thr[name] = predictor.TrainThroughput(g.Est, predictor.DefaultGrid(), c.cfg.seed+2)
		p.Len[name] = predictor.TrainLength(train, lm.Run(train, m, c.cfg.seed+3), m, salt)
	}
	c.preds = &p
	return p
}

// namedRouter is a paper policy bound to its cluster. It satisfies the
// public Router interface by rebuilding the internal views from the public
// ones: the method comes from the view itself (so a wrapped router still
// routes correctly on a foreign fleet), and the cluster's estimator is
// attached only when the view provably describes this cluster's GPU.
type namedRouter struct {
	c     *Cluster
	inner serving.Router
}

func (r *namedRouter) Name() string { return r.inner.Name() }

func (r *namedRouter) Route(req Request, views []GPUView) int {
	iv := make([]serving.GPUView, len(views))
	for i, v := range views {
		iv[i] = serving.GPUView{
			FreeAt: v.FreeAt, QueuedTokens: v.QueuedTokens, Now: v.Now, ID: v.ID,
			Running: v.Running, FreePages: v.FreePages, PageBudget: v.PageBudget,
			PageTokens: v.PageTokens, PrefillTokens: v.PrefillTokens,
		}
		if m, err := compress.Get(v.Method); err == nil {
			iv[i].Method = m
		}
		if v.ID >= 0 && v.ID < len(r.c.sim.GPUs) && r.c.sim.GPUs[v.ID].Method.Name == v.Method {
			iv[i].Est = r.c.sim.GPUs[v.ID].Est
		}
	}
	return r.inner.Route(req, iv)
}

// ShareGPTTrace draws a deterministic ShareGPT-like request trace of n
// requests. rps > 0 adds Poisson arrival times at that rate; rps == 0 gives
// a closed-loop trace (all arrivals at time zero).
func ShareGPTTrace(n int, rps float64, seed uint64) []Request {
	cfg := workload.DefaultShareGPT(n)
	cfg.RPS = rps
	return workload.SampleShareGPT(cfg, seed)
}

// MeanE2E returns the average end-to-end latency of a run — the paper's
// Table 8 cell value.
func MeanE2E(outcomes []Outcome) float64 { return serving.MeanE2E(outcomes) }

// E2Es extracts per-request end-to-end latencies (Figure 5's CDF input).
func E2Es(outcomes []Outcome) []float64 { return serving.E2Es(outcomes) }
