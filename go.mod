module rethinkkv

go 1.24
