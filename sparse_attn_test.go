package rethinkkv_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv"
)

// A negative topK must fail fast at construction on every facade that
// accepts WithSparseAttention.
func TestSparseAttentionNegativeTopKFailsFast(t *testing.T) {
	if _, err := rethinkkv.NewServer(rethinkkv.WithSparseAttention(-1)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewServer topK -1 = %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewFleet(2, rethinkkv.WithSparseAttention(-2)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewFleet topK -2 = %v, want ErrInvalidOption", err)
	}
	if _, err := rethinkkv.NewCluster([]string{"fp16"}, rethinkkv.WithSparseAttention(-3)); !errors.Is(err, rethinkkv.ErrInvalidOption) {
		t.Fatalf("NewCluster topK -3 = %v, want ErrInvalidOption", err)
	}
}

// A sparse server must serve deterministic streams (identical across two
// identically-seeded servers, with and without KV quantization) and account
// its page selection in ServerStats.
func TestSparseAttentionServerServesDeterministically(t *testing.T) {
	prompt := make([]int, 40) // 10 pages at WithPageTokens(4)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % 512
	}
	run := func(quant string) ([]int, rethinkkv.ServerStats) {
		t.Helper()
		s, err := rethinkkv.NewServer(
			rethinkkv.WithSparseAttention(2), rethinkkv.WithKVQuant(quant),
			rethinkkv.WithSeed(5), rethinkkv.WithMaxNewTokens(12), rethinkkv.WithPageTokens(4))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ch, err := s.Submit(context.Background(), rethinkkv.ServeRequest{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for tok := range ch {
			out = append(out, tok.ID)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		return out, s.Stats()
	}
	for _, quant := range []string{rethinkkv.KVQuantFP32, rethinkkv.KVQuantInt8} {
		a, stA := run(quant)
		b, _ := run(quant)
		if len(a) != 12 {
			t.Fatalf("%s: %d tokens, want 12", quant, len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s token %d: %d != %d across identical servers", quant, j, a[j], b[j])
			}
		}
		if stA.SparsePagesSelected == 0 || stA.SparsePagesSelected >= stA.SparsePagesTotal {
			t.Fatalf("%s: sparse counters (sel=%d, tot=%d) show no real sparsity",
				quant, stA.SparsePagesSelected, stA.SparsePagesTotal)
		}
	}
}
