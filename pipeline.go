package rethinkkv

import (
	"context"
	"fmt"
	"sync"

	"rethinkkv/internal/core"
	"rethinkkv/internal/sched"
)

// Report summarises cache-level effects of one generation pass.
type Report = core.Report

// Token is one streamed generation step: the emitted vocabulary id (ID)
// and its absolute sequence position (Pos, prompt length + offset). Both
// Pipeline.Generate and Server.Submit stream this type, so consumers are
// backend-agnostic.
type Token = sched.Token

// Pipeline runs real tiny-model generation under a compression method. A
// pipeline is reusable and safe for sequential reuse: every Generate or Run
// call executes on a fresh method cache.
type Pipeline struct {
	mu   sync.Mutex
	cfg  config
	core *core.Pipeline
}

// New builds a generation pipeline. Options: WithMethod, WithSeed,
// WithMaxNewTokens. Unknown method names return ErrUnknownMethod.
func New(opts ...Option) (*Pipeline, error) {
	cfg := buildConfig(opts)
	if cfg.maxNew <= 0 {
		return nil, fmt.Errorf("%w: max new tokens must be positive, got %d", ErrInvalidOption, cfg.maxNew)
	}
	if _, err := resolveMethod(cfg.method); err != nil {
		return nil, err
	}
	cp, err := core.NewPipeline(cfg.method, cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("rethinkkv: %w", err)
	}
	return &Pipeline{cfg: cfg, core: cp}, nil
}

// Method returns the pipeline's compression method name.
func (p *Pipeline) Method() string { return p.core.Method.Name }

// Generate prefills the prompt and streams up to WithMaxNewTokens greedily
// decoded tokens. The channel closes when generation completes or ctx is
// cancelled. Each call runs on a fresh cache, so a pipeline may generate any
// number of times. The channel is buffered to the full token budget, so the
// producer terminates even if the consumer abandons the stream early.
func (p *Pipeline) Generate(ctx context.Context, prompt []int) (<-chan Token, error) {
	s, err := p.session(prompt)
	if err != nil {
		return nil, err
	}
	ch := make(chan Token, p.cfg.maxNew)
	go func() {
		defer close(ch)
		for i := 0; i < p.cfg.maxNew; i++ {
			if ctx.Err() != nil {
				return
			}
			pos := s.Pos()
			tok := Token{ID: s.Next(), Pos: pos}
			select {
			case ch <- tok:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// GenerateBatch decodes up to WithMaxNewTokens greedily sampled tokens for
// every prompt, running the decode streams in parallel goroutines. Each
// stream owns an isolated method cache and scratch workspace over the shared
// (immutable) model weights, so outputs are identical to calling Run on each
// prompt sequentially. Results and reports are index-aligned with prompts.
// On context cancellation the partial outputs decoded so far are returned
// alongside ctx.Err().
func (p *Pipeline) GenerateBatch(ctx context.Context, prompts [][]int) ([][]int, []Report, error) {
	if len(prompts) == 0 {
		return nil, nil, ErrEmptyPrompt
	}
	vocab := p.Vocab()
	for i, prompt := range prompts {
		if err := validatePrompt(prompt, vocab); err != nil {
			return nil, nil, fmt.Errorf("%w (prompt %d)", err, i)
		}
	}
	// The pipeline lock guards only session creation (the shared cache
	// factory and last-cache pointer); the decode fan-out runs unlocked so
	// concurrent Generate/Run calls are not stalled for the whole batch.
	p.mu.Lock()
	sessions, err := p.core.NewSessions(ctx, prompts)
	p.mu.Unlock()
	if err != nil {
		return nil, nil, fmt.Errorf("rethinkkv: %w", err)
	}
	outs, reports := core.DecodeSessions(ctx, sessions, p.cfg.maxNew)
	if err := ctx.Err(); err != nil {
		return outs, reports, fmt.Errorf("rethinkkv: %w", err)
	}
	return outs, reports, nil
}

// Run prefills the prompt, greedily decodes maxNew tokens, and reports the
// cache-level effects. Like Generate, it is re-invokable.
func (p *Pipeline) Run(prompt []int, maxNew int) ([]int, Report, error) {
	s, err := p.session(prompt)
	if err != nil {
		return nil, Report{}, err
	}
	out := make([]int, 0, maxNew)
	for i := 0; i < maxNew; i++ {
		out = append(out, s.Next())
	}
	return out, s.Report(), nil
}

// Vocab returns the tiny model's vocabulary size — the exclusive upper
// bound on prompt token ids.
func (p *Pipeline) Vocab() int { return p.core.Model.Config().Vocab }

// validatePrompt checks a prompt against the shared facade contract: it
// must be non-empty and every token must be inside the model vocabulary.
// Pipeline and Server both gate on it.
func validatePrompt(prompt []int, vocab int) error {
	if len(prompt) == 0 {
		return ErrEmptyPrompt
	}
	for i, tok := range prompt {
		if tok < 0 || tok >= vocab {
			return fmt.Errorf("%w: token %d at position %d (vocab %d)", ErrInvalidToken, tok, i, vocab)
		}
	}
	return nil
}

// session starts one generation pass under the pipeline lock.
func (p *Pipeline) session(prompt []int) (*core.Session, error) {
	if err := validatePrompt(prompt, p.Vocab()); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.core.NewSession(prompt)
	if err != nil {
		return nil, fmt.Errorf("rethinkkv: %w", err)
	}
	return s, nil
}
