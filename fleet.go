package rethinkkv

import (
	"context"
	"fmt"
	"sync/atomic"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/fleet"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/model"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/router"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// Fleet is a multi-engine serving cluster over real continuous-batching
// engines: N independent schedulers (each a full Server engine — paged KV,
// chunked prefill, preemption) behind a live router that places every
// submitted request on fresh per-engine views (backlog, running batch,
// free KV pages, in-flight prefill debt, measured step time). It is the
// live-traffic counterpart of the simulated Cluster and the multi-box
// counterpart of Server: one Submit/Drain/Outcomes/Stats surface, three
// backends, one Outcome metrics vocabulary.
//
// When an engine preempts a request under KV page pressure and another
// engine has headroom for its whole remaining lifetime, the fleet migrates
// it: the request's prompt plus already-emitted tokens re-admit on the
// target, whose bit-identical recompute plane rebuilds the cache, so the
// caller's stream is byte-identical to an unmigrated run — migration only
// costs time, which the wall-clock Outcomes expose (see WithMigration).
//
// The fleet is also a failure domain boundary: an engine whose scheduling
// loop panics is quarantined (the router stops seeing it) and its in-flight
// requests fail over to healthy engines through the same replay path, so a
// single replica crash costs recompute time, not answers. Overload is
// handled at admission — WithMaxQueue bounds each engine's queue
// (ErrOverloaded) and WithAdmissionTimeout / ServeRequest.Deadline shed
// queued requests that can no longer meet their TTFT SLO.
type Fleet struct {
	cfg    config
	pool   *fleet.Pool
	name   string
	nextID atomic.Int64
}

// FleetStats snapshots the fleet counters: per-engine scheduler stats plus
// the routing/migration counters only the multi-engine layer has.
type FleetStats struct {
	// Engines holds each engine's ServerStats, fleet order.
	Engines []ServerStats
	// Routed counts router placements per engine; migration re-admissions
	// are not router decisions and appear only in Migrations.
	Routed []int
	// Migrations counts completed cross-engine migrations.
	Migrations int
	// MigrationFailed counts migration handoffs whose target rejected the
	// re-admission; the request was requeued on its source engine (or
	// another healthy one) rather than dropped.
	MigrationFailed int
	// FailedOver counts failure-driven re-homings: requests moved off a
	// failed engine and resumed on a healthy one via bit-identical replay.
	FailedOver int
	// EngineFailures counts engines currently quarantined after a
	// scheduling-loop panic; the router no longer sees them.
	EngineFailures int
}

// Shed sums deadline-shed requests across engines (see ServerStats.Shed).
func (s FleetStats) Shed() int {
	n := 0
	for _, e := range s.Engines {
		n += e.Shed
	}
	return n
}

// Preemptions sums evict-and-recompute events across engines.
func (s FleetStats) Preemptions() int {
	n := 0
	for _, e := range s.Engines {
		n += e.Preemptions
	}
	return n
}

// PackedChunks sums budget-packed prefill chunks across engines (see
// ServerStats.PackedChunks / WithTokenBudget).
func (s FleetStats) PackedChunks() int {
	n := 0
	for _, e := range s.Engines {
		n += e.PackedChunks
	}
	return n
}

// NewFleet starts n continuous-batching engines behind the routing policy
// selected by WithRouter (default baseline; see FleetRouters()). Engine
// sizing reuses the Server options — WithSeed, WithMaxNewTokens,
// WithMaxBatch, WithKVPages, WithPageTokens, WithPrefillChunk,
// WithTokenBudget, WithSchedPolicy, WithSharedPrefix — applied to every
// engine; the page
// budget is per engine, so a fleet holds n× the KV of one Server.
// Cross-engine migration is on by default (WithMigration). Close the fleet
// when done.
func NewFleet(n int, opts ...Option) (*Fleet, error) {
	if n <= 0 {
		return nil, ErrEmptyFleet
	}
	cfg := buildConfig(opts)
	switch {
	case cfg.maxNew <= 0:
		return nil, fmt.Errorf("%w: max new tokens must be positive, got %d", ErrInvalidOption, cfg.maxNew)
	case cfg.maxBatch <= 0:
		return nil, fmt.Errorf("%w: max batch must be positive, got %d", ErrInvalidOption, cfg.maxBatch)
	case cfg.pageTokens <= 0:
		return nil, fmt.Errorf("%w: page tokens must be positive, got %d", ErrInvalidOption, cfg.pageTokens)
	case cfg.kvPages < 0:
		return nil, fmt.Errorf("%w: negative KV page budget %d", ErrInvalidOption, cfg.kvPages)
	case cfg.prefillChunk <= 0:
		return nil, fmt.Errorf("%w: prefill chunk must be positive, got %d", ErrInvalidOption, cfg.prefillChunk)
	case cfg.tokenBudget < 0:
		return nil, fmt.Errorf("%w: negative token budget %d", ErrInvalidOption, cfg.tokenBudget)
	case cfg.sparseTopK < 0:
		return nil, fmt.Errorf("%w: negative sparse attention topK %d", ErrInvalidOption, cfg.sparseTopK)
	case cfg.maxQueue < 0:
		return nil, fmt.Errorf("%w: negative admission queue bound %d", ErrInvalidOption, cfg.maxQueue)
	case cfg.admissionTimeout < 0:
		return nil, fmt.Errorf("%w: negative admission timeout %v", ErrInvalidOption, cfg.admissionTimeout)
	}
	if cfg.schedPol != SchedFCFS && cfg.schedPol != SchedSJF {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.schedPol)
	}
	quantBits, err := resolveKVQuant(cfg.kvQuant)
	if err != nil {
		return nil, err
	}
	if len(cfg.sharedPrefix) > 0 {
		if err := validatePrompt(cfg.sharedPrefix, model.Tiny().Vocab); err != nil {
			return nil, fmt.Errorf("%w: shared prefix: %w", ErrInvalidOption, err)
		}
	}
	r, err := fleetRouterFor(cfg)
	if err != nil {
		return nil, err
	}
	m := model.New(model.Tiny(), cfg.seed)
	m.SetSparseTopK(cfg.sparseTopK)
	fcfg := fleet.Config{
		Engines: n,
		Router:  r,
		Migrate: cfg.migrate,
		Engine: sched.Config{
			MaxBatch:         cfg.maxBatch,
			PageTokens:       cfg.pageTokens,
			KVPages:          cfg.kvPages,
			MaxNew:           cfg.maxNew,
			PrefillChunk:     cfg.prefillChunk,
			TokenBudget:      cfg.tokenBudget,
			Policy:           cfg.schedPol,
			KVQuantBits:      quantBits,
			SharedPrefix:     cfg.sharedPrefix,
			MaxQueue:         cfg.maxQueue,
			AdmissionTimeout: cfg.admissionTimeout.Seconds(),
		},
	}
	if cfg.faults != nil {
		fcfg.Faults = buildInjector(cfg.faults)
	}
	pool, err := fleet.New(m, fcfg)
	if err != nil {
		return nil, translateServeErr(err)
	}
	return &Fleet{cfg: cfg, pool: pool, name: r.Name()}, nil
}

// fleetRouterFor resolves the configured policy name to a live router. The
// predictor-driven policies train the fp16 throughput and length predictors
// (the fleet's engines all decode the full-precision data plane) the same
// way Cluster.Router does for its per-method suites.
func fleetRouterFor(cfg config) (serving.Router, error) {
	switch cfg.routerName {
	case RouterBaseline:
		return router.Baseline{}, nil
	case RouterWithThroughput:
		p, err := fleetPredictors(cfg)
		if err != nil {
			return nil, err
		}
		return router.WithThroughput{P: p}, nil
	case RouterWithLength:
		p, err := fleetPredictors(cfg)
		if err != nil {
			return nil, err
		}
		// The fleet's engines all run the fp16 data plane, so strict
		// length routing predicts identical lengths everywhere and herds
		// every burst onto engine 0. A default hysteresis band breaks those
		// ties on live load; the simulated Cluster keeps the band at zero
		// to preserve the paper's queue-blind Table 8 measurement.
		return router.WithLength{P: p, Hysteresis: 0.1}, nil
	case RouterWithBoth:
		p, err := fleetPredictors(cfg)
		if err != nil {
			return nil, err
		}
		return router.WithBoth{P: p}, nil
	case RouterKVPressure:
		p, err := fleetPredictors(cfg)
		if err != nil {
			return nil, err
		}
		return router.KVPressure{P: &p}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownRouter, cfg.routerName)
}

// fleetPredictors trains the fp16 predictor suite the policy consults,
// mirroring Cluster.predictors (same salts, same training trace).
func fleetPredictors(cfg config) (router.Predictors, error) {
	est, err := newEstimator(cfg, "fp16")
	if err != nil {
		return router.Predictors{}, err
	}
	m := compress.MustGet("fp16")
	lm := gen.Default()
	salt := cfg.seed + 7
	train := workload.SampleShareGPT(workload.DefaultShareGPT(2000), cfg.seed)
	p := router.Predictors{
		Thr:  map[string]*predictor.ThroughputPredictor{},
		Len:  map[string]*predictor.LengthPredictor{},
		Salt: salt,
	}
	p.Thr[m.Name] = predictor.TrainThroughput(est, predictor.DefaultGrid(), cfg.seed+2)
	p.Len[m.Name] = predictor.TrainLength(train, lm.Run(train, m, cfg.seed+3), m, salt)
	return p, nil
}

// Size returns the engine count.
func (f *Fleet) Size() int { return f.pool.Size() }

// RouterName returns the active routing policy's name.
func (f *Fleet) RouterName() string { return f.name }

// Vocab returns the served model's vocabulary size.
func (f *Fleet) Vocab() int { return model.Tiny().Vocab }

// Submit routes a request onto an engine and returns its token stream —
// the same contract as Server.Submit. The router's placement runs on live
// engine views sampled at this call; a policy that returns an out-of-range
// engine index fails with ErrBadRoute. Migration hops, if any, are
// invisible on the stream beyond their recompute delay.
func (f *Fleet) Submit(ctx context.Context, req ServeRequest) (<-chan Token, error) {
	if err := validatePrompt(req.Prompt, f.Vocab()); err != nil {
		return nil, err
	}
	var dl float64
	if req.Deadline > 0 {
		dl = f.pool.Now() + req.Deadline.Seconds()
	}
	maxNew := req.MaxNew
	if maxNew <= 0 {
		maxNew = f.cfg.maxNew
	}
	ch, err := f.pool.Submit(ctx, sched.Request{
		ID:        int(f.nextID.Add(1)) - 1, // submission order, 0-based
		Prompt:    req.Prompt,
		MaxNew:    req.MaxNew,
		Predicted: req.Predicted,
		Arrival:   -1, // stamp at submit time
		Deadline:  dl,
	})
	if err != nil {
		return nil, translateServeErr(err)
	}
	return translateStream(ch, maxNew+1), nil
}

// Drain blocks until every request submitted so far has retired across the
// whole fleet — including migration hops in flight — or ctx is cancelled.
func (f *Fleet) Drain(ctx context.Context) error {
	return translateServeErr(f.pool.Drain(ctx))
}

// Close shuts every engine down; in-flight streams close without
// completing. Idempotent.
func (f *Fleet) Close() { f.pool.Close() }

// Outcomes returns the fleet-level per-request records, sorted by request
// ID: wall-clock TTFT/TBOT/E2E as the client saw them (routing, queueing
// and migration delays included), GPU = the engine that finished the
// request, and Preemptions = cross-engine migration hops (engine-local
// recompute preemptions stay in Stats).
func (f *Fleet) Outcomes() []Outcome { return f.pool.Outcomes() }

// Stats returns a snapshot of the fleet counters.
func (f *Fleet) Stats() FleetStats {
	st := f.pool.Stats()
	out := FleetStats{
		Engines:         make([]ServerStats, len(st.Engines)),
		Routed:          st.Routed,
		Migrations:      st.Migrations,
		MigrationFailed: st.MigrationFailed,
		FailedOver:      st.FailedOver,
		EngineFailures:  st.EngineFailures,
	}
	for i, es := range st.Engines {
		out.Engines[i] = serverStatsFrom(es)
	}
	return out
}
