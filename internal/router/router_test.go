package router

import (
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

func estFor(method string) *perf.Estimator {
	return perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet(method), 1)
}

// buildPredictors trains the tool suite for the methods in play.
func buildPredictors(t *testing.T, methods []string) Predictors {
	t.Helper()
	lm := gen.Default()
	train := workload.SampleShareGPT(workload.DefaultShareGPT(1500), 33)
	p := Predictors{Thr: map[string]*predictor.ThroughputPredictor{}, Len: map[string]*predictor.LengthPredictor{}, Salt: 9}
	for _, name := range methods {
		m := compress.MustGet(name)
		p.Thr[name] = predictor.TrainThroughput(estFor(name), predictor.DefaultGrid(), 44)
		p.Len[name] = predictor.TrainLength(train, lm.Run(train, m, 55), m, 9)
	}
	return p
}

// mixedCluster is the paper's Section 5.4 setup: one FP16 GPU + three
// compressed GPUs.
func mixedCluster(method string) *serving.Cluster {
	gpus := []serving.GPUConfig{
		{ID: 0, Method: compress.MustGet("fp16"), Est: estFor("fp16")},
	}
	for i := 1; i < 4; i++ {
		gpus = append(gpus, serving.GPUConfig{ID: i, Method: compress.MustGet(method), Est: estFor(method)})
	}
	return &serving.Cluster{GPUs: gpus, BatchCap: 64, LM: gen.Default(), Seed: 3}
}

// uniformCluster is the paper's baseline: four GPUs all running the method.
func uniformCluster(method string) *serving.Cluster {
	var gpus []serving.GPUConfig
	for i := 0; i < 4; i++ {
		gpus = append(gpus, serving.GPUConfig{ID: i, Method: compress.MustGet(method), Est: estFor(method)})
	}
	return &serving.Cluster{GPUs: gpus, BatchCap: 64, LM: gen.Default(), Seed: 3}
}

func trace(n int, rps float64) []workload.Request {
	cfg := workload.DefaultShareGPT(n)
	cfg.RPS = rps
	return workload.SampleShareGPT(cfg, 77)
}

func TestTable8PolicyOrdering(t *testing.T) {
	// Table 8: w/Both < w/Throughput < Baseline in mean E2E latency, and
	// w/Length alone does not beat the baseline meaningfully.
	method := "kivi-4"
	preds := buildPredictors(t, []string{"fp16", method})
	reqs := trace(400, 10)

	baseOut, err := uniformCluster(method).Run(reqs, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	thrOut, err := mixedCluster(method).Run(reqs, WithThroughput{P: preds})
	if err != nil {
		t.Fatal(err)
	}
	lenOut, err := mixedCluster(method).Run(reqs, WithLength{P: preds})
	if err != nil {
		t.Fatal(err)
	}
	bothOut, err := mixedCluster(method).Run(reqs, WithBoth{P: preds})
	if err != nil {
		t.Fatal(err)
	}

	base := serving.MeanE2E(baseOut)
	thr := serving.MeanE2E(thrOut)
	length := serving.MeanE2E(lenOut)
	both := serving.MeanE2E(bothOut)

	if thr >= base {
		t.Fatalf("w/Throughput %v should beat baseline %v", thr, base)
	}
	if both >= thr {
		t.Fatalf("w/Both %v should beat w/Throughput %v", both, thr)
	}
	if length < both {
		t.Fatalf("w/Length alone %v should not be the best policy (w/Both %v)", length, both)
	}
	// The paper's speedup bands: w/Both 1.45–1.80×; allow a loose band.
	if base/both < 1.1 {
		t.Fatalf("w/Both speedup %v too small", base/both)
	}
}

func TestWithLengthHerdsToFP16(t *testing.T) {
	// Queue-blind length routing sends nearly everything to the FP16 GPU —
	// the mechanism behind its poor Table 8 showing.
	preds := buildPredictors(t, []string{"fp16", "stream-512"})
	out, err := mixedCluster("stream-512").Run(trace(150, 10), WithLength{P: preds})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, o := range out {
		counts[o.GPU]++
	}
	// Short-context requests predict near-identical lengths everywhere, so
	// some scatter remains (which is why the paper measures w/Length at
	// only 0.83–1.03×) — but FP16 must draw a heavy plurality.
	if counts[0] < len(out)/2 {
		t.Fatalf("w/Length routed only %d/%d to FP16: %v", counts[0], len(out), counts)
	}
	if compressed := len(out) - counts[0]; compressed >= counts[0] {
		t.Fatalf("FP16 should draw the majority under w/Length: %v", counts)
	}
}

func TestPolicyNames(t *testing.T) {
	preds := Predictors{}
	names := map[string]serving.Router{
		"baseline":     Baseline{},
		"w/throughput": WithThroughput{P: preds},
		"w/length":     WithLength{P: preds},
		"w/both":       WithBoth{P: preds},
	}
	for want, r := range names {
		if r.Name() != want {
			t.Fatalf("router name %q != %q", r.Name(), want)
		}
	}
}

func TestBaselineBalances(t *testing.T) {
	out, err := uniformCluster("fp16").Run(trace(200, 20), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, o := range out {
		counts[o.GPU]++
	}
	for id := 0; id < 4; id++ {
		if counts[id] < 20 {
			t.Fatalf("baseline imbalance: %v", counts)
		}
	}
}

// TestWithLengthHysteresisSpreadsBurst is the herding regression test: on a
// homogeneous fleet every engine predicts the same response length, so the
// strict queue-blind argmin sends an entire burst of simultaneous arrivals
// to engine 0. The hysteresis band treats near-tied predictions as
// equivalent and breaks them on live load, spreading the burst — while
// Hysteresis == 0 must preserve the paper's strict behaviour bit-for-bit.
func TestWithLengthHysteresisSpreadsBurst(t *testing.T) {
	preds := buildPredictors(t, []string{"fp16"})
	burst := trace(40, 0) // RPS 0: all requests arrive at t=0 — the worst-case herd
	strict, err := uniformCluster("fp16").Run(burst, WithLength{P: preds})
	if err != nil {
		t.Fatal(err)
	}
	strictCounts := map[int]int{}
	for _, o := range strict {
		strictCounts[o.GPU]++
	}
	if strictCounts[0] != len(strict) {
		t.Fatalf("strict w/Length should herd the whole burst to engine 0: %v", strictCounts)
	}

	spread, err := uniformCluster("fp16").Run(burst, WithLength{P: preds, Hysteresis: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, o := range spread {
		counts[o.GPU]++
	}
	for id := 0; id < 4; id++ {
		if counts[id] == 0 {
			t.Fatalf("hysteresis left engine %d idle under a burst: %v", id, counts)
		}
	}
	if counts[0] == len(spread) {
		t.Fatalf("hysteresis still herded everything to engine 0: %v", counts)
	}
}
