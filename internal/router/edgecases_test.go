package router

import (
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// emptyPredictors has no trained entries for any method.
func emptyPredictors() Predictors {
	return Predictors{
		Thr:  map[string]*predictor.ThroughputPredictor{},
		Len:  map[string]*predictor.LengthPredictor{},
		Salt: 9,
	}
}

func someRequest() workload.Request {
	return workload.Request{ID: 1, PromptLen: 200, RefLen: 100}
}

// Every policy answers 0 on empty views; the simulator's range check (see
// serving.Cluster.Run) is what turns that into an error, so the policies
// themselves must stay panic-free.
func TestPoliciesOnEmptyViews(t *testing.T) {
	preds := emptyPredictors()
	routers := []serving.Router{
		Baseline{},
		WithThroughput{P: preds},
		WithLength{P: preds},
		WithBoth{P: preds},
	}
	for _, r := range routers {
		if got := r.Route(someRequest(), nil); got != 0 {
			t.Fatalf("%s on empty views = %d, want 0", r.Name(), got)
		}
		if got := r.Route(someRequest(), []serving.GPUView{}); got != 0 {
			t.Fatalf("%s on zero-length views = %d, want 0", r.Name(), got)
		}
	}
}

// Predictor-driven policies skip GPUs whose method has no trained predictor
// and fall back to GPU 0 when nothing matches — this documents today's
// silent-fallback contract.
func TestPredictorPoliciesFallBackToGPU0(t *testing.T) {
	views := []serving.GPUView{
		{ID: 0, Method: compress.MustGet("fp16"), Est: estFor("fp16")},
		{ID: 1, Method: compress.MustGet("stream-512"), Est: estFor("stream-512")},
	}
	preds := emptyPredictors()
	if got := (WithThroughput{P: preds}).Route(someRequest(), views); got != 0 {
		t.Fatalf("w/throughput without predictors = %d, want fallback 0", got)
	}
	if got := (WithLength{P: preds}).Route(someRequest(), views); got != 0 {
		t.Fatalf("w/length without predictors = %d, want fallback 0", got)
	}
	if got := (WithBoth{P: preds}).Route(someRequest(), views); got != 0 {
		t.Fatalf("w/both without predictors = %d, want fallback 0", got)
	}

	// With a predictor only for the second GPU's method, routing must land
	// on a GPU that actually has one.
	partial := buildPredictors(t, []string{"stream-512"})
	if got := (WithThroughput{P: partial}).Route(someRequest(), views); got != 1 {
		t.Fatalf("w/throughput with stream-only predictors = %d, want 1", got)
	}
	if got := (WithLength{P: partial}).Route(someRequest(), views); got != 1 {
		t.Fatalf("w/length with stream-only predictors = %d, want 1", got)
	}
	if got := (WithBoth{P: partial}).Route(someRequest(), views); got != 1 {
		t.Fatalf("w/both with stream-only predictors = %d, want 1", got)
	}
}
