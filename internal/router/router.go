// Package router implements the four request-routing policies of the
// paper's Section 5.4 (Table 8):
//
//   - Baseline: load-balance to the least-loaded GPU (the paper routes to
//     the GPU with minimum memory usage; backlog tokens are the equivalent
//     signal in simulation).
//   - WithThroughput: route to the GPU with the highest predicted decoding
//     throughput for this request, discounted by current backlog.
//   - WithLength: route to the GPU with the minimum predicted response
//     length. Used alone this herds requests onto the FP16 GPU and can
//     *hurt* latency (the paper measures 0.83–1.03×) — the policy is
//     deliberately queue-blind, as in the paper.
//   - WithBoth: route to the GPU with the minimum predicted end-to-end
//     latency: queueing wait + prefill + predicted length / predicted
//     decode throughput. The paper's best (1.45–1.80×).
package router

import (
	"math"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// Predictors bundles the per-method tools a policy may consult, keyed by
// method name.
type Predictors struct {
	Thr map[string]*predictor.ThroughputPredictor
	Len map[string]*predictor.LengthPredictor
	// Salt is the feature-extraction salt shared with training.
	Salt uint64
}

// Baseline load-balances on backlog.
type Baseline struct{}

// Name implements serving.Router.
func (Baseline) Name() string { return "baseline" }

// Route picks the GPU with minimum memory usage, as the paper's baseline
// does: queued + resident tokens proxy the KV footprint. Memory is a weak
// load signal — it does not see how much *compute* the queued requests
// still need — which is exactly why the predictor-driven policies beat it.
func (Baseline) Route(req workload.Request, views []serving.GPUView) int {
	best, bestLoad := 0, math.Inf(1)
	for i, v := range views {
		if v.QueuedTokens < bestLoad {
			best, bestLoad = i, v.QueuedTokens
		}
	}
	return best
}

// WithThroughput routes by predicted decode throughput, discounted by wait.
type WithThroughput struct{ P Predictors }

// Name implements serving.Router.
func (WithThroughput) Name() string { return "w/throughput" }

// Route implements serving.Router.
func (r WithThroughput) Route(req workload.Request, views []serving.GPUView) int {
	best, bestScore := 0, math.Inf(-1)
	for i, v := range views {
		tp := r.P.Thr[v.Method.Name]
		if tp == nil {
			continue
		}
		kv := req.PromptLen + expectedResp(req, v.Method)/2
		thr := tp.PredictDecodeThroughput(1, kv)
		score := thr / (1 + v.Wait())
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// WithLength routes to the minimum predicted response length, queue-blind.
type WithLength struct {
	P Predictors
	// Hysteresis, when positive, damps the herding failure mode of pure
	// length routing: engines whose predicted length is within the relative
	// band (1+Hysteresis)·min are treated as equivalent, and the
	// least-loaded of them (backlog plus in-flight prefill debt) wins. In a
	// homogeneous fleet every engine predicts the same length, so the
	// queue-blind policy sends an entire burst to engine 0; the band turns
	// those exact ties into load-balanced spread while still preferring a
	// genuinely shorter engine outside the band. Zero keeps the paper's
	// strict queue-blind argmin, which the Table 8 simulations measure.
	Hysteresis float64
}

// Name implements serving.Router.
func (WithLength) Name() string { return "w/length" }

// Route implements serving.Router.
func (r WithLength) Route(req workload.Request, views []serving.GPUView) int {
	best, bestLen := 0, math.Inf(1)
	lens := make([]float64, len(views))
	for i := range lens {
		lens[i] = math.Inf(1)
	}
	for i, v := range views {
		lp := r.P.Len[v.Method.Name]
		if lp == nil {
			continue
		}
		lens[i] = lp.PredictLen(req, v.Method, r.P.Salt)
		if lens[i] < bestLen {
			best, bestLen = i, lens[i]
		}
	}
	if r.Hysteresis <= 0 || math.IsInf(bestLen, 1) {
		return best
	}
	band := bestLen * (1 + r.Hysteresis)
	bestLoad := math.Inf(1)
	for i, v := range views {
		if lens[i] > band {
			continue
		}
		load := v.QueuedTokens + float64(v.PrefillTokens)
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// WithBoth routes to the minimum predicted end-to-end latency.
type WithBoth struct{ P Predictors }

// Name implements serving.Router.
func (WithBoth) Name() string { return "w/both" }

// Route implements serving.Router.
func (r WithBoth) Route(req workload.Request, views []serving.GPUView) int {
	best, bestLat := 0, math.Inf(1)
	for i, v := range views {
		tp := r.P.Thr[v.Method.Name]
		lp := r.P.Len[v.Method.Name]
		if tp == nil || lp == nil {
			continue
		}
		respLen := lp.PredictLen(req, v.Method, r.P.Salt)
		lat := v.Wait() + tp.PredictE2E(req.PromptLen, int(respLen+0.5))
		if lat < bestLat {
			best, bestLat = i, lat
		}
	}
	return best
}

// KVPressure routes on live KV-cache headroom — a policy only a real
// multi-engine backend can drive, since the discrete-event simulator has no
// paged cache. The engine's cost for a request is its backlog plus its
// in-flight chunked-prefill debt; on top of that, an engine whose free page
// budget cannot hold the request's predicted KV demand (prompt + predicted
// response) pays a heavy shortfall penalty, because admitting the request
// there risks preemption and bit-identical-but-wasted recompute. Views with
// PageBudget == 0 (unbounded or simulated) skip the penalty, degrading the
// policy to backlog+prefill load balancing.
type KVPressure struct {
	// P optionally refines the demand estimate with the per-method length
	// predictor; nil falls back to the request's reference length.
	P *Predictors
}

// Name implements serving.Router.
func (KVPressure) Name() string { return "kv-pressure" }

// Route implements serving.Router.
func (r KVPressure) Route(req workload.Request, views []serving.GPUView) int {
	best, bestCost := 0, math.Inf(1)
	for i, v := range views {
		demand := float64(req.PromptLen + req.RefLen)
		if r.P != nil {
			if lp := r.P.Len[v.Method.Name]; lp != nil {
				demand = float64(req.PromptLen) + lp.PredictLen(req, v.Method, r.P.Salt)
			}
		}
		cost := v.QueuedTokens + float64(v.PrefillTokens)
		if v.PageBudget > 0 && v.FreePages >= 0 {
			if short := demand - float64(v.FreePages*v.PageTokens); short > 0 {
				// The shortfall weight trades pages against queueing: 8
				// backlog tokens per missing resident token makes a
				// fitting engine win over all but pathological queues.
				cost += 8 * short
			}
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// expectedResp is the policy-side coarse response estimate when no length
// predictor is attached: the reference length shifted by mean severity.
func expectedResp(req workload.Request, m compress.Method) int {
	sev := gen.Severity(m, req.PromptLen, req.RefLen)
	return int(float64(req.RefLen) * (1 + 0.7*sev))
}
