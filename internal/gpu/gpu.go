// Package gpu provides hardware descriptors and roofline primitives for the
// analytical performance model. Peak numbers come from vendor datasheets;
// achieved efficiency is an engine property (internal/engine), not a
// hardware one.
package gpu

import "math"

// Hardware describes one accelerator.
type Hardware struct {
	Name string
	// MemBandwidth is peak device-memory bandwidth in bytes/second.
	MemBandwidth float64
	// FP16FLOPS is peak dense FP16 tensor throughput in FLOP/second.
	FP16FLOPS float64
	// VRAM is device memory in bytes.
	VRAM int64
	// InterconnectBW is per-direction NVLink bandwidth in bytes/second,
	// used by the tensor-parallel all-reduce model.
	InterconnectBW float64
	// InterconnectLatency is the per-collective base latency in seconds.
	InterconnectLatency float64
	// FullMeshNVLink: all-to-all NVLink/NVSwitch. Boxes without it (A6000
	// bridges link pairs only) fall back to PCIe for >2-GPU collectives,
	// which is what flattens tensor-parallel scaling at TP=4 in the
	// paper's Table 3.
	FullMeshNVLink bool
	// KernelLaunch is the host-side cost of launching one kernel, seconds.
	KernelLaunch float64
}

// A6000 is the NVIDIA RTX A6000 used for the paper's main experiments:
// 768 GB/s GDDR6, ~155 TFLOPS dense FP16 tensor, 48 GB.
var A6000 = Hardware{
	Name:                "a6000",
	MemBandwidth:        768e9,
	FP16FLOPS:           155e12,
	VRAM:                48 << 30,
	InterconnectBW:      112.5e9, // NVLink bridge
	InterconnectLatency: 9e-6,
	KernelLaunch:        8e-6,
}

// H800 is the NVIDIA H800 used for the LLaMA-70B experiments (Figure 2):
// 3.35 TB/s HBM3, ~990 TFLOPS dense FP16, 80 GB, 400 GB/s NVLink.
var H800 = Hardware{
	Name:                "h800",
	MemBandwidth:        3.35e12,
	FP16FLOPS:           990e12,
	VRAM:                80 << 30,
	InterconnectBW:      400e9,
	InterconnectLatency: 6e-6,
	FullMeshNVLink:      true,
	KernelLaunch:        6e-6,
}

// All returns every hardware descriptor — the resolution set of ByName.
func All() []Hardware { return []Hardware{A6000, H800} }

// ByName returns a hardware descriptor by name.
func ByName(name string) (Hardware, bool) {
	for _, h := range All() {
		if h.Name == name {
			return h, true
		}
	}
	return Hardware{}, false
}

// OpTime returns the roofline execution time of one kernel moving bytes of
// memory and executing flops of compute, at the given achieved efficiency
// fractions, plus the launch overhead. The kernel takes the max of its
// memory and compute phases (perfect overlap), which is the standard
// roofline assumption.
func (h Hardware) OpTime(flops, bytes, bwEff, computeEff float64) float64 {
	if bwEff <= 0 || computeEff <= 0 {
		panic("gpu: non-positive efficiency")
	}
	tMem := bytes / (h.MemBandwidth * bwEff)
	tCompute := flops / (h.FP16FLOPS * computeEff)
	return math.Max(tMem, tCompute) + h.KernelLaunch
}

// AllReduceTime returns the time of one ring all-reduce of nBytes across tp
// devices: 2(tp-1)/tp payload transfers plus base latency per step. On
// hardware without full-mesh NVLink, rings wider than two devices route
// through PCIe at a quarter of the link bandwidth and double the latency.
func (h Hardware) AllReduceTime(nBytes float64, tp int) float64 {
	if tp <= 1 {
		return 0
	}
	bw := h.InterconnectBW
	lat := h.InterconnectLatency
	if !h.FullMeshNVLink && tp > 2 {
		bw /= 4
		lat *= 2
	}
	steps := float64(2 * (tp - 1))
	perStep := nBytes / float64(tp) / bw
	return steps * (perStep + lat)
}

// ArithmeticIntensity returns flops per byte, the roofline x-axis.
func ArithmeticIntensity(flops, bytes float64) float64 {
	if bytes == 0 {
		return math.Inf(1)
	}
	return flops / bytes
}

// RidgePoint returns the arithmetic intensity at which this hardware
// transitions from memory-bound to compute-bound.
func (h Hardware) RidgePoint() float64 { return h.FP16FLOPS / h.MemBandwidth }
