package gpu

import (
	"math"
	"testing"
)

func TestByName(t *testing.T) {
	if h, ok := ByName("a6000"); !ok || h.Name != "a6000" {
		t.Fatal("a6000 lookup failed")
	}
	if h, ok := ByName("h800"); !ok || h.VRAM != 80<<30 {
		t.Fatalf("h800 lookup failed: %+v", h)
	}
	if _, ok := ByName("tpu"); ok {
		t.Fatal("unknown hardware should miss")
	}
}

func TestOpTimeRoofline(t *testing.T) {
	h := A6000
	// Pure memory op: time ≈ bytes / (BW × eff) + launch.
	tMem := h.OpTime(0, 768e9, 1, 1)
	if math.Abs(tMem-(1+8e-6)) > 1e-6 {
		t.Fatalf("memory-bound time = %v", tMem)
	}
	// Pure compute op.
	tC := h.OpTime(155e12, 0, 1, 1)
	if math.Abs(tC-(1+8e-6)) > 1e-6 {
		t.Fatalf("compute-bound time = %v", tC)
	}
	// Max, not sum.
	tBoth := h.OpTime(155e12, 768e9, 1, 1)
	if math.Abs(tBoth-(1+8e-6)) > 1e-6 {
		t.Fatalf("overlapped time = %v", tBoth)
	}
	// Efficiency scales time.
	if h.OpTime(0, 768e9, 0.5, 1) < 1.9 {
		t.Fatal("half efficiency should double memory time")
	}
}

func TestOpTimePanicsOnZeroEff(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	A6000.OpTime(1, 1, 0, 1)
}

func TestAllReduce(t *testing.T) {
	if A6000.AllReduceTime(1e9, 1) != 0 {
		t.Fatal("TP=1 all-reduce should be free")
	}
	t2 := A6000.AllReduceTime(1e9, 2)
	t4 := A6000.AllReduceTime(1e9, 4)
	if t2 <= 0 || t4 <= t2 {
		t.Fatalf("all-reduce times: tp2=%v tp4=%v", t2, t4)
	}
}

func TestRidgePoint(t *testing.T) {
	// A6000: 155e12 / 768e9 ≈ 202 flops/byte.
	r := A6000.RidgePoint()
	if r < 150 || r > 250 {
		t.Fatalf("ridge point = %v", r)
	}
	if H800.RidgePoint() <= 0 {
		t.Fatal("h800 ridge point must be positive")
	}
}

func TestArithmeticIntensity(t *testing.T) {
	if ai := ArithmeticIntensity(100, 50); ai != 2 {
		t.Fatalf("AI = %v", ai)
	}
	if !math.IsInf(ArithmeticIntensity(100, 0), 1) {
		t.Fatal("zero bytes should be infinite intensity")
	}
}
