// Package core is the library's top-level facade: it wires a runnable tiny
// model, a compression method's cache, and the analytical cost model into a
// single Pipeline that callers (examples, experiment runners, downstream
// users) drive with a few calls.
package core

import (
	"fmt"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/tensor"
)

// Pipeline runs real generation under a compression method and reports the
// cache-level effects.
type Pipeline struct {
	Model  *model.Model
	Method compress.Method
	cache  kvcache.Cache
	pos    int
}

// NewPipeline builds a pipeline over the tiny model with the named method's
// tiny-scale cache. Seed fixes the model weights.
func NewPipeline(methodName string, seed uint64) (*Pipeline, error) {
	m := model.New(model.Tiny(), seed)
	method, err := compress.Get(methodName)
	if err != nil {
		return nil, err
	}
	cache, err := accuracy.TinyCache(methodName, m.CacheShape())
	if err != nil {
		return nil, err
	}
	return &Pipeline{Model: m, Method: method, cache: cache}, nil
}

// Cache exposes the underlying compressed cache for inspection.
func (p *Pipeline) Cache() kvcache.Cache { return p.cache }

// Report summarises cache-level effects after a run.
type Report struct {
	Method           string
	TokensProcessed  int
	CacheBytes       int64
	FP16Bytes        int64
	CompressionRatio float64
	RetainedTokens   int // layer-0 head-0 retained entries
}

// Run prefills the prompt, greedily decodes maxNew tokens, and reports.
func (p *Pipeline) Run(prompt []int, maxNew int) ([]int, Report, error) {
	if p.pos != 0 {
		return nil, Report{}, fmt.Errorf("core: pipeline already used; construct a fresh one")
	}
	if len(prompt) == 0 {
		return nil, Report{}, fmt.Errorf("core: empty prompt")
	}
	res := p.Model.Prefill(prompt, p.cache)
	if pf, ok := p.cache.(compress.Prefiller); ok {
		pf.FinishPrefill()
	}
	pos := len(prompt)
	logits := res.Logits
	var out []int
	for i := 0; i < maxNew; i++ {
		next := tensor.Argmax(logits)
		out = append(out, next)
		sr := p.Model.Forward(next, pos, p.cache)
		logits = sr.Logits
		pos++
	}
	total := pos
	rep := Report{
		Method:          p.Method.Name,
		TokensProcessed: total,
		CacheBytes:      p.cache.MemoryBytes(),
		FP16Bytes:       kvcache.FP16Bytes(p.cache.Shape(), total),
		RetainedTokens:  p.cache.Len(0, 0),
	}
	if rep.CacheBytes > 0 {
		rep.CompressionRatio = float64(rep.FP16Bytes) / float64(rep.CacheBytes)
	}
	p.pos = pos
	return out, rep, nil
}

// System bundles the full-scale analytical view for one deployment choice.
type System struct {
	Est *perf.Estimator
}

// NewSystem builds the cost-model view for (hardware, model, engine,
// method, TP) by name.
func NewSystem(hwName, modelName, engineName, methodName string, tp int) (*System, error) {
	hw, ok := gpu.ByName(hwName)
	if !ok {
		return nil, fmt.Errorf("core: unknown hardware %q", hwName)
	}
	cfg, ok := model.ByName(modelName)
	if !ok {
		return nil, fmt.Errorf("core: unknown model %q", modelName)
	}
	eng, err := engine.ByName(engineName)
	if err != nil {
		return nil, err
	}
	method, err := compress.Get(methodName)
	if err != nil {
		return nil, err
	}
	est, err := perf.New(hw, cfg, eng, method, tp)
	if err != nil {
		return nil, err
	}
	return &System{Est: est}, nil
}
