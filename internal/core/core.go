// Package core is the library's top-level facade: it wires a runnable tiny
// model, a compression method's cache, and the analytical cost model into a
// single Pipeline that callers (examples, experiment runners, downstream
// users) drive with a few calls.
package core

import (
	"context"
	"fmt"
	"sync"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/tensor"
)

// Pipeline runs real generation under a compression method and reports the
// cache-level effects. A pipeline is reusable: each generation pass runs on
// a fresh cache built by the method's factory, so Run and NewSession may be
// called any number of times.
type Pipeline struct {
	Model    *model.Model
	Method   compress.Method
	newCache func() (kvcache.Cache, error)
	last     kvcache.Cache
}

// NewPipeline builds a pipeline over the tiny model with the named method's
// tiny-scale cache. Seed fixes the model weights.
func NewPipeline(methodName string, seed uint64) (*Pipeline, error) {
	m := model.New(model.Tiny(), seed)
	method, err := compress.Get(methodName)
	if err != nil {
		return nil, err
	}
	shape := m.CacheShape()
	factory := func() (kvcache.Cache, error) {
		return accuracy.TinyCache(methodName, shape)
	}
	cache, err := factory()
	if err != nil {
		return nil, err
	}
	return &Pipeline{Model: m, Method: method, newCache: factory, last: cache}, nil
}

// Cache exposes the most recent generation's cache for inspection.
func (p *Pipeline) Cache() kvcache.Cache { return p.last }

// Report summarises cache-level effects after a run.
type Report struct {
	Method           string
	TokensProcessed  int
	CacheBytes       int64
	FP16Bytes        int64
	CompressionRatio float64
	RetainedTokens   int // layer-0 head-0 retained entries
}

// Session is one generation pass: a prefilled fresh cache, a private scratch
// workspace, and the decode state needed to emit tokens one at a time.
// Sessions let callers stream and cancel mid-generation; the parent pipeline
// stays reusable. Because every session owns its workspace and cache (model
// weights are immutable), independent sessions may decode concurrently.
type Session struct {
	p      *Pipeline
	cache  kvcache.Cache
	ws     *model.Workspace
	pos    int
	logits []float32
}

// NewSession prefills the prompt on a fresh cache and returns the decoding
// state positioned at the first output token.
func (p *Pipeline) NewSession(prompt []int) (*Session, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("core: empty prompt")
	}
	cache, err := p.newCache()
	if err != nil {
		return nil, err
	}
	ws := p.Model.NewWorkspace()
	res := p.Model.PrefillInto(ws, prompt, cache)
	if pf, ok := cache.(compress.Prefiller); ok {
		pf.FinishPrefill()
	}
	p.last = cache
	return &Session{p: p, cache: cache, ws: ws, pos: len(prompt), logits: res.Logits}, nil
}

// Next greedily decodes one token and advances the session. Steady-state
// decode allocates nothing: the step runs entirely inside the session's
// workspace and s.logits aliases its logit buffer.
func (s *Session) Next() int {
	next := tensor.Argmax(s.logits)
	sr := s.p.Model.ForwardInto(s.ws, next, s.pos, s.cache)
	s.logits = sr.Logits
	s.pos++
	return next
}

// Pos returns the number of tokens processed so far (prompt + emitted).
func (s *Session) Pos() int { return s.pos }

// Cache exposes the session's cache for inspection.
func (s *Session) Cache() kvcache.Cache { return s.cache }

// Report summarises the session's cache-level effects so far.
func (s *Session) Report() Report {
	rep := Report{
		Method:          s.p.Method.Name,
		TokensProcessed: s.pos,
		CacheBytes:      s.cache.MemoryBytes(),
		FP16Bytes:       kvcache.FP16Bytes(s.cache.Shape(), s.pos),
		RetainedTokens:  s.cache.Len(0, 0),
	}
	if rep.CacheBytes > 0 {
		rep.CompressionRatio = float64(rep.FP16Bytes) / float64(rep.CacheBytes)
	}
	return rep
}

// Run prefills the prompt, greedily decodes maxNew tokens, and reports.
// Each call runs on a fresh cache, so the pipeline may be reused.
func (p *Pipeline) Run(prompt []int, maxNew int) ([]int, Report, error) {
	s, err := p.NewSession(prompt)
	if err != nil {
		return nil, Report{}, err
	}
	out := make([]int, 0, maxNew)
	for i := 0; i < maxNew; i++ {
		out = append(out, s.Next())
	}
	return out, s.Report(), nil
}

// RunBatch decodes maxNew tokens for every prompt, running the sessions in
// parallel goroutines. Each session owns an isolated cache and scratch
// workspace, so outputs are identical to running the prompts sequentially.
// Sessions are created (and prefilled) sequentially — the method cache
// factory and the pipeline's last-cache pointer are not synchronised — then
// decoded concurrently. On context cancellation decoding stops early and the
// partial outputs are returned alongside ctx.Err().
func (p *Pipeline) RunBatch(ctx context.Context, prompts [][]int, maxNew int) ([][]int, []Report, error) {
	sessions, err := p.NewSessions(ctx, prompts)
	if err != nil {
		return nil, nil, err
	}
	outs, reports := DecodeSessions(ctx, sessions, maxNew)
	return outs, reports, ctx.Err()
}

// NewSessions creates (and prefills) one session per prompt, sequentially.
// It checks ctx between prompts so a cancelled batch does not pay the
// remaining prefill cost.
func (p *Pipeline) NewSessions(ctx context.Context, prompts [][]int) ([]*Session, error) {
	sessions := make([]*Session, len(prompts))
	for i, prompt := range prompts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := p.NewSession(prompt)
		if err != nil {
			return nil, fmt.Errorf("core: prompt %d: %w", i, err)
		}
		sessions[i] = s
	}
	return sessions, nil
}

// DecodeSessions greedily decodes up to maxNew tokens on every session in
// parallel goroutines, returning index-aligned token streams and reports.
// Sessions must be distinct (each owns its cache and workspace); decoding
// stops early when ctx is cancelled.
func DecodeSessions(ctx context.Context, sessions []*Session, maxNew int) ([][]int, []Report) {
	outs := make([][]int, len(sessions))
	reports := make([]Report, len(sessions))
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			toks := make([]int, 0, maxNew)
			for j := 0; j < maxNew; j++ {
				if ctx.Err() != nil {
					break
				}
				toks = append(toks, s.Next())
			}
			outs[i] = toks
			reports[i] = s.Report()
		}(i, s)
	}
	wg.Wait()
	return outs, reports
}

// System bundles the full-scale analytical view for one deployment choice.
type System struct {
	Est *perf.Estimator
}

// NewSystem builds the cost-model view for (hardware, model, engine,
// method, TP) by name.
func NewSystem(hwName, modelName, engineName, methodName string, tp int) (*System, error) {
	hw, ok := gpu.ByName(hwName)
	if !ok {
		return nil, fmt.Errorf("core: unknown hardware %q", hwName)
	}
	cfg, ok := model.ByName(modelName)
	if !ok {
		return nil, fmt.Errorf("core: unknown model %q", modelName)
	}
	eng, err := engine.ByName(engineName)
	if err != nil {
		return nil, err
	}
	method, err := compress.Get(methodName)
	if err != nil {
		return nil, err
	}
	est, err := perf.New(hw, cfg, eng, method, tp)
	if err != nil {
		return nil, err
	}
	return &System{Est: est}, nil
}
