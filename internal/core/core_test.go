package core

import (
	"context"
	"testing"
)

func TestPipelineRun(t *testing.T) {
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for _, method := range []string{"fp16", "kivi-4", "gear-4", "h2o-512", "stream-512", "snapkv-512"} {
		p, err := NewPipeline(method, 1)
		if err != nil {
			t.Fatal(err)
		}
		out, rep, err := p.Run(prompt, 10)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(out) != 10 {
			t.Fatalf("%s: generated %d", method, len(out))
		}
		if rep.TokensProcessed != 18 {
			t.Fatalf("%s: tokens = %d", method, rep.TokensProcessed)
		}
		if rep.CacheBytes <= 0 || rep.CompressionRatio <= 0 {
			t.Fatalf("%s: bad report %+v", method, rep)
		}
		if method == "fp16" && rep.RetainedTokens != 18 {
			t.Fatalf("fp16 should retain everything: %+v", rep)
		}
	}
}

func TestPipelineCompressionReducesBytes(t *testing.T) {
	prompt := make([]int, 300)
	for i := range prompt {
		prompt[i] = i % 500
	}
	run := func(method string) Report {
		p, err := NewPipeline(method, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := p.Run(prompt, 5)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fp := run("fp16")
	k := run("kivi-4")
	s := run("stream-256")
	if k.CacheBytes >= fp.CacheBytes {
		t.Fatalf("kivi bytes %d should undercut fp16 %d", k.CacheBytes, fp.CacheBytes)
	}
	if s.CacheBytes >= fp.CacheBytes {
		t.Fatalf("stream bytes %d should undercut fp16 %d", s.CacheBytes, fp.CacheBytes)
	}
	if s.RetainedTokens >= fp.RetainedTokens {
		t.Fatal("eviction should shrink retained tokens")
	}
}

func TestPipelineSameOutputForFP16Determinism(t *testing.T) {
	prompt := []int{9, 8, 7, 6}
	p1, _ := NewPipeline("fp16", 3)
	p2, _ := NewPipeline("fp16", 3)
	a, _, err := p1.Run(prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p2.Run(prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fp16 pipeline must be deterministic")
		}
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := NewPipeline("bogus", 1); err == nil {
		t.Fatal("unknown method should error")
	}
	p, _ := NewPipeline("fp16", 1)
	if _, _, err := p.Run(nil, 5); err == nil {
		t.Fatal("empty prompt should error")
	}
	if _, _, err := p.Run([]int{1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run([]int{1}, 1); err != nil {
		t.Fatalf("pipeline must be reusable: %v", err)
	}
}

func TestPipelineReuseMatchesFresh(t *testing.T) {
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6}
	p, err := NewPipeline("kivi-4", 5)
	if err != nil {
		t.Fatal(err)
	}
	a, repA, err := p.Run(prompt, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, repB, err := p.Run(prompt, 8)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewPipeline("kivi-4", 5)
	c, _, err := fresh.Run(prompt, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("runs diverge at %d: %v vs %v vs %v", i, a, b, c)
		}
	}
	if repA != repB {
		t.Fatalf("reports diverge: %+v vs %+v", repA, repB)
	}
}

func TestSessionStreaming(t *testing.T) {
	prompt := []int{1, 2, 3, 4}
	p, err := NewPipeline("stream-256", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSession(prompt)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []int
	for i := 0; i < 6; i++ {
		streamed = append(streamed, s.Next())
	}
	if s.Pos() != len(prompt)+6 {
		t.Fatalf("pos = %d", s.Pos())
	}
	rep := s.Report()
	if rep.TokensProcessed != 10 || rep.CacheBytes <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
	batch, _, err := p.Run(prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range streamed {
		if streamed[i] != batch[i] {
			t.Fatalf("streamed %v != batch %v", streamed, batch)
		}
	}
	if _, err := p.NewSession(nil); err == nil {
		t.Fatal("empty prompt should error")
	}
}

func TestNewSystem(t *testing.T) {
	s, err := NewSystem("a6000", "llama-2-7b", "lmdeploy", "kivi-4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if thr := s.Est.DecodeThroughput(1, 1024); thr <= 0 {
		t.Fatalf("throughput = %v", thr)
	}
	// vLLM is a valid engine (Appendix A.4 comparison).
	if _, err := NewSystem("a6000", "llama-2-7b", "vllm", "fp16", 1); err != nil {
		t.Fatal(err)
	}
	bad := [][5]string{
		{"tpu", "llama-2-7b", "lmdeploy", "fp16", "1"},
		{"a6000", "gpt-2", "lmdeploy", "fp16", "1"},
		{"a6000", "llama-2-7b", "tgi", "fp16", "1"},
		{"a6000", "llama-2-7b", "lmdeploy", "zip-9", "1"},
	}
	for _, c := range bad {
		if _, err := NewSystem(c[0], c[1], c[2], c[3], 1); err == nil {
			t.Fatalf("expected error for %v", c)
		}
	}
}

// TestRunBatchMatchesSequential proves the concurrent batch path is a pure
// throughput feature: per-prompt outputs and reports are identical to
// sequential Run calls.
func TestRunBatchMatchesSequential(t *testing.T) {
	prompts := [][]int{
		{1, 2, 3, 4},
		{5, 6, 7, 8, 9, 10},
		{11, 12},
		{13, 14, 15, 16, 17},
	}
	const maxNew = 12
	for _, method := range []string{"fp16", "h2o-512"} {
		seq, err := NewPipeline(method, 7)
		if err != nil {
			t.Fatal(err)
		}
		wantOuts := make([][]int, len(prompts))
		wantReps := make([]Report, len(prompts))
		for i, p := range prompts {
			out, rep, err := seq.Run(p, maxNew)
			if err != nil {
				t.Fatal(err)
			}
			wantOuts[i], wantReps[i] = out, rep
		}
		par, err := NewPipeline(method, 7)
		if err != nil {
			t.Fatal(err)
		}
		outs, reps, err := par.RunBatch(context.Background(), prompts, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prompts {
			if len(outs[i]) != maxNew {
				t.Fatalf("%s prompt %d: got %d tokens", method, i, len(outs[i]))
			}
			for j := range outs[i] {
				if outs[i][j] != wantOuts[i][j] {
					t.Fatalf("%s prompt %d token %d: %d != %d", method, i, j, outs[i][j], wantOuts[i][j])
				}
			}
			if reps[i] != wantReps[i] {
				t.Fatalf("%s prompt %d report %+v != %+v", method, i, reps[i], wantReps[i])
			}
		}
	}
}

func TestRunBatchEmptyPromptRejected(t *testing.T) {
	p, err := NewPipeline("fp16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.RunBatch(context.Background(), [][]int{{1, 2}, nil}, 4); err == nil {
		t.Fatal("empty prompt in batch should error")
	}
}

func TestRunBatchCancellation(t *testing.T) {
	p, err := NewPipeline("fp16", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Pre-cancelled: rejected before any prefill work happens.
	if _, _, err := p.RunBatch(ctx, [][]int{{1, 2, 3}}, 8); err == nil {
		t.Fatal("cancelled context should surface an error")
	}
	// Cancelled mid-flight: sessions exist, decode stops early with
	// partial outputs.
	sessions, err := p.NewSessions(context.Background(), [][]int{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	outs, _ := DecodeSessions(ctx, sessions, 8)
	if len(outs) != 1 || len(outs[0]) != 0 {
		t.Fatalf("cancelled decode should stop immediately, got %v", outs)
	}
}

// TestSessionNextZeroAllocs gates the serving hot path: steady-state greedy
// decode through Session.Next must be allocation-free (amortised cache
// growth aside).
func TestSessionNextZeroAllocs(t *testing.T) {
	p, err := NewPipeline("fp16", 1)
	if err != nil {
		t.Fatal(err)
	}
	prompt := make([]int, 64)
	for i := range prompt {
		prompt[i] = i % 500
	}
	s, err := p.NewSession(prompt)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() { s.Next() })
	if avg >= 1 {
		t.Fatalf("Session.Next allocates %.2f/step, want amortised < 1", avg)
	}
}
