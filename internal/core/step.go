package core

import (
	"fmt"
	"sync"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/tensor"
)

// This file is the multi-session step plane the continuous-batching
// scheduler (internal/sched) drives: sessions that keep no workspace of
// their own, a shared pool of workspaces sized to the step concurrency,
// and a parallel one-token step over any set of sessions. Unlike Session
// (one workspace per stream, logits carried between steps), a StepSession
// carries only its cache, position and pre-computed next token, so a pool
// of MaxBatch workspaces serves an unbounded population of live requests.

// WorkspacePool hands out model workspaces to concurrent decode steps.
// Get allocates on demand, so the pool's steady-state size is the peak
// step concurrency, not the number of live sessions.
type WorkspacePool struct {
	m    *model.Model
	mu   sync.Mutex
	free []*model.Workspace
	made int
}

// NewWorkspacePool builds an empty pool over the model.
func NewWorkspacePool(m *model.Model) *WorkspacePool {
	return &WorkspacePool{m: m}
}

// Get returns a workspace, allocating a fresh one when none are free.
func (p *WorkspacePool) Get() *model.Workspace {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		ws := p.free[n-1]
		p.free = p.free[:n-1]
		return ws
	}
	p.made++
	return p.m.NewWorkspace()
}

// Put returns a workspace to the pool.
func (p *WorkspacePool) Put(ws *model.Workspace) {
	if ws == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, ws)
	p.mu.Unlock()
}

// Allocated reports how many workspaces the pool has ever created — the
// peak step concurrency observed.
func (p *WorkspacePool) Allocated() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.made
}

// StepSession is one decode stream whose scratch state lives in a pooled
// workspace only for the duration of each step. Between steps it holds
// just the cache, the absolute position, and the already-decided next
// token, so it can be parked indefinitely (queued, preempted) without
// pinning a workspace.
type StepSession struct {
	m     *model.Model
	cache kvcache.Cache
	pos   int
	next  int
}

// NewStepSession prefills the prompt into the given cache using a borrowed
// workspace and returns the session positioned at its first output token.
// The token sequence a StepSession emits is identical to Session.Next on
// the same prompt and an equivalent cache.
func NewStepSession(m *model.Model, ws *model.Workspace, prompt []int, cache kvcache.Cache) (*StepSession, error) {
	return ResumeStepSession(m, ws, cache, 0, prompt)
}

// ResumeStepSession continues a partially prefilled cache: the cache
// already holds pos tokens (e.g. a shared prompt prefix cloned via
// kvcache.PagedKV.ClonePrefix) and tail is the rest of the prompt,
// prefilled here at positions pos, pos+1, ... Because ForwardInto is
// deterministic and the paged cache exact, the resulting decode stream is
// bit-identical to prefilling the whole prompt cold — prefix reuse only
// saves the recompute. tail must be non-empty: the logits of the last
// prompt token are needed to decide the first output.
func ResumeStepSession(m *model.Model, ws *model.Workspace, cache kvcache.Cache, pos int, tail []int) (*StepSession, error) {
	if len(tail) == 0 {
		return nil, fmt.Errorf("core: empty prompt tail")
	}
	if pos < 0 || cache.TotalAppended() != pos {
		return nil, fmt.Errorf("core: cache holds %d tokens, resume expects %d", cache.TotalAppended(), pos)
	}
	var logits []float32
	for i, tok := range tail {
		sr := m.ForwardInto(ws, tok, pos+i, cache)
		logits = sr.Logits
	}
	return &StepSession{m: m, cache: cache, pos: pos + len(tail), next: tensor.Argmax(logits)}, nil
}

// Step emits the session's next token and advances one position: the
// emitted token is forwarded through the model (appending its KV) and the
// following token is decided greedily from the fresh logits. The workspace
// is only used within the call.
func (s *StepSession) Step(ws *model.Workspace) int {
	tok := s.next
	sr := s.m.ForwardInto(ws, tok, s.pos, s.cache)
	s.next = tensor.Argmax(sr.Logits)
	s.pos++
	return tok
}

// Pos returns the number of tokens appended so far (prompt + emitted).
func (s *StepSession) Pos() int { return s.pos }

// Cache exposes the session's cache.
func (s *StepSession) Cache() kvcache.Cache { return s.cache }

// StepAll decodes exactly one token on every session concurrently, each
// step borrowing a workspace from the pool, and returns the emitted tokens
// index-aligned with sessions. Sessions must be distinct and own distinct
// caches; the shared model weights are immutable, so the steps are
// independent. This is the iteration-level inner loop of continuous
// batching: the caller re-forms the session set between calls.
func StepAll(pool *WorkspacePool, sessions []*StepSession) []int {
	toks := make([]int, len(sessions))
	if len(sessions) == 1 {
		ws := pool.Get()
		toks[0] = sessions[0].Step(ws)
		pool.Put(ws)
		return toks
	}
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *StepSession) {
			defer wg.Done()
			ws := pool.Get()
			toks[i] = s.Step(ws)
			pool.Put(ws)
		}(i, s)
	}
	wg.Wait()
	return toks
}
