package core

import (
	"fmt"
	"runtime"
	"sync"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/tensor"
)

// This file is the multi-session step plane the continuous-batching
// scheduler (internal/sched) drives: sessions that keep no workspace of
// their own, a shared pool of workspaces sized to the step concurrency,
// and a fused one-token step over any set of sessions. Unlike Session
// (one workspace per stream, logits carried between steps), a StepSession
// carries only its cache, position and pre-computed next token, so a pool
// of MaxBatch workspaces serves an unbounded population of live requests.
//
// StepAll's fast path is the fused batched forward pass
// (model.ForwardBatchInto): one weight-stationary pass per step for the
// whole batch, loading every weight matrix once instead of once per
// session, with per-session attention against each session's own cache.
// It borrows one pooled StepBatch per step — one pool round-trip instead
// of the historical per-session Get/Put inside every step goroutine.

// WorkspacePool hands out model workspaces — and fused step batches — to
// concurrent decode steps. Get allocates on demand, so the pool's
// steady-state size is the peak step concurrency, not the number of live
// sessions.
type WorkspacePool struct {
	m         *model.Model
	mu        sync.Mutex
	free      []*model.Workspace
	freeBatch []*StepBatch
	made      int
}

// NewWorkspacePool builds an empty pool over the model.
func NewWorkspacePool(m *model.Model) *WorkspacePool {
	return &WorkspacePool{m: m}
}

// Get returns a workspace, allocating a fresh one when none are free.
func (p *WorkspacePool) Get() *model.Workspace {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.getLocked()
}

func (p *WorkspacePool) getLocked() *model.Workspace {
	if n := len(p.free); n > 0 {
		ws := p.free[n-1]
		p.free = p.free[:n-1]
		return ws
	}
	p.made++
	return p.m.NewWorkspace()
}

// Put returns a workspace to the pool.
func (p *WorkspacePool) Put(ws *model.Workspace) {
	if ws == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, ws)
	p.mu.Unlock()
}

// getN fills out with workspaces in one pool pass — the heterogeneous
// step path acquires all its workspaces before spawning goroutines, so
// the pool mutex is taken once per step, not once per session.
func (p *WorkspacePool) getN(n int) []*model.Workspace {
	out := make([]*model.Workspace, n)
	p.mu.Lock()
	for i := range out {
		out[i] = p.getLocked()
	}
	p.mu.Unlock()
	return out
}

// putN returns a getN batch.
func (p *WorkspacePool) putN(wss []*model.Workspace) {
	p.mu.Lock()
	p.free = append(p.free, wss...)
	p.mu.Unlock()
}

// Allocated reports how many single-stream workspaces the pool has ever
// created — the peak heterogeneous step concurrency observed. Fused steps
// draw from the StepBatch pool instead and are not counted here.
func (p *WorkspacePool) Allocated() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.made
}

// StepBatch bundles a fused batch workspace with the lane-marshalling
// scratch one StepAll call needs. Pooled so a continuous-batching loop
// pays one pool round-trip per decode iteration and zero steady-state
// allocations.
type StepBatch struct {
	bw        *model.BatchWorkspace
	tokens    []int
	positions []int
	caches    []kvcache.Cache
	chunks    []model.Chunk
}

// Batch exposes the underlying fused batch workspace, for callers that
// drive the model's batched entry points directly (e.g. construction-time
// chunked prefill of a shared prefix) with the same pooled scratch the
// step loop reuses.
func (sb *StepBatch) Batch() *model.BatchWorkspace { return sb.bw }

func (sb *StepBatch) ensure(n int) {
	sb.bw.EnsureLanes(n)
	if cap(sb.tokens) < n {
		sb.tokens = make([]int, n)
		sb.positions = make([]int, n)
		sb.caches = make([]kvcache.Cache, n)
	}
}

// ensureChunks grows the reusable model.Chunk marshalling scratch to at
// least k entries, keeping packed mixed steps allocation-free.
func (sb *StepBatch) ensureChunks(k int) {
	if cap(sb.chunks) < k {
		sb.chunks = make([]model.Chunk, k)
	}
}

// GetBatch returns a pooled fused step batch, allocating when none are
// free.
func (p *WorkspacePool) GetBatch() *StepBatch {
	p.mu.Lock()
	if n := len(p.freeBatch); n > 0 {
		sb := p.freeBatch[n-1]
		p.freeBatch = p.freeBatch[:n-1]
		p.mu.Unlock()
		return sb
	}
	p.mu.Unlock()
	return &StepBatch{bw: p.m.NewBatchWorkspace(0)}
}

// PutBatch returns a fused step batch to the pool. Cache references are
// cleared so a pooled batch does not pin retired sessions' KV memory.
func (p *WorkspacePool) PutBatch(sb *StepBatch) {
	if sb == nil {
		return
	}
	for i := range sb.caches {
		sb.caches[i] = nil
	}
	for i := range sb.chunks {
		sb.chunks[i] = model.Chunk{}
	}
	p.mu.Lock()
	p.freeBatch = append(p.freeBatch, sb)
	p.mu.Unlock()
}

// StepSession is one decode stream whose scratch state lives in a pooled
// workspace only for the duration of each step. Between steps it holds
// just the cache, the absolute position, and the already-decided next
// token, so it can be parked indefinitely (queued, preempted) without
// pinning a workspace.
type StepSession struct {
	m     *model.Model
	cache kvcache.Cache
	pos   int
	next  int
}

// NewStepSession prefills the prompt into the given cache using a borrowed
// workspace and returns the session positioned at its first output token.
// The token sequence a StepSession emits is identical to Session.Next on
// the same prompt and an equivalent cache.
func NewStepSession(m *model.Model, ws *model.Workspace, prompt []int, cache kvcache.Cache) (*StepSession, error) {
	return ResumeStepSession(m, ws, cache, 0, prompt)
}

// ResumeStepSession continues a partially prefilled cache: the cache
// already holds pos tokens (e.g. a shared prompt prefix cloned via
// kvcache.PagedKV.ClonePrefix) and tail is the rest of the prompt,
// prefilled here at positions pos, pos+1, ... Because ForwardInto is
// deterministic and the paged cache exact, the resulting decode stream is
// bit-identical to prefilling the whole prompt cold — prefix reuse only
// saves the recompute. tail must be non-empty: the logits of the last
// prompt token are needed to decide the first output.
func ResumeStepSession(m *model.Model, ws *model.Workspace, cache kvcache.Cache, pos int, tail []int) (*StepSession, error) {
	if len(tail) == 0 {
		return nil, fmt.Errorf("core: empty prompt tail")
	}
	if pos < 0 || cache.TotalAppended() != pos {
		return nil, fmt.Errorf("core: cache holds %d tokens, resume expects %d", cache.TotalAppended(), pos)
	}
	var logits []float32
	for i, tok := range tail {
		sr := m.ForwardInto(ws, tok, pos+i, cache)
		logits = sr.Logits
	}
	return &StepSession{m: m, cache: cache, pos: pos + len(tail), next: tensor.Argmax(logits)}, nil
}

// NewPrefilledStepSession wraps a cache whose prompt is already fully
// prefilled — by chunked prefill through StepMixedInto — into a decode
// session. next is the first output token, decided from the final prompt
// position's logits (StepMixedInto returns it for a Final chunk). The
// resulting token stream is identical to NewStepSession's over the same
// prompt: both decide the first token from the same logits and decode the
// same cache.
func NewPrefilledStepSession(m *model.Model, cache kvcache.Cache, next int) *StepSession {
	return &StepSession{m: m, cache: cache, pos: cache.TotalAppended(), next: next}
}

// Step emits the session's next token and advances one position: the
// emitted token is forwarded through the model (appending its KV) and the
// following token is decided greedily from the fresh logits. The workspace
// is only used within the call.
func (s *StepSession) Step(ws *model.Workspace) int {
	tok := s.next
	sr := s.m.ForwardInto(ws, tok, s.pos, s.cache)
	s.next = tensor.Argmax(sr.Logits)
	s.pos++
	return tok
}

// Pos returns the number of tokens appended so far (prompt + emitted).
func (s *StepSession) Pos() int { return s.pos }

// Cache exposes the session's cache.
func (s *StepSession) Cache() kvcache.Cache { return s.cache }

// StepAll decodes exactly one token on every session and returns the
// emitted tokens index-aligned with sessions. See StepAllInto.
func StepAll(pool *WorkspacePool, sessions []*StepSession) []int {
	toks := make([]int, len(sessions))
	StepAllInto(pool, sessions, toks)
	return toks
}

// StepStats accumulates per-step counters a scheduler aggregates across its
// serve loop. Currently: sparse attention's page-selection tallies, summed
// over every (layer, head) attention the step ran. Both stay zero when
// sparsity is off or never engaged.
type StepStats struct {
	SparsePagesSelected int64
	SparsePagesTotal    int64
}

// drainWorkspace moves a pooled workspace's sparse counters into the stats
// (or discards them when stats is nil). Pooled workspaces are shared across
// sessions, so counters must never survive a step — a later borrower would
// inherit them.
func (st *StepStats) drainWorkspace(ws *model.Workspace) {
	sel, tot := ws.TakeSparseStats()
	if st != nil {
		st.SparsePagesSelected += sel
		st.SparsePagesTotal += tot
	}
}

// drainBatch is drainWorkspace over every lane of a pooled step batch.
func (st *StepStats) drainBatch(sb *StepBatch) {
	sel, tot := sb.bw.TakeSparseStats()
	if st != nil {
		st.SparsePagesSelected += sel
		st.SparsePagesTotal += tot
	}
}

// StepAllInto decodes exactly one token on every session, writing the
// emitted tokens into toks (index-aligned; len(toks) must equal
// len(sessions)). Sessions must be distinct and own distinct caches; the
// shared model weights are immutable. This is the iteration-level inner
// loop of continuous batching: the caller re-forms the session set between
// calls, and a caller that reuses toks steps with zero allocations.
//
// Sessions sharing the pool's model — the serving case — take the fused
// fast path: one pooled StepBatch, one ForwardBatchInto loading each weight
// matrix once for the whole batch (row-sharded across GOMAXPROCS when >1),
// attention per-session. Emitted tokens are bit-identical to per-session
// stepping. A single session steps directly on a pooled workspace;
// sessions over heterogeneous models fall back to one goroutine per
// session with workspaces acquired in a single pool pass.
func StepAllInto(pool *WorkspacePool, sessions []*StepSession, toks []int) {
	StepAllStatsInto(pool, sessions, toks, nil)
}

// StepAllStatsInto is StepAllInto with per-step counters accumulated into
// stats (nil discards them — pooled workspace counters are always drained
// so no later borrower inherits a stale tally).
func StepAllStatsInto(pool *WorkspacePool, sessions []*StepSession, toks []int, stats *StepStats) {
	if len(toks) != len(sessions) {
		panic("core: StepAllInto toks length mismatch")
	}
	n := len(sessions)
	switch n {
	case 0:
		return
	case 1:
		ws := pool.Get()
		toks[0] = sessions[0].Step(ws)
		stats.drainWorkspace(ws)
		pool.Put(ws)
		return
	}
	// Fuse only when every session runs the pool's model: the pooled
	// batch workspaces belong to it. Sessions over any other model —
	// uniform or mixed — step per-goroutine (they may differ from the
	// pool's model only in weights, not shape).
	m := pool.m
	for _, s := range sessions {
		if s.m != m {
			stepHeterogeneous(pool, sessions, toks, stats)
			return
		}
	}

	sb := pool.GetBatch()
	sb.ensure(n)
	for i, s := range sessions {
		toks[i] = s.next
		sb.tokens[i] = s.next
		sb.positions[i] = s.pos
		sb.caches[i] = s.cache
	}
	sb.bw.SetWorkers(runtime.GOMAXPROCS(0))
	results := m.ForwardBatchInto(sb.bw, sb.tokens[:n], sb.positions[:n], sb.caches[:n])
	for i, s := range sessions {
		s.next = tensor.Argmax(results[i].Logits)
		s.pos++
	}
	stats.drainBatch(sb)
	pool.PutBatch(sb)
}

// PrefillChunk describes one prompt chunk advanced in the same fused pass
// as a decode iteration — the scheduler's unit of interleaved prefill work.
// The cache accumulates the prompt across successive chunks (its
// TotalAppended is the chunk's starting position); Final marks the prompt's
// last chunk, whose end-of-prompt logits decide the request's first output
// token.
type PrefillChunk struct {
	Tokens []int
	Cache  kvcache.Cache
	Final  bool
}

// StepMixedInto is StepAllInto plus any number of prefill chunks from
// distinct prompts carried in the same fused pass: every running session
// advances one token and each chunk's positions prefill into that chunk's
// own cache, with each weight matrix loaded once for all of it
// (model.ForwardMixedInto) — the Sarathi-style packed iteration the
// scheduler's token budget fills. Emitted tokens are bit-identical to
// per-session stepping and each chunk's cache writes to token-at-a-time
// prefill, regardless of packing. nexts must be index-aligned with chunks:
// nexts[j] receives chunk j's first decode token when chunks[j].Final,
// else -1. An empty chunk slice is exactly StepAllInto; an empty session
// set runs the chunks alone (pure prefill iteration). Sessions not sharing
// the pool's model fall back to per-goroutine steps with the chunks fused
// separately.
func StepMixedInto(pool *WorkspacePool, sessions []*StepSession, toks []int, chunks []PrefillChunk, nexts []int) {
	StepMixedStatsInto(pool, sessions, toks, chunks, nexts, nil)
}

// StepMixedStatsInto is StepMixedInto with per-step counters accumulated
// into stats (nil discards them), mirroring StepAllStatsInto.
func StepMixedStatsInto(pool *WorkspacePool, sessions []*StepSession, toks []int, chunks []PrefillChunk, nexts []int, stats *StepStats) {
	if len(chunks) == 0 {
		StepAllStatsInto(pool, sessions, toks, stats)
		return
	}
	if len(toks) != len(sessions) {
		panic("core: StepMixedInto toks length mismatch")
	}
	if len(nexts) != len(chunks) {
		panic("core: StepMixedInto nexts length mismatch")
	}
	m := pool.m
	for _, s := range sessions {
		if s.m != m {
			// Heterogeneous sessions cannot share the pooled fused pass:
			// step them per-goroutine, then run the chunks on their own.
			stepHeterogeneous(pool, sessions, toks, stats)
			sessions = nil
			break
		}
	}
	n := len(sessions)
	sb := pool.GetBatch()
	sb.ensure(n)
	sb.ensureChunks(len(chunks))
	for i, s := range sessions {
		toks[i] = s.next
		sb.tokens[i] = s.next
		sb.positions[i] = s.pos
		sb.caches[i] = s.cache
	}
	mcs := sb.chunks[:len(chunks)]
	for j := range chunks {
		ch := &chunks[j]
		mcs[j] = model.Chunk{
			Tokens:     ch.Tokens,
			Pos:        ch.Cache.TotalAppended(),
			Cache:      ch.Cache,
			NeedLogits: ch.Final,
		}
	}
	sb.bw.SetWorkers(runtime.GOMAXPROCS(0))
	results, chunkRes := m.ForwardMixedInto(sb.bw, sb.tokens[:n], sb.positions[:n], sb.caches[:n], mcs)
	for i, s := range sessions {
		s.next = tensor.Argmax(results[i].Logits)
		s.pos++
	}
	for j := range chunks {
		if chunks[j].Final {
			nexts[j] = tensor.Argmax(chunkRes[j].Logits)
		} else {
			nexts[j] = -1
		}
		// Drop the cache reference before the batch re-enters the pool.
		mcs[j] = model.Chunk{}
	}
	stats.drainBatch(sb)
	pool.PutBatch(sb)
}

// stepHeterogeneous steps sessions whose models differ: one goroutine per
// session, workspaces acquired up front in one pool pass. The models must
// share the pool model's shape (pooled workspaces are sized by it); each
// Step runs its session's own weights.
func stepHeterogeneous(pool *WorkspacePool, sessions []*StepSession, toks []int, stats *StepStats) {
	wss := pool.getN(len(sessions))
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *StepSession) {
			defer wg.Done()
			toks[i] = s.Step(wss[i])
		}(i, s)
	}
	wg.Wait()
	for _, ws := range wss {
		stats.drainWorkspace(ws)
	}
	pool.putN(wss)
}
