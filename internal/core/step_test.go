package core

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
)

// StepSession over pooled workspaces must emit exactly the tokens Session
// emits — it is the same greedy decode restructured for workspace sharing.
func TestStepSessionMatchesSession(t *testing.T) {
	p, err := NewPipeline("fp16", 3)
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{1, 2, 3, 4},
		{10, 20, 30, 40, 50, 60, 70},
		{5},
	}
	const maxNew = 16

	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		out, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	pool := NewWorkspacePool(p.Model)
	sessions := make([]*StepSession, len(prompts))
	for i, prompt := range prompts {
		ws := pool.Get()
		s, err := NewStepSession(p.Model, ws, prompt, kvcache.NewPagedKV(p.Model.CacheShape(), 8))
		pool.Put(ws)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	got := make([][]int, len(prompts))
	for step := 0; step < maxNew; step++ {
		toks := StepAll(pool, sessions)
		for i, tok := range toks {
			got[i] = append(got[i], tok)
		}
	}
	for i := range prompts {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("prompt %d token %d: step loop %d != session %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if n := pool.Allocated(); n > len(prompts) {
		t.Fatalf("pool allocated %d workspaces for %d-way steps", n, len(prompts))
	}
}

func TestNewStepSessionEmptyPrompt(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	ws := m.NewWorkspace()
	if _, err := NewStepSession(m, ws, nil, kvcache.NewFull(m.CacheShape())); err == nil {
		t.Fatal("empty prompt accepted")
	}
}

// TestStepAllMixedCaches drives the fused path with heterogeneous cache
// layouts in one batch (flat Full next to PagedKV): attention is
// per-session, so the fused step must handle any Cache mix and still
// match per-session stepping token for token.
func TestStepAllMixedCaches(t *testing.T) {
	m := model.New(model.Tiny(), 5)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	prompts := [][]int{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{9, 8, 7},
		{100, 200, 300, 400},
		{42},
	}
	mkCache := func(i int) kvcache.Cache {
		if i%2 == 0 {
			return kvcache.NewFull(m.CacheShape())
		}
		return kvcache.NewPagedKV(m.CacheShape(), 4)
	}

	const maxNew = 12
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		s, err := NewStepSession(m, ws, prompt, mkCache(i))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < maxNew; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	sessions := make([]*StepSession, len(prompts))
	for i, prompt := range prompts {
		s, err := NewStepSession(m, ws, prompt, mkCache(i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	toks := make([]int, len(sessions))
	for step := 0; step < maxNew; step++ {
		StepAllInto(pool, sessions, toks)
		for i, tok := range toks {
			if tok != want[i][step] {
				t.Fatalf("session %d step %d: fused %d != per-session %d", i, step, tok, want[i][step])
			}
		}
	}
}

// TestStepAllHeterogeneousModels exercises the per-goroutine fallback:
// sessions over distinct models (same shape) cannot fuse but must still
// step correctly.
func TestStepAllHeterogeneousModels(t *testing.T) {
	m1 := model.New(model.Tiny(), 1)
	m2 := model.New(model.Tiny(), 2)
	pool := NewWorkspacePool(m1)
	ws := m1.NewWorkspace()

	prompt := []int{3, 1, 4, 1, 5}
	want := make([][]int, 2)
	for i, m := range []*model.Model{m1, m2} {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewFull(m.CacheShape()))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 8; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	s1, err := NewStepSession(m1, ws, prompt, kvcache.NewFull(m1.CacheShape()))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStepSession(m2, ws, prompt, kvcache.NewFull(m2.CacheShape()))
	if err != nil {
		t.Fatal(err)
	}
	sessions := []*StepSession{s1, s2}
	toks := make([]int, 2)
	for step := 0; step < 8; step++ {
		StepAllInto(pool, sessions, toks)
		for i := range sessions {
			if toks[i] != want[i][step] {
				t.Fatalf("model %d step %d: %d != %d", i, step, toks[i], want[i][step])
			}
		}
	}
}

// TestStepAllForeignModel steps a batch that is uniform over a model that
// is NOT the pool's model: it must take the per-goroutine fallback (the
// pooled batch workspaces belong to the pool's model) instead of panicking,
// and still emit the right tokens.
func TestStepAllForeignModel(t *testing.T) {
	m1 := model.New(model.Tiny(), 1)
	m2 := model.New(model.Tiny(), 2)
	pool := NewWorkspacePool(m1)
	ws := m2.NewWorkspace()

	prompt := []int{2, 7, 1, 8}
	ref, err := NewStepSession(m2, ws, prompt, kvcache.NewFull(m2.CacheShape()))
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for step := 0; step < 6; step++ {
		want = append(want, ref.Step(ws))
	}

	sessions := make([]*StepSession, 2)
	for i := range sessions {
		s, err := NewStepSession(m2, ws, prompt, kvcache.NewFull(m2.CacheShape()))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	toks := make([]int, 2)
	for step := 0; step < 6; step++ {
		StepAllInto(pool, sessions, toks)
		for i := range sessions {
			if toks[i] != want[step] {
				t.Fatalf("session %d step %d: %d != %d", i, step, toks[i], want[step])
			}
		}
	}
}

// TestStepMixedIntoMatchesStepAll drives a decode batch while a long
// prompt chunk-prefills through the same fused iterations, then decodes
// the prefilled request via NewPrefilledStepSession: every stream — the
// concurrent decoders and the chunked request — must emit exactly the
// tokens per-session stepping produces.
func TestStepMixedIntoMatchesStepAll(t *testing.T) {
	m := model.New(model.Tiny(), 9)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	decodePrompts := [][]int{
		{1, 2, 3, 4, 5},
		{50, 60, 70},
	}
	longPrompt := make([]int, 37)
	for i := range longPrompt {
		longPrompt[i] = (i*23 + 11) % m.Config().Vocab
	}
	const maxNew = 10

	// References: plain per-session stepping for everything.
	want := make([][]int, len(decodePrompts)+1)
	for i, prompt := range append(append([][]int{}, decodePrompts...), longPrompt) {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 8))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < maxNew; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	sessions := make([]*StepSession, len(decodePrompts))
	got := make([][]int, len(decodePrompts)+1)
	for i, prompt := range decodePrompts {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 8))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	// Chunk the long prompt at 8 across mixed iterations; decoders advance
	// one token per iteration alongside.
	longCache := kvcache.NewPagedKV(m.CacheShape(), 8)
	toks := make([]int, len(sessions))
	var longSess *StepSession
	for off := 0; off < len(longPrompt); off += 8 {
		end := off + 8
		if end > len(longPrompt) {
			end = len(longPrompt)
		}
		chunk := &PrefillChunk{Tokens: longPrompt[off:end], Cache: longCache, Final: end == len(longPrompt)}
		next := StepMixedInto(pool, sessions, toks, chunk)
		for i, tok := range toks {
			got[i] = append(got[i], tok)
		}
		if chunk.Final {
			if next < 0 {
				t.Fatal("final chunk returned no next token")
			}
			longSess = NewPrefilledStepSession(m, longCache, next)
		} else if next != -1 {
			t.Fatalf("non-final chunk returned token %d", next)
		}
	}
	// Finish all streams with plain fused stepping.
	all := append(append([]*StepSession{}, sessions...), longSess)
	allToks := make([]int, len(all))
	for steps := 0; ; steps++ {
		StepMixedInto(pool, all, allToks, nil)
		for i, tok := range allToks {
			if len(got[i]) < maxNew {
				got[i] = append(got[i], tok)
			}
		}
		done := true
		for i := range got {
			if len(got[i]) < maxNew {
				done = false
			}
		}
		if done {
			break
		}
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("stream %d token %d: mixed %d != per-session %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestStepAllIntoAllocFree proves the serial fused serving step allocates
// nothing in steady state: pooled StepBatch, reused toks, paged caches
// sized past the decode window. (AllocsPerRun pins GOMAXPROCS to 1, so
// this measures exactly the serial path; the GOMAXPROCS>1 step shards
// across goroutines and allocates their frames by design — see
// BatchWorkspace.SetWorkers.)
func TestStepAllIntoAllocFree(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	sessions := make([]*StepSession, 4)
	for i := range sessions {
		prompt := []int{1 + i, 2, 3, 4 + i}
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 1024))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	toks := make([]int, len(sessions))
	StepAllInto(pool, sessions, toks) // warm the pooled StepBatch
	if n := testing.AllocsPerRun(50, func() {
		StepAllInto(pool, sessions, toks)
	}); n != 0 {
		t.Fatalf("fused StepAllInto allocated %v per run", n)
	}
}

func TestStepAllIntoLengthMismatch(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := NewWorkspacePool(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on toks length mismatch")
		}
	}()
	StepAllInto(pool, make([]*StepSession, 2), make([]int, 1))
}
