package core

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
)

// StepSession over pooled workspaces must emit exactly the tokens Session
// emits — it is the same greedy decode restructured for workspace sharing.
func TestStepSessionMatchesSession(t *testing.T) {
	p, err := NewPipeline("fp16", 3)
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{1, 2, 3, 4},
		{10, 20, 30, 40, 50, 60, 70},
		{5},
	}
	const maxNew = 16

	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		out, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	pool := NewWorkspacePool(p.Model)
	sessions := make([]*StepSession, len(prompts))
	for i, prompt := range prompts {
		ws := pool.Get()
		s, err := NewStepSession(p.Model, ws, prompt, kvcache.NewPagedKV(p.Model.CacheShape(), 8))
		pool.Put(ws)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	got := make([][]int, len(prompts))
	for step := 0; step < maxNew; step++ {
		toks := StepAll(pool, sessions)
		for i, tok := range toks {
			got[i] = append(got[i], tok)
		}
	}
	for i := range prompts {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("prompt %d token %d: step loop %d != session %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if n := pool.Allocated(); n > len(prompts) {
		t.Fatalf("pool allocated %d workspaces for %d-way steps", n, len(prompts))
	}
}

func TestNewStepSessionEmptyPrompt(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	ws := m.NewWorkspace()
	if _, err := NewStepSession(m, ws, nil, kvcache.NewFull(m.CacheShape())); err == nil {
		t.Fatal("empty prompt accepted")
	}
}

// TestStepAllMixedCaches drives the fused path with heterogeneous cache
// layouts in one batch (flat Full next to PagedKV): attention is
// per-session, so the fused step must handle any Cache mix and still
// match per-session stepping token for token.
func TestStepAllMixedCaches(t *testing.T) {
	m := model.New(model.Tiny(), 5)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	prompts := [][]int{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{9, 8, 7},
		{100, 200, 300, 400},
		{42},
	}
	mkCache := func(i int) kvcache.Cache {
		if i%2 == 0 {
			return kvcache.NewFull(m.CacheShape())
		}
		return kvcache.NewPagedKV(m.CacheShape(), 4)
	}

	const maxNew = 12
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		s, err := NewStepSession(m, ws, prompt, mkCache(i))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < maxNew; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	sessions := make([]*StepSession, len(prompts))
	for i, prompt := range prompts {
		s, err := NewStepSession(m, ws, prompt, mkCache(i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	toks := make([]int, len(sessions))
	for step := 0; step < maxNew; step++ {
		StepAllInto(pool, sessions, toks)
		for i, tok := range toks {
			if tok != want[i][step] {
				t.Fatalf("session %d step %d: fused %d != per-session %d", i, step, tok, want[i][step])
			}
		}
	}
}

// TestStepAllHeterogeneousModels exercises the per-goroutine fallback:
// sessions over distinct models (same shape) cannot fuse but must still
// step correctly.
func TestStepAllHeterogeneousModels(t *testing.T) {
	m1 := model.New(model.Tiny(), 1)
	m2 := model.New(model.Tiny(), 2)
	pool := NewWorkspacePool(m1)
	ws := m1.NewWorkspace()

	prompt := []int{3, 1, 4, 1, 5}
	want := make([][]int, 2)
	for i, m := range []*model.Model{m1, m2} {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewFull(m.CacheShape()))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 8; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	s1, err := NewStepSession(m1, ws, prompt, kvcache.NewFull(m1.CacheShape()))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStepSession(m2, ws, prompt, kvcache.NewFull(m2.CacheShape()))
	if err != nil {
		t.Fatal(err)
	}
	sessions := []*StepSession{s1, s2}
	toks := make([]int, 2)
	for step := 0; step < 8; step++ {
		StepAllInto(pool, sessions, toks)
		for i := range sessions {
			if toks[i] != want[i][step] {
				t.Fatalf("model %d step %d: %d != %d", i, step, toks[i], want[i][step])
			}
		}
	}
}

// TestStepAllForeignModel steps a batch that is uniform over a model that
// is NOT the pool's model: it must take the per-goroutine fallback (the
// pooled batch workspaces belong to the pool's model) instead of panicking,
// and still emit the right tokens.
func TestStepAllForeignModel(t *testing.T) {
	m1 := model.New(model.Tiny(), 1)
	m2 := model.New(model.Tiny(), 2)
	pool := NewWorkspacePool(m1)
	ws := m2.NewWorkspace()

	prompt := []int{2, 7, 1, 8}
	ref, err := NewStepSession(m2, ws, prompt, kvcache.NewFull(m2.CacheShape()))
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for step := 0; step < 6; step++ {
		want = append(want, ref.Step(ws))
	}

	sessions := make([]*StepSession, 2)
	for i := range sessions {
		s, err := NewStepSession(m2, ws, prompt, kvcache.NewFull(m2.CacheShape()))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	toks := make([]int, 2)
	for step := 0; step < 6; step++ {
		StepAllInto(pool, sessions, toks)
		for i := range sessions {
			if toks[i] != want[step] {
				t.Fatalf("session %d step %d: %d != %d", i, step, toks[i], want[step])
			}
		}
	}
}

// TestStepMixedIntoMatchesStepAll drives a decode batch while a long
// prompt chunk-prefills through the same fused iterations, then decodes
// the prefilled request via NewPrefilledStepSession: every stream — the
// concurrent decoders and the chunked request — must emit exactly the
// tokens per-session stepping produces.
func TestStepMixedIntoMatchesStepAll(t *testing.T) {
	m := model.New(model.Tiny(), 9)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	decodePrompts := [][]int{
		{1, 2, 3, 4, 5},
		{50, 60, 70},
	}
	longPrompt := make([]int, 37)
	for i := range longPrompt {
		longPrompt[i] = (i*23 + 11) % m.Config().Vocab
	}
	const maxNew = 10

	// References: plain per-session stepping for everything.
	want := make([][]int, len(decodePrompts)+1)
	for i, prompt := range append(append([][]int{}, decodePrompts...), longPrompt) {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 8))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < maxNew; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	sessions := make([]*StepSession, len(decodePrompts))
	got := make([][]int, len(decodePrompts)+1)
	for i, prompt := range decodePrompts {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 8))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	// Chunk the long prompt at 8 across mixed iterations; decoders advance
	// one token per iteration alongside.
	longCache := kvcache.NewPagedKV(m.CacheShape(), 8)
	toks := make([]int, len(sessions))
	nexts := make([]int, 1)
	var longSess *StepSession
	for off := 0; off < len(longPrompt); off += 8 {
		end := off + 8
		if end > len(longPrompt) {
			end = len(longPrompt)
		}
		chunks := []PrefillChunk{{Tokens: longPrompt[off:end], Cache: longCache, Final: end == len(longPrompt)}}
		StepMixedInto(pool, sessions, toks, chunks, nexts)
		for i, tok := range toks {
			got[i] = append(got[i], tok)
		}
		if chunks[0].Final {
			if nexts[0] < 0 {
				t.Fatal("final chunk returned no next token")
			}
			longSess = NewPrefilledStepSession(m, longCache, nexts[0])
		} else if nexts[0] != -1 {
			t.Fatalf("non-final chunk returned token %d", nexts[0])
		}
	}
	// Finish all streams with plain fused stepping.
	all := append(append([]*StepSession{}, sessions...), longSess)
	allToks := make([]int, len(all))
	for steps := 0; ; steps++ {
		StepMixedInto(pool, all, allToks, nil, nil)
		for i, tok := range allToks {
			if len(got[i]) < maxNew {
				got[i] = append(got[i], tok)
			}
		}
		done := true
		for i := range got {
			if len(got[i]) < maxNew {
				done = false
			}
		}
		if done {
			break
		}
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("stream %d token %d: mixed %d != per-session %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestStepMixedPackedMatchesStepAll packs chunks from several prompts into
// the same fused iterations as a running decode batch — the budget-packed
// shape the scheduler's TokenBudget produces — and checks every stream
// emits exactly the tokens per-session stepping produces, with each packed
// prompt's first decode token coming from its own chunk's Final logits.
func TestStepMixedPackedMatchesStepAll(t *testing.T) {
	m := model.New(model.Tiny(), 9)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	decodePrompts := [][]int{
		{1, 2, 3, 4, 5},
		{50, 60, 70},
	}
	longPrompts := make([][]int, 3)
	for j := range longPrompts {
		longPrompts[j] = make([]int, 19+7*j) // 19, 26, 33: staggered finals
		for i := range longPrompts[j] {
			longPrompts[j][i] = (i*23 + j*41 + 11) % m.Config().Vocab
		}
	}
	const maxNew = 8
	const chunkSize = 6

	all := append(append([][]int{}, decodePrompts...), longPrompts...)
	want := make([][]int, len(all))
	for i, prompt := range all {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 8))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < maxNew; step++ {
			want[i] = append(want[i], s.Step(ws))
		}
	}

	sessions := make([]*StepSession, len(decodePrompts))
	got := make([][]int, len(all))
	for i, prompt := range decodePrompts {
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 8))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	longCaches := make([]kvcache.Cache, len(longPrompts))
	longSess := make([]*StepSession, len(longPrompts))
	for j := range longPrompts {
		longCaches[j] = kvcache.NewPagedKV(m.CacheShape(), 8)
	}
	toks := make([]int, len(sessions))
	var chunks []PrefillChunk
	var nexts []int
	var idx []int
	for off := 0; ; off += chunkSize {
		chunks = chunks[:0]
		idx = idx[:0]
		for j, prompt := range longPrompts {
			if off >= len(prompt) {
				continue
			}
			end := off + chunkSize
			if end > len(prompt) {
				end = len(prompt)
			}
			chunks = append(chunks, PrefillChunk{
				Tokens: prompt[off:end],
				Cache:  longCaches[j],
				Final:  end == len(prompt),
			})
			idx = append(idx, j)
		}
		if len(chunks) == 0 {
			break
		}
		if cap(nexts) < len(chunks) {
			nexts = make([]int, len(chunks))
		}
		StepMixedInto(pool, sessions, toks, chunks, nexts[:len(chunks)])
		for i, tok := range toks {
			got[i] = append(got[i], tok)
		}
		for c, j := range idx {
			if chunks[c].Final {
				if nexts[c] < 0 {
					t.Fatalf("final chunk %d returned no next token", j)
				}
				longSess[j] = NewPrefilledStepSession(m, longCaches[j], nexts[c])
			} else if nexts[c] != -1 {
				t.Fatalf("non-final chunk %d returned token %d", j, nexts[c])
			}
		}
	}
	// Finish all streams with plain fused stepping.
	allSess := append(append([]*StepSession{}, sessions...), longSess...)
	allToks := make([]int, len(allSess))
	for {
		StepMixedInto(pool, allSess, allToks, nil, nil)
		done := true
		for i, tok := range allToks {
			if len(got[i]) < maxNew {
				got[i] = append(got[i], tok)
			}
			if len(got[i]) < maxNew {
				done = false
			}
		}
		if done {
			break
		}
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("stream %d token %d: packed %d != per-session %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestStepMixedPackedAllocFree pins the budget-packed serving iteration —
// pooled StepBatch, decode lanes plus chunks from several prompts — at
// zero steady-state heap allocations on the serial path, the contract the
// scheduler's packed stepOnce relies on. (AllocsPerRun pins GOMAXPROCS to
// 1, so SetWorkers sees 1 and the pass stays serial; see
// TestStepAllIntoAllocFree.)
func TestStepMixedPackedAllocFree(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	pool := NewWorkspacePool(m)
	ws := m.NewWorkspace()

	sessions := make([]*StepSession, 3)
	for i := range sessions {
		prompt := []int{1 + i, 2, 3, 4 + i}
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 1024))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	const K = 2
	const C = 4
	chunkCaches := make([]*kvcache.PagedKV, K)
	for j := range chunkCaches {
		chunkCaches[j] = kvcache.NewPagedKV(m.CacheShape(), 1024)
	}
	chunkTokens := make([]int, C)
	toks := make([]int, len(sessions))
	chunks := make([]PrefillChunk, K)
	nexts := make([]int, K)
	step := func() {
		for j := range chunks {
			chunks[j] = PrefillChunk{Tokens: chunkTokens, Cache: chunkCaches[j], Final: true}
		}
		StepMixedInto(pool, sessions, toks, chunks, nexts)
	}
	step() // warm the pooled StepBatch, chunk scratch and first pages
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Fatalf("packed StepMixedInto allocated %v per run", n)
	}
}

// TestStepAllIntoAllocFree proves the serial fused serving step allocates
// nothing in steady state: pooled StepBatch, reused toks, paged caches
// sized past the decode window. (AllocsPerRun pins GOMAXPROCS to 1, so
// this measures exactly the serial path; the GOMAXPROCS>1 step shards
// across goroutines and allocates their frames by design — see
// BatchWorkspace.SetWorkers.)
func TestStepAllIntoAllocFree(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	ws := m.NewWorkspace()
	pool := NewWorkspacePool(m)

	sessions := make([]*StepSession, 4)
	for i := range sessions {
		prompt := []int{1 + i, 2, 3, 4 + i}
		s, err := NewStepSession(m, ws, prompt, kvcache.NewPagedKV(m.CacheShape(), 1024))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	toks := make([]int, len(sessions))
	StepAllInto(pool, sessions, toks) // warm the pooled StepBatch
	if n := testing.AllocsPerRun(50, func() {
		StepAllInto(pool, sessions, toks)
	}); n != 0 {
		t.Fatalf("fused StepAllInto allocated %v per run", n)
	}
}

func TestStepAllIntoLengthMismatch(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := NewWorkspacePool(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on toks length mismatch")
		}
	}()
	StepAllInto(pool, make([]*StepSession, 2), make([]int, 1))
}
