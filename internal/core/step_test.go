package core

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
)

// StepSession over pooled workspaces must emit exactly the tokens Session
// emits — it is the same greedy decode restructured for workspace sharing.
func TestStepSessionMatchesSession(t *testing.T) {
	p, err := NewPipeline("fp16", 3)
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{1, 2, 3, 4},
		{10, 20, 30, 40, 50, 60, 70},
		{5},
	}
	const maxNew = 16

	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		out, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	pool := NewWorkspacePool(p.Model)
	sessions := make([]*StepSession, len(prompts))
	for i, prompt := range prompts {
		ws := pool.Get()
		s, err := NewStepSession(p.Model, ws, prompt, kvcache.NewPagedKV(p.Model.CacheShape(), 8))
		pool.Put(ws)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	got := make([][]int, len(prompts))
	for step := 0; step < maxNew; step++ {
		toks := StepAll(pool, sessions)
		for i, tok := range toks {
			got[i] = append(got[i], tok)
		}
	}
	for i := range prompts {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("prompt %d token %d: step loop %d != session %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if n := pool.Allocated(); n > len(prompts) {
		t.Fatalf("pool allocated %d workspaces for %d-way steps", n, len(prompts))
	}
}

func TestNewStepSessionEmptyPrompt(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	ws := m.NewWorkspace()
	if _, err := NewStepSession(m, ws, nil, kvcache.NewFull(m.CacheShape())); err == nil {
		t.Fatal("empty prompt accepted")
	}
}
