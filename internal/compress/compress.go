// Package compress binds the quantisation and sparsity implementations into
// the named method configurations the paper evaluates (FP16, KIVI-2/4,
// GEAR-2/4, H2O-256/512, Stream-256/512, SnapKV-512), each pairing a cache
// factory (the real algorithm) with a cost profile (the analytical
// characteristics the performance model charges).
package compress

import (
	"fmt"
	"sort"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/quant"
	"rethinkkv/internal/sparse"
)

// Kind classifies a method.
type Kind int

const (
	// FP16 is the uncompressed baseline.
	FP16 Kind = iota
	// Quant marks quantisation-based methods.
	Quant
	// Sparse marks sparsity-based (eviction) methods.
	Sparse
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FP16:
		return "fp16"
	case Quant:
		return "quant"
	case Sparse:
		return "sparse"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// CostProfile captures the method characteristics the analytical cost model
// (internal/perf) charges. All values derive from the algorithm's structure,
// not from fitted constants.
type CostProfile struct {
	Kind      Kind
	Bits      int // quant bit width (0 for non-quant)
	GroupSize int // quant group size
	Residual  int // quant full-precision residual window (tokens)
	Budget    int // sparse retained-token budget (0 for non-sparse)
	// NeedsScores: the policy consumes attention scores, forcing a
	// FlashAttention engine to re-materialise them (extra passes).
	NeedsScores bool
	// ErrorCorrection: GEAR-style outlier + low-rank reconstruction adds
	// compute on both compression and read paths.
	ErrorCorrection bool
	// StructuredEviction: position-only policies (StreamingLLM) evict with
	// negligible compute and a regular memory pattern.
	StructuredEviction bool
	// IrregularAccess: finer-granularity layouts (per-channel groups,
	// dual-pool pages) reduce achievable bandwidth utilisation on GPU-like
	// hardware. Expressed as a multiplier <= 1 on effective bandwidth.
	IrregularAccess float64
}

// EffectiveKVLen returns how many tokens the attention kernel actually reads
// at a nominal sequence length.
func (p CostProfile) EffectiveKVLen(seqLen int) int {
	if p.Kind == Sparse && p.Budget > 0 && seqLen > p.Budget {
		return p.Budget
	}
	return seqLen
}

// KVBytesPerTokenAvg returns the average resident bytes per token for a
// sequence of the given length, for a model with kvDim = KVHeads*HeadDim per
// layer across layers layers. FP16 elements are 2 bytes.
func (p CostProfile) KVBytesPerTokenAvg(layers, kvDim, seqLen int) float64 {
	if seqLen <= 0 {
		return 0
	}
	elemsPerToken := float64(layers) * float64(kvDim) * 2 // K and V
	full := elemsPerToken * 2                             // FP16 bytes
	switch p.Kind {
	case FP16:
		return full
	case Quant:
		resident := seqLen
		resTokens := p.Residual
		if resTokens > resident {
			resTokens = resident
		}
		quantTokens := resident - resTokens
		// Codes plus affine parameters amortised over the group.
		bitsPerElem := float64(p.Bits) + 32.0/float64(p.GroupSize)
		if p.ErrorCorrection {
			// GEAR: 2% outliers at 32 bits + rank ≈ 2% low-rank factors.
			bitsPerElem += 0.02*32 + 0.02*2*16
		}
		quantBytes := float64(quantTokens) * elemsPerToken * bitsPerElem / 8
		fullBytes := float64(resTokens) * full
		return (quantBytes + fullBytes) / float64(seqLen)
	case Sparse:
		eff := p.EffectiveKVLen(seqLen)
		bytes := float64(eff) * full
		if p.NeedsScores {
			bytes += float64(eff) * float64(layers) * 2 // score metadata
		}
		return bytes / float64(seqLen)
	}
	return full
}

// CompressionRatio returns FP16 bytes over compressed bytes at the given
// sequence length.
func (p CostProfile) CompressionRatio(layers, kvDim, seqLen int) float64 {
	full := float64(layers) * float64(kvDim) * 2 * 2
	avg := p.KVBytesPerTokenAvg(layers, kvDim, seqLen)
	if avg == 0 {
		return 1
	}
	return full / avg
}

// Method is a named compression configuration: a real cache implementation
// plus the cost profile the throughput model charges for it.
type Method struct {
	Name  string
	Alias string // short label used in the paper's figures (K-4, G-4, ...)
	Cost  CostProfile
	// NewCache builds the method's cache for a model shape.
	NewCache func(shape kvcache.Shape) kvcache.Cache
}

// IsBaseline reports whether this is the uncompressed FP16 method.
func (m Method) IsBaseline() bool { return m.Cost.Kind == FP16 }

// registry holds all named methods.
var registry = map[string]Method{}

func register(m Method) {
	if _, dup := registry[m.Name]; dup {
		panic("compress: duplicate method " + m.Name)
	}
	registry[m.Name] = m
}

func init() {
	register(Method{
		Name: "fp16", Alias: "FP16",
		Cost: CostProfile{Kind: FP16, IrregularAccess: 1},
		NewCache: func(s kvcache.Shape) kvcache.Cache {
			return kvcache.NewFull(s)
		},
	})
	for _, bits := range []int{2, 4} {
		bits := bits
		register(Method{
			Name: fmt.Sprintf("kivi-%d", bits), Alias: fmt.Sprintf("K-%d", bits),
			Cost: CostProfile{
				Kind: Quant, Bits: bits, GroupSize: 32, Residual: 128,
				IrregularAccess: 0.85, // per-channel groups + dual-pool layout
			},
			NewCache: func(s kvcache.Shape) kvcache.Cache {
				return quant.NewKIVI(s, quant.DefaultKIVI(bits))
			},
		})
		register(Method{
			Name: fmt.Sprintf("gear-%d", bits), Alias: fmt.Sprintf("G-%d", bits),
			Cost: CostProfile{
				Kind: Quant, Bits: bits, GroupSize: 32, Residual: 128,
				ErrorCorrection: true,
				IrregularAccess: 0.75, // sparse outlier scatter + low-rank GEMM
			},
			NewCache: func(s kvcache.Shape) kvcache.Cache {
				return quant.NewGEAR(s, quant.DefaultGEAR(bits))
			},
		})
	}
	for _, budget := range []int{256, 512} {
		budget := budget
		register(Method{
			Name: fmt.Sprintf("h2o-%d", budget), Alias: "H2O",
			Cost: CostProfile{
				Kind: Sparse, Budget: budget, NeedsScores: true,
				IrregularAccess: 0.9, // fluctuating lengths fight paging
			},
			NewCache: func(s kvcache.Shape) kvcache.Cache {
				return sparse.NewCache(s, sparse.DefaultH2O(budget))
			},
		})
		register(Method{
			Name: fmt.Sprintf("stream-%d", budget), Alias: "Stream",
			Cost: CostProfile{
				Kind: Sparse, Budget: budget,
				StructuredEviction: true,
				IrregularAccess:    1, // sink+window is a regular layout
			},
			NewCache: func(s kvcache.Shape) kvcache.Cache {
				return sparse.NewCache(s, sparse.DefaultStreaming(budget))
			},
		})
	}
	register(Method{
		Name: "snapkv-512", Alias: "SnapKV",
		Cost: CostProfile{
			Kind: Sparse, Budget: 512, NeedsScores: true,
			IrregularAccess: 0.95,
		},
		NewCache: func(s kvcache.Shape) kvcache.Cache {
			return sparse.NewCache(s, sparse.DefaultSnapKV(512))
		},
	})
	register(Method{
		Name: "tova-512", Alias: "TOVA",
		Cost: CostProfile{
			Kind: Sparse, Budget: 512, NeedsScores: true,
			IrregularAccess: 0.95,
		},
		NewCache: func(s kvcache.Shape) kvcache.Cache {
			return sparse.NewCache(s, sparse.DefaultTOVA(512))
		},
	})
	// Surveyed extensions (paper Table 1): counter-based persistence,
	// regularised scoring, and layer-/head-adaptive budget allocation.
	extended := []struct {
		name  string
		alias string
		cfg   func(int) sparse.Config
	}{
		{"scissorhands-512", "Scissor", sparse.DefaultScissorhands},
		{"keyformer-512", "Keyformer", sparse.DefaultKeyformer},
		{"pyramidkv-512", "PyramidKV", sparse.DefaultPyramidKV},
		{"adakv-512", "Ada-KV", sparse.DefaultAdaKV},
	}
	for _, e := range extended {
		e := e
		register(Method{
			Name: e.name, Alias: e.alias,
			Cost: CostProfile{
				Kind: Sparse, Budget: 512, NeedsScores: true,
				IrregularAccess: 0.9,
			},
			NewCache: func(s kvcache.Shape) kvcache.Cache {
				return sparse.NewCache(s, e.cfg(512))
			},
		})
	}
	// Surveyed quantisation variants: 1-bit JL key sketching, pivot-token
	// protection, and importance-aware mixed precision.
	register(Method{
		Name: "qjl", Alias: "QJL",
		Cost: CostProfile{
			Kind: Quant, Bits: 1, GroupSize: 64, Residual: 0,
			IrregularAccess: 0.8, // sketch reconstruction is a dense GEMV
		},
		NewCache: func(s kvcache.Shape) kvcache.Cache {
			return quant.NewQJL(s, quant.DefaultQJL(s.HeadDim))
		},
	})
	register(Method{
		Name: "intactkv-4", Alias: "Intact",
		Cost: CostProfile{
			Kind: Quant, Bits: 4, GroupSize: 64, Residual: 4,
			IrregularAccess: 0.9,
		},
		NewCache: func(s kvcache.Shape) kvcache.Cache {
			return quant.NewIntact(s, quant.DefaultIntact(4))
		},
	})
	register(Method{
		Name: "mikv", Alias: "MiKV",
		Cost: CostProfile{
			Kind: Quant, Bits: 3, GroupSize: 64, Residual: 0,
			NeedsScores:     true, // precision assignment needs attention
			IrregularAccess: 0.8,
		},
		NewCache: func(s kvcache.Shape) kvcache.Cache {
			return quant.NewMiKV(s, quant.DefaultMiKV())
		},
	})
}

// Get returns a registered method by name.
func Get(name string) (Method, error) {
	m, ok := registry[name]
	if !ok {
		return Method{}, fmt.Errorf("compress: unknown method %q", name)
	}
	return m, nil
}

// MustGet is Get that panics on unknown names; for use in experiment tables.
func MustGet(name string) Method {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns all registered method names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperSet returns the four methods (plus baseline) the paper's main
// evaluation uses: FP16, KIVI-4, GEAR-4, H2O-512, Stream-512.
func PaperSet() []Method {
	return []Method{
		MustGet("fp16"), MustGet("kivi-4"), MustGet("gear-4"),
		MustGet("h2o-512"), MustGet("stream-512"),
	}
}

// Prefiller is implemented by caches that need a prefill-end signal
// (SnapKV's one-shot prompt compression).
type Prefiller interface {
	FinishPrefill()
}
