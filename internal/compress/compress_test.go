package compress

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/sparse"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fp16", "kivi-2", "kivi-4", "gear-2", "gear-4",
		"h2o-256", "h2o-512", "stream-256", "stream-512",
		"snapkv-512", "tova-512",
		"scissorhands-512", "keyformer-512", "pyramidkv-512", "adakv-512",
		"qjl", "intactkv-4", "mikv",
	}
	for _, n := range want {
		if _, err := Get(n); err != nil {
			t.Fatalf("missing method %q: %v", n, err)
		}
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d methods, want %d: %v", len(Names()), len(want), Names())
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGet("nope")
}

func TestPaperSet(t *testing.T) {
	set := PaperSet()
	if len(set) != 5 {
		t.Fatalf("paper set size = %d", len(set))
	}
	if !set[0].IsBaseline() {
		t.Fatal("first paper method must be the FP16 baseline")
	}
	for _, m := range set[1:] {
		if m.IsBaseline() {
			t.Fatalf("%s should not be baseline", m.Name)
		}
	}
}

func TestCachesConstructible(t *testing.T) {
	shape := kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 8}
	for _, name := range Names() {
		m := MustGet(name)
		c := m.NewCache(shape)
		if c == nil {
			t.Fatalf("%s: nil cache", name)
		}
		if c.Shape() != shape {
			t.Fatalf("%s: wrong shape", name)
		}
		// Sparse caches must implement the prefill hook when score-driven.
		if m.Cost.Kind == Sparse {
			if _, ok := c.(Prefiller); !ok {
				t.Fatalf("%s: sparse cache must implement Prefiller", name)
			}
			if _, ok := c.(*sparse.Cache); !ok {
				t.Fatalf("%s: expected sparse.Cache", name)
			}
		}
	}
}

func TestEffectiveKVLen(t *testing.T) {
	p := CostProfile{Kind: Sparse, Budget: 512}
	if got := p.EffectiveKVLen(2048); got != 512 {
		t.Fatalf("sparse eff len = %d", got)
	}
	if got := p.EffectiveKVLen(100); got != 100 {
		t.Fatalf("under-budget eff len = %d", got)
	}
	q := CostProfile{Kind: Quant, Bits: 4}
	if got := q.EffectiveKVLen(2048); got != 2048 {
		t.Fatalf("quant eff len = %d", got)
	}
}

func TestKVBytesOrdering(t *testing.T) {
	// At long sequence length: Stream-512 < KIVI-2 < KIVI-4 < GEAR-4 < FP16.
	const layers, kvDim, seq = 32, 4096, 4096
	per := func(name string) float64 {
		return MustGet(name).Cost.KVBytesPerTokenAvg(layers, kvDim, seq)
	}
	fp := per("fp16")
	k2, k4, g4, st := per("kivi-2"), per("kivi-4"), per("gear-4"), per("stream-512")
	if !(st < k2 && k2 < k4 && k4 < g4 && g4 < fp) {
		t.Fatalf("byte ordering violated: stream=%v k2=%v k4=%v g4=%v fp=%v", st, k2, k4, g4, fp)
	}
}

func TestCompressionRatioPlausible(t *testing.T) {
	const layers, kvDim = 32, 4096
	// KIVI-4 at long contexts should approach ~16/4.x ≈ 3-4x; at short
	// contexts the residual window keeps the ratio near 1.
	k4 := MustGet("kivi-4").Cost
	long := k4.CompressionRatio(layers, kvDim, 8192)
	short := k4.CompressionRatio(layers, kvDim, 128)
	if long < 2.5 || long > 4.5 {
		t.Fatalf("kivi-4 long ratio %v implausible", long)
	}
	if short > 1.2 {
		t.Fatalf("kivi-4 short ratio %v: residual window not modelled", short)
	}
	// Sparse ratio grows with sequence length: 8192/512 = 16x.
	st := MustGet("stream-512").Cost
	if r := st.CompressionRatio(layers, kvDim, 8192); r < 14 || r > 17 {
		t.Fatalf("stream-512 ratio %v, want ≈16", r)
	}
}

func TestKindString(t *testing.T) {
	if FP16.String() != "fp16" || Quant.String() != "quant" || Sparse.String() != "sparse" {
		t.Fatal("kind names wrong")
	}
}

func TestIrregularAccessBounds(t *testing.T) {
	for _, n := range Names() {
		m := MustGet(n)
		if m.Cost.IrregularAccess <= 0 || m.Cost.IrregularAccess > 1 {
			t.Fatalf("%s: irregular access %v out of (0,1]", n, m.Cost.IrregularAccess)
		}
	}
	// Structured methods must not be penalised more than score-based ones.
	if MustGet("stream-512").Cost.IrregularAccess < MustGet("gear-4").Cost.IrregularAccess {
		t.Fatal("stream should have better access regularity than gear")
	}
}

func TestZeroSeqLen(t *testing.T) {
	p := MustGet("kivi-4").Cost
	if b := p.KVBytesPerTokenAvg(32, 4096, 0); b != 0 {
		t.Fatalf("zero-length bytes = %v", b)
	}
	if r := p.CompressionRatio(32, 4096, 0); r != 1 {
		t.Fatalf("zero-length ratio = %v", r)
	}
}
