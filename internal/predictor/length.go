package predictor

import (
	"math"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/workload"
)

// LengthPredictor predicts the response length of a request under a given
// compression method, substituting a feature-based model for the paper's
// BERT classifier (Appendix F): the paper's claim — that length is
// predictable enough to route on (≥85% accuracy, up to 95.7% on compressed
// generations) — is about the signal, not the architecture. The prompt
// encoder is modelled as two noisy views: a content hint (what the prompt
// says about the likely response scale) and a fragility hint (how strongly
// this prompt lengthens under compression; see gen.Fragility).
type LengthPredictor struct {
	reg  *stats.LinearModel // log-length regression
	cuts []float64          // bucket bounds for the classification API
	// encoder noise levels (fixed; documented in DESIGN.md).
	hintNoise float64
	fragNoise float64
}

// DefaultBuckets returns the bucket cut points in tokens, used by the
// router's coarse decisions.
func DefaultBuckets() []float64 { return []float64{64, 192, 512} } // 4 buckets

// ContentHint returns the encoder's estimate of the response scale: the
// reference length blurred by encoder noise. Deterministic per request ID.
func ContentHint(req workload.Request, noise float64, salt uint64) float64 {
	r := rng.New(uint64(req.ID)*0x9e3779b97f4a7c15 + salt)
	return float64(req.RefLen) * math.Exp(noise*r.NormFloat64())
}

// FragilityHint returns the encoder's noisy view of the request's
// compression fragility. Deterministic per request ID.
func FragilityHint(req workload.Request, kind compress.Kind, noise float64, salt uint64) float64 {
	r := rng.New(uint64(req.ID)*0xd1b54a32d192ed03 + salt + 3)
	return gen.Fragility(req.ID, kind) + noise*r.NormFloat64()
}

// features builds the model input for one request under a method.
func features(req workload.Request, m compress.Method, hintNoise, fragNoise float64, salt uint64) []float64 {
	sev := gen.Severity(m, req.PromptLen, req.RefLen)
	return []float64{
		math.Log(ContentHint(req, hintNoise, salt) + 1),
		math.Log(float64(req.PromptLen) + 1),
		sev,
		math.Sqrt(sev) * FragilityHint(req, m.Cost.Kind, fragNoise, salt),
	}
}

// bucketOf returns the bucket index of a length under the cuts.
func bucketOf(length int, cuts []float64) int {
	for i, c := range cuts {
		if float64(length) <= c {
			return i
		}
	}
	return len(cuts)
}

// TrainLength fits the predictor on simulated generations for one method.
// gens must pair one Generation per request (same order).
func TrainLength(reqs []workload.Request, gens []gen.Generation, m compress.Method, seed uint64) *LengthPredictor {
	if len(reqs) != len(gens) {
		panic("predictor: request/generation length mismatch")
	}
	const (
		hintNoise = 0.08
		fragNoise = 0.15
	)
	lp := &LengthPredictor{cuts: DefaultBuckets(), hintNoise: hintNoise, fragNoise: fragNoise}
	X := make([][]float64, len(reqs))
	y := make([]float64, len(reqs))
	for i, req := range reqs {
		X[i] = features(req, m, hintNoise, fragNoise, seed)
		y[i] = math.Log(float64(gens[i].Len))
	}
	lp.reg = stats.FitLinear(X, y, 1500, 0.1)
	return lp
}

// PredictLen returns the point length estimate in tokens.
func (lp *LengthPredictor) PredictLen(req workload.Request, m compress.Method, salt uint64) float64 {
	x := features(req, m, lp.hintNoise, lp.fragNoise, salt)
	l := math.Exp(lp.reg.Predict(x))
	if l < 1 {
		l = 1
	}
	if l > 1024 {
		l = 1024
	}
	return l
}

// PredictBucket returns the coarse length bucket of the point estimate.
func (lp *LengthPredictor) PredictBucket(req workload.Request, m compress.Method, salt uint64) int {
	return bucketOf(int(lp.PredictLen(req, m, salt)+0.5), lp.cuts)
}

// Accuracy returns the paper's Table 6 metric: mean over the test set of
// (1 − |Lpred − Lgt| / Lgt), clamped at 0 per sample.
func (lp *LengthPredictor) Accuracy(reqs []workload.Request, gens []gen.Generation, m compress.Method, salt uint64) float64 {
	if len(reqs) == 0 || len(reqs) != len(gens) {
		return 0
	}
	var sum float64
	for i, req := range reqs {
		pred := lp.PredictLen(req, m, salt)
		gt := float64(gens[i].Len)
		a := 1 - math.Abs(pred-gt)/gt
		if a < 0 {
			a = 0
		}
		sum += a
	}
	return sum / float64(len(reqs))
}

// BucketAccuracy returns the coarse-bucket classification accuracy, used to
// sanity-check the router's decision signal.
func (lp *LengthPredictor) BucketAccuracy(reqs []workload.Request, gens []gen.Generation, m compress.Method, salt uint64) float64 {
	if len(reqs) == 0 || len(reqs) != len(gens) {
		return 0
	}
	correct := 0
	for i, req := range reqs {
		if lp.PredictBucket(req, m, salt) == bucketOf(gens[i].Len, lp.cuts) {
			correct++
		}
	}
	return float64(correct) / float64(len(reqs))
}
