// Package predictor implements the paper's two serving-assist tools
// (Section 5):
//
//   - a throughput predictor in the style of Vidur: attention-operator
//     latencies are profiled offline on a coarse (batch × sequence-length)
//     grid — with realistic measurement noise — and bilinearly interpolated
//     at query time, composed with the analytical linear-layer cost;
//   - a length predictor: a bucketed classifier over request features that
//     substitutes for the paper's BERT-based model (DESIGN.md), predicting
//     the response-length bucket a request will fall into under a given
//     compression method.
//
// Both report accuracy the way the paper's Table 6 does.
package predictor

import (
	"math"

	"rethinkkv/internal/perf"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/stats"
)

// ThroughputPredictor predicts prefill and decode throughput from
// Vidur-style offline operator profiles: the full step latency is profiled
// (with measurement noise) on a coarse grid and bilinearly interpolated at
// query time. Both interpolation error on the nonlinear latency surface and
// profiling noise contribute to the ~85-90% accuracy the paper reports.
type ThroughputPredictor struct {
	est *perf.Estimator
	// Profiled step-latency tables over (batch, length).
	decodeLat  *stats.BilinearTable
	prefillLat *stats.BilinearTable
}

// ProfileGrid is the offline profiling sweep.
type ProfileGrid struct {
	Batches []int
	Lengths []int
	// Noise is the relative measurement noise of one profile run (GPUs
	// jitter; the paper averages three runs — we profile once with noise).
	Noise float64
}

// DefaultGrid returns the paper-style coarse sweep.
func DefaultGrid() ProfileGrid {
	return ProfileGrid{
		Batches: []int{1, 2, 4, 8, 16},
		Lengths: []int{128, 512, 1024, 2048, 4096, 8192},
		Noise:   0.10,
	}
}

// TrainThroughput profiles the estimator's attention operator on the grid
// and builds the interpolating predictor. Deterministic given seed.
func TrainThroughput(est *perf.Estimator, grid ProfileGrid, seed uint64) *ThroughputPredictor {
	r := rng.New(seed)
	profile := func(f func(b, l int) float64) *stats.BilinearTable {
		xs := make([]float64, len(grid.Batches))
		for i, b := range grid.Batches {
			xs[i] = float64(b)
		}
		ys := make([]float64, len(grid.Lengths))
		for j, l := range grid.Lengths {
			ys[j] = float64(l)
		}
		z := make([][]float64, len(xs))
		for i, b := range grid.Batches {
			z[i] = make([]float64, len(ys))
			for j, l := range grid.Lengths {
				noise := 1 + grid.Noise*r.NormFloat64()
				if noise < 0.5 {
					noise = 0.5
				}
				z[i][j] = f(b, l) * noise
			}
		}
		return stats.NewBilinearTable(xs, ys, z)
	}
	return &ThroughputPredictor{
		est:        est,
		decodeLat:  profile(func(b, l int) float64 { return est.DecodeStepLatency(b, l) }),
		prefillLat: profile(func(b, l int) float64 { return est.PrefillLatency(b, l) }),
	}
}

// PredictDecodeThroughput returns predicted decode tokens/second.
func (p *ThroughputPredictor) PredictDecodeThroughput(batch, kvLen int) float64 {
	lat := p.decodeLat.At(float64(batch), float64(kvLen))
	if lat <= 0 {
		lat = p.est.DecodeStepLatency(batch, kvLen)
	}
	return float64(batch) / lat
}

// PredictPrefillThroughput returns predicted prefill tokens/second.
func (p *ThroughputPredictor) PredictPrefillThroughput(batch, promptLen int) float64 {
	lat := p.prefillLat.At(float64(batch), float64(promptLen))
	if lat <= 0 {
		lat = p.est.PrefillLatency(batch, promptLen)
	}
	return float64(batch) * float64(promptLen) / lat
}

// PredictE2E returns predicted end-to-end latency for one request: prefill
// plus predicted decode steps at the mid-generation KV length.
func (p *ThroughputPredictor) PredictE2E(promptLen, respLen int) float64 {
	pre := float64(promptLen) / math.Max(p.PredictPrefillThroughput(1, promptLen), 1e-9)
	midKV := promptLen + respLen/2
	dec := float64(respLen) / math.Max(p.PredictDecodeThroughput(1, midKV), 1e-9)
	return pre + dec
}

// AccuracyPoint is one evaluation configuration.
type AccuracyPoint struct {
	Batch, Length int
}

// DecodeAccuracy returns the paper's accuracy metric, mean over points of
// (1 − |pred − true|/true), clamped at 0.
func (p *ThroughputPredictor) DecodeAccuracy(points []AccuracyPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, pt := range points {
		pred := p.PredictDecodeThroughput(pt.Batch, pt.Length)
		truth := p.est.DecodeThroughput(pt.Batch, pt.Length)
		sum += relAccuracy(pred, truth)
	}
	return sum / float64(len(points))
}

// PrefillAccuracy is DecodeAccuracy for the prefill stage.
func (p *ThroughputPredictor) PrefillAccuracy(points []AccuracyPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, pt := range points {
		pred := p.PredictPrefillThroughput(pt.Batch, pt.Length)
		truth := p.est.PrefillThroughput(pt.Batch, pt.Length)
		sum += relAccuracy(pred, truth)
	}
	return sum / float64(len(points))
}

func relAccuracy(pred, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	a := 1 - math.Abs(pred-truth)/truth
	if a < 0 {
		return 0
	}
	return a
}

// TestPoints returns off-grid evaluation points interleaved between the
// profiled grid coordinates.
func TestPoints() []AccuracyPoint {
	var pts []AccuracyPoint
	for _, b := range []int{1, 3, 6, 12} {
		for _, l := range []int{256, 768, 1536, 3072, 6144} {
			pts = append(pts, AccuracyPoint{Batch: b, Length: l})
		}
	}
	return pts
}
