package predictor

import (
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/workload"
)

func estimator(method string) *perf.Estimator {
	return perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet(method), 1)
}

func TestThroughputPredictorAccuracy(t *testing.T) {
	// Table 6: the throughput predictor reaches >= 85% accuracy across all
	// methods, for both stages, on off-grid points.
	for _, m := range []string{"fp16", "kivi-4", "gear-4", "h2o-512", "stream-512"} {
		p := TrainThroughput(estimator(m), DefaultGrid(), 1)
		dec := p.DecodeAccuracy(TestPoints())
		pre := p.PrefillAccuracy(TestPoints())
		if dec < 0.85 {
			t.Fatalf("%s: decode accuracy %v below paper's 85%% bar", m, dec)
		}
		if pre < 0.85 {
			t.Fatalf("%s: prefill accuracy %v below paper's 85%% bar", m, pre)
		}
		// Profiling noise must make it imperfect — a predictor that equals
		// the ground truth everywhere is not measuring anything.
		if dec > 0.999 && pre > 0.999 {
			t.Fatalf("%s: suspiciously perfect accuracy", m)
		}
	}
}

func TestThroughputPredictorDeterministic(t *testing.T) {
	a := TrainThroughput(estimator("fp16"), DefaultGrid(), 3)
	b := TrainThroughput(estimator("fp16"), DefaultGrid(), 3)
	if a.PredictDecodeThroughput(3, 777) != b.PredictDecodeThroughput(3, 777) {
		t.Fatal("same seed must give same predictions")
	}
}

func TestPredictE2EMonotone(t *testing.T) {
	p := TrainThroughput(estimator("fp16"), DefaultGrid(), 4)
	if p.PredictE2E(512, 100) >= p.PredictE2E(512, 500) {
		t.Fatal("longer responses must predict longer E2E")
	}
	if p.PredictE2E(128, 100) >= p.PredictE2E(4096, 100) {
		t.Fatal("longer prompts must predict longer E2E")
	}
}

func TestBucketOf(t *testing.T) {
	cuts := DefaultBuckets()
	cases := []struct{ l, want int }{{1, 0}, {64, 0}, {65, 1}, {192, 1}, {500, 2}, {513, 3}, {1024, 3}}
	for _, c := range cases {
		if got := bucketOf(c.l, cuts); got != c.want {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestLengthPredictorAccuracy(t *testing.T) {
	// Table 6: length predictor >= 85% per method (paper: 87.8–95.7%).
	lm := gen.Default()
	train := workload.SampleShareGPT(workload.DefaultShareGPT(3000), 10)
	test := workload.SampleShareGPT(workload.DefaultShareGPT(1000), 11)
	for _, name := range []string{"fp16", "kivi-4", "gear-4", "h2o-512", "stream-512"} {
		m := compress.MustGet(name)
		trainGens := lm.Run(train, m, 20)
		testGens := lm.Run(test, m, 21)
		p := TrainLength(train, trainGens, m, 5)
		acc := p.Accuracy(test, testGens, m, 5)
		if acc < 0.84 {
			t.Fatalf("%s: length accuracy %v below paper's ≈85%% bar", name, acc)
		}
		if acc > 0.999 {
			t.Fatalf("%s: suspiciously perfect length accuracy", name)
		}
		if ba := p.BucketAccuracy(test, testGens, m, 5); ba < 0.7 {
			t.Fatalf("%s: bucket accuracy %v too low for routing", name, ba)
		}
	}
}

func TestLengthPredictorPointEstimate(t *testing.T) {
	lm := gen.Default()
	train := workload.SampleShareGPT(workload.DefaultShareGPT(2000), 12)
	m := compress.MustGet("stream-512")
	p := TrainLength(train, lm.Run(train, m, 22), m, 6)
	// Point estimates land inside the predicted bucket's range.
	for _, req := range train[:50] {
		l := p.PredictLen(req, m, 6)
		if l < 1 || l > 1024 {
			t.Fatalf("point estimate %v out of range", l)
		}
	}
	// A clearly-short request predicts a smaller length than a clearly
	// long one.
	short := workload.Request{ID: 90001, PromptLen: 100, RefLen: 20}
	long := workload.Request{ID: 90002, PromptLen: 100, RefLen: 900}
	if p.PredictLen(short, m, 6) >= p.PredictLen(long, m, 6) {
		t.Fatal("length ordering not learned")
	}
}

func TestTrainLengthPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainLength(make([]workload.Request, 2), nil, compress.MustGet("fp16"), 1)
}
