package predictor

import (
	"strings"
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
)

func advantageFor(t *testing.T, method string) Advantage {
	t.Helper()
	fp := perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("fp16"), 1)
	me := perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet(method), 1)
	return ComputeAdvantage(fp, me, method, []int{1, 4, 16}, []int{256, 1024, 4096, 8192})
}

func TestStreamAdvantageRegion(t *testing.T) {
	a := advantageFor(t, "stream-512")
	// Observation 2: advantage appears at heavy KV settings.
	if a.Decode[2][3] <= 1.1 {
		t.Fatalf("stream at batch16/KV8192 should clearly win: %v", a.Decode[2][3])
	}
	// Speedup grows along the KV axis for fixed batch.
	for i := range a.Batches {
		if a.Decode[i][3] <= a.Decode[i][0] {
			t.Fatalf("batch %d: advantage should grow with KV length", a.Batches[i])
		}
	}
	frontier := a.DecodeFrontier()
	if frontier[16] == -1 {
		t.Fatal("batch 16 should have an advantageous frontier")
	}
	if f1, f16 := frontier[1], frontier[16]; f1 != -1 && f16 != -1 && f16 > f1 {
		t.Fatalf("larger batches should cross over no later: b1=%d b16=%d", f1, f16)
	}
}

func TestH2OPrefillNeverAdvantageous(t *testing.T) {
	a := advantageFor(t, "h2o-512")
	for i := range a.Batches {
		for j := range a.Lengths {
			if a.Prefill[i][j] > 1 {
				t.Fatalf("H2O prefill should never beat FP16 (batch %d, len %d: %v)",
					a.Batches[i], a.Lengths[j], a.Prefill[i][j])
			}
		}
	}
	dec, pre := a.AdvantageousFraction()
	if pre != 0 {
		t.Fatalf("prefill fraction = %v", pre)
	}
	if dec <= 0 {
		t.Fatal("H2O should win somewhere in decode")
	}
}

func TestAdvantageFormat(t *testing.T) {
	a := advantageFor(t, "kivi-4")
	out := a.Format()
	if !strings.Contains(out, "kivi-4") || !strings.Contains(out, "8192") {
		t.Fatalf("format output: %q", out)
	}
}

func TestVLLMQuantSlowerThanLMDeploy(t *testing.T) {
	// Appendix A.4: the paper picks LMDeploy because its quantisation
	// kernels are efficient; on vLLM the same method loses more ground.
	vllm, err := engine.ByName("vllm")
	if err != nil {
		t.Fatal(err)
	}
	kOnLMD := perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("kivi-4"), 1)
	kOnVLLM := perf.MustNew(gpu.A6000, model.LLaMA2_7B, vllm, compress.MustGet("kivi-4"), 1)
	fpLMD := perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("fp16"), 1)
	fpVLLM := perf.MustNew(gpu.A6000, model.LLaMA2_7B, vllm, compress.MustGet("fp16"), 1)
	relLMD := kOnLMD.PrefillThroughput(1, 4096) / fpLMD.PrefillThroughput(1, 4096)
	relVLLM := kOnVLLM.PrefillThroughput(1, 4096) / fpVLLM.PrefillThroughput(1, 4096)
	if relVLLM >= relLMD {
		t.Fatalf("KIVI's relative prefill on vLLM (%v) should trail LMDeploy (%v)", relVLLM, relLMD)
	}
}
