package predictor

import (
	"fmt"
	"strings"

	"rethinkkv/internal/perf"
)

// Advantage is the paper's Section 5.1 throughput-analysis tool output: for
// which (batch size, sequence length) regions a compression method
// out-throughputs the FP16 baseline, per stage. Serving systems consult it
// to decide when applying compression is worthwhile (Observation 2
// recommends it only for "requests with heavy KV cache").
type Advantage struct {
	Method  string
	Batches []int
	Lengths []int
	// Decode[i][j] / Prefill[i][j]: method speedup over FP16 at
	// (Batches[i], Lengths[j]).
	Decode  [][]float64
	Prefill [][]float64
}

// ComputeAdvantage sweeps the grid with the analytical estimators.
func ComputeAdvantage(fp16, method *perf.Estimator, methodName string, batches, lengths []int) Advantage {
	a := Advantage{Method: methodName, Batches: batches, Lengths: lengths}
	for _, b := range batches {
		var dec, pre []float64
		for _, l := range lengths {
			dec = append(dec, method.DecodeThroughput(b, l)/fp16.DecodeThroughput(b, l))
			pre = append(pre, method.PrefillThroughput(b, l)/fp16.PrefillThroughput(b, l))
		}
		a.Decode = append(a.Decode, dec)
		a.Prefill = append(a.Prefill, pre)
	}
	return a
}

// DecodeFrontier returns, per batch size, the smallest swept KV length at
// which the method's decode throughput beats FP16 (-1 if it never does).
func (a Advantage) DecodeFrontier() map[int]int {
	out := map[int]int{}
	for i, b := range a.Batches {
		out[b] = -1
		for j, l := range a.Lengths {
			if a.Decode[i][j] > 1 {
				out[b] = l
				break
			}
		}
	}
	return out
}

// AdvantageousFraction returns the fraction of swept cells where the method
// wins, per stage.
func (a Advantage) AdvantageousFraction() (decode, prefill float64) {
	var dWin, pWin, n int
	for i := range a.Batches {
		for j := range a.Lengths {
			n++
			if a.Decode[i][j] > 1 {
				dWin++
			}
			if a.Prefill[i][j] > 1 {
				pWin++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(dWin) / float64(n), float64(pWin) / float64(n)
}

// Format renders the decode speedup grid as text.
func (a Advantage) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# decode speedup of %s vs FP16 (rows: batch, cols: KV length)\n", a.Method)
	fmt.Fprintf(&sb, "%-8s", "")
	for _, l := range a.Lengths {
		fmt.Fprintf(&sb, " %8d", l)
	}
	sb.WriteByte('\n')
	for i, b := range a.Batches {
		fmt.Fprintf(&sb, "%-8d", b)
		for j := range a.Lengths {
			fmt.Fprintf(&sb, " %7.2fx", a.Decode[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
