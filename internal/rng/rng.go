// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the benchmark
// suite (Poisson arrivals, log-normal lengths, Zipf popularity, categorical
// task mixes).
//
// Every experiment in this repository is seeded, so results are exactly
// reproducible run to run. The generator is xoshiro256**, seeded via
// splitmix64 as recommended by its authors; Split derives an independent
// stream so that concurrent components (e.g. per-GPU simulators) never share
// state.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used only for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's. The receiver is advanced.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal distribution.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential returns an exponential variate with the given rate (events per
// unit time). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	// 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson variate with the given mean. For large means it
// falls back to a normal approximation, which is adequate for workload
// synthesis.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s > 0
// using inverse-CDF over precomputed weights. For repeated sampling over the
// same support prefer NewZipf.
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Sample(r)
}

// Zipfian is a precomputed Zipf sampler over a fixed support.
type Zipfian struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over ranks [0, n) with exponent s. It panics
// if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipfian {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf with non-positive parameter")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{cdf: cdf}
}

// Sample draws one rank.
func (z *Zipfian) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Categorical samples an index from the given non-negative weights. It
// panics if weights is empty or sums to zero.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: empty or zero categorical weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang method.
// Used to add heavy-tailed jitter to synthetic workloads.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		return r.Gamma(shape+1) * math.Pow(r.Float64()+1e-300, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
