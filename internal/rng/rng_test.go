package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("got %d collisions between distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream repeated values: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v not near 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v not near 1", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("exponential(2) mean %v not near 0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(10)
	for _, lambda := range []float64{0.5, 4, 30, 100} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := New(11)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(12)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("log-normal produced non-positive %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] < 0 {
		t.Fatal("zipf support not covered")
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(14)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight class sampled %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v not near 3", ratio)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(15)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := New(16)
	for _, shape := range []float64{0.5, 1, 3, 9} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("gamma(%v) mean %v", shape, mean)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle changed multiset, sum=%d", sum)
	}
}

// Property: Float64 always in [0,1) regardless of seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same stream — across all seeds.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
