package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv/internal/core"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
)

const seed = 11

func testPrompts() [][]int {
	return [][]int{
		{1, 2, 3, 4, 5},
		{100, 200, 300},
		{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		{42},
		{350, 351, 352, 353, 354, 355},
		{9, 8, 7, 6, 5, 4, 3, 2, 1},
	}
}

// sequentialReference decodes every prompt one after another through the
// plain pipeline — the ground truth continuous batching must reproduce.
func sequentialReference(t *testing.T, prompts [][]int, maxNew int) [][]int {
	t.Helper()
	p, err := core.NewPipeline("fp16", seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, len(prompts))
	for i, prompt := range prompts {
		toks, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = toks
	}
	return out
}

func collect(t *testing.T, ch <-chan Token) []int {
	t.Helper()
	var out []int
	for tok := range ch {
		out = append(out, tok.ID)
	}
	return out
}

func runEngine(t *testing.T, cfg Config, prompts [][]int, maxNew int) ([][]int, *Engine) {
	t.Helper()
	m := model.New(model.Tiny(), seed)
	e, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	chans := make([]<-chan Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return got, e
}

// The acceptance gate: a trace served with continuous batching produces
// per-request token sequences identical to sequential decoding.
func TestContinuousBatchingMatchesSequential(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	want := sequentialReference(t, prompts, maxNew)

	// MaxBatch below the request count forces queueing: requests join the
	// running batch as earlier ones finish (iteration-level batching).
	got, e := runEngine(t, Config{MaxBatch: 3, PageTokens: 8}, prompts, maxNew)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != sequential %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	st := e.Stats()
	if st.Completed != len(prompts) {
		t.Fatalf("Completed = %d, want %d", st.Completed, len(prompts))
	}
	if st.PeakRunning < 2 {
		t.Fatalf("PeakRunning = %d: batching never happened", st.PeakRunning)
	}
	if st.Preemptions != 0 {
		t.Fatalf("unbudgeted run preempted %d times", st.Preemptions)
	}
}

// The second acceptance gate: a page budget small enough to force
// preemption still yields bit-identical streams after recompute.
func TestPreemptionRecomputeMatchesSequential(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	want := sequentialReference(t, prompts, maxNew)

	// Largest single request needs ceil((13+18)/4) = 8 pages; give the
	// pool barely more than two requests' worth so concurrent decode hits
	// the budget and evicts.
	cfg := Config{MaxBatch: 4, PageTokens: 4, KVPages: 14}
	got, e := runEngine(t, cfg, prompts, maxNew)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != sequential %d (after preemption)", i, j, got[i][j], want[i][j])
			}
		}
	}
	st := e.Stats()
	if st.Preemptions == 0 {
		t.Fatal("page budget never forced a preemption; test is vacuous")
	}
	if st.PeakPages > cfg.KVPages {
		t.Fatalf("PeakPages %d exceeded budget %d", st.PeakPages, cfg.KVPages)
	}
	out := e.Outcomes()
	pre := 0
	for _, o := range out {
		pre += o.Preemptions
	}
	if pre != st.Preemptions {
		t.Fatalf("outcome preemptions %d != stats %d", pre, st.Preemptions)
	}
}

func TestSJFPolicyMatchesSequential(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 12
	want := sequentialReference(t, prompts, maxNew)
	got, _ := runEngine(t, Config{MaxBatch: 2, PageTokens: 4, KVPages: 16, Policy: PolicySJF}, prompts, maxNew)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d mismatch under SJF", i, j)
			}
		}
	}
}

func TestSubmitRejectsImpossibleRequest(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{PageTokens: 4, KVPages: 4, MaxNew: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// 16 prompt tokens + 8 new = 6 pages > 4-page budget.
	long := make([]int, 16)
	if _, err := e.Submit(context.Background(), Request{Prompt: long, Arrival: -1}); !errors.Is(err, kvcache.ErrOutOfPages) {
		t.Fatalf("oversized submit = %v, want ErrOutOfPages", err)
	}
	if _, err := e.Submit(context.Background(), Request{Arrival: -1}); err == nil {
		t.Fatal("empty prompt accepted")
	}
}

func TestCancelledRequestRetiresEarly(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := e.Submit(ctx, Request{ID: 1, Prompt: []int{1, 2, 3}, MaxNew: 500, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	<-ch // first token out
	cancel()
	n := 1
	for range ch {
		n++
	}
	if n >= 500 {
		t.Fatalf("cancelled request decoded all %d tokens", n)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := e.Drain(dctx); err != nil {
		t.Fatalf("drain after cancel: %v", err)
	}
	if st := e.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// A queued (never admitted) request whose ctx is cancelled must have its
// stream closed promptly, not when admission eventually reaches it.
func TestCancelledWhileQueuedClosesPromptly(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Occupy the single batch slot with a long-running request.
	_, err = e.Submit(context.Background(), Request{ID: 0, Prompt: []int{1, 2}, MaxNew: 4000, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := e.Submit(ctx, Request{ID: 1, Prompt: []int{3}, MaxNew: 8, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("cancelled queued request emitted a token")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued request's stream did not close while admission was blocked")
	}
}

func TestCloseFailsPendingAndRejectsSubmit(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Submit(context.Background(), Request{Prompt: []int{1}, MaxNew: 100000, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	for range ch { // stream must terminate
	}
	if _, err := e.Submit(context.Background(), Request{Prompt: []int{1}, Arrival: -1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if err := e.Drain(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("drain after close = %v, want ErrClosed", err)
	}
}

func TestOutcomesMetricsSane(t *testing.T) {
	prompts := testPrompts()
	_, e := runEngine(t, Config{MaxBatch: 4, PageTokens: 8}, prompts, 8)
	out := e.Outcomes()
	if len(out) != len(prompts) {
		t.Fatalf("%d outcomes, want %d", len(out), len(prompts))
	}
	for _, o := range out {
		if o.RespLen != 8 {
			t.Fatalf("request %d RespLen %d, want 8", o.Req.ID, o.RespLen)
		}
		if o.TTFT() < 0 || o.E2E() < o.TTFT() || o.Finish < o.FirstToken {
			t.Fatalf("request %d: inconsistent timing %+v", o.Req.ID, o)
		}
		if o.TBOT() < 0 {
			t.Fatalf("request %d: negative TBOT", o.Req.ID)
		}
	}
}

// Prefix caching must be invisible in the output: a server configured
// with a shared prefix emits bit-identical streams to sequential cold
// decode of the full prompts, with and without page pressure.
func TestSharedPrefixBitIdentical(t *testing.T) {
	prefix := make([]int, 21) // not page-aligned on purpose
	for i := range prefix {
		prefix[i] = (i * 13) % 512
	}
	suffixes := [][]int{{1, 2}, {3}, {4, 5, 6}, {7, 8}, {9}}
	prompts := make([][]int, len(suffixes))
	for i, sfx := range suffixes {
		prompts[i] = append(append([]int(nil), prefix...), sfx...)
	}
	const maxNew = 10
	want := sequentialReference(t, prompts, maxNew)

	for _, cfg := range []Config{
		{MaxBatch: 3, PageTokens: 8, SharedPrefix: prefix},
		// Tight budget: prefix takes 6 pages, leaving 14 for private
		// pages; requests need up to ceil(34/4)-5 = 4 each privately.
		{MaxBatch: 5, PageTokens: 4, KVPages: 20, SharedPrefix: prefix},
	} {
		got, e := runEngine(t, cfg, prompts, maxNew)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("cfg %+v request %d: %d tokens, want %d", cfg, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("cfg %+v request %d token %d: %d != cold %d", cfg, i, j, got[i][j], want[i][j])
				}
			}
		}
		st := e.Stats()
		if st.PrefixHits < len(prompts) {
			t.Fatalf("PrefixHits = %d, want >= %d", st.PrefixHits, len(prompts))
		}
		if st.PrefixTokensSaved < len(prompts)*len(prefix) {
			t.Fatalf("PrefixTokensSaved = %d too low", st.PrefixTokensSaved)
		}
		if cfg.KVPages > 0 && st.PeakPages > cfg.KVPages {
			t.Fatalf("PeakPages %d exceeded budget %d", st.PeakPages, cfg.KVPages)
		}
	}
}

// A prompt that does not extend the prefix must still be served (cold).
func TestSharedPrefixMissFallsBack(t *testing.T) {
	prefix := []int{5, 6, 7, 8}
	prompts := [][]int{
		append(append([]int(nil), prefix...), 9), // hit
		{1, 2, 3},                                // miss
		append([]int(nil), prefix...),            // equal length: miss by contract
	}
	const maxNew = 8
	want := sequentialReference(t, prompts, maxNew)
	got, e := runEngine(t, Config{MaxBatch: 2, PageTokens: 4, SharedPrefix: prefix}, prompts, maxNew)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d mismatch", i, j)
			}
		}
	}
	if st := e.Stats(); st.PrefixHits != 1 {
		t.Fatalf("PrefixHits = %d, want 1", st.PrefixHits)
	}
}

func TestSharedPrefixBudgetTooSmall(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	prefix := make([]int, 32)
	if _, err := New(m, Config{PageTokens: 4, KVPages: 8, SharedPrefix: prefix}); !errors.Is(err, kvcache.ErrOutOfPages) {
		t.Fatalf("prefix filling the whole budget = %v, want ErrOutOfPages", err)
	}
}

func TestBadPolicyRejected(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	if _, err := New(m, Config{Policy: "round-robin"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
