package sched

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/tensor"
)

// sparseReference decodes every prompt through the model directly with the
// engine's sparse semantics — dense prefill, sparse decode at topK — giving
// the ground-truth streams a sparse engine must reproduce regardless of
// batching, preemption, replay, or prefix reuse.
func sparseReference(t *testing.T, prompts [][]int, maxNew, topK, pageTokens, bits int) [][]int {
	t.Helper()
	m := model.New(model.Tiny(), seed)
	ws := m.NewWorkspace()
	out := make([][]int, len(prompts))
	for i, prompt := range prompts {
		cache := kvcache.NewPagedKVQuant(m.CacheShape(), pageTokens, 0, bits)
		cache.EnableKeySummaries()
		sr := m.PrefillInto(ws, prompt, cache) // topK is 0 here: prefill stays dense
		m.SetSparseTopK(topK)
		next := tensor.Argmax(sr.Logits)
		toks := make([]int, 0, maxNew)
		pos := len(prompt)
		for len(toks) < maxNew {
			toks = append(toks, next)
			sr = m.ForwardInto(ws, next, pos, cache)
			next = tensor.Argmax(sr.Logits)
			pos++
		}
		m.SetSparseTopK(0)
		out[i] = toks
	}
	return out
}

// runSparseEngine is runEngine over a model with sparse decode enabled.
func runSparseEngine(t *testing.T, cfg Config, topK int, prompts [][]int, maxNew int) ([][]int, *Engine) {
	t.Helper()
	m := model.New(model.Tiny(), seed)
	m.SetSparseTopK(topK)
	e, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	chans := make([]<-chan Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return got, e
}

// longPrompts returns prompts spanning enough pages (at PageTokens 4) that
// decode at topK 2 actually drops pages.
func longPrompts() [][]int {
	out := make([][]int, 4)
	for i := range out {
		p := make([]int, 17+5*i)
		for j := range p {
			p[j] = (j*7 + i*31 + 3) % 512
		}
		out[i] = p
	}
	return out
}

// TestSparseServingMatchesReference pins the serving contract: a sparse
// engine's streams are bit-identical to direct model-level sparse decode
// (dense prefill + topK decode), for fp32 and int8 pages, and the engine's
// page-selection counters record real sparsity.
func TestSparseServingMatchesReference(t *testing.T) {
	prompts := longPrompts()
	const maxNew, topK, pageTokens = 16, 2, 4
	for _, bits := range []int{0, 8} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			want := sparseReference(t, prompts, maxNew, topK, pageTokens, bits)
			cfg := Config{MaxBatch: 3, PageTokens: pageTokens, KVQuantBits: bits}
			got, e := runSparseEngine(t, cfg, topK, prompts, maxNew)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("request %d token %d: %d != reference %d", i, j, got[i][j], want[i][j])
					}
				}
			}
			st := e.Stats()
			if st.SparsePagesSelected == 0 || st.SparsePagesTotal == 0 {
				t.Fatal("sparse serving recorded no page selections")
			}
			if st.SparsePagesSelected > st.SparsePagesTotal {
				t.Fatalf("selected %d > resident %d", st.SparsePagesSelected, st.SparsePagesTotal)
			}
			if st.SparsePagesSelected == st.SparsePagesTotal {
				t.Fatal("selection never dropped a page; sparsity vacuous")
			}
		})
	}
}

// TestSparsePreemptionReplayMatchesReference is the replay acceptance gate:
// under a page budget tight enough to force preemption, a recomputed sparse
// request re-advances its emitted tokens through sparse decode (not dense
// prefill) and its stream stays bit-identical to an unconstrained run.
func TestSparsePreemptionReplayMatchesReference(t *testing.T) {
	prompts := longPrompts()
	const maxNew, topK, pageTokens = 16, 2, 4
	want := sparseReference(t, prompts, maxNew, topK, pageTokens, 0)
	// Largest request needs ceil((32+16)/4) = 12 pages; two concurrent
	// requests' worth plus slack forces eviction mid-decode.
	cfg := Config{MaxBatch: 4, PageTokens: pageTokens, KVPages: 20}
	got, e := runSparseEngine(t, cfg, topK, prompts, maxNew)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != reference %d (after preemption replay)", i, j, got[i][j], want[i][j])
			}
		}
	}
	st := e.Stats()
	if st.Preemptions == 0 {
		t.Fatal("page budget never forced a preemption; test is vacuous")
	}
	if st.PeakPages > cfg.KVPages {
		t.Fatalf("PeakPages %d exceeded budget %d", st.PeakPages, cfg.KVPages)
	}
}

// TestSparseReplayHandoffDeterministic simulates a cross-engine migration by
// hand: a second sparse engine receives prompt+firstHalf with Replay marking
// the emitted suffix, and must continue exactly where the first stream left
// off.
func TestSparseReplayHandoffDeterministic(t *testing.T) {
	prompt := longPrompts()[3]
	const maxNew, topK, pageTokens = 16, 2, 4
	full := sparseReference(t, [][]int{prompt}, maxNew, topK, pageTokens, 0)[0]

	const half = maxNew / 2
	cont := append(append([]int(nil), prompt...), full[:half]...)
	m := model.New(model.Tiny(), seed)
	m.SetSparseTopK(topK)
	e, err := New(m, Config{MaxBatch: 2, PageTokens: pageTokens})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ch, err := e.Submit(context.Background(),
		Request{ID: 1, Prompt: cont, MaxNew: maxNew - half, Replay: half, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, ch)
	want := full[half:]
	if len(got) != len(want) {
		t.Fatalf("continuation emitted %d tokens, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("continuation token %d: %d != %d", j, got[j], want[j])
		}
	}
}

// TestSparseReplayValidation: out-of-range Replay is rejected on a sparse
// engine; a dense engine zeroes Replay (chunked prefill is already
// bit-identical to decode) and serves the request normally.
func TestSparseReplayValidation(t *testing.T) {
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sm := model.New(model.Tiny(), seed)
	sm.SetSparseTopK(2)
	se, err := New(sm, Config{PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	for _, replay := range []int{-1, len(prompt), len(prompt) + 3} {
		if _, err := se.Submit(context.Background(), Request{ID: 1, Prompt: prompt, MaxNew: 4, Replay: replay}); err == nil {
			t.Fatalf("replay %d accepted", replay)
		}
	}

	want := sequentialReference(t, [][]int{prompt}, 6)[0]
	dm := model.New(model.Tiny(), seed)
	de, err := New(dm, Config{PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer de.Close()
	ch, err := de.Submit(context.Background(), Request{ID: 2, Prompt: prompt, MaxNew: 6, Replay: 5, Arrival: -1})
	if err != nil {
		t.Fatalf("dense engine rejected Replay: %v", err)
	}
	got := collect(t, ch)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dense engine with Replay diverged at %d", j)
		}
	}
}

// TestSparseSharedPrefixBitIdentical: prefix-hit clones inherit the prefix
// cache's key summaries, so sparse decode over a cloned prefix is
// bit-identical to a cold sparse run.
func TestSparseSharedPrefixBitIdentical(t *testing.T) {
	prefix := make([]int, 21)
	for i := range prefix {
		prefix[i] = (i * 13) % 512
	}
	suffixes := [][]int{{1, 2}, {3}, {4, 5, 6, 7, 8, 9, 10}}
	prompts := make([][]int, len(suffixes))
	for i, sfx := range suffixes {
		prompts[i] = append(append([]int(nil), prefix...), sfx...)
	}
	const maxNew, topK, pageTokens = 12, 2, 4
	want := sparseReference(t, prompts, maxNew, topK, pageTokens, 0)
	cfg := Config{MaxBatch: 3, PageTokens: pageTokens, SharedPrefix: prefix}
	got, e := runSparseEngine(t, cfg, topK, prompts, maxNew)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != cold sparse %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	st := e.Stats()
	if st.PrefixHits < len(prompts) {
		t.Fatalf("PrefixHits = %d, want >= %d", st.PrefixHits, len(prompts))
	}
	if st.SparsePagesSelected == 0 {
		t.Fatal("no sparse selections over prefix clones")
	}
}
