package sched

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
)

// TestQuantPreemptionRecomputeDeterministic is the quantized twin of
// TestPreemptionRecomputeMatchesSequential: with KV quantization on, a page
// budget tight enough to force eviction must still yield streams
// bit-identical to an unconstrained engine at the same code width. Per-token
// quantize-on-append is what makes this hold — the recompute requantizes the
// replayed prompt+generated tokens to the identical codes, so decode resumes
// on the exact same values. The test also pins the capacity accounting: the
// engine's effective budget is the scaled (larger) page count, and peak
// residency exceeds what the same bytes held in fp32 pages.
func TestQuantPreemptionRecomputeDeterministic(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	for _, tc := range []struct {
		bits    int
		kvPages int // fp32-denominated; chosen so the scaled budget still evicts
	}{
		{bits: 8, kvPages: 5},
		{bits: 4, kvPages: 3},
	} {
		// Reference: same quantized engine, unbounded pages — no preemption.
		want, _ := runEngine(t, Config{MaxBatch: 4, PageTokens: 4, KVQuantBits: tc.bits}, prompts, maxNew)

		cfg := Config{MaxBatch: 4, PageTokens: 4, KVPages: tc.kvPages, KVQuantBits: tc.bits}
		got, e := runEngine(t, cfg, prompts, maxNew)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("int%d request %d: %d tokens, want %d", tc.bits, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("int%d request %d token %d: %d != unconstrained %d (after preemption)",
						tc.bits, i, j, got[i][j], want[i][j])
				}
			}
		}
		st := e.Stats()
		if st.Preemptions == 0 {
			t.Fatalf("int%d: page budget never forced a preemption; test is vacuous", tc.bits)
		}
		shape := model.New(model.Tiny(), seed).CacheShape()
		effective := kvcache.ScaledPageBudget(tc.kvPages, shape, cfg.PageTokens, tc.bits)
		if effective <= tc.kvPages {
			t.Fatalf("int%d: scaled budget %d not larger than fp32 budget %d", tc.bits, effective, tc.kvPages)
		}
		if v := e.View(); v.PageBudget != effective {
			t.Fatalf("int%d: View.PageBudget = %d, want scaled %d", tc.bits, v.PageBudget, effective)
		}
		if st.PeakPages > effective {
			t.Fatalf("int%d: PeakPages %d exceeded scaled budget %d", tc.bits, st.PeakPages, effective)
		}
		if st.PeakPages <= tc.kvPages {
			t.Fatalf("int%d: PeakPages %d never exceeded the fp32 page count %d — quantization bought no capacity",
				tc.bits, st.PeakPages, tc.kvPages)
		}
	}
}

// TestQuantSharedPrefixDeterministic pins the copy-on-write admission path
// under quantization: full prefix pages are shared by reference (never
// re-quantized), and prefix-hit decode matches a cold quantized engine
// bit-for-bit.
func TestQuantSharedPrefixDeterministic(t *testing.T) {
	prefix := []int{11, 12, 13, 14, 15, 16, 17, 18}
	prompts := [][]int{
		append(append([]int{}, prefix...), 5, 6, 7),
		append(append([]int{}, prefix...), 300, 301),
		{9, 9, 9}, // miss: falls back to a cold private cache
	}
	const maxNew = 12
	for _, bits := range []int{8, 4} {
		want, _ := runEngine(t, Config{MaxBatch: 2, PageTokens: 4, KVQuantBits: bits}, prompts, maxNew)
		got, e := runEngine(t, Config{MaxBatch: 2, PageTokens: 4, KVQuantBits: bits, SharedPrefix: prefix}, prompts, maxNew)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("int%d request %d token %d: %d != cold %d", bits, i, j, got[i][j], want[i][j])
				}
			}
		}
		if st := e.Stats(); st.PrefixHits != 2 {
			t.Fatalf("int%d: PrefixHits = %d, want 2", bits, st.PrefixHits)
		}
	}
}

func TestBadQuantBitsRejected(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	if _, err := New(m, Config{KVQuantBits: 3}); err == nil {
		t.Fatal("KVQuantBits=3 accepted, want error")
	}
}
