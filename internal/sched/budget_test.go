package sched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rethinkkv/internal/faults"
	"rethinkkv/internal/model"
)

// packPrompts returns k prompts each several chunks long (at PrefillChunk 8),
// with distinct contents so cross-prompt cache mixups surface as stream
// mismatches rather than silent agreement.
func packPrompts(k int) [][]int {
	out := make([][]int, k)
	for i := range out {
		p := make([]int, 20+7*i)
		for j := range p {
			p[j] = (j*5 + i*17 + 2) % 512
		}
		out[i] = p
	}
	return out
}

// TestTokenBudgetPackedMatchesSequential is the tentpole equivalence gate:
// for k prompts arriving together and a per-iteration token budget anywhere
// from smaller than one chunk to generous enough to pack every prompt's
// chunk at once, the streams are bit-identical to sequential decoding.
// Packing only reorders which weight pass carries which chunk — each chunk
// attends over its own cache, so the budget must be invisible in the output.
func TestTokenBudgetPackedMatchesSequential(t *testing.T) {
	const maxNew, chunk = 12, 8
	for _, k := range []int{2, 4} {
		prompts := packPrompts(k)
		want := sequentialReference(t, prompts, maxNew)
		// Budgets: 6 < chunk (chunks shrink to fit), ~exact (decode lanes +
		// one chunk), and generous (every prompt packs a full chunk per step).
		for _, budget := range []int{6, k + chunk, 128} {
			t.Run(fmt.Sprintf("k=%d/budget=%d", k, budget), func(t *testing.T) {
				cfg := Config{MaxBatch: k + 2, PageTokens: 4, PrefillChunk: chunk, TokenBudget: budget}
				got, e := runEngine(t, cfg, prompts, maxNew)
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("request %d token %d: %d != sequential %d", i, j, got[i][j], want[i][j])
						}
					}
				}
				st := e.Stats()
				if budget >= 128 && k >= 2 && st.PackedChunks == 0 {
					t.Fatalf("generous budget with %d simultaneous prompts packed no chunks", k)
				}
				if st.BudgetTokens == 0 {
					t.Fatal("BudgetTokens stayed 0 across a served trace")
				}
			})
		}
	}
}

// TestTokenBudgetQuantPacked pins packing against the quantized cache plane:
// an int8/int4 engine with a generous budget must emit exactly the streams
// of the same-bits engine in single-chunk mode. Quantisation changes the
// logits, so the reference is the same quantised pipeline, not fp32.
func TestTokenBudgetQuantPacked(t *testing.T) {
	prompts := packPrompts(3)
	const maxNew, chunk = 10, 8
	for _, bits := range []int{8, 4} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			base := Config{MaxBatch: 5, PageTokens: 4, PrefillChunk: chunk, KVQuantBits: bits}
			want, _ := runEngine(t, base, prompts, maxNew)
			packed := base
			packed.TokenBudget = 96
			got, e := runEngine(t, packed, prompts, maxNew)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("request %d token %d: %d != single-chunk %d", i, j, got[i][j], want[i][j])
					}
				}
			}
			if e.Stats().PackedChunks == 0 {
				t.Fatal("generous budget packed no chunks")
			}
		})
	}
}

// TestTokenBudgetSparsePacked pins packing under sparse decode with key
// summaries: the budget only repacks dense prefill chunks, so streams must
// match the model-level sparse reference (dense prefill + topK decode)
// bit for bit, for fp32 and int8 pages.
func TestTokenBudgetSparsePacked(t *testing.T) {
	prompts := longPrompts()
	const maxNew, topK, pageTokens = 12, 2, 4
	for _, bits := range []int{0, 8} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			want := sparseReference(t, prompts, maxNew, topK, pageTokens, bits)
			cfg := Config{MaxBatch: 6, PageTokens: pageTokens, PrefillChunk: 6, TokenBudget: 64, KVQuantBits: bits}
			got, e := runSparseEngine(t, cfg, topK, prompts, maxNew)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("request %d token %d: %d != sparse reference %d", i, j, got[i][j], want[i][j])
					}
				}
			}
			if e.Stats().PackedChunks == 0 {
				t.Fatal("generous budget packed no chunks")
			}
		})
	}
}

// gatedEngine builds an engine whose scheduling loop blocks at the top of
// iteration 1 until the returned release func runs. Submitting one request,
// waiting for entered, submitting the rest, then releasing makes the whole
// admission/packing/preemption trace deterministic: every later request is
// already queued when iteration 1 executes.
func gatedEngine(t *testing.T, cfg Config) (*Engine, <-chan struct{}, func()) {
	t.Helper()
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	cfg.StepHook = func(step int) {
		if step == 1 {
			once.Do(func() { close(entered) })
			<-gate
		}
	}
	e := newTestEngine(t, cfg)
	return e, entered, func() { close(gate) }
}

// TestTokenBudgetPreemptMidPrefillPacked pins deterministic preemption of
// one of several in-flight prefills. Three requests fill the page budget
// exactly; the short one finishes prefill first and its decode page-open
// forces an eviction while both long prompts are still packing chunks. The
// FCFS victim is the newest arrival — a mid-prefill prompt — which must
// recompute from scratch on re-admission with bit-identical streams.
func TestTokenBudgetPreemptMidPrefillPacked(t *testing.T) {
	short := []int{1, 2}
	long1 := make([]int, 28)
	long2 := make([]int, 24)
	for i := range long1 {
		long1[i] = (i*3 + 5) % 512
	}
	for i := range long2 {
		long2[i] = (i*7 + 11) % 512
	}
	prompts := [][]int{short, long1, long2}
	const maxNew = 6
	want := sequentialReference(t, prompts, maxNew)

	// Pages at admission: short 1, long1 7+1 (28%4==0 reserves the first
	// decode page), long2 6+1 — exactly the 16-page budget. Short's decode
	// opens a page at position 4, forcing one eviction.
	cfg := Config{MaxBatch: 3, PageTokens: 4, KVPages: 16, PrefillChunk: 4, TokenBudget: 32}
	e, entered, release := gatedEngine(t, cfg)

	chans := make([]<-chan Token, len(prompts))
	submit := func(i int) {
		ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: prompts[i], MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	submit(0)
	<-entered // short admitted, loop gated before its prefill step
	submit(1)
	submit(2)
	release()

	for i, ch := range chans {
		got := collect(t, ch)
		if len(got) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got), len(want[i]))
		}
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != sequential %d", i, j, got[j], want[i][j])
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := e.Stats()
	if st.PrefillPreempted < 1 {
		t.Fatalf("PrefillPreempted = %d, want >= 1 (a mid-prefill prompt must have been the victim)", st.PrefillPreempted)
	}
	if st.PackedChunks == 0 {
		t.Fatal("both long prompts were mid-prefill together; PackedChunks stayed 0")
	}
	if st.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", st.Completed)
	}
}

// newTestEngine is runEngine's fixture half: build the engine without
// submitting anything, so tests control submission order themselves.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(model.New(model.Tiny(), seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestTokenBudgetDeterministicCounters pins satellite-3 semantics: with the
// admission point fixed by the step gate, two identical runs must agree on
// every lifetime counter — PrefillChunks per chunk, MixedSteps per
// chunk+decode iteration, PackedChunks, BudgetTokens — and on every stream.
// A packing heuristic that consulted wall time or map order would diverge.
func TestTokenBudgetDeterministicCounters(t *testing.T) {
	prompts := packPrompts(4)
	const maxNew = 8
	run := func() (Stats, [][]int) {
		cfg := Config{MaxBatch: 4, PageTokens: 4, PrefillChunk: 4, TokenBudget: 16}
		e, entered, release := gatedEngine(t, cfg)
		chans := make([]<-chan Token, len(prompts))
		for i, p := range prompts {
			ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: p, MaxNew: maxNew, Arrival: -1})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			chans[i] = ch
			if i == 0 {
				<-entered
			}
		}
		release()
		got := make([][]int, len(prompts))
		for i, ch := range chans {
			got[i] = collect(t, ch)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := e.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		return e.Stats(), got
	}
	st1, out1 := run()
	st2, out2 := run()
	if st1 != st2 {
		t.Fatalf("counters diverged across identical runs:\n  run1 %+v\n  run2 %+v", st1, st2)
	}
	if st1.PackedChunks == 0 || st1.MixedSteps == 0 || st1.PrefillChunks == 0 {
		t.Fatalf("expected packing activity, got %+v", st1)
	}
	for i := range out1 {
		if len(out1[i]) != len(out2[i]) {
			t.Fatalf("request %d: stream lengths diverged %d vs %d", i, len(out1[i]), len(out2[i]))
		}
		for j := range out1[i] {
			if out1[i][j] != out2[i][j] {
				t.Fatalf("request %d token %d diverged: %d vs %d", i, j, out1[i][j], out2[i][j])
			}
		}
	}
}

// TestStatsRaceDuringPacking is the satellite-1 regression: Stats and View
// hammered from other goroutines while the engine packs budget chunks and
// decodes. The PeakPages update used to run in a second mu acquisition in
// the middle of the scheduling loop; folded into the post-step critical
// section, the race detector must stay quiet and snapshots stay coherent.
func TestStatsRaceDuringPacking(t *testing.T) {
	prompts := packPrompts(4)
	const maxNew = 10
	cfg := Config{MaxBatch: 4, PageTokens: 4, KVPages: 64, PrefillChunk: 4, TokenBudget: 16}
	e := newTestEngine(t, cfg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := e.Stats()
				if st.PeakPages < 0 {
					t.Error("negative PeakPages snapshot")
					return
				}
				v := e.View()
				if v.UsedPages > 64 {
					t.Errorf("UsedPages %d above the 64-page budget", v.UsedPages)
					return
				}
			}
		}()
	}

	chans := make([]<-chan Token, len(prompts))
	for i, p := range prompts {
		ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: p, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	for _, ch := range chans {
		collect(t, ch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()
	if st := e.Stats(); st.PeakPages == 0 {
		t.Fatal("PeakPages never recorded page usage")
	}
}

// TestShedAbandonedStreamDoesNotStall is the satellite-2 regression: a
// queued request whose consumer walked away (ctx cancelled, channel never
// read) must not stall the scheduling loop when the deadline-shed or cancel
// path terminates its stream. The shed send used to be a blocking channel
// send; all terminal sends are now guarded, so the engine must keep serving
// and Drain must return.
func TestShedAbandonedStreamDoesNotStall(t *testing.T) {
	inj := faults.New(seed)
	inj.Delay(0, time.Millisecond) // ~40ms of decode, far past the 2ms deadlines
	cfg := Config{MaxBatch: 1, PageTokens: 8, StepHook: inj.StepHook(0)}
	e := newTestEngine(t, cfg)

	chA, err := e.Submit(context.Background(), Request{ID: 0, Prompt: []int{1, 2, 3}, MaxNew: 40, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitAdmitted(t, e, 1) // A holds the only slot; everything below queues

	// B: consumer abandons the stream, then its TTFT deadline passes while
	// still queued. The shed must terminate the unread stream without
	// blocking the loop.
	ctxB, cancelB := context.WithCancel(context.Background())
	chB, err := e.Submit(ctxB, Request{
		ID: 1, Prompt: []int{4, 5, 6}, MaxNew: 6, Arrival: -1, Deadline: e.Now() + 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	// C: deadline passes with the stream simply never read — the pure
	// abandoned-consumer shape of the old blocking-send hazard.
	chC, err := e.Submit(context.Background(), Request{
		ID: 2, Prompt: []int{7, 8}, MaxNew: 6, Arrival: -1, Deadline: e.Now() + 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelB() // consumer gone before the engine ever touches B

	// The runner must finish regardless of the two dead streams.
	if toks, terr := collectErr(t, chA); terr != nil || len(toks) != 40 {
		t.Fatalf("runner: %d tokens, err %v; dead queued streams must not stall it", len(toks), terr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Both abandoned streams must be closed (terminal token optional —
	// cancellation may race the shed — but closure is mandatory).
	drainClosed := func(name string, ch <-chan Token) {
		select {
		case _, ok := <-ch:
			if ok {
				for range ch {
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s stream never closed", name)
		}
	}
	drainClosed("cancelled", chB)
	drainClosed("shed", chC)
	st := e.Stats()
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", st.Completed)
	}
	if st.Shed+st.Cancelled != 2 {
		t.Fatalf("Shed+Cancelled = %d+%d, want 2 abandoned streams retired", st.Shed, st.Cancelled)
	}
}

// TestNegativeTokenBudgetRejected pins config validation.
func TestNegativeTokenBudgetRejected(t *testing.T) {
	_, err := New(model.New(model.Tiny(), seed), Config{MaxBatch: 2, PageTokens: 8, TokenBudget: -1})
	if err == nil || !strings.Contains(err.Error(), "token budget") {
		t.Fatalf("New with TokenBudget -1: err = %v, want negative-token-budget error", err)
	}
}
