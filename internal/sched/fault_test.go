package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"rethinkkv/internal/faults"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
)

// collectErr drains a stream, separating ordinary tokens from the terminal
// error token (if any).
func collectErr(t *testing.T, ch <-chan Token) ([]int, error) {
	t.Helper()
	var out []int
	var terr error
	for tok := range ch {
		if tok.Err != nil {
			terr = tok.Err
			continue
		}
		out = append(out, tok.ID)
	}
	return out, terr
}

// waitAdmitted polls until the engine has admitted n requests — the
// fixture tests use it to order submissions around the admission boundary
// deterministically.
func waitAdmitted(t *testing.T, e *Engine, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Admitted < n {
		if time.Now().After(deadline) {
			t.Fatalf("engine never admitted %d requests", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestMaxQueueOverload pins the bounded-admission contract: with one
// request running (batch full) and one queued, a MaxQueue of 1 rejects the
// next Submit with ErrOverloaded, and the queued request still completes
// untouched once the runner retires.
func TestMaxQueueOverload(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{MaxBatch: 1, PageTokens: 8, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	chA, err := e.Submit(context.Background(), Request{ID: 0, Prompt: []int{1, 2, 3}, MaxNew: 24, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitAdmitted(t, e, 1) // A holds the only batch slot
	chB, err := e.Submit(context.Background(), Request{ID: 1, Prompt: []int{4, 5, 6}, MaxNew: 6, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Submit(context.Background(), Request{ID: 2, Prompt: []int{7, 8}, MaxNew: 6, Arrival: -1})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit: err = %v, want ErrOverloaded", err)
	}

	if toks, terr := collectErr(t, chA); terr != nil || len(toks) != 24 {
		t.Fatalf("runner: %d tokens, err %v", len(toks), terr)
	}
	if toks, terr := collectErr(t, chB); terr != nil || len(toks) != 6 {
		t.Fatalf("queued request: %d tokens, err %v; overload must not touch it", len(toks), terr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := e.Stats()
	if st.Completed != 2 || st.Shed != 0 {
		t.Fatalf("Completed/Shed = %d/%d, want 2/0", st.Completed, st.Shed)
	}
}

// TestDeadlineShedding: a slowed engine (1ms per iteration via the
// injector's delay) decodes a long runner while two requests wait on a full
// batch slot — one carrying the config default deadline, one an explicit
// earlier Request.Deadline. Both must shed with ErrDeadlineExceeded error
// tokens; the runner, already started, must never be shed.
func TestDeadlineShedding(t *testing.T) {
	inj := faults.New(seed)
	inj.Delay(0, time.Millisecond)
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{
		MaxBatch:         1,
		PageTokens:       8,
		AdmissionTimeout: 0.02, // 20ms default TTFT deadline
		StepHook:         inj.StepHook(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	// ~60ms of decode: far past both deadlines below.
	chA, err := e.Submit(context.Background(), Request{ID: 0, Prompt: []int{1, 2, 3}, MaxNew: 60, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitAdmitted(t, e, 1)
	chB, err := e.Submit(context.Background(), Request{ID: 1, Prompt: []int{4, 5, 6}, MaxNew: 6, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	chC, err := e.Submit(context.Background(), Request{
		ID: 2, Prompt: []int{7, 8}, MaxNew: 6, Arrival: -1, Deadline: e.Now() + 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}

	toksB, errB := collectErr(t, chB)
	if len(toksB) != 0 || !errors.Is(errB, ErrDeadlineExceeded) {
		t.Fatalf("default-deadline request: %d tokens, err %v, want 0 tokens and ErrDeadlineExceeded", len(toksB), errB)
	}
	toksC, errC := collectErr(t, chC)
	if len(toksC) != 0 || !errors.Is(errC, ErrDeadlineExceeded) {
		t.Fatalf("explicit-deadline request: %d tokens, err %v, want 0 tokens and ErrDeadlineExceeded", len(toksC), errC)
	}
	if toksA, errA := collectErr(t, chA); errA != nil || len(toksA) != 60 {
		t.Fatalf("started runner: %d tokens, err %v; started requests are never shed", len(toksA), errA)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := e.Stats()
	if st.Shed != 2 || st.Completed != 1 || st.Cancelled != 0 {
		t.Fatalf("Shed/Completed/Cancelled = %d/%d/%d, want 2/1/0", st.Shed, st.Completed, st.Cancelled)
	}
}

// TestStepPanicFailsEngine is the recover-boundary gate: an injected panic
// at iteration 4 must mark the engine failed instead of unwinding into the
// process, terminate every live stream with an ErrEngineFailed error token,
// and poison later Submit and Drain with the same typed failure.
func TestStepPanicFailsEngine(t *testing.T) {
	inj := faults.New(seed)
	inj.PanicAt(0, 4)
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{
		MaxBatch:   4,
		PageTokens: 8,
		StepHook:   inj.StepHook(0),
		SubmitHook: inj.SubmitHook(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	chans := make([]<-chan Token, 3)
	for i := range chans {
		ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: []int{i + 1, i + 2}, MaxNew: 12, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		toks, terr := collectErr(t, ch)
		if !errors.Is(terr, ErrEngineFailed) {
			t.Fatalf("stream %d terminal err = %v, want ErrEngineFailed", i, terr)
		}
		if len(toks) >= 12 {
			t.Fatalf("stream %d completed despite the panic at iteration 4", i)
		}
	}
	if !inj.Fired(0) {
		t.Fatal("scheduled panic never fired; test is vacuous")
	}
	if ferr := e.Failed(); !errors.Is(ferr, ErrEngineFailed) {
		t.Fatalf("Failed() = %v, want ErrEngineFailed", ferr)
	}
	if _, err := e.Submit(context.Background(), Request{ID: 9, Prompt: []int{1}, MaxNew: 2}); !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("submit after failure: %v, want ErrEngineFailed", err)
	}
	if err := e.Drain(context.Background()); !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("drain after failure: %v, want ErrEngineFailed", err)
	}
}

// TestSubmitStormRejectsThenRecovers: an injected ErrOutOfPages storm
// bounces exactly its budget of Submits; the first accepted request after
// the storm decodes bit-identically to the sequential reference.
func TestSubmitStormRejectsThenRecovers(t *testing.T) {
	prompt := []int{1, 2, 3, 4, 5}
	const maxNew = 10
	want := sequentialReference(t, [][]int{prompt}, maxNew)[0]

	inj := faults.New(seed)
	inj.SubmitStorm(0, 2)
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{MaxBatch: 2, PageTokens: 8, SubmitHook: inj.SubmitHook(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	for i := 0; i < 2; i++ {
		if _, err := e.Submit(context.Background(), Request{ID: i, Prompt: prompt, MaxNew: maxNew}); !errors.Is(err, kvcache.ErrOutOfPages) {
			t.Fatalf("storm submit %d: err = %v, want ErrOutOfPages", i, err)
		}
	}
	ch, err := e.Submit(context.Background(), Request{ID: 2, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
	if err != nil {
		t.Fatalf("submit after storm: %v", err)
	}
	toks, terr := collectErr(t, ch)
	if terr != nil {
		t.Fatalf("post-storm stream err: %v", terr)
	}
	if len(toks) != len(want) {
		t.Fatalf("post-storm stream: %d tokens, want %d", len(toks), len(want))
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("post-storm token %d: %d != sequential %d", i, toks[i], want[i])
		}
	}
	if inj.Stormed(0) != 2 {
		t.Fatalf("Stormed = %d, want 2", inj.Stormed(0))
	}
}
