// Package sched is the continuous-batching serving engine: the control
// plane that runs the real tiny-model decode loop (internal/core,
// internal/model) over the paged KV data plane (kvcache.PagedKV) under a
// global page budget.
//
// Where internal/serving *simulates* a cluster against the analytical cost
// model in virtual time, this engine actually serves: requests are
// admitted from a policy-ordered queue, join and leave the running batch
// at every decode iteration (iteration-level scheduling), stream their
// tokens as they are produced, and are preempted — cache dropped, request
// requeued for recompute — when the page budget runs out. Prompts prefill
// chunk by chunk inside the iteration loop (Sarathi/Orca-style chunked
// prefill): each iteration fuses the running decode batch with prefill
// chunks into a single weight-stationary pass, so a long arriving prompt
// delays running streams by one chunk's step time instead of a whole
// prompt's. By default one iteration carries at most one
// PrefillChunk-token span of the oldest admitted prompt; with a
// Config.TokenBudget the iteration instead packs chunks from *every*
// admitted mid-prefill prompt, oldest first, until decode lanes plus chunk
// tokens fill the budget (Sarathi-style stall-free batching) — k
// simultaneously arriving prompts then prefill concurrently instead of
// round-robin, collapsing their aggregate TTFT. Greedy decode is
// deterministic, the paged cache exact, and chunked prefill bit-identical
// to token-at-a-time regardless of packing, so a preempted, chunk-prefilled
// or budget-packed request's final token stream is bit-identical to an
// uninterrupted sequential run; the scheduling only costs time, which the
// metrics expose.
//
// Both planes speak one metrics vocabulary: the engine emits the same
// serving.Outcome records (TTFT, TBOT, E2E) the simulator does, in
// wall-clock instead of simulated seconds.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rethinkkv/internal/core"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// Scheduling policies.
const (
	// PolicyFCFS admits in arrival order and preempts the newest arrival.
	PolicyFCFS = "fcfs"
	// PolicySJF admits the request with the fewest predicted remaining
	// tokens first and preempts the one with the most — shortest-job-first
	// on the length prediction the paper's router experiments use.
	PolicySJF = "sjf-predicted"
)

// Policies lists the admission policies by name.
func Policies() []string { return []string{PolicyFCFS, PolicySJF} }

// Token is one streamed decode step, mirroring the facade's token type.
type Token struct {
	ID  int // emitted vocabulary id
	Pos int // absolute sequence position (original prompt length + offset)
	// Err, when non-nil, is a terminal error: the stream is about to close
	// without completing, and this token carries why — ErrEngineFailed
	// (the engine's step loop panicked and nothing could take the request
	// over) or ErrDeadlineExceeded (the request was shed from the admission
	// queue past its TTFT deadline). ID and Pos are meaningless on an error
	// token. Streams that complete or are cancelled by their own context
	// close without one.
	Err error
}

// ErrClosed reports a Submit or Drain against a closed engine.
var ErrClosed = errors.New("sched: engine closed")

// ErrEngineFailed reports an engine whose scheduling loop panicked. The
// recover boundary marks the engine failed instead of letting the panic
// take the process down: in-flight streams terminate with an error token
// wrapping this sentinel (the fleet layer fails them over to healthy
// engines first), and every later Submit or Drain fails with it.
var ErrEngineFailed = errors.New("sched: engine failed")

// ErrOverloaded reports a Submit rejected because the bounded admission
// queue (Config.MaxQueue) is full — the fail-fast alternative to letting
// an overload grow the queue without bound.
var ErrOverloaded = errors.New("sched: admission queue full")

// ErrDeadlineExceeded reports a request shed from the admission queue
// because its TTFT deadline (Request.Deadline) passed before the engine
// could start it — spending pages on it could no longer meet its SLO.
var ErrDeadlineExceeded = errors.New("sched: TTFT deadline exceeded before admission")

// Config sizes the engine.
type Config struct {
	// MaxBatch bounds the number of concurrently decoding requests.
	MaxBatch int
	// PageTokens is the KV page size in tokens.
	PageTokens int
	// KVPages is the global per-layer page budget shared by all live
	// sequences; 0 means unbounded (no preemption ever triggers).
	KVPages int
	// MaxNew is the default per-request decode cap.
	MaxNew int
	// PrefillChunk is the prompt-token budget one scheduling iteration
	// spends on prefill: instead of prefilling a whole admitted prompt
	// under the engine lock (stalling every running decode stream for the
	// prompt's full forward cost), the loop advances the oldest admitted
	// prompt by at most PrefillChunk positions per iteration, fused into
	// the same weight pass as the running decode batch
	// (core.StepMixedInto). Smaller chunks bound the inter-token gap
	// running streams see while a long prompt arrives; larger chunks
	// finish the prompt's TTFT sooner. 0 means the default (32).
	PrefillChunk int
	// TokenBudget, when positive, is the per-iteration token budget for
	// Sarathi-style stall-free batching: one fused pass carries the decode
	// lanes plus prefill chunks packed greedily from *all* admitted
	// mid-prefill prompts (oldest first, each capped by its remaining
	// dense span and by PrefillChunk) until decode lanes + Σ chunk tokens
	// reach the budget. k prompts arriving together then prefill
	// concurrently through shared weight passes instead of sequentially,
	// so their aggregate TTFT stops degrading linearly in k, while decode
	// streams still never wait more than one budgeted pass. A budget
	// smaller than the decode lane count still packs one (possibly
	// truncated) chunk, so prefill always progresses. 0 (default) keeps
	// the single-chunk behaviour: one chunk of at most PrefillChunk
	// tokens from the oldest admitted prompt per iteration.
	TokenBudget int
	// Policy is PolicyFCFS (default) or PolicySJF.
	Policy string
	// GPU is the id stamped on outcomes (multi-engine replay sets it).
	GPU int
	// Epoch, when non-zero, is the clock origin all engine timestamps
	// (arrivals, TTFT, finish) are measured from. Multi-engine trace
	// replay passes one shared epoch so outcomes from different engines
	// are comparable; zero means "engine construction time".
	Epoch time.Time
	// Migrate, when non-nil, is consulted for every preemption victim
	// before it is requeued locally. Returning true hands the victim off to
	// the caller (the fleet layer): the engine retires it immediately —
	// pages already released, token channel closed, no outcome recorded,
	// Stats.MigratedOut incremented — and the callee is responsible for
	// re-admitting the serialized request (its prompt plus the tokens it
	// already emitted, all of which were sent on the channel before the
	// hook ran) on another engine. The hook is called from the scheduling
	// loop with no engine lock held, so it may inspect this or other
	// engines' View/Backlog, but it must not block on this engine's own
	// progress (e.g. by draining it).
	Migrate func(gpu int, req Request, generated int) bool
	// KVQuantBits selects quantized KV pages for every request cache: 0
	// (default) stores full-precision fp32 pages, 8 or 4 stores
	// uniform-quantized codes with float16 scale pairs. KVPages stays
	// denominated in fp32-page bytes — the engine converts it once into the
	// larger number of quantized pages the same byte budget holds
	// (kvcache.ScaledPageBudget), which is where quantization buys
	// capacity: more resident sequences before preemption, identical byte
	// footprint. Decode streams codes through the fused dequantize-on-read
	// kernels, so outputs are deterministic (recompute-exact) though not
	// bit-identical to fp32 serving.
	KVQuantBits int
	// MaxQueue bounds the admission queue: a Submit finding MaxQueue
	// requests already waiting fails fast with ErrOverloaded instead of
	// growing the backlog without bound. 0 means unbounded (the
	// pre-admission-control behaviour).
	MaxQueue int
	// AdmissionTimeout, in seconds, is the default TTFT deadline stamped on
	// requests that carry none of their own: a request still queued
	// AdmissionTimeout after its arrival is shed (stream terminates with an
	// ErrDeadlineExceeded error token) instead of burning pages on work
	// whose SLO is already blown. 0 disables the default; per-request
	// Request.Deadline always wins.
	AdmissionTimeout float64
	// StepHook, when non-nil, runs at the top of every scheduling
	// iteration with the 1-based iteration count, outside the engine lock.
	// It is the fault-injection seam (internal/faults): a hook that panics
	// exercises the recover boundary exactly as a real step-loop bug
	// would, and a hook that sleeps models a slow replica. The hook runs
	// on the loop goroutine — it must not call back into this engine.
	StepHook func(step int)
	// SubmitHook, when non-nil, is consulted by every Submit after
	// validation; a non-nil error fails the Submit with it. Fault
	// injection uses it for deterministic ErrOutOfPages storms — the
	// transient capacity exhaustion an overloaded replica reports.
	SubmitHook func() error
	// SharedPrefix, when non-empty, is prefilled once at engine start and
	// reused for every request whose prompt strictly extends it: the
	// request's cache starts as a copy-on-write page clone of the prefix
	// cache (kvcache.PagedKV.ClonePrefix) and only the prompt tail is
	// prefilled. This is the system-prompt workload optimisation: decode
	// output is bit-identical to a cold prefill, only the prefix
	// recompute is saved. The prefix's pages are charged against KVPages
	// permanently.
	SharedPrefix []int
}

func (c *Config) normalize() error {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.PageTokens <= 0 {
		c.PageTokens = 16
	}
	if c.MaxNew <= 0 {
		c.MaxNew = 32
	}
	if c.PrefillChunk == 0 {
		c.PrefillChunk = 32
	}
	if c.PrefillChunk < 0 {
		return fmt.Errorf("sched: negative prefill chunk %d", c.PrefillChunk)
	}
	if c.TokenBudget < 0 {
		return fmt.Errorf("sched: negative token budget %d", c.TokenBudget)
	}
	if c.Policy == "" {
		c.Policy = PolicyFCFS
	}
	if c.Policy != PolicyFCFS && c.Policy != PolicySJF {
		return fmt.Errorf("sched: unknown policy %q", c.Policy)
	}
	if c.KVPages < 0 {
		return fmt.Errorf("sched: negative page budget %d", c.KVPages)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("sched: negative admission queue bound %d", c.MaxQueue)
	}
	if c.AdmissionTimeout < 0 {
		return fmt.Errorf("sched: negative admission timeout %g", c.AdmissionTimeout)
	}
	if c.KVQuantBits != 0 && c.KVQuantBits != 4 && c.KVQuantBits != 8 {
		return fmt.Errorf("sched: unsupported KV quant width %d (want 0, 4 or 8)", c.KVQuantBits)
	}
	return nil
}

// Request is one serving request.
type Request struct {
	ID     int
	Prompt []int
	// MaxNew caps the decoded tokens; 0 uses the engine default.
	MaxNew int
	// Predicted is the predicted response length PolicySJF orders by;
	// 0 falls back to MaxNew. Trace replay feeds the trace's reference
	// length here, mirroring the paper's predictor-driven routing.
	Predicted int
	// Arrival is seconds since engine start; negative means "stamp at
	// submit time" (the live-traffic case). Trace replay passes the
	// trace's arrival so queueing delay is measured against intent.
	Arrival float64
	// Deadline, in seconds on the engine clock (the same origin as
	// Arrival), is the request's TTFT deadline: if it is still queued —
	// prefill not started — past this instant, the engine sheds it with an
	// ErrDeadlineExceeded error token instead of spending pages on work
	// that can no longer meet its SLO. 0 means no deadline (then
	// Config.AdmissionTimeout, if set, stamps a default at Submit);
	// negative means explicitly none, suppressing the default too (the
	// fleet uses it for failover continuations that already streamed). A
	// request that already started is never shed — preemption and
	// migration may still finish it late, which the outcome records.
	Deadline float64
	// Replay counts trailing Prompt tokens that were produced by decode
	// steps on another engine (a migration handoff under sparse attention).
	// Sparse decode alters the residual stream, so dense chunked prefill
	// would not rebuild those tokens' KV the way the source engine computed
	// it; instead the engine prefills only Prompt[:len-Replay] densely and
	// re-advances the tail through ordinary (sparse) decode steps without
	// emitting — reproducing the source cache state exactly. Ignored (zeroed)
	// on engines without sparse attention, where chunked prefill is already
	// bit-identical to decode. Must be < len(Prompt).
	Replay int
}

// Stats are engine-lifetime counters.
type Stats struct {
	Steps       int // scheduling iterations executed (decode, prefill chunk, or both)
	Admitted    int // admissions incl. re-admissions after preemption
	Preemptions int // evict-and-requeue events
	Completed   int // requests finished to their token cap
	Cancelled   int // requests retired early by their context
	PeakRunning int // max concurrent decode streams
	PeakPages   int // max pages in use under the budget
	// PrefillChunks counts prompt chunks advanced through the fused plane,
	// one per chunk — a budget-packed iteration carrying chunks from k
	// prompts counts k. MixedSteps counts the iterations that carried at
	// least one decode lane and at least one prefill chunk in one weight
	// pass — the interleaving the chunked prefill design exists for.
	// PrefillPreempted counts the preemption victims caught mid-prefill
	// (their prompt recomputes from scratch on re-admission).
	PrefillChunks    int
	MixedSteps       int
	PrefillPreempted int
	// PackedChunks counts the prefill chunks that shared their fused pass
	// with at least one other prompt's chunk — the multi-prompt packing a
	// TokenBudget enables; always 0 in single-chunk mode. BudgetTokens
	// totals the tokens every scheduling iteration carried (decode lanes +
	// prefill chunk tokens), the utilisation numerator for the
	// per-iteration budget.
	PackedChunks int
	BudgetTokens int
	// PrefixHits counts admissions served from the shared-prefix cache;
	// PrefixTokensSaved totals the prefill tokens those hits skipped.
	PrefixHits        int
	PrefixTokensSaved int
	// MigratedOut counts preemption victims handed off through the
	// Config.Migrate hook instead of being requeued locally.
	MigratedOut int
	// Shed counts queued requests dropped past their TTFT deadline
	// (Request.Deadline / Config.AdmissionTimeout) — deliberate load
	// shedding, distinct from Cancelled (caller gave up) and from the
	// streams an engine failure terminates.
	Shed int
	// SparsePagesSelected / SparsePagesTotal sum, over every sparse decode
	// attention the engine ran, the pages attended vs the pages resident —
	// selected/total is the fleet-visible attention-traffic ratio sparse
	// attention achieved. Both stay 0 when sparsity is off or contexts
	// never exceeded the page budget topK.
	SparsePagesSelected int64
	SparsePagesTotal    int64
}

// View is a point-in-time snapshot of the engine's router-visible state —
// the live signals a multi-engine placement policy routes on. Loop-private
// fields (running set, page usage, prefill debt) are mirrored at the end of
// every scheduling action, so a view is at most one iteration stale.
type View struct {
	// Queued counts requests waiting for admission; Running counts the
	// running set (decoding plus mid-prefill).
	Queued  int
	Running int
	// BacklogTokens is the queued-plus-running token load (prompt +
	// predicted remaining at admission) — the same signal Backlog returns.
	BacklogTokens float64
	// UsedPages is the KV pages currently charged against the budget;
	// PageBudget is the configured budget (0 = unbounded) and PageTokens
	// the page size.
	UsedPages  int
	PageBudget int
	PageTokens int
	// PrefillTokens counts admitted prompt tokens not yet prefilled — the
	// chunked-prefill debt queued ahead of any new arrival's own prefill.
	PrefillTokens int
	// StepSeconds is an exponential moving average of recent scheduling-
	// iteration wall time (0 until the first step) — a live per-engine
	// cost signal no analytical model supplies.
	StepSeconds float64
}

// FreePages returns the unused page budget, or -1 when unbounded.
func (v View) FreePages() int {
	if v.PageBudget == 0 {
		return -1
	}
	return v.PageBudget - v.UsedPages
}

// reqState is one request's lifecycle state, owned by the engine loop
// except where noted.
type reqState struct {
	req       Request
	ctx       context.Context
	ch        chan Token
	generated []int
	// prompt is the token sequence this admission must prefill: the
	// request prompt, re-extended with already-emitted tokens after a
	// preemption (recompute). prefilled counts how many of them are in the
	// cache; the loop advances it chunk by chunk, and sess stays nil until
	// the whole prompt is in (a mid-prefill request occupies a batch slot
	// and its reserved pages but contributes no decode lane yet).
	prompt    []int
	prefilled int
	// replay counts trailing prompt tokens (decode-produced before a
	// preemption or migration) that must re-advance through decode steps
	// instead of chunked prefill — only under sparse attention, where the
	// two are not interchangeable. Replay steps emit nothing; prefilled
	// advances with them so it always counts prompt tokens in the cache.
	replay int
	// sess is non-nil only while running with prefill complete; cache is
	// non-nil for the whole running span, including mid-prefill.
	sess  *core.StepSession
	cache *kvcache.PagedKV
	// retired marks a request stepOnce retired this iteration, so the
	// running set can be rebuilt outside the emission loop.
	retired bool
	// start is the first prefill start; firstTok the first emission. -1
	// until they happen (preemption does not reset them).
	start    float64
	firstTok float64
	preempts int
	// load is this request's contribution to Engine.runningLoad while
	// running.
	load float64
	// stopWatch cancels the ctx watcher that wakes the loop on
	// cancellation; retirement calls it so completed requests do not
	// accumulate watchers.
	stopWatch func() bool
	// pages is the request's private page charge against the engine
	// budget: pages allocated at admission plus pages opened by decode,
	// excluding pages shared with the prefix cache. Preemption and
	// retirement release exactly this amount.
	pages int
	// reserved marks a first-decode-step page charged at admission
	// (prompt length page-aligned): admission reserves it so a freshly
	// admitted request cannot be admitted and then immediately evicted —
	// and its prefill wasted — by its own first step's page need. The
	// flag is consumed by the step that opens the page.
	reserved bool
}

func (rs *reqState) remaining() int {
	pred := rs.req.Predicted
	if pred <= 0 {
		pred = rs.req.MaxNew
	}
	if r := pred - len(rs.generated); r > 0 {
		return r
	}
	return 1 // past its prediction: nearly done, highest priority under SJF
}

// Engine is a continuous-batching scheduler over one model replica.
type Engine struct {
	m     *model.Model
	pool  *core.WorkspacePool
	cfg   Config
	start time.Time
	// sparse mirrors m.SparseTopK() > 0 at construction: every request
	// cache is built with key summaries enabled, and preempted/migrated
	// requests replay their decode-produced tokens instead of dense-
	// prefilling them.
	sparse bool
	// pageBudget is cfg.KVPages converted to the engine's page currency:
	// identical for fp32 caches, scaled up by kvcache.ScaledPageBudget when
	// KVQuantBits is set (the same bytes hold more quantized pages). All
	// admission, reservation, and preemption accounting uses this value.
	pageBudget int

	// prefixCache holds the prefilled SharedPrefix (nil when the feature
	// is off); it is immutable after New and cloned per matching request.
	prefixCache *kvcache.PagedKV

	// loop-private state (touched only by the run goroutine).
	running   []*reqState
	usedPages int
	// loopSteps counts scheduling iterations for Config.StepHook — loop-
	// private so the hook fires without taking mu.
	loopSteps int
	// stepSessions/stepReqs/stepToks and the chunk-packing scratch
	// (chunks/chunkReqs/chunkNexts, index-aligned) are reused across
	// iterations so batch formation and the fused mixed step allocate
	// nothing in steady state.
	stepSessions []*core.StepSession
	stepReqs     []*reqState
	stepToks     []int
	chunks       []core.PrefillChunk
	chunkReqs    []*reqState
	chunkNexts   []int

	mu       sync.Mutex
	queue    []*reqState
	outcomes []serving.Outcome
	stats    Stats
	pending  int // queued + running, for Drain
	// runningLoad mirrors the running set's admitted token load
	// (prompt + predicted remaining) for Backlog; each reqState records
	// its own contribution in load so removal subtracts exactly what
	// admission added.
	runningLoad float64
	// viewRunning/viewUsedPages/viewPrefill/viewStep mirror loop-private
	// state for View(), refreshed via syncViewLocked after every scheduling
	// action that changes them.
	viewRunning   int
	viewUsedPages int
	viewPrefill   int
	viewStep      float64
	waiters       []chan struct{}
	closed        bool
	// aborted records that Close threw away pending requests: drains
	// released by that path report ErrClosed, not success.
	aborted bool
	// failure, once non-nil, marks the engine failed: the step loop
	// panicked, the recover boundary terminated every in-flight stream
	// with an error token wrapping ErrEngineFailed, and all later Submits
	// and Drains report this error. A failed engine never un-fails; the
	// fleet layer quarantines it and routes around it.
	failure error

	wake chan struct{}
	done chan struct{}
}

// New starts an engine over the model. The model's weights are shared and
// immutable; multiple engines may run on one model. A SharedPrefix is
// prefilled here, before the engine accepts traffic.
func New(m *model.Model, cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	start := cfg.Epoch
	if start.IsZero() {
		start = time.Now()
	}
	e := &Engine{
		m:      m,
		pool:   core.NewWorkspacePool(m),
		cfg:    cfg,
		start:  start,
		sparse: m.SparseTopK() > 0,
		pageBudget: kvcache.ScaledPageBudget(
			cfg.KVPages, m.CacheShape(), cfg.PageTokens, cfg.KVQuantBits),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if n := len(cfg.SharedPrefix); n > 0 {
		prefixPages := kvcache.PagesFor(n, cfg.PageTokens)
		if e.pageBudget > 0 && prefixPages >= e.pageBudget {
			return nil, fmt.Errorf("%w: shared prefix needs %d pages, budget %d leaves no room for requests",
				kvcache.ErrOutOfPages, prefixPages, e.pageBudget)
		}
		cache := kvcache.NewPagedKVQuant(m.CacheShape(), cfg.PageTokens, e.pageBudget, cfg.KVQuantBits)
		if e.sparse {
			// Clones inherit the summaries, so every prefix-hit request
			// cache can serve sparse decode.
			cache.EnableKeySummaries()
		}
		// Construction-time prefill has no decode traffic to interleave
		// with, but the chunk plane's batched GEMMs still finish a long
		// prefix several times faster than token-at-a-time ForwardInto —
		// and warm the pooled batch workspace the loop will reuse.
		sb := e.pool.GetBatch()
		e.m.PrefillChunkInto(sb.Batch(), cfg.SharedPrefix, cfg.PrefillChunk, cache)
		e.pool.PutBatch(sb)
		e.prefixCache = cache
		e.usedPages = prefixPages
		e.viewUsedPages = prefixPages
		e.stats.PeakPages = prefixPages
	}
	go e.loop()
	return e, nil
}

// prefixLen returns the shared-prefix length a prompt can reuse: the full
// configured prefix when the prompt strictly extends it, else 0. The
// prompt must be strictly longer because the last prompt token's logits
// (not cached) decide the first output.
func (e *Engine) prefixLen(prompt []int) int {
	n := len(e.cfg.SharedPrefix)
	if e.prefixCache == nil || len(prompt) <= n {
		return 0
	}
	for i, tok := range e.cfg.SharedPrefix {
		if prompt[i] != tok {
			return 0
		}
	}
	return n
}

// privatePages returns the page charge a prompt of the given total length
// pays beyond what it shares with the prefix cache.
func (e *Engine) privatePages(promptLen, prefixLen int) int {
	pages := kvcache.PagesFor(promptLen, e.cfg.PageTokens)
	if prefixLen > 0 {
		pages -= prefixLen / e.cfg.PageTokens // full pages are shared
	}
	return pages
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// now returns seconds since engine start.
func (e *Engine) now() float64 { return time.Since(e.start).Seconds() }

// Submit enqueues a request and returns its token stream. The channel is
// buffered to the request's full token budget, so the engine never blocks
// on a slow consumer, and closes when the request completes, its ctx is
// cancelled, or the engine shuts down. Submit fails fast with
// kvcache.ErrOutOfPages when the request could never fit the page budget
// even running alone — the admission invariant that makes preemption
// livelock-free (any admitted request can always run to completion by
// itself).
func (e *Engine) Submit(ctx context.Context, req Request) (<-chan Token, error) {
	if len(req.Prompt) == 0 {
		return nil, fmt.Errorf("sched: empty prompt")
	}
	if req.MaxNew <= 0 {
		req.MaxNew = e.cfg.MaxNew
	}
	if !e.sparse {
		// Dense chunked prefill is bit-identical to decode; nothing to
		// replay.
		req.Replay = 0
	}
	if req.Replay < 0 || req.Replay >= len(req.Prompt) {
		return nil, fmt.Errorf("sched: replay %d out of range for prompt of %d", req.Replay, len(req.Prompt))
	}
	if e.pageBudget > 0 {
		budget := e.pageBudget
		if e.prefixCache != nil {
			budget -= kvcache.PagesFor(len(e.cfg.SharedPrefix), e.cfg.PageTokens)
		}
		need := e.privatePages(len(req.Prompt)+req.MaxNew, e.prefixLen(req.Prompt))
		if need > budget {
			return nil, fmt.Errorf("%w: request needs %d pages, budget %d", kvcache.ErrOutOfPages, need, budget)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if hook := e.cfg.SubmitHook; hook != nil {
		if err := hook(); err != nil {
			return nil, err
		}
	}
	if req.Arrival < 0 {
		// Stamp before enqueueing: time spent queued behind admission —
		// batch slots, page budget, the loop's own iterations — is
		// queueing delay the TTFT must include, not hide.
		req.Arrival = e.now()
	}
	if req.Deadline < 0 {
		// Explicitly no deadline: continuation re-admissions that already
		// emitted tokens use this to opt out of AdmissionTimeout stamping
		// (shedding a half-delivered stream would violate the TTFT
		// contract the deadline models).
		req.Deadline = 0
	} else if req.Deadline == 0 && e.cfg.AdmissionTimeout > 0 {
		req.Deadline = req.Arrival + e.cfg.AdmissionTimeout
	}
	// The channel is one slot larger than the token budget so a terminal
	// error token (shed, engine failure) always fits without blocking.
	rs := &reqState{
		req:      req,
		ctx:      ctx,
		ch:       make(chan Token, req.MaxNew+1),
		start:    -1,
		firstTok: -1,
	}
	e.mu.Lock()
	if e.failure != nil {
		e.mu.Unlock()
		return nil, e.failure
	}
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if queued := len(e.queue); e.cfg.MaxQueue > 0 && queued >= e.cfg.MaxQueue {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %d requests queued (bound %d)", ErrOverloaded, queued, e.cfg.MaxQueue)
	}
	// Wake the loop when the request's ctx is cancelled, so a queued
	// request's stream closes promptly even while admission is blocked.
	// Registered under mu: retirement (also under mu) must observe the
	// stop function, or the watcher would leak.
	rs.stopWatch = context.AfterFunc(ctx, e.kick)
	e.queue = append(e.queue, rs)
	e.pending++
	e.mu.Unlock()
	e.kick()
	return rs.ch, nil
}

// kick wakes the loop without blocking.
func (e *Engine) kick() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// Drain blocks until every request submitted so far has retired, or ctx is
// cancelled. Concurrent submits extend the drain. A drain released because
// Close aborted in-flight requests reports ErrClosed — nil strictly means
// everything submitted before the call ran to retirement.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if e.failure != nil {
		e.mu.Unlock()
		return e.failure
	}
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.pending == 0 {
		e.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	e.waiters = append(e.waiters, w)
	e.mu.Unlock()
	select {
	case <-w:
		e.mu.Lock()
		aborted, failure := e.aborted, e.failure
		e.mu.Unlock()
		if failure != nil {
			return failure
		}
		if aborted {
			return ErrClosed
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Now returns seconds since the engine epoch — the clock Request.Arrival
// and Request.Deadline are measured on. Callers use it to turn a relative
// TTFT budget into the absolute deadline Submit expects.
func (e *Engine) Now() float64 { return e.now() }

// Failed reports the engine's terminal failure (wrapping ErrEngineFailed),
// or nil while the engine is healthy. The fleet layer polls it to
// quarantine dead replicas and fail their requests over.
func (e *Engine) Failed() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failure
}

// Close shuts the engine down: queued and running requests have their
// streams closed without completing. Close is idempotent and returns after
// the loop goroutine exits.
func (e *Engine) Close() {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		e.kick()
	}
	<-e.done
}

// Outcomes returns the per-request records of every retired request so
// far, sorted by request ID — the same vocabulary the simulator emits.
func (e *Engine) Outcomes() []serving.Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := append([]serving.Outcome(nil), e.outcomes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Req.ID < out[j].Req.ID })
	return out
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Backlog returns the queued-plus-running token load (prompt + predicted
// remaining at admission), the router-visible pressure signal multi-engine
// serving feeds into GPUView.QueuedTokens.
func (e *Engine) Backlog() float64 { return e.View().BacklogTokens }

// View returns a point-in-time snapshot of the engine's router-visible
// state. Safe for concurrent use; loop-mirrored fields are at most one
// scheduling iteration stale.
func (e *Engine) View() View {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := View{
		Queued:        len(e.queue),
		Running:       e.viewRunning,
		BacklogTokens: e.runningLoad,
		UsedPages:     e.viewUsedPages,
		PageBudget:    e.pageBudget,
		PageTokens:    e.cfg.PageTokens,
		PrefillTokens: e.viewPrefill,
		StepSeconds:   e.viewStep,
	}
	for _, rs := range e.queue {
		v.BacklogTokens += float64(len(rs.req.Prompt) + rs.remaining())
	}
	return v
}

// syncViewLocked refreshes the View mirrors from loop-private state. The
// caller holds mu; the running set is at most MaxBatch entries, so the walk
// is cheap enough to run after every scheduling action.
func (e *Engine) syncViewLocked() {
	pf := 0
	for _, rs := range e.running {
		pf += len(rs.prompt) - rs.prefilled
	}
	e.viewPrefill = pf
	e.viewRunning = len(e.running)
	e.viewUsedPages = e.usedPages
}

// loop is the scheduler: admit, form the iteration batch, preempt under
// page pressure, step every running session one token, retire finishers.
//
// The loop runs behind a recover boundary — the panic-isolation half of
// the fault-tolerance story. A panic anywhere in the iteration (the fused
// compute plane, batch formation, an injected fault) is caught, the engine
// marked failed, and every in-flight stream terminated with an error token
// wrapping ErrEngineFailed instead of the panic unwinding into the process.
// The fleet layer observes the closure, quarantines the engine, and fails
// the requests over to healthy replicas via bit-identical replay. The
// boundary covers the compute plane, which runs outside the engine mutex;
// a panic raised while mu is held (plain counter bookkeeping) is outside
// the failure model and would still crash by design — recovery must never
// run against a lock whose critical section was abandoned halfway.
func (e *Engine) loop() {
	defer close(e.done)
	defer func() {
		if r := recover(); r != nil {
			e.fail(fmt.Errorf("%w: panic in scheduling iteration %d: %v", ErrEngineFailed, e.loopSteps, r))
		}
	}()
	for {
		e.mu.Lock()
		if e.closed {
			e.failLocked()
			e.mu.Unlock()
			return
		}
		e.admitLocked()
		if len(e.running) == 0 {
			wait := e.nextDeadlineWaitLocked()
			e.mu.Unlock()
			if wait >= 0 {
				// A queued request carries a TTFT deadline: sleep at most
				// until it expires so shedding is prompt even while nothing
				// is running (admission blocked on pages or batch slots).
				t := time.NewTimer(wait)
				select {
				case <-e.wake:
				case <-t.C:
				}
				t.Stop()
			} else {
				<-e.wake
			}
			continue
		}
		e.mu.Unlock()

		e.reapCancelled()
		e.preemptForStep()
		if len(e.running) == 0 {
			continue
		}
		e.stepOnce()
	}
}

// nextDeadlineWaitLocked returns how long the idle loop may sleep before
// the earliest queued TTFT deadline expires, or -1 when no queued request
// carries one. The caller holds mu.
func (e *Engine) nextDeadlineWaitLocked() time.Duration {
	wait := time.Duration(-1)
	now := e.now()
	for _, rs := range e.queue {
		if rs.req.Deadline <= 0 {
			continue
		}
		d := time.Duration((rs.req.Deadline - now) * float64(time.Second))
		if d < 0 {
			d = 0
		}
		if wait < 0 || d < wait {
			wait = d
		}
	}
	return wait
}

// fail is the recover boundary's landing: mark the engine failed and
// terminate every queued and running stream with an error token. It runs
// on the loop goroutine after the panic unwound it, so no scheduling can
// race it; Submit and Drain observe failure under mu.
func (e *Engine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failure = err
	for _, rs := range e.queue {
		e.failStreamLocked(rs, err)
	}
	e.queue = nil
	for _, rs := range e.running {
		rs.sess, rs.cache = nil, nil
		e.failStreamLocked(rs, err)
	}
	e.running = nil
	e.usedPages = 0
	if e.prefixCache != nil {
		e.usedPages = kvcache.PagesFor(len(e.cfg.SharedPrefix), e.cfg.PageTokens)
	}
	e.runningLoad = 0
	e.syncViewLocked()
	for _, w := range e.waiters {
		close(w)
	}
	e.waiters = nil
}

// failStreamLocked terminates one request's stream with an error token and
// drops it from the pending count. The caller holds mu. The channel always
// has room for the error token (it is sized MaxNew+1 and a live request
// has emitted at most MaxNew); the select guards the impossible case
// rather than deadlocking the recovery path on it.
func (e *Engine) failStreamLocked(rs *reqState, err error) {
	if rs.stopWatch != nil {
		rs.stopWatch()
	}
	select {
	case rs.ch <- Token{Err: err}:
	default:
	}
	close(rs.ch)
	e.pending--
}

// admitLocked moves queued requests into the running set, policy-ordered,
// while batch slots and prompt pages are available. Admission only
// allocates: it builds the request's cache (cold, or a copy-on-write clone
// of the shared prefix) and reserves its prompt pages. No forward pass runs
// under the lock — the prompt prefills chunk by chunk inside the iteration
// loop, interleaved with running decodes (stepOnce).
func (e *Engine) admitLocked() {
	// Reap cancelled and deadline-expired queued requests first: their
	// streams must close even when admission is blocked on batch slots or
	// pages — a blocked queue is exactly when deadlines blow.
	now := e.now()
	kept := e.queue[:0]
	for _, rs := range e.queue {
		if rs.ctx.Err() != nil {
			e.retireLocked(rs, dispCancelled)
			continue
		}
		if rs.req.Deadline > 0 && now > rs.req.Deadline {
			// Shed: the TTFT deadline passed before prefill could start, so
			// pages spent on this request would produce only SLO-blown
			// tokens. Terminate the stream with the typed error token. The
			// guarded send matches failStreamLocked: the buffer is sized
			// MaxNew+1 and a queued request has emitted at most MaxNew-1
			// tokens, so room is guaranteed — but a terminal send must never
			// be able to stall the engine loop under mu, so it does not rely
			// on that arithmetic.
			select {
			case rs.ch <- Token{Err: fmt.Errorf("%w: queued %.0fms past arrival (deadline %.0fms)",
				ErrDeadlineExceeded, 1e3*(now-rs.req.Arrival), 1e3*(rs.req.Deadline-rs.req.Arrival))}:
			default:
			}
			e.retireLocked(rs, dispShed)
			continue
		}
		kept = append(kept, rs)
	}
	e.queue = kept
	for len(e.running) < e.cfg.MaxBatch && len(e.queue) > 0 {
		i := e.pickLocked()
		rs := e.queue[i]
		if rs.ctx.Err() != nil {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.retireLocked(rs, dispCancelled)
			continue
		}
		prompt := rs.req.Prompt
		if len(rs.generated) > 0 { // recompute after preemption
			prompt = make([]int, 0, len(rs.req.Prompt)+len(rs.generated))
			prompt = append(prompt, rs.req.Prompt...)
			prompt = append(prompt, rs.generated...)
		}
		pl := e.prefixLen(prompt)
		replay := 0
		if e.sparse {
			replay = rs.req.Replay + len(rs.generated)
			if pl > len(prompt)-replay {
				// The prefix clone would stand in for decode-produced
				// tokens (possible when emitted tokens happen to match the
				// prefix continuation), but their KV must come from sparse
				// decode replay, not dense prefix prefill. Rebuild cold.
				pl = 0
			}
		}
		need := e.privatePages(len(prompt), pl)
		if len(prompt)%e.cfg.PageTokens == 0 {
			// The first decode step would open a page immediately;
			// reserve it now so admission cannot thrash (admit, prefill,
			// evict on the very next step, repeat).
			need++
		}
		if e.pageBudget > 0 && e.usedPages+need > e.pageBudget {
			break // head request waits for pages; keep order
		}
		e.queue = append(e.queue[:i], e.queue[i+1:]...)

		if rs.start < 0 {
			rs.start = e.now()
		}
		var cache *kvcache.PagedKV
		var err error
		if pl > 0 {
			// Prefix hit: start from a copy-on-write clone of the shared
			// prefix; only the tail needs prefilling — bit-identical to a
			// cold prefill, minus the recompute.
			cache = e.prefixCache.ClonePrefix()
			if err = cache.Reserve(len(prompt) - pl); err == nil {
				e.stats.PrefixHits++
				e.stats.PrefixTokensSaved += pl
			}
		} else {
			cache = kvcache.NewPagedKVQuant(e.m.CacheShape(), e.cfg.PageTokens, e.pageBudget, e.cfg.KVQuantBits)
			if e.sparse {
				cache.EnableKeySummaries()
			}
			err = cache.Reserve(len(prompt))
		}
		if err != nil {
			// Cannot happen for a validated request; retire defensively.
			e.retireLocked(rs, dispCancelled)
			continue
		}
		rs.sess, rs.cache = nil, cache
		rs.prompt, rs.prefilled = prompt, pl
		// Decode-produced prompt tokens (from a migration handoff plus any
		// locally emitted before this preemption) re-advance through sparse
		// decode steps, not dense prefill — see Request.Replay.
		rs.replay = replay
		rs.pages = need
		rs.reserved = len(prompt)%e.cfg.PageTokens == 0
		rs.load = float64(len(rs.req.Prompt) + rs.remaining())
		e.runningLoad += rs.load
		e.usedPages += need
		e.running = append(e.running, rs)
		e.stats.Admitted++
		if len(e.running) > e.stats.PeakRunning {
			e.stats.PeakRunning = len(e.running)
		}
		if e.usedPages > e.stats.PeakPages {
			e.stats.PeakPages = e.usedPages
		}
	}
	e.syncViewLocked()
}

// pickLocked returns the queue index to admit next under the policy.
func (e *Engine) pickLocked() int {
	best := 0
	for i := 1; i < len(e.queue); i++ {
		a, b := e.queue[i], e.queue[best]
		switch e.cfg.Policy {
		case PolicySJF:
			if a.remaining() < b.remaining() ||
				(a.remaining() == b.remaining() && a.req.Arrival < b.req.Arrival) {
				best = i
			}
		default: // FCFS
			if a.req.Arrival < b.req.Arrival ||
				(a.req.Arrival == b.req.Arrival && a.req.ID < b.req.ID) {
				best = i
			}
		}
	}
	return best
}

// preemptForStep ensures the pages this iteration will open fit the
// budget, evicting victims back to the queue (recompute on re-admission)
// until they do. The submit-time invariant guarantees a lone request
// always fits, so the loop terminates with at least one runner.
func (e *Engine) preemptForStep() {
	if e.pageBudget == 0 {
		return
	}
	for {
		needs := 0
		for _, rs := range e.running {
			// Mid-prefill requests open no pages this step: their whole
			// prompt was reserved at admission — as were a replaying
			// session's remaining prompt tokens.
			if rs.sess != nil && rs.replay == 0 && rs.sess.Pos()%e.cfg.PageTokens == 0 && !rs.reserved {
				needs++
			}
		}
		if e.usedPages+needs <= e.pageBudget || len(e.running) <= 1 {
			return
		}
		v := e.victim()
		rs := e.running[v]
		e.running = append(e.running[:v], e.running[v+1:]...)
		e.usedPages -= rs.pages
		rs.pages = 0
		// A victim caught mid-prefill recomputes from scratch on
		// re-admission, exactly like a preempted decoder: the cache is
		// dropped and admission rebuilds prompt+generated.
		midPrefill := rs.sess == nil
		rs.sess, rs.cache = nil, nil
		rs.prompt, rs.prefilled = nil, 0
		rs.preempts++
		// Offer the victim to the migration hook before requeueing it
		// locally: the fleet layer may re-admit it on a less loaded engine
		// instead (every emitted token is already in the buffered channel,
		// so the handoff serializes for free).
		migrated := e.cfg.Migrate != nil && e.cfg.Migrate(e.cfg.GPU, rs.req, len(rs.generated))
		e.mu.Lock()
		e.stats.Preemptions++
		if midPrefill {
			e.stats.PrefillPreempted++
		}
		e.runningLoad -= rs.load
		rs.load = 0
		if migrated {
			e.stats.MigratedOut++
			e.retireMigratedLocked(rs)
		} else {
			e.queue = append(e.queue, rs)
		}
		e.syncViewLocked()
		e.mu.Unlock()
	}
}

// victim picks the running index to evict: the newest arrival under FCFS
// (minimum lost work for the oldest requests), the longest predicted
// remainder under SJF.
func (e *Engine) victim() int {
	best := 0
	for i := 1; i < len(e.running); i++ {
		a, b := e.running[i], e.running[best]
		switch e.cfg.Policy {
		case PolicySJF:
			if a.remaining() > b.remaining() ||
				(a.remaining() == b.remaining() && a.req.Arrival > b.req.Arrival) {
				best = i
			}
		default:
			if a.req.Arrival > b.req.Arrival ||
				(a.req.Arrival == b.req.Arrival && a.req.ID > b.req.ID) {
				best = i
			}
		}
	}
	return best
}

// reapCancelled retires running requests whose context is done before
// spending another step on them.
func (e *Engine) reapCancelled() {
	kept := e.running[:0]
	reaped := false
	for _, rs := range e.running {
		if rs.ctx.Err() != nil {
			e.usedPages -= rs.pages
			rs.pages = 0
			rs.sess, rs.cache = nil, nil
			e.mu.Lock()
			e.runningLoad -= rs.load
			rs.load = 0
			e.retireLocked(rs, dispCancelled)
			e.mu.Unlock()
			reaped = true
			continue
		}
		kept = append(kept, rs)
	}
	e.running = kept
	if reaped {
		e.mu.Lock()
		e.syncViewLocked()
		e.mu.Unlock()
	}
}

// stepOnce runs one scheduling iteration: every prefill-complete session
// decodes one token, mid-prefill requests advance prompt chunks in the
// same fused weight pass (core.StepMixedInto), and finishers retire. In
// single-chunk mode (TokenBudget 0) only the oldest mid-prefill request
// contributes a chunk; with a TokenBudget the iteration packs chunks from
// every mid-prefill request, oldest first, until decode lanes + chunk
// tokens fill the budget. A request whose final chunk lands this iteration
// becomes a decode session for the next one — exactly the token stream an
// admission-time full prefill would have produced, without ever stalling
// the running batch for more than one budgeted pass's step time.
func (e *Engine) stepOnce() {
	e.loopSteps++
	if e.cfg.StepHook != nil {
		// Fault-injection seam: runs outside mu so an injected panic lands
		// on the recover boundary with no lock held, exactly like a panic
		// in the fused compute pass below.
		e.cfg.StepHook(e.loopSteps)
	}
	stepStart := time.Now()
	// Partition the running set: decode lanes step, mid-prefill requests
	// are packed below. Account pages the decode appends will open
	// (reserved first-step pages were charged at admission);
	// preemptForStep already made room. Prefill appends land in pages
	// reserved at admission, so packing more chunks opens no pages.
	e.stepSessions = e.stepSessions[:0]
	e.stepReqs = e.stepReqs[:0]
	e.chunks = e.chunks[:0]
	e.chunkReqs = e.chunkReqs[:0]
	for _, rs := range e.running {
		if rs.sess == nil {
			continue
		}
		e.stepReqs = append(e.stepReqs, rs)
		e.stepSessions = append(e.stepSessions, rs.sess)
		if rs.replay > 0 {
			// Replay steps append prompt tokens whose pages were reserved
			// at admission; the reserved first-generation page (if any)
			// stays held for the first post-replay step.
			continue
		}
		if rs.sess.Pos()%e.cfg.PageTokens == 0 {
			if rs.reserved {
				rs.reserved = false
				continue
			}
			e.usedPages++
			rs.pages++
		}
	}
	// Snapshot the page peak here (it only grows in this loop) and fold it
	// into the post-step critical section below: one lock round-trip per
	// iteration instead of a mid-loop lock just for PeakPages.
	peakPages := e.usedPages

	// Pack this iteration's prefill chunks, oldest admission first. With a
	// TokenBudget the pass carries chunks from every mid-prefill request
	// until decode lanes + chunk tokens reach the budget (the oldest
	// prompt always progresses by at least one token, even when decode
	// lanes alone exceed the budget); without one it carries at most one
	// chunk from the oldest, the pre-budget behaviour, exactly.
	budget := e.cfg.TokenBudget
	remaining := 0
	if budget > 0 {
		remaining = budget - len(e.stepSessions)
		if remaining < 1 {
			remaining = 1
		}
	}
	for _, rs := range e.running {
		if rs.sess != nil {
			continue
		}
		// Dense prefill stops short of the replay tail: those tokens
		// re-advance through decode steps once the session forms.
		end := len(rs.prompt) - rs.replay
		if rs.prefilled == end {
			// A prefix hit covered the whole dense span (possible only
			// with a replay tail): no chunk to run — the session starts
			// directly on the tail, whose first token is already known.
			rs.sess = core.NewPrefilledStepSession(e.m, rs.cache, rs.prompt[end])
			if budget == 0 {
				break // single-chunk mode examines only the oldest
			}
			continue
		}
		n := end - rs.prefilled
		if n > e.cfg.PrefillChunk {
			n = e.cfg.PrefillChunk
		}
		if budget > 0 && n > remaining {
			n = remaining
		}
		e.chunks = append(e.chunks, core.PrefillChunk{
			Tokens: rs.prompt[rs.prefilled : rs.prefilled+n],
			Cache:  rs.cache,
			// The final chunk's logits decide the next token — unless a
			// replay tail follows, in which case the next token is a known
			// prompt token and the chunk's logits pass is skipped.
			Final: rs.prefilled+n == end && rs.replay == 0,
		})
		e.chunkReqs = append(e.chunkReqs, rs)
		if budget == 0 {
			break
		}
		remaining -= n
		if remaining <= 0 {
			break
		}
	}
	if cap(e.stepToks) < len(e.stepSessions) {
		e.stepToks = make([]int, len(e.stepSessions))
	}
	toks := e.stepToks[:len(e.stepSessions)]
	if cap(e.chunkNexts) < len(e.chunks) {
		e.chunkNexts = make([]int, len(e.chunks))
	}
	nexts := e.chunkNexts[:len(e.chunks)]
	var stepStats core.StepStats
	core.StepMixedStatsInto(e.pool, e.stepSessions, toks, e.chunks, nexts, &stepStats)
	chunkToks := 0
	for i, rs := range e.chunkReqs {
		ch := &e.chunks[i]
		chunkToks += len(ch.Tokens)
		rs.prefilled += len(ch.Tokens)
		if ch.Final {
			rs.sess = core.NewPrefilledStepSession(e.m, rs.cache, nexts[i])
		} else if rs.prefilled == len(rs.prompt)-rs.replay {
			// Dense span complete, replay tail ahead: seed the session
			// with the tail's (known) first token.
			rs.sess = core.NewPrefilledStepSession(e.m, rs.cache, rs.prompt[rs.prefilled])
		}
		e.chunks[i] = core.PrefillChunk{} // drop the cache reference
	}
	now := e.now()

	e.mu.Lock()
	e.stats.Steps++
	if peakPages > e.stats.PeakPages {
		e.stats.PeakPages = peakPages
	}
	e.stats.SparsePagesSelected += stepStats.SparsePagesSelected
	e.stats.SparsePagesTotal += stepStats.SparsePagesTotal
	e.stats.PrefillChunks += len(e.chunkReqs)
	if len(e.chunkReqs) > 1 {
		e.stats.PackedChunks += len(e.chunkReqs)
	}
	if len(e.chunkReqs) > 0 && len(e.stepReqs) > 0 {
		e.stats.MixedSteps++
	}
	e.stats.BudgetTokens += len(e.stepReqs) + chunkToks
	retired := false
	for i, rs := range e.stepReqs {
		if rs.replay > 0 {
			// A replay step re-advanced an already-emitted token: it is in
			// rs.prompt (and, for a local preemption, rs.generated and the
			// buffered channel) already — record the prompt token as cached
			// and emit nothing.
			rs.replay--
			rs.prefilled++
			continue
		}
		rs.generated = append(rs.generated, toks[i])
		if rs.firstTok < 0 {
			rs.firstTok = now
		}
		// Data-token send, deliberately unguarded: the buffer is sized
		// MaxNew+1 at Submit and a request retires at MaxNew generated
		// tokens, so at most MaxNew data tokens ever land here and room is
		// structurally guaranteed even when the caller abandoned the
		// stream. Dropping a data token (as a guarded send would under a
		// sizing bug) silently corrupts the stream; blocking here would
		// instead deadlock loudly, which is the failure mode we want for
		// an invariant break. Terminal error sends — which have no such
		// per-stream budget argument — are all guarded selects
		// (failStreamLocked, the deadline-shed path in admitLocked).
		rs.ch <- Token{ID: toks[i], Pos: len(rs.req.Prompt) + len(rs.generated) - 1}
		if len(rs.generated) >= rs.req.MaxNew {
			e.usedPages -= rs.pages
			rs.pages = 0
			rs.sess, rs.cache = nil, nil
			e.runningLoad -= rs.load
			rs.load = 0
			e.retireLocked(rs, dispCompleted)
			rs.retired = true
			retired = true
		}
	}
	if retired {
		kept := e.running[:0]
		for _, rs := range e.running {
			if rs.retired {
				rs.retired = false
				continue
			}
			kept = append(kept, rs)
		}
		e.running = kept
	}
	// Fold this iteration's wall time into the live step-cost EWMA the
	// fleet's view sampler exposes (View.StepSeconds).
	if dur := time.Since(stepStart).Seconds(); e.viewStep == 0 {
		e.viewStep = dur
	} else {
		e.viewStep = 0.8*e.viewStep + 0.2*dur
	}
	e.syncViewLocked()
	e.mu.Unlock()
	// Drop session and request references so a retired request's KV cache
	// is not pinned by the reused scratch until the next iteration (the
	// chunk entries were zeroed above, right after the fused pass).
	for i := range e.stepSessions {
		e.stepSessions[i] = nil
	}
	for i := range e.stepReqs {
		e.stepReqs[i] = nil
	}
	for i := range e.chunkReqs {
		e.chunkReqs[i] = nil
	}
}

// disposition names why a request retired — the counter it lands in.
type disposition int

const (
	dispCompleted disposition = iota // ran to its token cap
	dispCancelled                    // caller's ctx ended it
	dispShed                         // dropped past its TTFT deadline
)

// retireLocked closes a request's stream and records its outcome. The
// caller holds mu, has already released the request's pages, and — for a
// shed request — has already sent the terminal error token.
func (e *Engine) retireLocked(rs *reqState, disp disposition) {
	if rs.stopWatch != nil {
		rs.stopWatch()
	}
	close(rs.ch)
	now := e.now()
	first := rs.firstTok
	if first < 0 {
		first = now
	}
	start := rs.start
	if start < 0 {
		start = now
	}
	e.outcomes = append(e.outcomes, serving.Outcome{
		Req: workload.Request{
			ID:          rs.req.ID,
			PromptLen:   len(rs.req.Prompt),
			RefLen:      rs.req.Predicted,
			ArrivalTime: rs.req.Arrival,
		},
		GPU:         e.cfg.GPU,
		RespLen:     len(rs.generated),
		Start:       start,
		FirstToken:  first,
		Finish:      now,
		Preemptions: rs.preempts,
	})
	switch disp {
	case dispCompleted:
		e.stats.Completed++
	case dispShed:
		e.stats.Shed++
	default:
		e.stats.Cancelled++
	}
	e.pending--
	if e.pending == 0 {
		for _, w := range e.waiters {
			close(w)
		}
		e.waiters = nil
	}
}

// retireMigratedLocked retires a preemption victim the Migrate hook
// accepted: its stream closes (the migration layer resubmits the serialized
// request elsewhere and keeps the caller-facing stream open), no outcome is
// recorded here — the migration layer owns the request's end-to-end record
// — and the drain count drops. The caller holds mu and has already released
// the victim's pages and load.
func (e *Engine) retireMigratedLocked(rs *reqState) {
	if rs.stopWatch != nil {
		rs.stopWatch()
	}
	close(rs.ch)
	e.pending--
	if e.pending == 0 {
		for _, w := range e.waiters {
			close(w)
		}
		e.waiters = nil
	}
}

// failLocked aborts everything at Close: streams close, no outcomes are
// recorded for unfinished work, and drain waiters are released (reporting
// ErrClosed via the aborted flag when work was thrown away).
func (e *Engine) failLocked() {
	if len(e.queue) > 0 || len(e.running) > 0 {
		e.aborted = true
	}
	for _, rs := range e.queue {
		if rs.stopWatch != nil {
			rs.stopWatch()
		}
		close(rs.ch)
		e.pending--
	}
	e.queue = nil
	for _, rs := range e.running {
		if rs.stopWatch != nil {
			rs.stopWatch()
		}
		close(rs.ch)
		rs.sess, rs.cache = nil, nil
		e.pending--
	}
	e.running = nil
	e.usedPages = 0
	if e.prefixCache != nil {
		e.usedPages = kvcache.PagesFor(len(e.cfg.SharedPrefix), e.cfg.PageTokens)
	}
	e.runningLoad = 0
	e.syncViewLocked()
	for _, w := range e.waiters {
		close(w)
	}
	e.waiters = nil
}
