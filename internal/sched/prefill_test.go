package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"rethinkkv/internal/core"
	"rethinkkv/internal/model"
)

// TestChunkedPrefillMatchesSequential is the interleaving acceptance gate:
// prompts long enough to span many chunks, served while other requests
// decode, must emit per-request token streams bit-identical to sequential
// decoding — across chunk sizes including 1 (token-at-a-time through the
// fused plane) and a non-divisor of the prompt lengths.
func TestChunkedPrefillMatchesSequential(t *testing.T) {
	long := make([]int, 100)
	for i := range long {
		long[i] = (i*37 + 3) % 512
	}
	prompts := append(testPrompts(), long)
	const maxNew = 12
	want := sequentialReference(t, prompts, maxNew)

	for _, chunkSize := range []int{1, 7, 32} {
		got, e := runEngine(t, Config{MaxBatch: 3, PageTokens: 8, PrefillChunk: chunkSize}, prompts, maxNew)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("chunk=%d request %d: %d tokens, want %d", chunkSize, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("chunk=%d request %d token %d: %d != sequential %d", chunkSize, i, j, got[i][j], want[i][j])
				}
			}
		}
		st := e.Stats()
		if min := (len(long) + chunkSize - 1) / chunkSize; st.PrefillChunks < min {
			t.Fatalf("chunk=%d: PrefillChunks = %d, want >= %d", chunkSize, st.PrefillChunks, min)
		}
		if st.MixedSteps == 0 {
			t.Fatalf("chunk=%d: no iteration ever carried decode and prefill together", chunkSize)
		}
	}
}

// TestInterleavedPrefillKeepsDecodeFlowing pins the property the chunk
// plane exists for: while a 512-token prompt prefills, already-running
// decode streams keep emitting tokens — one per scheduling iteration — so
// the long arrival never stalls them for a whole prompt's forward cost.
// Counted structurally (tokens emitted during the prefill window), not by
// wall-clock, so the test is load-insensitive.
func TestInterleavedPrefillKeepsDecodeFlowing(t *testing.T) {
	const chunk = 16
	const decoders = 4
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{MaxBatch: decoders + 1, PageTokens: 16, PrefillChunk: chunk})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Start the decoders and count their deliveries as they stream.
	counts := make([]atomic.Int64, decoders)
	done := make(chan struct{}, decoders)
	for i := 0; i < decoders; i++ {
		ch, err := e.Submit(context.Background(), Request{
			ID: i, Prompt: []int{i + 1, i + 2, i + 3}, MaxNew: 400, Arrival: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, ch <-chan Token) {
			for range ch {
				counts[i].Add(1)
			}
			done <- struct{}{}
		}(i, ch)
	}
	// Wait until every decoder has produced at least one token.
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; i < decoders; i++ {
		for counts[i].Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("decoders never started")
			}
			time.Sleep(time.Millisecond)
		}
	}

	longPrompt := make([]int, 512)
	for i := range longPrompt {
		longPrompt[i] = (i*13 + 7) % 512
	}
	before := make([]int64, decoders)
	for i := range before {
		before[i] = counts[i].Load()
	}
	longCh, err := e.Submit(context.Background(), Request{ID: 99, Prompt: longPrompt, MaxNew: 4, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The long prompt's first token marks the end of its prefill window:
	// 512/16 = 32 chunk iterations, each of which must also have advanced
	// every live decoder.
	select {
	case <-longCh:
	case <-time.After(30 * time.Second):
		t.Fatal("long prompt produced no token")
	}
	for i := 0; i < decoders; i++ {
		if delta := counts[i].Load() - before[i]; delta < 16 {
			t.Fatalf("decoder %d emitted only %d tokens while the 512-token prompt prefilled (32 chunks); it stalled", i, delta)
		}
	}
	st := e.Stats()
	if min := len(longPrompt) / chunk; st.PrefillChunks < min {
		t.Fatalf("PrefillChunks = %d, want >= %d", st.PrefillChunks, min)
	}
	if st.MixedSteps < 16 {
		t.Fatalf("MixedSteps = %d: prefill barely interleaved with decode", st.MixedSteps)
	}
	// Let the run wind down cleanly (streams are buffered; Close would
	// truncate them and fail the drain).
	for range longCh {
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < decoders; i++ {
		<-done
	}
}

// TestPreemptionMidPrefillRecomputes forces the page budget to evict a
// request in the middle of its chunked prefill and checks the recompute:
// the victim's eventual stream must still be bit-identical to sequential
// decoding, and the engine must report a mid-prefill preemption.
func TestPreemptionMidPrefillRecomputes(t *testing.T) {
	short := []int{1, 2}
	long := make([]int, 30)
	for i := range long {
		long[i] = (i*11 + 5) % 512
	}
	prompts := [][]int{short, long}

	// Sequential references at each request's own cap.
	p, err := core.NewPipeline("fp16", seed)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	maxNews := []int{10, 4}
	for i, prompt := range prompts {
		toks, _, err := p.Run(prompt, maxNews[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toks
	}

	// Budget arithmetic (PageTokens=4, KVPages=9): the short request's
	// prompt takes 1 page, the long prompt needs 8, so both admit
	// (1+8 = 9). The long prompt needs ceil(30/4) = 8 chunk iterations at
	// PrefillChunk=4; the short decoder opens its second page at position
	// 4 — a handful of iterations in, while the long request is still
	// mid-prefill — which overflows the budget and evicts the newest
	// arrival (FCFS): the long, still-prefilling request.
	m := model.New(model.Tiny(), seed)
	e, err := New(m, Config{MaxBatch: 2, PageTokens: 4, KVPages: 9, PrefillChunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	chans := make([]<-chan Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := e.Submit(context.Background(), Request{ID: i, Prompt: prompt, MaxNew: maxNews[i], Arrival: -1})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != sequential %d (after mid-prefill preemption)", i, j, got[i][j], want[i][j])
			}
		}
	}
	st := e.Stats()
	if st.Preemptions == 0 {
		t.Fatal("budget never forced a preemption; test is vacuous")
	}
	if st.PrefillPreempted == 0 {
		t.Fatal("no preemption landed mid-prefill; test is vacuous")
	}
	if st.PeakPages > 9 {
		t.Fatalf("PeakPages %d exceeded budget", st.PeakPages)
	}
}

// TestNegativePrefillChunkRejected covers config validation.
func TestNegativePrefillChunkRejected(t *testing.T) {
	m := model.New(model.Tiny(), seed)
	if _, err := New(m, Config{PrefillChunk: -1}); err == nil {
		t.Fatal("negative prefill chunk accepted")
	}
}
