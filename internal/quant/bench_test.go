package quant

import (
	"fmt"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
)

func benchVecs(n, d int) [][]float32 {
	r := rng.New(1)
	out := make([][]float32, n)
	for i := range out {
		out[i] = randVec(r, d)
	}
	return out
}

func BenchmarkUniformQuantize(b *testing.B) {
	r := rng.New(1)
	xs := randVec(r, 4096)
	for _, bits := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			u := Uniform{Bits: bits}
			for i := 0; i < b.N; i++ {
				u.Quantize(xs)
			}
		})
	}
}

func BenchmarkGroupQuantize(b *testing.B) {
	vecs := benchVecs(32, 128)
	for _, gran := range []Granularity{PerToken, PerChannel} {
		b.Run(gran.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				QuantizeGroup(vecs, gran, 4)
			}
		})
	}
}

func BenchmarkGEARCompressBlock(b *testing.B) {
	vecs := benchVecs(32, 128)
	cfg := DefaultGEAR(4)
	for i := 0; i < b.N; i++ {
		compressGear(vecs, cfg)
	}
}

// Ablation 2 (DESIGN.md): KIVI residual-window length — accuracy (bit-exact
// recent window) vs memory, at constant bits.
func BenchmarkKIVIResidualWindow(b *testing.B) {
	shape := kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 64}
	for _, residual := range []int{0, 32, 128} {
		b.Run(fmt.Sprintf("residual=%d", residual), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := NewKIVI(shape, KIVIConfig{Bits: 4, GroupSize: 32, Residual: residual})
				appendRandom(c, 256, 1)
				b.ReportMetric(float64(c.MemoryBytes()), "cache-bytes")
			}
		})
	}
}

func BenchmarkKIVISeqDequant(b *testing.B) {
	c := NewKIVI(kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 64}, DefaultKIVI(4))
	appendRandom(c, 512, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Seq(0, 0)
	}
}
