package quant

import (
	"math"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/tensor"
)

func TestQJLInnerProductEstimate(t *testing.T) {
	// The reconstruction k̂ must estimate <q, k> unbiasedly: average the
	// estimate over many random (q, k) pairs and compare relative error.
	shape := kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 16}
	cfg := QJLConfig{SketchDim: 256, Bits: 8, Seed: 3}
	c := NewQJL(shape, cfg)
	r := rng.New(5)
	var relErrSum float64
	const trials = 60
	for i := 0; i < trials; i++ {
		k := randVec(r, 16)
		q := randVec(r, 16)
		c.streams[0][0].entries = nil
		c.Append(0, [][]float32{k}, [][]float32{k})
		keys, _ := c.Seq(0, 0)
		est := float64(tensor.Dot(q, keys[0]))
		truth := float64(tensor.Dot(q, k))
		if math.Abs(truth) > 0.5 {
			relErrSum += math.Abs(est-truth) / math.Abs(truth)
		}
	}
	if avg := relErrSum / trials; avg > 0.6 {
		t.Fatalf("QJL mean relative error %v too high for sketch 256", avg)
	}
}

func TestQJLSketchDimImprovesEstimate(t *testing.T) {
	shape := kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 16}
	r := rng.New(6)
	measure := func(m int) float64 {
		c := NewQJL(shape, QJLConfig{SketchDim: m, Bits: 8, Seed: 3})
		var errSum float64
		for i := 0; i < 80; i++ {
			k := randVec(r, 16)
			q := randVec(r, 16)
			c.streams[0][0].entries = nil
			c.Append(0, [][]float32{k}, [][]float32{k})
			keys, _ := c.Seq(0, 0)
			errSum += math.Abs(float64(tensor.Dot(q, keys[0]) - tensor.Dot(q, k)))
		}
		return errSum
	}
	small := measure(16)
	large := measure(512)
	if large >= small {
		t.Fatalf("larger sketch should estimate better: m=16 err %v vs m=512 err %v", small, large)
	}
}

func TestQJLMemoryBelowFP16(t *testing.T) {
	shape := kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 16}
	c := NewQJL(shape, DefaultQJL(16))
	appendRandom(c, 100, 7)
	if c.MemoryBytes() >= kvcache.FP16Bytes(shape, 100) {
		t.Fatalf("QJL bytes %d should undercut FP16 %d", c.MemoryBytes(), kvcache.FP16Bytes(shape, 100))
	}
	if c.CompressionRatio() <= 1.5 {
		t.Fatalf("QJL ratio %v too low", c.CompressionRatio())
	}
	if c.Len(0, 0) != 100 || c.TotalAppended() != 100 {
		t.Fatal("QJL must retain all tokens")
	}
	if p := c.Positions(1, 1); len(p) != 100 || p[99] != 99 {
		t.Fatal("positions wrong")
	}
}

func TestIntactPivotsExact(t *testing.T) {
	shape := cacheShape()
	c := NewIntact(shape, IntactConfig{Bits: 2, Pivots: 3})
	hist := appendRandom(c, 10, 8)
	keys, vals := c.Seq(0, 0)
	// First 3 tokens bit-exact.
	for i := 0; i < 3; i++ {
		if maxAbsDiff(keys[i], hist[i][0]) != 0 || maxAbsDiff(vals[i], hist[i][1]) != 0 {
			t.Fatalf("pivot %d not exact", i)
		}
	}
	// Later tokens lossy at 2 bits.
	var worst float64
	for i := 3; i < 10; i++ {
		worst = math.Max(worst, maxAbsDiff(keys[i], hist[i][0]))
	}
	if worst == 0 {
		t.Fatal("non-pivot tokens unexpectedly lossless")
	}
}

func TestIntactMemoryBetweenFullAndQuant(t *testing.T) {
	shape := cacheShape()
	intact := NewIntact(shape, IntactConfig{Bits: 4, Pivots: 4})
	appendRandom(intact, 50, 9)
	full := kvcache.FP16Bytes(shape, 50)
	if intact.MemoryBytes() >= full {
		t.Fatal("IntactKV should compress overall")
	}
}

func TestIntactValidation(t *testing.T) {
	if err := (IntactConfig{Bits: 0, Pivots: 1}).Validate(); err == nil {
		t.Fatal("expected bits error")
	}
	if err := DefaultIntact(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMiKVPrecisionFollowsImportance(t *testing.T) {
	shape := kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 8}
	cfg := MiKVConfig{HighBits: 8, LowBits: 2, HighFrac: 0.25, Rebalance: 4}
	c := NewMiKV(shape, cfg)
	r := rng.New(10)
	// Append 8 tokens, observing high attention on token 2 each step.
	for i := 0; i < 8; i++ {
		k := [][]float32{randVec(r, 8)}
		c.Append(0, k, k)
		n := c.Len(0, 0)
		w := make([]float32, n)
		if n > 2 {
			w[2] = 0.9
		}
		c.ObserveAttention(0, 0, w)
	}
	// After rebalancing, token 2 must hold high-bit codes.
	if c.streams[0][0][2].bits != 8 {
		t.Fatalf("important token at %d bits", c.streams[0][0][2].bits)
	}
	frac := c.HighPrecisionFraction()
	if frac <= 0 || frac > 0.5 {
		t.Fatalf("high-precision fraction %v outside expectation", frac)
	}
	if c.Scoreless() {
		t.Fatal("MiKV consumes scores")
	}
}

// ScoreLess helper for the test above.
func (c *MiKVCache) Scoreless() bool { return c.scorePasses == 0 }

func TestMiKVReconstructionBetterOnImportantTokens(t *testing.T) {
	shape := kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 8}
	c := NewMiKV(shape, MiKVConfig{HighBits: 8, LowBits: 2, HighFrac: 0.2, Rebalance: 2})
	r := rng.New(11)
	var hist [][]float32
	for i := 0; i < 10; i++ {
		k := randVec(r, 8)
		hist = append(hist, append([]float32(nil), k...))
		c.Append(0, [][]float32{k}, [][]float32{k})
		n := c.Len(0, 0)
		w := make([]float32, n)
		w[0] = 0.9 // token 0 is always important
		c.ObserveAttention(0, 0, w)
	}
	keys, _ := c.Seq(0, 0)
	errImportant := maxAbsDiff(keys[0], hist[0])
	var errRest float64
	for i := 5; i < 10; i++ {
		errRest = math.Max(errRest, maxAbsDiff(keys[i], hist[i]))
	}
	if errImportant >= errRest {
		t.Fatalf("important token error %v should undercut others %v", errImportant, errRest)
	}
}

func TestMiKVValidation(t *testing.T) {
	bad := []MiKVConfig{
		{HighBits: 2, LowBits: 4, HighFrac: 0.2, Rebalance: 8}, // high <= low
		{HighBits: 8, LowBits: 2, HighFrac: 0, Rebalance: 8},
		{HighBits: 8, LowBits: 2, HighFrac: 0.2, Rebalance: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if err := DefaultMiKV().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantInterfaceCompliance(t *testing.T) {
	shape := cacheShape()
	var _ kvcache.Cache = NewQJL(shape, DefaultQJL(shape.HeadDim))
	var _ kvcache.Cache = NewIntact(shape, DefaultIntact(4))
	var c kvcache.Cache = NewMiKV(shape, DefaultMiKV())
	if _, ok := c.(kvcache.AttentionObserver); !ok {
		t.Fatal("MiKV must observe attention")
	}
}
