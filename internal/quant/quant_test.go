package quant

import (
	"math"
	"testing"
	"testing/quick"

	"rethinkkv/internal/rng"
)

func randVec(r *rng.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

func TestUniformRoundTripBound(t *testing.T) {
	r := rng.New(1)
	for _, bits := range []int{2, 4, 8} {
		u := Uniform{Bits: bits}
		xs := randVec(r, 256)
		q := u.Quantize(xs)
		rec := q.Dequantize(nil)
		bound := q.MaxAbsError() + 1e-6
		for i := range xs {
			if math.Abs(float64(xs[i]-rec[i])) > bound {
				t.Fatalf("bits=%d: |err| %v exceeds Δ/2 %v", bits, math.Abs(float64(xs[i]-rec[i])), bound)
			}
		}
	}
}

func TestUniformMoreBitsLessError(t *testing.T) {
	r := rng.New(2)
	xs := randVec(r, 512)
	mse2 := MSE(xs, Uniform{Bits: 2}.Quantize(xs))
	mse4 := MSE(xs, Uniform{Bits: 4}.Quantize(xs))
	mse8 := MSE(xs, Uniform{Bits: 8}.Quantize(xs))
	if !(mse2 > mse4 && mse4 > mse8) {
		t.Fatalf("MSE not decreasing with bits: %v, %v, %v", mse2, mse4, mse8)
	}
}

func TestUniformConstantVectorExact(t *testing.T) {
	xs := []float32{3.5, 3.5, 3.5}
	q := Uniform{Bits: 2}.Quantize(xs)
	rec := q.Dequantize(nil)
	for _, v := range rec {
		if v != 3.5 {
			t.Fatalf("constant vector not exact: %v", rec)
		}
	}
}

func TestUniformExtremesPreserved(t *testing.T) {
	xs := []float32{-7, 0, 7}
	q := Uniform{Bits: 4}.Quantize(xs)
	rec := q.Dequantize(nil)
	if math.Abs(float64(rec[0]+7)) > 1e-5 || math.Abs(float64(rec[2]-7)) > 1e-5 {
		t.Fatalf("min/max not preserved: %v", rec)
	}
}

func TestUniformPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Uniform{Bits: 9}.Quantize([]float32{1})
}

func TestQuickUniformErrorBound(t *testing.T) {
	f := func(seed uint64, rawBits uint8) bool {
		bits := int(rawBits)%8 + 1
		r := rng.New(seed)
		xs := randVec(r, 64)
		q := Uniform{Bits: bits}.Quantize(xs)
		rec := q.Dequantize(nil)
		for i := range xs {
			if math.Abs(float64(xs[i]-rec[i])) > q.MaxAbsError()+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupQuantizeGranularities(t *testing.T) {
	r := rng.New(3)
	vecs := make([][]float32, 8)
	for i := range vecs {
		vecs[i] = randVec(r, 16)
	}
	for _, gran := range []Granularity{PerToken, PerChannel} {
		g := QuantizeGroup(vecs, gran, 4)
		rec := g.Dequantize()
		if len(rec) != 8 || len(rec[0]) != 16 {
			t.Fatalf("%v: bad shape", gran)
		}
		if mse := GroupMSE(vecs, g); mse > 0.05 {
			t.Fatalf("%v: mse %v too high", gran, mse)
		}
	}
}

func TestPerChannelBeatsPerTokenOnChannelOutliers(t *testing.T) {
	// Key tensors have channel-aligned outliers; per-channel quantisation
	// isolates them — this is KIVI's core design claim.
	r := rng.New(4)
	vecs := make([][]float32, 16)
	for i := range vecs {
		vecs[i] = randVec(r, 16)
		vecs[i][3] = vecs[i][3]*0.1 + 40 // channel 3 carries a large offset
	}
	mseTok := GroupMSE(vecs, QuantizeGroup(vecs, PerToken, 2))
	mseCh := GroupMSE(vecs, QuantizeGroup(vecs, PerChannel, 2))
	if mseCh >= mseTok {
		t.Fatalf("per-channel mse %v should beat per-token %v on channel outliers", mseCh, mseTok)
	}
}

func TestGranularityString(t *testing.T) {
	if PerToken.String() != "per-token" || PerChannel.String() != "per-channel" {
		t.Fatal("granularity names wrong")
	}
	if Granularity(9).String() == "" {
		t.Fatal("unknown granularity should still print")
	}
}

func TestStorageBitsAccounting(t *testing.T) {
	xs := make([]float32, 100)
	q := Uniform{Bits: 4}.Quantize(xs)
	if got := q.StorageBits(4); got != 100*4+32 {
		t.Fatalf("storage bits = %d", got)
	}
	r := rng.New(5)
	vecs := [][]float32{randVec(r, 8), randVec(r, 8)}
	g := QuantizeGroup(vecs, PerToken, 2)
	if got := g.StorageBits(); got != 2*(8*2+32) {
		t.Fatalf("group storage bits = %d", got)
	}
}
