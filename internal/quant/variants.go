package quant

import (
	"fmt"
	"math"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
)

// This file implements three further surveyed quantisation algorithms
// (paper Table 1):
//
//   - QJL (Zandieh et al., 2024): keys are sketched with a random
//     Johnson-Lindenstrauss projection followed by 1-bit (sign)
//     quantisation; the inner product <q, k> is estimated from the sketch
//     as ||k|| · (√(π/2)/m) · <Rq, sign(Rk)>, eliminating per-group
//     quantisation constants entirely. Values are quantised per token.
//   - IntactKV (Liu et al., 2024): pivot tokens (the first tokens, whose
//     keys are extreme outliers in LLaMA-family models) are kept in full
//     precision; all other tokens quantise per token.
//   - MiKV (Yang et al., 2024): importance-aware mixed precision — tokens
//     with high accumulated attention keep high-bit codes, the rest drop
//     to low-bit codes, trading accuracy for memory where it matters least.

// QJLConfig parameterises the QJL cache.
type QJLConfig struct {
	// SketchDim is the JL sketch dimension m (larger = more accurate).
	SketchDim int
	// Bits is the per-token quantisation width for values.
	Bits int
	Seed uint64
}

// DefaultQJL returns a QJL configuration with a 2×head-dim sketch.
func DefaultQJL(headDim int) QJLConfig {
	return QJLConfig{SketchDim: 2 * headDim, Bits: 4, Seed: 0x51}
}

// Validate reports configuration errors.
func (c QJLConfig) Validate() error {
	if c.SketchDim <= 0 {
		return fmt.Errorf("quant: QJL sketch dim %d", c.SketchDim)
	}
	if c.Bits < 1 || c.Bits > 8 {
		return fmt.Errorf("quant: QJL bits %d", c.Bits)
	}
	return nil
}

// qjlEntry is one sketched key plus its quantised value.
type qjlEntry struct {
	signs []uint8 // packed sign bits of Rk, one byte per sketch coord (unpacked for clarity)
	norm  float32 // ||k||
	val   Quantized
}

// qjlStream is the per-(layer, head) state.
type qjlStream struct {
	entries []qjlEntry
}

// QJLCache implements kvcache.Cache with QJL key sketching. Seq returns
// *reconstructed* keys k̂ = √(π/2)/m · ||k|| · Rᵀ sign(Rk), which satisfy
// E[<q, k̂>] = <q, k> — the attention scores the model computes on the
// reconstruction are the QJL estimates.
type QJLCache struct {
	cfg      QJLConfig
	shape    kvcache.Shape
	proj     [][]float32 // SketchDim × HeadDim Gaussian projection
	streams  [][]*qjlStream
	appended int
}

// NewQJL builds an empty QJL cache with a deterministic projection.
func NewQJL(shape kvcache.Shape, cfg QJLConfig) *QJLCache {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rng.New(cfg.Seed)
	proj := make([][]float32, cfg.SketchDim)
	for i := range proj {
		proj[i] = make([]float32, shape.HeadDim)
		for j := range proj[i] {
			proj[i][j] = float32(r.NormFloat64())
		}
	}
	c := &QJLCache{cfg: cfg, shape: shape, proj: proj}
	c.streams = make([][]*qjlStream, shape.Layers)
	for l := range c.streams {
		c.streams[l] = make([]*qjlStream, shape.KVHeads)
		for h := range c.streams[l] {
			c.streams[l][h] = &qjlStream{}
		}
	}
	return c
}

// Shape returns the cache dimensions.
func (c *QJLCache) Shape() kvcache.Shape { return c.shape }

// Append sketches the key and quantises the value.
func (c *QJLCache) Append(layer int, k, v [][]float32) {
	u := Uniform{Bits: c.cfg.Bits}
	for h := 0; h < c.shape.KVHeads; h++ {
		var norm float64
		for _, x := range k[h] {
			norm += float64(x) * float64(x)
		}
		e := qjlEntry{
			signs: make([]uint8, c.cfg.SketchDim),
			norm:  float32(math.Sqrt(norm)),
			val:   u.Quantize(v[h]),
		}
		for i, row := range c.proj {
			var dot float32
			for j, x := range k[h] {
				dot += row[j] * x
			}
			if dot >= 0 {
				e.signs[i] = 1
			}
		}
		c.streams[layer][h].entries = append(c.streams[layer][h].entries, e)
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// Seq reconstructs keys from sketches and dequantises values.
func (c *QJLCache) Seq(layer, head int) (keys, values [][]float32) {
	s := c.streams[layer][head]
	m := float64(c.cfg.SketchDim)
	scale := math.Sqrt(math.Pi/2) / m
	for _, e := range s.entries {
		k := make([]float32, c.shape.HeadDim)
		for i, row := range c.proj {
			sgn := float32(-1)
			if e.signs[i] == 1 {
				sgn = 1
			}
			for j := range k {
				k[j] += sgn * row[j]
			}
		}
		f := float32(scale) * e.norm
		for j := range k {
			k[j] *= f
		}
		keys = append(keys, k)
		values = append(values, e.val.Dequantize(nil))
	}
	return keys, values
}

// Positions returns 0..n-1: QJL retains every token.
func (c *QJLCache) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports the retained entry count.
func (c *QJLCache) Len(layer, head int) int { return len(c.streams[layer][head].entries) }

// TotalAppended reports appended tokens.
func (c *QJLCache) TotalAppended() int { return c.appended }

// MemoryBytes reports the true compressed footprint: 1 bit per sketch
// coordinate plus an FP16 norm per key, plus quantised values.
func (c *QJLCache) MemoryBytes() int64 {
	var bits int64
	for l := range c.streams {
		for h := range c.streams[l] {
			for _, e := range c.streams[l][h].entries {
				bits += int64(c.cfg.SketchDim) + 16 // key sketch + norm
				bits += e.val.StorageBits(c.cfg.Bits)
			}
		}
	}
	return bits / 8
}

// CompressionRatio returns FP16 bytes over actual bytes.
func (c *QJLCache) CompressionRatio() float64 {
	actual := c.MemoryBytes()
	if actual == 0 {
		return 1
	}
	return float64(kvcache.FP16Bytes(c.shape, c.appended)) / float64(actual)
}

// IntactConfig parameterises IntactKV.
type IntactConfig struct {
	Bits int
	// Pivots is the count of initial tokens kept in full precision.
	Pivots int
}

// DefaultIntact returns the standard IntactKV setting.
func DefaultIntact(bits int) IntactConfig { return IntactConfig{Bits: bits, Pivots: 4} }

// Validate reports configuration errors.
func (c IntactConfig) Validate() error {
	if c.Bits < 1 || c.Bits > 8 || c.Pivots < 0 {
		return fmt.Errorf("quant: invalid IntactKV config %+v", c)
	}
	return nil
}

// intactEntry is one cached token: either exact or quantised.
type intactEntry struct {
	exactK, exactV []float32
	qK, qV         Quantized
	exact          bool
}

// IntactCache implements kvcache.Cache with IntactKV: pivot tokens exact,
// the rest per-token quantised.
type IntactCache struct {
	cfg      IntactConfig
	shape    kvcache.Shape
	streams  [][][]intactEntry
	appended int
}

// NewIntact builds an empty IntactKV cache.
func NewIntact(shape kvcache.Shape, cfg IntactConfig) *IntactCache {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &IntactCache{cfg: cfg, shape: shape}
	c.streams = make([][][]intactEntry, shape.Layers)
	for l := range c.streams {
		c.streams[l] = make([][]intactEntry, shape.KVHeads)
	}
	return c
}

// Shape returns the cache dimensions.
func (c *IntactCache) Shape() kvcache.Shape { return c.shape }

// Append stores one token: exact while within the pivot prefix.
func (c *IntactCache) Append(layer int, k, v [][]float32) {
	u := Uniform{Bits: c.cfg.Bits}
	for h := 0; h < c.shape.KVHeads; h++ {
		var e intactEntry
		if c.appended < c.cfg.Pivots {
			e = intactEntry{
				exactK: append([]float32(nil), k[h]...),
				exactV: append([]float32(nil), v[h]...),
				exact:  true,
			}
		} else {
			e = intactEntry{qK: u.Quantize(k[h]), qV: u.Quantize(v[h])}
		}
		c.streams[layer][h] = append(c.streams[layer][h], e)
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// Seq returns pivot tokens exactly and others dequantised.
func (c *IntactCache) Seq(layer, head int) (keys, values [][]float32) {
	for _, e := range c.streams[layer][head] {
		if e.exact {
			keys = append(keys, e.exactK)
			values = append(values, e.exactV)
		} else {
			keys = append(keys, e.qK.Dequantize(nil))
			values = append(values, e.qV.Dequantize(nil))
		}
	}
	return keys, values
}

// Positions returns 0..n-1.
func (c *IntactCache) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports retained entries.
func (c *IntactCache) Len(layer, head int) int { return len(c.streams[layer][head]) }

// TotalAppended reports appended tokens.
func (c *IntactCache) TotalAppended() int { return c.appended }

// MemoryBytes reports the compressed footprint.
func (c *IntactCache) MemoryBytes() int64 {
	var bits int64
	for l := range c.streams {
		for h := range c.streams[l] {
			for _, e := range c.streams[l][h] {
				if e.exact {
					bits += int64(c.shape.HeadDim) * 16 * 2
				} else {
					bits += e.qK.StorageBits(c.cfg.Bits) + e.qV.StorageBits(c.cfg.Bits)
				}
			}
		}
	}
	return bits / 8
}

// MiKVConfig parameterises importance-aware mixed precision.
type MiKVConfig struct {
	HighBits, LowBits int
	// HighFrac is the fraction of tokens kept at HighBits (the most
	// attention-important ones).
	HighFrac float64
	// Rebalance is the append interval between precision reassignments.
	Rebalance int
}

// DefaultMiKV returns 8/2-bit mixed precision over the top 20%.
func DefaultMiKV() MiKVConfig {
	return MiKVConfig{HighBits: 8, LowBits: 2, HighFrac: 0.2, Rebalance: 32}
}

// Validate reports configuration errors.
func (c MiKVConfig) Validate() error {
	if c.HighBits < 1 || c.HighBits > 8 || c.LowBits < 1 || c.LowBits > 8 || c.HighBits <= c.LowBits {
		return fmt.Errorf("quant: invalid MiKV bits %+v", c)
	}
	if c.HighFrac <= 0 || c.HighFrac >= 1 || c.Rebalance <= 0 {
		return fmt.Errorf("quant: invalid MiKV config %+v", c)
	}
	return nil
}

// mikvEntry keeps the original vectors (so precision can be reassigned)
// plus the current codes. Original copies model the engine's ability to
// requantise from the residual stream; only the codes count as resident.
type mikvEntry struct {
	origK, origV []float32
	qK, qV       Quantized
	bits         int
	score        float64
}

// MiKVCache implements importance-aware mixed-precision quantisation.
type MiKVCache struct {
	cfg         MiKVConfig
	shape       kvcache.Shape
	streams     [][][]mikvEntry
	appended    int
	sinceRebal  int
	scorePasses int64
}

// NewMiKV builds an empty MiKV cache.
func NewMiKV(shape kvcache.Shape, cfg MiKVConfig) *MiKVCache {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &MiKVCache{cfg: cfg, shape: shape}
	c.streams = make([][][]mikvEntry, shape.Layers)
	for l := range c.streams {
		c.streams[l] = make([][]mikvEntry, shape.KVHeads)
	}
	return c
}

// Shape returns the cache dimensions.
func (c *MiKVCache) Shape() kvcache.Shape { return c.shape }

// Append stores a token at low precision initially.
func (c *MiKVCache) Append(layer int, k, v [][]float32) {
	u := Uniform{Bits: c.cfg.LowBits}
	for h := 0; h < c.shape.KVHeads; h++ {
		c.streams[layer][h] = append(c.streams[layer][h], mikvEntry{
			origK: append([]float32(nil), k[h]...),
			origV: append([]float32(nil), v[h]...),
			qK:    u.Quantize(k[h]), qV: u.Quantize(v[h]),
			bits: c.cfg.LowBits,
		})
	}
	if layer == c.shape.Layers-1 {
		c.appended++
		c.sinceRebal++
		if c.sinceRebal >= c.cfg.Rebalance {
			c.rebalance()
			c.sinceRebal = 0
		}
	}
}

// ObserveAttention implements kvcache.AttentionObserver: accumulated scores
// drive the precision assignment.
func (c *MiKVCache) ObserveAttention(layer, head int, weights []float32) {
	entries := c.streams[layer][head]
	if len(weights) != len(entries) {
		return
	}
	c.scorePasses++
	for i, w := range weights {
		entries[i].score += float64(w)
	}
}

// rebalance reassigns precision: the top HighFrac tokens by score per head
// move to HighBits; the rest drop to LowBits.
func (c *MiKVCache) rebalance() {
	for l := range c.streams {
		for h := range c.streams[l] {
			entries := c.streams[l][h]
			n := len(entries)
			if n == 0 {
				continue
			}
			nHigh := int(c.cfg.HighFrac * float64(n))
			if nHigh < 1 {
				nHigh = 1
			}
			// Partial selection of the top-nHigh by score.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			for i := 0; i < nHigh; i++ {
				best := i
				for j := i + 1; j < n; j++ {
					if entries[idx[j]].score > entries[idx[best]].score {
						best = j
					}
				}
				idx[i], idx[best] = idx[best], idx[i]
			}
			high := make(map[int]bool, nHigh)
			for i := 0; i < nHigh; i++ {
				high[idx[i]] = true
			}
			uh := Uniform{Bits: c.cfg.HighBits}
			ul := Uniform{Bits: c.cfg.LowBits}
			for i := range entries {
				want := c.cfg.LowBits
				if high[i] {
					want = c.cfg.HighBits
				}
				if entries[i].bits == want {
					continue
				}
				u := ul
				if want == c.cfg.HighBits {
					u = uh
				}
				entries[i].qK = u.Quantize(entries[i].origK)
				entries[i].qV = u.Quantize(entries[i].origV)
				entries[i].bits = want
			}
		}
	}
}

// Seq returns dequantised tensors at each token's current precision.
func (c *MiKVCache) Seq(layer, head int) (keys, values [][]float32) {
	for _, e := range c.streams[layer][head] {
		keys = append(keys, e.qK.Dequantize(nil))
		values = append(values, e.qV.Dequantize(nil))
	}
	return keys, values
}

// Positions returns 0..n-1.
func (c *MiKVCache) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports retained entries.
func (c *MiKVCache) Len(layer, head int) int { return len(c.streams[layer][head]) }

// TotalAppended reports appended tokens.
func (c *MiKVCache) TotalAppended() int { return c.appended }

// MemoryBytes reports resident codes (the originals model requantisation
// capability and are not resident on device).
func (c *MiKVCache) MemoryBytes() int64 {
	var bits int64
	for l := range c.streams {
		for h := range c.streams[l] {
			for _, e := range c.streams[l][h] {
				bits += e.qK.StorageBits(e.bits) + e.qV.StorageBits(e.bits)
			}
		}
	}
	return bits / 8
}

// HighPrecisionFraction reports the current fraction of tokens at HighBits,
// for diagnostics.
func (c *MiKVCache) HighPrecisionFraction() float64 {
	var high, total int
	for l := range c.streams {
		for h := range c.streams[l] {
			for _, e := range c.streams[l][h] {
				total++
				if e.bits == c.cfg.HighBits {
					high++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(high) / float64(total)
}
