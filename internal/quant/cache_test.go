package quant

import (
	"math"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
)

func cacheShape() kvcache.Shape { return kvcache.Shape{Layers: 2, KVHeads: 2, HeadDim: 8} }

func appendRandom(c kvcache.Cache, n int, seed uint64) [][][]float32 {
	// Returns the appended layer-0/head-0 key history for verification.
	r := rng.New(seed)
	s := c.Shape()
	var hist [][][]float32
	for i := 0; i < n; i++ {
		var tok [][]float32
		for l := 0; l < s.Layers; l++ {
			k := make([][]float32, s.KVHeads)
			v := make([][]float32, s.KVHeads)
			for h := 0; h < s.KVHeads; h++ {
				k[h] = randVec(r, s.HeadDim)
				v[h] = randVec(r, s.HeadDim)
			}
			if l == 0 {
				tok = [][]float32{append([]float32(nil), k[0]...), append([]float32(nil), v[0]...)}
			}
			c.Append(l, k, v)
		}
		hist = append(hist, tok)
	}
	return hist
}

func maxAbsDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestKIVIRetainsAllTokens(t *testing.T) {
	c := NewKIVI(cacheShape(), KIVIConfig{Bits: 4, GroupSize: 4, Residual: 8})
	appendRandom(c, 30, 1)
	if c.TotalAppended() != 30 {
		t.Fatalf("appended = %d", c.TotalAppended())
	}
	for l := 0; l < 2; l++ {
		for h := 0; h < 2; h++ {
			if n := c.Len(l, h); n != 30 {
				t.Fatalf("len(%d,%d) = %d", l, h, n)
			}
			keys, vals := c.Seq(l, h)
			if len(keys) != 30 || len(vals) != 30 {
				t.Fatalf("seq lengths %d/%d", len(keys), len(vals))
			}
		}
	}
	pos := c.Positions(0, 0)
	if len(pos) != 30 || pos[29] != 29 {
		t.Fatalf("positions = %v", pos)
	}
}

func TestKIVIResidualWindowExact(t *testing.T) {
	cfg := KIVIConfig{Bits: 2, GroupSize: 4, Residual: 8}
	c := NewKIVI(cacheShape(), cfg)
	hist := appendRandom(c, 30, 2)
	keys, vals := c.Seq(0, 0)
	// The last Residual tokens must be bit-exact (full precision).
	for i := 30 - cfg.Residual; i < 30; i++ {
		if maxAbsDiff(keys[i], hist[i][0]) != 0 {
			t.Fatalf("residual key %d not exact", i)
		}
		if maxAbsDiff(vals[i], hist[i][1]) != 0 {
			t.Fatalf("residual value %d not exact", i)
		}
	}
	// Older tokens are quantised: close but generally not exact.
	var worst float64
	for i := 0; i < 8; i++ {
		worst = math.Max(worst, maxAbsDiff(keys[i], hist[i][0]))
	}
	if worst == 0 {
		t.Fatal("quantised region unexpectedly lossless (2-bit)")
	}
	if worst > 2.5 {
		t.Fatalf("quantised region error %v implausibly large", worst)
	}
}

func TestKIVICompressionRatioImprovesWithLowerBits(t *testing.T) {
	shape := cacheShape()
	c2 := NewKIVI(shape, KIVIConfig{Bits: 2, GroupSize: 4, Residual: 4})
	c4 := NewKIVI(shape, KIVIConfig{Bits: 4, GroupSize: 4, Residual: 4})
	appendRandom(c2, 200, 3)
	appendRandom(c4, 200, 3)
	r2, r4 := c2.CompressionRatio(), c4.CompressionRatio()
	if r2 <= r4 {
		t.Fatalf("2-bit ratio %v should exceed 4-bit %v", r2, r4)
	}
	if r4 <= 1.5 {
		t.Fatalf("4-bit ratio %v too low — accounting bug?", r4)
	}
	if c2.MemoryBytes() >= kvcache.FP16Bytes(shape, 200) {
		t.Fatal("compressed cache larger than FP16 baseline")
	}
}

func TestKIVIDequantOpsAccumulate(t *testing.T) {
	c := NewKIVI(cacheShape(), KIVIConfig{Bits: 4, GroupSize: 4, Residual: 4})
	appendRandom(c, 20, 4)
	c.Seq(0, 0)
	if c.DequantOps() == 0 {
		t.Fatal("dequant ops not counted")
	}
}

func TestKIVIValidation(t *testing.T) {
	if err := (KIVIConfig{Bits: 0, GroupSize: 4, Residual: 4}).Validate(); err == nil {
		t.Fatal("expected bits error")
	}
	if err := (KIVIConfig{Bits: 4, GroupSize: 0, Residual: 4}).Validate(); err == nil {
		t.Fatal("expected group size error")
	}
	if err := DefaultKIVI(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGEARRetainsAllTokens(t *testing.T) {
	c := NewGEAR(cacheShape(), GEARConfig{Bits: 4, GroupSize: 8, SparseFrac: 0.02, RankFrac: 0.1, PowerIters: 4})
	appendRandom(c, 25, 5)
	if c.Len(0, 0) != 25 || c.Len(1, 1) != 25 {
		t.Fatalf("len = %d", c.Len(0, 0))
	}
	keys, vals := c.Seq(0, 0)
	if len(keys) != 25 || len(vals) != 25 {
		t.Fatal("seq incomplete")
	}
}

func TestGEARErrorCorrectionHelps(t *testing.T) {
	// GEAR's whole point: outliers + low-rank correction beat plain
	// per-token quantisation at the same bit width.
	r := rng.New(6)
	vecs := make([][]float32, 32)
	for i := range vecs {
		vecs[i] = randVec(r, 16)
	}
	// Inject outliers so the sparse component matters.
	vecs[3][5] = 25
	vecs[17][2] = -30
	plain := QuantizeGroup(vecs, PerToken, 2)
	plainMSE := GroupMSE(vecs, plain)
	cfg := GEARConfig{Bits: 2, GroupSize: 32, SparseFrac: 0.02, RankFrac: 0.1, PowerIters: 8}
	blk := compressGear(vecs, cfg)
	rec := blk.decompress()
	var gearMSE float64
	for ti := range vecs {
		for ci := range vecs[ti] {
			d := float64(vecs[ti][ci] - rec[ti][ci])
			gearMSE += d * d
		}
	}
	gearMSE /= float64(32 * 16)
	if gearMSE >= plainMSE {
		t.Fatalf("GEAR mse %v should beat plain quant %v", gearMSE, plainMSE)
	}
}

func TestGEARMemoryAboveKIVISameBits(t *testing.T) {
	// GEAR stores outliers and low-rank factors on top of the codes, so at
	// identical bits/group it must cost more memory than KIVI's codes.
	shape := cacheShape()
	g := NewGEAR(shape, GEARConfig{Bits: 4, GroupSize: 8, SparseFrac: 0.05, RankFrac: 0.1, PowerIters: 4})
	k := NewKIVI(shape, KIVIConfig{Bits: 4, GroupSize: 8, Residual: 0})
	appendRandom(g, 64, 7)
	appendRandom(k, 64, 7)
	if g.MemoryBytes() <= k.MemoryBytes() {
		t.Fatalf("GEAR bytes %d should exceed bare-codes KIVI %d", g.MemoryBytes(), k.MemoryBytes())
	}
	if g.CompressionRatio() <= 1 {
		t.Fatalf("GEAR ratio %v should still compress", g.CompressionRatio())
	}
}

func TestGEARCorrectionOpsAccumulate(t *testing.T) {
	c := NewGEAR(cacheShape(), DefaultGEAR(4))
	appendRandom(c, 40, 8)
	c.Seq(0, 0)
	if c.CorrectionOps() == 0 {
		t.Fatal("correction ops not counted")
	}
}

func TestGEARValidation(t *testing.T) {
	if err := (GEARConfig{Bits: 4, GroupSize: 8, SparseFrac: 1.5}).Validate(); err == nil {
		t.Fatal("expected sparse fraction error")
	}
	if err := DefaultGEAR(2).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantCachesInterfaceCompliance(t *testing.T) {
	var _ kvcache.Cache = NewKIVI(cacheShape(), DefaultKIVI(4))
	var _ kvcache.Cache = NewGEAR(cacheShape(), DefaultGEAR(4))
}

func TestLowRankApplyRankZeroSafe(t *testing.T) {
	var lr lowRank
	dst := [][]float32{{1, 2}, {3, 4}}
	lr.apply(dst) // must not panic
	if dst[0][0] != 1 {
		t.Fatal("empty low-rank should be identity")
	}
}
