// Package quant implements KV cache quantisation: a uniform asymmetric
// integer quantiser with per-token, per-channel and grouped granularity, and
// the two quantisation methods the paper evaluates — KIVI (per-channel keys,
// per-token values, full-precision residual window) and GEAR (uniform
// quantisation plus sparse-outlier extraction and low-rank error
// correction).
//
// Quantised caches implement kvcache.Cache: reads return *dequantised*
// tensors, so the model genuinely computes attention on lossy data and every
// downstream accuracy effect is real.
package quant

import (
	"fmt"
	"math"
)

// Uniform performs b-bit asymmetric uniform quantisation of a vector, per
// Eqn. 3 of the paper:
//
//	quantise:   x_q = round((x - lo) / Δ),  Δ = (hi - lo) / (2^b - 1)
//	dequantise: x̂  = x_q·Δ + lo
type Uniform struct {
	Bits int
}

// Levels returns the number of representable levels.
func (u Uniform) Levels() int { return 1 << u.Bits }

// Quantized is a quantised vector with its affine parameters.
type Quantized struct {
	Codes []uint8 // one code per element; values in [0, 2^bits)
	Lo    float32
	Delta float32
}

// Quantize compresses xs. Bits must be in [1, 8]. A constant vector
// quantises exactly (Delta = 0 encodes "all equal to Lo").
func (u Uniform) Quantize(xs []float32) Quantized {
	if u.Bits < 1 || u.Bits > 8 {
		panic(fmt.Sprintf("quant: unsupported bit width %d", u.Bits))
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	q := Quantized{Codes: make([]uint8, len(xs)), Lo: lo}
	if hi == lo {
		return q // Delta 0: every element dequantises to Lo exactly.
	}
	q.Delta = (hi - lo) / float32(u.Levels()-1)
	inv := 1 / q.Delta
	maxCode := float32(u.Levels() - 1)
	for i, x := range xs {
		c := (x - lo) * inv
		// Round half away from zero; clamp for float safety.
		c = float32(math.Round(float64(c)))
		if c < 0 {
			c = 0
		}
		if c > maxCode {
			c = maxCode
		}
		q.Codes[i] = uint8(c)
	}
	return q
}

// Dequantize reconstructs the vector into dst (allocated if nil).
func (q Quantized) Dequantize(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, len(q.Codes))
	}
	for i, c := range q.Codes {
		dst[i] = float32(c)*q.Delta + q.Lo
	}
	return dst
}

// MaxAbsError returns the theoretical worst-case reconstruction error,
// Delta/2.
func (q Quantized) MaxAbsError() float64 { return float64(q.Delta) / 2 }

// StorageBits returns the true storage cost in bits: packed codes plus the
// two FP16 affine parameters.
func (q Quantized) StorageBits(bits int) int64 {
	return int64(len(q.Codes))*int64(bits) + 2*16
}

// MSE returns the mean squared reconstruction error against the original.
func MSE(orig []float32, q Quantized) float64 {
	rec := q.Dequantize(nil)
	if len(rec) != len(orig) {
		panic("quant: MSE length mismatch")
	}
	var s float64
	for i := range orig {
		d := float64(orig[i] - rec[i])
		s += d * d
	}
	return s / float64(len(orig))
}

// Granularity selects how a [tokens × channels] group is sliced for
// quantisation.
type Granularity int

const (
	// PerToken quantises each token's channel vector with its own affine
	// parameters (used for value tensors in KIVI/KVQuant).
	PerToken Granularity = iota
	// PerChannel quantises each channel across the group's tokens (used
	// for key tensors, whose outliers are channel-aligned).
	PerChannel
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case PerToken:
		return "per-token"
	case PerChannel:
		return "per-channel"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// GroupQuantized is a quantised group of token vectors.
type GroupQuantized struct {
	Gran     Granularity
	Tokens   int
	Channels int
	Slices   []Quantized // one per token (PerToken) or per channel (PerChannel)
	Bits     int
}

// QuantizeGroup quantises a group of token vectors (each of equal length)
// under the given granularity.
func QuantizeGroup(vecs [][]float32, gran Granularity, bits int) GroupQuantized {
	if len(vecs) == 0 || len(vecs[0]) == 0 {
		panic("quant: empty group")
	}
	u := Uniform{Bits: bits}
	g := GroupQuantized{Gran: gran, Tokens: len(vecs), Channels: len(vecs[0]), Bits: bits}
	switch gran {
	case PerToken:
		for _, v := range vecs {
			g.Slices = append(g.Slices, u.Quantize(v))
		}
	case PerChannel:
		for c := 0; c < g.Channels; c++ {
			col := make([]float32, g.Tokens)
			for t, v := range vecs {
				col[t] = v[c]
			}
			g.Slices = append(g.Slices, u.Quantize(col))
		}
	default:
		panic("quant: unknown granularity")
	}
	return g
}

// Dequantize reconstructs the group's token vectors.
func (g GroupQuantized) Dequantize() [][]float32 {
	out := make([][]float32, g.Tokens)
	for t := range out {
		out[t] = make([]float32, g.Channels)
	}
	switch g.Gran {
	case PerToken:
		for t, s := range g.Slices {
			s.Dequantize(out[t])
		}
	case PerChannel:
		col := make([]float32, g.Tokens)
		for c, s := range g.Slices {
			s.Dequantize(col)
			for t := 0; t < g.Tokens; t++ {
				out[t][c] = col[t]
			}
		}
	}
	return out
}

// StorageBits returns the group's true storage cost in bits.
func (g GroupQuantized) StorageBits() int64 {
	var total int64
	for _, s := range g.Slices {
		total += s.StorageBits(g.Bits)
	}
	return total
}

// GroupMSE returns the mean squared reconstruction error over the group.
func GroupMSE(orig [][]float32, g GroupQuantized) float64 {
	rec := g.Dequantize()
	var s float64
	var n int
	for t := range orig {
		for c := range orig[t] {
			d := float64(orig[t][c] - rec[t][c])
			s += d * d
			n++
		}
	}
	return s / float64(n)
}
