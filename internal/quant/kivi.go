package quant

import (
	"fmt"

	"rethinkkv/internal/kvcache"
)

// KIVIConfig mirrors the tunables of the KIVI algorithm (Liu et al., 2024):
// asymmetric quantisation with per-channel keys and per-token values, a
// group of G tokens sharing quantisation parameters, and the most recent R
// tokens kept in full precision. The paper's evaluation uses G=32, R=128
// (Appendix A.3) at 2 or 4 bits.
type KIVIConfig struct {
	Bits      int
	GroupSize int // tokens per quantisation block (G)
	Residual  int // full-precision recent-token window (R)
}

// DefaultKIVI returns the paper's configuration at the given bit width.
func DefaultKIVI(bits int) KIVIConfig {
	return KIVIConfig{Bits: bits, GroupSize: 32, Residual: 128}
}

// Validate reports configuration errors.
func (c KIVIConfig) Validate() error {
	if c.Bits < 1 || c.Bits > 8 {
		return fmt.Errorf("quant: KIVI bits %d out of range", c.Bits)
	}
	if c.GroupSize <= 0 || c.Residual < 0 {
		return fmt.Errorf("quant: invalid KIVI window config %+v", c)
	}
	return nil
}

// kiviBlock is one quantised group of tokens for a single head.
type kiviBlock struct {
	keys GroupQuantized // per-channel
	vals GroupQuantized // per-token
}

// kiviStream is the per-(layer, head) state.
type kiviStream struct {
	blocks  []kiviBlock
	fullK   [][]float32
	fullV   [][]float32
	basePos int // absolute position of the first token in the first block
}

// KIVICache implements kvcache.Cache with KIVI quantisation. Reads return
// dequantised tensors; quantisation error therefore propagates into the
// model's attention outputs exactly as it would on a GPU.
type KIVICache struct {
	cfg      KIVIConfig
	shape    kvcache.Shape
	streams  [][]*kiviStream // [layer][head]
	appended int
	// dequantOps counts elements dequantised on read; the cost model uses
	// this to charge the de-quantisation compute of Eqn. 3.
	dequantOps int64
}

// NewKIVI builds an empty KIVI cache.
func NewKIVI(shape kvcache.Shape, cfg KIVIConfig) *KIVICache {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &KIVICache{cfg: cfg, shape: shape}
	c.streams = make([][]*kiviStream, shape.Layers)
	for l := range c.streams {
		c.streams[l] = make([]*kiviStream, shape.KVHeads)
		for h := range c.streams[l] {
			c.streams[l][h] = &kiviStream{}
		}
	}
	return c
}

// Shape returns the cache dimensions.
func (c *KIVICache) Shape() kvcache.Shape { return c.shape }

// Append stores one token and quantises any full block that has slid out of
// the residual window.
func (c *KIVICache) Append(layer int, k, v [][]float32) {
	for h := 0; h < c.shape.KVHeads; h++ {
		s := c.streams[layer][h]
		s.fullK = append(s.fullK, append([]float32(nil), k[h]...))
		s.fullV = append(s.fullV, append([]float32(nil), v[h]...))
		for len(s.fullK) >= c.cfg.Residual+c.cfg.GroupSize {
			g := c.cfg.GroupSize
			s.blocks = append(s.blocks, kiviBlock{
				keys: QuantizeGroup(s.fullK[:g], PerChannel, c.cfg.Bits),
				vals: QuantizeGroup(s.fullV[:g], PerToken, c.cfg.Bits),
			})
			s.fullK = s.fullK[g:]
			s.fullV = s.fullV[g:]
		}
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// Seq returns dequantised blocks followed by the full-precision window.
func (c *KIVICache) Seq(layer, head int) (keys, values [][]float32) {
	s := c.streams[layer][head]
	for _, b := range s.blocks {
		keys = append(keys, b.keys.Dequantize()...)
		values = append(values, b.vals.Dequantize()...)
		c.dequantOps += int64(2 * b.keys.Tokens * b.keys.Channels)
	}
	keys = append(keys, s.fullK...)
	values = append(values, s.fullV...)
	return keys, values
}

// Positions returns 0..n-1: quantisation retains every token.
func (c *KIVICache) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports the retained entry count (all appended tokens).
func (c *KIVICache) Len(layer, head int) int {
	s := c.streams[layer][head]
	n := len(s.fullK)
	for _, b := range s.blocks {
		n += b.keys.Tokens
	}
	return n
}

// TotalAppended reports how many tokens have been appended.
func (c *KIVICache) TotalAppended() int { return c.appended }

// MemoryBytes reports the true compressed footprint: quantised codes and
// affine parameters, plus the FP16 residual window.
func (c *KIVICache) MemoryBytes() int64 {
	var bits int64
	for l := range c.streams {
		for h := range c.streams[l] {
			s := c.streams[l][h]
			for _, b := range s.blocks {
				bits += b.keys.StorageBits() + b.vals.StorageBits()
			}
			bits += int64(len(s.fullK)) * int64(c.shape.HeadDim) * 16 * 2 // K and V fp16
		}
	}
	return bits / 8
}

// DequantOps returns the cumulative elements dequantised on reads.
func (c *KIVICache) DequantOps() int64 { return c.dequantOps }

// CompressionRatio returns FP16 bytes divided by actual bytes for the
// current contents (>= 1 once blocks exist).
func (c *KIVICache) CompressionRatio() float64 {
	actual := c.MemoryBytes()
	if actual == 0 {
		return 1
	}
	return float64(kvcache.FP16Bytes(c.shape, c.appended)) / float64(actual)
}
