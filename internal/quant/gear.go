package quant

import (
	"fmt"
	"math"
	"sort"

	"rethinkkv/internal/kvcache"
)

// GEARConfig mirrors GEAR (Kang et al., 2024): uniform per-token
// quantisation augmented with (1) a sparse matrix holding the top-s fraction
// of quantisation-error outliers in full precision and (2) a rank-r low-rank
// approximation of the remaining error. The paper's evaluation uses
// s = 2%, r = 2% (Appendix A.3).
type GEARConfig struct {
	Bits       int
	GroupSize  int     // tokens per compressed block
	SparseFrac float64 // s: fraction of entries kept as exact outliers
	RankFrac   float64 // r: low-rank rank as a fraction of head dim
	PowerIters int     // power-method iterations per rank
}

// DefaultGEAR returns the paper's configuration at the given bit width.
func DefaultGEAR(bits int) GEARConfig {
	return GEARConfig{Bits: bits, GroupSize: 32, SparseFrac: 0.02, RankFrac: 0.02, PowerIters: 8}
}

// Validate reports configuration errors.
func (c GEARConfig) Validate() error {
	if c.Bits < 1 || c.Bits > 8 {
		return fmt.Errorf("quant: GEAR bits %d out of range", c.Bits)
	}
	if c.GroupSize <= 0 || c.SparseFrac < 0 || c.SparseFrac > 1 || c.RankFrac < 0 || c.RankFrac > 1 {
		return fmt.Errorf("quant: invalid GEAR config %+v", c)
	}
	return nil
}

// rank returns the effective low-rank rank for a given head dimension.
func (c GEARConfig) rank(dim int) int {
	r := int(math.Ceil(c.RankFrac * float64(dim)))
	if r < 1 {
		r = 1
	}
	return r
}

// outlier is one exactly-stored error entry.
type outlier struct {
	tok, ch int
	val     float32
}

// lowRank is a rank-r factorisation U·Vᵀ of a tokens × channels matrix.
type lowRank struct {
	u [][]float32 // tokens × rank
	v [][]float32 // channels × rank
}

// apply adds U·Vᵀ to dst (tokens × channels).
func (lr lowRank) apply(dst [][]float32) {
	if len(lr.u) == 0 {
		return
	}
	rank := len(lr.u[0])
	for t := range dst {
		for r := 0; r < rank; r++ {
			ut := lr.u[t][r]
			if ut == 0 {
				continue
			}
			for ch := range dst[t] {
				dst[t][ch] += ut * lr.v[ch][r]
			}
		}
	}
}

// gearBlock is one compressed group for a single tensor (K or V).
type gearBlock struct {
	q        GroupQuantized
	outliers []outlier
	lr       lowRank
}

// compressGear builds a gearBlock from a group of token vectors.
func compressGear(vecs [][]float32, cfg GEARConfig) gearBlock {
	b := gearBlock{q: QuantizeGroup(vecs, PerToken, cfg.Bits)}
	rec := b.q.Dequantize()
	tokens, channels := len(vecs), len(vecs[0])
	// Error matrix.
	errMat := make([][]float32, tokens)
	for t := range errMat {
		errMat[t] = make([]float32, channels)
		for ch := range errMat[t] {
			errMat[t][ch] = vecs[t][ch] - rec[t][ch]
		}
	}
	// Top-s outliers by |error|.
	nOut := int(cfg.SparseFrac * float64(tokens*channels))
	if nOut > 0 {
		type cell struct {
			t, c int
			a    float64
		}
		cells := make([]cell, 0, tokens*channels)
		for t := range errMat {
			for ch := range errMat[t] {
				cells = append(cells, cell{t, ch, math.Abs(float64(errMat[t][ch]))})
			}
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].a > cells[j].a })
		for _, c := range cells[:nOut] {
			b.outliers = append(b.outliers, outlier{tok: c.t, ch: c.c, val: errMat[c.t][c.c]})
			errMat[c.t][c.c] = 0
		}
	}
	// Low-rank approximation of the residual error by deflated power
	// iteration. Deterministic: initial vector is uniform.
	rank := cfg.rank(channels)
	b.lr = lowRank{u: make([][]float32, tokens), v: make([][]float32, channels)}
	for t := range b.lr.u {
		b.lr.u[t] = make([]float32, rank)
	}
	for ch := range b.lr.v {
		b.lr.v[ch] = make([]float32, rank)
	}
	for r := 0; r < rank; r++ {
		v := make([]float64, channels)
		for i := range v {
			v[i] = 1 / math.Sqrt(float64(channels))
		}
		u := make([]float64, tokens)
		for it := 0; it < cfg.PowerIters; it++ {
			// u = E v
			for t := 0; t < tokens; t++ {
				s := 0.0
				for ch := 0; ch < channels; ch++ {
					s += float64(errMat[t][ch]) * v[ch]
				}
				u[t] = s
			}
			normalize(u)
			// v = Eᵀ u
			for ch := 0; ch < channels; ch++ {
				s := 0.0
				for t := 0; t < tokens; t++ {
					s += float64(errMat[t][ch]) * u[t]
				}
				v[ch] = s
			}
			sigma := normalize(v)
			if sigma == 0 {
				break
			}
		}
		// sigma u vᵀ with sigma folded into u: compute sigma = uᵀ E v.
		sigma := 0.0
		for t := 0; t < tokens; t++ {
			for ch := 0; ch < channels; ch++ {
				sigma += u[t] * float64(errMat[t][ch]) * v[ch]
			}
		}
		for t := 0; t < tokens; t++ {
			b.lr.u[t][r] = float32(sigma * u[t])
		}
		for ch := 0; ch < channels; ch++ {
			b.lr.v[ch][r] = float32(v[ch])
		}
		// Deflate.
		for t := 0; t < tokens; t++ {
			for ch := 0; ch < channels; ch++ {
				errMat[t][ch] -= b.lr.u[t][r] * b.lr.v[ch][r]
			}
		}
	}
	return b
}

func normalize(v []float64) float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		return 0
	}
	for i := range v {
		v[i] /= n
	}
	return n
}

// decompress reconstructs the block's token vectors.
func (b gearBlock) decompress() [][]float32 {
	out := b.q.Dequantize()
	b.lr.apply(out)
	for _, o := range b.outliers {
		out[o.tok][o.ch] += o.val
	}
	return out
}

// storageBits returns the block's true storage cost.
func (b gearBlock) storageBits() int64 {
	bits := b.q.StorageBits()
	bits += int64(len(b.outliers)) * (16 /*fp16 value*/ + 16 /*packed index*/)
	if len(b.lr.u) > 0 {
		rank := len(b.lr.u[0])
		bits += int64(len(b.lr.u)+len(b.lr.v)) * int64(rank) * 16
	}
	return bits
}

// gearStream is the per-(layer, head) state.
type gearStream struct {
	kBlocks, vBlocks []gearBlock
	fullK, fullV     [][]float32
}

// GEARCache implements kvcache.Cache with GEAR compression. The fill buffer
// (one group) stays in full precision until the group completes, mirroring
// GEAR's streaming buffer.
type GEARCache struct {
	cfg      GEARConfig
	shape    kvcache.Shape
	streams  [][]*gearStream
	appended int
	// correctionOps counts error-correction element operations (outlier
	// scatter + low-rank GEMM), charged by the cost model as GEAR's extra
	// compute.
	correctionOps int64
}

// NewGEAR builds an empty GEAR cache.
func NewGEAR(shape kvcache.Shape, cfg GEARConfig) *GEARCache {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &GEARCache{cfg: cfg, shape: shape}
	c.streams = make([][]*gearStream, shape.Layers)
	for l := range c.streams {
		c.streams[l] = make([]*gearStream, shape.KVHeads)
		for h := range c.streams[l] {
			c.streams[l][h] = &gearStream{}
		}
	}
	return c
}

// Shape returns the cache dimensions.
func (c *GEARCache) Shape() kvcache.Shape { return c.shape }

// Append stores one token, compressing a block when the fill buffer reaches
// GroupSize.
func (c *GEARCache) Append(layer int, k, v [][]float32) {
	for h := 0; h < c.shape.KVHeads; h++ {
		s := c.streams[layer][h]
		s.fullK = append(s.fullK, append([]float32(nil), k[h]...))
		s.fullV = append(s.fullV, append([]float32(nil), v[h]...))
		if len(s.fullK) >= c.cfg.GroupSize {
			s.kBlocks = append(s.kBlocks, compressGear(s.fullK, c.cfg))
			s.vBlocks = append(s.vBlocks, compressGear(s.fullV, c.cfg))
			s.fullK = nil
			s.fullV = nil
		}
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// Seq returns decompressed blocks followed by the fill buffer.
func (c *GEARCache) Seq(layer, head int) (keys, values [][]float32) {
	s := c.streams[layer][head]
	for i := range s.kBlocks {
		keys = append(keys, s.kBlocks[i].decompress()...)
		values = append(values, s.vBlocks[i].decompress()...)
		c.correctionOps += int64(2 * s.kBlocks[i].q.Tokens * s.kBlocks[i].q.Channels)
	}
	keys = append(keys, s.fullK...)
	values = append(values, s.fullV...)
	return keys, values
}

// Positions returns 0..n-1: GEAR retains every token.
func (c *GEARCache) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports the retained entry count (all appended tokens).
func (c *GEARCache) Len(layer, head int) int {
	s := c.streams[layer][head]
	n := len(s.fullK)
	for _, b := range s.kBlocks {
		n += b.q.Tokens
	}
	return n
}

// TotalAppended reports how many tokens have been appended.
func (c *GEARCache) TotalAppended() int { return c.appended }

// MemoryBytes reports the true compressed footprint.
func (c *GEARCache) MemoryBytes() int64 {
	var bits int64
	for l := range c.streams {
		for h := range c.streams[l] {
			s := c.streams[l][h]
			for i := range s.kBlocks {
				bits += s.kBlocks[i].storageBits() + s.vBlocks[i].storageBits()
			}
			bits += int64(len(s.fullK)) * int64(c.shape.HeadDim) * 16 * 2
		}
	}
	return bits / 8
}

// CorrectionOps returns cumulative error-correction element operations.
func (c *GEARCache) CorrectionOps() int64 { return c.correctionOps }

// CompressionRatio returns FP16 bytes over actual bytes.
func (c *GEARCache) CompressionRatio() float64 {
	actual := c.MemoryBytes()
	if actual == 0 {
		return 1
	}
	return float64(kvcache.FP16Bytes(c.shape, c.appended)) / float64(actual)
}
