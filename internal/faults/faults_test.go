package faults

import (
	"errors"
	"testing"
	"time"

	"rethinkkv/internal/kvcache"
)

// TestPickDeterministicAndInRange pins the victim-selection contract: same
// seed and salt always pick the same engine, results stay in [0, n), and
// the seed actually influences the choice.
func TestPickDeterministicAndInRange(t *testing.T) {
	a, b := New(7), New(7)
	for salt := uint64(0); salt < 64; salt++ {
		x := a.Pick(4, salt)
		if y := b.Pick(4, salt); x != y {
			t.Fatalf("salt %d: Pick diverged %d vs %d for equal seeds", salt, x, y)
		}
		if x < 0 || x >= 4 {
			t.Fatalf("salt %d: Pick(4) = %d out of range", salt, x)
		}
	}
	if got := New(7).Pick(1, 3); got != 0 {
		t.Fatalf("Pick(1) = %d, want 0", got)
	}
	if got := New(7).Pick(0, 3); got != 0 {
		t.Fatalf("Pick(0) = %d, want 0", got)
	}
	varies := false
	for salt := uint64(0); salt < 32 && !varies; salt++ {
		varies = New(1).Pick(4, salt) != New(2).Pick(4, salt)
	}
	if !varies {
		t.Fatal("seed never influenced Pick across 32 salts")
	}
}

// TestStepHookPanicsOnceAtScheduledStep: the scheduled crash fires at
// exactly the configured iteration, exactly once, and only for its engine.
func TestStepHookPanicsOnceAtScheduledStep(t *testing.T) {
	in := New(1)
	in.PanicAt(2, 3)
	hook := in.StepHook(2)
	hook(1)
	hook(2)
	if in.Fired(2) {
		t.Fatal("panic fired before its scheduled iteration")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic at the scheduled iteration")
			}
		}()
		hook(3)
	}()
	if !in.Fired(2) {
		t.Fatal("Fired not recorded after the panic")
	}
	hook(4) // must not panic a second time
	if got := in.Steps(2); got != 4 {
		t.Fatalf("Steps = %d, want 4", got)
	}
	in.StepHook(0)(7)
	if in.Fired(0) {
		t.Fatal("engine 0 fired a panic scheduled for engine 2")
	}
}

// TestSubmitStormBouncesExactlyN: a storm of n rejects exactly the next n
// Submits with ErrOutOfPages, then clears; other engines are untouched.
func TestSubmitStormBouncesExactlyN(t *testing.T) {
	in := New(1)
	in.SubmitStorm(1, 2)
	hook := in.SubmitHook(1)
	for i := 0; i < 2; i++ {
		if err := hook(); !errors.Is(err, kvcache.ErrOutOfPages) {
			t.Fatalf("storm submit %d: err = %v, want ErrOutOfPages", i, err)
		}
	}
	if err := hook(); err != nil {
		t.Fatalf("submit after storm drained: %v", err)
	}
	if got := in.Stormed(1); got != 2 {
		t.Fatalf("Stormed = %d, want 2", got)
	}
	if err := in.SubmitHook(0)(); err != nil {
		t.Fatalf("storm leaked to another engine: %v", err)
	}
}

// TestDelayInflatesStep: the slow-replica shape really sleeps.
func TestDelayInflatesStep(t *testing.T) {
	in := New(1)
	in.Delay(0, 5*time.Millisecond)
	start := time.Now()
	in.StepHook(0)(1)
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("delayed step took %v, want >= 5ms", el)
	}
}
