// Package faults is the deterministic fault-injection harness for the
// serving planes: a seeded Injector manufactures the three failure shapes
// production fleets actually see — an engine crash (a panic in the step
// loop), a transient admission-capacity storm (ErrOutOfPages on submit),
// and a slow replica (per-iteration latency inflation) — at exact,
// replayable points in an engine's execution.
//
// The injector plugs into sched.Config through three hooks (StepHook,
// SubmitHook, AdmitHook) and is shared across the engines of a fleet, each
// engine keyed by its GPU id. Every trigger is counted in the engine's own
// event stream (its Nth scheduling iteration, its Nth Submit call), not in
// wall-clock time, so a chaos scenario replays identically across runs and
// machines: the same engine dies at the same iteration, the same submit
// attempts bounce, and the recovery path the test pins — failover via
// replay, migration fallback, deadline shedding — is exercised the same
// way every time.
//
// The seed does not randomize the injected faults themselves (they are
// scheduled explicitly); it feeds Pick, the helper chaos scenarios use to
// choose *which* engine to kill so a sweep over seeds varies the victim
// without varying the mechanism.
package faults

import (
	"sync"
	"time"

	"rethinkkv/internal/kvcache"
)

// Injector schedules deterministic faults for a set of engines. All
// methods are safe for concurrent use; the hooks it hands out are called
// from engine loops and Submit paths concurrently.
type Injector struct {
	seed uint64

	mu sync.Mutex
	// panicAt maps gpu -> 1-based scheduling iteration at which the
	// engine's StepHook panics (once).
	panicAt map[int]int
	// storm maps gpu -> remaining Submit calls that fail with
	// kvcache.ErrOutOfPages before the engine accepts traffic again.
	storm map[int]int
	// delay maps gpu -> extra latency added to every scheduling iteration.
	delay map[int]time.Duration

	steps   map[int]int // gpu -> scheduling iterations observed
	submits map[int]int // gpu -> Submit calls observed
	fired   map[int]bool
	stormed map[int]int // gpu -> Submit calls actually bounced
}

// New returns an empty injector. The seed only feeds Pick; an injector
// with no scheduled faults is inert.
func New(seed uint64) *Injector {
	return &Injector{
		seed:    seed,
		panicAt: map[int]int{},
		storm:   map[int]int{},
		delay:   map[int]time.Duration{},
		steps:   map[int]int{},
		submits: map[int]int{},
		fired:   map[int]bool{},
		stormed: map[int]int{},
	}
}

// Pick deterministically chooses one of n alternatives from the seed and a
// salt (splitmix64 finalizer) — chaos scenarios use it to pick the victim
// engine so seed sweeps vary the target, not the mechanism.
func (in *Injector) Pick(n int, salt uint64) int {
	if n <= 1 {
		return 0
	}
	z := in.seed + salt + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// PanicAt schedules engine gpu's step loop to panic at its step-th
// scheduling iteration (1-based). The engine's recover boundary turns the
// panic into a marked failure; the fleet layer fails its requests over.
func (in *Injector) PanicAt(gpu, step int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.panicAt[gpu] = step
}

// SubmitStorm makes engine gpu's next n Submit calls fail with
// kvcache.ErrOutOfPages — the transient capacity exhaustion a migration
// target or an overloaded replica reports under real page pressure.
func (in *Injector) SubmitStorm(gpu, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.storm[gpu] = n
}

// Delay inflates engine gpu's per-iteration latency by d — the slow-replica
// shape (thermal throttling, a noisy neighbour) that stresses deadline
// shedding without killing anything.
func (in *Injector) Delay(gpu int, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.delay[gpu] = d
}

// StepHook returns the per-iteration hook for engine gpu, suitable for
// sched.Config.StepHook: it counts the engine's scheduling iterations,
// sleeps any configured delay, and panics exactly once when the engine
// reaches its scheduled crash iteration.
func (in *Injector) StepHook(gpu int) func(step int) {
	return func(step int) {
		in.mu.Lock()
		in.steps[gpu] = step
		d := in.delay[gpu]
		at, ok := in.panicAt[gpu]
		fire := ok && !in.fired[gpu] && step >= at
		if fire {
			in.fired[gpu] = true
		}
		in.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		if fire {
			panic("faults: injected step panic")
		}
	}
}

// SubmitHook returns the admission-time hook for engine gpu, suitable for
// sched.Config.SubmitHook: while a storm is scheduled it fails each Submit
// with kvcache.ErrOutOfPages and decrements the storm budget.
func (in *Injector) SubmitHook(gpu int) func() error {
	return func() error {
		in.mu.Lock()
		defer in.mu.Unlock()
		in.submits[gpu]++
		if in.storm[gpu] > 0 {
			in.storm[gpu]--
			in.stormed[gpu]++
			return kvcache.ErrOutOfPages
		}
		return nil
	}
}

// Steps reports the scheduling iterations engine gpu has executed — test
// scaffolding for asserting a fault fired where it was scheduled.
func (in *Injector) Steps(gpu int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.steps[gpu]
}

// Fired reports whether engine gpu's scheduled panic has been delivered.
func (in *Injector) Fired(gpu int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[gpu]
}

// Stormed reports how many Submit calls engine gpu has bounced so far.
func (in *Injector) Stormed(gpu int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stormed[gpu]
}
