// Package perf is the analytical performance model that reproduces the
// paper's throughput results. It prices prefill and decode latency for a
// (hardware, model, engine, compression method, tensor-parallel degree)
// combination from first principles:
//
//   - GEMMs and attention follow the roofline (max of memory and compute
//     time) at engine-specific achieved efficiencies;
//   - decode is dominated by weight and KV cache reads (memory-bound);
//     prefill by GEMM FLOPs (compute-bound);
//   - compression methods change the bytes the attention kernel moves
//     (less for all methods), and add method-specific overheads: dequant
//     compute and dual-pool irregularity for quantisation, error-correction
//     kernel storms for GEAR, score re-materialisation passes and
//     non-TP-scaling eviction kernels for H2O, window bookkeeping for
//     StreamingLLM;
//   - tensor parallelism divides weight/KV traffic per GPU but adds ring
//     all-reduces, and relieves the bandwidth pressure that made
//     compression profitable — the mechanism behind the paper's Table 3.
package perf

import (
	"fmt"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/stats"
)

// Estimator prices serving operations for one configuration.
type Estimator struct {
	HW     gpu.Hardware
	Model  model.Config
	Engine engine.Profile
	Method compress.Method
	TP     int
}

// New builds an estimator, validating the configuration.
func New(hw gpu.Hardware, m model.Config, eng engine.Profile, method compress.Method, tp int) (*Estimator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := eng.Validate(); err != nil {
		return nil, err
	}
	if tp < 1 || m.Heads%tp != 0 {
		return nil, fmt.Errorf("perf: tensor parallelism %d must divide %d heads", tp, m.Heads)
	}
	return &Estimator{HW: hw, Model: m, Engine: eng, Method: method, TP: tp}, nil
}

// MustNew is New that panics, for experiment tables.
func MustNew(hw gpu.Hardware, m model.Config, eng engine.Profile, method compress.Method, tp int) *Estimator {
	e, err := New(hw, m, eng, method, tp)
	if err != nil {
		panic(err)
	}
	return e
}

const (
	fp16 = 2.0
	fp32 = 4.0
	// dequantFLOPsPerElem is the multiply-add cost of Eqn. 3's
	// de-quantisation per element.
	dequantFLOPsPerElem = 2.0
	// quantizeFLOPsPerElem covers min/max reduction plus round/scale.
	quantizeFLOPsPerElem = 4.0
	// gearKernelsPerGroup is the launch count of GEAR's per-group error
	// correction (quantise, outlier extract, low-rank iteration) — the
	// small-kernel storm that erodes its prefill throughput.
	gearKernelsPerGroup = 3.0
	// evictChunk is the token interval at which streaming eviction
	// bookkeeping runs during prefill.
	evictChunk = 128.0
)

// weights returns per-GPU weight bytes.
func (e *Estimator) weightBytes() float64 {
	return float64(e.Model.ParamCount()) * fp16 / float64(e.TP)
}

// kvReadBytes returns the per-step KV bytes one decode step reads for a
// batch, at nominal KV length kvLen, per GPU.
func (e *Estimator) kvReadBytes(batch, kvLen int) float64 {
	avg := e.Method.Cost.KVBytesPerTokenAvg(e.Model.Layers, e.Model.KVDim(), kvLen)
	return float64(batch) * avg * float64(kvLen) / float64(e.TP)
}

// attnBandwidthEff returns the achieved bandwidth fraction for attention
// reads under this method's access pattern.
func (e *Estimator) attnBandwidthEff() float64 {
	return e.Engine.BandwidthEff * e.Method.Cost.IrregularAccess
}

// DecodeStepLatency returns the wall time of one decode step for the batch
// at the given KV length, in seconds.
func (e *Estimator) DecodeStepLatency(batch, kvLen int) float64 {
	cfg := e.Model
	tp := float64(e.TP)
	b := float64(batch)

	// Linear layers: weights streamed once, FLOPs scale with batch.
	linFLOPs := 2 * float64(cfg.ParamCount()) * b / tp
	tLinear := e.HW.OpTime(linFLOPs, e.weightBytes(), e.Engine.BandwidthEff, e.Engine.ComputeEff)

	// Attention: KV reads plus score/value FLOPs.
	tAttn := e.decodeAttentionTime(batch, kvLen)

	// Kernel launches and framework overhead.
	launches := float64(e.Engine.KernelsPerLayerDecode+e.methodExtraKernelsDecode()) * float64(cfg.Layers)
	tLaunch := launches * e.HW.KernelLaunch
	tHost := e.Engine.StepOverhead

	// Tensor-parallel all-reduces: two per layer on b×hidden activations.
	arBytes := b * float64(cfg.Hidden()) * fp16
	tAR := 2 * float64(cfg.Layers) * e.HW.AllReduceTime(arBytes, e.TP)

	// Non-TP-scaling eviction overhead: score-based eviction runs a small
	// serialized kernel per layer whose work does not shrink with TP, and
	// the fluctuating lengths force a cross-GPU sync per layer.
	tEvict := e.evictionOverheadDecode(batch)

	return tLinear + tAttn + tLaunch + tHost + tAR + tEvict
}

// decodeAttentionTime prices the attention operation of one decode step
// (all layers), per GPU — the quantity Figure 3(b) plots cumulatively.
func (e *Estimator) decodeAttentionTime(batch, kvLen int) float64 {
	cfg := e.Model
	tp := float64(e.TP)
	b := float64(batch)
	cost := e.Method.Cost
	effLen := float64(cost.EffectiveKVLen(kvLen))

	bytes := e.kvReadBytes(batch, kvLen)
	// 4·L·hidden FLOPs per layer (q·Kᵀ plus the weighted V sum).
	flops := 4 * b * effLen * float64(cfg.Hidden()) * float64(cfg.Layers) / tp

	if !e.Engine.Paged {
		// Contiguous-cache engines (transformers) concatenate the new KV
		// onto the past cache every step: the whole retained cache is read
		// and rewritten. This copy, not arithmetic, is why TRL-measured
		// speedups overstate what production engines see (Observation 1).
		bytes += 2 * e.kvReadBytes(batch, kvLen)
	}

	if !e.Engine.FlashAttention {
		// Naive multi-pass: the fp32 score matrix is written, re-read by
		// softmax, and re-read by the AV pass.
		scoreBytes := 3 * b * float64(cfg.Heads) / tp * effLen * fp32 * float64(cfg.Layers)
		bytes += scoreBytes
	}

	computeEff := e.Engine.ComputeEff
	if cost.Kind == compress.Quant {
		// De-quantisation of every element read, at the engine's quant
		// kernel efficiency.
		elems := b * effLen * float64(cfg.KVDim()) * 2 * float64(cfg.Layers) / tp
		flops += elems * dequantFLOPsPerElem / e.Engine.QuantKernelEff
		if cost.ErrorCorrection {
			// GEAR reconstructs outliers + low-rank on read.
			flops += elems * dequantFLOPsPerElem / e.Engine.QuantKernelEff
		}
	}
	if cost.NeedsScores && e.Engine.FlashAttention {
		// Flash never materialises scores: H2O-style policies re-read K
		// and recompute q·Kᵀ (see internal/attention.FlashScores).
		bytes += b * effLen * float64(cfg.KVDim()) * fp16 * float64(cfg.Layers) / tp
		flops += 2 * b * effLen * float64(cfg.Hidden()) * float64(cfg.Layers) / tp
	}
	return e.HW.OpTime(flops, bytes, e.attnBandwidthEff(), computeEff)
}

// methodExtraKernelsDecode returns added kernel launches per layer per step.
func (e *Estimator) methodExtraKernelsDecode() int {
	cost := e.Method.Cost
	switch {
	case cost.Kind == compress.Quant && cost.ErrorCorrection:
		return 4 // dequant + outlier scatter + low-rank GEMM + quantise-new
	case cost.Kind == compress.Quant:
		return 2 // dequant + dual-pool append
	case cost.Kind == compress.Sparse && cost.NeedsScores:
		return 3 // score recompute + accumulate + evict
	case cost.Kind == compress.Sparse:
		return 1 // window bookkeeping
	}
	return 0
}

// evictionOverheadDecode prices the per-step eviction work that does not
// scale with tensor parallelism.
func (e *Estimator) evictionOverheadDecode(batch int) float64 {
	cost := e.Method.Cost
	if cost.Kind != compress.Sparse || !cost.NeedsScores {
		return 0
	}
	// Serialized score-update + arg-min scan per layer, plus a cross-GPU
	// barrier per layer when TP > 1 (fluctuating retained lengths must
	// agree before the next layer's paged read).
	scanBytes := float64(batch) * float64(cost.Budget) * float64(e.Model.KVHeads) * fp32 * float64(e.Model.Layers)
	tScan := scanBytes / (e.HW.MemBandwidth * 0.2) // strided small-kernel traffic
	var tSync float64
	if e.TP > 1 {
		tSync = float64(e.Model.Layers) * e.HW.InterconnectLatency * float64(e.TP-1)
	}
	return tScan + tSync
}

// DecodeThroughput returns decode tokens/second for the batch at kvLen.
func (e *Estimator) DecodeThroughput(batch, kvLen int) float64 {
	return float64(batch) / e.DecodeStepLatency(batch, kvLen)
}

// PrefillLatency returns the wall time to prefill a batch of prompts of the
// given length, in seconds.
func (e *Estimator) PrefillLatency(batch, promptLen int) float64 {
	cfg := e.Model
	tp := float64(e.TP)
	b := float64(batch)
	p := float64(promptLen)

	// Linear layers: compute-bound GEMMs.
	linFLOPs := 2 * float64(cfg.ParamCount()) * b * p / tp
	tLinear := e.HW.OpTime(linFLOPs, e.weightBytes(), e.Engine.BandwidthEff, e.Engine.ComputeEff)

	tAttn := e.prefillAttentionTime(batch, promptLen)

	launches := float64(e.Engine.KernelsPerLayerPrefill) * float64(cfg.Layers)
	tLaunch := launches*e.HW.KernelLaunch + e.Engine.StepOverhead

	arBytes := b * p * float64(cfg.Hidden()) * fp16
	tAR := 2 * float64(cfg.Layers) * e.HW.AllReduceTime(arBytes, e.TP)

	tMethod := e.prefillMethodOverhead(batch, promptLen)

	return tLinear + tAttn + tLaunch + tAR + tMethod
}

// prefillAttentionTime prices causal self-attention over the prompt — the
// quantity Figure 3(a) plots.
func (e *Estimator) prefillAttentionTime(batch, promptLen int) float64 {
	cfg := e.Model
	tp := float64(e.TP)
	b := float64(batch)
	p := float64(promptLen)

	// Causal attention: ~2·P²·hidden FLOPs per layer (QKᵀ + AV, halved by
	// causality).
	flops := 2 * b * p * p * float64(cfg.Hidden()) * float64(cfg.Layers) / tp
	// Flash streams K/V tiles; traffic ≈ KV read once per Q-tile row.
	bytes := b * p * float64(cfg.KVDim()) * 2 * fp16 * float64(cfg.Layers) / tp
	if !e.Engine.FlashAttention {
		// Naive: materialise the P×P fp32 score matrix (write + 2 reads).
		bytes += 3 * b * float64(cfg.Heads) / tp * p * p * fp32 * float64(cfg.Layers)
	}
	t := e.HW.OpTime(flops, bytes, e.attnBandwidthEff(), e.Engine.ComputeEff)

	if e.Method.Cost.NeedsScores && e.Engine.FlashAttention {
		// H2O/SnapKV must materialise the score matrix anyway: recompute
		// QKᵀ and stream the P×P fp32 scores out and back (accumulate).
		extraBytes := 2 * b * float64(cfg.Heads) / tp * p * p * fp32 * float64(cfg.Layers)
		extraFLOPs := 2 * b * p * p * float64(cfg.Hidden()) * float64(cfg.Layers) / tp
		t += e.HW.OpTime(extraFLOPs, extraBytes, e.attnBandwidthEff(), e.Engine.ComputeEff)
	}
	return t
}

// prefillMethodOverhead prices compression work during prefill.
func (e *Estimator) prefillMethodOverhead(batch, promptLen int) float64 {
	cfg := e.Model
	cost := e.Method.Cost
	tp := float64(e.TP)
	b := float64(batch)
	p := float64(promptLen)
	elems := b * p * float64(cfg.KVDim()) * 2 * float64(cfg.Layers) / tp

	switch cost.Kind {
	case compress.Quant:
		// Quantising the prompt KV, minus the write bytes it saves.
		quantFLOPs := elems * quantizeFLOPsPerElem / e.Engine.QuantKernelEff
		savedBytes := elems * fp16 * (1 - 1/cost.CompressionRatio(cfg.Layers, cfg.KVDim(), promptLen))
		t := e.HW.OpTime(quantFLOPs, 0, 1, e.Engine.ComputeEff) - savedBytes/(e.HW.MemBandwidth*e.Engine.BandwidthEff)
		if cost.ErrorCorrection {
			// GEAR's per-group error-correction kernel storm.
			groups := float64(cfg.Layers) * (p/float64(cost.GroupSize) + 1) * b
			t += groups * gearKernelsPerGroup * e.HW.KernelLaunch
			// Low-rank power iterations: ~8 iterations × 2 GEMV per elem.
			t += e.HW.OpTime(elems*32/e.Engine.QuantKernelEff, 0, 1, e.Engine.ComputeEff)
		}
		return t
	case compress.Sparse:
		evictions := p - float64(cost.EffectiveKVLen(promptLen))
		if evictions <= 0 {
			return 0
		}
		// Chunked eviction bookkeeping launches plus compaction traffic,
		// minus saved KV writes. Score-based policies run a top-k
		// selection per head per chunk — a small-kernel storm that is the
		// dominant H2O prefill cost.
		launches := float64(cfg.Layers) * (p / evictChunk) * b
		if cost.NeedsScores {
			launches *= float64(cfg.KVHeads)
		}
		t := launches * e.HW.KernelLaunch
		compactBytes := b * evictions * float64(cfg.KVDim()) * 2 * fp16 * float64(cfg.Layers) / tp
		t += compactBytes / (e.HW.MemBandwidth * e.attnBandwidthEff())
		savedWrite := compactBytes // evicted tokens' KV never rewritten downstream
		t -= savedWrite / (e.HW.MemBandwidth * e.Engine.BandwidthEff)
		if t < 0 {
			t = 0
		}
		return t
	}
	return 0
}

// PrefillThroughput returns prompt tokens/second processed.
func (e *Estimator) PrefillThroughput(batch, promptLen int) float64 {
	return float64(batch) * float64(promptLen) / e.PrefillLatency(batch, promptLen)
}

// AttentionPrefillTime returns the prefill attention-layer time (Figure 3a),
// including any method-forced score materialisation.
func (e *Estimator) AttentionPrefillTime(batch, promptLen int) float64 {
	return e.prefillAttentionTime(batch, promptLen) + e.prefillMethodOverhead(batch, promptLen)
}

// AttentionDecodeTimeCumulative returns total attention time to decode
// steps tokens starting from kvStart cached tokens (Figure 3b).
func (e *Estimator) AttentionDecodeTimeCumulative(batch, kvStart, steps int) float64 {
	var total float64
	for i := 0; i < steps; i++ {
		total += e.decodeAttentionTime(batch, kvStart+i)
	}
	return total
}

// EndToEndLatency returns prefill plus decode time for one request shape.
func (e *Estimator) EndToEndLatency(batch, promptLen, outputLen int) float64 {
	t := e.PrefillLatency(batch, promptLen)
	for i := 0; i < outputLen; i++ {
		t += e.DecodeStepLatency(batch, promptLen+i)
	}
	return t
}

// MemoryRequired returns the per-GPU bytes needed to hold weights, the KV
// cache, activations, and method workspace for a batch at kvLen.
func (e *Estimator) MemoryRequired(batch, kvLen int) int64 {
	cfg := e.Model
	tp := float64(e.TP)
	b := float64(batch)

	weights := e.weightBytes()
	cache := e.kvReadBytes(batch, kvLen) // resident == read per step
	activations := b * float64(cfg.Hidden()) * 8 * fp16 / tp

	var workspace float64
	if e.Method.Cost.Kind == compress.Quant {
		// Implementation reality (Appendix A.3 codebases): de-quantisation
		// materialises fp32 K/V work buffers for the active sequences, and
		// the dual-pool layout reserves a full-precision residual pool.
		effLen := float64(kvLen)
		workspace = b * effLen * float64(cfg.KVDim()) * 2 * fp32 * 2 / tp
		workspace += cache // pool reservation headroom
	}
	if !e.Engine.Paged {
		// Contiguous allocators reserve to the model max length.
		maxLen := float64(cfg.MaxSeq)
		if maxLen > float64(kvLen)*2 {
			maxLen = float64(kvLen) * 2
		}
		cache = cache * maxLen / float64(stats.MaxI(kvLen, 1))
	}
	return int64(weights + cache + activations + workspace)
}

// Fits reports whether the configuration fits in 90% of device memory
// (the usable fraction after allocator reserve).
func (e *Estimator) Fits(batch, kvLen int) bool {
	return float64(e.MemoryRequired(batch, kvLen)) <= 0.9*float64(e.HW.VRAM)
}
