package perf

import (
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
)

func est(t *testing.T, eng engine.Profile, method string, tp int) *Estimator {
	t.Helper()
	e, err := New(gpu.A6000, model.LLaMA2_7B, eng, compress.MustGet(method), tp)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("fp16"), 3); err == nil {
		t.Fatal("TP=3 must not divide 32 heads")
	}
	bad := engine.Profile{Name: "x", BandwidthEff: 2}
	if _, err := New(gpu.A6000, model.LLaMA2_7B, bad, compress.MustGet("fp16"), 1); err == nil {
		t.Fatal("invalid engine accepted")
	}
}

func TestDecodeBaselinePlausible(t *testing.T) {
	// LLaMA-7B on A6000 with LMDeploy at batch 1 decodes ~40-45 tok/s in
	// the paper (Figure 1 j). The roofline should land in that band.
	e := est(t, engine.LMDeploy, "fp16", 1)
	thr := e.DecodeThroughput(1, 2048)
	if thr < 30 || thr > 60 {
		t.Fatalf("batch-1 decode throughput %v outside plausible band", thr)
	}
}

func TestEngineOrderingDecode(t *testing.T) {
	// Figure 1 (a-b): LMDeploy > TRL+FA > TRL for FP16 decode.
	for _, kv := range []int{256, 2048} {
		for _, batch := range []int{1, 4, 16} {
			trl := est(t, engine.TRL, "fp16", 1).DecodeThroughput(batch, kv)
			fa := est(t, engine.TRLFA, "fp16", 1).DecodeThroughput(batch, kv)
			lmd := est(t, engine.LMDeploy, "fp16", 1).DecodeThroughput(batch, kv)
			if !(lmd > fa && fa > trl) {
				t.Fatalf("kv=%d b=%d: engine ordering violated: trl=%v fa=%v lmd=%v", kv, batch, trl, fa, lmd)
			}
		}
	}
}

func TestDecodeThroughputScalesWithBatch(t *testing.T) {
	e := est(t, engine.LMDeploy, "fp16", 1)
	t1 := e.DecodeThroughput(1, 1024)
	t8 := e.DecodeThroughput(8, 1024)
	if t8 <= t1*2 {
		t.Fatalf("batching should amortize weight reads: b1=%v b8=%v", t1, t8)
	}
}

func TestSparseDecodeAdvantageGrowsWithKVLen(t *testing.T) {
	// Figure 1 (i-l): sparse methods keep their advantage at long KV.
	fp := est(t, engine.LMDeploy, "fp16", 1)
	st := est(t, engine.LMDeploy, "stream-512", 1)
	speedupShort := st.DecodeThroughput(8, 512) / fp.DecodeThroughput(8, 512)
	speedupLong := st.DecodeThroughput(8, 6144) / fp.DecodeThroughput(8, 6144)
	if speedupLong <= speedupShort {
		t.Fatalf("stream advantage should grow with KV len: short=%v long=%v", speedupShort, speedupLong)
	}
	if speedupLong < 1.2 {
		t.Fatalf("stream at heavy settings should clearly win: %v", speedupLong)
	}
}

func TestQuantDecodeGainsDiminishVsSparse(t *testing.T) {
	// Observation 2 / Figure 1 (k): at heavy settings sparse > quant.
	fp := est(t, engine.LMDeploy, "fp16", 1)
	k4 := est(t, engine.LMDeploy, "kivi-4", 1)
	st := est(t, engine.LMDeploy, "stream-512", 1)
	kSpeed := k4.DecodeThroughput(16, 6144) / fp.DecodeThroughput(16, 6144)
	sSpeed := st.DecodeThroughput(16, 6144) / fp.DecodeThroughput(16, 6144)
	if sSpeed <= kSpeed {
		t.Fatalf("sparse %v should beat quant %v at heavy settings", sSpeed, kSpeed)
	}
}

func TestPrefillOrdering(t *testing.T) {
	// Figure 1 (e-h): H2O lowest, GEAR below baseline, KIVI and Stream
	// near baseline.
	for _, p := range []int{1024, 4096} {
		fp := est(t, engine.LMDeploy, "fp16", 1).PrefillThroughput(1, p)
		k4 := est(t, engine.LMDeploy, "kivi-4", 1).PrefillThroughput(1, p)
		g4 := est(t, engine.LMDeploy, "gear-4", 1).PrefillThroughput(1, p)
		h2o := est(t, engine.LMDeploy, "h2o-512", 1).PrefillThroughput(1, p)
		st := est(t, engine.LMDeploy, "stream-512", 1).PrefillThroughput(1, p)
		if !(h2o < g4 && g4 < fp) {
			t.Fatalf("p=%d: prefill ordering violated: h2o=%v g4=%v fp=%v", p, h2o, g4, fp)
		}
		if k4 < fp*0.9 || k4 > fp*1.15 {
			t.Fatalf("p=%d: kivi prefill %v should be near baseline %v", p, k4, fp)
		}
		if st < fp*0.85 || st > fp*1.1 {
			t.Fatalf("p=%d: stream prefill %v should be near baseline %v", p, st, fp)
		}
	}
}

func TestH2OPrefillGapWidensWithPromptLength(t *testing.T) {
	fp := est(t, engine.LMDeploy, "fp16", 1)
	h := est(t, engine.LMDeploy, "h2o-512", 1)
	ratioShort := h.PrefillThroughput(1, 512) / fp.PrefillThroughput(1, 512)
	ratioLong := h.PrefillThroughput(1, 6144) / fp.PrefillThroughput(1, 6144)
	if ratioLong >= ratioShort {
		t.Fatalf("H2O prefill gap should widen: short=%v long=%v", ratioShort, ratioLong)
	}
	if ratioLong > 0.75 {
		t.Fatalf("H2O at long prompts should be clearly below baseline: %v", ratioLong)
	}
}

func TestPrefillBaselinePlausible(t *testing.T) {
	// Table 3: FP16 prefill at TP=1 is ~6610 tok/s (batch and prompt per
	// the paper's synthetic setting). Allow a generous band.
	e := est(t, engine.LMDeploy, "fp16", 1)
	thr := e.PrefillThroughput(4, 1024)
	if thr < 4000 || thr > 10000 {
		t.Fatalf("prefill throughput %v outside plausible band", thr)
	}
}

func TestTPImprovesThroughputSublinearly(t *testing.T) {
	fp1 := est(t, engine.LMDeploy, "fp16", 1)
	fp2 := est(t, engine.LMDeploy, "fp16", 2)
	fp4 := est(t, engine.LMDeploy, "fp16", 4)
	p1 := fp1.PrefillThroughput(4, 1024)
	p2 := fp2.PrefillThroughput(4, 1024)
	p4 := fp4.PrefillThroughput(4, 1024)
	if !(p2 > p1 && p4 > p2) {
		t.Fatalf("prefill should improve with TP: %v %v %v", p1, p2, p4)
	}
	if p2 >= 2*p1 || p4 >= 4*p1 {
		t.Fatalf("TP scaling should be sublinear: %v %v %v", p1, p2, p4)
	}
}

func TestTPErodesCompressionSpeedup(t *testing.T) {
	// Table 3's key finding: compression speedups diminish as TP grows,
	// because TP relieves per-GPU bandwidth pressure.
	speedup := func(tp int) float64 {
		fp := est(t, engine.LMDeploy, "fp16", tp)
		st := est(t, engine.LMDeploy, "stream-512", tp)
		return st.DecodeThroughput(4, 2048) / fp.DecodeThroughput(4, 2048)
	}
	s1, s4 := speedup(1), speedup(4)
	if s4 >= s1 {
		t.Fatalf("TP should erode stream speedup: tp1=%v tp4=%v", s1, s4)
	}
}

func TestH2ODecodeHurtsUnderTP(t *testing.T) {
	// Table 3 decode: H2O is 1.34× at TP=1 but ≤1 at TP=2/4 — the eviction
	// path does not scale with TP.
	speedup := func(tp int) float64 {
		fp := est(t, engine.LMDeploy, "fp16", tp)
		h := est(t, engine.LMDeploy, "h2o-512", tp)
		return h.DecodeThroughput(4, 2048) / fp.DecodeThroughput(4, 2048)
	}
	s1, s2 := speedup(1), speedup(2)
	if s1 <= 1 {
		t.Fatalf("H2O at TP=1 heavy KV should win: %v", s1)
	}
	if s2 >= s1 {
		t.Fatalf("H2O speedup should fall under TP: tp1=%v tp2=%v", s1, s2)
	}
}

func TestAttentionTimeSparseFlat(t *testing.T) {
	// Figure 3(b): sparse attention time stays flat across KV length.
	st := est(t, engine.LMDeploy, "stream-512", 1)
	fp := est(t, engine.LMDeploy, "fp16", 1)
	stShort := st.AttentionDecodeTimeCumulative(1, 1000, 10)
	stLong := st.AttentionDecodeTimeCumulative(1, 4000, 10)
	fpShort := fp.AttentionDecodeTimeCumulative(1, 1000, 10)
	fpLong := fp.AttentionDecodeTimeCumulative(1, 4000, 10)
	if stLong > stShort*1.05 {
		t.Fatalf("sparse attention time should be flat: %v vs %v", stShort, stLong)
	}
	if fpLong < fpShort*2 {
		t.Fatalf("fp16 attention time should grow with KV: %v vs %v", fpShort, fpLong)
	}
}

func TestAttentionPrefillTimeOrdering(t *testing.T) {
	// Figure 3(a): H2O and GEAR attention-layer time above FP16 in prefill.
	fp := est(t, engine.LMDeploy, "fp16", 1).AttentionPrefillTime(1, 4096)
	h := est(t, engine.LMDeploy, "h2o-512", 1).AttentionPrefillTime(1, 4096)
	g := est(t, engine.LMDeploy, "gear-4", 1).AttentionPrefillTime(1, 4096)
	if h <= fp || g <= fp {
		t.Fatalf("method attention time should exceed baseline: fp=%v h2o=%v gear=%v", fp, h, g)
	}
}

func TestMemoryOOMShape(t *testing.T) {
	// Figure 1(l): quantisation methods hit OOM at heavy settings where
	// sparse survives; FP16 OOMs even earlier at high batch.
	fp := est(t, engine.LMDeploy, "fp16", 1)
	k4 := est(t, engine.LMDeploy, "kivi-4", 1)
	st := est(t, engine.LMDeploy, "stream-512", 1)
	if !st.Fits(16, 8192) {
		t.Fatal("sparse should fit at batch 16 × 8192")
	}
	if fp.Fits(16, 8192) {
		t.Fatal("fp16 should OOM at batch 16 × 8192 on 48GB")
	}
	if k4.Fits(48, 8192) {
		t.Fatal("quant workspace should OOM at extreme settings")
	}
	if !k4.Fits(1, 2048) {
		t.Fatal("quant should fit at light settings")
	}
}

func TestEndToEndLatencyMonotoneInOutputLen(t *testing.T) {
	e := est(t, engine.LMDeploy, "fp16", 1)
	short := e.EndToEndLatency(1, 512, 64)
	long := e.EndToEndLatency(1, 512, 256)
	if long <= short {
		t.Fatalf("longer outputs must take longer: %v vs %v", short, long)
	}
}

func TestH800FasterThanA6000(t *testing.T) {
	a, err := New(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("fp16"), 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(gpu.H800, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet("fp16"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.DecodeThroughput(1, 2048) <= a.DecodeThroughput(1, 2048) {
		t.Fatal("H800 should out-decode A6000")
	}
	if h.PrefillThroughput(1, 2048) <= a.PrefillThroughput(1, 2048) {
		t.Fatal("H800 should out-prefill A6000")
	}
}

func TestLargerModelSlower(t *testing.T) {
	small := est(t, engine.LMDeploy, "fp16", 1)
	big, err := New(gpu.A6000, model.LLaMA2_13B, engine.LMDeploy, compress.MustGet("fp16"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.DecodeThroughput(1, 1024) >= small.DecodeThroughput(1, 1024) {
		t.Fatal("13B should decode slower than 7B")
	}
}

func TestStreamSpeedupTRLvsLMD(t *testing.T) {
	// Figure 1 (c-d) / Observation 1: relative speedups measured on TRL do
	// not transfer to production engines; at moderate settings the TRL
	// speedup exceeds the LMDeploy speedup.
	speedupOn := func(eng engine.Profile) float64 {
		fp := est(t, eng, "fp16", 1)
		st := est(t, eng, "stream-512", 1)
		return st.DecodeThroughput(8, 2048) / fp.DecodeThroughput(8, 2048)
	}
	trl := speedupOn(engine.TRL)
	lmd := speedupOn(engine.LMDeploy)
	if trl <= lmd {
		t.Fatalf("TRL speedup %v should exceed LMDeploy speedup %v", trl, lmd)
	}
}
