package fleet

import (
	"context"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/tensor"
)

// fleetSparseReference mirrors the sched package's sparse ground truth:
// dense prefill, then greedy sparse decode at topK, straight through the
// model. Migrated or preempted sparse serving must reproduce these streams.
func fleetSparseReference(t *testing.T, prompts [][]int, maxNew, topK, pageTokens int) [][]int {
	t.Helper()
	m := model.New(model.Tiny(), seed)
	ws := m.NewWorkspace()
	out := make([][]int, len(prompts))
	for i, prompt := range prompts {
		cache := kvcache.NewPagedKVQuant(m.CacheShape(), pageTokens, 0, 0)
		cache.EnableKeySummaries()
		sr := m.PrefillInto(ws, prompt, cache)
		m.SetSparseTopK(topK)
		next := tensor.Argmax(sr.Logits)
		toks := make([]int, 0, maxNew)
		pos := len(prompt)
		for len(toks) < maxNew {
			toks = append(toks, next)
			sr = m.ForwardInto(ws, next, pos, cache)
			next = tensor.Argmax(sr.Logits)
			pos++
		}
		m.SetSparseTopK(0)
		out[i] = toks
	}
	return out
}

// TestSparseMigrationBitIdentical is the cross-engine replay gate: requests
// pinned to a page-starved sparse engine migrate to an idle peer, which
// re-advances the emitted suffix through sparse decode (Request.Replay) —
// every stream, migrated or not, must stay bit-identical to an
// unconstrained sparse run.
func TestSparseMigrationBitIdentical(t *testing.T) {
	prompts := make([][]int, 4)
	for i := range prompts {
		p := make([]int, 17+5*i)
		for j := range p {
			p[j] = (j*7 + i*31 + 3) % 512
		}
		prompts[i] = p
	}
	const maxNew, topK, pageTokens = 16, 2, 4
	want := fleetSparseReference(t, prompts, maxNew, topK, pageTokens)

	m := model.New(model.Tiny(), seed)
	m.SetSparseTopK(topK)
	p, err := New(m, Config{
		Engines: 2,
		Router:  pinRouter{to: 0},
		Migrate: true,
		Engine:  sched.Config{MaxBatch: 4, PageTokens: pageTokens, KVPages: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "sparse migrated")

	st := p.Stats()
	if st.Migrations == 0 {
		t.Fatal("budget never forced a migration; test is vacuous")
	}
	var sel, tot int64
	for _, es := range st.Engines {
		sel += es.SparsePagesSelected
		tot += es.SparsePagesTotal
	}
	if sel == 0 || sel >= tot {
		t.Fatalf("fleet sparse counters (sel=%d, tot=%d) show no real sparsity", sel, tot)
	}
}
