// Package fleet is the multi-engine serving layer: N independent
// continuous-batching engines (internal/sched) behind a live router, plus
// cross-engine migration of preemption victims.
//
// Where internal/serving routes simulated requests over the analytical cost
// model and a single sched.Engine serves one replica, a Pool serves live
// traffic across replicas: every Submit samples a fresh serving.GPUView per
// engine from real engine state (backlog tokens, running-batch size, free
// KV pages, in-flight chunked-prefill debt, measured step time) and asks
// the router to place the request. The same router policies that ran only
// inside the discrete-event simulator therefore make their decisions on
// wall-clock signals here — one Router contract, three backends.
//
// Migration uses the cheap path: when an engine preempts a request and
// another engine has page headroom for its whole remaining lifetime, the
// request is serialized as prompt + already-emitted tokens and re-admitted
// there. The target rebuilds the KV cache through the engines' bit-identical
// recompute plane, so a migrated stream is byte-identical to an unmigrated
// one; migration only costs time, which the pool's wall-clock Outcomes
// expose. The pool owns the caller-facing token stream: a per-request
// forwarder goroutine splices the per-engine streams together and remaps
// token positions, so callers never observe the hop.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// ErrBadRoute reports a router that returned an engine index outside
// [0, engines) — the live counterpart of the simulator's invalid-GPU error.
var ErrBadRoute = errors.New("fleet: router returned an out-of-range engine index")

// Config sizes a Pool.
type Config struct {
	// Engines is the replica count (>= 1).
	Engines int
	// Methods labels each engine's router-visible compression method
	// (trace replay runs heterogeneous labels over the same fp16 data
	// plane, exactly like the simulator). Empty entries and a short or nil
	// slice default to fp16.
	Methods []compress.Method
	// Router places each submitted request; required.
	Router serving.Router
	// Migrate enables cross-engine re-admission of preemption victims.
	// It only takes effect with Engines > 1 and a bounded page budget
	// (unbounded engines never preempt).
	Migrate bool
	// Engine is the per-replica scheduler configuration. GPU, Epoch and
	// Migrate are owned by the pool and overwritten.
	Engine sched.Config
}

// Stats is a snapshot of pool-lifetime counters.
type Stats struct {
	// Engines holds each replica's scheduler counters, pool order.
	Engines []sched.Stats
	// Routed counts router placements per engine (migration hops are not
	// router decisions and are counted separately).
	Routed []int
	// Migrations counts completed cross-engine re-admissions.
	Migrations int
}

// flight is one request's pool-level lifecycle. The forwarder goroutine
// owns every field except migrateTo, which the migration hook writes under
// the pool lock.
type flight struct {
	key       int // engine-visible request id, unique per pool
	id        int // caller's request id, stamped on the outcome
	prompt    []int
	maxNew    int
	predicted int
	arrival   float64
	start     float64
	firstTok  float64
	ctx       context.Context
	out       chan sched.Token
	generated []int
	engine    int // engine currently serving the request
	hops      int // completed migrations
	// migrateTo is the hook-chosen re-admission target, -1 when the next
	// stream close means retirement rather than migration.
	migrateTo int
}

// Pool runs N scheduling engines over one shared model behind a router.
type Pool struct {
	cfg     Config
	engines []*sched.Engine
	methods []compress.Method
	epoch   time.Time

	mu         sync.Mutex
	flights    map[int]*flight
	outcomes   []serving.Outcome
	routed     []int
	migrations int
	nextKey    int
	pending    int
	waiters    []chan struct{}
	closed     bool
	aborted    bool
	wg         sync.WaitGroup
}

// New starts a pool of cfg.Engines schedulers over the model (weights are
// shared and immutable across engines). All engines share one clock epoch,
// so views and outcomes are comparable across replicas.
func New(m *model.Model, cfg Config) (*Pool, error) {
	if cfg.Engines <= 0 {
		return nil, fmt.Errorf("fleet: need at least one engine, got %d", cfg.Engines)
	}
	if cfg.Router == nil {
		return nil, fmt.Errorf("fleet: nil router")
	}
	epoch := cfg.Engine.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	fp16, err := compress.Get("fp16")
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:     cfg,
		methods: make([]compress.Method, cfg.Engines),
		epoch:   epoch,
		flights: map[int]*flight{},
		routed:  make([]int, cfg.Engines),
	}
	for i := range p.methods {
		if i < len(cfg.Methods) && cfg.Methods[i].Name != "" {
			p.methods[i] = cfg.Methods[i]
		} else {
			p.methods[i] = fp16
		}
	}
	for i := 0; i < cfg.Engines; i++ {
		ecfg := cfg.Engine
		ecfg.GPU = i
		ecfg.Epoch = epoch
		ecfg.Migrate = nil
		if cfg.Migrate && cfg.Engines > 1 {
			ecfg.Migrate = p.onPreempt
		}
		eng, err := sched.New(m, ecfg)
		if err != nil {
			for _, prev := range p.engines {
				prev.Close()
			}
			return nil, err
		}
		p.engines = append(p.engines, eng)
	}
	return p, nil
}

// Size returns the engine count.
func (p *Pool) Size() int { return len(p.engines) }

// Engine returns replica i's scheduler (tests and stats plumbing).
func (p *Pool) Engine(i int) *sched.Engine { return p.engines[i] }

// now returns seconds since the pool epoch.
func (p *Pool) now() float64 { return time.Since(p.epoch).Seconds() }

// Views samples every engine's live state into router-visible GPU views.
// FreeAt approximates the committed-work horizon from the backlog and the
// engine's measured per-iteration step time, so wait-sensitive policies
// (w/throughput, w/both) see a live queueing-delay estimate instead of the
// simulator's analytical one.
func (p *Pool) Views(now float64) []serving.GPUView {
	out := make([]serving.GPUView, len(p.engines))
	for i, e := range p.engines {
		v := e.View()
		gv := serving.GPUView{
			ID:            i,
			Method:        p.methods[i],
			FreeAt:        now,
			QueuedTokens:  v.BacklogTokens,
			Now:           now,
			Running:       v.Running,
			FreePages:     v.FreePages(),
			PageBudget:    v.PageBudget,
			PageTokens:    v.PageTokens,
			PrefillTokens: v.PrefillTokens,
		}
		if v.StepSeconds > 0 && v.BacklogTokens > 0 {
			width := v.Running
			if width < 1 {
				width = 1
			}
			gv.FreeAt = now + v.BacklogTokens/float64(width)*v.StepSeconds
		}
		out[i] = gv
	}
	return out
}

// Submit routes a request onto an engine and returns its token stream. The
// channel is buffered to the request's full budget and closes when the
// request completes, ctx is cancelled, or the pool shuts down; cross-engine
// migrations are invisible on it beyond the recompute delay. A router
// return outside [0, Size()) fails with ErrBadRoute, mirroring the
// simulator's treatment of invalid routes.
func (p *Pool) Submit(ctx context.Context, req sched.Request) (<-chan sched.Token, error) {
	if len(req.Prompt) == 0 {
		return nil, fmt.Errorf("fleet: empty prompt")
	}
	if req.MaxNew <= 0 {
		req.MaxNew = p.engines[0].Config().MaxNew
	}
	if ctx == nil {
		ctx = context.Background()
	}
	now := p.now()
	if req.Arrival < 0 {
		req.Arrival = now
	}
	pred := req.Predicted
	if pred <= 0 {
		pred = req.MaxNew
	}
	// The router sees the request in the same vocabulary the simulator and
	// the predictors were trained on: lengths plus the predicted-response
	// hint in RefLen.
	gi := p.cfg.Router.Route(workload.Request{
		ID: req.ID, PromptLen: len(req.Prompt), RefLen: pred, ArrivalTime: req.Arrival,
	}, p.Views(now))
	if gi < 0 || gi >= len(p.engines) {
		return nil, fmt.Errorf("%w: router %s chose %d of %d engines",
			ErrBadRoute, p.cfg.Router.Name(), gi, len(p.engines))
	}

	f := &flight{
		id:        req.ID,
		prompt:    req.Prompt,
		maxNew:    req.MaxNew,
		predicted: pred,
		arrival:   req.Arrival,
		start:     -1,
		firstTok:  -1,
		ctx:       ctx,
		out:       make(chan sched.Token, req.MaxNew),
		engine:    gi,
		migrateTo: -1,
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, sched.ErrClosed
	}
	p.nextKey++
	f.key = p.nextKey
	p.flights[f.key] = f
	p.routed[gi]++
	p.pending++
	p.mu.Unlock()

	ch, err := p.engines[gi].Submit(ctx, sched.Request{
		ID: f.key, Prompt: req.Prompt, MaxNew: req.MaxNew, Predicted: pred, Arrival: req.Arrival,
	})
	if err != nil {
		p.mu.Lock()
		delete(p.flights, f.key)
		p.routed[gi]--
		p.releaseLocked()
		p.mu.Unlock()
		return nil, err
	}
	f.start = p.now()
	p.wg.Add(1)
	go p.run(f, ch)
	return f.out, nil
}

// onPreempt is the sched.Config.Migrate hook: engine gpu just evicted req
// under page pressure. Accept the handoff only when another engine has page
// headroom for the request's entire remaining lifetime (prompt + emitted
// tokens + remaining budget, plus the first-decode-step reserve) — anything
// less and the target could immediately preempt it back, so a local
// requeue-and-wait is at least as good. Called from the engine loop with no
// engine lock held.
func (p *Pool) onPreempt(gpu int, req sched.Request, generated int) bool {
	p.mu.Lock()
	f := p.flights[req.ID]
	closed := p.closed
	p.mu.Unlock()
	if f == nil || closed {
		return false
	}
	pageTokens := p.engines[gpu].Config().PageTokens
	need := kvcache.PagesFor(len(req.Prompt)+req.MaxNew, pageTokens) + 1
	best, bestFree := -1, 0
	for i, e := range p.engines {
		if i == gpu {
			continue
		}
		v := e.View()
		free := v.FreePages()
		if free < 0 { // unbounded: always room
			free = need + v.PageBudget + 1
		}
		if free >= need && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.flights[req.ID] != f {
		return false
	}
	f.migrateTo = best
	return true
}

// run forwards one flight's engine stream to the caller, re-admitting the
// request on the hook-chosen engine each time a stream closes with a
// migration pending. Token positions are remapped to the caller's original
// prompt, so continuation submissions (whose engine-side prompt includes
// previously emitted tokens) are invisible.
func (p *Pool) run(f *flight, ch <-chan sched.Token) {
	defer p.wg.Done()
	for {
		for tok := range ch {
			if f.firstTok < 0 {
				f.firstTok = p.now()
			}
			f.generated = append(f.generated, tok.ID)
			f.out <- sched.Token{ID: tok.ID, Pos: len(f.prompt) + len(f.generated) - 1}
		}
		p.mu.Lock()
		target := f.migrateTo
		f.migrateTo = -1
		if target < 0 || p.closed || f.ctx.Err() != nil || len(f.generated) >= f.maxNew {
			p.finishLocked(f)
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		// Serialize prompt + emitted tokens and re-admit; the target's
		// chunked prefill rebuilds the KV cache bit-identically. Replay
		// marks the emitted suffix so a sparse-attention target re-advances
		// it through decode steps instead (dense targets ignore it).
		cont := make([]int, 0, len(f.prompt)+len(f.generated))
		cont = append(cont, f.prompt...)
		cont = append(cont, f.generated...)
		rem := f.maxNew - len(f.generated)
		predRem := f.predicted - len(f.generated)
		if predRem < 1 {
			predRem = 1
		}
		creq := sched.Request{ID: f.key, Prompt: cont, MaxNew: rem, Predicted: predRem,
			Arrival: f.arrival, Replay: len(f.generated)}
		nch, err := p.engines[target].Submit(f.ctx, creq)
		if err != nil {
			// Headroom vanished between the hook and the re-admission;
			// fall back to the engine that evicted us (its admission
			// invariant guarantees the request still fits alone).
			target = f.engine
			nch, err = p.engines[target].Submit(f.ctx, creq)
			if err != nil {
				p.mu.Lock()
				p.finishLocked(f)
				p.mu.Unlock()
				return
			}
		}
		p.mu.Lock()
		if target != f.engine {
			p.migrations++
			f.hops++
		}
		f.engine = target
		p.mu.Unlock()
		ch = nch
	}
}

// finishLocked retires a flight: the caller-facing stream closes and the
// pool records its wall-clock outcome (unless Close already threw the
// request away, which flips the aborted flag drains report). Outcome
// timing is the client's view — arrival at Submit, first token and finish
// as forwarded — so routing, queueing and migration delays are all inside
// TTFT/E2E; Preemptions counts cross-engine hops (engine-local recompute
// preemptions stay in the per-engine Stats). The caller holds mu.
func (p *Pool) finishLocked(f *flight) {
	delete(p.flights, f.key)
	close(f.out)
	if p.closed && len(f.generated) < f.maxNew && f.ctx.Err() == nil {
		p.aborted = true
	} else {
		now := p.now()
		first := f.firstTok
		if first < 0 {
			first = now
		}
		start := f.start
		if start < 0 {
			start = now
		}
		p.outcomes = append(p.outcomes, serving.Outcome{
			Req: workload.Request{
				ID: f.id, PromptLen: len(f.prompt), RefLen: f.predicted, ArrivalTime: f.arrival,
			},
			GPU:         f.engine,
			RespLen:     len(f.generated),
			Start:       start,
			FirstToken:  first,
			Finish:      now,
			Preemptions: f.hops,
		})
	}
	p.releaseLocked()
}

// releaseLocked drops the pending count and releases drain waiters at zero.
func (p *Pool) releaseLocked() {
	p.pending--
	if p.pending == 0 {
		for _, w := range p.waiters {
			close(w)
		}
		p.waiters = nil
	}
}

// Drain blocks until every request submitted so far has retired at the
// pool level — including any migration hops in flight — or ctx is
// cancelled. A drain released because Close aborted in-flight requests
// reports sched.ErrClosed, matching the engine contract.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return sched.ErrClosed
	}
	if p.pending == 0 {
		p.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	select {
	case <-w:
		p.mu.Lock()
		aborted := p.aborted
		p.mu.Unlock()
		if aborted {
			return sched.ErrClosed
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts every engine down and waits for the forwarders to retire
// their flights. In-flight streams close without completing. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if already {
		return
	}
	for _, e := range p.engines {
		e.Close()
	}
	p.wg.Wait()
}

// Outcomes returns the pool-level record of every retired request so far,
// sorted by request ID — the same vocabulary the simulator and the
// single-engine scheduler emit, measured against the shared pool epoch.
func (p *Pool) Outcomes() []serving.Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]serving.Outcome(nil), p.outcomes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Req.ID < out[j].Req.ID })
	return out
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	st := Stats{
		Routed:     append([]int(nil), p.routed...),
		Migrations: p.migrations,
	}
	p.mu.Unlock()
	st.Engines = make([]sched.Stats, len(p.engines))
	for i, e := range p.engines {
		st.Engines[i] = e.Stats()
	}
	return st
}
