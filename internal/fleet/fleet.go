// Package fleet is the multi-engine serving layer: N independent
// continuous-batching engines (internal/sched) behind a live router, plus
// cross-engine migration of preemption victims.
//
// Where internal/serving routes simulated requests over the analytical cost
// model and a single sched.Engine serves one replica, a Pool serves live
// traffic across replicas: every Submit samples a fresh serving.GPUView per
// engine from real engine state (backlog tokens, running-batch size, free
// KV pages, in-flight chunked-prefill debt, measured step time) and asks
// the router to place the request. The same router policies that ran only
// inside the discrete-event simulator therefore make their decisions on
// wall-clock signals here — one Router contract, three backends.
//
// The pool is also the fleet's failure domain boundary. An engine whose
// scheduling loop panics is marked failed by its own recover boundary
// (sched.ErrEngineFailed) and quarantined here: Submit stops offering it to
// the router, the preemption hook stops choosing it as a migration target,
// and every request it was holding is failed over to a healthy replica
// through the same serialize-and-replay path migration uses — so recovery
// is bit-identical recompute, not approximation. A request that exhausts
// its failover budget, or finds no healthy engine, terminates its stream
// locally with an error token wrapping the cause instead of hanging.
//
// Migration uses the cheap path: when an engine preempts a request and
// another engine has page headroom for its whole remaining lifetime, the
// request is serialized as prompt + already-emitted tokens and re-admitted
// there. The target rebuilds the KV cache through the engines' bit-identical
// recompute plane, so a migrated stream is byte-identical to an unmigrated
// one; migration only costs time, which the pool's wall-clock Outcomes
// expose. The pool owns the caller-facing token stream: a per-request
// forwarder goroutine splices the per-engine streams together and remaps
// token positions, so callers never observe the hop.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/faults"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// ErrBadRoute reports a router that returned an engine index outside
// [0, engines) — the live counterpart of the simulator's invalid-GPU error.
var ErrBadRoute = errors.New("fleet: router returned an out-of-range engine index")

// Config sizes a Pool.
type Config struct {
	// Engines is the replica count (>= 1).
	Engines int
	// Methods labels each engine's router-visible compression method
	// (trace replay runs heterogeneous labels over the same fp16 data
	// plane, exactly like the simulator). Empty entries and a short or nil
	// slice default to fp16.
	Methods []compress.Method
	// Router places each submitted request; required.
	Router serving.Router
	// Migrate enables cross-engine re-admission of preemption victims.
	// It only takes effect with Engines > 1 and a bounded page budget
	// (unbounded engines never preempt).
	Migrate bool
	// Engine is the per-replica scheduler configuration. GPU, Epoch and
	// Migrate are owned by the pool and overwritten.
	Engine sched.Config
	// Faults, when non-nil, threads the deterministic fault-injection
	// harness into every replica: engine i runs with the injector's
	// StepHook(i)/SubmitHook(i) in its scheduler config, so chaos
	// scenarios can kill, storm or slow a chosen engine at exact points
	// in its event stream. Nil outside tests and chaos benches.
	Faults *faults.Injector
}

// Stats is a snapshot of pool-lifetime counters.
type Stats struct {
	// Engines holds each replica's scheduler counters, pool order.
	Engines []sched.Stats
	// Routed counts router placements per engine (migration hops are not
	// router decisions and are counted separately).
	Routed []int
	// Migrations counts completed cross-engine re-admissions.
	Migrations int
	// MigrationFailed counts migration handoffs whose hook-chosen target
	// rejected the re-Submit; the request was then requeued on its source
	// engine (or another healthy replica) rather than dropped.
	MigrationFailed int
	// FailedOver counts failure-driven re-homings: in-flight requests
	// moved off a failed engine and resumed elsewhere via replay.
	FailedOver int
	// EngineFailures counts quarantined engines (scheduling loop
	// panicked; Engine.Failed() != nil).
	EngineFailures int
}

// flight is one request's pool-level lifecycle. The forwarder goroutine
// owns every field except migrateTo, which the migration hook writes under
// the pool lock.
type flight struct {
	key       int // engine-visible request id, unique per pool
	id        int // caller's request id, stamped on the outcome
	prompt    []int
	maxNew    int
	predicted int
	arrival   float64
	deadline  float64 // absolute TTFT deadline on the pool clock, 0 = none
	start     float64
	firstTok  float64
	ctx       context.Context
	out       chan sched.Token
	generated []int
	engine    int // engine currently serving the request
	hops      int // completed migrations
	failovers int // failure-driven re-homings consumed (capped)
	// migrateTo is the hook-chosen re-admission target, -1 when the next
	// stream close means retirement rather than migration.
	migrateTo int
}

// Pool runs N scheduling engines over one shared model behind a router.
type Pool struct {
	cfg     Config
	engines []*sched.Engine
	methods []compress.Method
	epoch   time.Time

	mu              sync.Mutex
	flights         map[int]*flight
	outcomes        []serving.Outcome
	routed          []int
	migrations      int
	migrationFailed int
	failedOver      int
	nextKey         int
	pending         int
	waiters         []chan struct{}
	closed          bool
	aborted         bool
	wg              sync.WaitGroup
}

// New starts a pool of cfg.Engines schedulers over the model (weights are
// shared and immutable across engines). All engines share one clock epoch,
// so views and outcomes are comparable across replicas.
func New(m *model.Model, cfg Config) (*Pool, error) {
	if cfg.Engines <= 0 {
		return nil, fmt.Errorf("fleet: need at least one engine, got %d", cfg.Engines)
	}
	if cfg.Router == nil {
		return nil, fmt.Errorf("fleet: nil router")
	}
	epoch := cfg.Engine.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	fp16, err := compress.Get("fp16")
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:     cfg,
		methods: make([]compress.Method, cfg.Engines),
		epoch:   epoch,
		flights: map[int]*flight{},
		routed:  make([]int, cfg.Engines),
	}
	for i := range p.methods {
		if i < len(cfg.Methods) && cfg.Methods[i].Name != "" {
			p.methods[i] = cfg.Methods[i]
		} else {
			p.methods[i] = fp16
		}
	}
	for i := 0; i < cfg.Engines; i++ {
		ecfg := cfg.Engine
		ecfg.GPU = i
		ecfg.Epoch = epoch
		ecfg.Migrate = nil
		if cfg.Migrate && cfg.Engines > 1 {
			ecfg.Migrate = p.onPreempt
		}
		if cfg.Faults != nil {
			ecfg.StepHook = cfg.Faults.StepHook(i)
			ecfg.SubmitHook = cfg.Faults.SubmitHook(i)
		}
		eng, err := sched.New(m, ecfg)
		if err != nil {
			for _, prev := range p.engines {
				prev.Close()
			}
			return nil, err
		}
		p.engines = append(p.engines, eng)
	}
	return p, nil
}

// Size returns the engine count.
func (p *Pool) Size() int { return len(p.engines) }

// Engine returns replica i's scheduler (tests and stats plumbing).
func (p *Pool) Engine(i int) *sched.Engine { return p.engines[i] }

// now returns seconds since the pool epoch.
func (p *Pool) now() float64 { return time.Since(p.epoch).Seconds() }

// Now is the public form of the pool clock — the origin Request.Arrival
// and Request.Deadline are measured against, shared by every engine.
func (p *Pool) Now() float64 { return p.now() }

// Views samples every engine's live state into router-visible GPU views.
// FreeAt approximates the committed-work horizon from the backlog and the
// engine's measured per-iteration step time, so wait-sensitive policies
// (w/throughput, w/both) see a live queueing-delay estimate instead of the
// simulator's analytical one.
func (p *Pool) Views(now float64) []serving.GPUView {
	out := make([]serving.GPUView, len(p.engines))
	for i, e := range p.engines {
		v := e.View()
		gv := serving.GPUView{
			ID:            i,
			Method:        p.methods[i],
			FreeAt:        now,
			QueuedTokens:  v.BacklogTokens,
			Now:           now,
			Running:       v.Running,
			FreePages:     v.FreePages(),
			PageBudget:    v.PageBudget,
			PageTokens:    v.PageTokens,
			PrefillTokens: v.PrefillTokens,
		}
		if v.StepSeconds > 0 && v.BacklogTokens > 0 {
			width := v.Running
			if width < 1 {
				width = 1
			}
			gv.FreeAt = now + v.BacklogTokens/float64(width)*v.StepSeconds
		}
		out[i] = gv
	}
	return out
}

// healthyViews filters the live views down to engines the router may still
// be offered: quarantined replicas (Failed() != nil) disappear from the
// routing surface entirely. Each view's ID stays the engine's real pool
// index, so a router's slice-index choice maps back unambiguously.
func (p *Pool) healthyViews(now float64) []serving.GPUView {
	all := p.Views(now)
	out := all[:0:0]
	for i, v := range all {
		if p.engines[i].Failed() == nil {
			out = append(out, v)
		}
	}
	return out
}

// Submit routes a request onto a healthy engine and returns its token
// stream. The channel is buffered to the request's full budget (plus one
// slot for a terminal error token) and closes when the request completes,
// is shed or failed past recovery (the final token carries Err), ctx is
// cancelled, or the pool shuts down; cross-engine migrations and failovers
// are invisible on it beyond the recompute delay. A router return outside
// the offered views fails with ErrBadRoute, mirroring the simulator's
// treatment of invalid routes; a fleet with every engine quarantined fails
// with sched.ErrEngineFailed.
func (p *Pool) Submit(ctx context.Context, req sched.Request) (<-chan sched.Token, error) {
	if len(req.Prompt) == 0 {
		return nil, fmt.Errorf("fleet: empty prompt")
	}
	if req.MaxNew <= 0 {
		req.MaxNew = p.engines[0].Config().MaxNew
	}
	if ctx == nil {
		ctx = context.Background()
	}
	now := p.now()
	if req.Arrival < 0 {
		req.Arrival = now
	}
	pred := req.Predicted
	if pred <= 0 {
		pred = req.MaxNew
	}
	// The router sees the request in the same vocabulary the simulator and
	// the predictors were trained on: lengths plus the predicted-response
	// hint in RefLen — and only the healthy slice of the fleet.
	views := p.healthyViews(now)
	if len(views) == 0 {
		return nil, fmt.Errorf("%w: all %d engines quarantined", sched.ErrEngineFailed, len(p.engines))
	}
	gi := p.cfg.Router.Route(workload.Request{
		ID: req.ID, PromptLen: len(req.Prompt), RefLen: pred, ArrivalTime: req.Arrival,
	}, views)
	if gi < 0 || gi >= len(views) {
		return nil, fmt.Errorf("%w: router %s chose %d of %d healthy engines",
			ErrBadRoute, p.cfg.Router.Name(), gi, len(views))
	}
	gi = views[gi].ID

	// Resolve the TTFT deadline here, mirroring the engine's stamping
	// rule, so failover re-admissions carry the original deadline instead
	// of restarting the clock on a new engine.
	dl := req.Deadline
	if dl < 0 {
		dl = 0
	} else if dl == 0 && p.cfg.Engine.AdmissionTimeout > 0 {
		dl = req.Arrival + p.cfg.Engine.AdmissionTimeout
	}

	f := &flight{
		id:        req.ID,
		prompt:    req.Prompt,
		maxNew:    req.MaxNew,
		predicted: pred,
		arrival:   req.Arrival,
		deadline:  dl,
		start:     -1,
		firstTok:  -1,
		ctx:       ctx,
		out:       make(chan sched.Token, req.MaxNew+1),
		engine:    gi,
		migrateTo: -1,
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, sched.ErrClosed
	}
	p.nextKey++
	f.key = p.nextKey
	p.flights[f.key] = f
	p.routed[gi]++
	p.pending++
	p.mu.Unlock()

	// The pool already resolved the deadline; negative tells the engine
	// not to stamp its own default on top.
	edl := f.deadline
	if edl == 0 {
		edl = -1
	}
	ch, err := p.engines[gi].Submit(ctx, sched.Request{
		ID: f.key, Prompt: req.Prompt, MaxNew: req.MaxNew, Predicted: pred, Arrival: req.Arrival,
		Deadline: edl,
	})
	if err != nil {
		p.mu.Lock()
		delete(p.flights, f.key)
		p.routed[gi]--
		p.releaseLocked()
		p.mu.Unlock()
		return nil, err
	}
	f.start = p.now()
	p.wg.Add(1)
	go p.run(f, ch)
	return f.out, nil
}

// onPreempt is the sched.Config.Migrate hook: engine gpu just evicted req
// under page pressure. Accept the handoff only when another engine has page
// headroom for the request's entire remaining lifetime (prompt + emitted
// tokens + remaining budget, plus the first-decode-step reserve) — anything
// less and the target could immediately preempt it back, so a local
// requeue-and-wait is at least as good. Called from the engine loop with no
// engine lock held.
func (p *Pool) onPreempt(gpu int, req sched.Request, generated int) bool {
	p.mu.Lock()
	f := p.flights[req.ID]
	closed := p.closed
	p.mu.Unlock()
	if f == nil || closed {
		return false
	}
	pageTokens := p.engines[gpu].Config().PageTokens
	need := kvcache.PagesFor(len(req.Prompt)+req.MaxNew, pageTokens) + 1
	best, bestFree := -1, 0
	for i, e := range p.engines {
		if i == gpu || e.Failed() != nil {
			continue
		}
		v := e.View()
		free := v.FreePages()
		if free < 0 { // unbounded: always room
			free = need + v.PageBudget + 1
		}
		if free >= need && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.flights[req.ID] != f {
		return false
	}
	f.migrateTo = best
	return true
}

// maxFailovers caps how many engine failures a single request may ride out
// before the pool stops re-homing it and terminates its stream with an
// error token — a rolling blackout must not pin a request (and its replayed
// prefill work) in an endless resubmit loop.
const maxFailovers = 3

// run forwards one flight's engine stream to the caller, re-admitting the
// request each time a stream closes with a migration pending or with its
// engine failed. Token positions are remapped to the caller's original
// prompt, so continuation submissions (whose engine-side prompt includes
// previously emitted tokens) are invisible. Engine-side terminal error
// tokens (deadline shed, engine failure) are never forwarded raw: shedding
// surfaces on the caller's stream as-is, failure triggers failover and only
// surfaces once recovery is exhausted.
func (p *Pool) run(f *flight, ch <-chan sched.Token) {
	defer p.wg.Done()
	for {
		var streamErr error
		for tok := range ch {
			if tok.Err != nil {
				// The engine is closing this stream and the token says
				// why; the pool decides below whether that is terminal
				// for the caller or just cause for failover.
				streamErr = tok.Err
				continue
			}
			if f.firstTok < 0 {
				f.firstTok = p.now()
			}
			f.generated = append(f.generated, tok.ID)
			f.out <- sched.Token{ID: tok.ID, Pos: len(f.prompt) + len(f.generated) - 1}
		}
		p.mu.Lock()
		target := f.migrateTo
		f.migrateTo = -1
		if p.closed || f.ctx.Err() != nil || len(f.generated) >= f.maxNew {
			p.finishLocked(f)
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		if streamErr != nil && !errors.Is(streamErr, sched.ErrEngineFailed) {
			// Shed past its deadline (or another engine-side terminal
			// condition): deliberate load shedding, not a fault to route
			// around. Surface the cause and retire.
			p.fail(f, streamErr)
			return
		}
		failed := streamErr != nil || p.engines[f.engine].Failed() != nil
		if target < 0 && !failed {
			// Closed without completing on a healthy engine with no
			// migration pending: engine Close racing pool shutdown.
			p.mu.Lock()
			p.finishLocked(f)
			p.mu.Unlock()
			return
		}
		if failed {
			f.failovers++
			if f.failovers > maxFailovers {
				p.fail(f, fmt.Errorf("%w: request %d gave up after %d failovers",
					sched.ErrEngineFailed, f.id, maxFailovers))
				return
			}
			// Any hook-chosen migration target predates the failure;
			// resubmit re-ranks the healthy engines itself.
			target = -1
		}

		// Serialize prompt + emitted tokens and re-admit; the target's
		// chunked prefill rebuilds the KV cache bit-identically. Replay
		// marks the emitted suffix so a sparse-attention target re-advances
		// it through decode steps instead (dense targets ignore it). A
		// continuation that already streamed opts out of deadline stamping
		// (negative): shedding a half-delivered response would break the
		// TTFT contract the deadline models; one still queued keeps its
		// original deadline and may legitimately be shed on arrival.
		cont := make([]int, 0, len(f.prompt)+len(f.generated))
		cont = append(cont, f.prompt...)
		cont = append(cont, f.generated...)
		rem := f.maxNew - len(f.generated)
		predRem := f.predicted - len(f.generated)
		if predRem < 1 {
			predRem = 1
		}
		dl := f.deadline
		if f.firstTok >= 0 || dl == 0 {
			dl = -1
		}
		creq := sched.Request{ID: f.key, Prompt: cont, MaxNew: rem, Predicted: predRem,
			Arrival: f.arrival, Replay: len(f.generated), Deadline: dl}
		nch, engine, err := p.resubmit(f, creq, target)
		if err != nil {
			p.fail(f, err)
			return
		}
		p.mu.Lock()
		if engine != f.engine {
			f.hops++
			if failed {
				p.failedOver++
			} else {
				p.migrations++
			}
		}
		f.engine = engine
		p.mu.Unlock()
		ch = nch
	}
}

// resubmit re-admits a continuation request after a migration handoff or an
// engine failure. Candidate order: the hook-chosen migration target (when
// there is one), then the source engine — whose admission invariant
// guarantees a lone fit, making it the requeue of record when the target
// rejects the handoff — then every other healthy engine in decreasing
// free-page order. A target that rejects the re-Submit counts as a failed
// migration; exhausting every candidate returns an error for the caller's
// stream instead of silently ending it.
func (p *Pool) resubmit(f *flight, creq sched.Request, preferred int) (<-chan sched.Token, int, error) {
	seen := make([]bool, len(p.engines))
	order := make([]int, 0, len(p.engines))
	add := func(i int) {
		if i >= 0 && !seen[i] && p.engines[i].Failed() == nil {
			seen[i] = true
			order = append(order, i)
		}
	}
	add(preferred)
	add(f.engine)
	type cand struct{ i, free int }
	rest := make([]cand, 0, len(p.engines))
	for i, e := range p.engines {
		if seen[i] || e.Failed() != nil {
			continue
		}
		v := e.View()
		free := v.FreePages()
		if free < 0 { // unbounded
			free = 1 << 30
		}
		rest = append(rest, cand{i, free})
	}
	sort.Slice(rest, func(a, b int) bool {
		if rest[a].free != rest[b].free {
			return rest[a].free > rest[b].free
		}
		return rest[a].i < rest[b].i
	})
	for _, c := range rest {
		add(c.i)
	}
	err := fmt.Errorf("%w: no healthy engine for request %d", sched.ErrEngineFailed, f.id)
	for _, i := range order {
		nch, serr := p.engines[i].Submit(f.ctx, creq)
		if serr == nil {
			return nch, i, nil
		}
		err = fmt.Errorf("fleet: request %d found no engine to resume on: %w", f.id, serr)
		if i == preferred && preferred != f.engine {
			p.mu.Lock()
			p.migrationFailed++
			p.mu.Unlock()
		}
	}
	return nil, -1, err
}

// fail terminates a flight's caller-facing stream with a wrapped error
// token and retires it — the explicit end of the line when the engine shed
// the request or no healthy engine can hold it. The out channel's spare
// slot guarantees the send never blocks.
func (p *Pool) fail(f *flight, err error) {
	f.out <- sched.Token{Err: err}
	p.mu.Lock()
	p.finishLocked(f)
	p.mu.Unlock()
}

// finishLocked retires a flight: the caller-facing stream closes and the
// pool records its wall-clock outcome (unless Close already threw the
// request away, which flips the aborted flag drains report). Outcome
// timing is the client's view — arrival at Submit, first token and finish
// as forwarded — so routing, queueing and migration delays are all inside
// TTFT/E2E; Preemptions counts cross-engine hops (engine-local recompute
// preemptions stay in the per-engine Stats). The caller holds mu.
func (p *Pool) finishLocked(f *flight) {
	delete(p.flights, f.key)
	close(f.out)
	if p.closed && len(f.generated) < f.maxNew && f.ctx.Err() == nil {
		p.aborted = true
	} else {
		now := p.now()
		first := f.firstTok
		if first < 0 {
			first = now
		}
		start := f.start
		if start < 0 {
			start = now
		}
		p.outcomes = append(p.outcomes, serving.Outcome{
			Req: workload.Request{
				ID: f.id, PromptLen: len(f.prompt), RefLen: f.predicted, ArrivalTime: f.arrival,
			},
			GPU:         f.engine,
			RespLen:     len(f.generated),
			Start:       start,
			FirstToken:  first,
			Finish:      now,
			Preemptions: f.hops,
		})
	}
	p.releaseLocked()
}

// releaseLocked drops the pending count and releases drain waiters at zero.
func (p *Pool) releaseLocked() {
	p.pending--
	if p.pending == 0 {
		for _, w := range p.waiters {
			close(w)
		}
		p.waiters = nil
	}
}

// Drain blocks until every request submitted so far has retired at the
// pool level — including any migration hops in flight — or ctx is
// cancelled. A drain released because Close aborted in-flight requests
// reports sched.ErrClosed, matching the engine contract.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return sched.ErrClosed
	}
	if p.pending == 0 {
		p.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	select {
	case <-w:
		p.mu.Lock()
		aborted := p.aborted
		p.mu.Unlock()
		if aborted {
			return sched.ErrClosed
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts every engine down and waits for the forwarders to retire
// their flights. In-flight streams close without completing. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if already {
		return
	}
	for _, e := range p.engines {
		e.Close()
	}
	p.wg.Wait()
}

// Outcomes returns the pool-level record of every retired request so far,
// sorted by request ID — the same vocabulary the simulator and the
// single-engine scheduler emit, measured against the shared pool epoch.
func (p *Pool) Outcomes() []serving.Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]serving.Outcome(nil), p.outcomes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Req.ID < out[j].Req.ID })
	return out
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	st := Stats{
		Routed:          append([]int(nil), p.routed...),
		Migrations:      p.migrations,
		MigrationFailed: p.migrationFailed,
		FailedOver:      p.failedOver,
	}
	p.mu.Unlock()
	st.Engines = make([]sched.Stats, len(p.engines))
	for i, e := range p.engines {
		st.Engines[i] = e.Stats()
		if e.Failed() != nil {
			st.EngineFailures++
		}
	}
	return st
}
