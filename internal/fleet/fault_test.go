package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rethinkkv/internal/faults"
	"rethinkkv/internal/router"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// collectErr drains a pool stream, separating ordinary tokens from the
// terminal error token (if any).
func collectErr(t *testing.T, ch <-chan sched.Token) ([]int, error) {
	t.Helper()
	var out []int
	var terr error
	for tok := range ch {
		if tok.Err != nil {
			terr = tok.Err
			continue
		}
		out = append(out, tok.ID)
	}
	return out, terr
}

// rrRouter deals requests round-robin over whatever views it is offered —
// with a full healthy fleet that spreads load everywhere, including the
// engine a chaos scenario is about to kill.
type rrRouter struct {
	mu sync.Mutex
	n  int
}

func (r *rrRouter) Name() string { return "rr" }
func (r *rrRouter) Route(_ workload.Request, views []serving.GPUView) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.n % len(views)
	r.n++
	return i
}

// TestEngineFailureFailoverBitIdentical is the PR's acceptance gate: a
// seeded fault kills 1 of 4 engines mid-decode (iteration 6, with 18-token
// streams in flight) and every submitted request must still complete,
// bit-identical to the no-fault sequential reference, via replay on the
// surviving engines.
func TestEngineFailureFailoverBitIdentical(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	want := sequentialReference(t, prompts, maxNew)

	inj := faults.New(seed)
	victim := inj.Pick(4, 1)
	inj.PanicAt(victim, 6)
	p := newPool(t, Config{
		Engines: 4,
		Router:  &rrRouter{},
		Migrate: true,
		Faults:  inj,
		Engine:  sched.Config{MaxBatch: 3, PageTokens: 8},
	})

	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		toks, terr := collectErr(t, ch)
		if terr != nil {
			t.Fatalf("request %d terminated with %v; failover should have saved it", i, terr)
		}
		got[i] = toks
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "failover")

	if !inj.Fired(victim) {
		t.Fatalf("engine %d never hit its scheduled panic; test is vacuous", victim)
	}
	st := p.Stats()
	if st.EngineFailures != 1 {
		t.Fatalf("EngineFailures = %d, want 1", st.EngineFailures)
	}
	if st.FailedOver == 0 {
		t.Fatal("no request failed over off the dead engine")
	}
	outs := p.Outcomes()
	if len(outs) != len(prompts) {
		t.Fatalf("outcomes %d, want %d", len(outs), len(prompts))
	}
	for i, o := range outs {
		if o.RespLen != maxNew {
			t.Fatalf("outcome %d RespLen = %d, want %d", i, o.RespLen, maxNew)
		}
		if o.GPU == victim {
			t.Fatalf("outcome %d finished on the dead engine %d", i, victim)
		}
	}

	// The quarantine holds: new submissions never land on the dead engine.
	ch, err := p.Submit(context.Background(), sched.Request{ID: 99, Prompt: []int{3, 1, 4}, MaxNew: 4, Arrival: -1})
	if err != nil {
		t.Fatalf("submit after failure: %v", err)
	}
	if _, terr := collectErr(t, ch); terr != nil {
		t.Fatalf("post-failure request: %v", terr)
	}
	drain(t, p)
	if n := p.Stats().Routed[victim]; n != st.Routed[victim] {
		t.Fatalf("quarantined engine %d received %d new placements", victim, n-st.Routed[victim])
	}
}

// TestAllEnginesFailedTerminatesLocally: when the only engine dies, its
// requests have nowhere to go — their streams must end with an error token
// wrapping ErrEngineFailed (not hang, not close silently), and new Submits
// must fail fast with the same sentinel.
func TestAllEnginesFailedTerminatesLocally(t *testing.T) {
	inj := faults.New(seed)
	inj.PanicAt(0, 3)
	p := newPool(t, Config{
		Engines: 1,
		Router:  router.Baseline{},
		Faults:  inj,
		Engine:  sched.Config{MaxBatch: 2, PageTokens: 8},
	})
	ch, err := p.Submit(context.Background(), sched.Request{ID: 0, Prompt: []int{1, 2, 3}, MaxNew: 10, Arrival: -1})
	if err != nil {
		t.Fatal(err)
	}
	toks, terr := collectErr(t, ch)
	if !errors.Is(terr, sched.ErrEngineFailed) {
		t.Fatalf("stream terminal err = %v, want ErrEngineFailed", terr)
	}
	if len(toks) >= 10 {
		t.Fatal("stream completed despite the engine dying at iteration 3")
	}
	if _, err := p.Submit(context.Background(), sched.Request{ID: 1, Prompt: []int{4}, MaxNew: 2}); !errors.Is(err, sched.ErrEngineFailed) {
		t.Fatalf("submit with whole fleet down: %v, want ErrEngineFailed", err)
	}
	if st := p.Stats(); st.EngineFailures != 1 || st.FailedOver != 0 {
		t.Fatalf("EngineFailures/FailedOver = %d/%d, want 1/0", st.EngineFailures, st.FailedOver)
	}
	drain(t, p)
}

// TestMigrationFallbackRequeuesOnSource is the hardened-fallback regression
// gate: the migration target rejects every re-Submit (an injected
// ErrOutOfPages storm), so each handoff must requeue its victim on the
// source engine and count a MigrationFailed — and every stream must still
// complete bit-identically instead of silently ending.
func TestMigrationFallbackRequeuesOnSource(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	want := sequentialReference(t, prompts, maxNew)

	inj := faults.New(seed)
	inj.SubmitStorm(1, 1<<20) // engine 1 rejects everything, forever
	p := newPool(t, Config{
		Engines: 2,
		Router:  pinRouter{to: 0},
		Migrate: true,
		Faults:  inj,
		// The TestDecodeMigrationBitIdentical shape: this budget is known
		// to force evictions, and idle engine 1's headroom makes the hook
		// choose it every time.
		Engine: sched.Config{MaxBatch: 4, PageTokens: 4, KVPages: 14},
	})
	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		toks, terr := collectErr(t, ch)
		if terr != nil {
			t.Fatalf("request %d terminated with %v; fallback should have requeued it", i, terr)
		}
		got[i] = toks
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "fallback")

	st := p.Stats()
	if inj.Stormed(1) == 0 {
		t.Fatal("no re-Submit ever reached the stormed target; test is vacuous")
	}
	if st.MigrationFailed == 0 {
		t.Fatal("failed handoffs were not counted")
	}
	if st.Migrations != 0 {
		t.Fatalf("Migrations = %d, want 0 (every handoff was rejected)", st.Migrations)
	}
	for i, o := range p.Outcomes() {
		if o.GPU != 0 {
			t.Fatalf("outcome %d finished on engine %d, want the source engine 0", i, o.GPU)
		}
	}
}

// TestCancelRacingMigrationHop cancels requests while the pool is actively
// migrating preemption victims between engines — the forwarder may be
// mid-handoff when the ctx dies. Streams must close, Drain must not hang,
// and both engines must end with every KV page released. Primarily a
// -race gate for the failover/migration rewrite.
func TestCancelRacingMigrationHop(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	const budget = 14
	for _, delay := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		p := newPool(t, Config{
			Engines: 2,
			Router:  pinRouter{to: 0},
			Migrate: true,
			Engine:  sched.Config{MaxBatch: 4, PageTokens: 4, KVPages: budget},
		})
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i, prompt := range prompts {
			ch, err := p.Submit(ctx, sched.Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
			if err != nil {
				t.Fatalf("delay %v submit %d: %v", delay, i, err)
			}
			wg.Add(1)
			go func(ch <-chan sched.Token) {
				defer wg.Done()
				for range ch {
				}
			}(ch)
		}
		time.Sleep(delay)
		cancel()
		wg.Wait() // every stream closed
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := p.Drain(dctx); err != nil {
			t.Fatalf("delay %v: drain after cancel: %v", delay, err)
		}
		dcancel()
		for i, v := range p.Views(p.now()) {
			if v.FreePages != budget {
				t.Fatalf("delay %v: engine %d leaked pages: FreePages = %d, want %d", delay, i, v.FreePages, budget)
			}
		}
		p.Close()
	}
}
