package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rethinkkv/internal/core"
	"rethinkkv/internal/model"
	"rethinkkv/internal/router"
	"rethinkkv/internal/sched"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

const seed = 11

func testPrompts() [][]int {
	return [][]int{
		{1, 2, 3, 4, 5},
		{100, 200, 300},
		{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		{42},
		{350, 351, 352, 353, 354, 355},
		{9, 8, 7, 6, 5, 4, 3, 2, 1},
	}
}

// sequentialReference decodes every prompt one after another through the
// plain pipeline — the ground truth any pool serve, migrated or not, must
// reproduce bit-identically.
func sequentialReference(t *testing.T, prompts [][]int, maxNew int) [][]int {
	t.Helper()
	p, err := core.NewPipeline("fp16", seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, len(prompts))
	for i, prompt := range prompts {
		toks, _, err := p.Run(prompt, maxNew)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = toks
	}
	return out
}

func collect(t *testing.T, ch <-chan sched.Token) []int {
	t.Helper()
	var out []int
	for tok := range ch {
		out = append(out, tok.ID)
	}
	return out
}

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	m := model.New(model.Tiny(), seed)
	p, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func drain(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func assertBitIdentical(t *testing.T, got, want [][]int, label string) {
	t.Helper()
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s request %d: %d tokens, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s request %d token %d: %d != sequential %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// pinRouter sends every request to one fixed engine — the tool for forcing
// KV pressure on a single replica while the rest of the pool idles.
type pinRouter struct{ to int }

func (p pinRouter) Name() string { return "pin" }
func (p pinRouter) Route(workload.Request, []serving.GPUView) int {
	return p.to
}

// TestFleetMatchesSequential is the pool's base acceptance gate: requests
// routed across two unbudgeted engines stream token sequences bit-identical
// to sequential single-pipeline decoding.
func TestFleetMatchesSequential(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	want := sequentialReference(t, prompts, maxNew)

	p := newPool(t, Config{
		Engines: 2,
		Router:  router.Baseline{},
		Engine:  sched.Config{MaxBatch: 3, PageTokens: 8},
	})
	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "fleet")

	st := p.Stats()
	completed, routed := 0, 0
	for _, es := range st.Engines {
		completed += es.Completed
	}
	for _, n := range st.Routed {
		routed += n
	}
	if completed != len(prompts) {
		t.Fatalf("Completed across engines = %d, want %d", completed, len(prompts))
	}
	if routed != len(prompts) {
		t.Fatalf("Routed sums to %d, want %d", routed, len(prompts))
	}
	outs := p.Outcomes()
	if len(outs) != len(prompts) {
		t.Fatalf("Outcomes = %d, want %d", len(outs), len(prompts))
	}
	for i, o := range outs {
		if o.Req.ID != i {
			t.Fatalf("outcome %d has ID %d; not sorted by request ID", i, o.Req.ID)
		}
		if o.RespLen != maxNew {
			t.Fatalf("outcome %d RespLen = %d, want %d", i, o.RespLen, maxNew)
		}
	}
}

// TestDecodeMigrationBitIdentical pins every request onto engine 0 with a
// page budget known (from the sched preemption gate) to force evictions.
// With an idle engine 1 holding the same budget, victims must migrate and
// every stream — including the migrated ones — must stay bit-identical to
// sequential decoding.
func TestDecodeMigrationBitIdentical(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 18
	want := sequentialReference(t, prompts, maxNew)

	p := newPool(t, Config{
		Engines: 2,
		Router:  pinRouter{to: 0},
		Migrate: true,
		Engine:  sched.Config{MaxBatch: 4, PageTokens: 4, KVPages: 14},
	})
	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNew, Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "migrated")

	st := p.Stats()
	if st.Migrations == 0 {
		t.Fatal("budget never forced a migration; test is vacuous")
	}
	if st.Engines[0].MigratedOut == 0 {
		t.Fatal("engine 0 reports no migrated-out victims")
	}
	if st.Routed[0] != len(prompts) || st.Routed[1] != 0 {
		t.Fatalf("Routed = %v, want all %d on engine 0", st.Routed, len(prompts))
	}
	hops, onOther := 0, 0
	for _, o := range p.Outcomes() {
		hops += o.Preemptions
		if o.GPU == 1 {
			onOther++
		}
	}
	if hops < st.Migrations {
		t.Fatalf("outcome hops %d < pool migrations %d", hops, st.Migrations)
	}
	if onOther == 0 {
		t.Fatal("no outcome finished on the migration target")
	}
}

// TestMidPrefillMigrationBitIdentical forces the eviction to land in the
// middle of a chunked prefill (the sched mid-prefill gate's shape, one page
// looser so the victim's whole remaining lifetime fits the idle engine) and
// checks the hop: the long request must re-prefill on engine 1 and still
// stream bit-identically.
func TestMidPrefillMigrationBitIdentical(t *testing.T) {
	short := []int{1, 2}
	long := make([]int, 30)
	for i := range long {
		long[i] = (i*11 + 5) % 512
	}
	prompts := [][]int{short, long}
	maxNews := []int{10, 4}

	pipe, err := core.NewPipeline("fp16", seed)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		toks, _, err := pipe.Run(prompt, maxNews[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toks
	}

	// Budget arithmetic (PageTokens=4, KVPages=10): the short request grows
	// to 3 pages while the long prompt's 8-chunk prefill wants 8, so the
	// budget overflows mid-prefill and FCFS evicts the newest arrival — the
	// long request. Its lifetime need is PagesFor(30+4)+1 = 10 pages, which
	// exactly fits the idle engine 1, so the hook migrates it.
	p := newPool(t, Config{
		Engines: 2,
		Router:  pinRouter{to: 0},
		Migrate: true,
		Engine:  sched.Config{MaxBatch: 2, PageTokens: 4, KVPages: 10, PrefillChunk: 4},
	})
	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNews[i], Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "mid-prefill migrated")

	st := p.Stats()
	if st.Migrations == 0 {
		t.Fatal("budget never forced a migration; test is vacuous")
	}
	if st.Engines[0].PrefillPreempted == 0 {
		t.Fatal("no eviction landed mid-prefill; test is vacuous")
	}
	outs := p.Outcomes()
	if outs[1].GPU != 1 {
		t.Fatalf("long request finished on engine %d, want the migration target 1", outs[1].GPU)
	}
	if outs[1].Preemptions == 0 {
		t.Fatal("long request's outcome records no migration hop")
	}
}

// TestBadRouteTyped pins the typed sentinel: a router stepping outside
// [0, engines) must fail Submit with ErrBadRoute.
func TestBadRouteTyped(t *testing.T) {
	p := newPool(t, Config{
		Engines: 2,
		Router:  pinRouter{to: 2},
		Engine:  sched.Config{},
	})
	_, err := p.Submit(context.Background(), sched.Request{ID: 0, Prompt: []int{1, 2, 3}, MaxNew: 4})
	if !errors.Is(err, ErrBadRoute) {
		t.Fatalf("err = %v, want ErrBadRoute", err)
	}
	if p.Stats().Routed[0] != 0 {
		t.Fatal("misrouted request was counted as placed")
	}
}

// TestClosedPoolSemantics mirrors the engine contract: Submit and Drain
// against a closed pool fail with sched.ErrClosed.
func TestClosedPoolSemantics(t *testing.T) {
	p := newPool(t, Config{Engines: 1, Router: router.Baseline{}, Engine: sched.Config{}})
	p.Close()
	p.Close() // idempotent
	if _, err := p.Submit(context.Background(), sched.Request{Prompt: []int{1}}); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := p.Drain(context.Background()); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("drain after close: %v, want ErrClosed", err)
	}
}

// TestViewsSampleLiveState checks the router-visible views against real
// engine state: a fresh bounded pool advertises its full page budget, and a
// submitted request shows up in its target's backlog while the other engine
// stays empty.
func TestViewsSampleLiveState(t *testing.T) {
	p := newPool(t, Config{
		Engines: 2,
		Router:  pinRouter{to: 0},
		Engine:  sched.Config{PageTokens: 4, KVPages: 20},
	})
	for i, v := range p.Views(0) {
		if v.PageBudget != 20 || v.PageTokens != 4 {
			t.Fatalf("view %d budget %d/%d, want 20/4", i, v.PageBudget, v.PageTokens)
		}
		if v.FreePages != 20 {
			t.Fatalf("fresh view %d FreePages = %d, want 20", i, v.FreePages)
		}
	}
	ch, err := p.Submit(context.Background(), sched.Request{ID: 0, Prompt: []int{5, 6, 7}, MaxNew: 60})
	if err != nil {
		t.Fatal(err)
	}
	views := p.Views(p.now())
	if views[0].QueuedTokens == 0 {
		t.Fatal("engine 0 backlog invisible after submit")
	}
	if views[1].QueuedTokens != 0 || views[1].Running != 0 {
		t.Fatalf("idle engine 1 shows load: %+v", views[1])
	}
	for range ch {
	}
	drain(t, p)
	final := p.Views(p.now())
	if final[0].FreePages != 20 {
		t.Fatalf("drained view FreePages = %d, want 20 (pages leaked)", final[0].FreePages)
	}
}

// TestConcurrentSubmitStress drives the pool from many goroutines under a
// tight budget (migrations included) — primarily a data-race canary for
// `go test -race ./internal/fleet`.
func TestConcurrentSubmitStress(t *testing.T) {
	prompts := testPrompts()
	const maxNew = 8
	want := sequentialReference(t, prompts, maxNew)

	p := newPool(t, Config{
		Engines: 3,
		Router:  router.Baseline{},
		Migrate: true,
		Engine:  sched.Config{MaxBatch: 3, PageTokens: 4, KVPages: 12},
	})
	const rounds = 3
	got := make([][][]int, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		got[r] = make([][]int, len(prompts))
		for i, prompt := range prompts {
			wg.Add(1)
			go func(r, i int, prompt []int) {
				defer wg.Done()
				ch, err := p.Submit(context.Background(), sched.Request{
					ID: r*len(prompts) + i, Prompt: prompt, MaxNew: maxNew, Arrival: -1,
				})
				if err != nil {
					t.Errorf("submit %d/%d: %v", r, i, err)
					return
				}
				for tok := range ch {
					got[r][i] = append(got[r][i], tok.ID)
				}
			}(r, i, prompt)
		}
	}
	wg.Wait()
	drain(t, p)
	for r := 0; r < rounds; r++ {
		assertBitIdentical(t, got[r], want, "stress")
	}
	if len(p.Outcomes()) != rounds*len(prompts) {
		t.Fatalf("outcomes %d, want %d", len(p.Outcomes()), rounds*len(prompts))
	}
}

// TestPackedMidPrefillMigrationBitIdentical is the budget-packing variant of
// the mid-prefill migration gate: with a TokenBudget, engine 0 carries TWO
// long prompts mid-prefill in the same budgeted passes when the short
// request's decode page-open overflows the KV budget. The FCFS victim is the
// newest arrival — one of several in-flight prefills — and must migrate to
// the idle engine 1 and finish there bit-identically, while the survivor's
// packed prefill continues untouched on engine 0.
func TestPackedMidPrefillMigrationBitIdentical(t *testing.T) {
	short := []int{1, 2}
	long1 := make([]int, 28)
	long2 := make([]int, 24)
	for i := range long1 {
		long1[i] = (i*3 + 5) % 512
	}
	for i := range long2 {
		long2[i] = (i*7 + 11) % 512
	}
	prompts := [][]int{short, long1, long2}
	maxNews := []int{6, 4, 4}

	pipe, err := core.NewPipeline("fp16", seed)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, prompt := range prompts {
		toks, _, err := pipe.Run(prompt, maxNews[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toks
	}

	// Budget arithmetic (PageTokens=4, KVPages=16): admission reserves
	// short 1 + long1 7+1 + long2 6+1 = 16 pages — the whole budget. The
	// generous TokenBudget packs both long prompts' chunks into each pass
	// alongside short's decode; short's page-open at position 4 then evicts
	// the newest arrival (long2) mid-prefill. Its lifetime need,
	// PagesFor(24+4)+1 = 8, fits the idle engine 1, so the hook migrates it.
	// The step gate holds engine 0 before its first pass until all three
	// requests are queued, making the whole trace deterministic.
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	p := newPool(t, Config{
		Engines: 2,
		Router:  pinRouter{to: 0},
		Migrate: true,
		Engine: sched.Config{
			MaxBatch: 3, PageTokens: 4, KVPages: 16, PrefillChunk: 4, TokenBudget: 32,
			StepHook: func(step int) {
				if step == 1 {
					once.Do(func() { close(entered) })
					<-gate
				}
			},
		},
	})
	chans := make([]<-chan sched.Token, len(prompts))
	for i, prompt := range prompts {
		ch, err := p.Submit(context.Background(), sched.Request{ID: i, Prompt: prompt, MaxNew: maxNews[i], Arrival: -1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
		if i == 0 {
			<-entered
		}
	}
	close(gate)
	got := make([][]int, len(prompts))
	for i, ch := range chans {
		got[i] = collect(t, ch)
	}
	drain(t, p)
	assertBitIdentical(t, got, want, "packed mid-prefill migrated")

	st := p.Stats()
	if st.Migrations == 0 {
		t.Fatal("budget never forced a migration; test is vacuous")
	}
	if st.Engines[0].PrefillPreempted == 0 {
		t.Fatal("no eviction landed mid-prefill; test is vacuous")
	}
	if st.Engines[0].PackedChunks == 0 {
		t.Fatal("the two long prompts never shared a budgeted pass; test is vacuous")
	}
	outs := p.Outcomes()
	if outs[2].GPU != 1 {
		t.Fatalf("victim finished on engine %d, want the migration target 1", outs[2].GPU)
	}
	if outs[2].Preemptions == 0 {
		t.Fatal("victim's outcome records no migration hop")
	}
}
