// Package gen models how KV cache compression shifts response-length
// distributions (the paper's Section 4.3, Missing Piece 2).
//
// Mechanism. Generation ends when the model emits EOS; lossy compression
// degrades the context conditioning the EOS decision, which empirically
// *delays* termination — the paper shows >20% of ShareGPT samples grow by
// ≥1.5× under compression while temperature-induced variation stays
// symmetric (Table 5), and that higher compression ratios flatten the
// length-difference distribution (Figure 4).
//
// We model the compressed response length as a log-normal perturbation of
// the reference length whose drift (asymmetry toward longer outputs) and
// spread both grow with a *severity* score derived from the method's actual
// information loss: quantisation severity scales with 1/bits (minus GEAR's
// error-correction recovery), eviction severity with the evicted fraction
// of the sample's context. Intrinsic sampling variance (temperature-1
// stochastic decoding) is present in every comparison, matching how the
// paper measures D = (Lun − Lcs)/Lun on sampled generations.
//
// This is a documented substitution (DESIGN.md): the tiny model's EOS
// behaviour cannot be meaningfully calibrated to ShareGPT, so the hazard
// shift is modelled rather than decoded token by token. The severity inputs
// are the real method properties, so every comparative trend in Tables 4-5
// and Figures 4-5 emerges from method structure rather than per-method
// constants.
package gen

import (
	"math"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/workload"
)

// LengthModel parameterises the response-length shift.
type LengthModel struct {
	// MaxTokens caps generation (the paper uses 1,024; Appendix A.1).
	MaxTokens int
	// BaseSigma is the intrinsic log-space sampling spread at temperature 1.
	BaseSigma float64
	// Drift scales severity → log-space mean shift (lengthening bias).
	Drift float64
	// Spread scales sqrt(severity) → extra log-space spread.
	Spread float64
	// TempSpread scales |T−1| → extra symmetric spread.
	TempSpread float64
}

// Default returns the calibrated model (see package comment).
func Default() LengthModel {
	return LengthModel{MaxTokens: 1024, BaseSigma: 0.12, Drift: 0.7, Spread: 1.05, TempSpread: 7.5}
}

// Fragility returns the per-request latent in [-∞,∞] (standard normal)
// describing how strongly this request's output lengthens under a method
// kind. It is deterministic per (request, method kind): the paper's length
// predictor reaches up to 95.7% accuracy on compressed generations, which
// is only possible if the shift is largely systematic — a property of the
// prompt — rather than sampling noise.
func Fragility(reqID int, kind compress.Kind) float64 {
	r := rng.New(uint64(reqID)*0x9e3779b97f4a7c15 + uint64(kind)*0xbf58476d1ce4e5b9 + 17)
	return r.NormFloat64()
}

// Severity returns the information-loss severity in [0, 1] for a method on
// a request whose total context is promptLen + refLen tokens.
func Severity(m compress.Method, promptLen, refLen int) float64 {
	cost := m.Cost
	switch cost.Kind {
	case compress.FP16:
		return 0
	case compress.Quant:
		s := 1 / float64(cost.Bits)
		if cost.ErrorCorrection {
			s *= 0.85 // GEAR recovers part of the loss
		}
		return s
	case compress.Sparse:
		total := promptLen + refLen
		if total <= cost.Budget {
			return 0
		}
		f := 1 - float64(cost.Budget)/float64(total)
		if cost.NeedsScores {
			f *= 0.8 // score-aware eviction keeps the important tokens
		}
		return f
	}
	return 0
}

// ResponseLength draws the compressed response length for a request with
// reference length refLen, at the given severity, temperature, and
// per-request fragility (see Fragility). The symmetric sampling-noise
// components carry a mean-preserving −σ²/4 correction so temperature shifts
// lengths "in roughly equal measure" (Table 5); the severity-driven shift
// carries no correction — that asymmetry IS the compression effect.
func (lm LengthModel) ResponseLength(refLen int, severity, temperature, fragility float64, r *rng.RNG) int {
	if refLen < 1 {
		refLen = 1
	}
	noiseVar := lm.BaseSigma*lm.BaseSigma +
		lm.TempSpread*lm.TempSpread*(temperature-1)*(temperature-1)
	mu := lm.Drift*severity - noiseVar/4 +
		lm.Spread*math.Sqrt(severity)*fragility
	l := float64(refLen) * math.Exp(mu+math.Sqrt(noiseVar)*r.NormFloat64())
	n := int(l + 0.5)
	if n < 1 {
		n = 1
	}
	if n > lm.MaxTokens {
		n = lm.MaxTokens
	}
	return n
}

// Generation is one request's simulated outcome under a method.
type Generation struct {
	Request  workload.Request
	Severity float64
	// Len is the realised response length under the method.
	Len int
	// D is the paper's length-difference metric (Lun − Lcs)/Lun:
	// negative D means the compressed output is longer.
	D float64
}

// Run simulates the whole trace under one method at temperature 1,
// returning per-request outcomes. Deterministic given seed.
func (lm LengthModel) Run(reqs []workload.Request, m compress.Method, seed uint64) []Generation {
	return lm.RunTemp(reqs, m, 1.0, seed)
}

// RunTemp is Run with an explicit sampling temperature.
func (lm LengthModel) RunTemp(reqs []workload.Request, m compress.Method, temperature float64, seed uint64) []Generation {
	r := rng.New(seed)
	out := make([]Generation, len(reqs))
	for i, req := range reqs {
		sev := Severity(m, req.PromptLen, req.RefLen)
		frag := Fragility(req.ID, m.Cost.Kind)
		l := lm.ResponseLength(req.RefLen, sev, temperature, frag, r.Split())
		out[i] = Generation{
			Request:  req,
			Severity: sev,
			Len:      l,
			D:        (float64(req.RefLen) - float64(l)) / float64(req.RefLen),
		}
	}
	return out
}

// ShiftStats summarises a run the way Table 5 does.
type ShiftStats struct {
	// FracShrunk is the fraction of samples with D >= 0.5 (≥50% shorter).
	FracShrunk float64
	// FracGrew is the fraction with D <= −0.5 (≥50% longer).
	FracGrew float64
	// MeanLenRatio is mean(Lcs/Lun).
	MeanLenRatio float64
}

// Summarize computes Table 5's row statistics for a run.
func Summarize(gens []Generation) ShiftStats {
	if len(gens) == 0 {
		return ShiftStats{}
	}
	var shrunk, grew int
	var ratio float64
	for _, g := range gens {
		if g.D >= 0.5 {
			shrunk++
		}
		if g.D <= -0.5 {
			grew++
		}
		ratio += float64(g.Len) / float64(g.Request.RefLen)
	}
	n := float64(len(gens))
	return ShiftStats{
		FracShrunk:   float64(shrunk) / n,
		FracGrew:     float64(grew) / n,
		MeanLenRatio: ratio / n,
	}
}

// Ds extracts the percentage length differences (D × 100) for Figure 4's
// distribution plots.
func Ds(gens []Generation) []float64 {
	out := make([]float64, len(gens))
	for i, g := range gens {
		out[i] = g.D * 100
	}
	return out
}
