package gen

import (
	"math"
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/workload"
)

func trace(n int) []workload.Request {
	return workload.SampleShareGPT(workload.DefaultShareGPT(n), 42)
}

func TestSeverity(t *testing.T) {
	if s := Severity(compress.MustGet("fp16"), 1000, 500); s != 0 {
		t.Fatalf("fp16 severity = %v", s)
	}
	k2 := Severity(compress.MustGet("kivi-2"), 1000, 500)
	k4 := Severity(compress.MustGet("kivi-4"), 1000, 500)
	if k2 <= k4 {
		t.Fatalf("2-bit severity %v should exceed 4-bit %v", k2, k4)
	}
	g4 := Severity(compress.MustGet("gear-4"), 1000, 500)
	if g4 >= k4 {
		t.Fatalf("GEAR error correction should reduce severity: %v vs %v", g4, k4)
	}
	// Sparse severity is zero when context fits the budget.
	if s := Severity(compress.MustGet("stream-512"), 100, 100); s != 0 {
		t.Fatalf("under-budget sparse severity = %v", s)
	}
	long := Severity(compress.MustGet("stream-512"), 4000, 500)
	short := Severity(compress.MustGet("stream-512"), 800, 200)
	if long <= short {
		t.Fatalf("severity should grow with context: %v vs %v", short, long)
	}
	// H2O's score-aware eviction is gentler than blind windowing.
	h := Severity(compress.MustGet("h2o-512"), 4000, 500)
	if h >= long {
		t.Fatalf("h2o severity %v should undercut stream %v", h, long)
	}
}

func TestResponseLengthBounds(t *testing.T) {
	lm := Default()
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		l := lm.ResponseLength(900, 0.5, 1.0, Fragility(i, compress.Sparse), r)
		if l < 1 || l > lm.MaxTokens {
			t.Fatalf("length %d out of bounds", l)
		}
	}
	if l := lm.ResponseLength(0, 0, 1, 0, r); l < 1 {
		t.Fatal("degenerate ref length must clamp to >= 1")
	}
}

func TestZeroSeverityZeroTempIsNoisy(t *testing.T) {
	// Even at severity 0 and temperature 1 there is intrinsic sampling
	// variance — that is how the paper measures D.
	lm := Default()
	r := rng.New(2)
	diff := 0
	for i := 0; i < 200; i++ {
		if lm.ResponseLength(200, 0, 1, 0, r) != 200 {
			diff++
		}
	}
	if diff < 120 {
		t.Fatalf("expected intrinsic variance, %d/200 differed", diff)
	}
}

func TestCompressionLengthens(t *testing.T) {
	// Table 5's core observation: compression biases toward longer
	// outputs; temperature does not.
	lm := Default()
	reqs := trace(3000)
	for _, name := range []string{"kivi-4", "gear-4", "h2o-512", "stream-512"} {
		gens := lm.Run(reqs, compress.MustGet(name), 1)
		st := Summarize(gens)
		if st.FracGrew <= st.FracShrunk {
			t.Fatalf("%s: grew %v should exceed shrunk %v", name, st.FracGrew, st.FracShrunk)
		}
		if st.FracGrew < 0.10 {
			t.Fatalf("%s: grew fraction %v too small vs paper's ≥20%% band", name, st.FracGrew)
		}
		if st.MeanLenRatio <= 1 {
			t.Fatalf("%s: mean length ratio %v should exceed 1", name, st.MeanLenRatio)
		}
	}
}

func TestTemperatureRoughlySymmetric(t *testing.T) {
	// Table 5: temperature grows and shrinks outputs "in roughly equal
	// measure" — the paper's own numbers show a mild asymmetry (27.5% vs
	// 20.8% at T=0.9), so we bound it loosely and then require that
	// compression's asymmetry clearly exceeds temperature's.
	lm := Default()
	reqs := trace(3000)
	var tempAsym float64
	for _, temp := range []float64{0.9, 1.1} {
		gens := lm.RunTemp(reqs, compress.MustGet("fp16"), temp, 2)
		st := Summarize(gens)
		if st.FracGrew < 0.1 || st.FracShrunk < 0.1 {
			t.Fatalf("T=%v: tails too thin: %+v", temp, st)
		}
		asym := math.Abs(st.FracGrew - st.FracShrunk)
		if asym > 0.12 {
			t.Fatalf("T=%v: temperature shift too asymmetric: %v", temp, asym)
		}
		tempAsym = math.Max(tempAsym, asym)
	}
	comp := Summarize(lm.Run(reqs, compress.MustGet("stream-256"), 2))
	if comp.FracGrew-comp.FracShrunk <= tempAsym {
		t.Fatalf("compression asymmetry %v should exceed temperature's %v",
			comp.FracGrew-comp.FracShrunk, tempAsym)
	}
}

func TestHigherRatioFlattensDistribution(t *testing.T) {
	// Figure 4: KIVI-2's distribution is flatter (higher spread) than
	// KIVI-4's; same for H2O-256 vs H2O-512.
	lm := Default()
	reqs := trace(3000)
	pairs := [][2]string{{"kivi-2", "kivi-4"}, {"gear-2", "gear-4"}, {"h2o-256", "h2o-512"}, {"stream-256", "stream-512"}}
	for _, p := range pairs {
		hi := stats.StdDev(Ds(lm.Run(reqs, compress.MustGet(p[0]), 3)))
		lo := stats.StdDev(Ds(lm.Run(reqs, compress.MustGet(p[1]), 3)))
		if hi <= lo {
			t.Fatalf("%s spread %v should exceed %s spread %v", p[0], hi, p[1], lo)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	lm := Default()
	reqs := trace(100)
	a := lm.Run(reqs, compress.MustGet("kivi-4"), 9)
	b := lm.Run(reqs, compress.MustGet("kivi-4"), 9)
	for i := range a {
		if a[i].Len != b[i].Len {
			t.Fatal("same seed must reproduce lengths")
		}
	}
}

func TestDMetricSign(t *testing.T) {
	g := Generation{Request: workload.Request{RefLen: 100}, Len: 200}
	g.D = (float64(g.Request.RefLen) - float64(g.Len)) / float64(g.Request.RefLen)
	if g.D != -1 {
		t.Fatalf("longer output must give negative D, got %v", g.D)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.FracGrew != 0 || st.FracShrunk != 0 {
		t.Fatal("empty summary should be zero")
	}
}
