package serving

import (
	"rethinkkv/internal/compress"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/workload"
)

// This file is the shared metrics vocabulary of the serving layer: the
// per-request Outcome record, the Router contract, and the latency /
// throughput helpers derived from them. Two backends produce Outcomes —
// the discrete-event simulator in this package (analytical cost model,
// virtual time) and the continuous-batching engine in internal/sched
// (real tiny-model decode, wall-clock time) — so everything here must stay
// backend-agnostic: plain data in, derived metrics out.

// GPUView is the router-visible state of one GPU at decision time.
//
// The first block of fields is populated by both backends; the live block
// below it comes from real continuous-batching engines only (the
// discrete-event simulator has no paged cache or chunked prefill, so it
// leaves those fields zero). Policies that consult the live block must
// treat PageBudget == 0 as "unbounded / unknown".
type GPUView struct {
	ID     int
	Method compress.Method
	Est    *perf.Estimator
	// FreeAt is when the GPU finishes all committed work.
	FreeAt float64
	// QueuedTokens is the backlog in (prompt + expected response) tokens.
	QueuedTokens float64
	// Now is the decision timestamp.
	Now float64

	// Running is the engine's live running-set size (decoding plus
	// mid-prefill requests).
	Running int
	// FreePages is the engine's unused KV page budget at decision time;
	// -1 when the budget is unbounded. Meaningful only with PageBudget > 0.
	FreePages int
	// PageBudget is the engine's configured KV page budget (0 = unbounded)
	// and PageTokens its page size in tokens.
	PageBudget int
	PageTokens int
	// PrefillTokens counts admitted prompt tokens not yet prefilled — the
	// in-flight chunked-prefill debt ahead of any new arrival.
	PrefillTokens int
}

// Wait returns the expected queueing delay before new work starts.
func (v GPUView) Wait() float64 {
	return stats.MaxF(v.FreeAt-v.Now, 0)
}

// Router assigns an arriving request to a GPU.
type Router interface {
	Name() string
	Route(req workload.Request, views []GPUView) int
}

// Outcome is one served request.
type Outcome struct {
	Req     workload.Request
	GPU     int
	RespLen int
	Start   float64 // when its batch began prefill
	// FirstToken is when the request's first output token was produced
	// (its batch's prefill completion).
	FirstToken float64
	Finish     float64 // when its last token was produced
	// Preemptions counts how many times the request was evicted and
	// recomputed before finishing (always 0 in the simulator, which never
	// preempts; the real engine preempts under KV page pressure).
	Preemptions int
}

// E2E returns the end-to-end latency including queueing.
func (o Outcome) E2E() float64 { return o.Finish - o.Req.ArrivalTime }

// TTFT returns the time to first token including queueing — one of the two
// key production metrics the paper names (Section 2.4).
func (o Outcome) TTFT() float64 { return o.FirstToken - o.Req.ArrivalTime }

// TBOT returns the mean time between output tokens — the paper's second
// key production metric.
func (o Outcome) TBOT() float64 {
	if o.RespLen <= 1 {
		return 0
	}
	return (o.Finish - o.FirstToken) / float64(o.RespLen-1)
}

// MeanE2E returns the average end-to-end latency of a run — Table 8's cell
// value.
func MeanE2E(outcomes []Outcome) float64 {
	return stats.Mean(E2Es(outcomes))
}

// E2Es extracts per-request end-to-end latencies (Figure 5's CDF input).
func E2Es(outcomes []Outcome) []float64 {
	out := make([]float64, len(outcomes))
	for i, o := range outcomes {
		out[i] = o.E2E()
	}
	return out
}

// TTFTs extracts per-request time-to-first-token latencies.
func TTFTs(outcomes []Outcome) []float64 {
	out := make([]float64, len(outcomes))
	for i, o := range outcomes {
		out[i] = o.TTFT()
	}
	return out
}

// TBOTs extracts per-request mean time-between-output-tokens.
func TBOTs(outcomes []Outcome) []float64 {
	out := make([]float64, len(outcomes))
	for i, o := range outcomes {
		out[i] = o.TBOT()
	}
	return out
}

// TotalTokens sums the generated (response) tokens across outcomes.
func TotalTokens(outcomes []Outcome) int {
	n := 0
	for _, o := range outcomes {
		n += o.RespLen
	}
	return n
}

// Makespan returns the span from the earliest arrival to the latest finish,
// the denominator of aggregate serving throughput.
func Makespan(outcomes []Outcome) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	first := outcomes[0].Req.ArrivalTime
	last := outcomes[0].Finish
	for _, o := range outcomes[1:] {
		first = stats.MinF(first, o.Req.ArrivalTime)
		last = stats.MaxF(last, o.Finish)
	}
	return last - first
}

// TokensPerSec returns aggregate generated tokens per second over the run's
// makespan, or 0 for an empty or instantaneous run.
func TokensPerSec(outcomes []Outcome) float64 {
	span := Makespan(outcomes)
	if span <= 0 {
		return 0
	}
	return float64(TotalTokens(outcomes)) / span
}
