package serving

import (
	"testing"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/workload"
)

func testGPU(id int, method string) GPUConfig {
	return GPUConfig{
		ID:     id,
		Method: compress.MustGet(method),
		Est:    perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet(method), 1),
	}
}

// leastLoaded is a minimal router for tests.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }
func (leastLoaded) Route(req workload.Request, views []GPUView) int {
	best, load := 0, views[0].Wait()+1e-6*views[0].QueuedTokens
	for i, v := range views[1:] {
		l := v.Wait() + 1e-6*v.QueuedTokens
		if l < load {
			best, load = i+1, l
		}
	}
	return best
}

func testTrace(n int, rps float64) []workload.Request {
	cfg := workload.DefaultShareGPT(n)
	cfg.RPS = rps
	return workload.SampleShareGPT(cfg, 5)
}

func testCluster(methods ...string) *Cluster {
	var gpus []GPUConfig
	for i, m := range methods {
		gpus = append(gpus, testGPU(i, m))
	}
	return &Cluster{GPUs: gpus, BatchCap: 8, LM: gen.Default(), Seed: 1}
}

func TestRunServesEveryRequest(t *testing.T) {
	c := testCluster("fp16", "fp16")
	reqs := testTrace(100, 10)
	out, err := c.Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("served %d of 100", len(out))
	}
	for _, o := range out {
		if o.Finish <= o.Req.ArrivalTime {
			t.Fatalf("req %d finished before arriving", o.Req.ID)
		}
		if o.RespLen < 1 {
			t.Fatalf("req %d has empty response", o.Req.ID)
		}
		if o.E2E() <= 0 {
			t.Fatalf("req %d non-positive E2E", o.Req.ID)
		}
		// TTFT sits strictly between arrival and finish; TBOT is positive
		// for multi-token responses.
		if o.TTFT() <= 0 || o.FirstToken > o.Finish {
			t.Fatalf("req %d bad TTFT: %+v", o.Req.ID, o)
		}
		if o.RespLen > 1 && o.TBOT() <= 0 {
			t.Fatalf("req %d bad TBOT", o.Req.ID)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	reqs := testTrace(60, 10)
	a, err := testCluster("fp16", "kivi-4").Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := testCluster("fp16", "kivi-4").Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestGPUsShareLoad(t *testing.T) {
	c := testCluster("fp16", "fp16", "fp16", "fp16")
	out, err := c.Run(testTrace(200, 20), leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, o := range out {
		counts[o.GPU]++
	}
	for id := 0; id < 4; id++ {
		if counts[id] < 20 {
			t.Fatalf("gpu %d underused: %v", id, counts)
		}
	}
}

func TestHigherLoadHigherLatency(t *testing.T) {
	light, err := testCluster("fp16", "fp16").Run(testTrace(150, 2), leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := testCluster("fp16", "fp16").Run(testTrace(150, 40), leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	if MeanE2E(heavy) <= MeanE2E(light) {
		t.Fatalf("queueing should raise latency: light=%v heavy=%v", MeanE2E(light), MeanE2E(heavy))
	}
}

func TestBatchingHelpsThroughput(t *testing.T) {
	reqs := testTrace(150, 25)
	batched := &Cluster{GPUs: []GPUConfig{testGPU(0, "fp16")}, BatchCap: 8, LM: gen.Default(), Seed: 1}
	serial := &Cluster{GPUs: []GPUConfig{testGPU(0, "fp16")}, BatchCap: 1, LM: gen.Default(), Seed: 1}
	bOut, err := batched.Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	sOut, err := serial.Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	if MeanE2E(bOut) >= MeanE2E(sOut) {
		t.Fatalf("batching should reduce latency under load: batched=%v serial=%v", MeanE2E(bOut), MeanE2E(sOut))
	}
}

func TestCompressionLengthensResponses(t *testing.T) {
	reqs := testTrace(200, 5)
	fpOut, err := testCluster("fp16").Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	k2Out, err := testCluster("kivi-2").Run(reqs, leastLoaded{})
	if err != nil {
		t.Fatal(err)
	}
	var fpLen, kLen int
	for i := range fpOut {
		fpLen += fpOut[i].RespLen
		kLen += k2Out[i].RespLen
	}
	if kLen <= fpLen {
		t.Fatalf("compression should lengthen responses on average: fp=%d k2=%d", fpLen, kLen)
	}
}

func TestEmptyClusterErrors(t *testing.T) {
	c := &Cluster{LM: gen.Default()}
	if _, err := c.Run(testTrace(5, 1), leastLoaded{}); err == nil {
		t.Fatal("expected error")
	}
}

type badRouter struct{ answer int }

func (badRouter) Name() string                            { return "bad" }
func (r badRouter) Route(workload.Request, []GPUView) int { return r.answer }

func TestInvalidRouteErrors(t *testing.T) {
	// Regression: any out-of-range router answer — negative, == len(GPUs),
	// or far beyond — must be rejected, not index out of bounds.
	for _, bad := range []int{-1, -99, 1, 99} {
		c := testCluster("fp16")
		if _, err := c.Run(testTrace(5, 1), badRouter{answer: bad}); err == nil {
			t.Fatalf("router answer %d: expected routing error", bad)
		}
	}
}

func TestE2EsAndMean(t *testing.T) {
	out := []Outcome{
		{Req: workload.Request{ArrivalTime: 0}, Finish: 2},
		{Req: workload.Request{ArrivalTime: 1}, Finish: 5},
	}
	es := E2Es(out)
	if es[0] != 2 || es[1] != 4 {
		t.Fatalf("e2es = %v", es)
	}
	if MeanE2E(out) != 3 {
		t.Fatalf("mean = %v", MeanE2E(out))
	}
	if MeanE2E(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}
