package serving

import (
	"testing"

	"rethinkkv/internal/workload"
)

// outcomeAt builds an outcome with the given TTFT and TBOT (arrival at 0).
func outcomeAt(ttft, tbot float64, respLen int) Outcome {
	return Outcome{
		Req:        workload.Request{ArrivalTime: 0},
		RespLen:    respLen,
		FirstToken: ttft,
		Finish:     ttft + tbot*float64(respLen-1),
	}
}

func TestSLOGoodputTokenWeighted(t *testing.T) {
	slo := SLO{TTFT: 1.0, TBOT: 0.1}
	outcomes := []Outcome{
		outcomeAt(0.5, 0.05, 30),  // attains both
		outcomeAt(2.0, 0.05, 50),  // misses TTFT
		outcomeAt(0.5, 0.20, 20),  // misses TBOT
		outcomeAt(0.9, 0.099, 10), // attains at the margin
	}
	got := SLOGoodput(outcomes, slo)
	want := float64(30+10) / float64(30+50+20+10)
	if got != want {
		t.Fatalf("goodput %v, want %v", got, want)
	}
}

func TestSLOZeroDeadlinesUnconstrained(t *testing.T) {
	outcomes := []Outcome{outcomeAt(100, 100, 7)}
	if g := SLOGoodput(outcomes, SLO{}); g != 1 {
		t.Fatalf("unconstrained goodput %v, want 1", g)
	}
	if g := SLOGoodput(outcomes, SLO{TTFT: 1}); g != 0 {
		t.Fatalf("TTFT-only goodput %v, want 0", g)
	}
	if g := SLOGoodput(nil, SLO{TTFT: 1}); g != 0 {
		t.Fatalf("empty-run goodput %v, want 0", g)
	}
}

func TestSLOSingleTokenHasNoTBOT(t *testing.T) {
	// RespLen 1 defines TBOT as 0, so only the TTFT gate applies.
	o := Outcome{Req: workload.Request{ArrivalTime: 0}, RespLen: 1, FirstToken: 0.5, Finish: 0.5}
	if !(SLO{TTFT: 1, TBOT: 0.001}).Attains(o) {
		t.Fatal("single-token outcome should attain any TBOT deadline")
	}
}
