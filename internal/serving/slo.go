package serving

// SLO names the two per-request latency deadlines production serving is
// graded on: time to first token and mean time between output tokens, both
// in the backend's time unit (wall-clock seconds for the real engines,
// virtual seconds for the simulator). A zero deadline means "no constraint
// on that metric".
type SLO struct {
	TTFT float64
	TBOT float64
}

// Attains reports whether one outcome meets both deadlines.
func (s SLO) Attains(o Outcome) bool {
	if s.TTFT > 0 && o.TTFT() > s.TTFT {
		return false
	}
	if s.TBOT > 0 && o.TBOT() > s.TBOT {
		return false
	}
	return true
}

// SLOGoodput returns the fraction of generated tokens that belong to
// requests attaining the SLO — goodput as a share of raw throughput.
// Token-weighting (rather than counting requests) makes the metric honest
// about long responses: a 100-token stream that blows its deadlines drags
// goodput down by its full cost, not by 1/N. Returns 0 for an empty run.
func SLOGoodput(outcomes []Outcome, slo SLO) float64 {
	total, good := 0, 0
	for _, o := range outcomes {
		total += o.RespLen
		if slo.Attains(o) {
			good += o.RespLen
		}
	}
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}
