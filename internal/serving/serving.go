// Package serving is a discrete-event simulator of a multi-GPU LLM serving
// cluster with request routing — the substrate for the paper's Section 5.4
// request-router experiment (Table 8).
//
// Each GPU runs one model + compression method and serves its queue in
// greedily-formed batches (a coarse approximation of continuous batching:
// requests that arrive while a batch is forming join it, up to the batch
// cap). Batch service time comes from the analytical cost model
// (internal/perf); per-request response lengths come from the length model
// (internal/gen), so compression's verbose-output effect degrades its own
// end-to-end latency exactly as the paper observes.
package serving

import (
	"fmt"
	"sort"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/workload"
)

// GPUConfig is one device in the cluster.
type GPUConfig struct {
	ID     int
	Method compress.Method
	Est    *perf.Estimator
}

// Cluster simulates a fleet of GPUs behind a router.
type Cluster struct {
	GPUs     []GPUConfig
	BatchCap int
	LM       gen.LengthModel
	Seed     uint64
}

// job is a routed request with its realised response length.
type job struct {
	req  workload.Request
	resp int
}

// gpuSim is the per-GPU scheduling state.
type gpuSim struct {
	cfg       GPUConfig
	freeAt    float64
	forming   []job
	formStart float64
	queued    float64
	// inflight is the token load of the committed-but-unfinished batch; it
	// counts toward backlog until freeAt passes.
	inflight float64
	outcomes []Outcome
}

// backlog returns the router-visible load at time now.
func (s *gpuSim) backlog(now float64) float64 {
	b := s.queued
	if now < s.freeAt {
		b += s.inflight
	}
	return b
}

// Run serves the trace and returns per-request outcomes sorted by request ID.
func (c *Cluster) Run(reqs []workload.Request, router Router) ([]Outcome, error) {
	if len(c.GPUs) == 0 {
		return nil, fmt.Errorf("serving: empty cluster")
	}
	batchCap := c.BatchCap
	if batchCap <= 0 {
		batchCap = 8
	}
	sims := make([]*gpuSim, len(c.GPUs))
	for i, g := range c.GPUs {
		sims[i] = &gpuSim{cfg: g}
	}
	ordered := append([]workload.Request(nil), reqs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ArrivalTime < ordered[j].ArrivalTime })

	for _, req := range ordered {
		now := req.ArrivalTime
		// Flush batches whose start time has passed.
		for _, s := range sims {
			s.flushIfStarted(now)
		}
		views := make([]GPUView, len(sims))
		for i, s := range sims {
			views[i] = GPUView{
				ID: s.cfg.ID, Method: s.cfg.Method, Est: s.cfg.Est,
				FreeAt: s.pendingFreeAt(), QueuedTokens: s.backlog(now), Now: now,
			}
		}
		gi := router.Route(req, views)
		if gi < 0 || gi >= len(sims) {
			return nil, fmt.Errorf("serving: router %s returned invalid GPU %d", router.Name(), gi)
		}
		s := sims[gi]
		resp := c.respLen(req, s.cfg.Method)
		s.enqueue(job{req: req, resp: resp}, now, batchCap)
	}
	var out []Outcome
	for _, s := range sims {
		s.commit() // flush remaining forming batch
		out = append(out, s.outcomes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Req.ID < out[j].Req.ID })
	return out, nil
}

// respLen realises the request's response length on a GPU's method.
func (c *Cluster) respLen(req workload.Request, m compress.Method) int {
	sev := gen.Severity(m, req.PromptLen, req.RefLen)
	frag := gen.Fragility(req.ID, m.Cost.Kind)
	r := splitFor(c.Seed, req.ID, m.Name)
	return c.LM.ResponseLength(req.RefLen, sev, 1.0, frag, r)
}

// enqueue adds a job to the GPU, committing the forming batch when it has
// already started or is full.
func (s *gpuSim) enqueue(j job, now float64, batchCap int) {
	if len(s.forming) == 0 {
		s.formStart = stats.MaxF(s.freeAt, now)
		s.forming = []job{j}
	} else if now > s.formStart || len(s.forming) >= batchCap {
		s.commit()
		s.formStart = stats.MaxF(s.freeAt, now)
		s.forming = []job{j}
	} else {
		s.forming = append(s.forming, j)
	}
	s.queued += float64(j.req.PromptLen + j.resp)
}

// flushIfStarted commits the forming batch once simulated time passes its
// start.
func (s *gpuSim) flushIfStarted(now float64) {
	if len(s.forming) > 0 && now > s.formStart {
		s.commit()
	}
}

// pendingFreeAt estimates when the GPU would be free including the forming
// batch.
func (s *gpuSim) pendingFreeAt() float64 {
	if len(s.forming) == 0 {
		return s.freeAt
	}
	_, _, dur := serveBatch(s.cfg.Est, s.forming)
	return stats.MaxF(s.freeAt, s.formStart) + dur
}

// commit serves the forming batch and records outcomes.
func (s *gpuSim) commit() {
	if len(s.forming) == 0 {
		return
	}
	start := stats.MaxF(s.freeAt, s.formStart)
	finishes, prefill, dur := serveBatch(s.cfg.Est, s.forming)
	s.inflight = 0
	for i, j := range s.forming {
		s.outcomes = append(s.outcomes, Outcome{
			Req: j.req, GPU: s.cfg.ID, RespLen: j.resp,
			Start: start, FirstToken: start + prefill, Finish: start + finishes[i],
		})
		s.queued -= float64(j.req.PromptLen + j.resp)
		s.inflight += float64(j.req.PromptLen + j.resp)
	}
	s.freeAt = start + dur
	s.forming = nil
}

// serveBatch prices a batch: prefill everything, then decode with the batch
// shrinking as shorter responses finish. Returns per-job finish offsets,
// the prefill duration (first-token offset), and the total duration.
func serveBatch(est *perf.Estimator, batch []job) (finishes []float64, prefill, total float64) {
	b := len(batch)
	meanPrompt := 0
	for _, j := range batch {
		meanPrompt += j.req.PromptLen
	}
	meanPrompt /= b
	prefill = est.PrefillLatency(b, meanPrompt)

	// Sort indices by response length.
	idx := make([]int, b)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return batch[idx[i]].resp < batch[idx[j]].resp })

	finishes = make([]float64, b)
	t := prefill
	prevLen := 0
	active := b
	for _, i := range idx {
		steps := batch[i].resp - prevLen
		if steps > 0 {
			kv := meanPrompt + prevLen + steps/2
			t += float64(steps) * est.DecodeStepLatency(active, kv)
			prevLen = batch[i].resp
		}
		finishes[i] = t
		active--
	}
	return finishes, prefill, t
}

// splitFor derives a deterministic per-(request, method) sampling stream.
func splitFor(seed uint64, reqID int, method string) *rng.RNG {
	h := seed ^ (uint64(reqID) * 0x9e3779b97f4a7c15)
	for _, c := range method {
		h = h*131 + uint64(c)
	}
	return rng.New(h)
}
