package engine

import "testing"

func TestProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"trl", "trl+fa", "lmdeploy", "vllm"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("lookup %q failed: %v", name, err)
		}
	}
	if _, err := ByName("tgi"); err == nil {
		t.Fatal("unknown engine should error")
	}
	if err := VLLM.Validate(); err != nil {
		t.Fatal(err)
	}
	if VLLM.QuantKernelEff >= LMDeploy.QuantKernelEff {
		t.Fatal("vllm's quant kernels must trail lmdeploy's (Appendix A.4)")
	}
}

func TestStructuralOrdering(t *testing.T) {
	// The production engine must dominate the eager ones on every axis the
	// model charges.
	if !(LMDeploy.BandwidthEff > TRLFA.BandwidthEff && TRLFA.BandwidthEff > TRL.BandwidthEff) {
		t.Fatal("bandwidth efficiency ordering violated")
	}
	if !(LMDeploy.StepOverhead < TRLFA.StepOverhead && TRLFA.StepOverhead < TRL.StepOverhead) {
		t.Fatal("step overhead ordering violated")
	}
	if LMDeploy.KernelsPerLayerDecode >= TRL.KernelsPerLayerDecode {
		t.Fatal("fused engine should launch fewer kernels")
	}
	if !LMDeploy.FlashAttention || !LMDeploy.Paged {
		t.Fatal("lmdeploy must model flash + paged")
	}
	if TRL.FlashAttention || TRL.Paged {
		t.Fatal("trl must model neither")
	}
	if !TRLFA.FlashAttention || TRLFA.Paged {
		t.Fatal("trl+fa must model flash without paging")
	}
	if LMDeploy.QuantKernelEff <= TRL.QuantKernelEff {
		t.Fatal("lmdeploy ships the efficient quant kernels")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "a", BandwidthEff: 0, ComputeEff: 0.5, QuantKernelEff: 0.5, KernelsPerLayerDecode: 1, KernelsPerLayerPrefill: 1},
		{Name: "b", BandwidthEff: 0.5, ComputeEff: 1.5, QuantKernelEff: 0.5, KernelsPerLayerDecode: 1, KernelsPerLayerPrefill: 1},
		{Name: "c", BandwidthEff: 0.5, ComputeEff: 0.5, QuantKernelEff: 0, KernelsPerLayerDecode: 1, KernelsPerLayerPrefill: 1},
		{Name: "d", BandwidthEff: 0.5, ComputeEff: 0.5, QuantKernelEff: 0.5, KernelsPerLayerDecode: 0, KernelsPerLayerPrefill: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %s should fail validation", p.Name)
		}
	}
}
