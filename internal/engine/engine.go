// Package engine defines the serving-engine profiles the paper compares:
// the naive transformers library (TRL), TRL with FlashAttention enabled
// (TRL+FA), and an LMDeploy-like production engine (FlashAttention +
// PagedAttention + fused and efficient quantisation kernels).
//
// A profile captures how an engine's implementation structure maps onto the
// roofline model: attention pass structure, achieved bandwidth/compute
// efficiency, per-layer kernel counts (launch overhead), host-side framework
// overhead per step, and how well it executes the irregular kernels that
// compression methods introduce. These structural differences — not tuned
// constants — produce the paper's Observation 1.
package engine

import "fmt"

// Profile describes one serving engine.
type Profile struct {
	Name string
	// FlashAttention: attention is a fused one-pass kernel; attention
	// scores are never materialised (eviction policies that need them pay
	// recomputation passes).
	FlashAttention bool
	// Paged: KV cache uses paged block tables (no contiguous
	// preallocation to max length; admission is pool-based).
	Paged bool
	// BandwidthEff is the achieved fraction of peak memory bandwidth for
	// streaming kernels (attention reads, weight reads).
	BandwidthEff float64
	// ComputeEff is the achieved fraction of peak FP16 FLOPS for GEMMs.
	ComputeEff float64
	// KernelsPerLayerDecode is the kernel-launch count per transformer
	// layer per decode step (eager frameworks launch many small kernels;
	// fused engines few).
	KernelsPerLayerDecode int
	// KernelsPerLayerPrefill is the same for the prefill stage.
	KernelsPerLayerPrefill int
	// StepOverhead is host-side framework overhead per decode step,
	// seconds (Python dispatch, cache bookkeeping).
	StepOverhead float64
	// QuantKernelEff is the relative efficiency of the engine's
	// quantise/dequantise kernels (LMDeploy ships fast fused ones; eager
	// frameworks run them as many small unfused ops).
	QuantKernelEff float64
}

// TRL models the naive HuggingFace transformers path: eager execution,
// multi-pass attention that materialises the score matrix, contiguous KV,
// heavy per-step Python overhead.
var TRL = Profile{
	Name:                   "trl",
	FlashAttention:         false,
	Paged:                  false,
	BandwidthEff:           0.50,
	ComputeEff:             0.45,
	KernelsPerLayerDecode:  24,
	KernelsPerLayerPrefill: 24,
	StepOverhead:           8e-3,
	QuantKernelEff:         0.35,
}

// TRLFA is transformers with FlashAttention-2 enabled: the attention kernel
// is fused, but framework overhead and eager dispatch remain.
var TRLFA = Profile{
	Name:                   "trl+fa",
	FlashAttention:         true,
	Paged:                  false,
	BandwidthEff:           0.60,
	ComputeEff:             0.50,
	KernelsPerLayerDecode:  18,
	KernelsPerLayerPrefill: 18,
	StepOverhead:           6e-3,
	QuantKernelEff:         0.40,
}

// LMDeploy models a production engine: FlashAttention + PagedAttention,
// fused CUDA graphs (few launches), minimal host overhead, and efficient
// quantisation kernels — the paper selects it for exactly these properties
// (Appendix A.4).
var LMDeploy = Profile{
	Name:                   "lmdeploy",
	FlashAttention:         true,
	Paged:                  true,
	BandwidthEff:           0.78,
	ComputeEff:             0.62,
	KernelsPerLayerDecode:  4,
	KernelsPerLayerPrefill: 6,
	StepOverhead:           4e-4,
	QuantKernelEff:         0.85,
}

// VLLM models vLLM: FlashAttention + PagedAttention like LMDeploy, but with
// markedly slower KV quantisation kernels — the reason the paper selects
// LMDeploy for its quantisation-heavy study (Appendix A.4; the KIVI authors
// themselves reported being unable to integrate with vLLM).
var VLLM = Profile{
	Name:                   "vllm",
	FlashAttention:         true,
	Paged:                  true,
	BandwidthEff:           0.76,
	ComputeEff:             0.60,
	KernelsPerLayerDecode:  5,
	KernelsPerLayerPrefill: 7,
	StepOverhead:           6e-4,
	QuantKernelEff:         0.40,
}

// All returns the three engine profiles in the paper's comparison order
// (Figure 1 compares TRL, TRL+FA, and LMDeploy; vLLM appears only in the
// engine-selection discussion).
func All() []Profile { return []Profile{TRL, TRLFA, LMDeploy} }

// Known returns every named profile — the resolution set of ByName.
func Known() []Profile { return append(All(), VLLM) }

// ByName returns a profile by name, including vLLM.
func ByName(name string) (Profile, error) {
	for _, p := range Known() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("engine: unknown engine %q", name)
}

// Validate reports structural errors in a profile.
func (p Profile) Validate() error {
	if p.BandwidthEff <= 0 || p.BandwidthEff > 1 || p.ComputeEff <= 0 || p.ComputeEff > 1 {
		return fmt.Errorf("engine %s: efficiency out of (0,1]", p.Name)
	}
	if p.QuantKernelEff <= 0 || p.QuantKernelEff > 1 {
		return fmt.Errorf("engine %s: quant kernel efficiency out of (0,1]", p.Name)
	}
	if p.KernelsPerLayerDecode <= 0 || p.KernelsPerLayerPrefill <= 0 {
		return fmt.Errorf("engine %s: non-positive kernel counts", p.Name)
	}
	return nil
}
