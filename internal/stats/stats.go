// Package stats provides the descriptive statistics, density estimation and
// small regression models used by the experiment runners: percentiles and
// CDFs for latency analysis (Figure 5), Gaussian-kernel density estimation
// for the response-length-difference distributions (Figure 4), and linear /
// logistic regression for the throughput and length predictors (Table 6).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the samples.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the smallest sample x with P(X <= x) >= q, for q in (0,1].
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Points returns (x, cdf) pairs suitable for plotting, one per distinct
// sample value.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// Histogram bins samples into equal-width bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram with the given number of bins. Samples
// outside [lo, hi] are clamped into the edge bins. It panics if bins <= 0 or
// hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.N++
}

// Density returns the normalized density of each bin (integrates to 1).
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.N == 0 {
		return d
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.N) * width)
	}
	return d
}

// BinCenters returns the center x-value of each bin.
func (h *Histogram) BinCenters() []float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	cs := make([]float64, len(h.Counts))
	for i := range cs {
		cs[i] = h.Lo + width*(float64(i)+0.5)
	}
	return cs
}

// KDE is a Gaussian kernel density estimator, used to draw the smoothed
// response-length-difference curves in Figure 4.
type KDE struct {
	samples   []float64
	bandwidth float64
}

// NewKDE builds a KDE with Silverman's rule-of-thumb bandwidth when bw <= 0.
func NewKDE(xs []float64, bw float64) *KDE {
	s := append([]float64(nil), xs...)
	if bw <= 0 {
		sd := StdDev(s)
		if sd == 0 {
			sd = 1
		}
		bw = 1.06 * sd * math.Pow(float64(MaxI(len(s), 1)), -0.2)
	}
	return &KDE{samples: s, bandwidth: bw}
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// At evaluates the estimated density at x.
func (k *KDE) At(x float64) float64 {
	if len(k.samples) == 0 {
		return 0
	}
	const invSqrt2Pi = 0.3989422804014327
	sum := 0.0
	for _, s := range k.samples {
		z := (x - s) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*z*z)
	}
	return sum / (float64(len(k.samples)) * k.bandwidth)
}

// Evaluate returns densities at n evenly spaced points across [lo, hi].
func (k *KDE) Evaluate(lo, hi float64, n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		ys[i] = k.At(x)
	}
	return xs, ys
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
// It returns 0 when either side has zero variance or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Summary bundles the descriptive statistics reported in experiment output.
type Summary struct {
	N                       int
	Mean, Std               float64
	Min, P50, P90, P99, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		P50:  Percentile(xs, 50),
		P90:  Percentile(xs, 90),
		P99:  Percentile(xs, 99),
		Max:  Max(xs),
	}
}
