package stats

import "math"

// LinearModel is an ordinary-least-squares linear regression y = w·x + b,
// fit by gradient descent. It backs the throughput predictor's residual
// correction on top of the profile-table interpolation.
type LinearModel struct {
	Weights []float64
	Bias    float64
}

// FitLinear fits a linear model to the rows of X against y using full-batch
// gradient descent with feature standardization folded into the weights.
// It panics if dimensions are inconsistent or X is empty.
func FitLinear(X [][]float64, y []float64, epochs int, lr float64) *LinearModel {
	if len(X) == 0 || len(X) != len(y) {
		panic("stats: FitLinear dimension mismatch")
	}
	d := len(X[0])
	// Standardize features for stable descent.
	mu := make([]float64, d)
	sd := make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(X))
		for i := range X {
			col[i] = X[i][j]
		}
		mu[j] = Mean(col)
		sd[j] = StdDev(col)
		if sd[j] == 0 {
			sd[j] = 1
		}
	}
	w := make([]float64, d)
	b := Mean(y)
	n := float64(len(X))
	for e := 0; e < epochs; e++ {
		gw := make([]float64, d)
		gb := 0.0
		for i := range X {
			pred := b
			for j := 0; j < d; j++ {
				pred += w[j] * (X[i][j] - mu[j]) / sd[j]
			}
			err := pred - y[i]
			for j := 0; j < d; j++ {
				gw[j] += err * (X[i][j] - mu[j]) / sd[j]
			}
			gb += err
		}
		for j := 0; j < d; j++ {
			w[j] -= lr * gw[j] / n
		}
		b -= lr * gb / n
	}
	// Fold standardization back into raw-space weights.
	raw := make([]float64, d)
	bias := b
	for j := 0; j < d; j++ {
		raw[j] = w[j] / sd[j]
		bias -= w[j] * mu[j] / sd[j]
	}
	return &LinearModel{Weights: raw, Bias: bias}
}

// Predict evaluates the model at x.
func (m *LinearModel) Predict(x []float64) float64 {
	p := m.Bias
	for j, w := range m.Weights {
		p += w * x[j]
	}
	return p
}

// LogisticModel is a binary logistic-regression classifier. It substitutes
// for the paper's BERT-based length classifier (see DESIGN.md): the paper's
// claim is only that response length is predictable to >=85% accuracy from
// the request, which a feature-based classifier reproduces.
type LogisticModel struct {
	Weights []float64
	Bias    float64
	mu, sd  []float64
}

// Sigmoid is the standard logistic function.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// FitLogistic fits a logistic model to rows X with binary labels y (0 or 1)
// using full-batch gradient descent with L2 regularization.
func FitLogistic(X [][]float64, y []float64, epochs int, lr, l2 float64) *LogisticModel {
	if len(X) == 0 || len(X) != len(y) {
		panic("stats: FitLogistic dimension mismatch")
	}
	d := len(X[0])
	mu := make([]float64, d)
	sd := make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(X))
		for i := range X {
			col[i] = X[i][j]
		}
		mu[j] = Mean(col)
		sd[j] = StdDev(col)
		if sd[j] == 0 {
			sd[j] = 1
		}
	}
	w := make([]float64, d)
	b := 0.0
	n := float64(len(X))
	z := make([]float64, d)
	for e := 0; e < epochs; e++ {
		gw := make([]float64, d)
		gb := 0.0
		for i := range X {
			for j := 0; j < d; j++ {
				z[j] = (X[i][j] - mu[j]) / sd[j]
			}
			s := b
			for j := 0; j < d; j++ {
				s += w[j] * z[j]
			}
			err := Sigmoid(s) - y[i]
			for j := 0; j < d; j++ {
				gw[j] += err * z[j]
			}
			gb += err
		}
		for j := 0; j < d; j++ {
			w[j] -= lr * (gw[j]/n + l2*w[j])
		}
		b -= lr * gb / n
	}
	return &LogisticModel{Weights: w, Bias: b, mu: mu, sd: sd}
}

// Prob returns the predicted probability of class 1 for x.
func (m *LogisticModel) Prob(x []float64) float64 {
	s := m.Bias
	for j, w := range m.Weights {
		s += w * (x[j] - m.mu[j]) / m.sd[j]
	}
	return Sigmoid(s)
}

// Classify returns 1 if Prob(x) >= 0.5, else 0.
func (m *LogisticModel) Classify(x []float64) int {
	if m.Prob(x) >= 0.5 {
		return 1
	}
	return 0
}

// Accuracy returns the fraction of rows classified correctly.
func (m *LogisticModel) Accuracy(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i := range X {
		if float64(m.Classify(X[i])) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

// BilinearTable is a 2-D lookup table with bilinear interpolation over an
// irregular grid, used by the throughput predictor to interpolate profiled
// attention-operator latencies across (batch size, sequence length).
type BilinearTable struct {
	Xs, Ys []float64 // strictly increasing grid coordinates
	Z      [][]float64
}

// NewBilinearTable constructs a table; Z[i][j] is the value at (Xs[i], Ys[j]).
// It panics on inconsistent dimensions or non-increasing grids.
func NewBilinearTable(xs, ys []float64, z [][]float64) *BilinearTable {
	if len(z) != len(xs) {
		panic("stats: table row count mismatch")
	}
	for _, row := range z {
		if len(row) != len(ys) {
			panic("stats: table column count mismatch")
		}
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic("stats: xs not strictly increasing")
		}
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			panic("stats: ys not strictly increasing")
		}
	}
	return &BilinearTable{Xs: xs, Ys: ys, Z: z}
}

func bracket(grid []float64, v float64) (int, float64) {
	n := len(grid)
	if v <= grid[0] {
		return 0, 0
	}
	if v >= grid[n-1] {
		return n - 2, 1
	}
	lo := 0
	for lo+1 < n && grid[lo+1] < v {
		lo++
	}
	frac := (v - grid[lo]) / (grid[lo+1] - grid[lo])
	return lo, frac
}

// At interpolates the table at (x, y), clamping outside the grid.
func (t *BilinearTable) At(x, y float64) float64 {
	if len(t.Xs) == 1 && len(t.Ys) == 1 {
		return t.Z[0][0]
	}
	if len(t.Xs) == 1 {
		j, fy := bracket(t.Ys, y)
		return t.Z[0][j]*(1-fy) + t.Z[0][j+1]*fy
	}
	if len(t.Ys) == 1 {
		i, fx := bracket(t.Xs, x)
		return t.Z[i][0]*(1-fx) + t.Z[i+1][0]*fx
	}
	i, fx := bracket(t.Xs, x)
	j, fy := bracket(t.Ys, y)
	z00 := t.Z[i][j]
	z01 := t.Z[i][j+1]
	z10 := t.Z[i+1][j]
	z11 := t.Z[i+1][j+1]
	return z00*(1-fx)*(1-fy) + z10*fx*(1-fy) + z01*(1-fx)*fy + z11*fx*fy
}
