package stats

// Two-argument min/max helpers shared across the repository. Several
// packages used to carry private copies (serving's maxF, the maxInt in
// kvcache, perf and stats itself); they live here so there is exactly one
// definition of each.

// MaxF returns the larger of a and b.
func MaxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinF returns the smaller of a and b.
func MinF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MaxI returns the larger of a and b.
func MaxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinI returns the smaller of a and b.
func MinI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
