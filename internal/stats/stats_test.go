package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !almostEq(v, 4, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if s := StdDev(xs); !almostEq(s, 2, 1e-12) {
		t.Fatalf("std = %v", s)
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty mean/variance should be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max sentinel wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 50); !almostEq(got, 5, 1e-12) {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	if q := e.Quantile(1); q != 3 {
		t.Fatalf("Quantile(1) = %v", q)
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		e := NewECDF(raw)
		prev := -1.0
		for x := -100.0; x <= 100; x += 7 {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2})
	xs, ps := e.Points()
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("points xs = %v", xs)
	}
	if !almostEq(ps[0], 2.0/3, 1e-12) || ps[1] != 1 {
		t.Fatalf("points ps = %v", ps)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1.5, 9.9, -5, 20}, 0, 10, 10)
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 3 { // 0, 0.5, and clamped -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 20
		t.Fatalf("bin9 = %d", h.Counts[9])
	}
	// Density integrates to 1.
	sum := 0.0
	for _, d := range h.Density() {
		sum += d * 1.0 // bin width
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("density integral = %v", sum)
	}
	centers := h.BinCenters()
	if !almostEq(centers[0], 0.5, 1e-12) || !almostEq(centers[9], 9.5, 1e-12) {
		t.Fatalf("centers = %v", centers)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	k := NewKDE([]float64{-1, 0, 1, 2, 5}, 0)
	// Trapezoidal integration over a wide range.
	lo, hi, n := -30.0, 30.0, 4000
	step := (hi - lo) / float64(n)
	sum := 0.0
	for i := 0; i <= n; i++ {
		x := lo + step*float64(i)
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * k.At(x)
	}
	sum *= step
	if !almostEq(sum, 1, 0.01) {
		t.Fatalf("KDE integral = %v", sum)
	}
}

func TestKDEPeaksNearData(t *testing.T) {
	k := NewKDE([]float64{0, 0, 0, 0}, 0.5)
	if k.At(0) <= k.At(3) {
		t.Fatal("KDE should peak at the data")
	}
}

func TestKDEEvaluateGrid(t *testing.T) {
	k := NewKDE([]float64{0}, 1)
	xs, ys := k.Evaluate(-1, 1, 3)
	if len(xs) != 3 || xs[0] != -1 || xs[2] != 1 {
		t.Fatalf("grid = %v", xs)
	}
	if ys[1] <= ys[0] {
		t.Fatal("center should have highest density")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect correlation r = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation r = %v", r)
	}
	if r := Pearson(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Fatalf("zero-variance r = %v", r)
	}
	if r := Pearson(xs, []float64{1}); r != 0 {
		t.Fatalf("mismatched length r = %v", r)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.P50 != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
}
