package stats

import (
	"math"
	"testing"

	"rethinkkv/internal/rng"
)

func TestFitLinearRecoversPlane(t *testing.T) {
	r := rng.New(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x0 := r.Float64() * 10
		x1 := r.Float64() * 5
		X = append(X, []float64{x0, x1})
		y = append(y, 3*x0-2*x1+7)
	}
	m := FitLinear(X, y, 3000, 0.1)
	if math.Abs(m.Weights[0]-3) > 0.05 || math.Abs(m.Weights[1]+2) > 0.05 {
		t.Fatalf("weights = %v", m.Weights)
	}
	if math.Abs(m.Bias-7) > 0.2 {
		t.Fatalf("bias = %v", m.Bias)
	}
	if p := m.Predict([]float64{2, 1}); math.Abs(p-11) > 0.3 {
		t.Fatalf("predict = %v, want 11", p)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rng.New(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 1000; i++ {
		x := r.Float64() * 100
		X = append(X, []float64{x})
		y = append(y, 0.5*x+r.NormFloat64())
	}
	m := FitLinear(X, y, 2000, 0.1)
	if math.Abs(m.Weights[0]-0.5) > 0.02 {
		t.Fatalf("slope = %v", m.Weights[0])
	}
}

func TestFitLinearPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitLinear([][]float64{{1}}, []float64{1, 2}, 10, 0.1)
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
	// Symmetry.
	if math.Abs(Sigmoid(2)+Sigmoid(-2)-1) > 1e-12 {
		t.Fatal("sigmoid not symmetric")
	}
}

func TestFitLogisticSeparable(t *testing.T) {
	r := rng.New(3)
	var X [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		x0 := r.NormFloat64()
		x1 := r.NormFloat64()
		label := 0.0
		if x0+x1 > 0 {
			label = 1
		}
		X = append(X, []float64{x0, x1})
		y = append(y, label)
	}
	m := FitLogistic(X, y, 500, 0.5, 1e-4)
	if acc := m.Accuracy(X, y); acc < 0.95 {
		t.Fatalf("separable accuracy = %v", acc)
	}
}

func TestFitLogisticProbRange(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 1, 1}
	m := FitLogistic(X, y, 300, 0.5, 0)
	for _, x := range X {
		p := m.Prob(x)
		if p < 0 || p > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
	}
	if m.Prob([]float64{0}) >= m.Prob([]float64{3}) {
		t.Fatal("monotonicity violated")
	}
}

func TestBilinearTableExact(t *testing.T) {
	tab := NewBilinearTable(
		[]float64{1, 2},
		[]float64{10, 20},
		[][]float64{{1, 2}, {3, 4}},
	)
	// Grid points are exact.
	if v := tab.At(1, 10); v != 1 {
		t.Fatalf("At(1,10) = %v", v)
	}
	if v := tab.At(2, 20); v != 4 {
		t.Fatalf("At(2,20) = %v", v)
	}
	// Center interpolates to the mean of corners.
	if v := tab.At(1.5, 15); math.Abs(v-2.5) > 1e-12 {
		t.Fatalf("center = %v", v)
	}
	// Clamping outside the grid.
	if v := tab.At(0, 5); v != 1 {
		t.Fatalf("clamped = %v", v)
	}
	if v := tab.At(99, 99); v != 4 {
		t.Fatalf("clamped hi = %v", v)
	}
}

func TestBilinearTableDegenerate(t *testing.T) {
	single := NewBilinearTable([]float64{1}, []float64{1}, [][]float64{{42}})
	if v := single.At(7, -3); v != 42 {
		t.Fatalf("1x1 table = %v", v)
	}
	row := NewBilinearTable([]float64{1}, []float64{0, 10}, [][]float64{{0, 100}})
	if v := row.At(1, 5); math.Abs(v-50) > 1e-12 {
		t.Fatalf("1xN interp = %v", v)
	}
	col := NewBilinearTable([]float64{0, 10}, []float64{1}, [][]float64{{0}, {100}})
	if v := col.At(5, 1); math.Abs(v-50) > 1e-12 {
		t.Fatalf("Nx1 interp = %v", v)
	}
}

func TestBilinearTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing grid")
		}
	}()
	NewBilinearTable([]float64{2, 1}, []float64{1}, [][]float64{{1}, {2}})
}
