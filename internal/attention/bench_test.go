package attention

import (
	"fmt"
	"testing"
)

// Ablation 1 (DESIGN.md): one-pass Flash vs multi-pass Naive attention —
// identical outputs, different traffic and wall time.
func BenchmarkNaiveVsFlash(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		q, keys, vals := randSeq(1, n, 64)
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Naive(q, keys, vals)
			}
		})
		b.Run(fmt.Sprintf("flash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Flash(q, keys, vals)
			}
		})
	}
}

// BenchmarkFlashScores prices the score-recovery pass an eviction policy
// forces onto a Flash engine.
func BenchmarkFlashScores(b *testing.B) {
	q, keys, _ := randSeq(2, 1024, 64)
	for i := 0; i < b.N; i++ {
		FlashScores(q, keys)
	}
}

func BenchmarkPaged(b *testing.B) {
	q, keys, vals := randSeq(3, 1024, 64)
	var kp, vp [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		kp = append(kp, keys[i:end])
		vp = append(vp, vals[i:end])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paged(q, kp, vp)
	}
}

// BenchmarkFlashStrided prices the flat-KV fast path against the
// slice-of-slices Flash kernel at the same sequence length.
func BenchmarkFlashStrided(b *testing.B) {
	q, keys, vals := randSeq(4, 1024, 64)
	stride := 128 // 2-head layout
	fk := make([]float32, len(keys)*stride)
	fv := make([]float32, len(vals)*stride)
	for i := range keys {
		copy(fk[i*stride:], keys[i])
		copy(fv[i*stride:], vals[i])
	}
	out := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlashStrided(out, q, fk, fv, stride, len(keys))
	}
}
