package attention

import (
	"math"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// This file is Quest's live-plane form: the same per-page criticality bound
// the offline Quest() prototype scores, but over kvcache's incrementally
// maintained flat summaries (kvcache.KeySummaryReader) and with zero
// allocation — page scores and the selection land in a caller-owned
// SparseScratch, selection is a repeated max-scan instead of sort.Slice, and
// only the selected pages stream through the shared online-softmax core.
// The tail page is always selected (Quest's recent-token protection): the
// query's strongest local context lives there and its summary covers few
// tokens, so the bound is least informative exactly where the cost of a miss
// is highest.

// SparseScratch holds the per-head page-selection state for the sparse
// kernels: float64 criticality scores (consumed destructively by selection)
// and the selected page indices. Ensure before use; the kernels never grow
// it, so a workspace-resident scratch keeps decode at 0 allocs/step.
type SparseScratch struct {
	Scores []float64
	Sel    []int32
}

// Ensure grows the scratch to cover nPages pages.
func (s *SparseScratch) Ensure(nPages int) {
	if nPages <= cap(s.Scores) {
		return
	}
	n := 2 * cap(s.Scores)
	if n < nPages {
		n = nPages
	}
	s.Scores = make([]float64, n)
	s.Sel = make([]int32, n)
}

// CriticalityStrided is PageSummary.Criticality over kvcache's flat summary
// layout: summ holds per-channel key minima in [0, stride) and maxima in
// [stride, 2*stride), and off selects the head (off = head*HeadDim). The
// arithmetic — float64 accumulation of Σ_c max(q_c·min_c, q_c·max_c) — is
// identical to the offline form, so live selection and offline recall
// diagnostics rank pages the same way.
func CriticalityStrided(q, summ []float32, off, stride int) float64 {
	mins := summ[off : off+len(q)]
	maxs := summ[stride+off : stride+off+len(q)]
	var sum float64
	for c, qc := range q {
		lo := float64(qc) * float64(mins[c])
		hi := float64(qc) * float64(maxs[c])
		if hi > lo {
			lo = hi
		}
		sum += lo
	}
	return sum
}

// SelectTopPages writes the indices of the topK highest-scoring pages into
// sel in ascending page order and returns how many were selected. The last
// page is always included. scores is consumed destructively (selected
// entries become -Inf); ties break toward the lower page index. topK >=
// len(scores) selects every page — ascending order then makes a sparse
// kernel's stream identical to its dense sibling's, which is what keeps
// topK >= pages bit-identical. sel must hold at least len(scores) entries.
func SelectTopPages(sel []int32, scores []float64, topK int) int {
	n := len(scores)
	if n == 0 {
		return 0
	}
	if topK >= n {
		for i := range scores {
			sel[i] = int32(i)
		}
		return n
	}
	neg := math.Inf(-1)
	sel[0] = int32(n - 1) // tail protection
	scores[n-1] = neg
	cnt := 1
	for cnt < topK {
		best, bestScore := -1, neg
		for i, s := range scores {
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		if best < 0 {
			break // every remaining score was -Inf
		}
		scores[best] = neg
		// Insertion keeps sel ascending; the selection is small (topK),
		// so the quadratic worst case is a handful of int32 moves.
		j := cnt
		for j > 0 && sel[j-1] > int32(best) {
			sel[j] = sel[j-1]
			j--
		}
		sel[j] = int32(best)
		cnt++
	}
	return cnt
}

// PagedStridedSparse is PagedStrided attending only the topK most critical
// pages: every page's summary is scored against q, the top-k (tail page
// included) are selected in ascending order, and only those stream through
// the online-softmax recurrence. topK >= pages delegates to the dense
// kernel, making the output (and traffic) exactly PagedStrided's. Returns
// the traffic — summary reads (2·d per page) included — and the selected
// page count. Allocates nothing; scratch must outlive the call.
func PagedStridedSparse(out, q []float32, keyPages, valPages, summs [][]float32, off, stride, topK int, scratch *SparseScratch) (Traffic, int) {
	np := len(keyPages)
	if topK >= np || np == 0 {
		return PagedStrided(out, q, keyPages, valPages, off, stride), np
	}
	d := len(q)
	scratch.Ensure(np)
	scores, sel := scratch.Scores[:np], scratch.Sel[:np]
	for p := range summs[:np] {
		scores[p] = CriticalityStrided(q, summs[p], off, stride)
	}
	nSel := SelectTopPages(sel, scores, topK)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	n := 0
	for _, pi := range sel[:nSel] {
		kp, vp := keyPages[pi], valPages[pi]
		t := len(kp) / stride
		n += t
		for i := 0; i < t; i++ {
			base := off + i*stride
			st.step(tensor.Dot(q, kp[base:base+d])*invSqrt, vp[base:base+d])
		}
	}
	st.finish()
	var tr Traffic
	// Every page's summary (2·d), the selected pages' K/V once each, plus
	// the block-table indirections.
	tr.ElemsRead = int64(2*np*d) + int64(2*n*d) + int64(np)
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return tr, nSel
}

// PagedStridedQuantSparse is the quantized sibling: summaries are scored in
// fp32 (kvcache folds them over dequantized keys, so the bound covers what
// the fused kernels stream), and the selected pages dequantize-on-stream
// exactly like PagedStridedQuant, to which it delegates when topK >= pages.
func PagedStridedQuantSparse(out, q, vScratch []float32, pages []kvcache.QuantPage, summs [][]float32, bits, off, stride, kvHeads, head, topK int, scratch *SparseScratch) (Traffic, int) {
	np := len(pages)
	if topK >= np || np == 0 {
		return PagedStridedQuant(out, q, vScratch, pages, bits, off, stride, kvHeads, head), np
	}
	d := len(q)
	scratch.Ensure(np)
	scores, sel := scratch.Scores[:np], scratch.Sel[:np]
	for p := range summs[:np] {
		scores[p] = CriticalityStrided(q, summs[p], off, stride)
	}
	nSel := SelectTopPages(sel, scores, topK)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	n := 0
	for _, pi := range sel[:nSel] {
		pg := &pages[pi]
		t := pg.Tokens(kvHeads)
		n += t
		for i := 0; i < t; i++ {
			s := tensor.DotQuantEntry(q, pg.KCodes, pg.KParams, bits, off, stride, kvHeads, head, i) * invSqrt
			tensor.DequantSliceInto(vScratch, pg.VCodes, pg.VParams, bits, off, stride, kvHeads, head, i)
			st.step(s, vScratch)
		}
	}
	st.finish()
	var tr Traffic
	tr.ElemsRead = int64(2*np*d) + int64(2*n*d) + int64(4*n) + int64(np)
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return tr, nSel
}
