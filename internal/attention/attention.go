// Package attention implements single-query attention kernels that produce
// identical outputs but differ in pass structure and memory traffic:
//
//   - Naive: the multi-pass "transformers library" kernel — materialises the
//     score vector, so K is read, scores are written and re-read, then V is
//     read (three logical passes over sequence-length-sized data).
//   - Flash: a FlashAttention-style one-pass kernel with online softmax —
//     K and V are each streamed once and no score vector ever hits memory.
//
// Each kernel reports its byte traffic. The analytical cost model in
// internal/perf uses the same pass structure; these kernels are the
// executable ground truth that validates it, and they also demonstrate the
// paper's compatibility argument: computing an eviction policy's attention
// scores under Flash requires an extra pass that re-reads K (FlashScores).
package attention

import (
	"math"

	"rethinkkv/internal/tensor"
)

// Traffic accounts the memory behaviour of one kernel invocation in
// elements (multiply by dtype size for bytes).
type Traffic struct {
	ElemsRead    int64
	ElemsWritten int64
	Passes       int // logical passes over O(seqlen)-sized data
}

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.ElemsRead += other.ElemsRead
	t.ElemsWritten += other.ElemsWritten
	if other.Passes > 0 {
		t.Passes += other.Passes
	}
}

// Bytes returns total bytes moved assuming the given element size.
func (t Traffic) Bytes(elemSize int64) int64 {
	return (t.ElemsRead + t.ElemsWritten) * elemSize
}

// Naive computes softmax(q·Kᵀ/√d)·V by materialising the score vector, as
// the unoptimized transformers-library path does. Returns the attention
// output, the (post-softmax) scores, and the traffic.
func Naive(q []float32, keys, vals [][]float32) ([]float32, []float32, Traffic) {
	d := len(q)
	n := len(keys)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	scores := make([]float32, n)
	var tr Traffic
	// Pass 1: read K, write scores.
	for i, k := range keys {
		scores[i] = tensor.Dot(q, k) * invSqrt
	}
	tr.ElemsRead += int64(n * d)
	tr.ElemsWritten += int64(n)
	// Pass 2: softmax reads and rewrites the scores.
	tensor.Softmax(scores)
	tr.ElemsRead += int64(n)
	tr.ElemsWritten += int64(n)
	// Pass 3: read scores and V, accumulate output.
	out := make([]float32, d)
	for i, v := range vals {
		tensor.AXPY(out, scores[i], v)
	}
	tr.ElemsRead += int64(n) + int64(n*d)
	tr.ElemsWritten += int64(d)
	tr.Passes = 3
	return out, scores, tr
}

// Flash computes the same attention output with a single fused pass using
// the online-softmax recurrence; K and V are each read exactly once and the
// score vector never exists in memory. Scores are NOT available — that is
// the point (the paper's incompatibility argument for score-based eviction).
func Flash(q []float32, keys, vals [][]float32) ([]float32, Traffic) {
	d := len(q)
	n := len(keys)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	out := make([]float32, d)
	var tr Traffic
	if n == 0 {
		return out, tr
	}
	runningMax := float32(math.Inf(-1))
	var runningSum float32
	for i := 0; i < n; i++ {
		s := tensor.Dot(q, keys[i]) * invSqrt
		newMax := runningMax
		if s > newMax {
			newMax = s
		}
		correction := float32(math.Exp(float64(runningMax - newMax)))
		p := float32(math.Exp(float64(s - newMax)))
		runningSum = runningSum*correction + p
		for j := 0; j < d; j++ {
			out[j] = out[j]*correction + p*vals[i][j]
		}
		runningMax = newMax
	}
	inv := 1 / runningSum
	for j := range out {
		out[j] *= inv
	}
	tr.ElemsRead = int64(2 * n * d) // K and V once each
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return out, tr
}

// FlashScores recovers the post-softmax attention scores after a Flash
// invocation by re-reading K and recomputing q·Kᵀ — the extra passes an
// eviction policy like H2O forces onto a FlashAttention engine.
func FlashScores(q []float32, keys [][]float32) ([]float32, Traffic) {
	d := len(q)
	n := len(keys)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	scores := make([]float32, n)
	for i, k := range keys {
		scores[i] = tensor.Dot(q, k) * invSqrt
	}
	tensor.Softmax(scores)
	return scores, Traffic{
		ElemsRead:    int64(n*d) + int64(n),
		ElemsWritten: int64(2 * n),
		Passes:       2, // re-read K, then softmax pass over scores
	}
}

// Paged computes Flash attention over a block-table layout: entries arrive
// as fixed-size pages, with the last page partially filled. Output is
// identical to Flash on the concatenated sequence; traffic adds one
// block-table indirection read per page.
func Paged(q []float32, pages [][][]float32, pageVals [][][]float32) ([]float32, Traffic) {
	var keys, vals [][]float32
	for p := range pages {
		keys = append(keys, pages[p]...)
		vals = append(vals, pageVals[p]...)
	}
	out, tr := Flash(q, keys, vals)
	tr.ElemsRead += int64(len(pages)) // block-table entries
	return out, tr
}
