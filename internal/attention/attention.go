// Package attention implements single-query attention kernels that produce
// identical outputs but differ in pass structure and memory traffic:
//
//   - Naive: the multi-pass "transformers library" kernel — materialises the
//     score vector, so K is read, scores are written and re-read, then V is
//     read (three logical passes over sequence-length-sized data).
//   - Flash: a FlashAttention-style one-pass kernel with online softmax —
//     K and V are each streamed once and no score vector ever hits memory.
//
// Each kernel reports its byte traffic. The analytical cost model in
// internal/perf uses the same pass structure; these kernels are the
// executable ground truth that validates it, and they also demonstrate the
// paper's compatibility argument: computing an eviction policy's attention
// scores under Flash requires an extra pass that re-reads K (FlashScores).
package attention

import (
	"math"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// Traffic accounts the memory behaviour of one kernel invocation in
// elements (multiply by dtype size for bytes).
type Traffic struct {
	ElemsRead    int64
	ElemsWritten int64
	Passes       int // logical passes over O(seqlen)-sized data
}

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.ElemsRead += other.ElemsRead
	t.ElemsWritten += other.ElemsWritten
	if other.Passes > 0 {
		t.Passes += other.Passes
	}
}

// Bytes returns total bytes moved assuming the given element size.
func (t Traffic) Bytes(elemSize int64) int64 {
	return (t.ElemsRead + t.ElemsWritten) * elemSize
}

// Naive computes softmax(q·Kᵀ/√d)·V by materialising the score vector, as
// the unoptimized transformers-library path does. Returns the attention
// output, the (post-softmax) scores, and the traffic.
func Naive(q []float32, keys, vals [][]float32) ([]float32, []float32, Traffic) {
	d := len(q)
	n := len(keys)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	scores := make([]float32, n)
	var tr Traffic
	// Pass 1: read K, write scores.
	for i, k := range keys {
		scores[i] = tensor.Dot(q, k) * invSqrt
	}
	tr.ElemsRead += int64(n * d)
	tr.ElemsWritten += int64(n)
	// Pass 2: softmax reads and rewrites the scores.
	tensor.Softmax(scores)
	tr.ElemsRead += int64(n)
	tr.ElemsWritten += int64(n)
	// Pass 3: read scores and V, accumulate output.
	out := make([]float32, d)
	for i, v := range vals {
		tensor.AXPY(out, scores[i], v)
	}
	tr.ElemsRead += int64(n) + int64(n*d)
	tr.ElemsWritten += int64(d)
	tr.Passes = 3
	return out, scores, tr
}

// onlineSoftmax is the streaming state of the FlashAttention recurrence: a
// running max, a running (rescaled) normaliser, and the unnormalised output
// accumulator. It lets every one-pass kernel (Flash, FlashInto, FlashStrided,
// Paged) share the exact same arithmetic, so their outputs are bit-identical
// regardless of how the KV entries are laid out or chunked.
type onlineSoftmax struct {
	out        []float32
	runningMax float32
	runningSum float32
}

// start initialises the recurrence over the caller-owned output buffer.
func startOnlineSoftmax(out []float32) onlineSoftmax {
	for j := range out {
		out[j] = 0
	}
	return onlineSoftmax{out: out, runningMax: float32(math.Inf(-1))}
}

// step folds one (score, value-vector) pair into the recurrence.
func (st *onlineSoftmax) step(s float32, v []float32) {
	newMax := st.runningMax
	if s > newMax {
		newMax = s
	}
	correction := float32(math.Exp(float64(st.runningMax - newMax)))
	p := float32(math.Exp(float64(s - newMax)))
	st.runningSum = st.runningSum*correction + p
	out := st.out
	for j := range out {
		out[j] = out[j]*correction + p*v[j]
	}
	st.runningMax = newMax
}

// finish applies the deferred normalisation.
func (st *onlineSoftmax) finish() {
	inv := 1 / st.runningSum
	for j := range st.out {
		st.out[j] *= inv
	}
}

// Flash computes the same attention output with a single fused pass using
// the online-softmax recurrence; K and V are each read exactly once and the
// score vector never exists in memory. Scores are NOT available — that is
// the point (the paper's incompatibility argument for score-based eviction).
func Flash(q []float32, keys, vals [][]float32) ([]float32, Traffic) {
	out := make([]float32, len(q))
	tr := FlashInto(out, q, keys, vals)
	return out, tr
}

// FlashInto is Flash with a caller-owned output buffer (length len(q)); it
// allocates nothing. The decode hot path calls it once per query head with a
// reused scratch slice.
func FlashInto(out, q []float32, keys, vals [][]float32) Traffic {
	d := len(q)
	n := len(keys)
	var tr Traffic
	if n == 0 {
		for j := range out {
			out[j] = 0
		}
		return tr
	}
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	for i := 0; i < n; i++ {
		st.step(tensor.Dot(q, keys[i])*invSqrt, vals[i])
	}
	st.finish()
	tr.ElemsRead = int64(2 * n * d) // K and V once each
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return tr
}

// FlashStrided runs the one-pass kernel over flat strided KV buffers, as
// returned by kvcache.FlatReader.FlatSeq: entry i's key occupies
// keys[i*stride : i*stride+len(q)] and likewise for vals. n is the entry
// count. out is caller-owned (length len(q)); nothing is allocated.
func FlashStrided(out, q, keys, vals []float32, stride, n int) Traffic {
	d := len(q)
	var tr Traffic
	if n == 0 {
		for j := range out {
			out[j] = 0
		}
		return tr
	}
	if (n-1)*stride+d > len(keys) || (n-1)*stride+d > len(vals) {
		panic("attention: strided KV buffer too short")
	}
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	for i := 0; i < n; i++ {
		off := i * stride
		st.step(tensor.Dot(q, keys[off:off+d])*invSqrt, vals[off:off+d])
	}
	st.finish()
	tr.ElemsRead = int64(2 * n * d)
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return tr
}

// FlashScores recovers the post-softmax attention scores after a Flash
// invocation by re-reading K and recomputing q·Kᵀ — the extra passes an
// eviction policy like H2O forces onto a FlashAttention engine.
func FlashScores(q []float32, keys [][]float32) ([]float32, Traffic) {
	d := len(q)
	n := len(keys)
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	scores := make([]float32, n)
	for i, k := range keys {
		scores[i] = tensor.Dot(q, k) * invSqrt
	}
	tensor.Softmax(scores)
	return scores, Traffic{
		ElemsRead:    int64(n*d) + int64(n),
		ElemsWritten: int64(2 * n),
		Passes:       2, // re-read K, then softmax pass over scores
	}
}

// Paged computes Flash attention over a block-table layout: entries arrive
// as fixed-size pages, with the last page partially filled. Pages are
// streamed through the online-softmax recurrence one entry at a time — no
// concatenated copy of the sequence is ever materialised, which is the whole
// point of paging. Output is bit-identical to Flash on the concatenated
// sequence; traffic adds one block-table indirection read per page.
func Paged(q []float32, pages [][][]float32, pageVals [][][]float32) ([]float32, Traffic) {
	d := len(q)
	out := make([]float32, d)
	var tr Traffic
	n := 0
	for p := range pages {
		n += len(pages[p])
	}
	if n == 0 {
		tr.ElemsRead = int64(len(pages))
		return out, tr
	}
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	for p := range pages {
		pvals := pageVals[p]
		for i, k := range pages[p] {
			st.step(tensor.Dot(q, k)*invSqrt, pvals[i])
		}
	}
	st.finish()
	tr.ElemsRead = int64(2*n*d) + int64(len(pages)) // K and V once each + block-table entries
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return out, tr
}

// PagedStrided streams flat page buffers (as returned by
// kvcache.PageReader.KVPages) through the one-pass kernel for a single head:
// within each page, entry i's key occupies keyPages[p][off+i*stride :
// off+i*stride+len(q)] where off selects the head. out is caller-owned;
// nothing is allocated.
func PagedStrided(out, q []float32, keyPages, valPages [][]float32, off, stride int) Traffic {
	d := len(q)
	var tr Traffic
	n := 0
	for p := range keyPages {
		n += len(keyPages[p]) / stride
	}
	if n == 0 {
		tr.ElemsRead = int64(len(keyPages))
		for j := range out {
			out[j] = 0
		}
		return tr
	}
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	for p := range keyPages {
		kp, vp := keyPages[p], valPages[p]
		for i := 0; i < len(kp)/stride; i++ {
			base := off + i*stride
			st.step(tensor.Dot(q, kp[base:base+d])*invSqrt, vp[base:base+d])
		}
	}
	st.finish()
	tr.ElemsRead = int64(2*n*d) + int64(len(keyPages))
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return tr
}

// PagedStridedQuant is PagedStrided's fused dequantize-on-stream sibling: it
// streams quantized KV pages (as returned by kvcache.QuantReader.QuantPages)
// through the one-pass kernel for a single head, dequantizing each element
// inline — x = float32(code)·Δ + lo — as it enters the recurrence. No fp32
// copy of the context is ever materialised: the only scratch is the
// caller-owned single-entry value buffer vScratch (length len(q)). Output is
// bit-identical to Paged/Flash over the cache's dequantized Seq views, since
// the dequantization arithmetic and per-entry order match exactly. Traffic
// counts code elements at their stored width alongside the float16 parameter
// pairs, so the bandwidth saving of narrow codes is visible in the ledger.
func PagedStridedQuant(out, q, vScratch []float32, pages []kvcache.QuantPage, bits, off, stride, kvHeads, head int) Traffic {
	d := len(q)
	var tr Traffic
	n := 0
	for p := range pages {
		n += pages[p].Tokens(kvHeads)
	}
	if n == 0 {
		tr.ElemsRead = int64(len(pages))
		for j := range out {
			out[j] = 0
		}
		return tr
	}
	invSqrt := float32(1 / math.Sqrt(float64(d)))
	st := startOnlineSoftmax(out)
	for p := range pages {
		pg := &pages[p]
		t := pg.Tokens(kvHeads)
		for i := 0; i < t; i++ {
			s := tensor.DotQuantEntry(q, pg.KCodes, pg.KParams, bits, off, stride, kvHeads, head, i) * invSqrt
			tensor.DequantSliceInto(vScratch, pg.VCodes, pg.VParams, bits, off, stride, kvHeads, head, i)
			st.step(s, vScratch)
		}
	}
	st.finish()
	// K and V codes once each (at code width), one (lo, delta) pair per
	// entry per tensor, plus the block-table indirections.
	tr.ElemsRead = int64(2*n*d) + int64(4*n) + int64(len(pages))
	tr.ElemsWritten = int64(d)
	tr.Passes = 1
	return tr
}
