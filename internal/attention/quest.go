package attention

import (
	"math"
	"sort"
)

// Quest (Tang et al., 2024) is a query-aware sparsity method: the cache is
// kept in fixed-size pages, each summarised by per-channel element-wise
// minima and maxima of its keys. At decode time, each page's criticality is
// upper-bounded as Σ_c max(q_c·min_c, q_c·max_c); only the top-K pages are
// loaded and attended. Unlike eviction policies, nothing is discarded —
// memory stays full-size but attention *traffic* shrinks, and recall
// degrades only when the bound misranks a relevant page.

// PageSummary holds one page's per-channel key bounds.
type PageSummary struct {
	Min, Max []float32
}

// SummarizePage computes the bounds for a page of key vectors. It panics on
// an empty page.
func SummarizePage(keys [][]float32) PageSummary {
	if len(keys) == 0 {
		panic("attention: empty page")
	}
	d := len(keys[0])
	s := PageSummary{Min: make([]float32, d), Max: make([]float32, d)}
	copy(s.Min, keys[0])
	copy(s.Max, keys[0])
	for _, k := range keys[1:] {
		for c := 0; c < d; c++ {
			if k[c] < s.Min[c] {
				s.Min[c] = k[c]
			}
			if k[c] > s.Max[c] {
				s.Max[c] = k[c]
			}
		}
	}
	return s
}

// Criticality returns Quest's upper bound on the page's maximum query-key
// inner product.
func (s PageSummary) Criticality(q []float32) float64 {
	var sum float64
	for c, qc := range q {
		lo := float64(qc) * float64(s.Min[c])
		hi := float64(qc) * float64(s.Max[c])
		sum += math.Max(lo, hi)
	}
	return sum
}

// QuestResult reports a Quest attention invocation.
type QuestResult struct {
	Out Traffic
	// PagesSelected / PagesTotal measure the achieved sparsity.
	PagesSelected, PagesTotal int
}

// Quest computes attention over only the topK most critical pages. Returns
// the output, the traffic (summary reads + selected pages only), and the
// selection stats. The final (partial) page is always selected, matching
// Quest's protection of the most recent tokens.
func Quest(q []float32, pageKeys, pageVals [][][]float32, topK int) ([]float32, Traffic, QuestResult) {
	n := len(pageKeys)
	if topK >= n || n == 0 {
		out, tr := Paged(q, pageKeys, pageVals)
		return out, tr, QuestResult{PagesSelected: n, PagesTotal: n}
	}
	d := len(q)
	type scored struct {
		idx  int
		crit float64
	}
	scores := make([]scored, n)
	for i, pk := range pageKeys {
		scores[i] = scored{i, SummarizePage(pk).Criticality(q)}
	}
	// Always keep the last page (recent tokens).
	last := n - 1
	sort.Slice(scores, func(i, j int) bool { return scores[i].crit > scores[j].crit })
	keep := map[int]bool{last: true}
	for _, s := range scores {
		if len(keep) >= topK {
			break
		}
		keep[s.idx] = true
	}
	idxs := make([]int, 0, len(keep))
	for i := range keep {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var keys, vals [][]float32
	for _, i := range idxs {
		keys = append(keys, pageKeys[i]...)
		vals = append(vals, pageVals[i]...)
	}
	out, tr := Flash(q, keys, vals)
	// Traffic: the summaries of every page are read (2·d each), plus the
	// selected pages' K/V (already counted by Flash).
	tr.ElemsRead += int64(n * 2 * d)
	return out, tr, QuestResult{PagesSelected: len(idxs), PagesTotal: n}
}

// QuestRecall measures, for diagnostics, the fraction of true attention
// mass captured by the selected pages: it runs full attention to obtain the
// exact scores, then sums the mass of the selected pages.
func QuestRecall(q []float32, pageKeys, pageVals [][][]float32, topK int) float64 {
	n := len(pageKeys)
	if n == 0 {
		return 1
	}
	var keys, vals [][]float32
	pageOf := make([]int, 0)
	for p, pk := range pageKeys {
		keys = append(keys, pk...)
		vals = append(vals, pageVals[p]...)
		for range pk {
			pageOf = append(pageOf, p)
		}
	}
	_, scores, _ := Naive(q, keys, vals)
	// Re-derive the Quest selection.
	if topK >= n {
		return 1
	}
	type scored struct {
		idx  int
		crit float64
	}
	sc := make([]scored, n)
	for i, pk := range pageKeys {
		sc[i] = scored{i, SummarizePage(pk).Criticality(q)}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].crit > sc[j].crit })
	keep := map[int]bool{n - 1: true}
	for _, s := range sc {
		if len(keep) >= topK {
			break
		}
		keep[s.idx] = true
	}
	var mass float64
	for i, s := range scores {
		if keep[pageOf[i]] {
			mass += float64(s)
		}
	}
	return mass
}
