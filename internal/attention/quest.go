package attention

// Quest (Tang et al., 2024) is a query-aware sparsity method: the cache is
// kept in fixed-size pages, each summarised by per-channel element-wise
// minima and maxima of its keys. At decode time, each page's criticality is
// upper-bounded as Σ_c max(q_c·min_c, q_c·max_c); only the top-K pages are
// loaded and attended. Unlike eviction policies, nothing is discarded —
// memory stays full-size but attention *traffic* shrinks, and recall
// degrades only when the bound misranks a relevant page.

// PageSummary holds one page's per-channel key bounds.
type PageSummary struct {
	Min, Max []float32
}

// SummarizePage computes the bounds for a page of key vectors. It panics on
// an empty page.
func SummarizePage(keys [][]float32) PageSummary {
	if len(keys) == 0 {
		panic("attention: empty page")
	}
	d := len(keys[0])
	s := PageSummary{Min: make([]float32, d), Max: make([]float32, d)}
	copy(s.Min, keys[0])
	copy(s.Max, keys[0])
	for _, k := range keys[1:] {
		for c := 0; c < d; c++ {
			if k[c] < s.Min[c] {
				s.Min[c] = k[c]
			}
			if k[c] > s.Max[c] {
				s.Max[c] = k[c]
			}
		}
	}
	return s
}

// Criticality returns Quest's upper bound on the page's maximum query-key
// inner product. Identical arithmetic to the live plane's
// CriticalityStrided, just over the offline split min/max layout.
func (s PageSummary) Criticality(q []float32) float64 {
	var sum float64
	for c, qc := range q {
		lo := float64(qc) * float64(s.Min[c])
		hi := float64(qc) * float64(s.Max[c])
		if hi > lo {
			lo = hi
		}
		sum += lo
	}
	return sum
}

// SummarizePages computes every page's bounds — the precomputed-summaries
// input to QuestWithSummaries, built once and reused across queries instead
// of Quest()'s historical per-call recompute (O(pages·page·d) per query;
// see BenchmarkQuestSummarize*).
func SummarizePages(pageKeys [][][]float32) []PageSummary {
	summs := make([]PageSummary, len(pageKeys))
	for i, pk := range pageKeys {
		summs[i] = SummarizePage(pk)
	}
	return summs
}

// questSelect is the one shared offline selection: criticality scores via
// the Criticality bound, then the exact live-plane SelectTopPages policy
// (topK distinct pages, tail protected, ascending order, low-index ties) —
// Quest() and QuestRecall() can no longer drift apart, and offline recall
// numbers describe precisely what PagedStridedSparse will select.
func questSelect(q []float32, summs []PageSummary, topK int) []int32 {
	scores := make([]float64, len(summs))
	for i := range summs {
		scores[i] = summs[i].Criticality(q)
	}
	sel := make([]int32, len(summs))
	return sel[:SelectTopPages(sel, scores, topK)]
}

// QuestResult reports a Quest attention invocation.
type QuestResult struct {
	Out Traffic
	// PagesSelected / PagesTotal measure the achieved sparsity.
	PagesSelected, PagesTotal int
}

// Quest computes attention over only the topK most critical pages. Returns
// the output, the traffic (summary reads + selected pages only), and the
// selection stats. The final (partial) page is always selected, matching
// Quest's protection of the most recent tokens. Summaries are recomputed
// from the pages on every call; a caller scoring many queries against one
// cache should build them once with SummarizePages and use
// QuestWithSummaries.
func Quest(q []float32, pageKeys, pageVals [][][]float32, topK int) ([]float32, Traffic, QuestResult) {
	if n := len(pageKeys); topK >= n || n == 0 {
		out, tr := Paged(q, pageKeys, pageVals)
		return out, tr, QuestResult{PagesSelected: n, PagesTotal: n}
	}
	return QuestWithSummaries(q, pageKeys, pageVals, SummarizePages(pageKeys), topK)
}

// QuestWithSummaries is Quest over precomputed page summaries: selection
// cost drops from O(pages·page·d) to O(pages·d) per query, which is the
// live plane's cost shape (kvcache maintains the summaries incrementally).
func QuestWithSummaries(q []float32, pageKeys, pageVals [][][]float32, summs []PageSummary, topK int) ([]float32, Traffic, QuestResult) {
	n := len(pageKeys)
	if topK >= n || n == 0 {
		out, tr := Paged(q, pageKeys, pageVals)
		return out, tr, QuestResult{PagesSelected: n, PagesTotal: n}
	}
	d := len(q)
	sel := questSelect(q, summs, topK)
	var keys, vals [][]float32
	for _, i := range sel {
		keys = append(keys, pageKeys[i]...)
		vals = append(vals, pageVals[i]...)
	}
	out, tr := Flash(q, keys, vals)
	// Traffic: the summaries of every page are read (2·d each), plus the
	// selected pages' K/V (already counted by Flash).
	tr.ElemsRead += int64(n * 2 * d)
	return out, tr, QuestResult{PagesSelected: len(sel), PagesTotal: n}
}

// QuestRecall measures, for diagnostics, the fraction of true attention
// mass captured by the selected pages: it runs full attention to obtain the
// exact scores, then sums the mass of the selected pages. The selection is
// the same questSelect the attention path uses — one policy, no drift.
func QuestRecall(q []float32, pageKeys, pageVals [][][]float32, topK int) float64 {
	n := len(pageKeys)
	if n == 0 || topK >= n {
		return 1
	}
	var keys, vals [][]float32
	pageOf := make([]int, 0)
	for p, pk := range pageKeys {
		keys = append(keys, pk...)
		vals = append(vals, pageVals[p]...)
		for range pk {
			pageOf = append(pageOf, p)
		}
	}
	_, scores, _ := Naive(q, keys, vals)
	keep := make([]bool, n)
	for _, i := range questSelect(q, SummarizePages(pageKeys), topK) {
		keep[i] = true
	}
	var mass float64
	for i, s := range scores {
		if keep[pageOf[i]] {
			mass += float64(s)
		}
	}
	return mass
}
