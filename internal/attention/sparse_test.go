package attention

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rethinkkv/internal/kvcache"
)

// sparseCache builds a summaries-enabled paged cache (fp32 when bits==0)
// holding n pseudo-random tokens.
func sparseCache(n, pageTokens, bits int, seed int64) *kvcache.PagedKV {
	shape := kvcache.Shape{Layers: 1, KVHeads: 2, HeadDim: 16}
	c := kvcache.NewPagedKVQuant(shape, pageTokens, 0, bits)
	c.EnableKeySummaries()
	stride := shape.KVHeads * shape.HeadDim
	r := rand.New(rand.NewSource(seed))
	k := make([]float32, stride)
	v := make([]float32, stride)
	for t := 0; t < n; t++ {
		for i := range k {
			k[i] = float32(r.NormFloat64())
			v[i] = float32(r.NormFloat64())
		}
		c.AppendFlat(0, k, v)
	}
	return c
}

func TestSelectTopPagesPolicy(t *testing.T) {
	sel := make([]int32, 8)
	// Tail page always selected even when it scores worst.
	n := SelectTopPages(sel, []float64{5, 4, 3, 2, -10}, 3)
	if n != 3 || sel[0] != 0 || sel[1] != 1 || sel[2] != 4 {
		t.Fatalf("got %v (n=%d), want [0 1 4]", sel[:n], n)
	}
	// Ties break toward the lower page index; output ascending.
	n = SelectTopPages(sel, []float64{1, 7, 7, 7, 0}, 3)
	if n != 3 || sel[0] != 1 || sel[1] != 2 || sel[2] != 4 {
		t.Fatalf("tie-break: got %v (n=%d), want [1 2 4]", sel[:n], n)
	}
	// topK >= pages selects everything in order.
	n = SelectTopPages(sel, []float64{3, 1, 2}, 9)
	if n != 3 || sel[0] != 0 || sel[1] != 1 || sel[2] != 2 {
		t.Fatalf("full-k: got %v (n=%d), want [0 1 2]", sel[:n], n)
	}
	if SelectTopPages(sel, nil, 4) != 0 {
		t.Fatal("empty scores selected pages")
	}
}

// CriticalityStrided over kvcache's flat summary layout must equal the
// offline PageSummary.Criticality over the same page.
func TestCriticalityStridedMatchesOffline(t *testing.T) {
	c := sparseCache(37, 16, 0, 5)
	shape := c.Shape()
	d := shape.HeadDim
	summs := c.KeySummaries(0)
	_, _, stride := c.KVPages(0)
	r := rand.New(rand.NewSource(6))
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	for head := 0; head < shape.KVHeads; head++ {
		keys, _ := c.Seq(0, head)
		for p := range summs {
			lo, hi := p*16, (p+1)*16
			if hi > len(keys) {
				hi = len(keys)
			}
			want := SummarizePage(keys[lo:hi]).Criticality(q)
			got := CriticalityStrided(q, summs[p], head*d, stride)
			if got != want {
				t.Fatalf("head %d page %d: %v != offline %v", head, p, got, want)
			}
		}
	}
}

// At topK >= pages the sparse kernels must be bit-identical to their dense
// siblings — the delegation that makes "sparsity off" exactly "full
// attention".
func TestSparseFullKBitIdenticalToDense(t *testing.T) {
	for _, bits := range []int{0, 8, 4} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			c := sparseCache(53, 16, bits, int64(40+bits))
			shape := c.Shape()
			d := shape.HeadDim
			summs := c.KeySummaries(0)
			r := rand.New(rand.NewSource(8))
			q := make([]float32, d)
			for i := range q {
				q[i] = float32(r.NormFloat64())
			}
			want := make([]float32, d)
			got := make([]float32, d)
			vScratch := make([]float32, d)
			var sc SparseScratch
			for head := 0; head < shape.KVHeads; head++ {
				off := head * d
				for _, topK := range []int{4, 99} { // == pages, > pages
					if bits == 0 {
						kp, vp, stride := c.KVPages(0)
						PagedStrided(want, q, kp, vp, off, stride)
						_, nSel := PagedStridedSparse(got, q, kp, vp, summs, off, stride, topK, &sc)
						if nSel != len(kp) {
							t.Fatalf("topK=%d selected %d of %d", topK, nSel, len(kp))
						}
					} else {
						pages, stride := c.QuantPages(0)
						PagedStridedQuant(want, q, vScratch, pages, bits, off, stride, shape.KVHeads, head)
						_, nSel := PagedStridedQuantSparse(got, q, vScratch, pages, summs, bits, off, stride, shape.KVHeads, head, topK, &sc)
						if nSel != len(pages) {
							t.Fatalf("topK=%d selected %d of %d", topK, nSel, len(pages))
						}
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("head %d topK=%d: out[%d]=%g, dense %g", head, topK, j, got[j], want[j])
						}
					}
				}
			}
		})
	}
}

// The live sparse kernel and the offline Quest must agree exactly on fp32
// pages: same summaries (incremental fold vs one-shot SummarizePage), same
// selection, same online-softmax arithmetic — one policy across both planes.
func TestPagedStridedSparseMatchesOfflineQuest(t *testing.T) {
	c := sparseCache(61, 16, 0, 13)
	shape := c.Shape()
	d := shape.HeadDim
	summs := c.KeySummaries(0)
	kp, vp, stride := c.KVPages(0)
	r := rand.New(rand.NewSource(14))
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	var sc SparseScratch
	out := make([]float32, d)
	for head := 0; head < shape.KVHeads; head++ {
		keys, vals := c.Seq(0, head)
		var pk, pv [][][]float32
		for i := 0; i < len(keys); i += 16 {
			end := i + 16
			if end > len(keys) {
				end = len(keys)
			}
			pk = append(pk, keys[i:end])
			pv = append(pv, vals[i:end])
		}
		for _, topK := range []int{1, 2, 3} {
			want, _, res := Quest(q, pk, pv, topK)
			_, nSel := PagedStridedSparse(out, q, kp, vp, summs, head*d, stride, topK, &sc)
			if nSel != res.PagesSelected {
				t.Fatalf("head %d topK=%d: live selected %d, offline %d", head, topK, nSel, res.PagesSelected)
			}
			for j := range out {
				if out[j] != want[j] {
					t.Fatalf("head %d topK=%d: out[%d]=%g, Quest %g", head, topK, j, out[j], want[j])
				}
			}
		}
	}
}

// QuestWithSummaries over precomputed summaries must reproduce Quest
// exactly — the precompute is a cost fix, not a behavior change.
func TestQuestWithSummariesMatchesQuest(t *testing.T) {
	q, keys, vals := randSeq(31, 73, 32)
	var pk, pv [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		pk = append(pk, keys[i:end])
		pv = append(pv, vals[i:end])
	}
	summs := SummarizePages(pk)
	for topK := 1; topK <= len(pk)+1; topK++ {
		a, atr, ares := Quest(q, pk, pv, topK)
		b, btr, bres := QuestWithSummaries(q, pk, pv, summs, topK)
		if ares != bres || atr != btr {
			t.Fatalf("topK=%d: result/traffic diverge: %+v/%+v vs %+v/%+v", topK, ares, atr, bres, btr)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("topK=%d: out[%d] %g != %g", topK, j, a[j], b[j])
			}
		}
	}
}

// With attention mass concentrated on one early page, a tiny topK must
// still capture nearly all of it (selection finds the hot page, tail
// protection keeps the recent one).
func TestSparseSelectionFindsConcentratedMass(t *testing.T) {
	const n, pageTokens = 64, 16
	shape := kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 8}
	c := kvcache.NewPagedKV(shape, pageTokens)
	c.EnableKeySummaries()
	d := shape.HeadDim
	q := make([]float32, d)
	q[0] = 8
	k := make([]float32, d)
	v := make([]float32, d)
	r := rand.New(rand.NewSource(3))
	for t0 := 0; t0 < n; t0++ {
		for i := range k {
			k[i] = 0.01 * float32(r.NormFloat64())
			v[i] = float32(r.NormFloat64())
		}
		if t0 == 20 { // page 1 holds the aligned key
			copy(k, q)
		}
		c.AppendFlat(0, k, v)
	}
	kp, vp, stride := c.KVPages(0)
	dense := make([]float32, d)
	PagedStrided(dense, q, kp, vp, 0, stride)
	out := make([]float32, d)
	var sc SparseScratch
	_, nSel := PagedStridedSparse(out, q, kp, vp, c.KeySummaries(0), 0, stride, 2, &sc)
	if nSel != 2 {
		t.Fatalf("selected %d pages, want 2", nSel)
	}
	for j := range out {
		if diff := math.Abs(float64(out[j] - dense[j])); diff > 1e-3 {
			t.Fatalf("out[%d] drifted %g from dense %g", j, diff, dense[j])
		}
	}
}

// Both sparse kernels run the hot decode path at zero allocations once the
// scratch is warm (pinned by make ci's bench-smoke).
func TestSparseAttentionZeroAlloc(t *testing.T) {
	var sc SparseScratch
	fp := sparseCache(128, 16, 0, 51)
	shape := fp.Shape()
	d := shape.HeadDim
	q := make([]float32, d)
	out := make([]float32, d)
	vScratch := make([]float32, d)
	kp, vp, stride := fp.KVPages(0)
	fsumms := fp.KeySummaries(0)
	sc.Ensure(len(kp))
	if n := testing.AllocsPerRun(100, func() {
		PagedStridedSparse(out, q, kp, vp, fsumms, 0, stride, 3, &sc)
	}); n != 0 {
		t.Fatalf("PagedStridedSparse allocated %.1f per run, want 0", n)
	}
	qc := sparseCache(128, 16, 4, 52)
	pages, qStride := qc.QuantPages(0)
	qsumms := qc.KeySummaries(0)
	if n := testing.AllocsPerRun(100, func() {
		PagedStridedQuantSparse(out, q, vScratch, pages, qsumms, 4, 0, qStride, shape.KVHeads, 0, 3, &sc)
	}); n != 0 {
		t.Fatalf("PagedStridedQuantSparse allocated %.1f per run, want 0", n)
	}
}

// BenchmarkPagedStridedSparse prices sparse decode against the dense
// kernels at a long-context shape (8k tokens, 16-token pages = 512 pages):
// the dense kernels stream every token, the sparse ones score 512 summaries
// and stream topK pages. The gap is the O(ctx) → O(k·page) win.
func BenchmarkPagedStridedSparse(b *testing.B) {
	const n, pageTokens = 8192, 16
	var sc SparseScratch
	fp := sparseCache(n, pageTokens, 0, 61)
	shape := fp.Shape()
	d := shape.HeadDim
	r := rand.New(rand.NewSource(62))
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	out := make([]float32, d)
	vScratch := make([]float32, d)
	kp, vp, stride := fp.KVPages(0)
	fsumms := fp.KeySummaries(0)
	b.Run("full/n=8192", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PagedStrided(out, q, kp, vp, 0, stride)
		}
	})
	for _, topK := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("sparse/n=8192/k=%d", topK), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PagedStridedSparse(out, q, kp, vp, fsumms, 0, stride, topK, &sc)
			}
		})
	}
	qc := sparseCache(n, pageTokens, 8, 63)
	pages, qStride := qc.QuantPages(0)
	qsumms := qc.KeySummaries(0)
	b.Run("quant-full/int8/n=8192", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PagedStridedQuant(out, q, vScratch, pages, 8, 0, qStride, shape.KVHeads, 0)
		}
	})
	b.Run("quant-sparse/int8/n=8192/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PagedStridedQuantSparse(out, q, vScratch, pages, qsumms, 8, 0, qStride, shape.KVHeads, 0, 32, &sc)
		}
	})
}

// BenchmarkQuestSummaries prices satellite fix #2: Quest()'s historical
// per-call SummarizePage recompute vs QuestWithSummaries over summaries
// built once — the difference is the O(pages·page·d) per query the offline
// experiments were paying for free.
func BenchmarkQuestSummaries(b *testing.B) {
	q, keys, vals := randSeq(71, 4096, 64)
	var pk, pv [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		pk = append(pk, keys[i:end])
		pv = append(pv, vals[i:end])
	}
	const topK = 16
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Quest(q, pk, pv, topK)
		}
	})
	summs := SummarizePages(pk)
	b.Run("precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			QuestWithSummaries(q, pk, pv, summs, topK)
		}
	})
}
