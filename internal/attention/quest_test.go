package attention

import (
	"math"
	"testing"
)

func pageify(keys, vals [][]float32, pageSize int) (pk, pv [][][]float32) {
	for i := 0; i < len(keys); i += pageSize {
		end := i + pageSize
		if end > len(keys) {
			end = len(keys)
		}
		pk = append(pk, keys[i:end])
		pv = append(pv, vals[i:end])
	}
	return pk, pv
}

func TestSummarizePage(t *testing.T) {
	s := SummarizePage([][]float32{{1, -2}, {3, 0}, {-1, 5}})
	if s.Min[0] != -1 || s.Max[0] != 3 || s.Min[1] != -2 || s.Max[1] != 5 {
		t.Fatalf("bounds = %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SummarizePage(nil)
}

func TestCriticalityUpperBounds(t *testing.T) {
	// The criticality must upper-bound every actual q·k in the page.
	q, keys, _ := randSeq(4, 32, 8)
	s := SummarizePage(keys)
	bound := s.Criticality(q)
	for _, k := range keys {
		var dot float64
		for c := range q {
			dot += float64(q[c]) * float64(k[c])
		}
		if dot > bound+1e-5 {
			t.Fatalf("q·k %v exceeds bound %v", dot, bound)
		}
	}
}

func TestQuestSelectsAllWhenKLarge(t *testing.T) {
	q, keys, vals := randSeq(5, 48, 8)
	pk, pv := pageify(keys, vals, 16)
	full, _ := Flash(q, keys, vals)
	out, _, res := Quest(q, pk, pv, 10)
	if res.PagesSelected != res.PagesTotal {
		t.Fatal("large K should select everything")
	}
	for i := range full {
		if math.Abs(float64(full[i]-out[i])) > 1e-5 {
			t.Fatal("full selection should match flash")
		}
	}
}

func TestQuestReducesTraffic(t *testing.T) {
	q, keys, vals := randSeq(6, 256, 16)
	pk, pv := pageify(keys, vals, 16)
	_, fullTr := Flash(q, keys, vals)
	_, qTr, res := Quest(q, pk, pv, 4)
	if res.PagesSelected != 4 {
		t.Fatalf("selected %d pages", res.PagesSelected)
	}
	if qTr.ElemsRead >= fullTr.ElemsRead {
		t.Fatalf("quest reads %d >= full %d", qTr.ElemsRead, fullTr.ElemsRead)
	}
}

func TestQuestKeepsLastPage(t *testing.T) {
	q, keys, vals := randSeq(7, 64, 8)
	pk, pv := pageify(keys, vals, 16)
	// With topK=1 only the recent page survives.
	_, _, res := Quest(q, pk, pv, 1)
	if res.PagesSelected != 1 {
		t.Fatalf("selected %d", res.PagesSelected)
	}
	// Output equals attention over the last page alone.
	out, _, _ := Quest(q, pk, pv, 1)
	want, _ := Flash(q, pk[len(pk)-1], pv[len(pv)-1])
	for i := range want {
		if math.Abs(float64(want[i]-out[i])) > 1e-5 {
			t.Fatal("topK=1 should attend the recent page only")
		}
	}
}

func TestQuestRecallHighOnConcentratedMass(t *testing.T) {
	// Build a query aligned with one page's keys: Quest must find it.
	d := 8
	var keys, vals [][]float32
	for i := 0; i < 64; i++ {
		k := make([]float32, d)
		v := make([]float32, d)
		if i >= 16 && i < 32 { // page 1 carries the signal
			k[0] = 5
		} else {
			k[0] = -5
		}
		v[0] = float32(i)
		keys = append(keys, k)
		vals = append(vals, v)
	}
	q := make([]float32, d)
	q[0] = 3
	pk, pv := pageify(keys, vals, 16)
	recall := QuestRecall(q, pk, pv, 2)
	if recall < 0.95 {
		t.Fatalf("recall %v on concentrated mass", recall)
	}
	// And with an adversarial (anti-aligned) query the recent page wins by
	// protection, keeping recall sane.
	q[0] = -3
	if r := QuestRecall(q, pk, pv, 2); r <= 0 || r > 1.0001 {
		t.Fatalf("recall out of range: %v", r)
	}
}

func TestQuestEmptyPages(t *testing.T) {
	out, _, res := Quest([]float32{1, 2}, nil, nil, 3)
	if len(out) != 2 || res.PagesTotal != 0 {
		t.Fatal("empty page list should degrade gracefully")
	}
}
