package attention

import (
	"fmt"
	"math/rand"
	"testing"

	"rethinkkv/internal/kvcache"
)

// quantCache builds a quantized paged cache holding n pseudo-random tokens.
func quantCache(n, pageTokens, bits int, seed int64) *kvcache.PagedKV {
	shape := kvcache.Shape{Layers: 1, KVHeads: 2, HeadDim: 16}
	c := kvcache.NewPagedKVQuant(shape, pageTokens, 0, bits)
	stride := shape.KVHeads * shape.HeadDim
	r := rand.New(rand.NewSource(seed))
	k := make([]float32, stride)
	v := make([]float32, stride)
	for t := 0; t < n; t++ {
		for i := range k {
			k[i] = float32(r.NormFloat64())
			v[i] = float32(r.NormFloat64())
		}
		c.AppendFlat(0, k, v)
	}
	return c
}

// The fused dequantize-on-stream kernel must be bit-identical to the
// slice-of-slices Paged kernel over the cache's dequantized Seq views — the
// same equivalence PagedStrided holds against Paged for fp32 pages.
func TestPagedStridedQuantMatchesPagedOnDequantViews(t *testing.T) {
	for _, bits := range []int{8, 4} {
		for _, n := range []int{1, 16, 37} { // partial tail pages included
			c := quantCache(n, 16, bits, int64(bits*100+n))
			pages, stride := c.QuantPages(0)
			shape := c.Shape()
			r := rand.New(rand.NewSource(int64(n)))
			q := make([]float32, shape.HeadDim)
			for i := range q {
				q[i] = float32(r.NormFloat64())
			}
			for head := 0; head < shape.KVHeads; head++ {
				keys, vals := c.Seq(0, head)
				var kp, vp [][][]float32
				for i := 0; i < len(keys); i += 16 {
					end := i + 16
					if end > len(keys) {
						end = len(keys)
					}
					kp = append(kp, keys[i:end])
					vp = append(vp, vals[i:end])
				}
				want, _ := Paged(q, kp, vp)

				out := make([]float32, shape.HeadDim)
				scratch := make([]float32, shape.HeadDim)
				tr := PagedStridedQuant(out, q, scratch, pages, bits, head*shape.HeadDim, stride, shape.KVHeads, head)
				for j := range out {
					if out[j] != want[j] {
						t.Fatalf("bits=%d n=%d head=%d: out[%d]=%g, Paged over dequant views %g",
							bits, n, head, j, out[j], want[j])
					}
				}
				if tr.Passes != 1 || tr.ElemsWritten != int64(shape.HeadDim) {
					t.Fatalf("bits=%d: unexpected traffic %+v", bits, tr)
				}
			}
		}
	}
}

func TestPagedStridedQuantEmpty(t *testing.T) {
	c := quantCache(0, 16, 8, 1)
	pages, stride := c.QuantPages(0)
	out := []float32{3, 1, 4}
	scratch := make([]float32, 3)
	PagedStridedQuant(out, []float32{1, 1, 1}, scratch, pages, 8, 0, stride, 2, 0)
	for j, v := range out {
		if v != 0 {
			t.Fatalf("empty quant cache: out[%d]=%g, want 0", j, v)
		}
	}
}

// The dequantize-on-stream path allocates nothing per step.
func TestPagedStridedQuantZeroAlloc(t *testing.T) {
	c := quantCache(64, 16, 4, 2)
	pages, stride := c.QuantPages(0)
	shape := c.Shape()
	q := make([]float32, shape.HeadDim)
	out := make([]float32, shape.HeadDim)
	scratch := make([]float32, shape.HeadDim)
	if n := testing.AllocsPerRun(100, func() {
		PagedStridedQuant(out, q, scratch, pages, 4, 0, stride, shape.KVHeads, 0)
	}); n != 0 {
		t.Fatalf("PagedStridedQuant allocated %.1f per run, want 0", n)
	}
}

// BenchmarkPagedStridedQuant prices the fused dequantize-on-stream kernel
// against the fp32 PagedStrided path at the same sequence length — the
// per-element dequant ALU cost quantized pages pay for their 4–8× byte
// saving.
func BenchmarkPagedStridedQuant(b *testing.B) {
	const n, pageTokens = 1024, 16
	shape := kvcache.Shape{Layers: 1, KVHeads: 2, HeadDim: 16}
	stride := shape.KVHeads * shape.HeadDim
	r := rand.New(rand.NewSource(9))
	q := make([]float32, shape.HeadDim)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	out := make([]float32, shape.HeadDim)
	scratch := make([]float32, shape.HeadDim)

	fp := kvcache.NewPagedKV(shape, pageTokens)
	k := make([]float32, stride)
	v := make([]float32, stride)
	fill := func(c *kvcache.PagedKV) {
		rr := rand.New(rand.NewSource(17))
		for t := 0; t < n; t++ {
			for i := range k {
				k[i] = float32(rr.NormFloat64())
				v[i] = float32(rr.NormFloat64())
			}
			c.AppendFlat(0, k, v)
		}
	}
	fill(fp)
	kp, vp, fpStride := fp.KVPages(0)
	b.Run("fp32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PagedStrided(out, q, kp, vp, 0, fpStride)
		}
	})
	for _, bits := range []int{8, 4} {
		qc := kvcache.NewPagedKVQuant(shape, pageTokens, 0, bits)
		fill(qc)
		pages, qStride := qc.QuantPages(0)
		b.Run(fmt.Sprintf("int%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PagedStridedQuant(out, q, scratch, pages, bits, 0, qStride, shape.KVHeads, 0)
			}
		})
	}
}
