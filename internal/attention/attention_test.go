package attention

import (
	"math"
	"testing"
	"testing/quick"

	"rethinkkv/internal/rng"
)

func randSeq(seed uint64, n, d int) (q []float32, keys, vals [][]float32) {
	r := rng.New(seed)
	q = make([]float32, d)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	for i := 0; i < n; i++ {
		k := make([]float32, d)
		v := make([]float32, d)
		for j := 0; j < d; j++ {
			k[j] = float32(r.NormFloat64())
			v[j] = float32(r.NormFloat64())
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return q, keys, vals
}

func TestFlashMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 300} {
		q, keys, vals := randSeq(uint64(n), n, 16)
		naiveOut, _, _ := Naive(q, keys, vals)
		flashOut, _ := Flash(q, keys, vals)
		for j := range naiveOut {
			if math.Abs(float64(naiveOut[j]-flashOut[j])) > 1e-4 {
				t.Fatalf("n=%d dim %d: naive %v vs flash %v", n, j, naiveOut[j], flashOut[j])
			}
		}
	}
}

func TestNaiveScoresSumToOne(t *testing.T) {
	q, keys, vals := randSeq(3, 50, 8)
	_, scores, _ := Naive(q, keys, vals)
	var sum float64
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative score %v", s)
		}
		sum += float64(s)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("score sum = %v", sum)
	}
}

func TestFlashScoresMatchNaiveScores(t *testing.T) {
	q, keys, vals := randSeq(9, 40, 8)
	_, want, _ := Naive(q, keys, vals)
	got, tr := FlashScores(q, keys)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-5 {
			t.Fatalf("score %d: %v vs %v", i, want[i], got[i])
		}
	}
	if tr.Passes < 2 {
		t.Fatalf("score recovery must cost extra passes, got %d", tr.Passes)
	}
	_ = vals
}

func TestTrafficOrdering(t *testing.T) {
	// Flash must move strictly fewer elements than Naive for the same input,
	// and use fewer passes — the mechanism behind the paper's Observation 1.
	q, keys, vals := randSeq(4, 256, 32)
	_, _, naiveTr := Naive(q, keys, vals)
	_, flashTr := Flash(q, keys, vals)
	if flashTr.ElemsRead >= naiveTr.ElemsRead {
		t.Fatalf("flash reads %d >= naive reads %d", flashTr.ElemsRead, naiveTr.ElemsRead)
	}
	if flashTr.Passes >= naiveTr.Passes {
		t.Fatalf("flash passes %d >= naive passes %d", flashTr.Passes, naiveTr.Passes)
	}
	// H2O-style score recovery erases part of the advantage.
	_, scoreTr := FlashScores(q, keys)
	total := flashTr
	total.Add(scoreTr)
	if total.Passes <= flashTr.Passes {
		t.Fatal("score recovery should add passes")
	}
}

func TestTrafficBytes(t *testing.T) {
	tr := Traffic{ElemsRead: 10, ElemsWritten: 5}
	if b := tr.Bytes(2); b != 30 {
		t.Fatalf("bytes = %d", b)
	}
}

func TestFlashEmptySequence(t *testing.T) {
	out, tr := Flash([]float32{1, 2}, nil, nil)
	if len(out) != 2 || out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty flash out = %v", out)
	}
	if tr.ElemsRead != 0 {
		t.Fatal("empty flash should read nothing")
	}
}

func TestPagedMatchesFlash(t *testing.T) {
	q, keys, vals := randSeq(5, 37, 8) // 37 = 2 full pages of 16 + partial
	flashOut, _ := Flash(q, keys, vals)
	var kp, vp [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		kp = append(kp, keys[i:end])
		vp = append(vp, vals[i:end])
	}
	pagedOut, tr := Paged(q, kp, vp)
	for j := range flashOut {
		if math.Abs(float64(flashOut[j]-pagedOut[j])) > 1e-5 {
			t.Fatalf("paged diverges at dim %d", j)
		}
	}
	if tr.ElemsRead <= int64(2*len(keys)*8) {
		t.Fatal("paged should charge block-table reads")
	}
}

// Property: flash == naive across random sizes and seeds.
func TestQuickFlashEquivalence(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%100 + 1
		q, keys, vals := randSeq(seed, n, 8)
		a, _, _ := Naive(q, keys, vals)
		b, _ := Flash(q, keys, vals)
		for j := range a {
			if math.Abs(float64(a[j]-b[j])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAttentionOutputInConvexHull(t *testing.T) {
	// Attention output is a convex combination of values: each output dim
	// must lie within [min, max] of that dim across values.
	q, keys, vals := randSeq(6, 20, 4)
	out, _ := Flash(q, keys, vals)
	for j := 0; j < 4; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			lo = math.Min(lo, float64(v[j]))
			hi = math.Max(hi, float64(v[j]))
		}
		if float64(out[j]) < lo-1e-4 || float64(out[j]) > hi+1e-4 {
			t.Fatalf("dim %d output %v outside hull [%v, %v]", j, out[j], lo, hi)
		}
	}
	_ = keys
}
