package attention

import (
	"math"
	"testing"
	"testing/quick"

	"rethinkkv/internal/rng"
)

func randSeq(seed uint64, n, d int) (q []float32, keys, vals [][]float32) {
	r := rng.New(seed)
	q = make([]float32, d)
	for i := range q {
		q[i] = float32(r.NormFloat64())
	}
	for i := 0; i < n; i++ {
		k := make([]float32, d)
		v := make([]float32, d)
		for j := 0; j < d; j++ {
			k[j] = float32(r.NormFloat64())
			v[j] = float32(r.NormFloat64())
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return q, keys, vals
}

func TestFlashMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 300} {
		q, keys, vals := randSeq(uint64(n), n, 16)
		naiveOut, _, _ := Naive(q, keys, vals)
		flashOut, _ := Flash(q, keys, vals)
		for j := range naiveOut {
			if math.Abs(float64(naiveOut[j]-flashOut[j])) > 1e-4 {
				t.Fatalf("n=%d dim %d: naive %v vs flash %v", n, j, naiveOut[j], flashOut[j])
			}
		}
	}
}

func TestNaiveScoresSumToOne(t *testing.T) {
	q, keys, vals := randSeq(3, 50, 8)
	_, scores, _ := Naive(q, keys, vals)
	var sum float64
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative score %v", s)
		}
		sum += float64(s)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("score sum = %v", sum)
	}
}

func TestFlashScoresMatchNaiveScores(t *testing.T) {
	q, keys, vals := randSeq(9, 40, 8)
	_, want, _ := Naive(q, keys, vals)
	got, tr := FlashScores(q, keys)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-5 {
			t.Fatalf("score %d: %v vs %v", i, want[i], got[i])
		}
	}
	if tr.Passes < 2 {
		t.Fatalf("score recovery must cost extra passes, got %d", tr.Passes)
	}
	_ = vals
}

func TestTrafficOrdering(t *testing.T) {
	// Flash must move strictly fewer elements than Naive for the same input,
	// and use fewer passes — the mechanism behind the paper's Observation 1.
	q, keys, vals := randSeq(4, 256, 32)
	_, _, naiveTr := Naive(q, keys, vals)
	_, flashTr := Flash(q, keys, vals)
	if flashTr.ElemsRead >= naiveTr.ElemsRead {
		t.Fatalf("flash reads %d >= naive reads %d", flashTr.ElemsRead, naiveTr.ElemsRead)
	}
	if flashTr.Passes >= naiveTr.Passes {
		t.Fatalf("flash passes %d >= naive passes %d", flashTr.Passes, naiveTr.Passes)
	}
	// H2O-style score recovery erases part of the advantage.
	_, scoreTr := FlashScores(q, keys)
	total := flashTr
	total.Add(scoreTr)
	if total.Passes <= flashTr.Passes {
		t.Fatal("score recovery should add passes")
	}
}

func TestTrafficBytes(t *testing.T) {
	tr := Traffic{ElemsRead: 10, ElemsWritten: 5}
	if b := tr.Bytes(2); b != 30 {
		t.Fatalf("bytes = %d", b)
	}
}

func TestFlashEmptySequence(t *testing.T) {
	out, tr := Flash([]float32{1, 2}, nil, nil)
	if len(out) != 2 || out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty flash out = %v", out)
	}
	if tr.ElemsRead != 0 {
		t.Fatal("empty flash should read nothing")
	}
}

func TestPagedMatchesFlash(t *testing.T) {
	q, keys, vals := randSeq(5, 37, 8) // 37 = 2 full pages of 16 + partial
	flashOut, _ := Flash(q, keys, vals)
	var kp, vp [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		kp = append(kp, keys[i:end])
		vp = append(vp, vals[i:end])
	}
	pagedOut, tr := Paged(q, kp, vp)
	for j := range flashOut {
		if math.Abs(float64(flashOut[j]-pagedOut[j])) > 1e-5 {
			t.Fatalf("paged diverges at dim %d", j)
		}
	}
	if tr.ElemsRead <= int64(2*len(keys)*8) {
		t.Fatal("paged should charge block-table reads")
	}
}

// Property: flash == naive across random sizes and seeds.
func TestQuickFlashEquivalence(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%100 + 1
		q, keys, vals := randSeq(seed, n, 8)
		a, _, _ := Naive(q, keys, vals)
		b, _ := Flash(q, keys, vals)
		for j := range a {
			if math.Abs(float64(a[j]-b[j])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAttentionOutputInConvexHull(t *testing.T) {
	// Attention output is a convex combination of values: each output dim
	// must lie within [min, max] of that dim across values.
	q, keys, vals := randSeq(6, 20, 4)
	out, _ := Flash(q, keys, vals)
	for j := 0; j < 4; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			lo = math.Min(lo, float64(v[j]))
			hi = math.Max(hi, float64(v[j]))
		}
		if float64(out[j]) < lo-1e-4 || float64(out[j]) > hi+1e-4 {
			t.Fatalf("dim %d output %v outside hull [%v, %v]", j, out[j], lo, hi)
		}
	}
	_ = keys
}

func TestFlashIntoMatchesFlash(t *testing.T) {
	q, keys, vals := randSeq(11, 33, 8)
	want, wantTr := Flash(q, keys, vals)
	out := make([]float32, 8)
	for i := range out {
		out[i] = 42 // must be fully overwritten
	}
	tr := FlashInto(out, q, keys, vals)
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("dim %d: %v != %v", j, out[j], want[j])
		}
	}
	if tr != wantTr {
		t.Fatalf("traffic %+v != %+v", tr, wantTr)
	}
}

// flatten packs per-token vectors into a flat strided buffer with padding
// lanes, mimicking a multi-head cache layout.
func flatten(rows [][]float32, stride int) []float32 {
	if len(rows) == 0 {
		return nil
	}
	buf := make([]float32, len(rows)*stride)
	for i, r := range rows {
		copy(buf[i*stride:], r)
	}
	return buf
}

func TestFlashStridedMatchesFlash(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		q, keys, vals := randSeq(uint64(20+n), n, 8)
		want, _ := Flash(q, keys, vals)
		stride := 24
		out := make([]float32, 8)
		tr := FlashStrided(out, q, flatten(keys, stride), flatten(vals, stride), stride, n)
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("n=%d dim %d: strided %v != flash %v", n, j, out[j], want[j])
			}
		}
		if n > 0 && tr.ElemsRead != int64(2*n*8) {
			t.Fatalf("n=%d traffic = %+v", n, tr)
		}
	}
}

// TestPagedBitIdenticalToFlash pins the streaming guarantee: because Paged
// feeds entries through the same online-softmax recurrence as Flash, the
// outputs are bit-identical, not merely close.
func TestPagedBitIdenticalToFlash(t *testing.T) {
	q, keys, vals := randSeq(21, 53, 8) // 3 full pages of 16 + partial
	want, _ := Flash(q, keys, vals)
	var kp, vp [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		kp = append(kp, keys[i:end])
		vp = append(vp, vals[i:end])
	}
	got, tr := Paged(q, kp, vp)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dim %d: paged %v != flash %v", j, got[j], want[j])
		}
	}
	if want := int64(2*53*8 + 4); tr.ElemsRead != want {
		t.Fatalf("paged reads = %d, want %d (KV once + one block-table read per page)", tr.ElemsRead, want)
	}
}

func TestPagedEmpty(t *testing.T) {
	out, tr := Paged([]float32{1, 2}, nil, nil)
	if out[0] != 0 || out[1] != 0 || tr.ElemsRead != 0 {
		t.Fatalf("empty paged: out=%v tr=%+v", out, tr)
	}
	out, tr = Paged([]float32{1, 2}, [][][]float32{{}}, [][][]float32{{}})
	if out[0] != 0 || tr.ElemsRead != 1 {
		t.Fatalf("empty-page paged: out=%v tr=%+v", out, tr)
	}
}

func TestPagedStridedMatchesPaged(t *testing.T) {
	q, keys, vals := randSeq(22, 37, 8)
	var kp, vp [][][]float32
	for i := 0; i < len(keys); i += 16 {
		end := i + 16
		if end > len(keys) {
			end = len(keys)
		}
		kp = append(kp, keys[i:end])
		vp = append(vp, vals[i:end])
	}
	want, _ := Paged(q, kp, vp)
	stride := 16 // head 1 of a 2-head layout with HeadDim 8
	off := 8
	flatPage := func(rows [][]float32) []float32 {
		buf := make([]float32, len(rows)*stride)
		for i, r := range rows {
			copy(buf[i*stride+off:], r)
		}
		return buf
	}
	var fk, fv [][]float32
	for p := range kp {
		fk = append(fk, flatPage(kp[p]))
		fv = append(fv, flatPage(vp[p]))
	}
	out := make([]float32, 8)
	tr := PagedStrided(out, q, fk, fv, off, stride)
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("dim %d: %v != %v", j, out[j], want[j])
		}
	}
	if tr.Passes != 1 {
		t.Fatalf("passes = %d", tr.Passes)
	}
}
