package workload

import (
	"testing"

	"rethinkkv/internal/stats"
)

func TestShareGPTDeterministic(t *testing.T) {
	a := SampleShareGPT(DefaultShareGPT(100), 7)
	b := SampleShareGPT(DefaultShareGPT(100), 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := SampleShareGPT(DefaultShareGPT(100), 8)
	same := 0
	for i := range a {
		if a[i].PromptLen == c[i].PromptLen {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds should differ")
	}
}

func TestShareGPTBounds(t *testing.T) {
	cfg := DefaultShareGPT(2000)
	reqs := SampleShareGPT(cfg, 1)
	if len(reqs) != 2000 {
		t.Fatalf("n = %d", len(reqs))
	}
	for _, r := range reqs {
		if r.PromptLen < 4 || r.PromptLen > cfg.MaxPrompt {
			t.Fatalf("prompt len %d out of bounds", r.PromptLen)
		}
		if r.RefLen < 1 || r.RefLen > cfg.MaxResponse {
			t.Fatalf("response len %d out of bounds", r.RefLen)
		}
	}
}

func TestShareGPTStatisticsPlausible(t *testing.T) {
	reqs := SampleShareGPT(DefaultShareGPT(5000), 2)
	var prompts, resps []float64
	for _, r := range reqs {
		prompts = append(prompts, float64(r.PromptLen))
		resps = append(resps, float64(r.RefLen))
	}
	pMed := stats.Median(prompts)
	rMed := stats.Median(resps)
	if pMed < 100 || pMed > 350 {
		t.Fatalf("prompt median %v outside ShareGPT-like band", pMed)
	}
	if rMed < 150 || rMed > 400 {
		t.Fatalf("response median %v outside ShareGPT-like band", rMed)
	}
	// Heavy tail: p99 well above median.
	if stats.Percentile(prompts, 99) < 4*pMed {
		t.Fatal("prompt distribution not heavy-tailed")
	}
}

func TestShareGPTArrivals(t *testing.T) {
	cfg := DefaultShareGPT(500)
	cfg.RPS = 10
	reqs := SampleShareGPT(cfg, 3)
	prev := 0.0
	for _, r := range reqs {
		if r.ArrivalTime < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = r.ArrivalTime
	}
	// 500 requests at 10 rps ≈ 50 seconds.
	if prev < 30 || prev > 80 {
		t.Fatalf("trace duration %v implausible for 10 rps", prev)
	}
}

func TestLongBenchDeterministicAndComplete(t *testing.T) {
	cfg := DefaultLongBench(300, 512, 512)
	a := SampleLongBench(cfg, 11)
	b := SampleLongBench(cfg, 11)
	if len(a) != 300 {
		t.Fatalf("n = %d", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Task != b[i].Task || a[i].PromptLen != b[i].PromptLen {
			t.Fatal("not deterministic")
		}
	}
	seen := map[TaskType]int{}
	for _, s := range a {
		seen[s.Task]++
	}
	for _, task := range AllTasks() {
		if seen[task] == 0 {
			t.Fatalf("task %v never sampled in 300 draws", task)
		}
	}
}

func TestLongBenchSampleInvariants(t *testing.T) {
	for _, s := range SampleLongBench(DefaultLongBench(200, 512, 512), 4) {
		if len(s.Prompt) != s.PromptLen {
			t.Fatalf("sample %d: prompt len mismatch", s.ID)
		}
		if len(s.Critical) == 0 {
			t.Fatalf("sample %d: no critical spans", s.ID)
		}
		for _, sp := range s.Critical {
			if sp.Start < 0 || sp.End > s.PromptLen || sp.Len() <= 0 {
				t.Fatalf("sample %d: bad span %+v for prompt %d", s.ID, sp, s.PromptLen)
			}
			// Critical spans must carry content tokens (upper half vocab).
			for j := sp.Start; j < sp.End; j++ {
				if s.Prompt[j] < 256 {
					t.Fatalf("sample %d: span token %d not content-marked", s.ID, s.Prompt[j])
				}
			}
		}
		if s.Difficulty <= 0 || s.Difficulty > 1 {
			t.Fatalf("difficulty %v out of range", s.Difficulty)
		}
		if s.AnswerLen <= 0 {
			t.Fatal("answer length must be positive")
		}
		for _, tok := range s.Prompt {
			if tok < 0 || tok >= 512 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
}

func TestTaskSpanShapes(t *testing.T) {
	samples := SampleLongBench(DefaultLongBench(600, 512, 512), 5)
	for _, s := range samples {
		switch s.Task {
		case Summarization:
			if len(s.Critical) < 6 {
				t.Fatalf("summarization needs dispersed spans, got %d", len(s.Critical))
			}
		case SingleDocQA, Synthetic:
			if len(s.Critical) != 1 {
				t.Fatalf("%v should have one needle, got %d", s.Task, len(s.Critical))
			}
		case Code:
			last := s.Critical[len(s.Critical)-1]
			if last.End != s.PromptLen {
				t.Fatalf("code completion span should end at prompt end: %+v vs %d", last, s.PromptLen)
			}
		}
	}
}

func TestTaskGrouping(t *testing.T) {
	if SingleDocQA.Group() != "QA" || MultiDocQA.Group() != "QA" {
		t.Fatal("QA grouping wrong")
	}
	if Summarization.Group() != "Summarization" || Code.Group() != "Code" {
		t.Fatal("grouping wrong")
	}
	groups := map[string]bool{}
	for _, task := range AllTasks() {
		groups[task.Group()] = true
	}
	if len(groups) != 5 {
		t.Fatalf("expected 5 figure-7 groups, got %d", len(groups))
	}
}

func TestPoissonArrivalsRate(t *testing.T) {
	arr := PoissonArrivals(1000, 10, 6)
	if len(arr) != 1000 {
		t.Fatal("count wrong")
	}
	dur := arr[len(arr)-1]
	if dur < 80 || dur > 125 {
		t.Fatalf("1000 arrivals at 10rps took %v s", dur)
	}
}

func TestTaskTypeString(t *testing.T) {
	if Summarization.String() != "summarization" || TaskType(99).String() == "" {
		t.Fatal("task names wrong")
	}
}
