// Package workload synthesises the two datasets the paper evaluates on:
//
//   - a ShareGPT-like request stream (the paper samples 1,000 ShareGPT
//     conversations for throughput and length analysis): log-normal prompt
//     and reference-response lengths with ShareGPT-calibrated parameters,
//     plus Poisson arrivals for the serving experiments;
//   - a LongBench-like long-context task suite (the paper's negative-sample
//     analysis): six task types whose samples carry *computable* ground
//     truth — each sample knows which prompt token spans are critical to
//     answering it, so accuracy under compression can be measured
//     mechanistically (see internal/accuracy).
//
// Everything is deterministic given a seed.
package workload

import (
	"fmt"

	"rethinkkv/internal/rng"
)

// Request is one ShareGPT-like serving request.
type Request struct {
	ID        int
	PromptLen int
	// RefLen is the reference (uncompressed, temperature-1) response
	// length in tokens.
	RefLen int
	// ArrivalTime is seconds since trace start (0 for closed-loop use).
	ArrivalTime float64
}

// ShareGPTConfig parameterises the request synthesiser. Defaults match the
// ShareGPT statistics used by vLLM's benchmark_serving sampler: median
// prompt ≈ 180 tokens with a heavy tail, median response ≈ 250 tokens,
// both capped (the paper caps generation at 1,024 tokens, Appendix A.1).
type ShareGPTConfig struct {
	N             int
	PromptMu      float64 // log-space mean of prompt length
	PromptSigma   float64
	ResponseMu    float64
	ResponseSigma float64
	MaxPrompt     int
	MaxResponse   int
	// RPS > 0 adds Poisson arrival times at that request rate.
	RPS float64
}

// DefaultShareGPT returns the paper's sampling setup for n requests.
func DefaultShareGPT(n int) ShareGPTConfig {
	return ShareGPTConfig{
		N:        n,
		PromptMu: 5.2, PromptSigma: 1.0, // median ≈ 181
		ResponseMu: 5.5, ResponseSigma: 0.9, // median ≈ 245
		MaxPrompt:   8192,
		MaxResponse: 1024,
	}
}

// SampleShareGPT draws a deterministic request trace.
func SampleShareGPT(cfg ShareGPTConfig, seed uint64) []Request {
	r := rng.New(seed)
	reqs := make([]Request, cfg.N)
	now := 0.0
	for i := range reqs {
		p := int(r.LogNormal(cfg.PromptMu, cfg.PromptSigma))
		if p < 4 {
			p = 4
		}
		if p > cfg.MaxPrompt {
			p = cfg.MaxPrompt
		}
		resp := int(r.LogNormal(cfg.ResponseMu, cfg.ResponseSigma))
		if resp < 1 {
			resp = 1
		}
		if resp > cfg.MaxResponse {
			resp = cfg.MaxResponse
		}
		if cfg.RPS > 0 {
			now += r.Exponential(cfg.RPS)
		}
		reqs[i] = Request{ID: i, PromptLen: p, RefLen: resp, ArrivalTime: now}
	}
	return reqs
}

// TaskType is a LongBench-like task category. The proportions and span
// structures mirror LongBench's task groups (Appendix D).
type TaskType int

const (
	// Summarization needs broad coverage: many critical spans dispersed
	// across the whole context.
	Summarization TaskType = iota
	// SingleDocQA needs one needle span at a random position.
	SingleDocQA
	// MultiDocQA needs several needle spans in different regions.
	MultiDocQA
	// Code needs definitions near the beginning plus local context at the
	// end (where completion happens).
	Code
	// FewShot needs the example boundaries in the middle of the prompt.
	FewShot
	// Synthetic is extreme retrieval: one tiny span, uniformly placed.
	Synthetic
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	switch t {
	case Summarization:
		return "summarization"
	case SingleDocQA:
		return "single-doc-qa"
	case MultiDocQA:
		return "multi-doc-qa"
	case Code:
		return "code"
	case FewShot:
		return "few-shot"
	case Synthetic:
		return "synthetic"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// Group maps fine task types onto the five groups of the paper's Figure 7
// pie charts.
func (t TaskType) Group() string {
	switch t {
	case Summarization:
		return "Summarization"
	case SingleDocQA, MultiDocQA:
		return "QA"
	case Code:
		return "Code"
	case FewShot:
		return "Few shot"
	default:
		return "Synthetic"
	}
}

// AllTasks lists every task type.
func AllTasks() []TaskType {
	return []TaskType{Summarization, SingleDocQA, MultiDocQA, Code, FewShot, Synthetic}
}

// Span is a half-open token range [Start, End) within a prompt.
type Span struct{ Start, End int }

// Len returns the span length.
func (s Span) Len() int { return s.End - s.Start }

// Sample is one LongBench-like evaluation sample.
type Sample struct {
	ID        int
	Task      TaskType
	PromptLen int
	// Critical are the prompt spans the answer depends on.
	Critical []Span
	// Difficulty in (0, 1]: how sharply accuracy degrades with lost
	// critical information (heavier-tailed for harder samples).
	Difficulty float64
	// Prompt is the token sequence for the tiny model (vocabulary ids).
	Prompt []int
	// AnswerLen is the expected answer length in tokens.
	AnswerLen int
}

// LongBenchConfig parameterises the task-suite generator.
type LongBenchConfig struct {
	N int
	// PromptLen is the nominal context length (LongBench averages thousands
	// of tokens; for tiny-model execution this is scaled down — the
	// *fractions* of budget/prompt are what transfer).
	PromptLen int
	// Vocab bounds the token ids drawn for prompts.
	Vocab int
	// Mix weights task types; nil uses LongBench-like proportions.
	Mix []float64
}

// DefaultLongBench returns a suite of n samples with the given prompt scale.
func DefaultLongBench(n, promptLen, vocab int) LongBenchConfig {
	return LongBenchConfig{N: n, PromptLen: promptLen, Vocab: vocab,
		// Summ, SQA, MQA, Code, FewShot, Synthetic — LongBench-like mix.
		Mix: []float64{0.22, 0.18, 0.14, 0.18, 0.16, 0.12}}
}

// SampleLongBench draws a deterministic task suite.
func SampleLongBench(cfg LongBenchConfig, seed uint64) []Sample {
	if cfg.Vocab < 16 || cfg.PromptLen < 32 {
		panic("workload: LongBench config too small")
	}
	r := rng.New(seed)
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultLongBench(0, 0, 0).Mix
	}
	out := make([]Sample, cfg.N)
	for i := range out {
		task := AllTasks()[r.Categorical(mix)]
		out[i] = generateSample(i, task, cfg, r)
	}
	return out
}

// generateSample builds one sample with task-appropriate critical spans.
func generateSample(id int, task TaskType, cfg LongBenchConfig, r *rng.RNG) Sample {
	p := cfg.PromptLen
	// Jitter prompt length ±25%.
	p = p*3/4 + r.Intn(p/2+1)
	s := Sample{ID: id, Task: task, PromptLen: p, Difficulty: 0.3 + 0.7*r.Float64()}
	span := func(start, length int) Span {
		if start < 0 {
			start = 0
		}
		if start+length > p {
			start = p - length
		}
		if start < 0 {
			start, length = 0, p
		}
		return Span{Start: start, End: start + length}
	}
	switch task {
	case Summarization:
		// 6-12 salient spans spread across the document.
		n := 6 + r.Intn(7)
		for j := 0; j < n; j++ {
			center := (j*p)/n + r.Intn(p/n+1)
			s.Critical = append(s.Critical, span(center, 4+r.Intn(5)))
		}
		s.AnswerLen = 48
	case SingleDocQA:
		// One needle, anywhere but the final 10%.
		pos := r.Intn(p * 9 / 10)
		s.Critical = append(s.Critical, span(pos, 6+r.Intn(6)))
		s.AnswerLen = 16
	case MultiDocQA:
		for j := 0; j < 2+r.Intn(3); j++ {
			s.Critical = append(s.Critical, span(r.Intn(p*9/10), 5+r.Intn(5)))
		}
		s.AnswerLen = 24
	case Code:
		// Definitions near the start, completion context at the very end.
		s.Critical = append(s.Critical, span(r.Intn(p/10), 8))
		s.Critical = append(s.Critical, span(p-16, 16))
		s.AnswerLen = 24
	case FewShot:
		// Example boundaries in the middle half.
		for j := 0; j < 3+r.Intn(3); j++ {
			pos := p/4 + r.Intn(p/2)
			s.Critical = append(s.Critical, span(pos, 4+r.Intn(4)))
		}
		s.AnswerLen = 12
	case Synthetic:
		s.Critical = append(s.Critical, span(r.Intn(p-4), 3))
		s.AnswerLen = 8
	}
	// Prompt tokens: filler from the lower vocabulary; critical spans use
	// high-vocabulary "content" tokens so they are distinguishable.
	s.Prompt = make([]int, p)
	half := cfg.Vocab / 2
	for j := range s.Prompt {
		s.Prompt[j] = r.Intn(half)
	}
	for _, sp := range s.Critical {
		for j := sp.Start; j < sp.End && j < p; j++ {
			s.Prompt[j] = half + r.Intn(cfg.Vocab-half)
		}
	}
	return s
}

// PoissonArrivals returns n arrival timestamps at the given requests/sec.
func PoissonArrivals(n int, rps float64, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	now := 0.0
	for i := range out {
		now += r.Exponential(rps)
		out[i] = now
	}
	return out
}
