// Package textmetrics implements the token-sequence similarity metrics
// LongBench-style task scoring uses: unigram F1 (QA), ROUGE-L / longest
// common subsequence (summarisation), and normalised edit similarity (code
// completion). All operate on integer token sequences, matching the tiny
// model's outputs.
package textmetrics

// TokenF1 returns the unigram F1 overlap between a prediction and a
// reference, the standard QA metric. Both empty → 1; one empty → 0.
func TokenF1(pred, ref []int) float64 {
	if len(pred) == 0 && len(ref) == 0 {
		return 1
	}
	if len(pred) == 0 || len(ref) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, t := range ref {
		counts[t]++
	}
	overlap := 0
	for _, t := range pred {
		if counts[t] > 0 {
			counts[t]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	precision := float64(overlap) / float64(len(pred))
	recall := float64(overlap) / float64(len(ref))
	return 2 * precision * recall / (precision + recall)
}

// LCS returns the length of the longest common subsequence.
func LCS(a, b []int) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// RougeL returns the ROUGE-L F-measure (β=1) between a prediction and a
// reference: the LCS-based summarisation metric.
func RougeL(pred, ref []int) float64 {
	if len(pred) == 0 && len(ref) == 0 {
		return 1
	}
	if len(pred) == 0 || len(ref) == 0 {
		return 0
	}
	l := float64(LCS(pred, ref))
	if l == 0 {
		return 0
	}
	precision := l / float64(len(pred))
	recall := l / float64(len(ref))
	return 2 * precision * recall / (precision + recall)
}

// Levenshtein returns the edit distance between two token sequences.
func Levenshtein(a, b []int) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// EditSimilarity returns 1 − normalised Levenshtein distance, the
// code-completion metric.
func EditSimilarity(pred, ref []int) float64 {
	n := len(pred)
	if len(ref) > n {
		n = len(ref)
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(pred, ref))/float64(n)
}
