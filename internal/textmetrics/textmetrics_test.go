package textmetrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTokenF1(t *testing.T) {
	if !almost(TokenF1([]int{1, 2, 3}, []int{1, 2, 3}), 1) {
		t.Fatal("identical should score 1")
	}
	if TokenF1([]int{1}, []int{2}) != 0 {
		t.Fatal("disjoint should score 0")
	}
	// pred {1,2}, ref {2,3}: overlap 1 → P=0.5, R=0.5, F1=0.5.
	if !almost(TokenF1([]int{1, 2}, []int{2, 3}), 0.5) {
		t.Fatalf("F1 = %v", TokenF1([]int{1, 2}, []int{2, 3}))
	}
	// Multiset semantics: duplicated prediction tokens don't double-count.
	if TokenF1([]int{2, 2, 2}, []int{2}) >= 1 {
		t.Fatal("duplicates should lower precision")
	}
	if !almost(TokenF1(nil, nil), 1) || TokenF1(nil, []int{1}) != 0 {
		t.Fatal("empty handling")
	}
}

func TestLCS(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 3},
		{[]int{1, 2, 3}, []int{3, 2, 1}, 1},
		{[]int{1, 3, 5, 7}, []int{0, 3, 1, 7}, 2},
		{nil, []int{1}, 0},
	}
	for _, c := range cases {
		if got := LCS(c.a, c.b); got != c.want {
			t.Fatalf("LCS(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRougeL(t *testing.T) {
	if !almost(RougeL([]int{1, 2, 3}, []int{1, 2, 3}), 1) {
		t.Fatal("identical rouge")
	}
	if RougeL([]int{4, 5}, []int{6, 7}) != 0 {
		t.Fatal("disjoint rouge")
	}
	// Order matters for ROUGE-L but not for F1.
	f1 := TokenF1([]int{3, 2, 1}, []int{1, 2, 3})
	rl := RougeL([]int{3, 2, 1}, []int{1, 2, 3})
	if rl >= f1 {
		t.Fatalf("reversed sequence: rouge %v should trail F1 %v", rl, f1)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, []int{1, 3}, 1},
		{[]int{1}, []int{2}, 1},
		{nil, []int{1, 2}, 2},
		{[]int{1, 2, 3, 4}, []int{2, 3, 4, 5}, 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Fatalf("lev(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if !almost(EditSimilarity([]int{1, 2}, []int{1, 2}), 1) {
		t.Fatal("identical similarity")
	}
	if !almost(EditSimilarity(nil, nil), 1) {
		t.Fatal("empty similarity")
	}
	if s := EditSimilarity([]int{1, 2, 3, 4}, []int{5, 6, 7, 8}); s != 0 {
		t.Fatalf("fully different similarity = %v", s)
	}
}

// Properties: symmetry and range for all metrics.
func TestQuickMetricProperties(t *testing.T) {
	clampTokens := func(raw []uint8) []int {
		out := make([]int, len(raw))
		for i, v := range raw {
			out[i] = int(v % 8)
		}
		return out
	}
	f := func(ra, rb []uint8) bool {
		a, b := clampTokens(ra), clampTokens(rb)
		f1 := TokenF1(a, b)
		rl := RougeL(a, b)
		es := EditSimilarity(a, b)
		if f1 < 0 || f1 > 1 || rl < 0 || rl > 1 || es < 0 || es > 1 {
			return false
		}
		// Symmetry.
		if !almost(TokenF1(a, b), TokenF1(b, a)) {
			return false
		}
		if Levenshtein(a, b) != Levenshtein(b, a) {
			return false
		}
		// ROUGE-L never exceeds F1 (a subsequence is also a bag overlap).
		return rl <= f1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
