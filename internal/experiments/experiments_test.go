package experiments

import (
	"strings"
	"testing"

	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
)

func TestFormatters(t *testing.T) {
	f := Figure{Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}}}
	out := f.Format()
	if !strings.Contains(out, "# t") || !strings.Contains(out, "a") {
		t.Fatalf("figure format: %q", out)
	}
	tb := Table{Title: "tt", Columns: []string{"c"}, Rows: []TableRow{{Label: "r", Cells: []string{"v"}}}}
	if !strings.Contains(tb.Format(), "tt") || !strings.Contains(tb.Format(), "v") {
		t.Fatalf("table format: %q", tb.Format())
	}
}

func TestFig1EngineDecodeShape(t *testing.T) {
	f := Fig1EngineDecode(ThroughputConfig{}, 2048, []int{1, 4, 16})
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	// LMDeploy dominates at every batch.
	byName := map[string]Series{}
	for _, s := range f.Series {
		byName[s.Label] = s
	}
	for i := range byName["lmdeploy"].Y {
		if byName["lmdeploy"].Y[i] <= byName["trl"].Y[i] {
			t.Fatal("lmdeploy should beat trl")
		}
		if byName["trl+fa"].Y[i] <= byName["trl"].Y[i] {
			t.Fatal("trl+fa should beat trl")
		}
	}
}

func TestFig1StreamSpeedupShape(t *testing.T) {
	f := Fig1StreamSpeedup(ThroughputConfig{}, 2048, []int{4, 8, 16})
	byName := map[string]Series{}
	for _, s := range f.Series {
		byName[s.Label] = s
	}
	for i := range byName["trl"].Y {
		if byName["trl"].Y[i] <= byName["lmdeploy"].Y[i] {
			t.Fatalf("TRL speedup should exceed LMDeploy's at point %d", i)
		}
	}
}

func TestFig1PrefillAndDecode(t *testing.T) {
	figs := Fig1Prefill(ThroughputConfig{}, []int{1, 4, 8, 16}, []int{1024, 2048, 4096})
	if len(figs) != 2 {
		t.Fatalf("prefill figs = %d", len(figs))
	}
	decs := Fig1Decode(ThroughputConfig{}, []int{1, 8, 16}, []int{1024, 4096, 8192})
	if len(decs) != 2 {
		t.Fatalf("decode figs = %d", len(decs))
	}
	// Every figure has all five methods.
	for _, f := range append(figs, decs...) {
		if len(f.Series) != 5 {
			t.Fatalf("%s: %d series", f.Title, len(f.Series))
		}
	}
}

func TestFig2And3Run(t *testing.T) {
	figs := Fig2H800([]int{512, 2048}, []int{512, 2048})
	if len(figs) != 2 {
		t.Fatal("fig2 should have two panels")
	}
	// H800 + 70B at TP2 must decode slower than 7B on A6000 but still > 0.
	for _, s := range figs[1].Series {
		for _, y := range s.Y {
			if y <= 0 || y > 500 {
				t.Fatalf("implausible 70B decode throughput %v", y)
			}
		}
	}
	att := Fig3AttentionTime(ThroughputConfig{}, []int{1024, 2048, 4096})
	if len(att) != 2 {
		t.Fatal("fig3 should have two panels")
	}
	// Sparse decode attention time flat; FP16 grows.
	var fp, stream Series
	for _, s := range att[1].Series {
		switch s.Label {
		case "FP16":
			fp = s
		case "Stream":
			stream = s
		}
	}
	if fp.Y[2] < fp.Y[0]*1.5 {
		t.Fatal("fp16 attention time should grow with KV")
	}
	if stream.Y[2] > stream.Y[0]*1.1 {
		t.Fatal("stream attention time should stay flat")
	}
}

func TestTable3Shape(t *testing.T) {
	tb := Table3TP(ThroughputConfig{})
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Format()
	if !strings.Contains(out, "prefill TP=1") || !strings.Contains(out, "decode TP=4") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}

func TestAppendixTPFigures(t *testing.T) {
	figs := AppendixTPFigures(ThroughputConfig{HW: gpu.A6000, Model: model.Mistral7B}, []int{1, 8})
	if len(figs) != 2 {
		t.Fatal("expected quant + sparse panels")
	}
	if len(figs[0].Series) != 9 { // 3 methods × 3 TP degrees
		t.Fatalf("series = %d", len(figs[0].Series))
	}
}

func TestTable5AndFig4(t *testing.T) {
	tb := Table5Shift(800, 1)
	if len(tb.Rows) != 2 || len(tb.Rows[0].Cells) != 6 {
		t.Fatalf("table 5 shape: %+v", tb)
	}
	figs := Fig4LengthDistribution(500, 2)
	if len(figs) != 4 {
		t.Fatalf("fig4 panels = %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Fatalf("%s: series = %d", f.Title, len(f.Series))
		}
		// Densities non-negative.
		for _, s := range f.Series {
			for _, y := range s.Y {
				if y < 0 {
					t.Fatal("negative density")
				}
			}
		}
	}
}

func TestFig5CDFMonotone(t *testing.T) {
	f := Fig5E2ECDF(300, 3)
	if len(f.Series) != 5 {
		t.Fatalf("series = %d", len(f.Series))
	}
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s: quantiles not monotone", s.Label)
			}
		}
	}
}

func TestTable4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-model table in -short")
	}
	tb := Table4Verbosity(6, 4)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0].Cells[0] == "" {
		t.Fatal("empty semantic score")
	}
}

func TestNegativeStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-model study in -short")
	}
	st := RunNegativeStudy(40, 192, 5)
	figs := st.Fig6Thresholds()
	if len(figs) != 2 {
		t.Fatal("fig6 panels")
	}
	for _, f := range figs {
		for _, s := range f.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] > s.Y[i-1] {
					t.Fatalf("%s/%s: negatives must not grow with threshold", f.Title, s.Label)
				}
			}
		}
		// Combined series is the last: never above the singles.
		comb := f.Series[2]
		for i := range comb.Y {
			if comb.Y[i] > f.Series[0].Y[i] || comb.Y[i] > f.Series[1].Y[i] {
				t.Fatal("combined negatives exceed a single method's")
			}
		}
	}
	bd := st.Fig7TaskBreakdown()
	if len(bd.Rows) != 4 {
		t.Fatalf("fig7 rows = %d", len(bd.Rows))
	}
	t7 := st.Table7NegativeBenchmark()
	if len(t7.Rows) != 3 {
		t.Fatalf("table7 rows = %d", len(t7.Rows))
	}
}

func TestTable6Runs(t *testing.T) {
	tb := Table6Predictors(7)
	if len(tb.Rows) != 2 || len(tb.Rows[0].Cells) != 5 {
		t.Fatalf("table 6 shape: %+v", tb)
	}
	for _, row := range tb.Rows {
		for i, c := range row.Cells {
			if !strings.HasSuffix(c, "%") {
				t.Fatalf("cell %d not a percentage: %q", i, c)
			}
		}
	}
}

func TestTable8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("router study in -short")
	}
	tb, err := Table8Router(200, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Format()
	if !strings.Contains(out, "w/ Both") {
		t.Fatalf("missing policy rows:\n%s", out)
	}
}
