package experiments

import (
	"fmt"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
)

// ThroughputConfig selects the hardware/model under test; the zero value is
// filled with the paper's main setting (LLaMA-7B on A6000).
type ThroughputConfig struct {
	HW    gpu.Hardware
	Model model.Config
}

func (c ThroughputConfig) filled() ThroughputConfig {
	if c.HW.Name == "" {
		c.HW = gpu.A6000
	}
	if c.Model.Name == "" {
		c.Model = model.LLaMA2_7B
	}
	return c
}

func (c ThroughputConfig) est(eng engine.Profile, method string, tp int) *perf.Estimator {
	return perf.MustNew(c.HW, c.Model, eng, compress.MustGet(method), tp)
}

// paperMethods is the method set of Figures 1-3 and Table 3.
var paperMethods = []string{"fp16", "kivi-4", "gear-4", "h2o-512", "stream-512"}

// Fig1EngineDecode reproduces Figure 1 (a-b): FP16 decode throughput across
// TRL, TRL+FA, and LMDeploy, over batch sizes at a fixed KV length.
func Fig1EngineDecode(cfg ThroughputConfig, kvLen int, batches []int) Figure {
	cfg = cfg.filled()
	f := Figure{
		Title:  fmt.Sprintf("Fig1(a-b) decode throughput, %s, KV %d", cfg.Model.Name, kvLen),
		XLabel: "batch", YLabel: "tokens/s",
	}
	for _, eng := range engine.All() {
		est := cfg.est(eng, "fp16", 1)
		s := Series{Label: eng.Name}
		for _, b := range batches {
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, est.DecodeThroughput(b, kvLen))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig1StreamSpeedup reproduces Figure 1 (c-d): StreamingLLM's decode
// speedup over FP16 measured on TRL vs LMDeploy.
func Fig1StreamSpeedup(cfg ThroughputConfig, kvLen int, batches []int) Figure {
	cfg = cfg.filled()
	f := Figure{
		Title:  fmt.Sprintf("Fig1(c-d) StreamingLLM decode speedup, KV %d", kvLen),
		XLabel: "batch", YLabel: "speedup vs FP16",
	}
	for _, eng := range []engine.Profile{engine.TRL, engine.LMDeploy} {
		fp := cfg.est(eng, "fp16", 1)
		st := cfg.est(eng, "stream-512", 1)
		s := Series{Label: eng.Name}
		for _, b := range batches {
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, st.DecodeThroughput(b, kvLen)/fp.DecodeThroughput(b, kvLen))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig1Prefill reproduces Figure 1 (e-h): prefill throughput per method.
// Sweep either batch (fixed prompt) or prompt length (fixed batch).
func Fig1Prefill(cfg ThroughputConfig, batches []int, promptLens []int) []Figure {
	cfg = cfg.filled()
	var figs []Figure
	if len(batches) > 1 {
		prompt := promptLens[0]
		f := Figure{Title: fmt.Sprintf("Fig1(e,g) prefill thr vs batch, prompt %d", prompt), XLabel: "batch", YLabel: "tokens/s"}
		for _, m := range paperMethods {
			est := cfg.est(engine.LMDeploy, m, 1)
			s := Series{Label: compress.MustGet(m).Alias}
			for _, b := range batches {
				s.X = append(s.X, float64(b))
				s.Y = append(s.Y, est.PrefillThroughput(b, prompt))
			}
			f.Series = append(f.Series, s)
		}
		figs = append(figs, f)
	}
	if len(promptLens) > 1 {
		f := Figure{Title: "Fig1(f,h) prefill thr vs prompt length, batch 1", XLabel: "prompt", YLabel: "tokens/s"}
		for _, m := range paperMethods {
			est := cfg.est(engine.LMDeploy, m, 1)
			s := Series{Label: compress.MustGet(m).Alias}
			for _, p := range promptLens {
				s.X = append(s.X, float64(p))
				s.Y = append(s.Y, est.PrefillThroughput(1, p))
			}
			f.Series = append(f.Series, s)
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig1Decode reproduces Figure 1 (i-l): decode throughput per method, with
// OOM detection at heavy settings (quant methods vanish at KV 8192).
func Fig1Decode(cfg ThroughputConfig, batches []int, kvLens []int) []Figure {
	cfg = cfg.filled()
	var figs []Figure
	if len(batches) > 1 {
		kv := kvLens[0]
		f := Figure{Title: fmt.Sprintf("Fig1(i,k) decode thr vs batch, KV %d", kv), XLabel: "batch", YLabel: "tokens/s"}
		for _, m := range paperMethods {
			est := cfg.est(engine.LMDeploy, m, 1)
			s := Series{Label: compress.MustGet(m).Alias}
			for _, b := range batches {
				s.X = append(s.X, float64(b))
				if !est.Fits(b, kv) {
					s.Y = append(s.Y, 0) // OOM
					continue
				}
				s.Y = append(s.Y, est.DecodeThroughput(b, kv))
			}
			f.Series = append(f.Series, s)
		}
		figs = append(figs, f)
	}
	if len(kvLens) > 1 {
		f := Figure{Title: "Fig1(j,l) decode thr vs KV length, batch 1", XLabel: "kv", YLabel: "tokens/s"}
		for _, m := range paperMethods {
			est := cfg.est(engine.LMDeploy, m, 1)
			s := Series{Label: compress.MustGet(m).Alias}
			for _, kv := range kvLens {
				s.X = append(s.X, float64(kv))
				if !est.Fits(1, kv) {
					s.Y = append(s.Y, 0)
					continue
				}
				s.Y = append(s.Y, est.DecodeThroughput(1, kv))
			}
			f.Series = append(f.Series, s)
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig2H800 reproduces Figure 2: LLaMA-70B on H800 (TP=2), prefill and
// decode sweeps over prompt/KV length at batch 1.
func Fig2H800(promptLens, kvLens []int) []Figure {
	cfg := ThroughputConfig{HW: gpu.H800, Model: model.LLaMA2_70B}
	pre := Figure{Title: "Fig2(a) LLaMA-70B on H800 prefill, batch 1", XLabel: "prompt", YLabel: "tokens/s"}
	dec := Figure{Title: "Fig2(b) LLaMA-70B on H800 decode, batch 1", XLabel: "kv", YLabel: "tokens/s"}
	for _, m := range paperMethods {
		est := cfg.est(engine.LMDeploy, m, 2)
		sp := Series{Label: compress.MustGet(m).Alias}
		for _, p := range promptLens {
			sp.X = append(sp.X, float64(p))
			sp.Y = append(sp.Y, est.PrefillThroughput(1, p))
		}
		pre.Series = append(pre.Series, sp)
		sd := Series{Label: compress.MustGet(m).Alias}
		for _, kv := range kvLens {
			sd.X = append(sd.X, float64(kv))
			sd.Y = append(sd.Y, est.DecodeThroughput(1, kv))
		}
		dec.Series = append(dec.Series, sd)
	}
	return []Figure{pre, dec}
}

// Fig3AttentionTime reproduces Figure 3: attention-layer execution time per
// method, for prefill (vs prompt length) and decode (cumulative over 1,024
// generated tokens, vs starting KV length), batch 1.
func Fig3AttentionTime(cfg ThroughputConfig, lens []int) []Figure {
	cfg = cfg.filled()
	pre := Figure{Title: "Fig3(a) prefill attention time, batch 1", XLabel: "prompt", YLabel: "seconds"}
	dec := Figure{Title: "Fig3(b) decode attention time (1024 steps), batch 1", XLabel: "kv", YLabel: "seconds"}
	for _, m := range paperMethods {
		est := cfg.est(engine.LMDeploy, m, 1)
		sp := Series{Label: compress.MustGet(m).Alias}
		sd := Series{Label: compress.MustGet(m).Alias}
		for _, l := range lens {
			sp.X = append(sp.X, float64(l))
			sp.Y = append(sp.Y, est.AttentionPrefillTime(1, l))
			sd.X = append(sd.X, float64(l))
			sd.Y = append(sd.Y, est.AttentionDecodeTimeCumulative(1, l, 1024))
		}
		pre.Series = append(pre.Series, sp)
		dec.Series = append(dec.Series, sd)
	}
	return []Figure{pre, dec}
}

// Table3TP reproduces Table 3: relative prefill and decode speedups of each
// method vs FP16 at TP = 1, 2, 4 (batch 4; prompt/KV 1024/2048 as in the
// paper's synthetic setting).
func Table3TP(cfg ThroughputConfig) Table {
	cfg = cfg.filled()
	t := Table{
		Title:   fmt.Sprintf("Table 3: relative speedup under tensor parallelism (%s)", cfg.Model.Name),
		Columns: []string{"FP16 (T/S)", "K-4", "G-4", "H2O", "Stream"},
	}
	for _, stage := range []string{"prefill", "decode"} {
		for _, tp := range []int{1, 2, 4} {
			fp := cfg.est(engine.LMDeploy, "fp16", tp)
			var base float64
			if stage == "prefill" {
				base = fp.PrefillThroughput(4, 1024)
			} else {
				base = fp.DecodeThroughput(4, 2048)
			}
			row := TableRow{Label: fmt.Sprintf("%s TP=%d", stage, tp), Cells: []string{cell(base)}}
			for _, m := range paperMethods[1:] {
				est := cfg.est(engine.LMDeploy, m, tp)
				var v float64
				if stage == "prefill" {
					v = est.PrefillThroughput(4, 1024) / base
				} else {
					v = est.DecodeThroughput(4, 2048) / base
				}
				row.Cells = append(row.Cells, speedupCell(v))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// AppendixTPFigures reproduces Figures 11-14: per-method throughput across
// TP degrees for an arbitrary model, split into quant and sparse panels.
func AppendixTPFigures(cfg ThroughputConfig, batches []int) []Figure {
	cfg = cfg.filled()
	var figs []Figure
	for _, group := range [][]string{{"fp16", "kivi-4", "gear-4"}, {"fp16", "h2o-512", "stream-512"}} {
		f := Figure{
			Title:  fmt.Sprintf("Fig11-14 decode thr vs batch (%s), TP sweep: %v", cfg.Model.Name, group[1:]),
			XLabel: "batch", YLabel: "tokens/s",
		}
		for _, tp := range []int{1, 2, 4} {
			for _, m := range group {
				est := cfg.est(engine.LMDeploy, m, tp)
				s := Series{Label: fmt.Sprintf("%s-TP%d", compress.MustGet(m).Alias, tp)}
				for _, b := range batches {
					s.X = append(s.X, float64(b))
					s.Y = append(s.Y, est.DecodeThroughput(b, 1024))
				}
				f.Series = append(f.Series, s)
			}
		}
		figs = append(figs, f)
	}
	return figs
}
