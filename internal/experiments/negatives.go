package experiments

import (
	"fmt"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/model"
	"rethinkkv/internal/workload"
)

// negMethods is the method set of Figures 6-7 and Table 7.
var negMethods = []string{"kivi-4", "gear-4", "h2o-512", "stream-512"}

// NegativeStudy bundles the shared evaluation pass: every sample scored
// under the baseline and every method, using real tiny-model execution.
type NegativeStudy struct {
	Samples  []workload.Sample
	Baseline []accuracy.Result
	ByMethod map[string][]accuracy.Result
}

// RunNegativeStudy evaluates n LongBench-like samples (prompt scale
// promptLen) under the negative-analysis method set.
func RunNegativeStudy(n, promptLen int, seed uint64) *NegativeStudy {
	tiny := model.New(model.Tiny(), seed)
	ev := accuracy.NewEvaluator(tiny, accuracy.Config{ContSteps: 8})
	samples := workload.SampleLongBench(workload.DefaultLongBench(n, promptLen, model.Tiny().Vocab), seed+1)
	st := &NegativeStudy{Samples: samples, ByMethod: map[string][]accuracy.Result{}}
	for _, s := range samples {
		ref := ev.RunBaseline(s)
		st.Baseline = append(st.Baseline, ev.Evaluate(ref, "fp16"))
		for _, m := range negMethods {
			st.ByMethod[m] = append(st.ByMethod[m], ev.Evaluate(ref, m))
		}
	}
	return st
}

// Fig6Thresholds reproduces Figure 6: negative-sample counts versus the
// threshold, for quantisation methods (plus their combination) and sparsity
// methods (plus theirs).
func (st *NegativeStudy) Fig6Thresholds() []Figure {
	thetas := []float64{0.02, 0.04, 0.08, 0.16, 0.32}
	xs := make([]float64, len(thetas))
	for i, th := range thetas {
		xs[i] = th * 100
	}
	groups := []struct {
		title   string
		methods [][]string
		labels  []string
	}{
		{"Fig6(a) quantisation negatives vs threshold (%)",
			[][]string{{"kivi-4"}, {"gear-4"}, {"kivi-4", "gear-4"}},
			[]string{"KIVI", "GEAR", "Quant (C)"}},
		{"Fig6(b) sparsity negatives vs threshold (%)",
			[][]string{{"h2o-512"}, {"stream-512"}, {"h2o-512", "stream-512"}},
			[]string{"H2O", "Stream", "Sparse (C)"}},
	}
	var figs []Figure
	for _, g := range groups {
		f := Figure{Title: g.title, XLabel: "threshold %", YLabel: "# negatives"}
		for i, ms := range g.methods {
			counts := accuracy.ThresholdSweep(st.Baseline, st.ByMethod, ms, thetas)
			ys := make([]float64, len(counts))
			for j, c := range counts {
				ys[j] = float64(c)
			}
			f.Series = append(f.Series, Series{Label: g.labels[i], X: xs, Y: ys})
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig7TaskBreakdown reproduces Figure 7: the proportion of negative samples
// per task group for each method at the 10% threshold.
func (st *NegativeStudy) Fig7TaskBreakdown() Table {
	t := Table{
		Title:   "Fig7: negative-sample proportion by task group (θ=10%)",
		Columns: []string{"Summarization", "QA", "Code", "Few shot", "Synthetic"},
	}
	for _, m := range negMethods {
		set := accuracy.CollectNegatives(st.Baseline, st.ByMethod, []string{m}, 0.10)
		bd := accuracy.TaskBreakdown(set, st.Samples)
		row := TableRow{Label: fmt.Sprintf("%s (n=%d)", m, len(set.IDs))}
		for _, g := range t.Columns {
			row.Cells = append(row.Cells, fmt.Sprintf("%.1f%%", 100*bd[g]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table7NegativeBenchmark reproduces Table 7: per-task-group scores on the
// negative benchmark (samples negative for any method at θ=10%).
func (st *NegativeStudy) Table7NegativeBenchmark() Table {
	// The benchmark dataset: union of per-method negatives at θ=10%.
	idSet := map[int]bool{}
	for _, m := range negMethods {
		for _, id := range accuracy.CollectNegatives(st.Baseline, st.ByMethod, []string{m}, 0.10).IDs {
			idSet[id] = true
		}
	}
	ids := make([]int, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	t := Table{
		Title:   fmt.Sprintf("Table 7: scores on the negative benchmark (n=%d)", len(ids)),
		Columns: []string{"Baseline", "KIVI", "GEAR", "H2O", "Stream"},
	}
	groups := []string{"Summarization", "QA", "Code"}
	for _, g := range groups {
		row := TableRow{Label: g}
		sources := append([][]accuracy.Result{st.Baseline}, nil...)
		for _, m := range negMethods {
			sources = append(sources, st.ByMethod[m])
		}
		for _, src := range sources {
			gs := accuracy.GroupScores(accuracy.FilterByIDs(src, ids))
			if v, ok := gs[g]; ok {
				row.Cells = append(row.Cells, fmt.Sprintf("%.1f", v))
			} else {
				row.Cells = append(row.Cells, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
