package experiments

import (
	"fmt"

	"rethinkkv/internal/accuracy"
	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/tensor"
	"rethinkkv/internal/workload"
)

// lengthMethods is the method set of Tables 4-5 and Figures 4-5.
var lengthMethods = []string{"kivi-4", "gear-4", "h2o-512", "stream-512"}

// Table5Shift reproduces Table 5: the fraction of samples whose response
// length shifts by ≥50% in either direction, under temperature variation
// and under each compression method (LLaMA-3.1-8B profile, 1,000 ShareGPT
// samples).
func Table5Shift(n int, seed uint64) Table {
	lm := gen.Default()
	reqs := workload.SampleShareGPT(workload.DefaultShareGPT(n), seed)
	t := Table{
		Title:   "Table 5: ratio (%) of samples with ≥50% response-length variation",
		Columns: []string{"T=0.9", "T=1.1", "KIVI", "GEAR", "H2O", "Stream"},
	}
	var shrunk, grew []string
	add := func(st gen.ShiftStats) {
		shrunk = append(shrunk, fmt.Sprintf("%.1f%%", 100*st.FracShrunk))
		grew = append(grew, fmt.Sprintf("%.1f%%", 100*st.FracGrew))
	}
	for _, temp := range []float64{0.9, 1.1} {
		add(gen.Summarize(lm.RunTemp(reqs, compress.MustGet("fp16"), temp, seed+1)))
	}
	for _, m := range lengthMethods {
		add(gen.Summarize(lm.Run(reqs, compress.MustGet(m), seed+2)))
	}
	t.Rows = append(t.Rows,
		TableRow{Label: "% samples D >= 50%", Cells: shrunk},
		TableRow{Label: "% samples D <= -50%", Cells: grew},
	)
	return t
}

// Fig4LengthDistribution reproduces Figure 4: the log-density of the
// response-length-difference distribution per method at two compression
// ratios, as (histogram, KDE) series over D in percent.
func Fig4LengthDistribution(n int, seed uint64) []Figure {
	lm := gen.Default()
	reqs := workload.SampleShareGPT(workload.DefaultShareGPT(n), seed)
	pairs := [][2]string{
		{"kivi-2", "kivi-4"},
		{"gear-2", "gear-4"},
		{"h2o-256", "h2o-512"},
		{"stream-256", "stream-512"},
	}
	var figs []Figure
	for _, pair := range pairs {
		f := Figure{
			Title:  fmt.Sprintf("Fig4 response length difference density: %s vs %s", pair[0], pair[1]),
			XLabel: "D (%)", YLabel: "density",
		}
		for _, name := range pair {
			ds := gen.Ds(lm.Run(reqs, compress.MustGet(name), seed+3))
			kde := stats.NewKDE(ds, 0)
			xs, ys := kde.Evaluate(-200, 100, 61)
			f.Series = append(f.Series, Series{Label: name, X: xs, Y: ys})
		}
		figs = append(figs, f)
	}
	return figs
}

// Fig5E2ECDF reproduces Figure 5: the CDF of end-to-end latency per method
// over the ShareGPT trace at batch 1 (prefill + per-token decode, with the
// method's own realised response lengths).
func Fig5E2ECDF(n int, seed uint64) Figure {
	lm := gen.Default()
	reqs := workload.SampleShareGPT(workload.DefaultShareGPT(n), seed)
	cfg := ThroughputConfig{}.filled()
	f := Figure{Title: "Fig5: CDF of end-to-end latency (s), batch 1", XLabel: "quantile", YLabel: "latency (s)"}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for _, name := range append([]string{"fp16"}, lengthMethods...) {
		m := compress.MustGet(name)
		est := cfg.est(engine.LMDeploy, name, 1)
		gens := lm.Run(reqs, m, seed+4)
		var lats []float64
		for _, g := range gens {
			lats = append(lats, est.EndToEndLatency(1, g.Request.PromptLen, g.Len))
		}
		ecdf := stats.NewECDF(lats)
		s := Series{Label: m.Alias}
		for _, q := range quantiles {
			s.X = append(s.X, q)
			s.Y = append(s.Y, ecdf.Quantile(q))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Table4Verbosity reproduces Table 4: on requests where compression
// lengthens the output, the mean semantic score (vs a sampled FP16
// reference) and the mean length increase. Semantic scores come from real
// tiny-model generations; length increases from the calibrated length
// model.
func Table4Verbosity(nSamples int, seed uint64) Table {
	lm := gen.Default()
	reqs := workload.SampleShareGPT(workload.DefaultShareGPT(500), seed)
	tiny := model.New(model.Tiny(), seed)
	t := Table{
		Title:   "Table 4: semantic score and length increase on verbose requests",
		Columns: []string{"FP16", "KIVI-4", "GEAR-4", "H2O-512", "Stream-512"},
	}
	// Semantic score: each method's greedy continuation against the FP16
	// greedy reference; the FP16 row itself is a temperature-1 sample
	// against that reference, standing in for the paper's
	// reference-quality ceiling (their FP16 scores 49.6 against ChatGPT,
	// not 100).
	prompts := workload.SampleLongBench(workload.DefaultLongBench(nSamples, 192, model.Tiny().Vocab), seed+1)
	methods := append([]string{"fp16"}, lengthMethods...)
	scores := make([]string, 0, len(methods))
	const contSteps = 24
	for _, name := range methods {
		var sum float64
		for _, s := range prompts {
			refCache := kvcache.NewFull(tiny.CacheShape())
			refRes := tiny.Prefill(s.Prompt, refCache)
			ref := greedyContinue(tiny, refCache, refRes.Logits, len(s.Prompt), contSteps)
			var out []int
			if name == "fp16" {
				// The FP16 row scores 100 by construction: the reference
				// IS its greedy output. (The paper's FP16 scores 49.6
				// because its reference is ChatGPT, an external model.)
				out = ref
			} else {
				cache, err := accuracy.TinyCache(name, tiny.CacheShape())
				if err != nil {
					panic(err)
				}
				res := tiny.Prefill(s.Prompt, cache)
				if p, ok := cache.(compress.Prefiller); ok {
					p.FinishPrefill()
				}
				out = greedyContinue(tiny, cache, res.Logits, len(s.Prompt), contSteps)
			}
			sum += accuracy.SemanticScore(ref, out, model.Tiny().Vocab)
		}
		scores = append(scores, fmt.Sprintf("%.1f", sum/float64(len(prompts))))
	}
	t.Rows = append(t.Rows, TableRow{Label: "Semantic Score", Cells: scores})

	// Length increase on the verbose subset (requests the method
	// lengthened), as Table 4 selects.
	incs := []string{"-"}
	for _, name := range lengthMethods {
		gens := lm.Run(reqs, compress.MustGet(name), seed+5)
		var ratio float64
		var n int
		for _, g := range gens {
			if g.Len > g.Request.RefLen {
				ratio += float64(g.Len) / float64(g.Request.RefLen)
				n++
			}
		}
		incs = append(incs, fmt.Sprintf("%.2f×", ratio/float64(n)))
	}
	t.Rows = append(t.Rows, TableRow{Label: "Length Increase", Cells: incs})
	return t
}

// greedyContinue decodes n greedy tokens from the given state.
func greedyContinue(m *model.Model, cache kvcache.Cache, logits []float32, pos, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := tensor.Argmax(logits)
		out = append(out, next)
		sr := m.Forward(next, pos, cache)
		logits = sr.Logits
		pos++
	}
	return out
}
