package experiments

import (
	"strings"
	"testing"
)

func TestFig8MistralRuns(t *testing.T) {
	figs := Fig8Mistral([]int{1, 4, 16}, []int{1024, 2048})
	if len(figs) < 4 {
		t.Fatalf("figs = %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) == 0 {
			t.Fatalf("%s: empty", f.Title)
		}
	}
}

func TestFig9IncludesSnapKV(t *testing.T) {
	figs := Fig9SnapKV([]int{1, 4}, []int{1024, 4096})
	found := false
	for _, s := range figs[0].Series {
		if s.Label == "SnapKV" {
			found = true
		}
	}
	if !found {
		t.Fatal("SnapKV series missing")
	}
	if len(figs[0].Series) != 6 {
		t.Fatalf("series = %d", len(figs[0].Series))
	}
}

func TestFig10LLaMA13BSlowerThan7B(t *testing.T) {
	f13 := Fig10LLaMA13B([]int{1, 4}, []int{1024, 2048})
	f7 := Fig1EngineDecode(ThroughputConfig{}, 256, []int{1, 4})
	// Compare the lmdeploy series' first point: 13B must be slower.
	var y13, y7 float64
	for _, s := range f13[0].Series {
		if s.Label == "lmdeploy" {
			y13 = s.Y[0]
		}
	}
	for _, s := range f7.Series {
		if s.Label == "lmdeploy" {
			y7 = s.Y[0]
		}
	}
	if y13 >= y7 {
		t.Fatalf("13B decode %v should trail 7B %v", y13, y7)
	}
}

func TestTable9AndFig15Tagged(t *testing.T) {
	t9 := Table9MistralShift(400, 1)
	if !strings.Contains(t9.Title, "Mistral") {
		t.Fatal("table 9 not tagged")
	}
	figs := Fig15MistralLengthDistribution(300, 1)
	if len(figs) != 4 || !strings.Contains(figs[0].Title, "Mistral") {
		t.Fatal("fig15 not tagged")
	}
}

func TestFig16MistralCompressionGapNarrower(t *testing.T) {
	// Mistral's GQA already shrinks the KV cache 4×, so KV compression has
	// less traffic to save: the FP16→Stream gap in tail E2E latency is
	// relatively smaller than on (MHA) LLaMA-2-7B.
	llama := Fig5E2ECDF(300, 3)
	mistral := Fig16MistralE2E(300, 3)
	tail := func(f Figure, label string) float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Y[len(s.Y)-1] // 0.99 quantile
			}
		}
		t.Fatalf("series %s missing", label)
		return 0
	}
	gap := func(f Figure) float64 {
		fp := tail(f, "FP16")
		return (fp - tail(f, "Stream")) / fp
	}
	if gap(mistral) >= gap(llama) {
		t.Fatalf("Mistral compression gap %v should be narrower than LLaMA's %v (GQA)",
			gap(mistral), gap(llama))
	}
}

func TestMistralNegativeStudyDiffersFromLLaMA(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-model study in -short")
	}
	a := RunNegativeStudy(20, 160, 5)
	b := MistralNegativeStudy(20, 160, 5)
	// Different weight seeds → different per-sample scores somewhere.
	diff := false
	for i := range a.Baseline {
		if a.Baseline[i].Score != b.Baseline[i].Score {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("family seed should change the evaluation")
	}
}

func TestFormatAll(t *testing.T) {
	out := FormatAll([]Figure{{Title: "x"}, {Title: "y"}})
	if !strings.Contains(out, "# x") || !strings.Contains(out, "# y") {
		t.Fatalf("format all: %q", out)
	}
}
