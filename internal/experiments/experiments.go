// Package experiments contains one runner per table and figure in the
// paper's evaluation (Section 4, Section 5, and the appendices). Each
// runner regenerates the same rows or series the paper reports, using the
// library's real algorithm implementations and the analytical cost model.
// The mapping from experiment id to runner is indexed in DESIGN.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one labelled curve: y-values over the shared X axis.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a set of series with axis labels, mirroring one paper subplot.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table (one column per
// series), which is how cmd binaries print results.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-12.6g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a labelled grid of cells, mirroring one paper table.
type Table struct {
	Title   string
	Columns []string
	Rows    []TableRow
}

// TableRow is one labelled table row.
type TableRow struct {
	Label string
	Cells []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "%-24s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-24s", r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %12s", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// cell formats a float at sensible precision.
func cell(v float64) string { return fmt.Sprintf("%.4g", v) }

// speedupCell formats a relative speedup the way the paper's Table 3 does.
func speedupCell(v float64) string { return fmt.Sprintf("%.2f×", v) }

// sortedKeys returns map keys sorted, for deterministic table output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
