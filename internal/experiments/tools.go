package experiments

import (
	"fmt"

	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/perf"
	"rethinkkv/internal/predictor"
	"rethinkkv/internal/router"
	"rethinkkv/internal/serving"
	"rethinkkv/internal/workload"
)

// toolMethods is the method set of Tables 6 and 8.
var toolMethods = []string{"fp16", "kivi-4", "gear-4", "h2o-512", "stream-512"}

func toolEst(method string) *perf.Estimator {
	return perf.MustNew(gpu.A6000, model.LLaMA2_7B, engine.LMDeploy, compress.MustGet(method), 1)
}

// Table6Predictors reproduces Table 6: the accuracy of the throughput
// predictor (profile-and-interpolate) and the length predictor
// (feature-based classifier) per method.
func Table6Predictors(seed uint64) Table {
	lm := gen.Default()
	train := workload.SampleShareGPT(workload.DefaultShareGPT(3000), seed)
	test := workload.SampleShareGPT(workload.DefaultShareGPT(1000), seed+1)
	t := Table{
		Title:   "Table 6: prediction accuracy of the proposed tools",
		Columns: []string{"FP16", "KIVI", "GEAR", "H2O", "Stream"},
	}
	var thrRow, lenRow []string
	for mi, name := range toolMethods {
		m := compress.MustGet(name)
		tp := predictor.TrainThroughput(toolEst(name), predictor.DefaultGrid(), seed+2+uint64(mi)*101)
		pts := predictor.TestPoints()
		acc := (tp.DecodeAccuracy(pts) + tp.PrefillAccuracy(pts)) / 2
		thrRow = append(thrRow, fmt.Sprintf("%.1f%%", 100*acc))

		lp := predictor.TrainLength(train, lm.Run(train, m, seed+3), m, seed+4)
		lacc := lp.Accuracy(test, lm.Run(test, m, seed+5), m, seed+4)
		lenRow = append(lenRow, fmt.Sprintf("%.1f%%", 100*lacc))
	}
	t.Rows = append(t.Rows,
		TableRow{Label: "Throughput Predictor", Cells: thrRow},
		TableRow{Label: "Length Predictor", Cells: lenRow},
	)
	return t
}

// Table8Router reproduces Table 8: average end-to-end latency of the four
// routing policies for each compression method, on a Poisson trace
// (n requests at the given rate) over four GPUs.
func Table8Router(n int, rps float64, seed uint64) (Table, error) {
	lm := gen.Default()
	cfg := workload.DefaultShareGPT(n)
	cfg.RPS = rps
	reqs := workload.SampleShareGPT(cfg, seed)
	train := workload.SampleShareGPT(workload.DefaultShareGPT(2000), seed+1)

	t := Table{
		Title:   fmt.Sprintf("Table 8: average E2E latency (s), %d reqs @ %.0f rps, 4 GPUs", n, rps),
		Columns: []string{"FP16", "KIVI", "GEAR", "H2O", "Stream"},
	}
	rows := map[string][]string{"Baseline": nil, "w/ Throughput": nil, "w/ Length": nil, "w/ Both": nil}

	for _, name := range toolMethods {
		m := compress.MustGet(name)
		// Predictor suite for this method + the FP16 GPU.
		preds := router.Predictors{
			Thr:  map[string]*predictor.ThroughputPredictor{},
			Len:  map[string]*predictor.LengthPredictor{},
			Salt: seed,
		}
		for _, mm := range []string{"fp16", name} {
			mo := compress.MustGet(mm)
			preds.Thr[mm] = predictor.TrainThroughput(toolEst(mm), predictor.DefaultGrid(), seed+2)
			preds.Len[mm] = predictor.TrainLength(train, lm.Run(train, mo, seed+3), mo, seed)
		}
		// Batch cap 32 matches continuous-batching engines; smaller caps
		// saturate four A6000s at the paper's 10 rps arrival rate.
		uniform := &serving.Cluster{BatchCap: 64, LM: lm, Seed: seed}
		for i := 0; i < 4; i++ {
			uniform.GPUs = append(uniform.GPUs, serving.GPUConfig{ID: i, Method: m, Est: toolEst(name)})
		}
		mixed := &serving.Cluster{BatchCap: 64, LM: lm, Seed: seed}
		mixed.GPUs = append(mixed.GPUs, serving.GPUConfig{ID: 0, Method: compress.MustGet("fp16"), Est: toolEst("fp16")})
		for i := 1; i < 4; i++ {
			mixed.GPUs = append(mixed.GPUs, serving.GPUConfig{ID: i, Method: m, Est: toolEst(name)})
		}

		type policyRun struct {
			label   string
			cluster *serving.Cluster
			r       serving.Router
		}
		runs := []policyRun{
			{"Baseline", uniform, router.Baseline{}},
			{"w/ Throughput", mixed, router.WithThroughput{P: preds}},
			{"w/ Length", mixed, router.WithLength{P: preds}},
			{"w/ Both", mixed, router.WithBoth{P: preds}},
		}
		if name == "fp16" {
			// Paper reports only the baseline for FP16.
			out, err := uniform.Run(reqs, router.Baseline{})
			if err != nil {
				return Table{}, err
			}
			rows["Baseline"] = append(rows["Baseline"], fmt.Sprintf("%.1f", serving.MeanE2E(out)))
			for _, l := range []string{"w/ Throughput", "w/ Length", "w/ Both"} {
				rows[l] = append(rows[l], "-")
			}
			continue
		}
		for _, pr := range runs {
			out, err := pr.cluster.Run(reqs, pr.r)
			if err != nil {
				return Table{}, err
			}
			rows[pr.label] = append(rows[pr.label], fmt.Sprintf("%.1f", serving.MeanE2E(out)))
		}
	}
	for _, label := range []string{"Baseline", "w/ Throughput", "w/ Length", "w/ Both"} {
		t.Rows = append(t.Rows, TableRow{Label: label, Cells: rows[label]})
	}
	return t, nil
}
