package experiments

import (
	"rethinkkv/internal/compress"
	"rethinkkv/internal/engine"
	"rethinkkv/internal/gen"
	"rethinkkv/internal/gpu"
	"rethinkkv/internal/model"
	"rethinkkv/internal/stats"
	"rethinkkv/internal/workload"
)

// Appendix runners (Figures 8-10 and 15-18, Tables 9-11): the paper repeats
// its analyses on Mistral-7B and LLaMA-13B to show generality. Throughput
// variants differ through the models' real shapes (GQA KV width, layer
// count); accuracy variants differ through a different tiny-model weight
// seed standing in for the family (EXPERIMENTS.md notes that per-family
// length-shift differences beyond this are not modelled).

// MistralSeed is the tiny-model weight seed standing in for the Mistral
// family in appendix accuracy analyses.
const MistralSeed = 7777

// Fig8Mistral reproduces Figure 8: the engine comparison and method sweeps
// on Mistral-7B.
func Fig8Mistral(batches, promptLens []int) []Figure {
	cfg := ThroughputConfig{HW: gpu.A6000, Model: model.Mistral7B}
	figs := []Figure{
		Fig1EngineDecode(cfg, 256, batches),
		Fig1EngineDecode(cfg, 2048, batches),
	}
	figs = append(figs, Fig1Prefill(cfg, batches, promptLens)...)
	figs = append(figs, Fig1Decode(cfg, batches, promptLens)...)
	return figs
}

// Fig9SnapKV reproduces Figure 9: LLaMA-7B throughput with SnapKV added to
// the method set.
func Fig9SnapKV(batches, lens []int) []Figure {
	cfg := ThroughputConfig{}.filled()
	methods := append(append([]string(nil), paperMethods...), "snapkv-512")
	pre := Figure{Title: "Fig9(a-b) prefill with SnapKV", XLabel: "prompt", YLabel: "tokens/s"}
	dec := Figure{Title: "Fig9(c-d) decode with SnapKV", XLabel: "kv", YLabel: "tokens/s"}
	for _, m := range methods {
		est := cfg.est(engine.LMDeploy, m, 1)
		sp := Series{Label: compress.MustGet(m).Alias}
		sd := Series{Label: compress.MustGet(m).Alias}
		for _, l := range lens {
			sp.X = append(sp.X, float64(l))
			sp.Y = append(sp.Y, est.PrefillThroughput(1, l))
			sd.X = append(sd.X, float64(l))
			sd.Y = append(sd.Y, est.DecodeThroughput(1, l))
		}
		pre.Series = append(pre.Series, sp)
		dec.Series = append(dec.Series, sd)
	}
	_ = batches
	return []Figure{pre, dec}
}

// Fig10LLaMA13B reproduces Figure 10: the full Figure-1 suite on LLaMA-13B.
func Fig10LLaMA13B(batches, lens []int) []Figure {
	cfg := ThroughputConfig{HW: gpu.A6000, Model: model.LLaMA2_13B}
	figs := []Figure{
		Fig1EngineDecode(cfg, 256, batches),
		Fig1StreamSpeedup(cfg, 1024, batches),
	}
	figs = append(figs, Fig1Prefill(cfg, batches, lens)...)
	figs = append(figs, Fig1Decode(cfg, batches, lens)...)
	return figs
}

// Table9MistralShift reproduces Table 9: the Table-5 length-shift analysis
// tagged for Mistral-7B (a distinct workload draw; see the package comment
// for the modelling caveat).
func Table9MistralShift(n int, seed uint64) Table {
	t := Table5Shift(n, seed^0x4d7) // distinct Mistral draw
	t.Title = "Table 9: length variation ratios (Mistral-7B)"
	return t
}

// Fig15MistralLengthDistribution reproduces Figure 15 (Mistral's Figure 4).
func Fig15MistralLengthDistribution(n int, seed uint64) []Figure {
	figs := Fig4LengthDistribution(n, seed^0xa57a)
	for i := range figs {
		figs[i].Title = "Fig15 (Mistral) " + figs[i].Title
	}
	return figs
}

// Fig16MistralE2E reproduces Figure 16: the end-to-end latency CDF with
// Mistral-7B's real shapes (GQA narrows KV traffic, so curves sit closer
// together than LLaMA's).
func Fig16MistralE2E(n int, seed uint64) Figure {
	lm := gen.Default()
	reqs := workload.SampleShareGPT(workload.DefaultShareGPT(n), seed)
	cfg := ThroughputConfig{HW: gpu.A6000, Model: model.Mistral7B}
	f := Figure{Title: "Fig16: Mistral-7B CDF of end-to-end latency (s), batch 1", XLabel: "quantile", YLabel: "latency (s)"}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for _, name := range append([]string{"fp16"}, lengthMethods...) {
		m := compress.MustGet(name)
		est := cfg.est(engine.LMDeploy, name, 1)
		gens := lm.Run(reqs, m, seed+4)
		var lats []float64
		for _, g := range gens {
			lats = append(lats, est.EndToEndLatency(1, g.Request.PromptLen, g.Len))
		}
		ecdf := stats.NewECDF(lats)
		s := Series{Label: m.Alias}
		for _, q := range quantiles {
			s.X = append(s.X, q)
			s.Y = append(s.Y, ecdf.Quantile(q))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// MistralNegativeStudy runs the negative-sample pipeline with the Mistral
// family seed — Figures 17-18 and Table 11.
func MistralNegativeStudy(n, promptLen int, seed uint64) *NegativeStudy {
	return RunNegativeStudy(n, promptLen, seed^MistralSeed)
}

// FormatAll renders a figure list.
func FormatAll(figs []Figure) string {
	out := ""
	for _, f := range figs {
		out += f.Format() + "\n"
	}
	return out
}
