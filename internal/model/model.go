package model

import (
	"fmt"
	"math"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/tensor"
)

// layerWeights holds one transformer block's parameters.
type layerWeights struct {
	attnNorm []float32
	wq       *tensor.Matrix // Hidden × Hidden
	wk       *tensor.Matrix // Hidden × KVDim
	wv       *tensor.Matrix // Hidden × KVDim
	wo       *tensor.Matrix // Hidden × Hidden
	ffnNorm  []float32
	wGate    *tensor.Matrix // Hidden × FFNDim
	wUp      *tensor.Matrix // Hidden × FFNDim
	wDown    *tensor.Matrix // FFNDim × Hidden
}

// Model is a runnable tiny transformer with deterministic random weights.
type Model struct {
	cfg    Config
	embed  *tensor.Matrix // Vocab × Hidden (tied with the LM head)
	layers []layerWeights
	norm   []float32
}

// New builds a model with weights drawn deterministically from seed, scaled
// with 1/sqrt(fanIn) so activations stay well-conditioned.
func New(cfg Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rng.New(seed)
	randMat := func(rows, cols int) *tensor.Matrix {
		m := tensor.NewMatrix(rows, cols)
		scale := float32(1 / math.Sqrt(float64(rows)))
		for i := range m.Data {
			m.Data[i] = float32(r.NormFloat64()) * scale
		}
		return m
	}
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	h := cfg.Hidden()
	m := &Model{cfg: cfg, embed: randMat(cfg.Vocab, h), norm: ones(h)}
	for l := 0; l < cfg.Layers; l++ {
		m.layers = append(m.layers, layerWeights{
			attnNorm: ones(h),
			wq:       randMat(h, h),
			wk:       randMat(h, cfg.KVDim()),
			wv:       randMat(h, cfg.KVDim()),
			wo:       randMat(h, h),
			ffnNorm:  ones(h),
			wGate:    randMat(h, cfg.FFNDim),
			wUp:      randMat(h, cfg.FFNDim),
			wDown:    randMat(cfg.FFNDim, h),
		})
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// CacheShape returns the KV cache shape this model requires.
func (m *Model) CacheShape() kvcache.Shape {
	return kvcache.Shape{Layers: m.cfg.Layers, KVHeads: m.cfg.KVHeads, HeadDim: m.cfg.HeadDim}
}

// StepResult reports one decode step's outputs.
type StepResult struct {
	Logits []float32
	// Hidden is the final pre-logit hidden state, used by the accuracy
	// package to measure representation drift under compression.
	Hidden []float32
}

// Forward runs one token through the model at absolute position pos,
// appending its KV to cache and attending over everything the cache
// retains. It panics if token is out of vocabulary range.
func (m *Model) Forward(token, pos int, cache kvcache.Cache) StepResult {
	if token < 0 || token >= m.cfg.Vocab {
		panic(fmt.Sprintf("model: token %d out of range", token))
	}
	if got, want := cache.Shape(), m.CacheShape(); got != want {
		panic(fmt.Sprintf("model: cache shape %+v does not match model %+v", got, want))
	}
	h := append([]float32(nil), m.embed.Row(token)...)
	observer, _ := cache.(kvcache.AttentionObserver)
	cfg := m.cfg
	hd := cfg.HeadDim
	group := cfg.GroupSize()
	invSqrt := float32(1 / math.Sqrt(float64(hd)))

	for l := range m.layers {
		lw := &m.layers[l]
		x := tensor.RMSNorm(h, lw.attnNorm, 1e-5)
		q := tensor.VecMat(x, lw.wq)
		k := tensor.VecMat(x, lw.wk)
		v := tensor.VecMat(x, lw.wv)

		// Split into heads, apply RoPE to q and k.
		kHeads := make([][]float32, cfg.KVHeads)
		vHeads := make([][]float32, cfg.KVHeads)
		for kh := 0; kh < cfg.KVHeads; kh++ {
			kHeads[kh] = append([]float32(nil), k[kh*hd:(kh+1)*hd]...)
			vHeads[kh] = append([]float32(nil), v[kh*hd:(kh+1)*hd]...)
			tensor.ApplyRoPE(kHeads[kh], pos)
		}
		cache.Append(l, kHeads, vHeads)

		attnOut := make([]float32, cfg.Hidden())
		for qh := 0; qh < cfg.Heads; qh++ {
			qv := append([]float32(nil), q[qh*hd:(qh+1)*hd]...)
			tensor.ApplyRoPE(qv, pos)
			kh := qh / group
			keys, vals := cache.Seq(l, kh)
			scores := make([]float32, len(keys))
			for i, kv := range keys {
				scores[i] = tensor.Dot(qv, kv) * invSqrt
			}
			tensor.Softmax(scores)
			if observer != nil {
				observer.ObserveAttention(l, kh, scores)
			}
			out := attnOut[qh*hd : (qh+1)*hd]
			for i, w := range scores {
				tensor.AXPY(out, w, vals[i])
			}
		}
		proj := tensor.VecMat(attnOut, lw.wo)
		tensor.AXPY(h, 1, proj)

		// SiLU-gated FFN.
		x = tensor.RMSNorm(h, lw.ffnNorm, 1e-5)
		gate := tensor.VecMat(x, lw.wGate)
		up := tensor.VecMat(x, lw.wUp)
		tensor.SiLU(gate)
		for i := range gate {
			gate[i] *= up[i]
		}
		down := tensor.VecMat(gate, lw.wDown)
		tensor.AXPY(h, 1, down)
	}

	final := tensor.RMSNorm(h, m.norm, 1e-5)
	logits := tensor.MatVec(m.embed, final)
	return StepResult{Logits: logits, Hidden: final}
}

// Prefill runs every prompt token through the model, filling the cache, and
// returns the last step's result. It panics on an empty prompt.
func (m *Model) Prefill(prompt []int, cache kvcache.Cache) StepResult {
	if len(prompt) == 0 {
		panic("model: empty prompt")
	}
	var res StepResult
	for i, tok := range prompt {
		res = m.Forward(tok, i, cache)
	}
	return res
}

// GenerateOptions controls Generate.
type GenerateOptions struct {
	MaxNewTokens int
	Temperature  float64 // <= 0 means greedy
	EOS          int     // token id that stops generation; negative disables
	Seed         uint64  // sampling seed (ignored for greedy)
}

// GenerateResult reports the produced continuation.
type GenerateResult struct {
	Tokens []int
	// Hiddens holds the final hidden state at every generated position.
	Hiddens [][]float32
}

// Generate greedy- or temperature-samples a continuation after the prompt.
func (m *Model) Generate(prompt []int, cache kvcache.Cache, opt GenerateOptions) GenerateResult {
	res := m.Prefill(prompt, cache)
	r := rng.New(opt.Seed)
	var out GenerateResult
	pos := len(prompt)
	logits := res.Logits
	hidden := res.Hidden
	for step := 0; step < opt.MaxNewTokens; step++ {
		var next int
		if opt.Temperature <= 0 {
			next = tensor.Argmax(logits)
		} else {
			probs := append([]float32(nil), logits...)
			tensor.SoftmaxTemp(probs, opt.Temperature)
			next = sampleCategorical(r, probs)
		}
		out.Tokens = append(out.Tokens, next)
		out.Hiddens = append(out.Hiddens, hidden)
		if opt.EOS >= 0 && next == opt.EOS {
			break
		}
		sr := m.Forward(next, pos, cache)
		logits, hidden = sr.Logits, sr.Hidden
		pos++
	}
	return out
}

func sampleCategorical(r *rng.RNG, probs []float32) int {
	u := float32(r.Float64())
	var acc float32
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}
