package model

import (
	"fmt"
	"math"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/rng"
	"rethinkkv/internal/tensor"
)

// layerWeights holds one transformer block's parameters. Each projection
// matrix is stored twice: in the historical row-major orientation the
// per-stream kernels (VecMatInto) traverse column-major, and as a
// transposed copy the fused batched decode plane streams row-major
// (tensor.MatTMatTransInto). Both orientations hold identical values;
// weights are immutable after New, so the copies never diverge.
type layerWeights struct {
	attnNorm []float32
	wq       *tensor.Matrix // Hidden × Hidden
	wk       *tensor.Matrix // Hidden × KVDim
	wv       *tensor.Matrix // Hidden × KVDim
	wo       *tensor.Matrix // Hidden × Hidden
	ffnNorm  []float32
	wGate    *tensor.Matrix // Hidden × FFNDim
	wUp      *tensor.Matrix // Hidden × FFNDim
	wDown    *tensor.Matrix // FFNDim × Hidden

	wqT, wkT, wvT, woT   *tensor.Matrix // transposed copies for the batched plane
	wGateT, wUpT, wDownT *tensor.Matrix
}

// Model is a runnable tiny transformer with deterministic random weights.
// Weights are immutable after New; the only mutable state is the default
// workspace used by the convenience entry points (Forward, Prefill,
// Generate), which therefore must not be called concurrently on one Model.
// Concurrent decoding is safe via per-goroutine workspaces: NewWorkspace +
// ForwardInto, or one fused BatchWorkspace + ForwardBatchInto.
type Model struct {
	cfg       Config
	embed     *tensor.Matrix // Vocab × Hidden (tied with the LM head)
	layers    []layerWeights
	norm      []float32
	ropeFreqs []float64  // RoPE frequency schedule, precomputed once
	invSqrtHD float32    // 1/sqrt(HeadDim), the attention score scale
	ws        *Workspace // default workspace for the non-Into entry points

	// sparseTopK > 0 turns on Quest sparse decode attention: each head
	// scores the cache's per-page key summaries against its query and
	// attends only the topK most critical pages (tail always included).
	// Set before decoding starts; see SetSparseTopK.
	sparseTopK int
}

// Workspace holds every scratch buffer one decode stream needs, sized once
// from the model's Config. Reusing it makes steady-state ForwardInto
// allocation-free. A workspace belongs to exactly one decode stream at a
// time; independent sessions decoding in parallel each own one.
type Workspace struct {
	h       []float32   // residual stream (hidden)
	x       []float32   // normed activations (hidden)
	q       []float32   // query projection (hidden)
	k, v    []float32   // key/value projections (KVDim)
	kHeads  [][]float32 // per-head views into k (built once)
	vHeads  [][]float32 // per-head views into v (built once)
	qv      []float32   // one RoPE'd query head (HeadDim)
	attnOut []float32   // concatenated head outputs (hidden)
	proj    []float32   // output projection (hidden)
	gate    []float32   // FFN gate (FFNDim)
	up      []float32   // FFN up (FFNDim)
	down    []float32   // FFN down (hidden)
	final   []float32   // pre-logit hidden state (hidden)
	logits  []float32   // LM head output (Vocab)
	probs   []float32   // temperature-sampling scratch (Vocab)
	scores  []float32   // attention scores, grown to the sequence length
	// ropeSin/ropeCos hold the step's rotation coefficients, filled once
	// per decode position and reused by every head of every layer.
	ropeSin []float32
	ropeCos []float32

	// Sparse-attention scratch: per-page criticality scores (consumed
	// destructively by selection) and the selected page indices, grown
	// geometrically so steady-state sparse decode stays allocation-free.
	pageScores []float64
	pageSel    []int32
	// sparseSel/sparseTot count pages selected vs pages resident across
	// every (layer, head) sparse attention since the last TakeSparseStats.
	// They live on the workspace so fused lane-sharded attention updates
	// them without synchronization.
	sparseSel, sparseTot int64
	// probeRecall turns on the attention-mass recall probe: each sparse
	// attention additionally computes the dense softmax and accumulates
	// the fraction of true attention mass the selected pages captured.
	// Diagnostic only — probing allocates; never enable on a serving path.
	probeRecall bool
	recallMass  float64
	recallCnt   int64
}

// NewWorkspace allocates a workspace sized for this model. The score buffer
// starts at MaxSeq capacity so decode within the configured context window
// never reallocates it.
func (m *Model) NewWorkspace() *Workspace {
	cfg := m.cfg
	h := cfg.Hidden()
	ws := &Workspace{
		h:       make([]float32, h),
		x:       make([]float32, h),
		q:       make([]float32, h),
		k:       make([]float32, cfg.KVDim()),
		v:       make([]float32, cfg.KVDim()),
		qv:      make([]float32, cfg.HeadDim),
		attnOut: make([]float32, h),
		proj:    make([]float32, h),
		gate:    make([]float32, cfg.FFNDim),
		up:      make([]float32, cfg.FFNDim),
		down:    make([]float32, h),
		final:   make([]float32, h),
		logits:  make([]float32, cfg.Vocab),
		probs:   make([]float32, cfg.Vocab),
		scores:  make([]float32, 0, cfg.MaxSeq),
		ropeSin: make([]float32, cfg.HeadDim/2),
		ropeCos: make([]float32, cfg.HeadDim/2),
	}
	ws.kHeads = make([][]float32, cfg.KVHeads)
	ws.vHeads = make([][]float32, cfg.KVHeads)
	for kh := 0; kh < cfg.KVHeads; kh++ {
		ws.kHeads[kh] = ws.k[kh*cfg.HeadDim : (kh+1)*cfg.HeadDim]
		ws.vHeads[kh] = ws.v[kh*cfg.HeadDim : (kh+1)*cfg.HeadDim]
	}
	return ws
}

// scoresFor returns a score buffer of length n, growing the workspace's
// backing array geometrically only when the sequence outgrows it.
func (ws *Workspace) scoresFor(n int) []float32 {
	if cap(ws.scores) < n {
		newCap := 2 * cap(ws.scores)
		if newCap < n {
			newCap = n
		}
		ws.scores = make([]float32, 0, newCap)
	}
	return ws.scores[:n]
}

// New builds a model with weights drawn deterministically from seed, scaled
// with 1/sqrt(fanIn) so activations stay well-conditioned.
func New(cfg Config, seed uint64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rng.New(seed)
	randMat := func(rows, cols int) *tensor.Matrix {
		m := tensor.NewMatrix(rows, cols)
		scale := float32(1 / math.Sqrt(float64(rows)))
		for i := range m.Data {
			m.Data[i] = float32(r.NormFloat64()) * scale
		}
		return m
	}
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	h := cfg.Hidden()
	m := &Model{
		cfg:       cfg,
		embed:     randMat(cfg.Vocab, h),
		norm:      ones(h),
		ropeFreqs: tensor.RoPEFreqs(cfg.HeadDim),
		invSqrtHD: float32(1 / math.Sqrt(float64(cfg.HeadDim))),
	}
	for l := 0; l < cfg.Layers; l++ {
		lw := layerWeights{
			attnNorm: ones(h),
			wq:       randMat(h, h),
			wk:       randMat(h, cfg.KVDim()),
			wv:       randMat(h, cfg.KVDim()),
			wo:       randMat(h, h),
			ffnNorm:  ones(h),
			wGate:    randMat(h, cfg.FFNDim),
			wUp:      randMat(h, cfg.FFNDim),
			wDown:    randMat(cfg.FFNDim, h),
		}
		lw.wqT = tensor.Transpose(lw.wq)
		lw.wkT = tensor.Transpose(lw.wk)
		lw.wvT = tensor.Transpose(lw.wv)
		lw.woT = tensor.Transpose(lw.wo)
		lw.wGateT = tensor.Transpose(lw.wGate)
		lw.wUpT = tensor.Transpose(lw.wUp)
		lw.wDownT = tensor.Transpose(lw.wDown)
		m.layers = append(m.layers, lw)
	}
	m.ws = m.NewWorkspace()
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// CacheShape returns the KV cache shape this model requires.
func (m *Model) CacheShape() kvcache.Shape {
	return kvcache.Shape{Layers: m.cfg.Layers, KVHeads: m.cfg.KVHeads, HeadDim: m.cfg.HeadDim}
}

// StepResult reports one decode step's outputs.
type StepResult struct {
	Logits []float32
	// Hidden is the final pre-logit hidden state, used by the accuracy
	// package to measure representation drift under compression.
	Hidden []float32
}

// cachePath caches the interface assertions the decode hot paths probe on
// a cache, resolved once per step (or once per lane per fused step)
// instead of per layer.
type cachePath struct {
	cache    kvcache.Cache
	flat     kvcache.FlatReader
	pager    kvcache.PageReader
	quant    kvcache.QuantReader
	appender kvcache.FlatAppender
	batch    kvcache.FlatBatchAppender
	observer kvcache.AttentionObserver
	summ     kvcache.KeySummaryReader
}

func pathOf(c kvcache.Cache) cachePath {
	cp := cachePath{cache: c}
	cp.flat, _ = c.(kvcache.FlatReader)
	// A cache with quantized pages has no fp32 pages to stream: take the
	// fused dequantize-on-stream path and never probe KVPages. QuantBits 0
	// (a full-precision PagedKV) keeps the existing paged fast path.
	if qr, ok := c.(kvcache.QuantReader); ok && qr.QuantBits() != 0 {
		cp.quant = qr
	} else {
		cp.pager, _ = c.(kvcache.PageReader)
	}
	cp.appender, _ = c.(kvcache.FlatAppender)
	cp.batch, _ = c.(kvcache.FlatBatchAppender)
	cp.observer, _ = c.(kvcache.AttentionObserver)
	if sr, ok := c.(kvcache.KeySummaryReader); ok && sr.KeySummariesEnabled() {
		cp.summ = sr
	}
	return cp
}

// Forward runs one token through the model at absolute position pos,
// appending its KV to cache and attending over everything the cache
// retains. It panics if token is out of vocabulary range.
//
// Forward uses the model's default workspace and copies the step outputs so
// callers may retain them — two allocations per step. The zero-allocation
// hot path is ForwardInto. Not safe for concurrent calls on one Model.
func (m *Model) Forward(token, pos int, cache kvcache.Cache) StepResult {
	sr := m.ForwardInto(m.ws, token, pos, cache)
	return StepResult{
		Logits: append([]float32(nil), sr.Logits...),
		Hidden: append([]float32(nil), sr.Hidden...),
	}
}

// ForwardInto is Forward with every intermediate and output buffer taken
// from the caller-owned workspace: in steady state it performs zero heap
// allocations. The returned StepResult aliases ws (Logits = ws scratch,
// Hidden likewise) and is only valid until the next ForwardInto on the same
// workspace; callers that retain results must copy them. Distinct
// workspaces (with distinct caches) may run concurrently on one Model.
//
// The arithmetic is operation-for-operation identical to the historical
// per-token slice path, so outputs are bit-identical regardless of the
// cache's memory layout (flat, paged, or per-token views).
func (m *Model) ForwardInto(ws *Workspace, token, pos int, cache kvcache.Cache) StepResult {
	if token < 0 || token >= m.cfg.Vocab {
		panic(fmt.Sprintf("model: token %d out of range", token))
	}
	if got, want := cache.Shape(), m.CacheShape(); got != want {
		panic(fmt.Sprintf("model: cache shape %+v does not match model %+v", got, want))
	}
	cp := pathOf(cache)
	h := ws.h
	copy(h, m.embed.Row(token))
	tensor.RoPESincosInto(ws.ropeSin, ws.ropeCos, m.ropeFreqs, pos)

	// Projections dispatch per activation vector exactly like the batched
	// plane: zero-free vectors stream the transposed copy row-major (the
	// faster traversal), vectors with exact zeros reproduce VecMatInto's
	// skip — bit-identical either way (tensor.VecMatTransInto).
	for l := range m.layers {
		lw := &m.layers[l]
		tensor.RMSNormInto(ws.x, h, lw.attnNorm, 1e-5)
		tensor.VecMatTransInto(ws.q, ws.x, lw.wq, lw.wqT)
		tensor.VecMatTransInto(ws.k, ws.x, lw.wk, lw.wkT)
		tensor.VecMatTransInto(ws.v, ws.x, lw.wv, lw.wvT)
		m.attendStep(ws, &cp, l)
		tensor.VecMatTransInto(ws.proj, ws.attnOut, lw.wo, lw.woT)
		tensor.AXPY(h, 1, ws.proj)

		// SiLU-gated FFN.
		tensor.RMSNormInto(ws.x, h, lw.ffnNorm, 1e-5)
		tensor.VecMatTransInto(ws.gate, ws.x, lw.wGate, lw.wGateT)
		tensor.VecMatTransInto(ws.up, ws.x, lw.wUp, lw.wUpT)
		siluMul(ws.gate, ws.up)
		tensor.VecMatTransInto(ws.down, ws.gate, lw.wDown, lw.wDownT)
		tensor.AXPY(h, 1, ws.down)
	}

	tensor.RMSNormInto(ws.final, h, m.norm, 1e-5)
	tensor.MatVecInto(ws.logits, m.embed, ws.final)
	return StepResult{Logits: ws.logits, Hidden: ws.final}
}

// attendStep runs one layer's attention for one stream whose Q/K/V
// projections are already in the workspace: RoPE the K heads in place
// (using the step's cached rotation tables), append K/V to the cache, and
// accumulate each query head's attention output into ws.attnOut. It is the
// single attention implementation shared by the per-stream (ForwardInto)
// and fused batched (ForwardBatchInto) planes, which is what makes the two
// bit-identical by construction.
func (m *Model) attendStep(ws *Workspace, cp *cachePath, l int) {
	// Apply RoPE to the keys in place; ws.kHeads/ws.vHeads are prebuilt
	// per-head views into ws.k/ws.v. Caches copy on Append.
	for kh := 0; kh < m.cfg.KVHeads; kh++ {
		tensor.ApplyRoPECached(ws.kHeads[kh], ws.ropeSin, ws.ropeCos)
	}
	if cp.appender != nil {
		cp.appender.AppendFlat(l, ws.k, ws.v)
	} else {
		cp.cache.Append(l, ws.kHeads, ws.vHeads)
	}
	m.attendOver(ws, cp, l, -1)
}

// attendOver accumulates each query head's attention output into ws.attnOut
// over the first limit retained entries of layer l. limit < 0 means "every
// retained entry, per head" — the decode case, where the cache (possibly
// with eviction, so Len may differ by head) holds exactly the attendable
// set. Chunked prefill passes the causal bound instead: the cache already
// holds the whole chunk's K/V, and position p may only see entries 0..p,
// which addresses by position and therefore requires a cache that retains
// every token (Full, PagedKV). The K/V for the attended prefix are
// bit-identical to what a token-at-a-time pass would have cached, and the
// score/softmax/accumulate arithmetic is shared, so bounded attention here
// equals full attention then.
func (m *Model) attendOver(ws *Workspace, cp *cachePath, l, limit int) {
	cfg := m.cfg
	hd := cfg.HeadDim
	group := cfg.GroupSize()
	invSqrt := m.invSqrtHD

	attnOut := ws.attnOut
	for i := range attnOut {
		attnOut[i] = 0
	}
	for qh := 0; qh < cfg.Heads; qh++ {
		copy(ws.qv, ws.q[qh*hd:(qh+1)*hd])
		tensor.ApplyRoPECached(ws.qv, ws.ropeSin, ws.ropeCos)
		kh := qh / group
		out := attnOut[qh*hd : (qh+1)*hd]
		n := limit
		if n < 0 {
			n = cp.cache.Len(l, kh)
		}
		scores := ws.scoresFor(n)
		switch {
		case cp.flat != nil:
			// Flat fast path: stream the strided buffers directly; a
			// causal bound simply truncates the streamed entry count.
			keys, vals, stride := cp.flat.FlatSeq(l, kh)
			tensor.DotStrided(scores, ws.qv, keys, stride)
			tensor.Scale(scores, invSqrt)
			tensor.Softmax(scores)
			if cp.observer != nil {
				cp.observer.ObserveAttention(l, kh, scores)
			}
			tensor.AXPYStrided(out, scores, vals, stride)
		case cp.quant != nil:
			if limit < 0 && m.attendQuantSparse(ws, cp, l, kh, n, out) {
				break
			}
			// Quantized paged fast path: stream code pages through the
			// fused dequantize-on-stream kernels — per-element
			// x = float32(code)·Δ + lo straight into the accumulation, no
			// fp32 copy of the context — with the same page walk and
			// mid-page causal truncation as the fp32 paged path. Every
			// token was quantized at its own append, so bounded attention
			// here reads exactly what a token-at-a-time pass would have.
			pages, stride := cp.quant.QuantPages(l)
			bits := cp.quant.QuantBits()
			kvh := cfg.KVHeads
			off := kh * hd
			i := 0
			for p := 0; p < len(pages) && i < n; p++ {
				t := pages[p].Tokens(kvh)
				if i+t > n {
					t = n - i
				}
				tensor.DotQuantStrided(scores[i:i+t], ws.qv, pages[p].KCodes, pages[p].KParams, bits, off, stride, kvh, kh)
				i += t
			}
			tensor.Scale(scores, invSqrt)
			tensor.Softmax(scores)
			if cp.observer != nil {
				cp.observer.ObserveAttention(l, kh, scores)
			}
			i = 0
			for p := 0; p < len(pages) && i < n; p++ {
				t := pages[p].Tokens(kvh)
				if i+t > n {
					t = n - i
				}
				tensor.AXPYQuantStrided(out, scores[i:i+t], pages[p].VCodes, pages[p].VParams, bits, off, stride, kvh, kh)
				i += t
			}
		case cp.pager != nil:
			if limit < 0 && m.attendPagedSparse(ws, cp, l, kh, n, out) {
				break
			}
			// Paged fast path: stream flat pages, scores first so the
			// softmax (and any observer) sees the whole sequence; stop
			// mid-page at the causal bound.
			kps, vps, stride := cp.pager.KVPages(l)
			off := kh * hd
			i := 0
			for p := 0; p < len(kps) && i < n; p++ {
				t := len(kps[p]) / stride
				if i+t > n {
					t = n - i
				}
				tensor.DotStrided(scores[i:i+t], ws.qv, kps[p][off:], stride)
				i += t
			}
			tensor.Scale(scores, invSqrt)
			tensor.Softmax(scores)
			if cp.observer != nil {
				cp.observer.ObserveAttention(l, kh, scores)
			}
			i = 0
			for p := 0; p < len(vps) && i < n; p++ {
				t := len(vps[p]) / stride
				if i+t > n {
					t = n - i
				}
				tensor.AXPYStrided(out, scores[i:i+t], vps[p][off:], stride)
				i += t
			}
		default:
			// Generic path for caches with irregular retained sets
			// (eviction, quantisation): per-token views from Seq.
			keys, vals := cp.cache.Seq(l, kh)
			keys, vals = keys[:n], vals[:n]
			for i, kv := range keys {
				scores[i] = tensor.Dot(ws.qv, kv) * invSqrt
			}
			tensor.Softmax(scores)
			if cp.observer != nil {
				cp.observer.ObserveAttention(l, kh, scores)
			}
			for i, w := range scores {
				tensor.AXPY(out, w, vals[i])
			}
		}
	}
}

// siluMul applies the gated activation gate = SiLU(gate) ⊙ up in place —
// one helper so the per-stream and batched planes share the arithmetic.
func siluMul(gate, up []float32) {
	tensor.SiLU(gate)
	for i := range gate {
		gate[i] *= up[i]
	}
}

// Prefill runs every prompt token through the model, filling the cache, and
// returns the last step's result (copied, safe to retain). It panics on an
// empty prompt.
func (m *Model) Prefill(prompt []int, cache kvcache.Cache) StepResult {
	sr := m.PrefillInto(m.ws, prompt, cache)
	return StepResult{
		Logits: append([]float32(nil), sr.Logits...),
		Hidden: append([]float32(nil), sr.Hidden...),
	}
}

// PrefillInto is Prefill over a caller-owned workspace; the result aliases
// ws exactly like ForwardInto.
func (m *Model) PrefillInto(ws *Workspace, prompt []int, cache kvcache.Cache) StepResult {
	if len(prompt) == 0 {
		panic("model: empty prompt")
	}
	var res StepResult
	for i, tok := range prompt {
		res = m.ForwardInto(ws, tok, i, cache)
	}
	return res
}

// GenerateOptions controls Generate.
type GenerateOptions struct {
	MaxNewTokens int
	Temperature  float64 // <= 0 means greedy
	EOS          int     // token id that stops generation; negative disables
	Seed         uint64  // sampling seed (ignored for greedy)
}

// GenerateResult reports the produced continuation.
type GenerateResult struct {
	Tokens []int
	// Hiddens holds the final hidden state at every generated position.
	Hiddens [][]float32
}

// Generate greedy- or temperature-samples a continuation after the prompt.
// It runs on the model's default workspace: decode steps allocate only the
// per-step Hidden copy the result must retain (plus result-slice growth).
// The temperature path reuses one probs scratch buffer across steps instead
// of copying the logits every step.
func (m *Model) Generate(prompt []int, cache kvcache.Cache, opt GenerateOptions) GenerateResult {
	ws := m.ws
	res := m.PrefillInto(ws, prompt, cache)
	r := rng.New(opt.Seed)
	out := GenerateResult{
		Tokens:  make([]int, 0, opt.MaxNewTokens),
		Hiddens: make([][]float32, 0, opt.MaxNewTokens),
	}
	pos := len(prompt)
	logits := res.Logits
	hidden := res.Hidden
	for step := 0; step < opt.MaxNewTokens; step++ {
		var next int
		if opt.Temperature <= 0 {
			next = tensor.Argmax(logits)
		} else {
			copy(ws.probs, logits)
			tensor.SoftmaxTemp(ws.probs, opt.Temperature)
			next = sampleCategorical(r, ws.probs)
		}
		out.Tokens = append(out.Tokens, next)
		out.Hiddens = append(out.Hiddens, append([]float32(nil), hidden...))
		if opt.EOS >= 0 && next == opt.EOS {
			break
		}
		sr := m.ForwardInto(ws, next, pos, cache)
		logits, hidden = sr.Logits, sr.Hidden
		pos++
	}
	return out
}

// sampleCategorical draws from the categorical distribution in probs. It
// consumes the (scratch) buffer in place: probs is read-only here and may be
// overwritten by the caller on the next step.
func sampleCategorical(r *rng.RNG, probs []float32) int {
	u := float32(r.Float64())
	var acc float32
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}
