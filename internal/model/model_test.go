package model

import (
	"math"
	"sync"
	"testing"

	"rethinkkv/internal/kvcache"
)

func TestConfigValidate(t *testing.T) {
	if err := Tiny().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Tiny()
	bad.KVHeads = 3 // 4 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected GQA divisibility error")
	}
	odd := Tiny()
	odd.HeadDim = 15
	if err := odd.Validate(); err == nil {
		t.Fatal("expected even head dim error")
	}
}

func TestFullSizeDescriptors(t *testing.T) {
	cases := []struct {
		cfg         Config
		wantHidden  int
		wantParamsB float64 // rough parameter count in billions
	}{
		{LLaMA2_7B, 4096, 6.7},
		{LLaMA2_13B, 5120, 13.0},
		{LLaMA2_70B, 8192, 69},
		{Mistral7B, 4096, 7.2},
		{LLaMA31_8B, 4096, 8.0},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if c.cfg.Hidden() != c.wantHidden {
			t.Fatalf("%s hidden = %d", c.cfg.Name, c.cfg.Hidden())
		}
		gotB := float64(c.cfg.ParamCount()) / 1e9
		if gotB < c.wantParamsB*0.8 || gotB > c.wantParamsB*1.25 {
			t.Fatalf("%s params = %.2fB, want ≈%.1fB", c.cfg.Name, gotB, c.wantParamsB)
		}
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// LLaMA-2-7B: 32 layers × 4096 kv dim × 2 (K,V) × 2 bytes = 1 MiB/token.
	got := LLaMA2_7B.KVBytesPerTokenFP16()
	if got != 32*4096*2*2 {
		t.Fatalf("kv bytes per token = %d", got)
	}
	// GQA shrinks it: 70B has only 8 KV heads.
	if LLaMA2_70B.KVBytesPerTokenFP16() >= LLaMA2_13B.KVBytesPerTokenFP16()*4 {
		t.Fatal("GQA should bound 70B KV growth")
	}
}

func TestByName(t *testing.T) {
	if c, ok := ByName("mistral-7b"); !ok || c.KVHeads != 8 {
		t.Fatalf("ByName(mistral-7b) = %+v, %v", c, ok)
	}
	if _, ok := ByName("gpt-42"); ok {
		t.Fatal("unknown name should miss")
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := New(Tiny(), 7)
	c1 := kvcache.NewFull(m.CacheShape())
	c2 := kvcache.NewFull(m.CacheShape())
	r1 := m.Prefill([]int{1, 2, 3}, c1)
	r2 := m.Prefill([]int{1, 2, 3}, c2)
	for i := range r1.Logits {
		if r1.Logits[i] != r2.Logits[i] {
			t.Fatal("same seed, same prompt must give identical logits")
		}
	}
}

func TestForwardFiniteLogits(t *testing.T) {
	m := New(Tiny(), 1)
	cache := kvcache.NewFull(m.CacheShape())
	res := m.Prefill([]int{5, 10, 15, 20, 25}, cache)
	if len(res.Logits) != Tiny().Vocab {
		t.Fatalf("logits len = %d", len(res.Logits))
	}
	for i, v := range res.Logits {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("logit %d not finite: %v", i, v)
		}
	}
}

func TestPromptOrderMatters(t *testing.T) {
	m := New(Tiny(), 3)
	cA := kvcache.NewFull(m.CacheShape())
	cB := kvcache.NewFull(m.CacheShape())
	a := m.Prefill([]int{1, 2, 3, 4}, cA)
	b := m.Prefill([]int{4, 3, 2, 1}, cB)
	same := true
	for i := range a.Logits {
		if a.Logits[i] != b.Logits[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("permuted prompt should change output (position encoding)")
	}
}

func TestCacheGrowsOncePerTokenPerLayer(t *testing.T) {
	m := New(Tiny(), 1)
	cache := kvcache.NewFull(m.CacheShape())
	m.Prefill([]int{1, 2, 3, 4, 5, 6}, cache)
	if cache.TotalAppended() != 6 {
		t.Fatalf("appended = %d", cache.TotalAppended())
	}
	for l := 0; l < Tiny().Layers; l++ {
		if cache.Len(l, 0) != 6 {
			t.Fatalf("layer %d len = %d", l, cache.Len(l, 0))
		}
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	m := New(Tiny(), 11)
	g1 := m.Generate([]int{1, 2, 3}, kvcache.NewFull(m.CacheShape()), GenerateOptions{MaxNewTokens: 8, EOS: -1})
	g2 := m.Generate([]int{1, 2, 3}, kvcache.NewFull(m.CacheShape()), GenerateOptions{MaxNewTokens: 8, EOS: -1})
	if len(g1.Tokens) != 8 || len(g2.Tokens) != 8 {
		t.Fatalf("lens = %d, %d", len(g1.Tokens), len(g2.Tokens))
	}
	for i := range g1.Tokens {
		if g1.Tokens[i] != g2.Tokens[i] {
			t.Fatal("greedy generation must be deterministic")
		}
	}
	if len(g1.Hiddens) != len(g1.Tokens) {
		t.Fatal("hiddens not aligned with tokens")
	}
}

func TestGenerateStopsAtEOS(t *testing.T) {
	m := New(Tiny(), 11)
	// Find the greedy first token and use it as EOS so generation must stop
	// after one step.
	cache := kvcache.NewFull(m.CacheShape())
	first := m.Generate([]int{1, 2, 3}, cache, GenerateOptions{MaxNewTokens: 1, EOS: -1}).Tokens[0]
	g := m.Generate([]int{1, 2, 3}, kvcache.NewFull(m.CacheShape()), GenerateOptions{MaxNewTokens: 50, EOS: first})
	if len(g.Tokens) != 1 || g.Tokens[0] != first {
		t.Fatalf("tokens = %v, want immediate EOS %d", g.Tokens, first)
	}
}

func TestGenerateTemperatureVaries(t *testing.T) {
	m := New(Tiny(), 11)
	a := m.Generate([]int{1, 2, 3}, kvcache.NewFull(m.CacheShape()), GenerateOptions{MaxNewTokens: 12, Temperature: 2.0, Seed: 1, EOS: -1})
	b := m.Generate([]int{1, 2, 3}, kvcache.NewFull(m.CacheShape()), GenerateOptions{MaxNewTokens: 12, Temperature: 2.0, Seed: 2, EOS: -1})
	same := len(a.Tokens) == len(b.Tokens)
	if same {
		for i := range a.Tokens {
			if a.Tokens[i] != b.Tokens[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different sampling seeds at high temperature should diverge")
	}
}

func TestGQAAndMHAGiveSameShapes(t *testing.T) {
	for _, cfg := range []Config{Tiny(), TinyMHA()} {
		m := New(cfg, 5)
		cache := kvcache.NewFull(m.CacheShape())
		res := m.Prefill([]int{9, 8, 7}, cache)
		if len(res.Logits) != cfg.Vocab || len(res.Hidden) != cfg.Hidden() {
			t.Fatalf("%s: bad output shapes", cfg.Name)
		}
	}
}

func TestForwardPanicsOnBadToken(t *testing.T) {
	m := New(Tiny(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward(Tiny().Vocab, 0, kvcache.NewFull(m.CacheShape()))
}

func TestForwardPanicsOnCacheShapeMismatch(t *testing.T) {
	m := New(Tiny(), 1)
	bad := kvcache.NewFull(kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward(1, 0, bad)
}

// legacyFull replicates the pre-flat per-token cache layout ([layer][token]
// slice-of-slices, no FlatReader) so the equivalence tests can prove the
// flat layout changes memory organisation without changing a single output
// bit.
type legacyFull struct {
	shape    kvcache.Shape
	keys     [][][]float32 // [layer][token][KVHeads*HeadDim]
	values   [][][]float32
	appended int
}

func newLegacyFull(shape kvcache.Shape) *legacyFull {
	return &legacyFull{
		shape:  shape,
		keys:   make([][][]float32, shape.Layers),
		values: make([][][]float32, shape.Layers),
	}
}

func (c *legacyFull) Shape() kvcache.Shape { return c.shape }

func (c *legacyFull) Append(layer int, k, v [][]float32) {
	flat := func(heads [][]float32) []float32 {
		out := make([]float32, 0, c.shape.KVHeads*c.shape.HeadDim)
		for _, h := range heads {
			out = append(out, h...)
		}
		return out
	}
	c.keys[layer] = append(c.keys[layer], flat(k))
	c.values[layer] = append(c.values[layer], flat(v))
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

func (c *legacyFull) Seq(layer, head int) (keys, values [][]float32) {
	d := c.shape.HeadDim
	off := head * d
	n := len(c.keys[layer])
	keys = make([][]float32, n)
	values = make([][]float32, n)
	for i := 0; i < n; i++ {
		keys[i] = c.keys[layer][i][off : off+d]
		values[i] = c.values[layer][i][off : off+d]
	}
	return keys, values
}

func (c *legacyFull) Positions(layer, head int) []int {
	ps := make([]int, len(c.keys[layer]))
	for i := range ps {
		ps[i] = i
	}
	return ps
}

func (c *legacyFull) Len(layer, head int) int { return len(c.keys[layer]) }
func (c *legacyFull) TotalAppended() int      { return c.appended }
func (c *legacyFull) MemoryBytes() int64 {
	var elems int64
	for l := range c.keys {
		elems += int64(len(c.keys[l])) * int64(c.shape.KVHeads*c.shape.HeadDim) * 2
	}
	return elems * kvcache.BytesPerElemFP16
}

// TestFlatLayoutBitIdentical proves the flat cache (FlatReader fast path)
// and the paged cache (PageReader fast path) produce bit-identical logits,
// hiddens, and greedy token streams to the legacy per-token layout (generic
// Seq path) across a full generation.
func TestFlatLayoutBitIdentical(t *testing.T) {
	for _, cfg := range []Config{Tiny(), TinyMHA()} {
		m := New(cfg, 23)
		prompt := []int{1, 2, 3, 4, 5, 6, 7}
		caches := map[string]kvcache.Cache{
			"legacy": newLegacyFull(m.CacheShape()),
			"flat":   kvcache.NewFull(m.CacheShape()),
			"paged":  kvcache.NewPagedKV(m.CacheShape(), 4),
		}
		results := map[string]GenerateResult{}
		for name, cache := range caches {
			results[name] = m.Generate(prompt, cache, GenerateOptions{MaxNewTokens: 24, EOS: -1})
		}
		ref := results["legacy"]
		for _, name := range []string{"flat", "paged"} {
			got := results[name]
			if len(got.Tokens) != len(ref.Tokens) {
				t.Fatalf("%s/%s: token count %d != %d", cfg.Name, name, len(got.Tokens), len(ref.Tokens))
			}
			for i := range ref.Tokens {
				if got.Tokens[i] != ref.Tokens[i] {
					t.Fatalf("%s/%s: token %d = %d, want %d", cfg.Name, name, i, got.Tokens[i], ref.Tokens[i])
				}
			}
			for i := range ref.Hiddens {
				for j := range ref.Hiddens[i] {
					if got.Hiddens[i][j] != ref.Hiddens[i][j] {
						t.Fatalf("%s/%s: hidden (%d,%d) not bit-identical", cfg.Name, name, i, j)
					}
				}
			}
		}
	}
}

// TestForwardIntoMatchesForward pins the aliasing contract: ForwardInto
// returns workspace-backed slices with the same values Forward copies out.
func TestForwardIntoMatchesForward(t *testing.T) {
	m := New(Tiny(), 3)
	c1 := kvcache.NewFull(m.CacheShape())
	c2 := kvcache.NewFull(m.CacheShape())
	ws := m.NewWorkspace()
	var got, want StepResult
	for i, tok := range []int{9, 8, 7, 6} {
		want = m.Forward(tok, i, c1)
		got = m.ForwardInto(ws, tok, i, c2)
	}
	for i := range want.Logits {
		if got.Logits[i] != want.Logits[i] {
			t.Fatalf("logit %d differs", i)
		}
	}
	for i := range want.Hidden {
		if got.Hidden[i] != want.Hidden[i] {
			t.Fatalf("hidden %d differs", i)
		}
	}
}

// TestForwardIntoZeroAllocs is the hot-path regression gate: steady-state
// decode through ForwardInto must not allocate. The only permitted source is
// the amortised growth of the cache's flat buffers, which averages well
// under one allocation per step.
func TestForwardIntoZeroAllocs(t *testing.T) {
	m := New(Tiny(), 1)
	ws := m.NewWorkspace()
	cache := kvcache.NewFull(m.CacheShape())
	prompt := make([]int, 128)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	m.PrefillInto(ws, prompt, cache)
	pos := cache.TotalAppended()
	avg := testing.AllocsPerRun(100, func() {
		m.ForwardInto(ws, pos%Tiny().Vocab, pos, cache)
		pos++
	})
	if avg >= 1 {
		t.Fatalf("ForwardInto allocates %.2f/step, want amortised < 1", avg)
	}
}

// TestForwardAllocsBounded documents the compatibility cost of Forward: the
// two output copies (logits + hidden) and nothing else.
func TestForwardAllocsBounded(t *testing.T) {
	m := New(Tiny(), 1)
	cache := kvcache.NewFull(m.CacheShape())
	m.Prefill([]int{1, 2, 3, 4}, cache)
	pos := cache.TotalAppended()
	avg := testing.AllocsPerRun(50, func() {
		m.Forward(pos%Tiny().Vocab, pos, cache)
		pos++
	})
	if avg > 3 {
		t.Fatalf("Forward allocates %.2f/step, want ≤ 3 (the documented output copies)", avg)
	}
}

// TestConcurrentWorkspaces proves independent workspaces may decode in
// parallel on one Model with results identical to sequential execution.
func TestConcurrentWorkspaces(t *testing.T) {
	m := New(Tiny(), 31)
	prompts := [][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}
	sequential := make([][]float32, len(prompts))
	for i, p := range prompts {
		res := m.Prefill(p, kvcache.NewFull(m.CacheShape()))
		sequential[i] = res.Logits
	}
	var wg sync.WaitGroup
	parallel := make([][]float32, len(prompts))
	for i, p := range prompts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			ws := m.NewWorkspace()
			res := m.PrefillInto(ws, p, kvcache.NewFull(m.CacheShape()))
			parallel[i] = append([]float32(nil), res.Logits...)
		}(i, p)
	}
	wg.Wait()
	for i := range prompts {
		for j := range sequential[i] {
			if parallel[i][j] != sequential[i][j] {
				t.Fatalf("prompt %d logit %d differs under concurrency", i, j)
			}
		}
	}
}
