package model

import (
	"math"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// equalStep fails the test unless two step results match bit-for-bit.
func equalStep(t *testing.T, label string, got, want StepResult) {
	t.Helper()
	if len(got.Logits) != len(want.Logits) || len(got.Hidden) != len(want.Hidden) {
		t.Fatalf("%s: result shape mismatch", label)
	}
	for j := range want.Logits {
		if math.Float32bits(got.Logits[j]) != math.Float32bits(want.Logits[j]) {
			t.Fatalf("%s: logit %d: %x != %x", label, j,
				math.Float32bits(got.Logits[j]), math.Float32bits(want.Logits[j]))
		}
	}
	for j := range want.Hidden {
		if math.Float32bits(got.Hidden[j]) != math.Float32bits(want.Hidden[j]) {
			t.Fatalf("%s: hidden %d differs", label, j)
		}
	}
}

// equalCaches fails the test unless two caches retain bit-identical K/V.
func equalCaches(t *testing.T, label string, got, want kvcache.Cache) {
	t.Helper()
	if got.TotalAppended() != want.TotalAppended() {
		t.Fatalf("%s: appended %d != %d", label, got.TotalAppended(), want.TotalAppended())
	}
	shape := want.Shape()
	for l := 0; l < shape.Layers; l++ {
		for h := 0; h < shape.KVHeads; h++ {
			gk, gv := got.Seq(l, h)
			wk, wv := want.Seq(l, h)
			if len(gk) != len(wk) {
				t.Fatalf("%s: (%d,%d) len %d != %d", label, l, h, len(gk), len(wk))
			}
			for i := range wk {
				for d := 0; d < shape.HeadDim; d++ {
					if math.Float32bits(gk[i][d]) != math.Float32bits(wk[i][d]) ||
						math.Float32bits(gv[i][d]) != math.Float32bits(wv[i][d]) {
						t.Fatalf("%s: entry (%d,%d,%d,%d) differs", label, l, h, i, d)
					}
				}
			}
		}
	}
}

// TestPrefillChunkIntoBitIdentical pins chunked prefill against
// token-at-a-time PrefillInto bit-for-bit: chunk sizes 1, 3, 8, a
// non-divisor of the prompt length, and one larger than the whole prompt,
// on both flat-storage caches — final logits/hidden, full cache contents,
// and several greedy decode steps on top of the chunk-filled cache.
func TestPrefillChunkIntoBitIdentical(t *testing.T) {
	const promptLen = 23
	m := New(Tiny(), 11)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(0)
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = (i*29 + 7) % m.Config().Vocab
	}
	for _, kind := range batchCacheKinds {
		ref := kind.mk(m)
		want := m.PrefillInto(ws, prompt, ref)
		want = StepResult{
			Logits: append([]float32(nil), want.Logits...),
			Hidden: append([]float32(nil), want.Hidden...),
		}
		wantDecode := make([]int, 6)
		pos := promptLen
		next := tensor.Argmax(want.Logits)
		for s := range wantDecode {
			wantDecode[s] = next
			sr := m.ForwardInto(ws, next, pos, ref)
			next = tensor.Argmax(sr.Logits)
			pos++
		}

		for _, chunkSize := range []int{1, 3, 8, 7, promptLen + 9} {
			cache := kind.mk(m)
			got := m.PrefillChunkInto(bw, prompt, chunkSize, cache)
			equalStep(t, kind.name+" chunk result", got, want)
			// Decode on top of the chunk-filled cache must continue the
			// reference stream exactly.
			pos := promptLen
			next := tensor.Argmax(got.Logits)
			for s, wantTok := range wantDecode {
				if next != wantTok {
					t.Fatalf("%s chunk=%d decode step %d: token %d != %d", kind.name, chunkSize, s, next, wantTok)
				}
				sr := m.ForwardInto(ws, next, pos, cache)
				next = tensor.Argmax(sr.Logits)
				pos++
			}
		}
		// Cache-content identity, checked on a fresh fill (the decode loop
		// above appended beyond the prompt).
		for _, chunkSize := range []int{3, 7} {
			refCache := kind.mk(m)
			m.PrefillInto(ws, prompt, refCache)
			cache := kind.mk(m)
			m.PrefillChunkInto(bw, prompt, chunkSize, cache)
			equalCaches(t, kind.name+" chunked cache", cache, refCache)
		}
	}
}

// TestPrefillChunkIntoOnClonePrefix pins chunked tail prefill on top of a
// copy-on-write ClonePrefix cache: the chunk plane must resume at the
// prefix boundary and stay bit-identical to token-at-a-time tail prefill on
// an identical clone — the shared-prefix admission path the scheduler runs.
func TestPrefillChunkIntoOnClonePrefix(t *testing.T) {
	m := New(Tiny(), 5)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(0)
	prefix := make([]int, 21) // deliberately not page-aligned
	for i := range prefix {
		prefix[i] = (i*13 + 1) % m.Config().Vocab
	}
	tail := []int{9, 42, 3, 77, 5, 8, 101, 2, 60, 31, 4}

	prefixCache := kvcache.NewPagedKV(m.CacheShape(), 8)
	m.PrefillInto(ws, prefix, prefixCache)

	refClone := prefixCache.ClonePrefix()
	var want StepResult
	for i, tok := range tail {
		want = m.ForwardInto(ws, tok, len(prefix)+i, refClone)
	}
	want = StepResult{
		Logits: append([]float32(nil), want.Logits...),
		Hidden: append([]float32(nil), want.Hidden...),
	}

	for _, chunkSize := range []int{1, 4, len(tail), len(tail) + 5} {
		clone := prefixCache.ClonePrefix()
		got := m.PrefillChunkInto(bw, tail, chunkSize, clone)
		equalStep(t, "cow tail", got, want)
		equalCaches(t, "cow cache", clone, refClone)
	}
}

// TestForwardMixedIntoBitIdentical pins the mixed decode+chunk step: B
// decode lanes advance exactly as ForwardBatchInto/ForwardInto would while
// one prompt chunk-prefills through the same fused passes, several
// iterations deep, on Full and PagedKV. Decode logits, the chunk's final
// logits, and the chunk cache must all match the unmixed references
// bit-for-bit.
func TestForwardMixedIntoBitIdentical(t *testing.T) {
	const B = 3
	const chunkSize = 5
	prompt := []int{4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 13, 26, 39, 52, 65, 78} // 17: non-divisor tail
	for _, kind := range batchCacheKinds {
		m := New(Tiny(), 17)
		ws := m.NewWorkspace()
		bw := m.NewBatchWorkspace(B)

		seqCaches := make([]kvcache.Cache, B)
		mixCaches := make([]kvcache.Cache, B)
		tokens := make([]int, B)
		positions := make([]int, B)
		for b := 0; b < B; b++ {
			seqCaches[b] = kind.mk(m)
			mixCaches[b] = kind.mk(m)
			p := prefillLane(m, ws, seqCaches[b], b)
			prefillLane(m, ws, mixCaches[b], b)
			positions[b] = len(p)
			tokens[b] = (b*19 + 2) % m.Config().Vocab
		}
		refChunkCache := kind.mk(m)
		wantChunk := m.PrefillInto(ws, prompt, refChunkCache)
		wantChunk = StepResult{
			Logits: append([]float32(nil), wantChunk.Logits...),
			Hidden: append([]float32(nil), wantChunk.Hidden...),
		}

		mixChunkCache := kind.mk(m)
		var gotChunk StepResult
		for off := 0; off < len(prompt); off += chunkSize {
			end := off + chunkSize
			if end > len(prompt) {
				end = len(prompt)
			}
			// Reference decode step for every lane.
			wantStep := make([]StepResult, B)
			for b := 0; b < B; b++ {
				sr := m.ForwardInto(ws, tokens[b], positions[b], seqCaches[b])
				wantStep[b] = StepResult{
					Logits: append([]float32(nil), sr.Logits...),
					Hidden: append([]float32(nil), sr.Hidden...),
				}
			}
			ch := Chunk{
				Tokens:     prompt[off:end],
				Pos:        off,
				Cache:      mixChunkCache,
				NeedLogits: end == len(prompt),
			}
			results, chunkRes := m.ForwardMixedInto(bw, tokens, positions, mixCaches, []Chunk{ch})
			for b := 0; b < B; b++ {
				equalStep(t, kind.name+" mixed decode lane", results[b], wantStep[b])
				tokens[b] = tensor.Argmax(results[b].Logits)
				positions[b]++
			}
			if ch.NeedLogits {
				gotChunk = chunkRes[0]
			}
		}
		equalStep(t, kind.name+" mixed chunk final", gotChunk, wantChunk)
		equalCaches(t, kind.name+" mixed chunk cache", mixChunkCache, refChunkCache)
		for b := 0; b < B; b++ {
			equalCaches(t, kind.name+" mixed decode cache", mixCaches[b], seqCaches[b])
		}
	}
}

// TestForwardMixedIntoWorkers pins the worker-sharded mixed step (sharded
// GEMMs, lane-sharded decode attention, position-sharded chunk attention)
// to the serial one bit-for-bit.
func TestForwardMixedIntoWorkers(t *testing.T) {
	const B = 4
	prompt := make([]int, 24)
	for i := range prompt {
		prompt[i] = (i*31 + 5) % Tiny().Vocab
	}
	m := New(Tiny(), 23)
	ws := m.NewWorkspace()
	serial := m.NewBatchWorkspace(B)
	parallel := m.NewBatchWorkspace(B)
	parallel.SetWorkers(4)

	mk := func() ([]kvcache.Cache, []int, []int, kvcache.Cache) {
		caches := make([]kvcache.Cache, B)
		tokens := make([]int, B)
		positions := make([]int, B)
		for b := 0; b < B; b++ {
			caches[b] = kvcache.NewPagedKV(m.CacheShape(), 8)
			p := prefillLane(m, ws, caches[b], b)
			positions[b] = len(p)
			tokens[b] = (b * 41) % m.Config().Vocab
		}
		return caches, tokens, positions, kvcache.NewPagedKV(m.CacheShape(), 8)
	}
	sc, st, sp, sChunk := mk()
	pc, pt, pp, pChunk := mk()
	for off := 0; off < len(prompt); off += 8 {
		ch := Chunk{Tokens: prompt[off : off+8], Pos: off, Cache: sChunk, NeedLogits: off+8 == len(prompt)}
		wantRes, wantChunkRes := m.ForwardMixedInto(serial, st, sp, sc, []Chunk{ch})
		want := make([]StepResult, B)
		for b := range wantRes {
			want[b] = StepResult{
				Logits: append([]float32(nil), wantRes[b].Logits...),
				Hidden: append([]float32(nil), wantRes[b].Hidden...),
			}
		}
		wantChunk := StepResult{
			Logits: append([]float32(nil), wantChunkRes[0].Logits...),
			Hidden: append([]float32(nil), wantChunkRes[0].Hidden...),
		}
		ch.Cache = pChunk
		gotRes, gotChunk := m.ForwardMixedInto(parallel, pt, pp, pc, []Chunk{ch})
		for b := 0; b < B; b++ {
			equalStep(t, "workers decode lane", gotRes[b], want[b])
			st[b] = tensor.Argmax(want[b].Logits)
			pt[b] = st[b]
			sp[b]++
			pp[b]++
		}
		if ch.NeedLogits {
			equalStep(t, "workers chunk final", gotChunk[0], wantChunk)
		}
	}
	equalCaches(t, "workers chunk cache", pChunk, sChunk)
}

// TestForwardMixedIntoAllocFree pins the mixed decode+chunk iteration at
// zero steady-state heap allocations (serial workers): the chunk staging
// span, gather views, and per-lane scratch are all reused. Pages are large
// enough that cache growth cannot blur the measurement.
func TestForwardMixedIntoAllocFree(t *testing.T) {
	const B = 8
	const C = 8
	m := New(Tiny(), 7)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(B + C)
	caches := make([]kvcache.Cache, B)
	tokens := make([]int, B)
	positions := make([]int, B)
	for b := 0; b < B; b++ {
		caches[b] = kvcache.NewPagedKV(m.CacheShape(), 4096)
		prompt := prefillLane(m, ws, caches[b], b)
		positions[b] = len(prompt)
		tokens[b] = b % m.Config().Vocab
	}
	chunkCache := kvcache.NewPagedKV(m.CacheShape(), 4096)
	chunkTokens := make([]int, C)
	pos := 0
	chs := make([]Chunk, 1)
	step := func() {
		chs[0] = Chunk{Tokens: chunkTokens, Pos: pos, Cache: chunkCache, NeedLogits: true}
		m.ForwardMixedInto(bw, tokens, positions, caches, chs)
		pos += C
		for b := 0; b < B; b++ {
			positions[b]++
		}
	}
	step() // warm: lanes, chunk staging, score buffers, first pages
	if n := testing.AllocsPerRun(30, step); n != 0 {
		t.Fatalf("mixed decode+chunk step allocated %v per run", n)
	}
}

// TestForwardMixedPackedAllocFree pins the budget-packed mixed pass — B
// decode lanes plus chunks from K distinct prompts in one fused iteration —
// at zero steady-state heap allocations (serial workers): the shared chunk
// staging span, the per-chunk path/result slots, and the LM-head gather are
// all reused across passes.
func TestForwardMixedPackedAllocFree(t *testing.T) {
	const B = 4
	const K = 3
	const C = 5 // tokens per packed chunk
	m := New(Tiny(), 7)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(B + K*C)
	caches := make([]kvcache.Cache, B)
	tokens := make([]int, B)
	positions := make([]int, B)
	for b := 0; b < B; b++ {
		caches[b] = kvcache.NewPagedKV(m.CacheShape(), 4096)
		prompt := prefillLane(m, ws, caches[b], b)
		positions[b] = len(prompt)
		tokens[b] = b % m.Config().Vocab
	}
	chunkCaches := make([]*kvcache.PagedKV, K)
	for j := range chunkCaches {
		chunkCaches[j] = kvcache.NewPagedKV(m.CacheShape(), 4096)
	}
	chunkTokens := make([]int, C)
	pos := 0
	chs := make([]Chunk, K)
	step := func() {
		for j := range chs {
			chs[j] = Chunk{Tokens: chunkTokens, Pos: pos, Cache: chunkCaches[j], NeedLogits: true}
		}
		m.ForwardMixedInto(bw, tokens, positions, caches, chs)
		pos += C
		for b := 0; b < B; b++ {
			positions[b]++
		}
	}
	step() // warm: lanes, packed staging, per-chunk slots, first pages
	if n := testing.AllocsPerRun(30, step); n != 0 {
		t.Fatalf("packed mixed step allocated %v per run", n)
	}
}

// TestForwardMixedIntoValidation covers the chunk-side contract panics.
func TestForwardMixedIntoValidation(t *testing.T) {
	m := New(Tiny(), 1)
	bw := m.NewBatchWorkspace(1)
	cache := kvcache.NewFull(m.CacheShape())

	assertPanics(t, "empty chunk", func() {
		m.ForwardMixedInto(bw, nil, nil, nil, []Chunk{{Cache: cache}})
	})
	assertPanics(t, "position mismatch", func() {
		m.ForwardMixedInto(bw, nil, nil, nil, []Chunk{{Tokens: []int{1}, Pos: 3, Cache: cache}})
	})
	assertPanics(t, "chunk cache shape", func() {
		bad := kvcache.NewFull(kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 2})
		m.ForwardMixedInto(bw, nil, nil, nil, []Chunk{{Tokens: []int{1}, Cache: bad}})
	})
	assertPanics(t, "chunk token range", func() {
		m.ForwardMixedInto(bw, nil, nil, nil, []Chunk{{Tokens: []int{-1}, Cache: cache}})
	})
	assertPanics(t, "shared chunk cache", func() {
		m.ForwardMixedInto(bw, nil, nil, nil, []Chunk{
			{Tokens: []int{1}, Cache: cache},
			{Tokens: []int{2}, Pos: 1, Cache: cache},
		})
	})
	assertPanics(t, "empty prompt", func() {
		m.PrefillChunkInto(bw, nil, 4, cache)
	})
}

// TestForwardMixedPackedBitIdentical pins the packed mixed pass: chunks
// from K distinct prompts advance through one fused iteration alongside a
// decode batch, and every stream — each packed prompt's cache and final
// logits, each decode lane — must be bit-identical to its own unpacked
// sequential reference. Prompts have different lengths so later iterations
// carry fewer chunks (the budget-draining shape the scheduler produces).
func TestForwardMixedPackedBitIdentical(t *testing.T) {
	const B = 2
	const chunkSize = 4
	prompts := [][]int{
		make([]int, 11),
		make([]int, 17),
		make([]int, 6),
	}
	for j := range prompts {
		for i := range prompts[j] {
			prompts[j][i] = (i*29 + j*13 + 7) % Tiny().Vocab
		}
	}
	for _, kind := range batchCacheKinds {
		m := New(Tiny(), 17)
		ws := m.NewWorkspace()
		bw := m.NewBatchWorkspace(B)

		seqCaches := make([]kvcache.Cache, B)
		mixCaches := make([]kvcache.Cache, B)
		tokens := make([]int, B)
		positions := make([]int, B)
		for b := 0; b < B; b++ {
			seqCaches[b] = kind.mk(m)
			mixCaches[b] = kind.mk(m)
			p := prefillLane(m, ws, seqCaches[b], b)
			prefillLane(m, ws, mixCaches[b], b)
			positions[b] = len(p)
			tokens[b] = (b*19 + 2) % m.Config().Vocab
		}
		refCaches := make([]kvcache.Cache, len(prompts))
		wantFinal := make([]StepResult, len(prompts))
		for j, prompt := range prompts {
			refCaches[j] = kind.mk(m)
			sr := m.PrefillInto(ws, prompt, refCaches[j])
			wantFinal[j] = StepResult{
				Logits: append([]float32(nil), sr.Logits...),
				Hidden: append([]float32(nil), sr.Hidden...),
			}
		}

		packCaches := make([]kvcache.Cache, len(prompts))
		for j := range packCaches {
			packCaches[j] = kind.mk(m)
		}
		gotFinal := make([]StepResult, len(prompts))
		var chs []Chunk
		for off := 0; ; off += chunkSize {
			chs = chs[:0]
			idx := make([]int, 0, len(prompts))
			for j, prompt := range prompts {
				if off >= len(prompt) {
					continue
				}
				end := off + chunkSize
				if end > len(prompt) {
					end = len(prompt)
				}
				chs = append(chs, Chunk{
					Tokens:     prompt[off:end],
					Pos:        off,
					Cache:      packCaches[j],
					NeedLogits: end == len(prompt),
				})
				idx = append(idx, j)
			}
			if len(chs) == 0 {
				break
			}
			// Reference decode step for every lane.
			wantStep := make([]StepResult, B)
			for b := 0; b < B; b++ {
				sr := m.ForwardInto(ws, tokens[b], positions[b], seqCaches[b])
				wantStep[b] = StepResult{
					Logits: append([]float32(nil), sr.Logits...),
					Hidden: append([]float32(nil), sr.Hidden...),
				}
			}
			results, chunkRes := m.ForwardMixedInto(bw, tokens, positions, mixCaches, chs)
			for b := 0; b < B; b++ {
				equalStep(t, kind.name+" packed decode lane", results[b], wantStep[b])
				tokens[b] = tensor.Argmax(results[b].Logits)
				positions[b]++
			}
			for c, j := range idx {
				if chs[c].NeedLogits {
					gotFinal[j] = StepResult{
						Logits: append([]float32(nil), chunkRes[c].Logits...),
						Hidden: append([]float32(nil), chunkRes[c].Hidden...),
					}
				}
			}
		}
		for j := range prompts {
			equalStep(t, kind.name+" packed chunk final", gotFinal[j], wantFinal[j])
			equalCaches(t, kind.name+" packed chunk cache", packCaches[j], refCaches[j])
		}
		for b := 0; b < B; b++ {
			equalCaches(t, kind.name+" packed decode cache", mixCaches[b], seqCaches[b])
		}
	}
}
