package model

import (
	"fmt"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// This file is the chunk-granular prefill plane: a prompt advances C
// positions per fused pass instead of one ForwardInto per token, and the
// same pass can carry a running decode batch plus chunks from *several*
// prompts at once, so a scheduler can pack a per-iteration token budget
// with prefill work from every admitted prompt without stalling the decode
// streams (Sarathi/Orca-style stall-free chunked prefill).
//
// Layer-synchronous chunking is exact, not approximate: within a layer,
// position p's attention reads the K/V of positions 0..p at that layer,
// which a chunk pass has just computed from the same layer-(l-1) residuals
// a token-at-a-time pass would have used. Chunks from distinct prompts
// write distinct caches, so packing them into one pass changes nothing
// about what any position attends over. Combined with the per-lane
// bit-identical batched GEMMs (see gemm.go) and the shared attention
// arithmetic (attendOver), a chunked prefill is bit-identical to
// PrefillInto for any chunk size and any packing — pinned by
// prefill_test.go.

// Chunk describes one contiguous span of prompt positions advanced through
// the fused plane in a single pass. The cache must already hold exactly Pos
// tokens (0 for a cold start; a ClonePrefix prefix or earlier chunks
// otherwise) and must retain every position (Full, PagedKV): chunk
// attention addresses the causal prefix by absolute position.
type Chunk struct {
	// Tokens is the span's token ids, non-empty.
	Tokens []int
	// Pos is the absolute position of Tokens[0].
	Pos int
	// Cache receives the span's K/V; distinct from every decode lane's and
	// from every other chunk's in the same pass.
	Cache kvcache.Cache
	// NeedLogits requests the last position's logits — set on the prompt's
	// final chunk, where they decide the first decoded token. Intermediate
	// chunks skip the LM head entirely (the cache state they leave behind
	// is all that matters), which also skips the one per-token cost
	// PrefillInto pays without using.
	NeedLogits bool
}

// ForwardMixedInto is ForwardBatchInto plus any number of prefill chunks
// from distinct prompts in the same fused pass: decode stream b forwards
// tokens[b] at positions[b] against caches[b] exactly as in
// ForwardBatchInto, and chunk j advances len(chunks[j].Tokens) positions of
// its own prompt, all sharing a single weight-stationary pass per layer —
// each projection matrix is loaded once for B decode lanes plus ΣC chunk
// positions. Attention stays per-stream: decode lanes attend over their own
// caches, each chunk's positions causally over that chunk's own cache, so
// chunks must carry pairwise-distinct caches.
//
// Per decode lane the outputs are bit-identical to ForwardInto; each
// chunk's cache writes (and final logits, when requested) are bit-identical
// to token-at-a-time PrefillInto over the same span, regardless of what
// else shares the pass. The second return value holds one StepResult per
// chunk, index-aligned (zero unless that chunk's NeedLogits is set).
// Results alias bw and are valid until the next call; steady-state mixed
// stepping performs zero heap allocations (Workers == 1) beyond cache page
// growth.
func (m *Model) ForwardMixedInto(bw *BatchWorkspace, tokens, positions []int, caches []kvcache.Cache, chunks []Chunk) ([]StepResult, []StepResult) {
	B := len(tokens)
	if len(positions) != B || len(caches) != B {
		panic("model: batch length mismatch")
	}
	if bw.m != m {
		panic("model: batch workspace belongs to a different model")
	}
	want := m.CacheShape()
	K := len(chunks)
	C := 0
	for j := 0; j < K; j++ {
		ch := &chunks[j]
		if len(ch.Tokens) == 0 {
			panic("model: empty prefill chunk")
		}
		if got := ch.Cache.Shape(); got != want {
			panic(fmt.Sprintf("model: chunk cache shape %+v does not match model %+v", got, want))
		}
		if held := ch.Cache.TotalAppended(); held != ch.Pos {
			panic(fmt.Sprintf("model: chunk cache holds %d tokens, chunk starts at %d", held, ch.Pos))
		}
		for i := 0; i < j; i++ {
			if chunks[i].Cache == ch.Cache {
				panic("model: packed chunks share a cache")
			}
		}
		C += len(ch.Tokens)
	}
	bw.ensureChunkSlots(K)
	for j := 0; j < K; j++ {
		bw.chunkPaths[j] = pathOf(chunks[j].Cache)
	}
	n := B + C
	if n == 0 {
		return nil, nil
	}
	bw.EnsureLanes(n)
	bw.ensureChunk(C)
	for b := 0; b < B; b++ {
		tok := tokens[b]
		if tok < 0 || tok >= m.cfg.Vocab {
			panic(fmt.Sprintf("model: token %d out of range", tok))
		}
		if got := caches[b].Shape(); got != want {
			panic(fmt.Sprintf("model: cache shape %+v does not match model %+v", got, want))
		}
		bw.paths[b] = pathOf(caches[b])
		ws := bw.lanes[b]
		copy(ws.h, m.embed.Row(tok))
		tensor.RoPESincosInto(ws.ropeSin, ws.ropeCos, m.ropeFreqs, positions[b])
	}
	row := B
	for j := 0; j < K; j++ {
		ch := &chunks[j]
		for i, tok := range ch.Tokens {
			if tok < 0 || tok >= m.cfg.Vocab {
				panic(fmt.Sprintf("model: token %d out of range", tok))
			}
			ws := bw.lanes[row]
			copy(ws.h, m.embed.Row(tok))
			tensor.RoPESincosInto(ws.ropeSin, ws.ropeCos, m.ropeFreqs, ch.Pos+i)
			row++
		}
	}

	hs, xs, qs := bw.hs[:n], bw.xs[:n], bw.qs[:n]
	attnOuts, projs := bw.attnOuts[:n], bw.projs[:n]
	gates, ups, downs := bw.gates[:n], bw.ups[:n], bw.downs[:n]

	// K/V projection destinations: decode lanes keep their per-lane
	// buffers; chunk positions write straight into the contiguous staging
	// span — chunk j owns staging tokens [off_j, off_j+C_j) — so every
	// chunk appends without a gather copy.
	ks, vs := bw.ks[:n], bw.vs[:n]
	if C > 0 {
		ks = append(bw.mixKs[:0], bw.ks[:B]...)
		vs = append(bw.mixVs[:0], bw.vs[:B]...)
		ks = append(ks, bw.ckTok[:C]...)
		vs = append(vs, bw.cvTok[:C]...)
		bw.mixKs, bw.mixVs = ks, vs
	}

	for l := range m.layers {
		lw := &m.layers[l]
		tensor.RMSNormRowsInto(xs, hs, lw.attnNorm, 1e-5)
		bw.project(qs, xs, lw.wq, lw.wqT)
		bw.project(ks, xs, lw.wk, lw.wkT)
		bw.project(vs, xs, lw.wv, lw.wvT)
		bw.attend(l, B)
		off := 0
		for j := 0; j < K; j++ {
			cj := len(chunks[j].Tokens)
			m.attendChunk(bw, &bw.chunkPaths[j], l, B+off, off, cj, chunks[j].Pos)
			off += cj
		}
		bw.project(projs, attnOuts, lw.wo, lw.woT)
		for b := 0; b < n; b++ {
			tensor.AXPY(hs[b], 1, projs[b])
		}
		tensor.RMSNormRowsInto(xs, hs, lw.ffnNorm, 1e-5)
		bw.project(gates, xs, lw.wGate, lw.wGateT)
		bw.project(ups, xs, lw.wUp, lw.wUpT)
		for b := 0; b < n; b++ {
			siluMul(gates[b], ups[b])
		}
		bw.project(downs, gates, lw.wDown, lw.wDownT)
		for b := 0; b < n; b++ {
			tensor.AXPY(hs[b], 1, downs[b])
		}
	}

	// Final norm is lane-local and cheap, so it runs for every row; the LM
	// head (Vocab × Hidden per row) runs only for the rows whose logits
	// anyone reads: the decode lanes, plus each chunk's last position when
	// its caller asked for it.
	finals := bw.finals[:n]
	tensor.RMSNormRowsInto(finals, hs, m.norm, 1e-5)
	needAny := false
	for j := 0; j < K; j++ {
		if chunks[j].NeedLogits {
			needAny = true
			break
		}
	}
	lmF, lmL := bw.finals[:B], bw.logits[:B]
	if needAny {
		lmF = append(bw.lmFinals[:0], bw.finals[:B]...)
		lmL = append(bw.lmLogits[:0], bw.logits[:B]...)
		end := B
		for j := 0; j < K; j++ {
			end += len(chunks[j].Tokens)
			if chunks[j].NeedLogits {
				lmF = append(lmF, bw.finals[end-1])
				lmL = append(lmL, bw.logits[end-1])
			}
		}
		bw.lmFinals, bw.lmLogits = lmF, lmL
	}
	bw.lmHead(lmL, lmF)

	for b := 0; b < B; b++ {
		bw.results[b] = StepResult{Logits: bw.logits[b], Hidden: bw.finals[b]}
		// Drop the cache references: a parked (pooled) batch workspace
		// must not pin retired streams' KV memory.
		bw.paths[b] = cachePath{}
	}
	end := B
	for j := 0; j < K; j++ {
		end += len(chunks[j].Tokens)
		if chunks[j].NeedLogits {
			bw.chunkResults[j] = StepResult{Logits: bw.logits[end-1], Hidden: bw.finals[end-1]}
		} else {
			bw.chunkResults[j] = StepResult{}
		}
		bw.chunkPaths[j] = cachePath{}
	}
	return bw.results[:B], bw.chunkResults[:K]
}

// PrefillChunkInto prefills prompt into cache through the fused plane,
// chunkSize positions per pass (chunkSize <= 0, or larger than the prompt,
// means a single pass). The cache may already hold tokens — a ClonePrefix
// prefix, or earlier chunks — and must retain every position (Full,
// PagedKV); the prompt lands after them. Cache contents and the returned
// last-position result are bit-identical to PrefillInto of the same tokens,
// for every chunk size; the result aliases bw like ForwardBatchInto's.
func (m *Model) PrefillChunkInto(bw *BatchWorkspace, prompt []int, chunkSize int, cache kvcache.Cache) StepResult {
	if len(prompt) == 0 {
		panic("model: empty prompt")
	}
	if chunkSize <= 0 {
		chunkSize = len(prompt)
	}
	base := cache.TotalAppended()
	var chs [1]Chunk
	var res StepResult
	for off := 0; off < len(prompt); off += chunkSize {
		end := off + chunkSize
		if end > len(prompt) {
			end = len(prompt)
		}
		chs[0] = Chunk{
			Tokens:     prompt[off:end],
			Pos:        base + off,
			Cache:      cache,
			NeedLogits: end == len(prompt),
		}
		_, cres := m.ForwardMixedInto(bw, nil, nil, nil, chs[:])
		res = cres[0]
		chs[0] = Chunk{}
	}
	return res
}

// ensureChunk grows the contiguous chunk staging buffers to at least c
// positions, rebuilding the per-token (and per-head fallback) views.
func (bw *BatchWorkspace) ensureChunk(c int) {
	if c <= bw.chunkCap {
		return
	}
	cfg := bw.m.cfg
	hd := cfg.HeadDim
	stride := cfg.KVDim()
	bw.ck = make([]float32, c*stride)
	bw.cv = make([]float32, c*stride)
	bw.ckTok = make([][]float32, c)
	bw.cvTok = make([][]float32, c)
	bw.ckHeads = make([][][]float32, c)
	bw.cvHeads = make([][][]float32, c)
	for i := 0; i < c; i++ {
		bw.ckTok[i] = bw.ck[i*stride : (i+1)*stride]
		bw.cvTok[i] = bw.cv[i*stride : (i+1)*stride]
		bw.ckHeads[i] = make([][]float32, cfg.KVHeads)
		bw.cvHeads[i] = make([][]float32, cfg.KVHeads)
		for kh := 0; kh < cfg.KVHeads; kh++ {
			bw.ckHeads[i][kh] = bw.ckTok[i][kh*hd : (kh+1)*hd]
			bw.cvHeads[i][kh] = bw.cvTok[i][kh*hd : (kh+1)*hd]
		}
	}
	bw.chunkCap = c
}

// attendChunk runs one layer's attention for a prefill chunk occupying
// lanes [base, base+C) and staging tokens [tokOff, tokOff+C): RoPE the
// chunk's keys in place inside its staging span, land all C tokens' K/V in
// the cache — one AppendFlatN when the cache supports it, else per-token
// appends of the same bytes — then accumulate each position's causally
// bounded attention: position Pos+i attends over the first Pos+i+1 entries
// of this chunk's own cache, exactly the set a token-at-a-time prefill
// would have seen. Positions are independent once the K/V are cached, so
// attention lane-shards across workers like decode.
func (m *Model) attendChunk(bw *BatchWorkspace, cp *cachePath, l, base, tokOff, C, pos int) {
	cfg := m.cfg
	hd := cfg.HeadDim
	stride := cfg.KVDim()
	for i := 0; i < C; i++ {
		ws := bw.lanes[base+i]
		off := (tokOff + i) * stride
		for kh := 0; kh < cfg.KVHeads; kh++ {
			tensor.ApplyRoPECached(bw.ck[off+kh*hd:off+(kh+1)*hd], ws.ropeSin, ws.ropeCos)
		}
	}
	switch {
	case cp.batch != nil:
		cp.batch.AppendFlatN(l, C, bw.ck[tokOff*stride:(tokOff+C)*stride], bw.cv[tokOff*stride:(tokOff+C)*stride])
	case cp.appender != nil:
		for i := 0; i < C; i++ {
			cp.appender.AppendFlat(l, bw.ckTok[tokOff+i], bw.cvTok[tokOff+i])
		}
	default:
		for i := 0; i < C; i++ {
			cp.cache.Append(l, bw.ckHeads[tokOff+i], bw.cvHeads[tokOff+i])
		}
	}
	shards := bw.workers
	if shards > C {
		shards = C
	}
	if shards <= 1 {
		for i := 0; i < C; i++ {
			m.attendOver(bw.lanes[base+i], cp, l, pos+i+1)
		}
		return
	}
	runShards(shards, C, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.attendOver(bw.lanes[base+i], cp, l, pos+i+1)
		}
	})
}
