package model

import (
	"fmt"

	"rethinkkv/internal/attention"
	"rethinkkv/internal/tensor"
)

// This file is Quest sparse attention on the model's decode path. When
// SetSparseTopK enables it and the cache maintains key summaries
// (kvcache.KeySummaryReader), each query head scores every resident page's
// summary with the Quest criticality bound, selects the topK pages (tail
// always included) via the exact policy the attention package's live kernels
// use, and runs the model's ordinary materialized score/softmax/accumulate
// arithmetic over only the selected pages. Reusing the materialized plane —
// not the online-softmax kernels — is what keeps sparse decode bit-identical
// to dense attendOver whenever every page is selected (topK >= pages): the
// selection is ascending, so the streamed token order, and therefore every
// reduction order, is exactly the dense walk's.
//
// Sparsity applies only to decode (limit < 0). Chunked prefill keeps the
// dense walk: its causal bound addresses by position, and prefill is where
// the summaries are built in the first place.

// SetSparseTopK enables (k > 0) or disables (k == 0) Quest sparse decode
// attention. Decode steps on caches without key summaries, and all prefill,
// stay dense regardless. Must not be called while decoding is in flight;
// the scheduler sets it once at engine construction.
func (m *Model) SetSparseTopK(k int) {
	if k < 0 {
		panic(fmt.Sprintf("model: negative sparse topK %d", k))
	}
	m.sparseTopK = k
}

// SparseTopK reports the configured sparse page budget (0 = dense).
func (m *Model) SparseTopK() int { return m.sparseTopK }

// sparseScratch returns score and selection buffers covering np pages,
// growing the workspace's backing arrays geometrically.
func (ws *Workspace) sparseScratch(np int) ([]float64, []int32) {
	if cap(ws.pageScores) < np {
		n := 2 * cap(ws.pageScores)
		if n < np {
			n = np
		}
		ws.pageScores = make([]float64, n)
		ws.pageSel = make([]int32, n)
	}
	return ws.pageScores[:np], ws.pageSel[:np]
}

// TakeSparseStats returns and resets the workspace's pages-selected /
// pages-resident counters, accumulated per (layer, query head) sparse
// attention. Both are zero when sparsity never engaged (dense decode,
// prefill, or fewer pages than topK).
func (ws *Workspace) TakeSparseStats() (selected, total int64) {
	selected, total = ws.sparseSel, ws.sparseTot
	ws.sparseSel, ws.sparseTot = 0, 0
	return selected, total
}

// SetRecallProbe toggles the attention-mass recall probe on this workspace.
// While on, every sparse attention also runs the dense softmax and records
// the selected pages' share of the true attention mass — diagnostic only,
// the probe allocates per step.
func (ws *Workspace) SetRecallProbe(on bool) { ws.probeRecall = on }

// TakeRecall returns and resets the probe's accumulated attention-mass
// recall: the sum over probed attentions of the selected pages' softmax
// mass, and the number of probed attentions (mean recall = mass/count).
func (ws *Workspace) TakeRecall() (mass float64, count int64) {
	mass, count = ws.recallMass, ws.recallCnt
	ws.recallMass, ws.recallCnt = 0, 0
	return mass, count
}

// TakeSparseStats drains every lane's counters and returns the sums.
func (bw *BatchWorkspace) TakeSparseStats() (selected, total int64) {
	for _, ws := range bw.lanes {
		s, t := ws.TakeSparseStats()
		selected += s
		total += t
	}
	return selected, total
}

// attendPagedSparse runs one head's sparse attention over an fp32 paged
// cache; it reports false when the dense walk should run instead (sparsity
// off, no summaries, an attention observer needs full scores, or every page
// would be selected anyway — the dense walk is then bit-identical and
// cheaper). n is the head's retained token count; out accumulates the head's
// output.
func (m *Model) attendPagedSparse(ws *Workspace, cp *cachePath, l, kh, n int, out []float32) bool {
	topK := m.sparseTopK
	if topK <= 0 || cp.summ == nil || cp.observer != nil {
		return false
	}
	kps, vps, stride := cp.pager.KVPages(l)
	np := len(kps)
	if np <= topK {
		if np > 0 {
			ws.sparseSel += int64(np)
			ws.sparseTot += int64(np)
		}
		return false
	}
	hd := m.cfg.HeadDim
	off := kh * hd
	summs := cp.summ.KeySummaries(l)
	scores64, sel := ws.sparseScratch(np)
	for p := 0; p < np; p++ {
		scores64[p] = attention.CriticalityStrided(ws.qv, summs[p], off, stride)
	}
	nSel := attention.SelectTopPages(sel, scores64, topK)

	scores := ws.scoresFor(n)
	i := 0
	for _, pi := range sel[:nSel] {
		kp := kps[pi]
		t := len(kp) / stride
		tensor.DotStrided(scores[i:i+t], ws.qv, kp[off:], stride)
		i += t
	}
	scores = scores[:i]
	tensor.Scale(scores, m.invSqrtHD)
	tensor.Softmax(scores)
	i = 0
	for _, pi := range sel[:nSel] {
		vp := vps[pi]
		t := len(vp) / stride
		tensor.AXPYStrided(out, scores[i:i+t], vp[off:], stride)
		i += t
	}
	ws.sparseSel += int64(nSel)
	ws.sparseTot += int64(np)
	if ws.probeRecall {
		dense := make([]float32, n)
		i := 0
		for p := 0; p < np && i < n; p++ {
			t := len(kps[p]) / stride
			if i+t > n {
				t = n - i
			}
			tensor.DotStrided(dense[i:i+t], ws.qv, kps[p][off:], stride)
			i += t
		}
		ws.recordRecall(dense, kps, stride, sel[:nSel], m.invSqrtHD)
	}
	return true
}

// attendQuantSparse is attendPagedSparse for quantized paged caches: the
// summaries were folded over dequantized keys, so the criticality bound
// covers exactly what the fused dequantize-on-stream kernels read.
func (m *Model) attendQuantSparse(ws *Workspace, cp *cachePath, l, kh, n int, out []float32) bool {
	topK := m.sparseTopK
	if topK <= 0 || cp.summ == nil || cp.observer != nil {
		return false
	}
	pages, stride := cp.quant.QuantPages(l)
	np := len(pages)
	if np <= topK {
		if np > 0 {
			ws.sparseSel += int64(np)
			ws.sparseTot += int64(np)
		}
		return false
	}
	hd := m.cfg.HeadDim
	kvh := m.cfg.KVHeads
	off := kh * hd
	bits := cp.quant.QuantBits()
	summs := cp.summ.KeySummaries(l)
	scores64, sel := ws.sparseScratch(np)
	for p := 0; p < np; p++ {
		scores64[p] = attention.CriticalityStrided(ws.qv, summs[p], off, stride)
	}
	nSel := attention.SelectTopPages(sel, scores64, topK)

	scores := ws.scoresFor(n)
	i := 0
	for _, pi := range sel[:nSel] {
		pg := &pages[pi]
		t := pg.Tokens(kvh)
		tensor.DotQuantStrided(scores[i:i+t], ws.qv, pg.KCodes, pg.KParams, bits, off, stride, kvh, kh)
		i += t
	}
	scores = scores[:i]
	tensor.Scale(scores, m.invSqrtHD)
	tensor.Softmax(scores)
	i = 0
	for _, pi := range sel[:nSel] {
		pg := &pages[pi]
		t := pg.Tokens(kvh)
		tensor.AXPYQuantStrided(out, scores[i:i+t], pg.VCodes, pg.VParams, bits, off, stride, kvh, kh)
		i += t
	}
	ws.sparseSel += int64(nSel)
	ws.sparseTot += int64(np)
	if ws.probeRecall {
		dense := make([]float32, n)
		tok := make([]int, np)
		i := 0
		for p := 0; p < np && i < n; p++ {
			t := pages[p].Tokens(kvh)
			if i+t > n {
				t = n - i
			}
			tensor.DotQuantStrided(dense[i:i+t], ws.qv, pages[p].KCodes, pages[p].KParams, bits, off, stride, kvh, kh)
			tok[p] = t
			i += t
		}
		ws.recordRecallTok(dense, tok, sel[:nSel], m.invSqrtHD)
	}
	return true
}

// recordRecall runs the dense softmax over the probe's raw scores and
// accumulates the selected pages' mass. dense holds every retained token's
// unscaled q·k score in page order; kps/stride give each page's token count.
func (ws *Workspace) recordRecall(dense []float32, kps [][]float32, stride int, sel []int32, scale float32) {
	tok := make([]int, len(kps))
	for p := range kps {
		tok[p] = len(kps[p]) / stride
	}
	ws.recordRecallTok(dense, tok, sel, scale)
}

// recordRecallTok is recordRecall over explicit per-page token counts. The
// caller passes raw q·k scores; the probe applies the same 1/sqrt(d) scale
// the real path does before its softmax.
func (ws *Workspace) recordRecallTok(dense []float32, tok []int, sel []int32, scale float32) {
	tensor.Scale(dense, scale)
	tensor.Softmax(dense)
	var mass float64
	i, s := 0, 0
	for p, t := range tok {
		if s < len(sel) && sel[s] == int32(p) {
			for _, w := range dense[i : i+t] {
				mass += float64(w)
			}
			s++
		}
		i += t
	}
	ws.recallMass += mass
	ws.recallCnt++
}
