package model

import (
	"fmt"
	"runtime"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

func BenchmarkPrefill256(b *testing.B) {
	m := New(Tiny(), 1)
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prefill(prompt, kvcache.NewFull(m.CacheShape()))
	}
}

// BenchmarkPrefillChunked256 prefills the same 256-token prompt through
// the fused chunk plane (32 positions per pass) — same cache contents and
// final logits as BenchmarkPrefill256, with the projection GEMMs batched
// across prompt positions instead of one VecMat per token.
func BenchmarkPrefillChunked256(b *testing.B) {
	m := New(Tiny(), 1)
	bw := m.NewBatchWorkspace(0)
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PrefillChunkInto(bw, prompt, 32, kvcache.NewFull(m.CacheShape()))
	}
}

func BenchmarkDecodeStep(b *testing.B) {
	m := New(Tiny(), 1)
	cache := kvcache.NewFull(m.CacheShape())
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	m.Prefill(prompt, cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(i%Tiny().Vocab, 256+i, cache)
	}
}

// BenchmarkDecodeSteady measures the steady-state decode hot path: a
// workspace-driven ForwardInto over a flat cache, with the context length
// held inside [256, 512) so the cost per step does not depend on b.N (unlike
// BenchmarkDecodeStep, whose cache grows for the whole run). The cache
// rebuild every 256 steps happens off the clock.
func BenchmarkDecodeSteady(b *testing.B) {
	m := New(Tiny(), 1)
	ws := m.NewWorkspace()
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	cache := kvcache.NewFull(m.CacheShape())
	m.PrefillInto(ws, prompt, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cache.TotalAppended() >= 512 {
			b.StopTimer()
			cache = kvcache.NewFull(m.CacheShape())
			m.PrefillInto(ws, prompt, cache)
			b.StartTimer()
		}
		m.ForwardInto(ws, i%Tiny().Vocab, cache.TotalAppended(), cache)
	}
}

// Batched steady-state decode: 8 concurrent streams, context held in
// [64, 128) per stream — the short-to-mid context regime where weight
// streaming dominates a decode step, which is the regime batched serving
// amortizes. Each benchmark iteration advances all 8 streams one token;
// aggregate tokens/s = 8e9 / ns_per_op. The *Sequential twins run the
// identical workload through 8 independent per-session ForwardInto steps
// (the pre-fusion StepAll plane), so fused/sequential is the speedup of
// the weight-stationary batched plane; output streams are bit-identical
// between the two (TestForwardBatchIntoBitIdentical).
func benchSteadyBatch(b *testing.B, cfg Config, fused bool) {
	const B = 8
	m := New(cfg, 1)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(B)
	// Mirror core.StepAllInto: -cpu 1 benches the serial fused step,
	// -cpu 4 the row/lane-sharded one.
	bw.SetWorkers(runtime.GOMAXPROCS(0))
	caches := make([]kvcache.Cache, B)
	tokens := make([]int, B)
	positions := make([]int, B)
	reset := func() {
		for lane := 0; lane < B; lane++ {
			caches[lane] = kvcache.NewFull(m.CacheShape())
			n := 64 + lane
			prompt := make([]int, n)
			for i := range prompt {
				prompt[i] = (lane*131 + i*17) % cfg.Vocab
			}
			m.PrefillInto(ws, prompt, caches[lane])
			positions[lane] = n
			tokens[lane] = (lane * 37) % cfg.Vocab
		}
	}
	reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if positions[0] >= 128 {
			b.StopTimer()
			reset()
			b.StartTimer()
		}
		if fused {
			results := m.ForwardBatchInto(bw, tokens, positions, caches)
			for lane := range results {
				tokens[lane] = tensor.Argmax(results[lane].Logits)
				positions[lane]++
			}
		} else {
			for lane := 0; lane < B; lane++ {
				sr := m.ForwardInto(ws, tokens[lane], positions[lane], caches[lane])
				tokens[lane] = tensor.Argmax(sr.Logits)
				positions[lane]++
			}
		}
	}
}

func BenchmarkDecodeSteadyBatched(b *testing.B)        { benchSteadyBatch(b, Small(), true) }
func BenchmarkDecodeSteadySequential(b *testing.B)     { benchSteadyBatch(b, Small(), false) }
func BenchmarkDecodeSteadyBatchedTiny(b *testing.B)    { benchSteadyBatch(b, Tiny(), true) }
func BenchmarkDecodeSteadySequentialTiny(b *testing.B) { benchSteadyBatch(b, Tiny(), false) }

// BenchmarkDecodeSteadyPaged is BenchmarkDecodeSteady over the page-granular
// flat cache, pricing the block-table indirection of the paged hot path.
func BenchmarkDecodeSteadyPaged(b *testing.B) {
	m := New(Tiny(), 1)
	ws := m.NewWorkspace()
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	cache := kvcache.NewPagedKV(m.CacheShape(), 16)
	m.PrefillInto(ws, prompt, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cache.TotalAppended() >= 512 {
			b.StopTimer()
			cache = kvcache.NewPagedKV(m.CacheShape(), 16)
			m.PrefillInto(ws, prompt, cache)
			b.StartTimer()
		}
		m.ForwardInto(ws, i%Tiny().Vocab, cache.TotalAppended(), cache)
	}
}

// BenchmarkDecodeSteadyQuant is BenchmarkDecodeSteadyPaged over quantized
// pages: the per-element dequantization ALU cost the fused stream path pays
// for holding 4-8x more context in the same page-byte budget.
func BenchmarkDecodeSteadyQuant(b *testing.B) {
	for _, bits := range []int{8, 4} {
		b.Run(fmt.Sprintf("int%d", bits), func(b *testing.B) {
			m := New(Tiny(), 1)
			ws := m.NewWorkspace()
			prompt := make([]int, 256)
			for i := range prompt {
				prompt[i] = i % Tiny().Vocab
			}
			cache := kvcache.NewPagedKVQuant(m.CacheShape(), 16, 0, bits)
			m.PrefillInto(ws, prompt, cache)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cache.TotalAppended() >= 512 {
					b.StopTimer()
					cache = kvcache.NewPagedKVQuant(m.CacheShape(), 16, 0, bits)
					m.PrefillInto(ws, prompt, cache)
					b.StartTimer()
				}
				m.ForwardInto(ws, i%Tiny().Vocab, cache.TotalAppended(), cache)
			}
		})
	}
}
