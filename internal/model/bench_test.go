package model

import (
	"testing"

	"rethinkkv/internal/kvcache"
)

func BenchmarkPrefill256(b *testing.B) {
	m := New(Tiny(), 1)
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prefill(prompt, kvcache.NewFull(m.CacheShape()))
	}
}

func BenchmarkDecodeStep(b *testing.B) {
	m := New(Tiny(), 1)
	cache := kvcache.NewFull(m.CacheShape())
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	m.Prefill(prompt, cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(i%Tiny().Vocab, 256+i, cache)
	}
}
