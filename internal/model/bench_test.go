package model

import (
	"testing"

	"rethinkkv/internal/kvcache"
)

func BenchmarkPrefill256(b *testing.B) {
	m := New(Tiny(), 1)
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prefill(prompt, kvcache.NewFull(m.CacheShape()))
	}
}

func BenchmarkDecodeStep(b *testing.B) {
	m := New(Tiny(), 1)
	cache := kvcache.NewFull(m.CacheShape())
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	m.Prefill(prompt, cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(i%Tiny().Vocab, 256+i, cache)
	}
}

// BenchmarkDecodeSteady measures the steady-state decode hot path: a
// workspace-driven ForwardInto over a flat cache, with the context length
// held inside [256, 512) so the cost per step does not depend on b.N (unlike
// BenchmarkDecodeStep, whose cache grows for the whole run). The cache
// rebuild every 256 steps happens off the clock.
func BenchmarkDecodeSteady(b *testing.B) {
	m := New(Tiny(), 1)
	ws := m.NewWorkspace()
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	cache := kvcache.NewFull(m.CacheShape())
	m.PrefillInto(ws, prompt, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cache.TotalAppended() >= 512 {
			b.StopTimer()
			cache = kvcache.NewFull(m.CacheShape())
			m.PrefillInto(ws, prompt, cache)
			b.StartTimer()
		}
		m.ForwardInto(ws, i%Tiny().Vocab, cache.TotalAppended(), cache)
	}
}

// BenchmarkDecodeSteadyPaged is BenchmarkDecodeSteady over the page-granular
// flat cache, pricing the block-table indirection of the paged hot path.
func BenchmarkDecodeSteadyPaged(b *testing.B) {
	m := New(Tiny(), 1)
	ws := m.NewWorkspace()
	prompt := make([]int, 256)
	for i := range prompt {
		prompt[i] = i % Tiny().Vocab
	}
	cache := kvcache.NewPagedKV(m.CacheShape(), 16)
	m.PrefillInto(ws, prompt, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cache.TotalAppended() >= 512 {
			b.StopTimer()
			cache = kvcache.NewPagedKV(m.CacheShape(), 16)
			m.PrefillInto(ws, prompt, cache)
			b.StartTimer()
		}
		m.ForwardInto(ws, i%Tiny().Vocab, cache.TotalAppended(), cache)
	}
}
