package model

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// seqOnlyQuant hides a quantized paged cache's fast-path interfaces
// (QuantReader, FlatAppender, FlatBatchAppender) so the model is forced onto
// the generic Seq path — which materialises dequantized per-token views.
// Appends still quantize identically, so comparing a run through this wrapper
// against the bare cache proves the fused dequantize-on-stream hot path is
// bit-identical to the scratch-buffer formulation across a full generation.
type seqOnlyQuant struct {
	inner *kvcache.PagedKV
}

func (c *seqOnlyQuant) Shape() kvcache.Shape { return c.inner.Shape() }
func (c *seqOnlyQuant) Append(layer int, k, v [][]float32) {
	c.inner.Append(layer, k, v)
}
func (c *seqOnlyQuant) Seq(layer, head int) ([][]float32, [][]float32) {
	return c.inner.Seq(layer, head)
}
func (c *seqOnlyQuant) Positions(layer, head int) []int { return c.inner.Positions(layer, head) }
func (c *seqOnlyQuant) Len(layer, head int) int         { return c.inner.Len(layer, head) }
func (c *seqOnlyQuant) TotalAppended() int              { return c.inner.TotalAppended() }
func (c *seqOnlyQuant) MemoryBytes() int64              { return c.inner.MemoryBytes() }

// TestQuantDecodeBitIdentical proves the fused quantized fast path (QuantPages
// streamed through DotQuantStrided/AXPYQuantStrided) produces bit-identical
// logits, hiddens, and greedy token streams to the generic Seq path over the
// same quantized storage, for both code widths and both attention layouts.
func TestQuantDecodeBitIdentical(t *testing.T) {
	for _, cfg := range []Config{Tiny(), TinyMHA()} {
		for _, bits := range []int{8, 4} {
			m := New(cfg, 23)
			prompt := []int{1, 2, 3, 4, 5, 6, 7}
			mk := func() *kvcache.PagedKV {
				return kvcache.NewPagedKVQuant(m.CacheShape(), 4, 0, bits)
			}
			ref := m.Generate(prompt, &seqOnlyQuant{inner: mk()}, GenerateOptions{MaxNewTokens: 24, EOS: -1})
			got := m.Generate(prompt, mk(), GenerateOptions{MaxNewTokens: 24, EOS: -1})
			if len(got.Tokens) != len(ref.Tokens) {
				t.Fatalf("%s/int%d: token count %d != %d", cfg.Name, bits, len(got.Tokens), len(ref.Tokens))
			}
			for i := range ref.Tokens {
				if got.Tokens[i] != ref.Tokens[i] {
					t.Fatalf("%s/int%d: token %d = %d, want %d", cfg.Name, bits, i, got.Tokens[i], ref.Tokens[i])
				}
			}
			for i := range ref.Hiddens {
				for j := range ref.Hiddens[i] {
					if got.Hiddens[i][j] != ref.Hiddens[i][j] {
						t.Fatalf("%s/int%d: hidden (%d,%d) not bit-identical", cfg.Name, bits, i, j)
					}
				}
			}
		}
	}
}

// TestQuantPrefillChunkBitIdentical pins chunked prefill over quantized pages
// against token-at-a-time prefill: per-token quantize-on-append means chunk
// size must not change a single stored code, logit, or subsequent decode
// token. This is the property that makes preemption→recompute deterministic
// under quantization regardless of the recompute's chunking.
func TestQuantPrefillChunkBitIdentical(t *testing.T) {
	const promptLen = 23
	m := New(Tiny(), 11)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(0)
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = (i*29 + 7) % m.Config().Vocab
	}
	for _, bits := range []int{8, 4} {
		mk := func() *kvcache.PagedKV {
			return kvcache.NewPagedKVQuant(m.CacheShape(), 4, 0, bits)
		}
		ref := mk()
		want := m.PrefillInto(ws, prompt, ref)
		want = StepResult{
			Logits: append([]float32(nil), want.Logits...),
			Hidden: append([]float32(nil), want.Hidden...),
		}
		wantDecode := make([]int, 6)
		pos := promptLen
		next := tensor.Argmax(want.Logits)
		for s := range wantDecode {
			wantDecode[s] = next
			sr := m.ForwardInto(ws, next, pos, ref)
			next = tensor.Argmax(sr.Logits)
			pos++
		}

		for _, chunkSize := range []int{1, 3, 7, promptLen + 9} {
			cache := mk()
			got := m.PrefillChunkInto(bw, prompt, chunkSize, cache)
			equalStep(t, "quant chunk result", got, want)
			pos := promptLen
			next := tensor.Argmax(got.Logits)
			for s, wantTok := range wantDecode {
				if next != wantTok {
					t.Fatalf("int%d chunk=%d decode step %d: token %d != %d", bits, chunkSize, s, next, wantTok)
				}
				sr := m.ForwardInto(ws, next, pos, cache)
				next = tensor.Argmax(sr.Logits)
				pos++
			}
		}
		// Stored-code identity on a fresh fill: the quantized pages
		// themselves, not just their dequantized views, must match.
		for _, chunkSize := range []int{3, 7} {
			refCache := mk()
			m.PrefillInto(ws, prompt, refCache)
			cache := mk()
			m.PrefillChunkInto(bw, prompt, chunkSize, cache)
			equalCaches(t, "quant chunked cache", cache, refCache)
			shape := m.CacheShape()
			for l := 0; l < shape.Layers; l++ {
				gp, _ := cache.QuantPages(l)
				wp, _ := refCache.QuantPages(l)
				if len(gp) != len(wp) {
					t.Fatalf("int%d chunk=%d layer %d: %d pages != %d", bits, chunkSize, l, len(gp), len(wp))
				}
				for p := range wp {
					if string(gp[p].KCodes) != string(wp[p].KCodes) || string(gp[p].VCodes) != string(wp[p].VCodes) {
						t.Fatalf("int%d chunk=%d layer %d page %d: codes differ", bits, chunkSize, l, p)
					}
				}
			}
		}
	}
}

// TestQuantDecodeAllocs is TestForwardIntoZeroAllocs for the quantized hot
// path: the dequantize-on-stream read path allocates nothing, so the only
// allocation source is opening a fresh page every pageTokens steps — two
// backing arrays per layer, amortising well under one allocation per step.
func TestQuantDecodeAllocs(t *testing.T) {
	for _, bits := range []int{8, 4} {
		m := New(Tiny(), 1)
		ws := m.NewWorkspace()
		cache := kvcache.NewPagedKVQuant(m.CacheShape(), 16, 0, bits)
		prompt := make([]int, 128)
		for i := range prompt {
			prompt[i] = i % Tiny().Vocab
		}
		m.PrefillInto(ws, prompt, cache)
		pos := cache.TotalAppended()
		avg := testing.AllocsPerRun(100, func() {
			m.ForwardInto(ws, pos%Tiny().Vocab, pos, cache)
			pos++
		})
		if avg >= 1 {
			t.Fatalf("int%d: ForwardInto allocates %.2f/step, want amortised < 1", bits, avg)
		}
	}
}
