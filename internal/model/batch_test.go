package model

import (
	"math"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// newCacheFn builds a fresh cache for one lane.
type newCacheFn func(m *Model) kvcache.Cache

var batchCacheKinds = []struct {
	name string
	mk   newCacheFn
}{
	{"full", func(m *Model) kvcache.Cache { return kvcache.NewFull(m.CacheShape()) }},
	{"paged", func(m *Model) kvcache.Cache { return kvcache.NewPagedKV(m.CacheShape(), 8) }},
}

// prefillLane prefills a distinct pseudo-random prompt per lane so lanes
// sit at different (mixed) positions, and returns the prompts.
func prefillLane(m *Model, ws *Workspace, cache kvcache.Cache, lane int) []int {
	n := 5 + 7*lane%23 + lane // mixed prompt lengths
	prompt := make([]int, n)
	for i := range prompt {
		prompt[i] = (lane*131 + i*17 + 3) % m.Config().Vocab
	}
	m.PrefillInto(ws, prompt, cache)
	return prompt
}

// TestForwardBatchIntoBitIdentical pins fused batched decode against
// per-session ForwardInto bit-for-bit: batch sizes {2, 3, 8}, mixed
// positions, Full and PagedKV caches, several greedy decode steps deep
// (so each step consumes cache state written by the previous fused step).
func TestForwardBatchIntoBitIdentical(t *testing.T) {
	for _, kind := range batchCacheKinds {
		for _, B := range []int{2, 3, 8} {
			m := New(Tiny(), 11)
			ws := m.NewWorkspace()
			bw := m.NewBatchWorkspace(B)

			seqCaches := make([]kvcache.Cache, B)
			batCaches := make([]kvcache.Cache, B)
			positions := make([]int, B)
			tokens := make([]int, B)
			for b := 0; b < B; b++ {
				seqCaches[b] = kind.mk(m)
				batCaches[b] = kind.mk(m)
				prompt := prefillLane(m, ws, seqCaches[b], b)
				prefillLane(m, ws, batCaches[b], b)
				positions[b] = len(prompt)
				tokens[b] = (b*37 + 5) % m.Config().Vocab
			}

			for step := 0; step < 6; step++ {
				// Reference: advance each lane with the per-session path.
				wantLogits := make([][]float32, B)
				wantHidden := make([][]float32, B)
				nextTok := make([]int, B)
				for b := 0; b < B; b++ {
					sr := m.ForwardInto(ws, tokens[b], positions[b], seqCaches[b])
					wantLogits[b] = append([]float32(nil), sr.Logits...)
					wantHidden[b] = append([]float32(nil), sr.Hidden...)
					nextTok[b] = tensor.Argmax(sr.Logits)
				}
				// Fused step over the twin caches.
				results := m.ForwardBatchInto(bw, tokens, positions, batCaches)
				for b := 0; b < B; b++ {
					for j := range wantLogits[b] {
						if math.Float32bits(results[b].Logits[j]) != math.Float32bits(wantLogits[b][j]) {
							t.Fatalf("%s B=%d step %d lane %d logit %d: %x != %x",
								kind.name, B, step, b, j,
								math.Float32bits(results[b].Logits[j]), math.Float32bits(wantLogits[b][j]))
						}
					}
					for j := range wantHidden[b] {
						if math.Float32bits(results[b].Hidden[j]) != math.Float32bits(wantHidden[b][j]) {
							t.Fatalf("%s B=%d step %d lane %d hidden %d differs", kind.name, B, step, b, j)
						}
					}
					if got := tensor.Argmax(results[b].Logits); got != nextTok[b] {
						t.Fatalf("%s B=%d step %d lane %d: next token %d != %d", kind.name, B, step, b, got, nextTok[b])
					}
					tokens[b] = nextTok[b]
					positions[b]++
				}
				// The caches must have recorded identical state.
				for b := 0; b < B; b++ {
					if seqCaches[b].TotalAppended() != batCaches[b].TotalAppended() {
						t.Fatalf("%s lane %d appended %d != %d", kind.name, b, batCaches[b].TotalAppended(), seqCaches[b].TotalAppended())
					}
				}
			}
		}
	}
}

// TestForwardBatchIntoWorkers pins the row/lane-sharded parallel step to
// the serial step bit-for-bit.
func TestForwardBatchIntoWorkers(t *testing.T) {
	const B = 8
	m := New(Tiny(), 13)
	ws := m.NewWorkspace()

	serial := m.NewBatchWorkspace(B)
	parallel := m.NewBatchWorkspace(B)
	parallel.SetWorkers(4)
	if parallel.Workers() != 4 {
		t.Fatalf("workers = %d", parallel.Workers())
	}

	sc := make([]kvcache.Cache, B)
	pc := make([]kvcache.Cache, B)
	tokens := make([]int, B)
	positions := make([]int, B)
	for b := 0; b < B; b++ {
		sc[b] = kvcache.NewFull(m.CacheShape())
		pc[b] = kvcache.NewFull(m.CacheShape())
		prompt := prefillLane(m, ws, sc[b], b)
		prefillLane(m, ws, pc[b], b)
		positions[b] = len(prompt)
		tokens[b] = (b * 11) % m.Config().Vocab
	}
	for step := 0; step < 4; step++ {
		want := m.ForwardBatchInto(serial, tokens, positions, sc)
		wantCopy := make([][]float32, B)
		for b := range want {
			wantCopy[b] = append([]float32(nil), want[b].Logits...)
		}
		got := m.ForwardBatchInto(parallel, tokens, positions, pc)
		for b := 0; b < B; b++ {
			for j := range wantCopy[b] {
				if math.Float32bits(got[b].Logits[j]) != math.Float32bits(wantCopy[b][j]) {
					t.Fatalf("step %d lane %d logit %d: parallel differs from serial", step, b, j)
				}
			}
			tokens[b] = tensor.Argmax(got[b].Logits)
			positions[b]++
		}
	}
}

// TestForwardBatchIntoAllocFree proves the fused steady-state step
// performs zero heap allocations per step (serial workers). The caches
// are paged with a page far larger than the decode window so cache-side
// append growth — amortized, and priced separately by the decode
// benchmarks — cannot blur the workspace measurement.
func TestForwardBatchIntoAllocFree(t *testing.T) {
	const B = 8
	m := New(Tiny(), 7)
	ws := m.NewWorkspace()
	bw := m.NewBatchWorkspace(B)
	caches := make([]kvcache.Cache, B)
	tokens := make([]int, B)
	positions := make([]int, B)
	for b := 0; b < B; b++ {
		caches[b] = kvcache.NewPagedKV(m.CacheShape(), 1024)
		prompt := prefillLane(m, ws, caches[b], b)
		positions[b] = len(prompt)
		tokens[b] = b % m.Config().Vocab
	}
	// Warm the score buffers past the positions the loop will reach.
	m.ForwardBatchInto(bw, tokens, positions, caches)
	for b := 0; b < B; b++ {
		positions[b]++
	}
	if n := testing.AllocsPerRun(50, func() {
		m.ForwardBatchInto(bw, tokens, positions, caches)
		for b := 0; b < B; b++ {
			positions[b]++
		}
	}); n != 0 {
		t.Fatalf("fused step allocated %v per run", n)
	}
}

// TestForwardBatchIntoValidation covers the contract panics.
func TestForwardBatchIntoValidation(t *testing.T) {
	m := New(Tiny(), 1)
	bw := m.NewBatchWorkspace(1)
	cache := kvcache.NewFull(m.CacheShape())

	if got := m.ForwardBatchInto(bw, nil, nil, nil); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
	assertPanics(t, "length mismatch", func() {
		m.ForwardBatchInto(bw, []int{1}, nil, []kvcache.Cache{cache})
	})
	assertPanics(t, "token range", func() {
		m.ForwardBatchInto(bw, []int{-1}, []int{0}, []kvcache.Cache{cache})
	})
	assertPanics(t, "foreign workspace", func() {
		other := New(Tiny(), 2)
		m.ForwardBatchInto(other.NewBatchWorkspace(1), []int{1}, []int{0}, []kvcache.Cache{cache})
	})
	assertPanics(t, "cache shape", func() {
		bad := kvcache.NewFull(kvcache.Shape{Layers: 1, KVHeads: 1, HeadDim: 2})
		m.ForwardBatchInto(bw, []int{1}, []int{0}, []kvcache.Cache{bad})
	})
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}
