package model

import (
	"sync"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// This file is the fused batched decode plane: one forward pass that
// advances B independent decode streams a single token each, loading every
// weight matrix once per step instead of once per stream. Projections and
// the LM head run as batched weight-stationary GEMMs (tensor.MatTMatTrans*/
// tensor.MatMat*); attention stays per-stream via the shared attendStep,
// because each stream attends over its own KV cache at its own position.
// Per lane the arithmetic is operation-for-operation identical to
// ForwardInto, so a fused step is bit-identical to stepping each stream
// separately — pinned by the equivalence tests in batch_test.go.

// BatchWorkspace owns the scratch state for fused batched decode: one
// Workspace per lane plus the lane-indexed gather views the batched
// kernels consume. It belongs to one decode loop at a time (the scheduler
// pools them like Workspaces); lanes grow on demand and are reused across
// steps, so steady-state fused stepping allocates nothing.
type BatchWorkspace struct {
	m     *Model
	lanes []*Workspace
	paths []cachePath

	// Gather views: index b aliases lanes[b]'s buffers. They are built
	// once per lane and re-sliced to the step's batch size.
	hs, xs, qs, ks, vs [][]float32
	attnOuts, projs    [][]float32
	gates, ups, downs  [][]float32
	finals, logits     [][]float32

	results []StepResult
	workers int

	// Chunk scratch (built by ensureChunk, grown on demand): a prefill
	// chunk's K/V projections land in one contiguous token-major staging
	// span so a whole chunk appends with one AppendFlatN per layer. Chunk
	// positions borrow ordinary lanes for every other buffer; only K/V
	// need the contiguous home.
	ck, cv           []float32     // capacity chunkCap * KVDim
	ckTok, cvTok     [][]float32   // per-token views (projection dst)
	ckHeads, cvHeads [][][]float32 // per-token per-head views (generic Append fallback)
	chunkCap         int
	// chunkPaths holds each packed chunk's resolved fast-path set for the
	// current step, and chunkResults the per-chunk StepResult slots the
	// mixed step returns. Living in the (heap) workspace rather than in
	// locals keeps the mixed step allocation-free — a local path would
	// escape through the attention-sharding closure — and the paths are
	// cleared like paths so a pooled workspace never pins a retired cache.
	chunkPaths   []cachePath
	chunkResults []StepResult

	// Assembled gather views for mixed steps (decode lanes followed by
	// chunk positions, or the LM-head row subset). Backing arrays are
	// reused across steps, so mixed stepping stays allocation-free.
	mixKs, mixVs       [][]float32
	lmFinals, lmLogits [][]float32
}

// NewBatchWorkspace allocates a batch workspace with capacity lanes
// (grown automatically if a step brings more). Workers defaults to 1
// (fully serial); see SetWorkers.
func (m *Model) NewBatchWorkspace(capacity int) *BatchWorkspace {
	bw := &BatchWorkspace{m: m, workers: 1}
	bw.EnsureLanes(capacity)
	return bw
}

// EnsureLanes grows the workspace to at least n lanes.
func (bw *BatchWorkspace) EnsureLanes(n int) {
	for len(bw.lanes) < n {
		ws := bw.m.NewWorkspace()
		bw.lanes = append(bw.lanes, ws)
		bw.paths = append(bw.paths, cachePath{})
		bw.hs = append(bw.hs, ws.h)
		bw.xs = append(bw.xs, ws.x)
		bw.qs = append(bw.qs, ws.q)
		bw.ks = append(bw.ks, ws.k)
		bw.vs = append(bw.vs, ws.v)
		bw.attnOuts = append(bw.attnOuts, ws.attnOut)
		bw.projs = append(bw.projs, ws.proj)
		bw.gates = append(bw.gates, ws.gate)
		bw.ups = append(bw.ups, ws.up)
		bw.downs = append(bw.downs, ws.down)
		bw.finals = append(bw.finals, ws.final)
		bw.logits = append(bw.logits, ws.logits)
		bw.results = append(bw.results, StepResult{})
	}
}

// Lanes reports the allocated lane capacity.
func (bw *BatchWorkspace) Lanes() int { return len(bw.lanes) }

// ensureChunkSlots grows the per-chunk path/result slots to at least k.
func (bw *BatchWorkspace) ensureChunkSlots(k int) {
	for len(bw.chunkPaths) < k {
		bw.chunkPaths = append(bw.chunkPaths, cachePath{})
		bw.chunkResults = append(bw.chunkResults, StepResult{})
	}
}

// SetWorkers sets the shard width for optional intra-step parallelism:
// with w > 1, large GEMMs are row-sharded and attention lane-sharded
// across up to w goroutines (bit-identical — shards write disjoint
// outputs). The default 1 keeps the step fully serial and
// allocation-free; sharded steps allocate goroutine frames.
func (bw *BatchWorkspace) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	bw.workers = w
}

// Workers reports the configured shard width.
func (bw *BatchWorkspace) Workers() int { return bw.workers }

// gemmShardMin is the per-shard work floor (multiply-accumulates) below
// which sharding a GEMM costs more in goroutine latency than it saves.
const gemmShardMin = 1 << 15

// ForwardBatchInto advances n = len(tokens) decode streams one token each:
// stream b forwards tokens[b] at absolute position positions[b], appending
// to caches[b] and attending over what that cache retains. The caches must
// be distinct (each lane appends one token) and match the model's shape;
// positions are independent per lane. Results alias the workspace lanes
// and are valid until the next call on the same workspace; in steady state
// the call performs zero heap allocations (with Workers == 1).
//
// Lane b's outputs are bit-identical to
// ForwardInto(ws, tokens[b], positions[b], caches[b]): the projections use
// the transposed-weight batched kernels whose per-element reduction order
// matches VecMatInto exactly (including its zero-skip, via dispatch), and
// attention/norms/activations share the per-stream code paths.
func (m *Model) ForwardBatchInto(bw *BatchWorkspace, tokens, positions []int, caches []kvcache.Cache) []StepResult {
	results, _ := m.ForwardMixedInto(bw, tokens, positions, caches, nil)
	return results
}

// project runs one batched projection dst[b] = xs[b]ᵀ·w, column-sharded
// across workers when the matrix is large enough to amortize the fan-out.
func (bw *BatchWorkspace) project(dst, xs [][]float32, w, wT *tensor.Matrix) {
	shards := bw.shardsFor(w.Rows*w.Cols*len(xs), w.Cols)
	if shards <= 1 {
		tensor.MatTMatTransInto(dst, xs, w, wT)
		return
	}
	runShards(shards, w.Cols, func(lo, hi int) {
		tensor.MatTMatTransColsInto(dst, xs, w, wT, lo, hi)
	})
}

// attend runs per-lane attention for one layer, lane-sharded across
// workers: each stream's attention touches only its own cache and lane
// workspace, so lanes are independent.
func (bw *BatchWorkspace) attend(l, n int) {
	shards := bw.workers
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		for b := 0; b < n; b++ {
			bw.m.attendStep(bw.lanes[b], &bw.paths[b], l)
		}
		return
	}
	runShards(shards, n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			bw.m.attendStep(bw.lanes[b], &bw.paths[b], l)
		}
	})
}

// lmHead runs the batched LM head dst[b] = embed × finals[b], row-sharded
// across workers when large enough.
func (bw *BatchWorkspace) lmHead(dst, finals [][]float32) {
	embed := bw.m.embed
	shards := bw.shardsFor(embed.Rows*embed.Cols*len(finals), embed.Rows)
	if shards <= 1 {
		tensor.MatMatInto(dst, embed, finals)
		return
	}
	runShards(shards, embed.Rows, func(lo, hi int) {
		tensor.MatMatRowsInto(dst, embed, finals, lo, hi)
	})
}

// shardsFor picks the shard count for a GEMM of the given total work:
// bounded by the worker budget, the output dimension, and the per-shard
// work floor.
func (bw *BatchWorkspace) shardsFor(work, dim int) int {
	shards := bw.workers
	if shards > dim {
		shards = dim
	}
	if max := work / gemmShardMin; shards > max {
		shards = max
	}
	return shards
}

// runShards splits [0, total) into shards contiguous ranges and runs fn on
// each, the first on the calling goroutine. fn must write only its range.
func runShards(shards, total int, fn func(lo, hi int)) {
	chunk := (total + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := chunk; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}
