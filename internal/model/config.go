// Package model implements a real, tiny, pure-Go LLaMA-style transformer
// (RMSNorm, RoPE, grouped-query attention, SiLU-gated FFN) that runs genuine
// prefill and decode over a pluggable KV cache, plus shape descriptors for
// the full-size models the paper benchmarks (LLaMA-2-7B/13B/70B, Mistral-7B,
// LLaMA-3.1-8B).
//
// The tiny model is the accuracy substrate: compression methods quantise and
// evict its real tensors, so their error is genuine. The full-size
// descriptors feed the analytical cost model in internal/perf, which
// reproduces the paper's throughput results.
package model

import "fmt"

// Config describes a transformer's shape.
type Config struct {
	Name    string
	Layers  int
	Heads   int // query heads
	KVHeads int // key/value heads (== Heads unless GQA)
	HeadDim int
	FFNDim  int
	Vocab   int
	MaxSeq  int
}

// Hidden returns the model (embedding) dimension.
func (c Config) Hidden() int { return c.Heads * c.HeadDim }

// KVDim returns the per-layer key (or value) width.
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim }

// GroupSize returns the number of query heads sharing one KV head.
func (c Config) GroupSize() int { return c.Heads / c.KVHeads }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Heads <= 0 || c.KVHeads <= 0 || c.HeadDim <= 0:
		return fmt.Errorf("model: non-positive dimension in %+v", c)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model: heads %d not divisible by kv heads %d", c.Heads, c.KVHeads)
	case c.HeadDim%2 != 0:
		return fmt.Errorf("model: head dim %d must be even for RoPE", c.HeadDim)
	case c.FFNDim <= 0 || c.Vocab <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("model: non-positive ffn/vocab/maxseq in %+v", c)
	}
	return nil
}

// ParamCount returns the approximate parameter count (embeddings + blocks),
// used by the cost model to size weight traffic.
func (c Config) ParamCount() int64 {
	h := int64(c.Hidden())
	kv := int64(c.KVDim())
	ffn := int64(c.FFNDim)
	perLayer := h*h + 2*h*kv + h*h + // Wq, Wk, Wv, Wo (Wk/Wv are h×kv)
		3*h*ffn + // gate, up, down
		2*h // norms
	return int64(c.Layers)*perLayer + 2*int64(c.Vocab)*h // embed + lm head
}

// KVBytesPerTokenFP16 returns the FP16 KV cache footprint of one token
// across all layers.
func (c Config) KVBytesPerTokenFP16() int64 {
	return int64(c.Layers) * int64(c.KVDim()) * 2 /*K+V*/ * 2 /*bytes*/
}

// Tiny returns the runnable test model: small enough for pure-Go execution,
// large enough that quantisation and eviction have measurable effects.
func Tiny() Config {
	return Config{
		Name: "tiny-llama", Layers: 4, Heads: 4, KVHeads: 2, HeadDim: 16,
		FFNDim: 128, Vocab: 512, MaxSeq: 4096,
	}
}

// TinyMHA is Tiny without grouped-query attention, for tests that need
// one KV head per query head.
func TinyMHA() Config {
	c := Tiny()
	c.Name = "tiny-llama-mha"
	c.KVHeads = c.Heads
	return c
}

// Small returns a serving-shaped runnable model: wide enough (256 hidden,
// 1024 FFN) that per-layer weight GEMMs dominate a decode step the way
// they do on real models, which is the regime the fused batched decode
// plane targets and the batched throughput benchmarks measure. Tiny stays
// the accuracy substrate; Small is the performance substrate.
func Small() Config {
	return Config{
		Name: "small-llama", Layers: 4, Heads: 8, KVHeads: 4, HeadDim: 32,
		FFNDim: 1024, Vocab: 1024, MaxSeq: 4096,
	}
}

// Full-size shape descriptors. Only their shapes are used (by the cost
// model); they are never instantiated as weight tensors.
var (
	// LLaMA2_7B matches meta-llama/Llama-2-7b.
	LLaMA2_7B = Config{Name: "llama-2-7b", Layers: 32, Heads: 32, KVHeads: 32, HeadDim: 128, FFNDim: 11008, Vocab: 32000, MaxSeq: 4096}
	// LLaMA2_13B matches meta-llama/Llama-2-13b.
	LLaMA2_13B = Config{Name: "llama-2-13b", Layers: 40, Heads: 40, KVHeads: 40, HeadDim: 128, FFNDim: 13824, Vocab: 32000, MaxSeq: 4096}
	// LLaMA2_70B matches meta-llama/Llama-2-70b (GQA, 8 KV heads).
	LLaMA2_70B = Config{Name: "llama-2-70b", Layers: 80, Heads: 64, KVHeads: 8, HeadDim: 128, FFNDim: 28672, Vocab: 32000, MaxSeq: 4096}
	// Mistral7B matches mistralai/Mistral-7B-v0.1 (GQA, 8 KV heads).
	Mistral7B = Config{Name: "mistral-7b", Layers: 32, Heads: 32, KVHeads: 8, HeadDim: 128, FFNDim: 14336, Vocab: 32000, MaxSeq: 32768}
	// LLaMA31_8B matches meta-llama/Llama-3.1-8B (GQA, 8 KV heads).
	LLaMA31_8B = Config{Name: "llama-3.1-8b", Layers: 32, Heads: 32, KVHeads: 8, HeadDim: 128, FFNDim: 14336, Vocab: 128256, MaxSeq: 131072}
)

// All returns every named shape descriptor, full-size then runnable — the
// resolution set of ByName.
func All() []Config {
	return []Config{LLaMA2_7B, LLaMA2_13B, LLaMA2_70B, Mistral7B, LLaMA31_8B, Tiny(), TinyMHA(), Small()}
}

// ByName returns a shape descriptor by its Name field.
func ByName(name string) (Config, bool) {
	for _, c := range All() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
