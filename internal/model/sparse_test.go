package model

import (
	"fmt"
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/tensor"
)

// sparseCacheMaker returns a constructor for a summaries-enabled paged cache
// at the given code width (0 = fp32).
func sparseCacheMaker(m *Model, pageTokens, bits int) func() *kvcache.PagedKV {
	return func() *kvcache.PagedKV {
		c := kvcache.NewPagedKVQuant(m.CacheShape(), pageTokens, 0, bits)
		c.EnableKeySummaries()
		return c
	}
}

// TestSparseDecodeFullKBitIdentical pins the delegation contract: with topK
// at least the resident page count, sparse decode must be bit-identical to
// dense — tokens and hidden states — for fp32 and both quantized widths.
// (The sparse branch declines and the dense walk runs; this test guards the
// boundary condition so np == topK can never drift onto a different path.)
func TestSparseDecodeFullKBitIdentical(t *testing.T) {
	for _, bits := range []int{0, 8, 4} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			prompt := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
			dense := New(Tiny(), 23)
			mkD := sparseCacheMaker(dense, 4, bits)
			ref := dense.Generate(prompt, mkD(), GenerateOptions{MaxNewTokens: 24, EOS: -1})

			sparse := New(Tiny(), 23)
			sparse.SetSparseTopK(1 << 20) // always >= pages
			mkS := sparseCacheMaker(sparse, 4, bits)
			got := sparse.Generate(prompt, mkS(), GenerateOptions{MaxNewTokens: 24, EOS: -1})

			if len(got.Tokens) != len(ref.Tokens) {
				t.Fatalf("token count %d != %d", len(got.Tokens), len(ref.Tokens))
			}
			for i := range ref.Tokens {
				if got.Tokens[i] != ref.Tokens[i] {
					t.Fatalf("token %d = %d, want %d", i, got.Tokens[i], ref.Tokens[i])
				}
			}
			for i := range ref.Hiddens {
				for j := range ref.Hiddens[i] {
					if got.Hiddens[i][j] != ref.Hiddens[i][j] {
						t.Fatalf("hidden (%d,%d) not bit-identical", i, j)
					}
				}
			}
		})
	}
}

// restrictedSeq exposes a prebuilt token subset through the generic Cache
// surface only (no fast-path interfaces), with appends swallowed: the step
// being replayed already contributed its token to the restriction.
type restrictedSeq struct{ inner *kvcache.Full }

func (c *restrictedSeq) Shape() kvcache.Shape                    { return c.inner.Shape() }
func (c *restrictedSeq) Append(layer int, k, v [][]float32)      {}
func (c *restrictedSeq) Seq(l, h int) ([][]float32, [][]float32) { return c.inner.Seq(l, h) }
func (c *restrictedSeq) Positions(l, h int) []int                { return c.inner.Positions(l, h) }
func (c *restrictedSeq) Len(l, h int) int                        { return c.inner.Len(l, h) }
func (c *restrictedSeq) TotalAppended() int                      { return c.inner.TotalAppended() }
func (c *restrictedSeq) MemoryBytes() int64                      { return c.inner.MemoryBytes() }

// TestSparseDecodeRestrictionIdentity proves the sparse branch's arithmetic
// is exactly "dense attention restricted to the selected pages": a decode
// step at topK must be bit-identical to a dense step attending a cache that
// holds only the selected pages' stored (dequantized, for quant widths)
// K/V. The selection is read back from the workspace scratch the branch
// filled, so the test pins the materialized score/softmax/accumulate walk
// itself, not just the selection policy. A 1-layer, 1-head shape keeps the
// step to a single selection so one restricted cache describes it fully.
func TestSparseDecodeRestrictionIdentity(t *testing.T) {
	cfg := Config{Name: "sparse-1l", Layers: 1, Heads: 1, KVHeads: 1, HeadDim: 16,
		FFNDim: 64, Vocab: 128, MaxSeq: 4096}
	const pageTokens, promptLen, topK = 4, 33, 3
	for _, bits := range []int{0, 8, 4} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			m := New(cfg, 7)
			ws := m.NewWorkspace()
			prompt := make([]int, promptLen)
			for i := range prompt {
				prompt[i] = (i*13 + 5) % cfg.Vocab
			}
			cache := sparseCacheMaker(m, pageTokens, bits)()
			m.PrefillInto(ws, prompt, cache)
			ws.TakeSparseStats()

			m.SetSparseTopK(topK)
			sr := m.ForwardInto(ws, 2, promptLen, cache)
			m.SetSparseTopK(0)
			got := append([]float32(nil), sr.Logits...)
			nSel, _ := ws.TakeSparseStats()
			if nSel != topK {
				t.Fatalf("selected %d pages, want %d", nSel, topK)
			}
			sel := append([]int32(nil), ws.pageSel[:nSel]...)

			// Rebuild the selected token set from the cache's own stored
			// values — including the token the step itself appended, which
			// lives in the (always selected) tail page.
			keys, vals := cache.Seq(0, 0)
			restricted := kvcache.NewFull(m.CacheShape())
			for _, p := range sel {
				lo, hi := int(p)*pageTokens, (int(p)+1)*pageTokens
				if hi > len(keys) {
					hi = len(keys)
				}
				for i := lo; i < hi; i++ {
					restricted.Append(0, [][]float32{keys[i]}, [][]float32{vals[i]})
				}
			}
			sr2 := m.ForwardInto(ws, 2, promptLen, &restrictedSeq{inner: restricted})
			for j := range got {
				if got[j] != sr2.Logits[j] {
					t.Fatalf("logit %d: sparse %v != restricted dense %v", j, got[j], sr2.Logits[j])
				}
			}
		})
	}
}

// TestSparseDecodeCounters checks the pages-selected / pages-resident
// accounting: one decode step over a known page count must record exactly
// layers*heads attentions of topK selected out of np resident.
func TestSparseDecodeCounters(t *testing.T) {
	cfg := Tiny()
	const pageTokens, topK = 4, 2
	m := New(cfg, 5)
	ws := m.NewWorkspace()
	prompt := make([]int, 20) // exactly 5 pages
	for i := range prompt {
		prompt[i] = i % cfg.Vocab
	}
	cache := sparseCacheMaker(m, pageTokens, 0)()
	m.PrefillInto(ws, prompt, cache)
	ws.TakeSparseStats() // prefill ran dense; drain whatever landed
	m.SetSparseTopK(topK)
	m.ForwardInto(ws, 1, 20, cache)
	m.SetSparseTopK(0)
	np := cache.Pages() // pages resident when attention ran (after append)
	sel, tot := ws.TakeSparseStats()
	att := int64(cfg.Layers * cfg.Heads)
	if tot != att*int64(np) || sel != att*int64(topK) {
		t.Fatalf("counters (sel=%d, tot=%d), want (%d, %d)", sel, tot, att*int64(topK), att*int64(np))
	}
	if s, tt := ws.TakeSparseStats(); s != 0 || tt != 0 {
		t.Fatalf("TakeSparseStats did not reset: (%d, %d)", s, tt)
	}
}

// TestSparseRecallProbe exercises the attention-mass recall probe: recall is
// a valid mean in (0, 1], increases (weakly) with topK on average, and is
// near 1 when only one page is dropped.
func TestSparseRecallProbe(t *testing.T) {
	cfg := Tiny()
	const pageTokens = 4
	prompt := make([]int, 40) // 10 pages
	for i := range prompt {
		prompt[i] = (i*7 + 3) % cfg.Vocab
	}
	recallAt := func(topK int) float64 {
		m := New(cfg, 9)
		ws := m.NewWorkspace()
		cache := sparseCacheMaker(m, pageTokens, 0)()
		m.PrefillInto(ws, prompt, cache)
		m.SetSparseTopK(topK)
		ws.SetRecallProbe(true)
		pos := len(prompt)
		tok := 1
		for s := 0; s < 4; s++ {
			sr := m.ForwardInto(ws, tok, pos, cache)
			tok = tensor.Argmax(sr.Logits)
			pos++
		}
		ws.SetRecallProbe(false)
		mass, cnt := ws.TakeRecall()
		if cnt == 0 {
			t.Fatalf("topK=%d: probe recorded nothing", topK)
		}
		return mass / float64(cnt)
	}
	lo, hi := recallAt(2), recallAt(9)
	if lo <= 0 || lo > 1 || hi <= 0 || hi > 1 {
		t.Fatalf("recall out of range: topK=2 -> %v, topK=9 -> %v", lo, hi)
	}
	if hi < lo {
		t.Fatalf("recall not improving with budget: topK=2 -> %v, topK=9 -> %v", lo, hi)
	}
	if hi < 0.7 {
		t.Fatalf("dropping one page of ten lost %.0f%% of attention mass", 100*(1-hi))
	}
}

// TestSparseDecodeAllocs pins the 0-alloc contract for sparse decode (probe
// off): summary scoring, selection, and the restricted attention walk all
// live in workspace scratch. Page opening costs the same amortised <1
// alloc/step as dense paged decode. This name is pinned in make ci.
func TestSparseDecodeAllocs(t *testing.T) {
	for _, bits := range []int{0, 8, 4} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			m := New(Tiny(), 1)
			ws := m.NewWorkspace()
			cache := sparseCacheMaker(m, 16, bits)()
			prompt := make([]int, 256)
			for i := range prompt {
				prompt[i] = i % Tiny().Vocab
			}
			m.PrefillInto(ws, prompt, cache)
			m.SetSparseTopK(4)
			defer m.SetSparseTopK(0)
			pos := cache.TotalAppended()
			avg := testing.AllocsPerRun(100, func() {
				m.ForwardInto(ws, pos%Tiny().Vocab, pos, cache)
				pos++
			})
			if avg >= 1 {
				t.Fatalf("bits=%d: sparse ForwardInto allocates %.2f/step, want amortised < 1", bits, avg)
			}
		})
	}
}

// BenchmarkDecodeSteadySparse is BenchmarkDecodeSteadyPaged at a long
// context (2048-2304 tokens, 128+ pages) with sparsity at several budgets;
// "full" is the dense walk over the same summaries-enabled cache, so the
// delta is exactly what page selection buys at this context length.
func BenchmarkDecodeSteadySparse(b *testing.B) {
	const ctx, pageTokens = 2048, 16
	run := func(b *testing.B, bits, topK int) {
		m := New(Tiny(), 1)
		m.SetSparseTopK(topK)
		ws := m.NewWorkspace()
		prompt := make([]int, ctx)
		for i := range prompt {
			prompt[i] = i % Tiny().Vocab
		}
		mk := sparseCacheMaker(m, pageTokens, bits)
		cache := mk()
		m.PrefillInto(ws, prompt, cache)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cache.TotalAppended() >= ctx+256 {
				b.StopTimer()
				cache = mk()
				m.PrefillInto(ws, prompt, cache)
				b.StartTimer()
			}
			m.ForwardInto(ws, i%Tiny().Vocab, cache.TotalAppended(), cache)
		}
	}
	for _, bits := range []int{0, 8} {
		name := "fp32"
		if bits != 0 {
			name = fmt.Sprintf("int%d", bits)
		}
		b.Run(name+"/full", func(b *testing.B) { run(b, bits, 0) })
		for _, topK := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/k=%d", name, topK), func(b *testing.B) { run(b, bits, topK) })
		}
	}
}
