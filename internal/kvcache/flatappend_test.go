package kvcache

import (
	"errors"
	"math"
	"testing"
)

// fillToken builds one token's K/V both as per-head views and as the flat
// head-major vector the FlatAppender path consumes — same bytes, two entry
// points.
func fillToken(shape Shape, seed int) (kHeads, vHeads [][]float32, kFlat, vFlat []float32) {
	stride := shape.KVHeads * shape.HeadDim
	kFlat = make([]float32, stride)
	vFlat = make([]float32, stride)
	for i := range kFlat {
		kFlat[i] = float32(seed*31+i) / 7
		vFlat[i] = float32(seed*17-i) / 5
	}
	kHeads = make([][]float32, shape.KVHeads)
	vHeads = make([][]float32, shape.KVHeads)
	for h := 0; h < shape.KVHeads; h++ {
		kHeads[h] = kFlat[h*shape.HeadDim : (h+1)*shape.HeadDim]
		vHeads[h] = vFlat[h*shape.HeadDim : (h+1)*shape.HeadDim]
	}
	return
}

// TestAppendFlatMatchesAppend pins AppendFlat against Append bit-for-bit
// on both flat-storage caches: interleaving the two entry points must
// leave identical retained state.
func TestAppendFlatMatchesAppend(t *testing.T) {
	shape := Shape{Layers: 2, KVHeads: 3, HeadDim: 4}
	caches := []struct {
		name     string
		viaHeads Cache
		viaFlat  Cache
	}{
		{"full", NewFull(shape), NewFull(shape)},
		{"paged", NewPagedKV(shape, 2), NewPagedKV(shape, 2)},
	}
	for _, tc := range caches {
		fa, ok := tc.viaFlat.(FlatAppender)
		if !ok {
			t.Fatalf("%s: no FlatAppender", tc.name)
		}
		for tok := 0; tok < 7; tok++ {
			kH, vH, kF, vF := fillToken(shape, tok)
			for l := 0; l < shape.Layers; l++ {
				tc.viaHeads.Append(l, kH, vH)
				fa.AppendFlat(l, kF, vF)
			}
		}
		if got, want := tc.viaFlat.TotalAppended(), tc.viaHeads.TotalAppended(); got != want {
			t.Fatalf("%s: appended %d != %d", tc.name, got, want)
		}
		for l := 0; l < shape.Layers; l++ {
			for h := 0; h < shape.KVHeads; h++ {
				wk, wv := tc.viaHeads.Seq(l, h)
				gk, gv := tc.viaFlat.Seq(l, h)
				if len(gk) != len(wk) {
					t.Fatalf("%s: seq len %d != %d", tc.name, len(gk), len(wk))
				}
				for i := range wk {
					for d := 0; d < shape.HeadDim; d++ {
						if math.Float32bits(gk[i][d]) != math.Float32bits(wk[i][d]) {
							t.Fatalf("%s: key (%d,%d,%d,%d) differs", tc.name, l, h, i, d)
						}
						if math.Float32bits(gv[i][d]) != math.Float32bits(wv[i][d]) {
							t.Fatalf("%s: value (%d,%d,%d,%d) differs", tc.name, l, h, i, d)
						}
					}
				}
			}
		}
	}
}

// fillSpan builds an n-token contiguous token-major K/V span (token t at
// offset t*stride), seeded per token like fillToken.
func fillSpan(shape Shape, n, seed int) (k, v []float32) {
	stride := shape.KVHeads * shape.HeadDim
	k = make([]float32, 0, n*stride)
	v = make([]float32, 0, n*stride)
	for t := 0; t < n; t++ {
		_, _, kF, vF := fillToken(shape, seed+t)
		k = append(k, kF...)
		v = append(v, vF...)
	}
	return k, v
}

// TestAppendFlatNMatchesAppendFlat pins the multi-token append against
// token-at-a-time AppendFlat bit-for-bit on both flat-storage caches,
// across span sizes that leave pages partial, exactly full, and crossing
// multiple page boundaries from a non-aligned start.
func TestAppendFlatNMatchesAppendFlat(t *testing.T) {
	shape := Shape{Layers: 2, KVHeads: 3, HeadDim: 4}
	// Span sizes interleaved so PagedKV (pageTokens=4) sees partial fills,
	// exact fills, and multi-page spans starting mid-page.
	spans := []int{1, 3, 4, 9, 2, 0, 5}
	caches := []struct {
		name    string
		viaOne  Cache
		viaMany Cache
	}{
		{"full", NewFull(shape), NewFull(shape)},
		{"paged", NewPagedKV(shape, 4), NewPagedKV(shape, 4)},
	}
	for _, tc := range caches {
		many, ok := tc.viaMany.(FlatBatchAppender)
		if !ok {
			t.Fatalf("%s: no FlatBatchAppender", tc.name)
		}
		one := tc.viaOne.(FlatAppender)
		stride := shape.KVHeads * shape.HeadDim
		seed := 0
		for _, n := range spans {
			k, v := fillSpan(shape, n, seed)
			seed += n
			for l := 0; l < shape.Layers; l++ {
				for tok := 0; tok < n; tok++ {
					one.AppendFlat(l, k[tok*stride:(tok+1)*stride], v[tok*stride:(tok+1)*stride])
				}
				many.AppendFlatN(l, n, k, v)
			}
		}
		if got, want := tc.viaMany.TotalAppended(), tc.viaOne.TotalAppended(); got != want {
			t.Fatalf("%s: appended %d != %d", tc.name, got, want)
		}
		for l := 0; l < shape.Layers; l++ {
			for h := 0; h < shape.KVHeads; h++ {
				wk, wv := tc.viaOne.Seq(l, h)
				gk, gv := tc.viaMany.Seq(l, h)
				if len(gk) != len(wk) {
					t.Fatalf("%s: seq len %d != %d", tc.name, len(gk), len(wk))
				}
				for i := range wk {
					for d := 0; d < shape.HeadDim; d++ {
						if math.Float32bits(gk[i][d]) != math.Float32bits(wk[i][d]) ||
							math.Float32bits(gv[i][d]) != math.Float32bits(wv[i][d]) {
							t.Fatalf("%s: entry (%d,%d,%d,%d) differs", tc.name, l, h, i, d)
						}
					}
				}
			}
		}
		// Page boundaries must match too, not just the logical sequence.
		pOne, okOne := tc.viaOne.(PageReader)
		pMany, okMany := tc.viaMany.(PageReader)
		if okOne && okMany {
			for l := 0; l < shape.Layers; l++ {
				kw, _, _ := pOne.KVPages(l)
				kg, _, _ := pMany.KVPages(l)
				if len(kg) != len(kw) {
					t.Fatalf("%s: %d pages != %d", tc.name, len(kg), len(kw))
				}
				for p := range kw {
					if len(kg[p]) != len(kw[p]) {
						t.Fatalf("%s: page %d length %d != %d", tc.name, p, len(kg[p]), len(kw[p]))
					}
				}
			}
		}
	}
}

// TestAppendFlatNBudgetPanics verifies the multi-token append honours the
// page budget: a span that would open a page past the budget panics with
// ErrOutOfPages, exactly like token-at-a-time appends.
func TestAppendFlatNBudgetPanics(t *testing.T) {
	shape := Shape{Layers: 1, KVHeads: 1, HeadDim: 2}
	c := NewPagedKVBudget(shape, 2, 1) // one 2-token page
	k, v := fillSpan(shape, 3, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic past budget")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrOutOfPages) {
			t.Fatalf("panic %v is not ErrOutOfPages", r)
		}
	}()
	c.AppendFlatN(0, 3, k, v)
}

// TestAppendFlatNAllocFree pins the steady-state cost of the multi-token
// append: spans landing inside already-allocated page capacity copy without
// heap allocation (page opening is the only allocating event, priced by the
// prefill benchmarks).
func TestAppendFlatNAllocFree(t *testing.T) {
	shape := Shape{Layers: 2, KVHeads: 2, HeadDim: 4}
	const n = 4
	c := NewPagedKV(shape, 4096) // page big enough for the whole run
	k, v := fillSpan(shape, n, 3)
	for l := 0; l < shape.Layers; l++ { // open each layer's first page
		c.AppendFlatN(l, n, k, v)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for l := 0; l < shape.Layers; l++ {
			c.AppendFlatN(l, n, k, v)
		}
	}); allocs != 0 {
		t.Fatalf("AppendFlatN allocated %v per run", allocs)
	}
}

// TestAppendFlatBudgetPanics verifies AppendFlat honours the page budget
// exactly like Append: an unreserved append past the budget panics with
// ErrOutOfPages.
func TestAppendFlatBudgetPanics(t *testing.T) {
	shape := Shape{Layers: 1, KVHeads: 1, HeadDim: 2}
	c := NewPagedKVBudget(shape, 1, 1)
	_, _, kF, vF := fillToken(shape, 1)
	c.AppendFlat(0, kF, vF)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic past budget")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrOutOfPages) {
			t.Fatalf("panic %v is not ErrOutOfPages", r)
		}
	}()
	c.AppendFlat(0, kF, vF)
}

// TestAppendFlatLengthMismatch covers the flat-append contract panics.
func TestAppendFlatLengthMismatch(t *testing.T) {
	shape := Shape{Layers: 1, KVHeads: 2, HeadDim: 2}
	for _, c := range []FlatAppender{NewFull(shape), NewPagedKV(shape, 4)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on short flat append")
				}
			}()
			c.AppendFlat(0, make([]float32, 3), make([]float32, 4))
		}()
	}
}
