package kvcache

import (
	"errors"
	"math"
	"testing"
)

// fillToken builds one token's K/V both as per-head views and as the flat
// head-major vector the FlatAppender path consumes — same bytes, two entry
// points.
func fillToken(shape Shape, seed int) (kHeads, vHeads [][]float32, kFlat, vFlat []float32) {
	stride := shape.KVHeads * shape.HeadDim
	kFlat = make([]float32, stride)
	vFlat = make([]float32, stride)
	for i := range kFlat {
		kFlat[i] = float32(seed*31+i) / 7
		vFlat[i] = float32(seed*17-i) / 5
	}
	kHeads = make([][]float32, shape.KVHeads)
	vHeads = make([][]float32, shape.KVHeads)
	for h := 0; h < shape.KVHeads; h++ {
		kHeads[h] = kFlat[h*shape.HeadDim : (h+1)*shape.HeadDim]
		vHeads[h] = vFlat[h*shape.HeadDim : (h+1)*shape.HeadDim]
	}
	return
}

// TestAppendFlatMatchesAppend pins AppendFlat against Append bit-for-bit
// on both flat-storage caches: interleaving the two entry points must
// leave identical retained state.
func TestAppendFlatMatchesAppend(t *testing.T) {
	shape := Shape{Layers: 2, KVHeads: 3, HeadDim: 4}
	caches := []struct {
		name     string
		viaHeads Cache
		viaFlat  Cache
	}{
		{"full", NewFull(shape), NewFull(shape)},
		{"paged", NewPagedKV(shape, 2), NewPagedKV(shape, 2)},
	}
	for _, tc := range caches {
		fa, ok := tc.viaFlat.(FlatAppender)
		if !ok {
			t.Fatalf("%s: no FlatAppender", tc.name)
		}
		for tok := 0; tok < 7; tok++ {
			kH, vH, kF, vF := fillToken(shape, tok)
			for l := 0; l < shape.Layers; l++ {
				tc.viaHeads.Append(l, kH, vH)
				fa.AppendFlat(l, kF, vF)
			}
		}
		if got, want := tc.viaFlat.TotalAppended(), tc.viaHeads.TotalAppended(); got != want {
			t.Fatalf("%s: appended %d != %d", tc.name, got, want)
		}
		for l := 0; l < shape.Layers; l++ {
			for h := 0; h < shape.KVHeads; h++ {
				wk, wv := tc.viaHeads.Seq(l, h)
				gk, gv := tc.viaFlat.Seq(l, h)
				if len(gk) != len(wk) {
					t.Fatalf("%s: seq len %d != %d", tc.name, len(gk), len(wk))
				}
				for i := range wk {
					for d := 0; d < shape.HeadDim; d++ {
						if math.Float32bits(gk[i][d]) != math.Float32bits(wk[i][d]) {
							t.Fatalf("%s: key (%d,%d,%d,%d) differs", tc.name, l, h, i, d)
						}
						if math.Float32bits(gv[i][d]) != math.Float32bits(wv[i][d]) {
							t.Fatalf("%s: value (%d,%d,%d,%d) differs", tc.name, l, h, i, d)
						}
					}
				}
			}
		}
	}
}

// TestAppendFlatBudgetPanics verifies AppendFlat honours the page budget
// exactly like Append: an unreserved append past the budget panics with
// ErrOutOfPages.
func TestAppendFlatBudgetPanics(t *testing.T) {
	shape := Shape{Layers: 1, KVHeads: 1, HeadDim: 2}
	c := NewPagedKVBudget(shape, 1, 1)
	_, _, kF, vF := fillToken(shape, 1)
	c.AppendFlat(0, kF, vF)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic past budget")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrOutOfPages) {
			t.Fatalf("panic %v is not ErrOutOfPages", r)
		}
	}()
	c.AppendFlat(0, kF, vF)
}

// TestAppendFlatLengthMismatch covers the flat-append contract panics.
func TestAppendFlatLengthMismatch(t *testing.T) {
	shape := Shape{Layers: 1, KVHeads: 2, HeadDim: 2}
	for _, c := range []FlatAppender{NewFull(shape), NewPagedKV(shape, 4)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on short flat append")
				}
			}()
			c.AppendFlat(0, make([]float32, 3), make([]float32, 4))
		}()
	}
}
