package kvcache

import (
	"testing"
	"testing/quick"
)

func TestForkSharesBlocks(t *testing.T) {
	s := NewSharing(16, 4, 10)
	if err := s.Grow(1, 8); err != nil { // 2 blocks
		t.Fatal(err)
	}
	used := s.Inner().UsedBlocks()
	if err := s.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	if s.Inner().UsedBlocks() != used {
		t.Fatal("fork should allocate nothing")
	}
	if s.SharedBlocks() != 2 {
		t.Fatalf("shared blocks = %d", s.SharedBlocks())
	}
	if s.SeqLen(2) != 8 {
		t.Fatalf("child len = %d", s.SeqLen(2))
	}
}

func TestForkErrors(t *testing.T) {
	s := NewSharing(8, 4, 10)
	if err := s.Fork(9, 2); err == nil {
		t.Fatal("unknown parent should error")
	}
	s.Grow(1, 4)
	s.Fork(1, 2)
	if err := s.Fork(1, 2); err == nil {
		t.Fatal("existing child should error")
	}
}

func TestCopyOnWriteOnSharedTail(t *testing.T) {
	s := NewSharing(16, 4, 10)
	s.Grow(1, 6) // partial last block (2 of 4 slots used)
	s.Fork(1, 2)
	// Child grows into the shared partial block → CoW.
	if err := s.Grow(2, 8); err != nil {
		t.Fatal(err)
	}
	if s.CoWCopies() != 1 {
		t.Fatalf("cow copies = %d", s.CoWCopies())
	}
	// Parent and child now diverge: their last blocks differ.
	p := s.Inner().BlockTable(1)
	c := s.Inner().BlockTable(2)
	if p[len(p)-1] == c[len(c)-1] {
		t.Fatal("tail block still shared after CoW")
	}
	// The common prefix block remains shared.
	if p[0] != c[0] {
		t.Fatal("prefix block should stay shared")
	}
}

func TestNoCoWOnBlockAlignedGrowth(t *testing.T) {
	s := NewSharing(16, 4, 10)
	s.Grow(1, 8) // exactly 2 full blocks
	s.Fork(1, 2)
	if err := s.Grow(2, 12); err != nil { // new block only
		t.Fatal(err)
	}
	if s.CoWCopies() != 0 {
		t.Fatal("block-aligned growth should not copy")
	}
}

func TestReleaseRespectsRefcounts(t *testing.T) {
	s := NewSharing(16, 4, 10)
	s.Grow(1, 8)
	s.Fork(1, 2)
	s.Release(1)
	// Blocks still owned by the child.
	if s.Inner().UsedBlocks() != 2 {
		t.Fatalf("used = %d after parent release", s.Inner().UsedBlocks())
	}
	s.Release(2)
	if s.Inner().UsedBlocks() != 0 {
		t.Fatal("blocks leaked after both released")
	}
}

func TestSharedShrinkKeepsOthersSafe(t *testing.T) {
	// The sparsity-on-paged subtlety: shrinking one sequence must not free
	// blocks its sibling still reads.
	s := NewSharing(16, 4, 10)
	s.Grow(1, 12)
	s.Fork(1, 2)
	if err := s.Shrink(2, 4); err != nil {
		t.Fatal(err)
	}
	// Parent still intact at 12 tokens over 3 blocks.
	if s.SeqLen(1) != 12 || len(s.Inner().BlockTable(1)) != 3 {
		t.Fatal("sibling corrupted by shrink")
	}
	// No block was freed (all still referenced by parent).
	if s.Inner().UsedBlocks() != 3 {
		t.Fatalf("used = %d", s.Inner().UsedBlocks())
	}
}

func TestCoWOutOfBlocks(t *testing.T) {
	s := NewSharing(2, 4, 10)
	s.Grow(1, 6) // both blocks used, last partial
	s.Fork(1, 2)
	if err := s.Grow(2, 7); err != ErrOutOfBlocks {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
}

// Property: refcount conservation — used blocks equal the blocks reachable
// from live tables, and every table block has a positive refcount.
func TestQuickSharingInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSharing(24, 4, 10)
		s.Grow(0, 8)
		nextChild := 1
		for _, op := range ops {
			seq := int(op>>8) % 4
			n := int(op&0xff) % 32
			switch op % 4 {
			case 0:
				if n >= s.SeqLen(seq) {
					_ = s.Grow(seq, n)
				}
			case 1:
				if n <= s.SeqLen(seq) && s.SeqLen(seq) > 0 {
					_ = s.Shrink(seq, n)
				}
			case 2:
				if s.SeqLen(seq) > 0 && nextChild < 4 {
					_ = s.Fork(seq, nextChild)
					nextChild++
				}
			case 3:
				s.Release(seq)
			}
		}
		reachable := map[int]bool{}
		for _, id := range s.Inner().Sequences() {
			for _, b := range s.Inner().BlockTable(id) {
				if s.refs[b] <= 0 {
					return false
				}
				reachable[b] = true
			}
		}
		return len(reachable) == s.Inner().UsedBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
