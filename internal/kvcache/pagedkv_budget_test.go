package kvcache

import (
	"errors"
	"testing"
)

func appendTokens(t *testing.T, c *PagedKV, n int, base float32) {
	t.Helper()
	sh := c.Shape()
	k := make([][]float32, sh.KVHeads)
	v := make([][]float32, sh.KVHeads)
	for i := 0; i < n; i++ {
		for h := 0; h < sh.KVHeads; h++ {
			k[h] = make([]float32, sh.HeadDim)
			v[h] = make([]float32, sh.HeadDim)
			for d := 0; d < sh.HeadDim; d++ {
				k[h][d] = base + float32(i*100+h*10+d)
				v[h][d] = -(base + float32(i*100+h*10+d))
			}
		}
		for l := 0; l < sh.Layers; l++ {
			c.Append(l, k, v)
		}
	}
}

func TestPagedKVBudgetReserve(t *testing.T) {
	sh := Shape{Layers: 2, KVHeads: 2, HeadDim: 4}
	c := NewPagedKVBudget(sh, 4, 2) // 2 pages of 4 tokens = 8 tokens max

	if err := c.Reserve(8); err != nil {
		t.Fatalf("Reserve(8) within budget: %v", err)
	}
	appendTokens(t, c, 8, 0)
	if got := c.Pages(); got != 2 {
		t.Fatalf("Pages = %d, want 2", got)
	}
	err := c.Reserve(1)
	if err == nil {
		t.Fatal("Reserve(1) past budget succeeded")
	}
	if !errors.Is(err, ErrOutOfPages) {
		t.Fatalf("Reserve error %v is not ErrOutOfPages", err)
	}
	// The cache did not overgrow.
	if got := c.TotalAppended(); got != 8 {
		t.Fatalf("TotalAppended = %d, want 8", got)
	}

	// An unreserved append past the budget is a contract violation and
	// must panic with the typed error, never silently grow.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("append past budget did not panic")
			}
			if err, ok := r.(error); !ok || !errors.Is(err, ErrOutOfPages) {
				t.Fatalf("panic value %v is not ErrOutOfPages", r)
			}
		}()
		appendTokens(t, c, 1, 99)
	}()
}

func TestPagedKVSetPageBudget(t *testing.T) {
	sh := Shape{Layers: 1, KVHeads: 1, HeadDim: 2}
	c := NewPagedKV(sh, 2)
	appendTokens(t, c, 6, 0) // 3 pages
	if err := c.SetPageBudget(2); !errors.Is(err, ErrOutOfPages) {
		t.Fatalf("SetPageBudget below allocation = %v, want ErrOutOfPages", err)
	}
	if err := c.SetPageBudget(3); err != nil {
		t.Fatalf("SetPageBudget(3): %v", err)
	}
	if err := c.Reserve(1); !errors.Is(err, ErrOutOfPages) {
		t.Fatalf("Reserve(1) at exact budget = %v, want ErrOutOfPages", err)
	}
	if err := c.SetPageBudget(0); err != nil {
		t.Fatalf("clearing budget: %v", err)
	}
	if err := c.Reserve(100); err != nil {
		t.Fatalf("Reserve unbounded: %v", err)
	}
}

func TestPagedKVClonePrefixIsolation(t *testing.T) {
	sh := Shape{Layers: 2, KVHeads: 2, HeadDim: 4}
	parent := NewPagedKV(sh, 4)
	appendTokens(t, parent, 6, 0) // 1 full page + 1 partial (2 tokens)

	clone := parent.ClonePrefix()
	if got, want := clone.TotalAppended(), 6; got != want {
		t.Fatalf("clone TotalAppended = %d, want %d", got, want)
	}
	if got := clone.SharedPages(); got != 1 {
		t.Fatalf("SharedPages = %d, want 1 (partial page deep-copied)", got)
	}

	// Clone content matches parent exactly before divergence.
	for l := 0; l < sh.Layers; l++ {
		for h := 0; h < sh.KVHeads; h++ {
			pk, pv := parent.Seq(l, h)
			ck, cv := clone.Seq(l, h)
			for i := range pk {
				for d := range pk[i] {
					if pk[i][d] != ck[i][d] || pv[i][d] != cv[i][d] {
						t.Fatalf("clone diverges at layer %d head %d token %d", l, h, i)
					}
				}
			}
		}
	}

	// Diverge: parent and clone each append different tokens; neither may
	// see the other's writes (the partial page was copied, full pages are
	// immutable).
	appendTokens(t, parent, 3, 1000)
	appendTokens(t, clone, 3, 2000)
	pk, _ := parent.Seq(0, 0)
	ck, _ := clone.Seq(0, 0)
	if pk[6][0] == ck[6][0] {
		t.Fatal("parent and clone share post-divergence storage")
	}
	for i := 0; i < 6; i++ {
		for d := range pk[i] {
			if pk[i][d] != ck[i][d] {
				t.Fatalf("shared prefix corrupted at token %d", i)
			}
		}
	}
}
