package kvcache

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func qShape() Shape { return Shape{Layers: 2, KVHeads: 2, HeadDim: 4} }

// qFill appends n tokens of deterministic pseudo-random K/V to every layer
// via AppendFlat, returning the flat token-major spans it stored.
func qFill(c *PagedKV, n int, seed int64) (k, v []float32) {
	shape := c.Shape()
	stride := shape.KVHeads * shape.HeadDim
	r := rand.New(rand.NewSource(seed))
	k = make([]float32, n*stride)
	v = make([]float32, n*stride)
	for i := range k {
		k[i] = float32(r.NormFloat64())
		v[i] = float32(r.NormFloat64())
	}
	for t := 0; t < n; t++ {
		for l := 0; l < shape.Layers; l++ {
			c.AppendFlat(l, k[t*stride:(t+1)*stride], v[t*stride:(t+1)*stride])
		}
	}
	return k, v
}

func quantPagesEqual(a, b []QuantPage) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].KCodes) != len(b[i].KCodes) || len(a[i].KParams) != len(b[i].KParams) {
			return false
		}
		for j := range a[i].KCodes {
			if a[i].KCodes[j] != b[i].KCodes[j] || a[i].VCodes[j] != b[i].VCodes[j] {
				return false
			}
		}
		for j := range a[i].KParams {
			if a[i].KParams[j] != b[i].KParams[j] || a[i].VParams[j] != b[i].VParams[j] {
				return false
			}
		}
	}
	return true
}

// AppendFlatN must split a multi-token span across page boundaries and
// quantize to exactly the pages n successive AppendFlat calls produce.
func TestQuantAppendFlatNMatchesPerToken(t *testing.T) {
	for _, bits := range []int{8, 4} {
		const pageTokens, n = 4, 11 // 2 full pages + a 3-token tail
		one := NewPagedKVQuant(qShape(), pageTokens, 0, bits)
		k, v := qFill(one, n, 42)

		batch := NewPagedKVQuant(qShape(), pageTokens, 0, bits)
		for l := 0; l < qShape().Layers; l++ {
			batch.AppendFlatN(l, n, k, v)
		}
		if batch.TotalAppended() != n || one.TotalAppended() != n {
			t.Fatalf("bits=%d: appended %d/%d, want %d", bits, batch.TotalAppended(), one.TotalAppended(), n)
		}
		for l := 0; l < qShape().Layers; l++ {
			ap, _ := one.QuantPages(l)
			bp, _ := batch.QuantPages(l)
			if len(ap) != 3 {
				t.Fatalf("bits=%d layer %d: %d pages, want 3", bits, l, len(ap))
			}
			if !quantPagesEqual(ap, bp) {
				t.Fatalf("bits=%d layer %d: AppendFlatN pages differ from per-token appends", bits, l)
			}
		}
	}
}

// ClonePrefix over a quantized cache must share full pages by reference —
// without re-quantizing them — and deep-copy only the partial tail.
func TestQuantClonePrefixSharesFullPages(t *testing.T) {
	const pageTokens = 4
	c := NewPagedKVQuant(qShape(), pageTokens, 0, 8)
	qFill(c, 6, 9) // 1 full page + 2-token tail
	origPages, _ := c.QuantPages(0)
	fullKCodes := append([]uint8(nil), origPages[0].KCodes...)

	n := c.ClonePrefix()
	if n.SharedPages() != 1 {
		t.Fatalf("shared pages = %d, want 1", n.SharedPages())
	}
	cp, _ := c.QuantPages(0)
	np, _ := n.QuantPages(0)
	if &cp[0].KCodes[0] != &np[0].KCodes[0] || &cp[0].KParams[0] != &np[0].KParams[0] {
		t.Fatalf("full quantized page was copied, want shared backing storage")
	}
	if &cp[1].KCodes[0] == &np[1].KCodes[0] {
		t.Fatalf("partial tail page shares storage, want deep copy")
	}

	// Divergent appends: the clone and original grow independently and the
	// shared full page's codes never change (no re-quantization).
	stride := qShape().KVHeads * qShape().HeadDim
	tok := make([]float32, stride)
	for i := range tok {
		tok[i] = float32(i) * 0.5
	}
	for l := 0; l < qShape().Layers; l++ {
		n.AppendFlat(l, tok, tok)
	}
	if c.TotalAppended() != 6 || n.TotalAppended() != 7 {
		t.Fatalf("appended = %d/%d, want 6/7", c.TotalAppended(), n.TotalAppended())
	}
	if got := origPages[0].KCodes; len(got) != len(fullKCodes) {
		t.Fatalf("shared page code length changed")
	} else {
		for i := range got {
			if got[i] != fullKCodes[i] {
				t.Fatalf("shared full page was re-quantized at code %d", i)
			}
		}
	}
	if cp2, _ := c.QuantPages(0); cp2[1].Tokens(qShape().KVHeads) != 2 {
		t.Fatalf("original tail grew with the clone")
	}
}

// Seq must return dequantized views whose error is bounded by half a code
// step, and the quantized cache must report Len consistently.
func TestQuantSeqDequantizedWithinStep(t *testing.T) {
	for _, bits := range []int{8, 4} {
		c := NewPagedKVQuant(qShape(), 4, 0, bits)
		k, _ := qFill(c, 10, 5)
		stride := qShape().KVHeads * qShape().HeadDim
		d := qShape().HeadDim
		for head := 0; head < qShape().KVHeads; head++ {
			keys, vals := c.Seq(0, head)
			if len(keys) != 10 || len(vals) != 10 || c.Len(0, head) != 10 {
				t.Fatalf("bits=%d: Seq returned %d/%d entries, Len %d, want 10", bits, len(keys), len(vals), c.Len(0, head))
			}
			for i := range keys {
				orig := k[i*stride+head*d : i*stride+(head+1)*d]
				lo, hi := orig[0], orig[0]
				for _, x := range orig {
					lo = float32(math.Min(float64(lo), float64(x)))
					hi = float32(math.Max(float64(hi), float64(x)))
				}
				step := float64(hi-lo) / float64(int(1)<<bits-1)
				tol := step*0.5 + float64(hi-lo)*1.0/1024 + 1e-6 // half a code + fp16 param rounding
				for j := range keys[i] {
					if err := math.Abs(float64(keys[i][j] - orig[j])); err > tol {
						t.Fatalf("bits=%d token %d elem %d: dequant error %g exceeds %g", bits, i, j, err, tol)
					}
				}
			}
		}
	}
}

// The quantized backend keeps the page budget contract: Reserve fails with
// ErrOutOfPages past the budget and unreserved appends panic.
func TestQuantBudgetContract(t *testing.T) {
	c := NewPagedKVQuant(qShape(), 4, 2, 8)
	qFill(c, 8, 1) // exactly 2 pages
	if err := c.Reserve(1); !errors.Is(err, ErrOutOfPages) {
		t.Fatalf("Reserve past budget: got %v, want ErrOutOfPages", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("unreserved append past budget did not panic")
		}
	}()
	stride := qShape().KVHeads * qShape().HeadDim
	c.AppendFlat(0, make([]float32, stride), make([]float32, stride))
}

// KVPages on a quantized cache is a read-path contract violation.
func TestQuantKVPagesPanics(t *testing.T) {
	c := NewPagedKVQuant(qShape(), 4, 0, 4)
	defer func() {
		if recover() == nil {
			t.Fatalf("KVPages on a quantized cache did not panic")
		}
	}()
	c.KVPages(0)
}

// The byte-budget scaling: fp32 unchanged, int8/int4 hold strictly more
// pages per byte (≥2× at this shape), and quantized MemoryBytes undercuts
// the fp32 cache's FP16-equivalent footprint.
func TestQuantPageAccounting(t *testing.T) {
	shape, pt := qShape(), 16
	if got := ScaledPageBudget(24, shape, pt, 0); got != 24 {
		t.Fatalf("bits=0 budget scaled to %d, want 24", got)
	}
	b8 := ScaledPageBudget(24, shape, pt, 8)
	b4 := ScaledPageBudget(24, shape, pt, 4)
	if b8 < 48 || b4 <= b8 {
		t.Fatalf("scaled budgets int8=%d int4=%d, want ≥48 and int4 > int8", b8, b4)
	}
	fp := NewPagedKVBudget(shape, pt, 0)
	q := NewPagedKVQuant(shape, pt, 0, 4)
	qFill(fp, 40, 2)
	qFill(q, 40, 2)
	if q.MemoryBytes() >= fp.MemoryBytes() {
		t.Fatalf("quantized MemoryBytes %d not below fp32 cache's %d", q.MemoryBytes(), fp.MemoryBytes())
	}
}
