package kvcache

// PagedKV is a full-precision cache whose K/V tensors live in fixed-size
// flat pages instead of one contiguous buffer — the data-plane counterpart
// of PagedAllocator's block-table bookkeeping. Each page is a token-major
// flat []float32 block holding up to PageTokens tokens (token i of the page,
// head h at offset i*stride + h*HeadDim, stride = KVHeads*HeadDim); the last
// page is partially filled. Pages are never copied or concatenated on read:
// attention streams them via PageReader (see attention.PagedStrided) or the
// model's paged hot path, and MemoryBytes charges whole allocated pages,
// making internal fragmentation visible exactly as a paged engine pays it.
type PagedKV struct {
	shape      Shape
	pageTokens int
	keyPages   [][][]float32 // [layer][page] flat token-major block
	valPages   [][][]float32
	appended   int
}

// PageReader is the zero-copy read path over page-granular flat storage.
// KVPages returns one layer's pages; within a page, token i's vector for
// head h occupies page[i*stride + h*HeadDim : ...+HeadDim] and the page's
// token count is len(page)/stride. The returned slices alias cache-owned
// storage and are valid until the next Append.
type PageReader interface {
	KVPages(layer int) (keyPages, valPages [][]float32, stride int)
	PageTokens() int
}

// NewPagedKV allocates an empty paged cache with the given page size in
// tokens. It panics on an invalid shape or non-positive page size.
func NewPagedKV(shape Shape, pageTokens int) *PagedKV {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if pageTokens <= 0 {
		panic("kvcache: non-positive page size")
	}
	return &PagedKV{
		shape:      shape,
		pageTokens: pageTokens,
		keyPages:   make([][][]float32, shape.Layers),
		valPages:   make([][][]float32, shape.Layers),
	}
}

// Shape returns the cache dimensions.
func (c *PagedKV) Shape() Shape { return c.shape }

// PageTokens returns the page capacity in tokens.
func (c *PagedKV) PageTokens() int { return c.pageTokens }

func (c *PagedKV) stride() int { return c.shape.KVHeads * c.shape.HeadDim }

// Append stores one token's K/V for the given layer, opening a fresh page
// when the current one is full.
func (c *PagedKV) Append(layer int, k, v [][]float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic("kvcache: layer out of range")
	}
	if len(k) != c.shape.KVHeads || len(v) != c.shape.KVHeads {
		panic("kvcache: head count mismatch on append")
	}
	stride := c.stride()
	pages := c.keyPages[layer]
	if len(pages) == 0 || len(pages[len(pages)-1]) == c.pageTokens*stride {
		c.keyPages[layer] = append(c.keyPages[layer], make([]float32, 0, c.pageTokens*stride))
		c.valPages[layer] = append(c.valPages[layer], make([]float32, 0, c.pageTokens*stride))
	}
	last := len(c.keyPages[layer]) - 1
	for h := 0; h < c.shape.KVHeads; h++ {
		if len(k[h]) != c.shape.HeadDim || len(v[h]) != c.shape.HeadDim {
			panic("kvcache: head dim mismatch on append")
		}
		c.keyPages[layer][last] = append(c.keyPages[layer][last], k[h]...)
		c.valPages[layer][last] = append(c.valPages[layer][last], v[h]...)
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// KVPages implements PageReader with zero copies and zero allocation.
func (c *PagedKV) KVPages(layer int) (keyPages, valPages [][]float32, stride int) {
	return c.keyPages[layer], c.valPages[layer], c.stride()
}

// Seq returns per-token views spanning the pages — the generic (allocating)
// read path; hot paths should stream KVPages instead.
func (c *PagedKV) Seq(layer, head int) (keys, values [][]float32) {
	d := c.shape.HeadDim
	stride := c.stride()
	off := head * d
	n := c.Len(layer, head)
	keys = make([][]float32, 0, n)
	values = make([][]float32, 0, n)
	for p := range c.keyPages[layer] {
		kp, vp := c.keyPages[layer][p], c.valPages[layer][p]
		for i := 0; i < len(kp)/stride; i++ {
			base := i*stride + off
			keys = append(keys, kp[base:base+d])
			values = append(values, vp[base:base+d])
		}
	}
	return keys, values
}

// Positions returns 0..n-1: the paged cache retains every position.
func (c *PagedKV) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports the retained entry count for a head (uniform for PagedKV).
func (c *PagedKV) Len(layer, head int) int {
	stride := c.stride()
	n := 0
	for _, p := range c.keyPages[layer] {
		n += len(p) / stride
	}
	return n
}

// TotalAppended reports how many tokens have been appended.
func (c *PagedKV) TotalAppended() int { return c.appended }

// MemoryBytes charges every allocated page at full capacity (K and V), in
// FP16-equivalent bytes — internal fragmentation included, as a paged engine
// actually pays it.
func (c *PagedKV) MemoryBytes() int64 {
	var pages int64
	for l := range c.keyPages {
		pages += int64(len(c.keyPages[l]))
	}
	return pages * int64(c.pageTokens) * int64(c.stride()) * 2 * BytesPerElemFP16
}
