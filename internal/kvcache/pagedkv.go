package kvcache

import (
	"errors"
	"fmt"

	"rethinkkv/internal/stats"
)

// ErrOutOfPages is returned when a budgeted PagedKV cannot hold more
// tokens: the page-granular out-of-memory condition a real paged engine
// hits when the KV pool is exhausted. The continuous-batching scheduler
// (internal/sched) treats it as the preemption trigger. Test with
// errors.Is; the public facade re-exports it as rethinkkv.ErrOutOfPages.
var ErrOutOfPages = errors.New("kvcache: out of KV pages")

// PagedKV is a full-precision cache whose K/V tensors live in fixed-size
// flat pages instead of one contiguous buffer — the data-plane counterpart
// of PagedAllocator's block-table bookkeeping. Each page is a token-major
// flat []float32 block holding up to PageTokens tokens (token i of the page,
// head h at offset i*stride + h*HeadDim, stride = KVHeads*HeadDim); the last
// page is partially filled. Pages are never copied or concatenated on read:
// attention streams them via PageReader (see attention.PagedStrided) or the
// model's paged hot path, and MemoryBytes charges whole allocated pages,
// making internal fragmentation visible exactly as a paged engine pays it.
type PagedKV struct {
	shape      Shape
	pageTokens int
	// maxPages bounds the per-layer page count (every layer grows in
	// lockstep, so the budget is counted once, not per layer); 0 means
	// unbounded. Exceeding it surfaces as ErrOutOfPages from Reserve —
	// never as silent overgrowth.
	maxPages int
	keyPages [][][]float32 // [layer][page] flat token-major block
	valPages [][][]float32
	appended int
	// shared marks the prefix of each layer's pages (all layers share the
	// same count) that alias another cache's storage after ClonePrefix;
	// those pages are full and immutable, so sharing is safe, but they
	// must not be appended to.
	shared int
	// qbits selects the quantized page backend (see qpage.go): 0 stores
	// full-precision fp32 pages in keyPages/valPages; 4 or 8 quantizes every
	// token's K/V on append into qPages instead, and the fp32 page slices
	// stay empty.
	qbits  int
	qPages [][]QuantPage // [layer][page], only when qbits != 0
	// summaries turns on per-page key min/max metadata for Quest-style
	// sparse attention (see summary.go); kSumms[layer][page] holds 2*stride
	// floats (min block, then max block), aligned with the page index.
	summaries bool
	kSumms    [][][]float32
}

// PageReader is the zero-copy read path over page-granular flat storage.
// KVPages returns one layer's pages; within a page, token i's vector for
// head h occupies page[i*stride + h*HeadDim : ...+HeadDim] and the page's
// token count is len(page)/stride. The returned slices alias cache-owned
// storage and are valid until the next Append.
type PageReader interface {
	KVPages(layer int) (keyPages, valPages [][]float32, stride int)
	PageTokens() int
}

// NewPagedKV allocates an empty paged cache with the given page size in
// tokens. It panics on an invalid shape or non-positive page size.
func NewPagedKV(shape Shape, pageTokens int) *PagedKV {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	if pageTokens <= 0 {
		panic("kvcache: non-positive page size")
	}
	return &PagedKV{
		shape:      shape,
		pageTokens: pageTokens,
		keyPages:   make([][][]float32, shape.Layers),
		valPages:   make([][][]float32, shape.Layers),
	}
}

// NewPagedKVBudget is NewPagedKV with a hard per-layer page budget: once
// the cache holds maxPages*PageTokens tokens, Reserve reports
// ErrOutOfPages instead of growing. maxPages <= 0 means unbounded.
func NewPagedKVBudget(shape Shape, pageTokens, maxPages int) *PagedKV {
	c := NewPagedKV(shape, pageTokens)
	if maxPages > 0 {
		c.maxPages = maxPages
	}
	return c
}

// SetPageBudget installs or clears (n <= 0) the per-layer page budget. It
// returns ErrOutOfPages without changing anything if the cache already
// holds more pages than the new budget allows.
func (c *PagedKV) SetPageBudget(n int) error {
	if n > 0 && c.Pages() > n {
		return fmt.Errorf("%w: %d pages already allocated, budget %d", ErrOutOfPages, c.Pages(), n)
	}
	c.maxPages = stats.MaxI(n, 0)
	return nil
}

// PageBudget returns the per-layer page budget (0 = unbounded).
func (c *PagedKV) PageBudget() int { return c.maxPages }

// PagesFor returns the page count needed to hold tokens tokens at the
// given page size.
func PagesFor(tokens, pageTokens int) int {
	return (tokens + pageTokens - 1) / pageTokens
}

// Pages returns the per-layer page count currently allocated.
func (c *PagedKV) Pages() int { return PagesFor(c.appended, c.pageTokens) }

// Reserve reports whether the cache can grow by extraTokens more tokens
// under its page budget, returning ErrOutOfPages (wrapped, test with
// errors.Is) when it cannot. This is the non-panicking admission check a
// scheduler runs before prefilling a prompt or decoding a step; Append
// within a successful reservation never fails.
func (c *PagedKV) Reserve(extraTokens int) error {
	if c.maxPages <= 0 || extraTokens <= 0 {
		return nil
	}
	if need := PagesFor(c.appended+extraTokens, c.pageTokens); need > c.maxPages {
		return fmt.Errorf("%w: need %d pages for %d tokens, budget %d", ErrOutOfPages, need, c.appended+extraTokens, c.maxPages)
	}
	return nil
}

// Shape returns the cache dimensions.
func (c *PagedKV) Shape() Shape { return c.shape }

// PageTokens returns the page capacity in tokens.
func (c *PagedKV) PageTokens() int { return c.pageTokens }

func (c *PagedKV) stride() int { return c.shape.KVHeads * c.shape.HeadDim }

// Append stores one token's K/V for the given layer, opening a fresh page
// when the current one is full. Under a page budget callers must check
// Reserve first: appending past the budget is a caller contract violation
// and panics with ErrOutOfPages rather than silently overgrowing.
func (c *PagedKV) Append(layer int, k, v [][]float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic("kvcache: layer out of range")
	}
	if len(k) != c.shape.KVHeads || len(v) != c.shape.KVHeads {
		panic("kvcache: head count mismatch on append")
	}
	if c.qbits != 0 {
		p := c.qPageForAppend(layer)
		var summ []float32
		init := false
		if c.summaries {
			summ = c.kSumms[layer][len(c.qPages[layer])-1]
			init = p.Tokens(c.shape.KVHeads) == 0
		}
		d, stride := c.shape.HeadDim, c.stride()
		for h := 0; h < c.shape.KVHeads; h++ {
			if len(k[h]) != d || len(v[h]) != d {
				panic("kvcache: head dim mismatch on append")
			}
			var smin, smax []float32
			if summ != nil {
				smin = summ[h*d : (h+1)*d]
				smax = summ[stride+h*d : stride+(h+1)*d]
			}
			p.KCodes, p.KParams = quantAppendSlice(p.KCodes, p.KParams, k[h], c.qbits, smin, smax, init)
			p.VCodes, p.VParams = quantAppendSlice(p.VCodes, p.VParams, v[h], c.qbits, nil, nil, false)
		}
		if layer == c.shape.Layers-1 {
			c.appended++
		}
		return
	}
	last := c.pageForAppend(layer)
	var summ []float32
	init := false
	if c.summaries {
		summ = c.kSumms[layer][last]
		init = len(c.keyPages[layer][last]) == 0
	}
	stride := c.stride()
	for h := 0; h < c.shape.KVHeads; h++ {
		if len(k[h]) != c.shape.HeadDim || len(v[h]) != c.shape.HeadDim {
			panic("kvcache: head dim mismatch on append")
		}
		if summ != nil {
			summUpdateSeg(summ, stride, h*c.shape.HeadDim, k[h], init)
		}
		c.keyPages[layer][last] = append(c.keyPages[layer][last], k[h]...)
		c.valPages[layer][last] = append(c.valPages[layer][last], v[h]...)
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// AppendFlat implements FlatAppender: one token's K/V arrive as flat
// head-major vectors (length KVHeads*HeadDim) and are copied onto the
// current page in a single append each — the same bytes Append stores head
// by head, the same page-opening and budget rules. A fused batch step
// calls this once per (session, layer); there is no cross-session batched
// append because sessions own distinct caches (see FlatAppender).
func (c *PagedKV) AppendFlat(layer int, k, v []float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic("kvcache: layer out of range")
	}
	if stride := c.stride(); len(k) != stride || len(v) != stride {
		panic("kvcache: flat append length mismatch")
	}
	if c.qbits != 0 {
		c.appendQuantToken(layer, k, v)
		if layer == c.shape.Layers-1 {
			c.appended++
		}
		return
	}
	last := c.pageForAppend(layer)
	if c.summaries {
		summUpdateSeg(c.kSumms[layer][last], c.stride(), 0, k, len(c.keyPages[layer][last]) == 0)
	}
	c.keyPages[layer][last] = append(c.keyPages[layer][last], k...)
	c.valPages[layer][last] = append(c.valPages[layer][last], v...)
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// AppendFlatN implements FlatBatchAppender: n tokens' K/V arrive as one
// contiguous token-major span and are split across pages — filling the
// current partial page, then whole pages, then a trailing partial — under
// the same budget rules as single-token appends (callers must Reserve
// first; an unreserved append past the budget panics with ErrOutOfPages).
// The stored bytes, page boundaries included, are identical to n successive
// AppendFlat calls over the same spans.
func (c *PagedKV) AppendFlatN(layer, n int, k, v []float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic("kvcache: layer out of range")
	}
	stride := c.stride()
	if n < 0 || len(k) != n*stride || len(v) != len(k) {
		panic("kvcache: flat append length mismatch")
	}
	if c.qbits != 0 {
		// Each token quantizes independently at append, so the chunked form
		// is the per-token form by construction: same codes, same params,
		// same page boundaries as n successive AppendFlat calls.
		for t := 0; t < n; t++ {
			c.appendQuantToken(layer, k[t*stride:(t+1)*stride], v[t*stride:(t+1)*stride])
		}
		if layer == c.shape.Layers-1 {
			c.appended += n
		}
		return
	}
	pageCap := c.pageTokens * stride
	for len(k) > 0 {
		last := c.pageForAppend(layer)
		held := len(c.keyPages[layer][last])
		room := pageCap - held
		if room > len(k) {
			room = len(k)
		}
		if c.summaries {
			// Fold token by token: room is always a whole number of tokens
			// (page capacity and the span are both multiples of stride), and
			// the per-token fold makes the summary independent of how the
			// span happens to split across pages.
			summ := c.kSumms[layer][last]
			for t := 0; t < room/stride; t++ {
				summUpdateSeg(summ, stride, 0, k[t*stride:(t+1)*stride], held == 0 && t == 0)
			}
		}
		c.keyPages[layer][last] = append(c.keyPages[layer][last], k[:room]...)
		c.valPages[layer][last] = append(c.valPages[layer][last], v[:room]...)
		k, v = k[room:], v[room:]
	}
	if layer == c.shape.Layers-1 {
		c.appended += n
	}
}

// pageForAppend returns the page index the next token's K/V goes into,
// opening a fresh page — budget-checked, never touching full (possibly
// shared) pages — when the current one is full.
func (c *PagedKV) pageForAppend(layer int) int {
	stride := c.stride()
	pages := c.keyPages[layer]
	if len(pages) == 0 || len(pages[len(pages)-1]) == c.pageTokens*stride {
		if c.maxPages > 0 && len(pages) >= c.maxPages {
			panic(fmt.Errorf("%w: unreserved append past %d-page budget", ErrOutOfPages, c.maxPages))
		}
		c.keyPages[layer] = append(c.keyPages[layer], make([]float32, 0, c.pageTokens*stride))
		c.valPages[layer] = append(c.valPages[layer], make([]float32, 0, c.pageTokens*stride))
		if c.summaries {
			c.summOpenPage(layer)
		}
	}
	return len(c.keyPages[layer]) - 1
}

// KVPages implements PageReader with zero copies and zero allocation. A
// quantized cache has no fp32 pages to stream — readers must dispatch on
// QuantReader first (the model's hot path does); calling KVPages on one is a
// contract violation and panics rather than silently attending over nothing.
func (c *PagedKV) KVPages(layer int) (keyPages, valPages [][]float32, stride int) {
	if c.qbits != 0 {
		panic("kvcache: KVPages on a quantized cache; read QuantPages instead")
	}
	return c.keyPages[layer], c.valPages[layer], c.stride()
}

// Seq returns per-token views spanning the pages — the generic (allocating)
// read path; hot paths should stream KVPages instead.
func (c *PagedKV) Seq(layer, head int) (keys, values [][]float32) {
	if c.qbits != 0 {
		return c.seqQuant(layer, head)
	}
	d := c.shape.HeadDim
	stride := c.stride()
	off := head * d
	n := c.Len(layer, head)
	keys = make([][]float32, 0, n)
	values = make([][]float32, 0, n)
	for p := range c.keyPages[layer] {
		kp, vp := c.keyPages[layer][p], c.valPages[layer][p]
		for i := 0; i < len(kp)/stride; i++ {
			base := i*stride + off
			keys = append(keys, kp[base:base+d])
			values = append(values, vp[base:base+d])
		}
	}
	return keys, values
}

// Positions returns 0..n-1: the paged cache retains every position.
func (c *PagedKV) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports the retained entry count for a head (uniform for PagedKV).
func (c *PagedKV) Len(layer, head int) int {
	if c.qbits != 0 {
		return c.qLen(layer)
	}
	stride := c.stride()
	n := 0
	for _, p := range c.keyPages[layer] {
		n += len(p) / stride
	}
	return n
}

// TotalAppended reports how many tokens have been appended.
func (c *PagedKV) TotalAppended() int { return c.appended }

// ClonePrefix returns a new cache that starts as an exact copy of c's
// current contents — the paged data-plane counterpart of
// SharingAllocator.Fork. Full pages are shared by reference, which is safe
// because a full page is immutable (Append only ever writes the partial
// last page or opens a new one); the partial last page is deep-copied so
// the clone and the original can each keep appending without touching the
// other — copy-on-write at clone time, exactly one partial page per layer.
// Decode on the clone is therefore bit-identical to decode on a cold cache
// prefilled with the same tokens, while the shared prefix is stored once.
// The clone inherits the page budget.
func (c *PagedKV) ClonePrefix() *PagedKV {
	n := &PagedKV{
		shape:      c.shape,
		pageTokens: c.pageTokens,
		maxPages:   c.maxPages,
		keyPages:   make([][][]float32, c.shape.Layers),
		valPages:   make([][][]float32, c.shape.Layers),
		appended:   c.appended,
		qbits:      c.qbits,
	}
	if c.qbits != 0 {
		n.qPages = make([][]QuantPage, c.shape.Layers)
		partial := false
		for l := range c.qPages {
			n.qPages[l] = cloneQuantPages(c.qPages[l], c.shape.KVHeads, c.pageTokens)
		}
		if pages := len(c.qPages[0]); pages > 0 {
			n.shared = pages
			if c.qPages[0][pages-1].Tokens(c.shape.KVHeads) < c.pageTokens {
				n.shared = pages - 1 // last page was deep-copied
				partial = true
			}
		}
		c.cloneSummaries(n, partial)
		return n
	}
	pageCap := c.pageTokens * c.stride()
	partial := false
	for l := range c.keyPages {
		n.keyPages[l] = clonePages(c.keyPages[l], pageCap)
		n.valPages[l] = clonePages(c.valPages[l], pageCap)
	}
	if pages := len(c.keyPages[0]); pages > 0 {
		n.shared = pages
		if len(c.keyPages[0][pages-1]) < pageCap {
			n.shared = pages - 1 // last page was deep-copied
			partial = true
		}
	}
	c.cloneSummaries(n, partial)
	return n
}

// cloneSummaries copies c's summary metadata onto clone n under the same
// sharing rule as the KV pages themselves (partialTail mirrors whether the
// last KV page was deep-copied).
func (c *PagedKV) cloneSummaries(n *PagedKV, partialTail bool) {
	if !c.summaries {
		return
	}
	n.summaries = true
	n.kSumms = make([][][]float32, c.shape.Layers)
	for l := range c.kSumms {
		n.kSumms[l] = cloneSummPages(c.kSumms[l], partialTail)
	}
}

// clonePages shares full pages by reference and deep-copies a trailing
// partial page, preserving its full capacity so in-place growth works.
func clonePages(pages [][]float32, pageCap int) [][]float32 {
	out := make([][]float32, len(pages))
	copy(out, pages)
	if n := len(pages); n > 0 && len(pages[n-1]) < pageCap {
		cp := make([]float32, len(pages[n-1]), pageCap)
		copy(cp, pages[n-1])
		out[n-1] = cp
	}
	return out
}

// SharedPages returns how many of the cache's per-layer pages alias
// another cache's storage (prefix reuse), for memory accounting.
func (c *PagedKV) SharedPages() int { return c.shared }

// MemoryBytes charges every allocated page at full capacity (K and V), in
// FP16-equivalent bytes — internal fragmentation included, as a paged engine
// actually pays it. Quantized pages charge their true compressed footprint
// (codes at the configured width plus float16 parameter pairs), so
// compression ratios reported against the FP16 baseline are genuine.
func (c *PagedKV) MemoryBytes() int64 {
	if c.qbits != 0 {
		var pages int64
		for l := range c.qPages {
			pages += int64(len(c.qPages[l]))
		}
		return pages * quantPageBytes(c.shape, c.pageTokens, c.qbits)
	}
	var pages int64
	for l := range c.keyPages {
		pages += int64(len(c.keyPages[l]))
	}
	return pages * int64(c.pageTokens) * int64(c.stride()) * 2 * BytesPerElemFP16
}
