package kvcache

import (
	"fmt"
	"sort"

	"rethinkkv/internal/stats"
)

// PagedAllocator emulates vLLM/LMDeploy-style paged KV cache management: GPU
// memory is carved into fixed-size blocks of token slots, and each sequence
// owns a block table that grows on demand. It is the substrate for the
// serving simulator's admission control and for the paper's discussion of
// why sparsity-based compression (fluctuating sequence lengths) and
// window-based quantisation (two tensor pools) complicate paged management.
type PagedAllocator struct {
	blockSize   int // token slots per block
	totalBlocks int
	freeList    []int
	tables      map[int][]int // sequence id -> block ids
	lengths     map[int]int   // sequence id -> token count
	// bytesPerToken is the FP16-equivalent KV footprint of one token slot.
	bytesPerToken int64
	allocOps      int
	freeOps       int
}

// NewPagedAllocator builds an allocator with the given geometry.
// bytesPerToken is the per-token KV footprint (all layers and heads).
// It panics on non-positive parameters.
func NewPagedAllocator(totalBlocks, blockSize int, bytesPerToken int64) *PagedAllocator {
	if totalBlocks <= 0 || blockSize <= 0 || bytesPerToken <= 0 {
		panic("kvcache: invalid paged allocator geometry")
	}
	free := make([]int, totalBlocks)
	for i := range free {
		free[i] = i
	}
	return &PagedAllocator{
		blockSize:     blockSize,
		totalBlocks:   totalBlocks,
		freeList:      free,
		tables:        make(map[int][]int),
		lengths:       make(map[int]int),
		bytesPerToken: bytesPerToken,
	}
}

// BlockSize returns the token slots per block.
func (p *PagedAllocator) BlockSize() int { return p.blockSize }

// FreeBlocks returns the number of unallocated blocks.
func (p *PagedAllocator) FreeBlocks() int { return len(p.freeList) }

// UsedBlocks returns the number of allocated blocks.
func (p *PagedAllocator) UsedBlocks() int { return p.totalBlocks - len(p.freeList) }

// ErrOutOfBlocks is returned when an allocation cannot be satisfied; callers
// (the serving simulator) treat it as the GPU-out-of-memory condition the
// paper observes for quantisation methods at KV length 8192 (Figure 1 l).
var ErrOutOfBlocks = fmt.Errorf("kvcache: out of free blocks")

// blocksFor returns the block count needed to hold n tokens.
func (p *PagedAllocator) blocksFor(n int) int {
	return (n + p.blockSize - 1) / p.blockSize
}

// Grow extends sequence seq to newLen tokens, allocating blocks on demand.
// Growth is all-or-nothing: on ErrOutOfBlocks the sequence is unchanged.
func (p *PagedAllocator) Grow(seq, newLen int) error {
	cur := p.lengths[seq]
	if newLen < cur {
		return fmt.Errorf("kvcache: Grow to %d below current length %d (use Shrink)", newLen, cur)
	}
	need := p.blocksFor(newLen) - len(p.tables[seq])
	if need > len(p.freeList) {
		return ErrOutOfBlocks
	}
	for i := 0; i < need; i++ {
		b := p.freeList[len(p.freeList)-1]
		p.freeList = p.freeList[:len(p.freeList)-1]
		p.tables[seq] = append(p.tables[seq], b)
		p.allocOps++
	}
	p.lengths[seq] = newLen
	return nil
}

// Shrink reduces sequence seq to newLen tokens, releasing now-empty blocks.
// Sparsity-based eviction uses this path; the released tail blocks return to
// the free list but interior fragmentation within the last block remains,
// which is exactly the management complexity the paper calls out.
func (p *PagedAllocator) Shrink(seq, newLen int) error {
	cur, ok := p.lengths[seq]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	if newLen > cur {
		return fmt.Errorf("kvcache: Shrink to %d above current length %d", newLen, cur)
	}
	if newLen < 0 {
		newLen = 0
	}
	keep := p.blocksFor(newLen)
	table := p.tables[seq]
	for i := keep; i < len(table); i++ {
		p.freeList = append(p.freeList, table[i])
		p.freeOps++
	}
	p.tables[seq] = table[:keep]
	p.lengths[seq] = newLen
	return nil
}

// Release frees every block owned by sequence seq.
func (p *PagedAllocator) Release(seq int) {
	for _, b := range p.tables[seq] {
		p.freeList = append(p.freeList, b)
		p.freeOps++
	}
	delete(p.tables, seq)
	delete(p.lengths, seq)
}

// SeqLen returns the current token length of a sequence (0 if unknown).
func (p *PagedAllocator) SeqLen(seq int) int { return p.lengths[seq] }

// BlockTable returns a copy of the sequence's block table.
func (p *PagedAllocator) BlockTable(seq int) []int {
	return append([]int(nil), p.tables[seq]...)
}

// Sequences returns the ids of live sequences in ascending order.
func (p *PagedAllocator) Sequences() []int {
	ids := make([]int, 0, len(p.tables))
	for id := range p.tables {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Utilization returns the fraction of allocated token slots actually holding
// tokens — 1 minus internal fragmentation.
func (p *PagedAllocator) Utilization() float64 {
	used := p.UsedBlocks() * p.blockSize
	if used == 0 {
		return 1
	}
	tokens := 0
	for _, n := range p.lengths {
		tokens += n
	}
	return float64(tokens) / float64(used)
}

// UsedBytes returns the FP16-equivalent bytes of allocated blocks.
func (p *PagedAllocator) UsedBytes() int64 {
	return int64(p.UsedBlocks()) * int64(p.blockSize) * p.bytesPerToken
}

// Ops returns the cumulative allocate and free operation counts; the cost
// model charges block-table maintenance overhead proportional to these,
// which is how sparsity's fluctuating lengths surface as paged-management
// cost.
func (p *PagedAllocator) Ops() (allocs, frees int) { return p.allocOps, p.freeOps }

// DualPoolPaged models the paged layout that window-based quantisation
// (KIVI, GEAR) forces on an engine: a full-precision pool for the residual
// window and a quantised pool for the rest. The paper's survey argues this
// dual-pool structure is what "increases the deployment complexity" — here
// it concretely doubles block-table maintenance and lowers utilization.
type DualPoolPaged struct {
	FullPool  *PagedAllocator
	QuantPool *PagedAllocator
	// ResidualWindow is the number of most-recent tokens kept in the
	// full-precision pool.
	ResidualWindow int
	// migrations counts tokens that crossed from the full-precision pool
	// to the quantised pool; each crossing is a quantise-and-copy that a
	// single-pool layout never pays.
	migrations int
}

// NewDualPoolPaged splits totalBlocks between a full-precision pool and a
// quantised pool. quantBytesPerToken reflects the compressed footprint.
func NewDualPoolPaged(totalBlocks, blockSize, residualWindow int, fullBytesPerToken, quantBytesPerToken int64) *DualPoolPaged {
	fullBlocks := totalBlocks / 4
	if fullBlocks < 1 {
		fullBlocks = 1
	}
	return &DualPoolPaged{
		FullPool:       NewPagedAllocator(fullBlocks, blockSize, fullBytesPerToken),
		QuantPool:      NewPagedAllocator(totalBlocks-fullBlocks, blockSize, quantBytesPerToken),
		ResidualWindow: residualWindow,
	}
}

// Grow extends a sequence across both pools: the most recent ResidualWindow
// tokens live in the full pool, everything older in the quantised pool.
func (d *DualPoolPaged) Grow(seq, newLen int) error {
	fullLen := newLen
	if fullLen > d.ResidualWindow {
		fullLen = d.ResidualWindow
	}
	quantLen := newLen - fullLen
	prevFull := d.FullPool.SeqLen(seq)
	prevQuant := d.QuantPool.SeqLen(seq)
	if err := d.FullPool.Grow(seq, stats.MaxI(prevFull, fullLen)); err != nil {
		return err
	}
	if quantLen > 0 {
		if err := d.QuantPool.Grow(seq, quantLen); err != nil {
			return err
		}
	}
	// Every token that left the residual window was quantised and copied
	// across pools.
	d.migrations += quantLen - prevQuant
	return nil
}

// Migrations returns the number of full→quant pool token crossings.
func (d *DualPoolPaged) Migrations() int { return d.migrations }

// Release frees the sequence from both pools.
func (d *DualPoolPaged) Release(seq int) {
	d.FullPool.Release(seq)
	d.QuantPool.Release(seq)
}

// TableOps returns combined block-table maintenance operations across pools,
// including cross-pool token migrations.
func (d *DualPoolPaged) TableOps() int {
	a1, f1 := d.FullPool.Ops()
	a2, f2 := d.QuantPool.Ops()
	return a1 + f1 + a2 + f2 + d.migrations
}
