package kvcache

import (
	"fmt"
	"math"

	"rethinkkv/internal/tensor"
)

// This file gives PagedKV a quantized page backend: the live-plane
// counterpart of internal/quant's offline Uniform quantizer (which cannot be
// imported here — it sits above kvcache). Each token's K/V head slices are
// uniform-asymmetric quantized the moment they are appended — codes
// c = round((x-lo)/Δ) clamped to [0, 2^bits-1], Δ and lo stored as float16 —
// and every read dequantizes x = float32(c)·Δ + lo, the exact arithmetic of
// quant.Uniform and of tensor's fused dequantize-on-stream kernels.
//
// Quantizing per token at append time (rather than when a page seals) is
// what keeps the serving plane's bit-exactness contracts intact: a token's
// stored representation never changes after its append, so attention reads
// are identical whether the context arrived token-at-a-time (decode),
// in prefill chunks of any size, or through a preemption→recompute replay —
// the recompute requantizes to the identical pages. A seal-time scheme
// would make reads depend on how many later tokens had landed when a page
// filled, which differs between chunked and incremental execution.

// QuantPage is one fixed-capacity quantized KV page. Codes are token-major
// at the fp32 layout's element stride (token i, head h at element offset
// i*stride + h*HeadDim); 4-bit codes pack two per byte, low nibble first.
// Params hold one (lo, delta) float16 pair per (token, kv-head) slice:
// token i, head h at KParams[(i*kvHeads+h)*2]. A full page is immutable —
// ClonePrefix shares it by reference, never re-quantizing.
type QuantPage struct {
	KCodes, VCodes   []uint8
	KParams, VParams []uint16
}

// Tokens returns the page's current token count.
func (p *QuantPage) Tokens(kvHeads int) int { return len(p.KParams) / (kvHeads * 2) }

// QuantReader is the zero-copy read path over quantized page storage — the
// quantized sibling of PageReader. QuantBits reports the code width (0 means
// the cache is full-precision and QuantPages must not be used). The returned
// pages alias cache-owned storage and are valid until the next Append.
type QuantReader interface {
	QuantPages(layer int) (pages []QuantPage, stride int)
	QuantBits() int
	PageTokens() int
}

// quantBitsValid reports whether bits names a supported code width.
func quantBitsValid(bits int) bool { return bits == 0 || bits == 4 || bits == 8 }

// NewPagedKVQuant is NewPagedKVBudget with quantized page storage: bits must
// be 4 or 8 (0 falls back to full-precision pages). 4-bit packing requires
// an even head dimension, which RoPE already demands of the model.
func NewPagedKVQuant(shape Shape, pageTokens, maxPages, bits int) *PagedKV {
	if !quantBitsValid(bits) {
		panic(fmt.Sprintf("kvcache: unsupported quant width %d (want 4 or 8)", bits))
	}
	if bits == 4 && shape.HeadDim%2 != 0 {
		panic("kvcache: 4-bit KV quantization requires an even head dimension")
	}
	c := NewPagedKVBudget(shape, pageTokens, maxPages)
	if bits != 0 {
		c.qbits = bits
		c.qPages = make([][]QuantPage, shape.Layers)
	}
	return c
}

// QuantBits implements QuantReader: the configured code width, 0 when the
// cache stores full-precision pages.
func (c *PagedKV) QuantBits() int { return c.qbits }

// QuantPages implements QuantReader with zero copies and zero allocation.
func (c *PagedKV) QuantPages(layer int) ([]QuantPage, int) {
	return c.qPages[layer], c.stride()
}

// qPageForAppend returns the quantized page the next token goes into,
// opening a fresh fixed-capacity page — budget-checked, never touching full
// (possibly shared) pages — when the current one is full.
func (c *PagedKV) qPageForAppend(layer int) *QuantPage {
	pages := c.qPages[layer]
	if len(pages) == 0 || pages[len(pages)-1].Tokens(c.shape.KVHeads) == c.pageTokens {
		if c.maxPages > 0 && len(pages) >= c.maxPages {
			panic(fmt.Errorf("%w: unreserved append past %d-page budget", ErrOutOfPages, c.maxPages))
		}
		// K and V carve halves of one backing array each (codes, params):
		// page-open cost stays at the fp32 plane's two allocations per
		// layer (plus one summary slot when key summaries are on, exactly
		// like the fp32 plane), and the sub-slices' capacities are pinned so
		// appends can never grow one half into the other.
		codeCap := c.pageTokens * c.stride() * c.qbits / 8
		paramCap := c.pageTokens * c.shape.KVHeads * 2
		codeBuf := make([]uint8, 2*codeCap)
		paramBuf := make([]uint16, 2*paramCap)
		c.qPages[layer] = append(c.qPages[layer], QuantPage{
			KCodes:  codeBuf[0:0:codeCap],
			VCodes:  codeBuf[codeCap : codeCap : 2*codeCap],
			KParams: paramBuf[0:0:paramCap],
			VParams: paramBuf[paramCap : paramCap : 2*paramCap],
		})
		if c.summaries {
			c.summOpenPage(layer)
		}
	}
	return &c.qPages[layer][len(c.qPages[layer])-1]
}

// appendQuantToken quantizes one token's flat head-major K/V onto the
// current quantized page. Steady-state cost is append-only into
// pre-allocated page capacity: no allocation except at page open. When key
// summaries are on, each head's min/max fold runs over the dequantized key
// values inside the encode loop, so the summary is a pure function of the
// stored codes.
func (c *PagedKV) appendQuantToken(layer int, k, v []float32) {
	p := c.qPageForAppend(layer)
	d, stride := c.shape.HeadDim, c.stride()
	var summ []float32
	init := false
	if c.summaries {
		summ = c.kSumms[layer][len(c.qPages[layer])-1]
		init = p.Tokens(c.shape.KVHeads) == 0
	}
	for h := 0; h < c.shape.KVHeads; h++ {
		var smin, smax []float32
		if summ != nil {
			smin = summ[h*d : (h+1)*d]
			smax = summ[stride+h*d : stride+(h+1)*d]
		}
		p.KCodes, p.KParams = quantAppendSlice(p.KCodes, p.KParams, k[h*d:(h+1)*d], c.qbits, smin, smax, init)
		p.VCodes, p.VParams = quantAppendSlice(p.VCodes, p.VParams, v[h*d:(h+1)*d], c.qbits, nil, nil, false)
	}
}

// quantAppendSlice uniform-quantizes one head slice and appends its codes
// and (lo, delta) float16 pair. Codes are computed against the
// float16-decoded parameters — the exact values every reader reconstructs
// with — so encode and decode agree bit-for-bit. A constant slice (or one
// whose range underflows float16) stores delta = 0 and all-zero codes,
// dequantizing to lo, exactly like quant.Uniform.
//
// When smin/smax are non-nil they receive the per-channel min/max fold of
// the *dequantized* values float32(code)*Δ+lo — what attention will stream —
// seeded from this token when init is true.
func quantAppendSlice(codes []uint8, params []uint16, x []float32, bits int, smin, smax []float32, init bool) ([]uint8, []uint16) {
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	loBits := tensor.EncodeFloat16(lo)
	loD := tensor.DecodeFloat16(loBits)
	maxCode := float32(int(1)<<bits - 1)
	delta := (hi - loD) / maxCode
	dBits := tensor.EncodeFloat16(delta)
	dD := tensor.DecodeFloat16(dBits)
	if !(dD > 0) {
		dBits, dD = 0, 0
	}
	params = append(params, loBits, dBits)
	fold := func(j int, deq float32) {
		if init {
			smin[j], smax[j] = deq, deq
			return
		}
		if deq < smin[j] {
			smin[j] = deq
		}
		if deq > smax[j] {
			smax[j] = deq
		}
	}
	if dD == 0 {
		if smin != nil {
			for j := range x {
				fold(j, loD) // every channel dequantizes to lo
			}
		}
		switch bits {
		case 8:
			for range x {
				codes = append(codes, 0)
			}
		case 4:
			for j := 0; j < len(x); j += 2 {
				codes = append(codes, 0)
			}
		}
		return codes, params
	}
	inv := 1 / dD
	encode := func(v float32) uint8 {
		cf := float32(math.Round(float64((v - loD) * inv)))
		if cf < 0 {
			cf = 0
		}
		if cf > maxCode {
			cf = maxCode
		}
		return uint8(cf)
	}
	switch bits {
	case 8:
		for j, v := range x {
			cde := encode(v)
			codes = append(codes, cde)
			if smin != nil {
				fold(j, float32(cde)*dD+loD)
			}
		}
	case 4:
		for j := 0; j < len(x); j += 2 {
			c0, c1 := encode(x[j]), encode(x[j+1])
			codes = append(codes, c0|c1<<4)
			if smin != nil {
				fold(j, float32(c0)*dD+loD)
				fold(j+1, float32(c1)*dD+loD)
			}
		}
	}
	return codes, params
}

// qLen sums the quantized pages' token counts for one layer.
func (c *PagedKV) qLen(layer int) int {
	n := 0
	for i := range c.qPages[layer] {
		n += c.qPages[layer][i].Tokens(c.shape.KVHeads)
	}
	return n
}

// seqQuant materializes dequantized per-token views — the generic
// (allocating) read path for a quantized cache; hot paths stream QuantPages
// through the fused kernels instead. The dequantization arithmetic is
// identical to the fused kernels', so the two read paths are bit-identical.
func (c *PagedKV) seqQuant(layer, head int) (keys, values [][]float32) {
	d := c.shape.HeadDim
	stride := c.stride()
	off := head * d
	kvh := c.shape.KVHeads
	n := c.qLen(layer)
	keys = make([][]float32, 0, n)
	values = make([][]float32, 0, n)
	for pi := range c.qPages[layer] {
		p := &c.qPages[layer][pi]
		for i := 0; i < p.Tokens(kvh); i++ {
			kb := make([]float32, d)
			vb := make([]float32, d)
			tensor.DequantSliceInto(kb, p.KCodes, p.KParams, c.qbits, off, stride, kvh, head, i)
			tensor.DequantSliceInto(vb, p.VCodes, p.VParams, c.qbits, off, stride, kvh, head, i)
			keys = append(keys, kb)
			values = append(values, vb)
		}
	}
	return keys, values
}

// cloneQuantPages shares full quantized pages by reference — they are
// immutable, so the clone must not (and cannot) re-quantize them — and
// deep-copies a trailing partial page at full capacity so both caches can
// keep appending independently.
func cloneQuantPages(pages []QuantPage, kvHeads, pageTokens int) []QuantPage {
	out := make([]QuantPage, len(pages))
	copy(out, pages)
	if n := len(pages); n > 0 && pages[n-1].Tokens(kvHeads) < pageTokens {
		t := pages[n-1]
		dup := func(src []uint8) []uint8 {
			cp := make([]uint8, len(src), cap(src))
			copy(cp, src)
			return cp
		}
		cp := QuantPage{
			KCodes:  dup(t.KCodes),
			VCodes:  dup(t.VCodes),
			KParams: make([]uint16, len(t.KParams), cap(t.KParams)),
			VParams: make([]uint16, len(t.VParams), cap(t.VParams)),
		}
		copy(cp.KParams, t.KParams)
		copy(cp.VParams, t.VParams)
		out[n-1] = cp
	}
	return out
}

// quantPageBytes is the byte footprint of one full quantized page (K and V
// codes at the configured width plus float16 parameter pairs).
func quantPageBytes(shape Shape, pageTokens, bits int) int64 {
	codes := int64(pageTokens) * int64(shape.KVHeads*shape.HeadDim) * 2 * int64(bits) / 8
	params := int64(pageTokens) * int64(shape.KVHeads) * 2 * 2 * 2
	return codes + params
}

// PageBitsFP32 is the bit cost of one full-precision K/V page as the live
// decode plane actually stores it (float32 elements) — the byte-budget
// baseline WithKVPages denominates. The FP16-equivalent convention used by
// MemoryBytes reporting is a separate, accuracy-comparison vocabulary.
func PageBitsFP32(shape Shape, pageTokens int) int64 {
	return int64(pageTokens) * int64(shape.KVHeads*shape.HeadDim) * 2 * 32
}

// PageBitsQuant is the bit cost of one quantized K/V page: codes at the
// given width plus one float16 (lo, delta) pair per (token, kv-head) slice
// for K and for V.
func PageBitsQuant(shape Shape, pageTokens, bits int) int64 {
	if bits == 0 {
		return PageBitsFP32(shape, pageTokens)
	}
	codes := int64(pageTokens) * int64(shape.KVHeads*shape.HeadDim) * 2 * int64(bits)
	params := int64(pageTokens) * int64(shape.KVHeads) * 2 * 2 * 16
	return codes + params
}

// ScaledPageBudget converts a page budget denominated in fp32 pages — the
// byte budget WithKVPages(n) defines — into the number of quantized pages
// the same bytes hold at the given code width. bits == 0 (or an unbounded
// budget) returns the budget unchanged, so full-precision accounting is the
// exact existing page math.
func ScaledPageBudget(kvPages int, shape Shape, pageTokens, bits int) int {
	if kvPages <= 0 || bits == 0 {
		return kvPages
	}
	return int(int64(kvPages) * PageBitsFP32(shape, pageTokens) / PageBitsQuant(shape, pageTokens, bits))
}
