package kvcache

import (
	"testing"
	"testing/quick"

	"rethinkkv/internal/rng"
)

func testShape() Shape { return Shape{Layers: 2, KVHeads: 2, HeadDim: 4} }

func randToken(r *rng.RNG, s Shape) (k, v [][]float32) {
	k = make([][]float32, s.KVHeads)
	v = make([][]float32, s.KVHeads)
	for h := 0; h < s.KVHeads; h++ {
		k[h] = make([]float32, s.HeadDim)
		v[h] = make([]float32, s.HeadDim)
		for d := 0; d < s.HeadDim; d++ {
			k[h][d] = float32(r.NormFloat64())
			v[h][d] = float32(r.NormFloat64())
		}
	}
	return k, v
}

func fillCache(t *testing.T, c Cache, n int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	s := c.Shape()
	for i := 0; i < n; i++ {
		for l := 0; l < s.Layers; l++ {
			k, v := randToken(r, s)
			c.Append(l, k, v)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	if err := testShape().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Shape{Layers: 0, KVHeads: 1, HeadDim: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero layers")
	}
}

func TestFullRoundTrip(t *testing.T) {
	s := testShape()
	c := NewFull(s)
	r := rng.New(1)
	var wantK [][]float32
	for i := 0; i < 5; i++ {
		k, v := randToken(r, s)
		wantK = append(wantK, append([]float32(nil), k[1]...))
		c.Append(0, k, v)
		k2, v2 := randToken(r, s)
		c.Append(1, k2, v2)
	}
	if c.TotalAppended() != 5 {
		t.Fatalf("appended = %d", c.TotalAppended())
	}
	keys, vals := c.Seq(0, 1)
	if len(keys) != 5 || len(vals) != 5 {
		t.Fatalf("seq lengths %d, %d", len(keys), len(vals))
	}
	for i := range keys {
		for d := 0; d < s.HeadDim; d++ {
			if keys[i][d] != wantK[i][d] {
				t.Fatalf("key mismatch at token %d dim %d", i, d)
			}
		}
	}
	pos := c.Positions(0, 1)
	for i, p := range pos {
		if p != i {
			t.Fatalf("positions = %v", pos)
		}
	}
}

func TestFullMemoryBytes(t *testing.T) {
	s := testShape()
	c := NewFull(s)
	fillCache(t, c, 10, 2)
	// 10 tokens × 2 layers × 2 heads × 4 dims × 2 (K and V) × 2 bytes.
	want := int64(10 * 2 * 2 * 4 * 2 * 2)
	if got := c.MemoryBytes(); got != want {
		t.Fatalf("memory = %d, want %d", got, want)
	}
	if got := FP16Bytes(s, 10); got != want {
		t.Fatalf("FP16Bytes = %d, want %d", got, want)
	}
}

func TestFullAppendValidation(t *testing.T) {
	c := NewFull(testShape())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong head count")
		}
	}()
	c.Append(0, [][]float32{{1, 2, 3, 4}}, [][]float32{{1, 2, 3, 4}})
}

func TestFullLayerRange(t *testing.T) {
	c := NewFull(testShape())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad layer")
		}
	}()
	k := [][]float32{{0, 0, 0, 0}, {0, 0, 0, 0}}
	c.Append(5, k, k)
}

func TestPagedGrowShrink(t *testing.T) {
	p := NewPagedAllocator(10, 4, 100)
	if err := p.Grow(1, 6); err != nil { // needs 2 blocks
		t.Fatal(err)
	}
	if p.UsedBlocks() != 2 || p.FreeBlocks() != 8 {
		t.Fatalf("used=%d free=%d", p.UsedBlocks(), p.FreeBlocks())
	}
	if err := p.Grow(1, 7); err != nil { // still 2 blocks
		t.Fatal(err)
	}
	if p.UsedBlocks() != 2 {
		t.Fatalf("used=%d after in-block growth", p.UsedBlocks())
	}
	if err := p.Grow(1, 9); err != nil { // 3 blocks
		t.Fatal(err)
	}
	if p.UsedBlocks() != 3 {
		t.Fatalf("used=%d", p.UsedBlocks())
	}
	if err := p.Shrink(1, 4); err != nil { // back to 1 block
		t.Fatal(err)
	}
	if p.UsedBlocks() != 1 || p.SeqLen(1) != 4 {
		t.Fatalf("used=%d len=%d after shrink", p.UsedBlocks(), p.SeqLen(1))
	}
	p.Release(1)
	if p.UsedBlocks() != 0 || p.SeqLen(1) != 0 {
		t.Fatal("release did not clean up")
	}
}

func TestPagedOutOfBlocks(t *testing.T) {
	p := NewPagedAllocator(2, 4, 100)
	if err := p.Grow(1, 8); err != nil {
		t.Fatal(err)
	}
	err := p.Grow(2, 1)
	if err != ErrOutOfBlocks {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
	// All-or-nothing: failed grow leaves no partial allocation.
	if p.SeqLen(2) != 0 || len(p.BlockTable(2)) != 0 {
		t.Fatal("failed grow leaked state")
	}
}

func TestPagedGrowBelowCurrent(t *testing.T) {
	p := NewPagedAllocator(4, 4, 100)
	if err := p.Grow(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Grow(1, 4); err == nil {
		t.Fatal("Grow below current length should error")
	}
	if err := p.Shrink(1, 12); err == nil {
		t.Fatal("Shrink above current length should error")
	}
	if err := p.Shrink(99, 0); err == nil {
		t.Fatal("Shrink of unknown sequence should error")
	}
}

func TestPagedUtilization(t *testing.T) {
	p := NewPagedAllocator(10, 4, 100)
	if u := p.Utilization(); u != 1 {
		t.Fatalf("empty utilization = %v", u)
	}
	p.Grow(1, 1) // 1 token in a 4-slot block
	if u := p.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
	p.Grow(1, 4)
	if u := p.Utilization(); u != 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestPagedSequencesAndBytes(t *testing.T) {
	p := NewPagedAllocator(10, 2, 50)
	p.Grow(3, 2)
	p.Grow(1, 2)
	ids := p.Sequences()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("sequences = %v", ids)
	}
	if b := p.UsedBytes(); b != 2*2*50 {
		t.Fatalf("used bytes = %d", b)
	}
}

// Property: blocks are conserved — used + free == total, and no block is in
// two tables at once.
func TestQuickPagedInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPagedAllocator(32, 4, 10)
		for _, op := range ops {
			seq := int(op>>8) % 4
			n := int(op & 0xff % 64)
			switch op % 3 {
			case 0:
				if n >= p.SeqLen(seq) {
					_ = p.Grow(seq, n)
				}
			case 1:
				if n <= p.SeqLen(seq) {
					_ = p.Shrink(seq, n)
				}
			case 2:
				p.Release(seq)
			}
		}
		if p.UsedBlocks()+p.FreeBlocks() != 32 {
			return false
		}
		seen := map[int]bool{}
		for _, id := range p.Sequences() {
			for _, b := range p.BlockTable(id) {
				if seen[b] || b < 0 || b >= 32 {
					return false
				}
				seen[b] = true
			}
		}
		for _, b := range p.freeList {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		return len(seen) == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDualPoolPaged(t *testing.T) {
	d := NewDualPoolPaged(40, 4, 8, 100, 25)
	if err := d.Grow(1, 4); err != nil { // entirely in the residual window
		t.Fatal(err)
	}
	if d.QuantPool.SeqLen(1) != 0 {
		t.Fatal("short sequence should not touch quant pool")
	}
	if err := d.Grow(1, 20); err != nil { // 8 full + 12 quantised
		t.Fatal(err)
	}
	if d.FullPool.SeqLen(1) != 8 {
		t.Fatalf("full pool len = %d", d.FullPool.SeqLen(1))
	}
	if d.QuantPool.SeqLen(1) != 12 {
		t.Fatalf("quant pool len = %d", d.QuantPool.SeqLen(1))
	}
	if d.TableOps() == 0 {
		t.Fatal("table ops not counted")
	}
	d.Release(1)
	if d.FullPool.UsedBlocks() != 0 || d.QuantPool.UsedBlocks() != 0 {
		t.Fatal("release did not free both pools")
	}
}

func TestDualPoolMoreTableOpsThanSingle(t *testing.T) {
	// The dual-pool layout must pay more block-table maintenance than a
	// single pool for the same token stream — the deployment-complexity
	// claim from the paper's survey (Section 3.1.1).
	single := NewPagedAllocator(64, 4, 100)
	dual := NewDualPoolPaged(64, 4, 8, 100, 25)
	for n := 1; n <= 40; n++ {
		if err := single.Grow(1, n); err != nil {
			t.Fatal(err)
		}
		if err := dual.Grow(1, n); err != nil {
			t.Fatal(err)
		}
	}
	sa, sf := single.Ops()
	if dual.TableOps() <= sa+sf {
		t.Fatalf("dual pool ops %d should exceed single pool ops %d", dual.TableOps(), sa+sf)
	}
}
