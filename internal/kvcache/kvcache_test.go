package kvcache

import (
	"testing"
	"testing/quick"

	"rethinkkv/internal/rng"
)

func testShape() Shape { return Shape{Layers: 2, KVHeads: 2, HeadDim: 4} }

func randToken(r *rng.RNG, s Shape) (k, v [][]float32) {
	k = make([][]float32, s.KVHeads)
	v = make([][]float32, s.KVHeads)
	for h := 0; h < s.KVHeads; h++ {
		k[h] = make([]float32, s.HeadDim)
		v[h] = make([]float32, s.HeadDim)
		for d := 0; d < s.HeadDim; d++ {
			k[h][d] = float32(r.NormFloat64())
			v[h][d] = float32(r.NormFloat64())
		}
	}
	return k, v
}

func fillCache(t *testing.T, c Cache, n int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	s := c.Shape()
	for i := 0; i < n; i++ {
		for l := 0; l < s.Layers; l++ {
			k, v := randToken(r, s)
			c.Append(l, k, v)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	if err := testShape().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Shape{Layers: 0, KVHeads: 1, HeadDim: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero layers")
	}
}

func TestFullRoundTrip(t *testing.T) {
	s := testShape()
	c := NewFull(s)
	r := rng.New(1)
	var wantK [][]float32
	for i := 0; i < 5; i++ {
		k, v := randToken(r, s)
		wantK = append(wantK, append([]float32(nil), k[1]...))
		c.Append(0, k, v)
		k2, v2 := randToken(r, s)
		c.Append(1, k2, v2)
	}
	if c.TotalAppended() != 5 {
		t.Fatalf("appended = %d", c.TotalAppended())
	}
	keys, vals := c.Seq(0, 1)
	if len(keys) != 5 || len(vals) != 5 {
		t.Fatalf("seq lengths %d, %d", len(keys), len(vals))
	}
	for i := range keys {
		for d := 0; d < s.HeadDim; d++ {
			if keys[i][d] != wantK[i][d] {
				t.Fatalf("key mismatch at token %d dim %d", i, d)
			}
		}
	}
	pos := c.Positions(0, 1)
	for i, p := range pos {
		if p != i {
			t.Fatalf("positions = %v", pos)
		}
	}
}

func TestFullMemoryBytes(t *testing.T) {
	s := testShape()
	c := NewFull(s)
	fillCache(t, c, 10, 2)
	// 10 tokens × 2 layers × 2 heads × 4 dims × 2 (K and V) × 2 bytes.
	want := int64(10 * 2 * 2 * 4 * 2 * 2)
	if got := c.MemoryBytes(); got != want {
		t.Fatalf("memory = %d, want %d", got, want)
	}
	if got := FP16Bytes(s, 10); got != want {
		t.Fatalf("FP16Bytes = %d, want %d", got, want)
	}
}

func TestFullAppendValidation(t *testing.T) {
	c := NewFull(testShape())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong head count")
		}
	}()
	c.Append(0, [][]float32{{1, 2, 3, 4}}, [][]float32{{1, 2, 3, 4}})
}

func TestFullLayerRange(t *testing.T) {
	c := NewFull(testShape())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad layer")
		}
	}()
	k := [][]float32{{0, 0, 0, 0}, {0, 0, 0, 0}}
	c.Append(5, k, k)
}

func TestFullFlatSeqMatchesSeq(t *testing.T) {
	s := testShape()
	c := NewFull(s)
	fillCache(t, c, 9, 3)
	for l := 0; l < s.Layers; l++ {
		for h := 0; h < s.KVHeads; h++ {
			keys, vals := c.Seq(l, h)
			fk, fv, stride := c.FlatSeq(l, h)
			if stride != s.KVHeads*s.HeadDim {
				t.Fatalf("stride = %d", stride)
			}
			if n := c.Len(l, h); n != len(keys) {
				t.Fatalf("Len %d != Seq len %d", n, len(keys))
			}
			for i := range keys {
				for d := 0; d < s.HeadDim; d++ {
					if fk[i*stride+d] != keys[i][d] {
						t.Fatalf("flat key (%d,%d,%d,%d) mismatch", l, h, i, d)
					}
					if fv[i*stride+d] != vals[i][d] {
						t.Fatalf("flat val (%d,%d,%d,%d) mismatch", l, h, i, d)
					}
				}
			}
		}
	}
}

func TestFullFlatSeqEmpty(t *testing.T) {
	c := NewFull(testShape())
	fk, fv, stride := c.FlatSeq(0, 1)
	if fk != nil || fv != nil {
		t.Fatal("empty cache should return nil flat buffers")
	}
	if stride != testShape().KVHeads*testShape().HeadDim {
		t.Fatalf("stride = %d", stride)
	}
}

func TestPagedKVMatchesFull(t *testing.T) {
	s := testShape()
	full := NewFull(s)
	paged := NewPagedKV(s, 4) // 11 tokens → 2 full pages + partial
	r1, r2 := rng.New(5), rng.New(5)
	for i := 0; i < 11; i++ {
		for l := 0; l < s.Layers; l++ {
			k, v := randToken(r1, s)
			full.Append(l, k, v)
			k2, v2 := randToken(r2, s)
			paged.Append(l, k2, v2)
		}
	}
	if paged.TotalAppended() != 11 {
		t.Fatalf("appended = %d", paged.TotalAppended())
	}
	for l := 0; l < s.Layers; l++ {
		for h := 0; h < s.KVHeads; h++ {
			if paged.Len(l, h) != full.Len(l, h) {
				t.Fatalf("len mismatch at (%d,%d)", l, h)
			}
			fk, fv := full.Seq(l, h)
			pk, pv := paged.Seq(l, h)
			for i := range fk {
				for d := 0; d < s.HeadDim; d++ {
					if pk[i][d] != fk[i][d] || pv[i][d] != fv[i][d] {
						t.Fatalf("paged entry (%d,%d,%d,%d) mismatch", l, h, i, d)
					}
				}
			}
			pos := paged.Positions(l, h)
			for i, p := range pos {
				if p != i {
					t.Fatalf("positions = %v", pos)
				}
			}
		}
	}
}

func TestPagedKVPages(t *testing.T) {
	s := testShape()
	c := NewPagedKV(s, 4)
	fillCache(t, c, 10, 7)
	kp, vp, stride := c.KVPages(0)
	if stride != s.KVHeads*s.HeadDim {
		t.Fatalf("stride = %d", stride)
	}
	if len(kp) != 3 || len(vp) != 3 { // 4 + 4 + 2
		t.Fatalf("pages = %d, %d", len(kp), len(vp))
	}
	if len(kp[0])/stride != 4 || len(kp[2])/stride != 2 {
		t.Fatalf("page fills = %d, %d", len(kp[0])/stride, len(kp[2])/stride)
	}
	// Page contents must match the sequential view.
	keys, _ := c.Seq(0, 1)
	off := 1 * s.HeadDim
	if kp[1][1*stride+off] != keys[5][0] { // page 1, token 1 == global token 5
		t.Fatal("page content does not match Seq view")
	}
}

func TestPagedKVMemoryChargesWholePages(t *testing.T) {
	s := testShape()
	c := NewPagedKV(s, 8)
	fillCache(t, c, 1, 1) // 1 token still allocates a full 8-token page per layer
	perPage := int64(8) * int64(s.KVHeads*s.HeadDim) * 2 * BytesPerElemFP16
	if got, want := c.MemoryBytes(), int64(s.Layers)*perPage; got != want {
		t.Fatalf("memory = %d, want %d (fragmentation must be charged)", got, want)
	}
	if c.MemoryBytes() <= NewFullFrom(t, s, 1).MemoryBytes() {
		t.Fatal("partially-filled page must cost more than exact flat storage")
	}
}

// NewFullFrom builds a Full cache with n tokens for comparison tests.
func NewFullFrom(t *testing.T, s Shape, n int) *Full {
	t.Helper()
	c := NewFull(s)
	fillCache(t, c, n, 1)
	return c
}

func TestPagedGrowShrink(t *testing.T) {
	p := NewPagedAllocator(10, 4, 100)
	if err := p.Grow(1, 6); err != nil { // needs 2 blocks
		t.Fatal(err)
	}
	if p.UsedBlocks() != 2 || p.FreeBlocks() != 8 {
		t.Fatalf("used=%d free=%d", p.UsedBlocks(), p.FreeBlocks())
	}
	if err := p.Grow(1, 7); err != nil { // still 2 blocks
		t.Fatal(err)
	}
	if p.UsedBlocks() != 2 {
		t.Fatalf("used=%d after in-block growth", p.UsedBlocks())
	}
	if err := p.Grow(1, 9); err != nil { // 3 blocks
		t.Fatal(err)
	}
	if p.UsedBlocks() != 3 {
		t.Fatalf("used=%d", p.UsedBlocks())
	}
	if err := p.Shrink(1, 4); err != nil { // back to 1 block
		t.Fatal(err)
	}
	if p.UsedBlocks() != 1 || p.SeqLen(1) != 4 {
		t.Fatalf("used=%d len=%d after shrink", p.UsedBlocks(), p.SeqLen(1))
	}
	p.Release(1)
	if p.UsedBlocks() != 0 || p.SeqLen(1) != 0 {
		t.Fatal("release did not clean up")
	}
}

func TestPagedOutOfBlocks(t *testing.T) {
	p := NewPagedAllocator(2, 4, 100)
	if err := p.Grow(1, 8); err != nil {
		t.Fatal(err)
	}
	err := p.Grow(2, 1)
	if err != ErrOutOfBlocks {
		t.Fatalf("err = %v, want ErrOutOfBlocks", err)
	}
	// All-or-nothing: failed grow leaves no partial allocation.
	if p.SeqLen(2) != 0 || len(p.BlockTable(2)) != 0 {
		t.Fatal("failed grow leaked state")
	}
}

func TestPagedGrowBelowCurrent(t *testing.T) {
	p := NewPagedAllocator(4, 4, 100)
	if err := p.Grow(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Grow(1, 4); err == nil {
		t.Fatal("Grow below current length should error")
	}
	if err := p.Shrink(1, 12); err == nil {
		t.Fatal("Shrink above current length should error")
	}
	if err := p.Shrink(99, 0); err == nil {
		t.Fatal("Shrink of unknown sequence should error")
	}
}

func TestPagedUtilization(t *testing.T) {
	p := NewPagedAllocator(10, 4, 100)
	if u := p.Utilization(); u != 1 {
		t.Fatalf("empty utilization = %v", u)
	}
	p.Grow(1, 1) // 1 token in a 4-slot block
	if u := p.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
	p.Grow(1, 4)
	if u := p.Utilization(); u != 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestPagedSequencesAndBytes(t *testing.T) {
	p := NewPagedAllocator(10, 2, 50)
	p.Grow(3, 2)
	p.Grow(1, 2)
	ids := p.Sequences()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("sequences = %v", ids)
	}
	if b := p.UsedBytes(); b != 2*2*50 {
		t.Fatalf("used bytes = %d", b)
	}
}

// Property: blocks are conserved — used + free == total, and no block is in
// two tables at once.
func TestQuickPagedInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPagedAllocator(32, 4, 10)
		for _, op := range ops {
			seq := int(op>>8) % 4
			n := int(op & 0xff % 64)
			switch op % 3 {
			case 0:
				if n >= p.SeqLen(seq) {
					_ = p.Grow(seq, n)
				}
			case 1:
				if n <= p.SeqLen(seq) {
					_ = p.Shrink(seq, n)
				}
			case 2:
				p.Release(seq)
			}
		}
		if p.UsedBlocks()+p.FreeBlocks() != 32 {
			return false
		}
		seen := map[int]bool{}
		for _, id := range p.Sequences() {
			for _, b := range p.BlockTable(id) {
				if seen[b] || b < 0 || b >= 32 {
					return false
				}
				seen[b] = true
			}
		}
		for _, b := range p.freeList {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		return len(seen) == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDualPoolPaged(t *testing.T) {
	d := NewDualPoolPaged(40, 4, 8, 100, 25)
	if err := d.Grow(1, 4); err != nil { // entirely in the residual window
		t.Fatal(err)
	}
	if d.QuantPool.SeqLen(1) != 0 {
		t.Fatal("short sequence should not touch quant pool")
	}
	if err := d.Grow(1, 20); err != nil { // 8 full + 12 quantised
		t.Fatal(err)
	}
	if d.FullPool.SeqLen(1) != 8 {
		t.Fatalf("full pool len = %d", d.FullPool.SeqLen(1))
	}
	if d.QuantPool.SeqLen(1) != 12 {
		t.Fatalf("quant pool len = %d", d.QuantPool.SeqLen(1))
	}
	if d.TableOps() == 0 {
		t.Fatal("table ops not counted")
	}
	d.Release(1)
	if d.FullPool.UsedBlocks() != 0 || d.QuantPool.UsedBlocks() != 0 {
		t.Fatal("release did not free both pools")
	}
}

func TestDualPoolMoreTableOpsThanSingle(t *testing.T) {
	// The dual-pool layout must pay more block-table maintenance than a
	// single pool for the same token stream — the deployment-complexity
	// claim from the paper's survey (Section 3.1.1).
	single := NewPagedAllocator(64, 4, 100)
	dual := NewDualPoolPaged(64, 4, 8, 100, 25)
	for n := 1; n <= 40; n++ {
		if err := single.Grow(1, n); err != nil {
			t.Fatal(err)
		}
		if err := dual.Grow(1, n); err != nil {
			t.Fatal(err)
		}
	}
	sa, sf := single.Ops()
	if dual.TableOps() <= sa+sf {
		t.Fatalf("dual pool ops %d should exceed single pool ops %d", dual.TableOps(), sa+sf)
	}
}
