package kvcache_test

// Prefix reuse under the paged layout, end to end: serving a request whose
// prompt extends an already-cached prefix (system prompt sharing) must
// produce bit-identical tokens to serving it cold, while the block-table
// bookkeeping (SharingAllocator) and the data plane (PagedKV.ClonePrefix)
// agree on what is shared.

import (
	"testing"

	"rethinkkv/internal/kvcache"
	"rethinkkv/internal/model"
	"rethinkkv/internal/tensor"
)

const pageTokens = 8

// decodeGreedy runs n greedy decode steps after the given logits state.
func decodeGreedy(m *model.Model, ws *model.Workspace, logits []float32, pos int, cache kvcache.Cache, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := tensor.Argmax(logits)
		out = append(out, next)
		sr := m.ForwardInto(ws, next, pos, cache)
		logits = sr.Logits
		pos++
	}
	return out
}

func TestPagedPrefixHitDecodeBitIdentical(t *testing.T) {
	m := model.New(model.Tiny(), 7)
	shape := m.CacheShape()

	prefix := make([]int, 37) // deliberately not page-aligned
	for i := range prefix {
		prefix[i] = (i*31 + 5) % m.Config().Vocab
	}
	suffixA := []int{9, 42, 7, 300, 12}
	suffixB := []int{101, 55, 200}

	// Warm path: prefill the shared prefix once, then fork the paged cache
	// per request and prefill only the suffix.
	base := kvcache.NewPagedKV(shape, pageTokens)
	wsBase := m.NewWorkspace()
	m.PrefillInto(wsBase, prefix, base)

	serveWarm := func(suffix []int, n int) []int {
		c := base.ClonePrefix()
		ws := m.NewWorkspace()
		var logits []float32
		pos := len(prefix)
		for _, tok := range suffix {
			sr := m.ForwardInto(ws, tok, pos, c)
			logits = sr.Logits
			pos++
		}
		return decodeGreedy(m, ws, logits, pos, c, n)
	}

	// Cold path: full prefill of prefix+suffix on a fresh paged cache.
	serveCold := func(suffix []int, n int) []int {
		c := kvcache.NewPagedKV(shape, pageTokens)
		ws := m.NewWorkspace()
		full := append(append([]int(nil), prefix...), suffix...)
		sr := m.PrefillInto(ws, full, c)
		return decodeGreedy(m, ws, sr.Logits, len(full), c, n)
	}

	// Interleave two warm requests off the same base to exercise clone
	// isolation under decode, not just under raw appends.
	warmA := serveWarm(suffixA, 12)
	warmB := serveWarm(suffixB, 12)
	coldA := serveCold(suffixA, 12)
	coldB := serveCold(suffixB, 12)

	for i := range coldA {
		if warmA[i] != coldA[i] {
			t.Fatalf("request A token %d: warm %d != cold %d", i, warmA[i], coldA[i])
		}
	}
	for i := range coldB {
		if warmB[i] != coldB[i] {
			t.Fatalf("request B token %d: warm %d != cold %d", i, warmB[i], coldB[i])
		}
	}

	// The base must be untouched by either request.
	if got, want := base.TotalAppended(), len(prefix); got != want {
		t.Fatalf("base grew to %d tokens, want %d", got, want)
	}
}

// TestSharingAllocatorMatchesCloneAccounting ties the bookkeeping layer to
// the data plane: forking a sequence shares exactly the blocks ClonePrefix
// shares (the full ones), and growing the fork copy-on-writes the partial
// tail block exactly once.
func TestSharingAllocatorMatchesCloneAccounting(t *testing.T) {
	m := model.New(model.Tiny(), 7)
	shape := m.CacheShape()

	prefixLen := 37
	prefix := make([]int, prefixLen)
	for i := range prefix {
		prefix[i] = i % m.Config().Vocab
	}
	base := kvcache.NewPagedKV(shape, pageTokens)
	ws := m.NewWorkspace()
	m.PrefillInto(ws, prefix, base)
	clone := base.ClonePrefix()

	alloc := kvcache.NewSharing(64, pageTokens, 1)
	if err := alloc.Grow(0, prefixLen); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Fork(0, 1); err != nil {
		t.Fatal(err)
	}
	// Data plane shares the full pages only; bookkeeping shares every
	// block until the fork writes. Shared full pages must agree.
	fullPages := prefixLen / pageTokens
	if got := clone.SharedPages(); got != fullPages {
		t.Fatalf("clone shares %d pages, want %d full pages", got, fullPages)
	}
	// Growing the fork into its partial tail block triggers exactly one
	// copy-on-write — the bookkeeping counterpart of ClonePrefix's
	// deep-copied partial page.
	if err := alloc.Grow(1, prefixLen+1); err != nil {
		t.Fatal(err)
	}
	if got := alloc.CoWCopies(); got != 1 {
		t.Fatalf("CoWCopies = %d, want 1", got)
	}
	if got := alloc.SharedBlocks(); got != fullPages {
		t.Fatalf("SharedBlocks after CoW = %d, want %d", got, fullPages)
	}
}
