package kvcache

import (
	"math/rand"
	"testing"
)

// summFill generates n tokens of deterministic pseudo-random flat K/V.
func summFill(shape Shape, n int, seed int64) (k, v []float32) {
	stride := shape.KVHeads * shape.HeadDim
	r := rand.New(rand.NewSource(seed))
	k = make([]float32, n*stride)
	v = make([]float32, n*stride)
	for i := range k {
		k[i] = float32(r.NormFloat64())
		v[i] = float32(r.NormFloat64())
	}
	return k, v
}

// summCache builds an empty summaries-enabled cache at the given width.
func summCache(shape Shape, pageTokens, bits int) *PagedKV {
	c := NewPagedKVQuant(shape, pageTokens, 0, bits)
	c.EnableKeySummaries()
	return c
}

// summariesEqual compares two caches' summary metadata bit-for-bit.
func summariesEqual(t *testing.T, a, b *PagedKV) {
	t.Helper()
	for l := 0; l < a.Shape().Layers; l++ {
		sa, sb := a.KeySummaries(l), b.KeySummaries(l)
		if len(sa) != len(sb) {
			t.Fatalf("layer %d: %d vs %d summary pages", l, len(sa), len(sb))
		}
		for p := range sa {
			for i := range sa[p] {
				if sa[p][i] != sb[p][i] {
					t.Fatalf("layer %d page %d elem %d: %v != %v", l, p, i, sa[p][i], sb[p][i])
				}
			}
		}
	}
}

var summWidths = []struct {
	name string
	bits int
}{{"fp32", 0}, {"int8", 8}, {"int4", 4}}

// Summaries must hold the true elementwise min/max of the keys a reader
// actually sees (Seq dequantizes for quant caches, so the bound covers the
// streamed values, not the pre-quantization floats).
func TestKeySummariesBoundStoredKeys(t *testing.T) {
	for _, w := range summWidths {
		t.Run(w.name, func(t *testing.T) {
			shape := qShape()
			const pageTokens, n = 4, 11
			c := summCache(shape, pageTokens, w.bits)
			k, v := summFill(shape, n, 7)
			stride := shape.KVHeads * shape.HeadDim
			for tk := 0; tk < n; tk++ {
				for l := 0; l < shape.Layers; l++ {
					c.AppendFlat(l, k[tk*stride:(tk+1)*stride], v[tk*stride:(tk+1)*stride])
				}
			}
			d := shape.HeadDim
			for l := 0; l < shape.Layers; l++ {
				summs := c.KeySummaries(l)
				if want := c.Pages(); len(summs) != want {
					t.Fatalf("layer %d: %d summaries for %d pages", l, len(summs), want)
				}
				for h := 0; h < shape.KVHeads; h++ {
					keys, _ := c.Seq(l, h)
					for p := range summs {
						lo, hi := p*pageTokens, (p+1)*pageTokens
						if hi > len(keys) {
							hi = len(keys)
						}
						for ch := 0; ch < d; ch++ {
							mn, mx := keys[lo][ch], keys[lo][ch]
							for i := lo + 1; i < hi; i++ {
								if keys[i][ch] < mn {
									mn = keys[i][ch]
								}
								if keys[i][ch] > mx {
									mx = keys[i][ch]
								}
							}
							off := h*d + ch
							if summs[p][off] != mn || summs[p][stride+off] != mx {
								t.Fatalf("%s l%d h%d p%d ch%d: summary (%v,%v) want (%v,%v)",
									w.name, l, h, p, ch, summs[p][off], summs[p][stride+off], mn, mx)
							}
						}
					}
				}
			}
		})
	}
}

// A preemption drops the cache and replays the identical token sequence
// into a fresh one; the summaries must come back bit-identical — including
// when the replay arrives through AppendFlatN in chunk splits that cross
// page boundaries (the chunked-prefill recompute path).
func TestKeySummariesRecomputeBitIdentical(t *testing.T) {
	for _, w := range summWidths {
		t.Run(w.name, func(t *testing.T) {
			shape := qShape()
			const pageTokens, n = 4, 13
			stride := shape.KVHeads * shape.HeadDim
			k, v := summFill(shape, n, 11)

			one := summCache(shape, pageTokens, w.bits)
			for tk := 0; tk < n; tk++ {
				for l := 0; l < shape.Layers; l++ {
					one.AppendFlat(l, k[tk*stride:(tk+1)*stride], v[tk*stride:(tk+1)*stride])
				}
			}
			// Chunk splits chosen to open, straddle, and exactly fill pages.
			for _, chunks := range [][]int{{13}, {3, 5, 5}, {4, 4, 4, 1}, {1, 7, 2, 3}} {
				redo := summCache(shape, pageTokens, w.bits)
				off := 0
				for _, cn := range chunks {
					for l := 0; l < shape.Layers; l++ {
						redo.AppendFlatN(l, cn, k[off*stride:(off+cn)*stride], v[off*stride:(off+cn)*stride])
					}
					off += cn
				}
				summariesEqual(t, one, redo)
			}
		})
	}
}

// ClonePrefix must share sealed summary pages by reference, deep-copy the
// partial tail, and leave both caches folding independently — each ending
// bit-identical to a cold cache of its own full sequence.
func TestKeySummariesClonePrefix(t *testing.T) {
	for _, w := range summWidths {
		t.Run(w.name, func(t *testing.T) {
			shape := qShape()
			const pageTokens, n = 4, 10 // 2 sealed pages + 2-token partial tail
			stride := shape.KVHeads * shape.HeadDim
			k, v := summFill(shape, n, 3)
			ka, va := summFill(shape, 6, 5)
			kb, vb := summFill(shape, 6, 9)

			base := summCache(shape, pageTokens, w.bits)
			for tk := 0; tk < n; tk++ {
				for l := 0; l < shape.Layers; l++ {
					base.AppendFlat(l, k[tk*stride:(tk+1)*stride], v[tk*stride:(tk+1)*stride])
				}
			}
			clone := base.ClonePrefix()
			if !clone.KeySummariesEnabled() {
				t.Fatal("clone lost summaries")
			}
			bs, cs := base.KeySummaries(0), clone.KeySummaries(0)
			for p := 0; p < 2; p++ { // sealed pages alias
				if &bs[p][0] != &cs[p][0] {
					t.Fatalf("sealed summary page %d not shared", p)
				}
			}
			if &bs[2][0] == &cs[2][0] {
				t.Fatal("partial tail summary shared; appends would corrupt the sibling")
			}

			// Diverge: base continues with ka, clone with kb.
			grow := func(c *PagedKV, gk, gv []float32) {
				for tk := 0; tk < len(gk)/stride; tk++ {
					for l := 0; l < shape.Layers; l++ {
						c.AppendFlat(l, gk[tk*stride:(tk+1)*stride], gv[tk*stride:(tk+1)*stride])
					}
				}
			}
			grow(base, ka, va)
			grow(clone, kb, vb)

			coldA := summCache(shape, pageTokens, w.bits)
			grow(coldA, append(append([]float32(nil), k...), ka...), append(append([]float32(nil), v...), va...))
			coldB := summCache(shape, pageTokens, w.bits)
			grow(coldB, append(append([]float32(nil), k...), kb...), append(append([]float32(nil), v...), vb...))
			summariesEqual(t, base, coldA)
			summariesEqual(t, clone, coldB)
		})
	}
}

// Head-major Append, flat AppendFlat, and batched AppendFlatN must fold the
// identical summaries for the same token sequence.
func TestKeySummariesAppendFormsAgree(t *testing.T) {
	for _, w := range summWidths {
		t.Run(w.name, func(t *testing.T) {
			shape := qShape()
			const pageTokens, n = 4, 9
			stride := shape.KVHeads * shape.HeadDim
			d := shape.HeadDim
			k, v := summFill(shape, n, 21)

			flat := summCache(shape, pageTokens, w.bits)
			heads := summCache(shape, pageTokens, w.bits)
			batch := summCache(shape, pageTokens, w.bits)
			for tk := 0; tk < n; tk++ {
				kt, vt := k[tk*stride:(tk+1)*stride], v[tk*stride:(tk+1)*stride]
				kh := make([][]float32, shape.KVHeads)
				vh := make([][]float32, shape.KVHeads)
				for h := range kh {
					kh[h], vh[h] = kt[h*d:(h+1)*d], vt[h*d:(h+1)*d]
				}
				for l := 0; l < shape.Layers; l++ {
					flat.AppendFlat(l, kt, vt)
					heads.Append(l, kh, vh)
				}
			}
			for l := 0; l < shape.Layers; l++ {
				batch.AppendFlatN(l, n, k, v)
			}
			summariesEqual(t, flat, heads)
			summariesEqual(t, flat, batch)
		})
	}
}

// EnableKeySummaries is an at-construction switch: enabling after tokens
// landed must panic (the fold cannot be reconstructed), and byte accounting
// must charge exactly two float32 per (page, head, channel).
func TestKeySummariesEnableContractAndBytes(t *testing.T) {
	shape := qShape()
	c := NewPagedKV(shape, 4)
	k, v := summFill(shape, 1, 1)
	for l := 0; l < shape.Layers; l++ {
		c.AppendFlat(l, k, v)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EnableKeySummaries on a non-empty cache did not panic")
			}
		}()
		c.EnableKeySummaries()
	}()

	s := summCache(shape, 4, 0)
	if s.KeySummaryBytes() != 0 {
		t.Fatalf("empty cache charges %d summary bytes", s.KeySummaryBytes())
	}
	k9, v9 := summFill(shape, 9, 2)
	for l := 0; l < shape.Layers; l++ {
		s.AppendFlatN(l, 9, k9, v9)
	}
	stride := shape.KVHeads * shape.HeadDim
	want := int64(3 /* pages */ * shape.Layers * 2 * stride * 4)
	if got := s.KeySummaryBytes(); got != want {
		t.Fatalf("KeySummaryBytes = %d, want %d", got, want)
	}
	if NewPagedKV(shape, 4).KeySummaries(0) != nil {
		t.Fatal("summaries-off cache returned non-nil summaries")
	}
}
