// Package kvcache defines the KV cache abstraction shared by the tiny
// transformer (internal/model) and the compression methods (internal/quant,
// internal/sparse), plus a full-precision reference implementation and a
// PagedAttention-style block allocator.
//
// Layout: the reference cache stores entries per layer as one flat,
// token-major []float32 growable buffer (token i, head h at offset
// i*KVHeads*HeadDim + h*HeadDim), exposed zero-copy through FlatReader.
// The generic Seq view materialises per-token sub-slices for caches that
// retain irregular token subsets. Rotary position embeddings are applied to
// keys *before* caching, matching the layout used by LLaMA-family inference
// engines. Eviction-based caches may retain different token subsets per
// head, so all read paths are addressed by (layer, head).
package kvcache

import "fmt"

// Shape describes the dimensions a cache must hold.
type Shape struct {
	Layers  int // number of transformer layers
	KVHeads int // number of key/value heads per layer
	HeadDim int // per-head embedding dimension
}

// Validate returns an error if any dimension is non-positive.
func (s Shape) Validate() error {
	if s.Layers <= 0 || s.KVHeads <= 0 || s.HeadDim <= 0 {
		return fmt.Errorf("kvcache: invalid shape %+v", s)
	}
	return nil
}

// BytesPerElemFP16 is the storage cost of one cache element in the FP16
// baseline; memory accounting throughout the repository is in FP16-equivalent
// bytes so that compression ratios match the paper's reporting.
const BytesPerElemFP16 = 2

// Cache is the interface the model's attention layers read and write.
//
// Append stores the (RoPE'd) key and value vectors for the next token of a
// layer; k and v each hold KVHeads vectors of length HeadDim. Implementations
// MUST copy the vectors rather than retain the slices: the model passes
// reused scratch buffers that are overwritten on the next step. Seq returns
// the retained entries for one head in storage order: compressed caches
// return dequantised or pruned views here, which is what makes the accuracy
// effects of compression real rather than modelled. Positions returns the
// absolute position of each retained entry, aligned with Seq.
type Cache interface {
	Shape() Shape
	Append(layer int, k, v [][]float32)
	Seq(layer, head int) (keys, values [][]float32)
	Positions(layer, head int) []int
	// Len reports the number of retained entries for one head.
	Len(layer, head int) int
	// TotalAppended reports how many tokens have ever been appended
	// (identical across heads and layers).
	TotalAppended() int
	// MemoryBytes reports current resident size in FP16-equivalent bytes.
	MemoryBytes() int64
}

// AttentionObserver is implemented by caches whose eviction policy consumes
// attention scores (e.g. H2O). After computing attention for a step, the
// model forwards the weights (aligned with the entries returned by Seq).
// Observers must not retain the weights slice: it is a reused scratch buffer.
type AttentionObserver interface {
	ObserveAttention(layer, head int, weights []float32)
}

// FlatAppender is the optional append fast path for caches that store each
// token's K/V contiguously head-major (head h at offset h*HeadDim): k and v
// are whole-token vectors of length KVHeads*HeadDim, copied in one pass
// instead of head by head. The stored bytes are identical to
// Append(layer, kHeads, vHeads) over per-head views of the same buffers,
// so the two entry points are interchangeable bit-for-bit; the model's
// decode hot paths prefer AppendFlat when a cache provides it. Caches
// whose Append carries policy (eviction scoring, quantisation) should not
// implement it unless the flat form preserves that policy.
//
// Note there is deliberately no cross-session batched append: every decode
// stream owns a distinct cache (the scheduler enforces it), so a fused
// batch step still appends once per (session, layer) — AppendFlat removes
// the per-head slicing and per-head bounds checks from that call, which is
// all the overhead a batched form could have removed.
type FlatAppender interface {
	AppendFlat(layer int, k, v []float32)
}

// FlatBatchAppender is the multi-token extension of FlatAppender: one call
// appends n consecutive tokens' K/V for a layer. k and v hold n whole-token
// vectors back to back (token t at offset t*KVHeads*HeadDim), and the stored
// bytes are identical to n successive AppendFlat calls over the same spans —
// the two entry points are interchangeable bit-for-bit. The chunked prefill
// plane (model.PrefillChunkInto) uses it to land a whole prompt chunk's K/V
// with one call per layer instead of one per (token, layer).
//
// Unlike the decode-time FlatAppender — where cross-session batching is
// impossible because every stream owns a distinct cache — the chunk case
// batches *within* one sequence, so a real multi-token append exists: Full
// grows its flat buffer once, PagedKV splits the span across pages under
// the same budget rules as single-token appends.
type FlatBatchAppender interface {
	FlatAppender
	AppendFlatN(layer, n int, k, v []float32)
}

// FlatReader is the optional zero-copy fast path over a cache whose retained
// entries for a head live at a regular stride in one contiguous buffer.
// Entry i's vector occupies kv[i*stride : i*stride+HeadDim] for
// i < Len(layer, head). The returned slices alias cache-owned storage and
// are valid until the next Append. The full-precision cache implements it;
// compressed caches with contiguous dequantised storage may too. Callers
// (the model's decode hot path) use it to run strided attention kernels with
// zero per-step view allocation, falling back to Seq otherwise.
type FlatReader interface {
	FlatSeq(layer, head int) (keys, values []float32, stride int)
}

// Full is the uncompressed FP16-baseline cache: every appended token is
// retained in full precision for every head. Storage is one flat token-major
// growable buffer per layer (token i, head h at offset i*stride + h*HeadDim,
// stride = KVHeads*HeadDim), so attention can stream it with zero copies.
type Full struct {
	shape    Shape
	keys     [][]float32 // [layer] flat token-major, len = tokens*KVHeads*HeadDim
	values   [][]float32
	appended int
}

// NewFull allocates an empty full-precision cache. It panics on an invalid
// shape.
func NewFull(shape Shape) *Full {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	return &Full{
		shape:  shape,
		keys:   make([][]float32, shape.Layers),
		values: make([][]float32, shape.Layers),
	}
}

// Shape returns the cache dimensions.
func (c *Full) Shape() Shape { return c.shape }

// stride is the flat-buffer distance between consecutive tokens.
func (c *Full) stride() int { return c.shape.KVHeads * c.shape.HeadDim }

// Append stores one token's K/V for the given layer by copying the head
// vectors onto the end of the layer's flat buffers.
func (c *Full) Append(layer int, k, v [][]float32) {
	c.checkAppend(layer, k, v)
	for h := 0; h < c.shape.KVHeads; h++ {
		c.keys[layer] = append(c.keys[layer], k[h]...)
		c.values[layer] = append(c.values[layer], v[h]...)
	}
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// AppendFlat implements FlatAppender: one token's K/V arrive as flat
// head-major vectors (length KVHeads*HeadDim) and are copied in a single
// append each — the same bytes Append stores head by head.
func (c *Full) AppendFlat(layer int, k, v []float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic(fmt.Sprintf("kvcache: layer %d out of range", layer))
	}
	if stride := c.stride(); len(k) != stride || len(v) != stride {
		panic("kvcache: flat append length mismatch")
	}
	c.keys[layer] = append(c.keys[layer], k...)
	c.values[layer] = append(c.values[layer], v...)
	if layer == c.shape.Layers-1 {
		c.appended++
	}
}

// AppendFlatN implements FlatBatchAppender: n tokens' K/V arrive as one
// contiguous token-major span and are copied onto the layer's flat buffer
// in a single append each — exactly the bytes n AppendFlat calls would have
// stored, in one grow.
func (c *Full) AppendFlatN(layer, n int, k, v []float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic(fmt.Sprintf("kvcache: layer %d out of range", layer))
	}
	if n < 0 || len(k) != n*c.stride() || len(v) != len(k) {
		panic("kvcache: flat append length mismatch")
	}
	c.keys[layer] = append(c.keys[layer], k...)
	c.values[layer] = append(c.values[layer], v...)
	if layer == c.shape.Layers-1 {
		c.appended += n
	}
}

func (c *Full) checkAppend(layer int, k, v [][]float32) {
	if layer < 0 || layer >= c.shape.Layers {
		panic(fmt.Sprintf("kvcache: layer %d out of range", layer))
	}
	if len(k) != c.shape.KVHeads || len(v) != c.shape.KVHeads {
		panic("kvcache: head count mismatch on append")
	}
	for h := 0; h < c.shape.KVHeads; h++ {
		if len(k[h]) != c.shape.HeadDim || len(v[h]) != c.shape.HeadDim {
			panic("kvcache: head dim mismatch on append")
		}
	}
}

// Seq returns per-token views of the retained keys and values for one head.
// The views alias the flat buffers; only the two header slices allocate.
// Unlike the historical per-token layout, a later Append may grow the flat
// buffer and reallocate it: previously returned views then keep reading the
// old (stale) backing array and pin it in memory. Read views before the next
// Append, or copy them to retain. Hot paths should prefer FlatSeq.
func (c *Full) Seq(layer, head int) (keys, values [][]float32) {
	d := c.shape.HeadDim
	stride := c.stride()
	off := head * d
	n := c.Len(layer, 0)
	keys = make([][]float32, n)
	values = make([][]float32, n)
	for i := 0; i < n; i++ {
		keys[i] = c.keys[layer][i*stride+off : i*stride+off+d]
		values[i] = c.values[layer][i*stride+off : i*stride+off+d]
	}
	return keys, values
}

// FlatSeq implements FlatReader: it returns the layer's flat buffers offset
// to the head's lane, with entry i at kv[i*stride : i*stride+HeadDim].
// Zero-copy and zero-allocation.
func (c *Full) FlatSeq(layer, head int) (keys, values []float32, stride int) {
	stride = c.stride()
	if len(c.keys[layer]) == 0 {
		return nil, nil, stride
	}
	off := head * c.shape.HeadDim
	return c.keys[layer][off:], c.values[layer][off:], stride
}

// Positions returns 0..n-1: the full cache retains every position.
func (c *Full) Positions(layer, head int) []int {
	n := c.Len(layer, head)
	ps := make([]int, n)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// Len reports the retained entry count for a head (uniform for Full).
func (c *Full) Len(layer, head int) int { return len(c.keys[layer]) / c.stride() }

// TotalAppended reports how many tokens have been appended.
func (c *Full) TotalAppended() int { return c.appended }

// MemoryBytes reports resident size in FP16-equivalent bytes.
func (c *Full) MemoryBytes() int64 {
	var elems int64
	for l := range c.keys {
		elems += int64(len(c.keys[l])) * 2 // K and V
	}
	return elems * BytesPerElemFP16
}

// FP16Bytes returns the FP16 footprint of a cache holding tokens tokens for
// the given shape — the baseline against which compression ratios are
// computed.
func FP16Bytes(shape Shape, tokens int) int64 {
	return int64(tokens) * int64(shape.Layers) * int64(shape.KVHeads) * int64(shape.HeadDim) * 2 * BytesPerElemFP16
}
