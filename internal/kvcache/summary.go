package kvcache

// This file gives PagedKV per-page key metadata for Quest-style sparse
// attention (Tang et al., 2024): every page carries, per kv-head and
// per channel, the min and max of the keys it holds. A query can then
// bound its best possible dot product against any key in the page —
// Σ_c max(q_c·min_c, q_c·max_c) — and attend over only the most critical
// pages (see attention.PagedStridedSparse).
//
// Summaries are maintained incrementally at append time, one running
// elementwise min/max fold per token, which makes them a pure function of
// the appended key sequence: a sealed page's summary never changes, so
// preemption→recompute replays, ClonePrefix copy-on-write sharing,
// cross-engine migration (recompute on the target), and chunked prefill of
// any split all reproduce bit-identical summaries. For quantized pages the
// fold runs over the *dequantized* values — the exact floats every reader
// reconstructs — so the bound stays sound for what attention actually
// streams.
//
// Layout: one []float32 of length 2*stride per page (stride =
// KVHeads*HeadDim): mins occupy [0, stride), maxes [stride, 2*stride), each
// indexed like a token's flat K vector (head h, channel c at h*HeadDim+c).
// The fixed size means summary pages clone exactly like KV pages: sealed
// summaries share by reference, a partial tail deep-copies.

// KeySummaryReader is the zero-copy read path over per-page key min/max
// summaries — the metadata sibling of PageReader/QuantReader. KeySummaries
// returns one layer's summaries, aligned index-for-index with that layer's
// pages; each entry is 2*stride floats (min block then max block). The
// slices alias cache-owned storage and are valid until the next Append.
type KeySummaryReader interface {
	KeySummaries(layer int) [][]float32
	KeySummariesEnabled() bool
}

// EnableKeySummaries turns on per-page key min/max maintenance. It must be
// called on an empty cache: summaries are folded in at append time, and a
// cache that already holds tokens has lost the information. Clones made
// with ClonePrefix inherit the setting (and the summaries) automatically.
func (c *PagedKV) EnableKeySummaries() {
	if c.summaries {
		return
	}
	if c.appended != 0 {
		panic("kvcache: EnableKeySummaries on a non-empty cache")
	}
	c.summaries = true
	c.kSumms = make([][][]float32, c.shape.Layers)
}

// KeySummariesEnabled implements KeySummaryReader.
func (c *PagedKV) KeySummariesEnabled() bool { return c.summaries }

// KeySummaries implements KeySummaryReader; nil when summaries are off.
func (c *PagedKV) KeySummaries(layer int) [][]float32 {
	if !c.summaries {
		return nil
	}
	return c.kSumms[layer]
}

// KeySummaryBytes reports the extra resident bytes the summaries add: two
// float32 per (page, kv-head, channel), i.e. 8*stride bytes per page —
// 1/(4*PageTokens) of the fp32 page payload, so at the default 16-token
// pages the metadata overhead is ~1.6% (and proportionally more of a
// quantized page's smaller footprint). Kept separate from MemoryBytes,
// whose FP16-equivalent convention prices KV payload for accuracy
// comparisons.
func (c *PagedKV) KeySummaryBytes() int64 {
	var pages int64
	for l := range c.kSumms {
		pages += int64(len(c.kSumms[l]))
	}
	return pages * int64(2*c.stride()) * 4
}

// summOpenPage appends a zeroed summary slot for a freshly opened page.
// Called by pageForAppend/qPageForAppend under the same page-open event, so
// summary pages stay aligned index-for-index with KV pages.
func (c *PagedKV) summOpenPage(layer int) {
	c.kSumms[layer] = append(c.kSumms[layer], make([]float32, 2*c.stride()))
}

// summUpdateSeg folds one head slice x into the summary segment at element
// offset off: min block s[off+i], max block s[stride+off+i]. init seeds
// both blocks from x (the page's first token), making the fold independent
// of the zero value.
func summUpdateSeg(s []float32, stride, off int, x []float32, init bool) {
	mins := s[off : off+len(x)]
	maxs := s[stride+off : stride+off+len(x)]
	if init {
		copy(mins, x)
		copy(maxs, x)
		return
	}
	for i, v := range x {
		if v < mins[i] {
			mins[i] = v
		}
		if v > maxs[i] {
			maxs[i] = v
		}
	}
}

// cloneSummPages mirrors clonePages for summary metadata: sealed summaries
// share by reference (immutable once their page is full), a partial tail's
// summary deep-copies so both caches keep folding independently.
func cloneSummPages(pages [][]float32, partialTail bool) [][]float32 {
	out := make([][]float32, len(pages))
	copy(out, pages)
	if n := len(out); partialTail && n > 0 {
		cp := make([]float32, len(out[n-1]))
		copy(cp, out[n-1])
		out[n-1] = cp
	}
	return out
}
