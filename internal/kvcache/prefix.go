package kvcache

import "fmt"

// Prefix sharing: vLLM-style copy-on-write block sharing between sequences
// with a common prompt prefix (e.g. the same system prompt). Shared blocks
// carry reference counts; a sequence that grows into a shared tail block
// first copies it. This is the paged substrate's second major feature next
// to on-demand growth, and the reason sparsity's fluctuating lengths are
// awkward: shrinking a shared sequence must not free blocks other
// sequences still reference.

// SharingAllocator wraps PagedAllocator bookkeeping with reference counts.
type SharingAllocator struct {
	inner *PagedAllocator
	// refs counts owners per block id (1 for exclusively-owned).
	refs map[int]int
	// cowCopies counts copy-on-write events, charged by the cost model.
	cowCopies int
}

// NewSharing builds a sharing allocator over a fresh paged allocator.
func NewSharing(totalBlocks, blockSize int, bytesPerToken int64) *SharingAllocator {
	return &SharingAllocator{
		inner: NewPagedAllocator(totalBlocks, blockSize, bytesPerToken),
		refs:  map[int]int{},
	}
}

// Inner exposes the underlying allocator for inspection.
func (s *SharingAllocator) Inner() *PagedAllocator { return s.inner }

// Grow extends a sequence, copy-on-writing its last block first if shared.
func (s *SharingAllocator) Grow(seq, newLen int) error {
	cur := s.inner.SeqLen(seq)
	if newLen <= cur {
		if newLen < cur {
			return fmt.Errorf("kvcache: Grow below current length")
		}
		return nil
	}
	// If growth writes into the (partial) last block and that block is
	// shared, copy it first.
	table := s.inner.tables[seq]
	if len(table) > 0 && cur%s.inner.blockSize != 0 {
		last := table[len(table)-1]
		if s.refs[last] > 1 {
			if err := s.copyBlock(seq, len(table)-1); err != nil {
				return err
			}
		}
	}
	before := len(s.inner.tables[seq])
	if err := s.inner.Grow(seq, newLen); err != nil {
		return err
	}
	for _, b := range s.inner.tables[seq][before:] {
		s.refs[b] = 1
	}
	return nil
}

// copyBlock replaces table[idx] of seq with a fresh exclusive block.
func (s *SharingAllocator) copyBlock(seq, idx int) error {
	if len(s.inner.freeList) == 0 {
		return ErrOutOfBlocks
	}
	old := s.inner.tables[seq][idx]
	fresh := s.inner.freeList[len(s.inner.freeList)-1]
	s.inner.freeList = s.inner.freeList[:len(s.inner.freeList)-1]
	s.inner.tables[seq][idx] = fresh
	s.refs[old]--
	s.refs[fresh] = 1
	s.cowCopies++
	s.inner.allocOps++
	return nil
}

// Fork creates child as a copy of parent's sequence sharing every block.
func (s *SharingAllocator) Fork(parent, child int) error {
	if _, ok := s.inner.lengths[parent]; !ok {
		return fmt.Errorf("kvcache: unknown parent %d", parent)
	}
	if _, exists := s.inner.lengths[child]; exists {
		return fmt.Errorf("kvcache: child %d already exists", child)
	}
	table := append([]int(nil), s.inner.tables[parent]...)
	s.inner.tables[child] = table
	s.inner.lengths[child] = s.inner.lengths[parent]
	for _, b := range table {
		s.refs[b]++
	}
	return nil
}

// Release drops a sequence, freeing only blocks whose refcount reaches zero.
func (s *SharingAllocator) Release(seq int) {
	for _, b := range s.inner.tables[seq] {
		s.refs[b]--
		if s.refs[b] <= 0 {
			s.inner.freeList = append(s.inner.freeList, b)
			s.inner.freeOps++
			delete(s.refs, b)
		}
	}
	delete(s.inner.tables, seq)
	delete(s.inner.lengths, seq)
}

// Shrink reduces a sequence, releasing exclusively-owned tail blocks and
// only dereferencing shared ones — the subtlety sparsity-based compression
// forces onto paged engines.
func (s *SharingAllocator) Shrink(seq, newLen int) error {
	cur, ok := s.inner.lengths[seq]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	if newLen > cur {
		return fmt.Errorf("kvcache: Shrink above current length")
	}
	keep := s.inner.blocksFor(newLen)
	table := s.inner.tables[seq]
	for i := keep; i < len(table); i++ {
		b := table[i]
		s.refs[b]--
		if s.refs[b] <= 0 {
			s.inner.freeList = append(s.inner.freeList, b)
			s.inner.freeOps++
			delete(s.refs, b)
		}
	}
	s.inner.tables[seq] = table[:keep]
	s.inner.lengths[seq] = newLen
	return nil
}

// CoWCopies returns the number of copy-on-write events so far.
func (s *SharingAllocator) CoWCopies() int { return s.cowCopies }

// SharedBlocks returns how many blocks currently have more than one owner.
func (s *SharingAllocator) SharedBlocks() int {
	n := 0
	for _, r := range s.refs {
		if r > 1 {
			n++
		}
	}
	return n
}

// SeqLen returns a sequence's token length.
func (s *SharingAllocator) SeqLen(seq int) int { return s.inner.SeqLen(seq) }
