package accuracy

import (
	"testing"

	"rethinkkv/internal/model"
	"rethinkkv/internal/workload"
)

func tinyModel() *model.Model { return model.New(model.Tiny(), 99) }

func suite(n int) []workload.Sample {
	return workload.SampleLongBench(workload.DefaultLongBench(n, 256, model.Tiny().Vocab), 7)
}

func TestTinyCacheMappings(t *testing.T) {
	shape := tinyModel().CacheShape()
	for _, name := range []string{"fp16", "kivi-2", "kivi-4", "gear-2", "gear-4",
		"h2o-256", "h2o-512", "stream-256", "stream-512", "snapkv-512", "tova-512",
		"scissorhands-512", "keyformer-512", "pyramidkv-512", "adakv-512",
		"qjl", "intactkv-4", "mikv"} {
		c, err := TinyCache(name, shape)
		if err != nil || c == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := TinyCache("bogus", shape); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestBaselineScoresItselfPerfect(t *testing.T) {
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	s := suite(3)[0]
	ref := e.RunBaseline(s)
	r := e.Evaluate(ref, "fp16")
	if r.Retention != 1 || r.Fidelity < 0.999 {
		t.Fatalf("fp16 retention/fidelity = %v/%v", r.Retention, r.Fidelity)
	}
	if r.Agreement != 1 {
		t.Fatalf("fp16 agreement = %v", r.Agreement)
	}
	if r.Score < BaseScore(s.Task)*0.999 {
		t.Fatalf("fp16 score %v below base %v", r.Score, BaseScore(s.Task))
	}
}

func TestEvictionDestroysNeedles(t *testing.T) {
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	// Find a QA sample with an early needle on a long prompt so the
	// streaming window must have evicted it.
	var target *workload.Sample
	for _, s := range suite(60) {
		s := s
		if s.Task == workload.SingleDocQA && s.Critical[0].End < 60 && s.PromptLen > 200 {
			target = &s
			break
		}
	}
	if target == nil {
		t.Skip("no early-needle QA sample in draw")
	}
	ref := e.RunBaseline(*target)
	r := e.Evaluate(ref, "stream-256") // tiny-scale budget 64: sinks 8 + recent 56
	if target.Critical[0].Start >= 8 && r.Retention > 0.01 {
		t.Fatalf("early needle should be evicted, retention = %v", r.Retention)
	}
	if r.Score >= BaseScore(target.Task)*0.5 {
		t.Fatalf("QA with evicted needle should collapse, score = %v", r.Score)
	}
}

func TestQuantRetainsButDegrades(t *testing.T) {
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	s := suite(5)[1]
	ref := e.RunBaseline(s)
	r := e.Evaluate(ref, "kivi-2")
	if r.Retention != 1 {
		t.Fatalf("quant must retain all tokens, retention = %v", r.Retention)
	}
	if r.Fidelity >= 0.9999 {
		t.Fatalf("2-bit quant should lose fidelity, got %v", r.Fidelity)
	}
	if r.Score > BaseScore(s.Task) {
		t.Fatalf("score %v above base", r.Score)
	}
}

func TestBitWidthOrdering(t *testing.T) {
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	var f2, f4 float64
	var n int
	for _, s := range suite(6) {
		ref := e.RunBaseline(s)
		f2 += e.Evaluate(ref, "kivi-2").Fidelity
		f4 += e.Evaluate(ref, "kivi-4").Fidelity
		n++
	}
	if f2/float64(n) >= f4/float64(n) {
		t.Fatalf("2-bit fidelity %v should be below 4-bit %v", f2/float64(n), f4/float64(n))
	}
}

func TestGEARBitOrdering(t *testing.T) {
	// Within GEAR, more bits must mean higher measured fidelity. (GEAR vs
	// plain per-token quantisation is covered in internal/quant; against
	// KIVI's per-channel + residual layout GEAR can lose, as the paper's
	// Table 4 semantic scores also show.)
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	var g2, g4 float64
	var n int
	for _, s := range suite(6) {
		ref := e.RunBaseline(s)
		g2 += e.Evaluate(ref, "gear-2").Fidelity
		g4 += e.Evaluate(ref, "gear-4").Fidelity
		n++
	}
	if g2/float64(n) >= g4/float64(n) {
		t.Fatalf("GEAR-2 fidelity %v should be below GEAR-4 %v", g2/float64(n), g4/float64(n))
	}
}

func TestCodeTaskRobustToRecencyKeepers(t *testing.T) {
	// Code samples keep their completion context at the prompt tail, which
	// recent-window policies preserve — the mechanism behind code's low
	// negative share in Figure 7.
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	var codeScores, qaScores []float64
	for _, s := range suite(80) {
		if s.Task != workload.Code && s.Task != workload.SingleDocQA {
			continue
		}
		ref := e.RunBaseline(s)
		r := e.Evaluate(ref, "stream-256")
		rel := r.Score / BaseScore(s.Task)
		if s.Task == workload.Code {
			codeScores = append(codeScores, rel)
		} else {
			qaScores = append(qaScores, rel)
		}
		if len(codeScores) >= 5 && len(qaScores) >= 5 {
			break
		}
	}
	if len(codeScores) < 3 || len(qaScores) < 3 {
		t.Skip("not enough samples drawn")
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(codeScores) <= avg(qaScores) {
		t.Fatalf("code relative score %v should beat QA %v under eviction", avg(codeScores), avg(qaScores))
	}
}

func TestSemanticScore(t *testing.T) {
	if s := SemanticScore([]int{1, 2, 3}, []int{1, 2, 3}, 10); s < 99.99 {
		t.Fatalf("identical sequences score %v", s)
	}
	if s := SemanticScore([]int{1, 1}, []int{2, 2}, 10); s != 0 {
		t.Fatalf("disjoint sequences score %v", s)
	}
	if s := SemanticScore([]int{1, 2}, []int{1, 3}, 10); s <= 0 || s >= 100 {
		t.Fatalf("partial overlap score %v", s)
	}
}

func TestSemanticScorePanicsOnBadVocab(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SemanticScore(nil, nil, 0)
}

func TestBaseScoresMatchTable7Scale(t *testing.T) {
	if BaseScore(workload.Code) != 97 {
		t.Fatal("code base should match Table 7 baseline")
	}
	if BaseScore(workload.SingleDocQA) != 52 || BaseScore(workload.MultiDocQA) != 52 {
		t.Fatal("QA base should match Table 7 baseline")
	}
	if BaseScore(workload.Summarization) != 32 {
		t.Fatal("summarization base should match Table 7 baseline")
	}
}

// TestEvaluateSparse pins the sparse decode plane's scoring: at topK >= pages
// it is the dense baseline (perfect agreement and recall, selection counters
// full); at a tight budget it reports real sparsity — recall strictly inside
// (0,1), fewer pages selected than resident — while the lossless cache keeps
// retention and fidelity at 1.
func TestEvaluateSparse(t *testing.T) {
	m := tinyModel()
	e := NewEvaluator(m, Config{ContSteps: 8})
	s := suite(3)[0]
	ref := e.RunBaseline(s)

	loose := e.EvaluateSparse(ref, 1<<20, 4)
	if loose.Agreement != 1 {
		t.Fatalf("topK >= pages agreement = %v, want 1 (bit-identical to dense)", loose.Agreement)
	}
	if loose.Recall != 1 {
		t.Fatalf("topK >= pages recall = %v, want 1", loose.Recall)
	}
	if loose.PagesSelected == 0 || loose.PagesSelected != loose.PagesTotal {
		t.Fatalf("topK >= pages counters (sel=%d, tot=%d), want full selection", loose.PagesSelected, loose.PagesTotal)
	}

	tight := e.EvaluateSparse(ref, 2, 4)
	if tight.Retention != 1 || tight.Fidelity < 0.999 {
		t.Fatalf("sparse retention/fidelity = %v/%v, want 1/1 (cache is lossless)", tight.Retention, tight.Fidelity)
	}
	if tight.Recall <= 0 || tight.Recall >= 1 {
		t.Fatalf("tight recall = %v, want inside (0,1)", tight.Recall)
	}
	if tight.PagesSelected == 0 || tight.PagesSelected >= tight.PagesTotal {
		t.Fatalf("tight counters (sel=%d, tot=%d) show no real sparsity", tight.PagesSelected, tight.PagesTotal)
	}
	if tight.Recall > loose.Recall {
		t.Fatalf("recall %v at topK=2 exceeds %v at full budget", tight.Recall, loose.Recall)
	}
}
